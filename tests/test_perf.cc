/**
 * @file
 * Host fast-path correctness suite (ctest -L perf).
 *
 * The fast path (DESIGN.md §10) must be invisible in simulated
 * results: quiescence fast-forward and the host translation caches
 * are toggled on and off here and every artifact — metrics JSON,
 * Perfetto timeline, fault log — must come out byte-identical, across
 * both workloads and 1/2/4/8 contexts. The parallel experiment
 * runner must reproduce the sequential runner's results exactly, and
 * the co-simulation oracle must hold with the fast path enabled.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/ring.h"
#include "harness/cosim.h"
#include "harness/parallel.h"
#include "obs/session.h"
#include "sim/config.h"
#include "sim/export.h"
#include "sim/system.h"
#include "vm/addrspace.h"
#include "workload/apache.h"
#include "workload/specint.h"

using namespace smtos;

namespace {

Session::Config
perfSpec(WorkloadConfig::Kind wl, int contexts)
{
    Session::Config s;
    s.workload.kind = wl;
    s.system.topology.contextsPerCore = contexts;
    s.workload.spec.inputChunks = 8;
    s.phases.startupInstrs = 30'000;
    s.phases.measureInstrs = 120'000;
    return s;
}

/** Run one spec and return its steady-state metrics as JSON. */
std::string
metricsJson(const Session::Config &spec, bool fast_forward, bool host_cache)
{
    AddrSpace::setHostCacheEnabled(host_cache);
    Session::Config s = spec;
    s.system.fastForward = fast_forward;
    const RunResult r = Session(s).run();
    AddrSpace::setHostCacheEnabled(true);
    return toJson(r.steady);
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

} // namespace

// --- FixedRing: the pipeline's flat queue primitive ---

TEST(FixedRing, PushPopFrontBack)
{
    FixedRing<int> r;
    r.init(6); // rounds up to 8
    EXPECT_TRUE(r.empty());

    for (int i = 0; i < 5; ++i)
        r.push_back(i);
    EXPECT_EQ(r.size(), 5u);
    EXPECT_EQ(r.front(), 0);
    EXPECT_EQ(r.back(), 4);
    for (std::size_t i = 0; i < r.size(); ++i)
        EXPECT_EQ(r[i], static_cast<int>(i));

    r.pop_front();
    EXPECT_EQ(r.front(), 1);
    r.pop_back();
    EXPECT_EQ(r.back(), 3);
    EXPECT_EQ(r.size(), 3u);
}

TEST(FixedRing, PositionsSurviveWraparound)
{
    FixedRing<int> r;
    r.init(4);
    // Cycle through many push/pop rounds so head/tail wrap the
    // backing buffer repeatedly; positions stay monotone.
    for (int round = 0; round < 10; ++round) {
        const std::uint64_t p0 = r.tailPos();
        r.push_back(round);
        r.push_back(round + 1);
        EXPECT_TRUE(r.livePos(p0));
        EXPECT_EQ(r.atPos(p0), round);
        EXPECT_FALSE(r.livePos(r.tailPos()));
        r.pop_front();
        r.pop_front();
        EXPECT_FALSE(r.livePos(p0)); // behind head now
    }
}

TEST(FixedRing, PopBackReleasesPosition)
{
    FixedRing<int> r;
    r.init(4);
    r.push_back(1);
    const std::uint64_t pos = r.tailPos();
    r.push_back(2);
    EXPECT_TRUE(r.livePos(pos));
    r.pop_back(); // squash: tail rewinds, position no longer live
    EXPECT_FALSE(r.livePos(pos));
    // The slot can be reused by a later push at the same position.
    r.push_back(3);
    EXPECT_TRUE(r.livePos(pos));
    EXPECT_EQ(r.atPos(pos), 3);
}

// --- bit-identity: fast path on vs off ---

class PerfIdentity
    : public ::testing::TestWithParam<std::tuple<int, bool>>
{
};

TEST_P(PerfIdentity, MetricsIdenticalFastPathOnOff)
{
    const int contexts = std::get<0>(GetParam());
    const bool apache = std::get<1>(GetParam());
    const Session::Config spec = perfSpec(apache ? WorkloadConfig::Kind::Apache
                                         : WorkloadConfig::Kind::SpecInt,
                                  contexts);

    const std::string fast = metricsJson(spec, true, true);
    const std::string slow = metricsJson(spec, false, false);
    EXPECT_EQ(fast, slow)
        << (apache ? "apache" : "specint") << " @ " << contexts
        << " contexts: fast path changed the metrics";
}

INSTANTIATE_TEST_SUITE_P(
    AllWidths, PerfIdentity,
    ::testing::Combine(::testing::Values(1, 2, 4, 8),
                       ::testing::Bool()));

TEST(PerfIdentityArtifacts, TimelineAndFaultLogIdentical)
{
    // One faulted Apache run per setting; the Perfetto trace and the
    // fault log must match byte for byte.
    const std::string dir = ::testing::TempDir();
    auto run = [&](bool fast, const std::string &trace_path) {
        AddrSpace::setHostCacheEnabled(fast);
        ObsConfig oc;
        oc.timelinePath = trace_path;
        ObsSession obs(oc);
        FaultPlan plan(FaultParams::fromString("loss=0.01,mce=40000"));
        Session::Config s = perfSpec(WorkloadConfig::Kind::Apache, 4);
        s.system.fastForward = fast;
        s.obs = &obs;
        s.faultPlan = &plan;
        Session(s).run();
        AddrSpace::setHostCacheEnabled(true);
        return plan.logText();
    };
    const std::string log_fast = run(true, dir + "/perf_fast.json");
    const std::string log_slow = run(false, dir + "/perf_slow.json");

    EXPECT_FALSE(log_fast.empty());
    EXPECT_EQ(log_fast, log_slow);
    const std::string trace_fast = slurp(dir + "/perf_fast.json");
    EXPECT_FALSE(trace_fast.empty());
    EXPECT_EQ(trace_fast, slurp(dir + "/perf_slow.json"));
}

// --- the oracle holds while cycles are being skipped ---

TEST(PerfCosim, OracleHoldsWithFastForward)
{
    MachineConfig cfg = smtConfig();
    cfg.kernel.seed = 11;
    cfg.kernel.enableNetwork = true;
    System sys(cfg);
    ASSERT_TRUE(sys.pipeline().fastForward()); // default on

    ApacheWorkload w = buildApache(ApacheParams{});
    installApache(sys.kernel(), w);
    Cosim cosim(sys.pipeline());
    sys.start();
    sys.runCycles(1'200'000);

    EXPECT_FALSE(cosim.diverged()) << cosim.report();
    EXPECT_GT(cosim.checked(), 0u);
}

// The skip path must actually fire somewhere: SPECInt reaches
// machine-wide quiescence (all contexts fetch-stalled with empty
// queues), unlike the fully loaded Apache configuration where the
// simulated idle loop keeps every context issuing.
TEST(PerfFastForward, SkipsCyclesOnQuiescentMachine)
{
    MachineConfig cfg = smtConfig();
    cfg.kernel.seed = 99;
    System sys(cfg);
    SpecIntParams p;
    p.inputChunks = 8;
    SpecIntWorkload w = buildSpecInt(p);
    installSpecInt(sys.kernel(), w);
    sys.start();
    sys.run(200'000);
    EXPECT_GT(sys.pipeline().fastForwardedCycles(), 0u);
}

// --- the parallel runner reproduces sequential results exactly ---

TEST(PerfParallel, RunnerMatchesSequential)
{
    std::vector<Session::Config> specs;
    specs.push_back(perfSpec(WorkloadConfig::Kind::SpecInt, 4));
    specs.push_back(perfSpec(WorkloadConfig::Kind::Apache, 4));
    specs.push_back(perfSpec(WorkloadConfig::Kind::Apache, 2));
    specs[2].workload.seed = 1234;

    std::vector<std::string> seq;
    for (const Session::Config &s : specs)
        seq.push_back(toJson(Session(s).run().steady));

    // Force real threads even on a single-core host.
    const std::vector<RunResult> par = runSessions(specs, 3);
    ASSERT_EQ(par.size(), specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i)
        EXPECT_EQ(toJson(par[i].steady), seq[i]) << "spec " << i;
}
