/**
 * @file
 * Scheduler and syscall corner cases: wakeup after blocking, syscall
 * storms from every context in the same cycle window, and idle-loop
 * accounting when contexts outnumber runnable work.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "isa/codegen.h"
#include "kernel/kernel.h"
#include "kernel/layout.h"
#include "kernel/tags.h"
#include "sim/system.h"
#include "workload/apache.h"
#include "workload/specint.h"

using namespace smtos;

namespace {

/**
 * A minimal user program: a tight loop that issues @p sysno every
 * iteration with almost no compute between calls.
 */
std::unique_ptr<CodeImage>
syscallStormImage(int which, std::uint16_t sysno, int &entry)
{
    auto img = std::make_unique<CodeImage>(
        "storm" + std::to_string(which), userTextBase);
    CodeProfile prof;
    CodeGen g(*img, prof, 0x5105ull + which);
    entry = img->beginFunction("main", -1);
    img->beginBlock(); // b0
    g.emitWork(2);
    img->emit(g.makeSyscall(sysno));
    img->beginBlock(); // b1
    img->emit(g.makeAlu());
    img->emit(g.makeJump(0));
    img->finalize();
    return img;
}

} // namespace

// A server that blocked on accept must be woken and run again once a
// connection arrives: block -> wait queue -> wake -> reschedule.
TEST(KernelSched, BlockedServerWakesAndRunsAgain)
{
    MachineConfig cfg = smtConfig();
    cfg.kernel.enableNetwork = true;
    // Few clients, many servers: the accept queue is usually empty,
    // so servers block on accept and must be woken by arrivals.
    cfg.kernel.web.numClients = 2;
    System sys(cfg);
    ApacheParams p;
    p.numServers = 8;
    ApacheWorkload w = buildApache(p);
    installApache(sys.kernel(), w);
    sys.start();

    // Run until at least one server is blocked, remembering its
    // progress at that moment.
    Kernel &k = sys.kernel();
    int blocked_pid = -1;
    std::uint64_t retired_at_block = 0;
    for (int i = 0; i < 300 && blocked_pid < 0; ++i) {
        sys.run(3000);
        for (int pid = 0; pid < k.numProcs(); ++pid) {
            const Process &pr = k.proc(pid);
            if (pr.cfg.kind == ProcKind::ApacheServer &&
                pr.state == Process::State::Blocked) {
                blocked_pid = pid;
                retired_at_block = pr.ts.cursor.retired;
                break;
            }
        }
    }
    ASSERT_GE(blocked_pid, 0) << "no server ever blocked";

    // Let the clients keep sending: the blocked server must come back
    // and make progress past its blocking point.
    std::uint64_t after = retired_at_block;
    for (int i = 0; i < 200 && after <= retired_at_block; ++i) {
        sys.run(10000);
        after = k.proc(blocked_pid).ts.cursor.retired;
    }
    EXPECT_GT(after, retired_at_block)
        << "blocked server was never rescheduled";
}

// Eight processes on eight contexts, each syscalling in a tight loop:
// serializing commits, kernel dispatch, and syscall returns from every
// context interleave in the same cycle window without losing any
// context's progress.
TEST(KernelSyscall, StormFromAllEightContexts)
{
    MachineConfig cfg = smtConfig();
    System sys(cfg);
    std::vector<std::unique_ptr<CodeImage>> images;
    for (int i = 0; i < 8; ++i) {
        int entry = 0;
        images.push_back(syscallStormImage(i, SysGetPid, entry));
        ProcParams pp;
        pp.kind = ProcKind::SpecIntApp;
        pp.image = images.back().get();
        pp.entryFunc = entry;
        pp.seed = 0xbeef + i;
        pp.inputFileId = 3000 + i;
        sys.kernel().createProcess(pp);
    }
    sys.start();
    sys.runCycles(400000);

    // Every context's process got through its syscall loop many times.
    Kernel &k = sys.kernel();
    int progressed = 0;
    for (int pid = 0; pid < k.numProcs(); ++pid) {
        const Process &pr = k.proc(pid);
        if (pr.cfg.kind == ProcKind::SpecIntApp &&
            pr.ts.cursor.retired > 500)
            ++progressed;
    }
    EXPECT_EQ(progressed, 8);
    EXPECT_GT(k.syscallEntries().get("getpid"), 50u);
    // Syscall service code retired under syscall tags on behalf of
    // all of them.
    const auto &s = sys.pipeline().stats();
    EXPECT_GT(s.retiredByTag[TagSysPreamble], 0u);
    EXPECT_GT(s.retiredByTag[TagProcCtl], 0u);
}

// With fewer runnable apps than contexts, the spare contexts run the
// idle loop and every idle instruction is attributed to TagIdle (and
// nothing else is).
TEST(KernelSched, IdleLoopAccounting)
{
    MachineConfig cfg = smtConfig();
    System sys(cfg);
    SpecIntParams p;
    p.numApps = 2; // 8 contexts, 2 apps: 6 idle
    p.inputChunks = 4;
    SpecIntWorkload w = buildSpecInt(p);
    installSpecInt(sys.kernel(), w);
    sys.start();
    sys.run(100000);

    const auto &s = sys.pipeline().stats();
    const std::uint64_t idle =
        s.retired[static_cast<int>(Mode::Idle)];
    EXPECT_GT(idle, 0u);
    // Idle-thread kernel-mode instructions are what TagIdle counts;
    // idle-thread PAL time (TLB refills in the idle loop) lands on
    // the PAL tags, so TagIdle never exceeds the idle mode count.
    EXPECT_GT(s.retiredByTag[TagIdle], 0u);
    EXPECT_LE(s.retiredByTag[TagIdle], idle);
    // The idle loop must not inflate user-mode retirement.
    EXPECT_GT(s.retired[static_cast<int>(Mode::User)], 0u);
}

// Timer preemption with more runnable processes than contexts must
// round-robin everyone even when every process never blocks.
TEST(KernelSched, PreemptionRotatesComputeBoundProcs)
{
    MachineConfig cfg = smtConfig();
    cfg.core.numContexts = 2;
    cfg.core.fetchContexts = 2;
    cfg.kernel.timerQuantum = 20000;
    System sys(cfg);
    std::vector<std::unique_ptr<CodeImage>> images;
    for (int i = 0; i < 5; ++i) {
        int entry = 0;
        // Compute-bound: syscall storm keeps them runnable forever
        // (GetPid never blocks) while staying serialization-heavy.
        images.push_back(syscallStormImage(i, SysGetPid, entry));
        ProcParams pp;
        pp.kind = ProcKind::SpecIntApp;
        pp.image = images.back().get();
        pp.entryFunc = entry;
        pp.seed = 0xfeed + i;
        pp.inputFileId = 3100 + i;
        sys.kernel().createProcess(pp);
    }
    sys.start();
    sys.runCycles(400000);

    Kernel &k = sys.kernel();
    int progressed = 0;
    for (int pid = 0; pid < k.numProcs(); ++pid) {
        const Process &pr = k.proc(pid);
        if (pr.cfg.kind == ProcKind::SpecIntApp &&
            pr.ts.cursor.retired > 1000)
            ++progressed;
    }
    EXPECT_EQ(progressed, 5);
    EXPECT_GT(k.contextSwitches(), 8u);
    EXPECT_GT(sys.pipeline().stats().retiredByTag[TagSched], 0u);
}
