/**
 * @file
 * Network and SPECWeb-like client tests.
 */

#include <gtest/gtest.h>

#include <map>

#include "net/clients.h"
#include "net/network.h"

using namespace smtos;

TEST(Network, FifoPerDirection)
{
    Network n;
    Packet a;
    a.client = 1;
    Packet b;
    b.client = 2;
    n.clientSend(a);
    n.clientSend(b);
    EXPECT_EQ(n.popServerRx().client, 1);
    EXPECT_EQ(n.popServerRx().client, 2);
    EXPECT_FALSE(n.serverHasRx());
}

TEST(Network, CountsBytesAndPackets)
{
    Network n;
    Packet p;
    p.bytes = 100;
    n.clientSend(p);
    p.bytes = 300;
    n.serverSend(p);
    EXPECT_EQ(n.requestPackets(), 1u);
    EXPECT_EQ(n.responsePackets(), 1u);
    EXPECT_EQ(n.requestBytes(), 100u);
    EXPECT_EQ(n.responseBytes(), 300u);
}

TEST(SpecWebFiles, SizesDeterministic)
{
    for (int f = 0; f < 100; ++f)
        EXPECT_EQ(specWebFileBytes(f), specWebFileBytes(f));
}

TEST(SpecWebFiles, ClassSizeRanges)
{
    // Class 0 (file_id % 4 == 0): 0.1-0.9KB; class 3: 100-900KB.
    for (int i = 0; i < 36; i += 4) {
        EXPECT_GE(specWebFileBytes(i), 102u);
        EXPECT_LE(specWebFileBytes(i), 102u * 9);
    }
    for (int i = 3; i < 36; i += 4) {
        EXPECT_GE(specWebFileBytes(i), 102400u);
        EXPECT_LE(specWebFileBytes(i), 102400u * 9);
    }
}

TEST(SpecWebFiles, ClassMixMatchesSpec)
{
    Rng rng(5);
    std::map<int, int> by_class;
    const int n = 40000;
    for (int i = 0; i < n; ++i)
        by_class[specWebPickFile(rng, 120) & 3]++;
    EXPECT_NEAR(by_class[0] / double(n), 0.35, 0.02);
    EXPECT_NEAR(by_class[1] / double(n), 0.50, 0.02);
    EXPECT_NEAR(by_class[2] / double(n), 0.14, 0.02);
    EXPECT_NEAR(by_class[3] / double(n), 0.01, 0.005);
}

TEST(SpecWebFiles, PickStaysInFileSet)
{
    Rng rng(6);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(specWebPickFile(rng, 120), 120);
}

TEST(Clients, IssueRequestsOverTime)
{
    SpecWebParams p;
    p.numClients = 8;
    p.thinkMean = 100;
    ClientPopulation cp(p, 42);
    Network net;
    for (Cycle t = 0; t < 5000; t += 50)
        cp.tick(t, net);
    EXPECT_GE(cp.requestsIssued(), 8u);
    EXPECT_TRUE(net.serverHasRx());
}

TEST(Clients, WaitUntilResponseComplete)
{
    SpecWebParams p;
    p.numClients = 1;
    p.thinkMean = 10;
    ClientPopulation cp(p, 43);
    Network net;
    // Issue the first request.
    Cycle t = 0;
    while (!net.serverHasRx()) {
        t += 20;
        cp.tick(t, net);
        ASSERT_LT(t, 10000u);
    }
    Packet req = net.popServerRx();
    const auto issued = cp.requestsIssued();
    // No new request while the response is outstanding.
    for (int i = 0; i < 50; ++i) {
        t += 20;
        cp.tick(t, net);
    }
    EXPECT_EQ(cp.requestsIssued(), issued);
    // Complete the response in one full-size packet.
    Packet resp;
    resp.client = req.client;
    resp.bytes = specWebFileBytes(req.fileId);
    resp.fin = true;
    net.serverSend(resp);
    for (int i = 0; i < 400 && cp.requestsIssued() == issued; ++i) {
        t += 20;
        cp.tick(t, net);
    }
    EXPECT_EQ(cp.responsesCompleted(), 1u);
    EXPECT_GT(cp.requestsIssued(), issued); // thinking, then re-asks
}

TEST(Clients, PartialResponsesAccumulate)
{
    SpecWebParams p;
    p.numClients = 1;
    p.thinkMean = 10;
    ClientPopulation cp(p, 44);
    Network net;
    Cycle t = 0;
    while (!net.serverHasRx()) {
        t += 20;
        cp.tick(t, net);
    }
    Packet req = net.popServerRx();
    const std::uint32_t total = specWebFileBytes(req.fileId);
    // Send in 1KB chunks without fin until the last one.
    std::uint32_t sent = 0;
    while (sent < total) {
        Packet resp;
        resp.client = req.client;
        resp.bytes = std::min<std::uint32_t>(1024, total - sent);
        sent += resp.bytes;
        resp.fin = (sent >= total);
        net.serverSend(resp);
        t += 20;
        cp.tick(t, net);
    }
    EXPECT_EQ(cp.responsesCompleted(), 1u);
}

TEST(Clients, RequestSizesWithinBounds)
{
    SpecWebParams p;
    p.numClients = 16;
    p.thinkMean = 50;
    ClientPopulation cp(p, 45);
    Network net;
    for (Cycle t = 0; t < 4000; t += 25)
        cp.tick(t, net);
    while (net.serverHasRx()) {
        Packet pk = net.popServerRx();
        EXPECT_GE(pk.bytes, p.requestBytesMin);
        EXPECT_LE(pk.bytes, p.requestBytesMax);
        EXPECT_TRUE(pk.open);
        EXPECT_GE(pk.fileId, 0);
    }
}
