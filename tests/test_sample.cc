/**
 * @file
 * Switchable-fidelity + SMARTS sampling validation (DESIGN.md §15).
 *
 * The functional (warming-only) engine must retire the exact
 * architectural stream the RefCore oracle predicts, across fuzzed
 * programs, context widths, and arbitrary fidelity switch points; a
 * sampled measurement must reproduce full-detail CPI and mode
 * breakdowns within its own reported confidence intervals (plus a
 * small systematic-bias floor); and the FIDL snapshot section must
 * round-trip so sampled/functional runs resume bit-identically while
 * pure-detailed artifacts keep their prior bytes.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "harness/cosim.h"
#include "harness/env.h"
#include "harness/parallel.h"
#include "harness/sample.h"
#include "harness/session.h"
#include "ref/progfuzz.h"
#include "sim/config.h"
#include "sim/export.h"
#include "sim/metrics.h"
#include "sim/system.h"
#include "workload/apache.h"
#include "workload/specint.h"

using namespace smtos;

namespace {

MachineConfig
fuzzConfig(int contexts)
{
    MachineConfig cfg = smtConfig();
    cfg.core.numContexts = contexts;
    cfg.core.fetchContexts = contexts >= 2 ? 2 : 1;
    // Short quantum so short runs still exercise timer interrupts,
    // preemption, and context-switch state syncs.
    cfg.kernel.timerQuantum = 6000;
    return cfg;
}

/** One fuzzed functional-mode co-simulated run; returns instructions
 *  verified. */
std::uint64_t
runFuzzFunctional(std::uint64_t seed, int contexts, Cycle cycles,
                  std::uint64_t inject_at = 0,
                  std::string *report = nullptr)
{
    MachineConfig cfg = fuzzConfig(contexts);
    cfg.kernel.seed = seed;

    // One more runnable program than contexts, so the scheduler has
    // to multiplex and every run crosses thread migrations.
    std::vector<FuzzedProgram> progs;
    System sys(cfg);
    for (int i = 0; i <= contexts; ++i) {
        progs.push_back(fuzzProgram(mixHash(seed, 77u + i)));
        installFuzzedProc(sys.kernel(), progs.back(), i);
    }

    Cosim cosim(sys.pipeline());
    if (inject_at)
        sys.pipeline().injectRetireFault(inject_at);
    sys.start();
    sys.pipeline().setFidelity(Fidelity::Functional);
    sys.runCycles(cycles);

    if (report)
        *report = cosim.report();
    if (inject_at) {
        EXPECT_TRUE(cosim.diverged())
            << "seed " << seed << ": injected fault not caught";
    } else {
        EXPECT_FALSE(cosim.diverged())
            << "seed " << seed << ", " << contexts
            << " contexts (functional):\n" << cosim.report();
        EXPECT_GT(cosim.syncs(), 0u);
        EXPECT_TRUE(sys.pipeline().auditInvariants().empty())
            << sys.pipeline().auditInvariants();
    }
    return cosim.checked();
}

/** Full metric export (JSON + CSV) of a system's current counters. */
std::string
exportAll(System &sys)
{
    MetricsSnapshot s = MetricsSnapshot::capture(sys);
    std::ostringstream os;
    os << toJson(s) << "\n";
    writeCsvRow(os, "run", s, true);
    return os.str();
}

} // namespace

// The functional engine's acceptance loop: the same >= 50 fuzzed
// seeds x 1/2/4/8-context sweep the detailed core passes, executed
// entirely at Fidelity::Functional, zero divergences from the RefCore
// oracle.
TEST(FunctionalFuzz, NoDivergenceAcrossSeedsAndWidths)
{
    const int widths[] = {1, 2, 4, 8};
    constexpr int perWidth = 13;
    constexpr int runs = 4 * perWidth;
    std::atomic<std::uint64_t> total_checked{0};
    parallelFor(runs, [&](std::size_t i) {
        const int w = widths[i / perWidth];
        const std::uint64_t seed = 1 + i;
        total_checked += runFuzzFunctional(seed, w, 8000);
    });
    // Functional cycles retire a fetch-width batch, so even short
    // runs verify a substantial stream.
    EXPECT_GT(total_checked.load(), 52u * 10000u);
}

// A misreported functional retirement is caught at exactly that
// instruction — the oracle guards functional execution as strictly as
// detailed execution.
TEST(Functional, InjectedFaultIsCaughtWithDiagnosis)
{
    std::string report;
    const std::uint64_t checked =
        runFuzzFunctional(3, 4, 4000, 4000, &report);
    EXPECT_EQ(checked, 3999u);
    EXPECT_NE(report.find("cosim divergence"), std::string::npos)
        << report;
}

// Functional SpecInt retires all four privilege modes: timer
// interrupts, scheduling, PAL transitions, and idle threads all run
// through the functional engine.
TEST(Functional, CoversAllModes)
{
    MachineConfig cfg = smtConfig();
    cfg.kernel.seed = 5;
    System sys(cfg);
    SpecIntParams p;
    p.numApps = 4; // fewer apps than contexts: idle threads run
    p.inputChunks = 16;
    SpecIntWorkload w = buildSpecInt(p);
    installSpecInt(sys.kernel(), w);
    Cosim cosim(sys.pipeline());
    sys.start();
    sys.pipeline().setFidelity(Fidelity::Functional);
    sys.runCycles(30000);
    EXPECT_FALSE(cosim.diverged()) << cosim.report();
    const CoreStats &cs = sys.pipeline().stats();
    EXPECT_GT(cs.retired[static_cast<int>(Mode::User)], 0u);
    EXPECT_GT(cs.retired[static_cast<int>(Mode::Kernel)], 0u);
    EXPECT_GT(cs.retired[static_cast<int>(Mode::Pal)], 0u);
    EXPECT_GT(cs.retired[static_cast<int>(Mode::Idle)], 0u);
    EXPECT_EQ(cs.totalRetired(), sys.pipeline().funcInstrs());
}

// Switch-point torture: alternate fidelity every leg across fuzzed
// programs and widths. Every detailed interval after a switch must be
// cosim-clean and the pipeline invariants must hold at every
// boundary (the drain left nothing in flight, conservation holds).
TEST(FidelitySwitch, TortureStaysCosimClean)
{
    const int widths[] = {1, 2, 4, 8};
    parallelFor(4, [&](std::size_t wi) {
        const int w = widths[wi];
        const std::uint64_t seed = 101 + wi;
        MachineConfig cfg = fuzzConfig(w);
        cfg.kernel.seed = seed;
        std::vector<FuzzedProgram> progs;
        System sys(cfg);
        for (int i = 0; i <= w; ++i) {
            progs.push_back(fuzzProgram(mixHash(seed, 77u + i)));
            installFuzzedProc(sys.kernel(), progs.back(), i);
        }
        Cosim cosim(sys.pipeline());
        sys.start();
        for (int leg = 0; leg < 10; ++leg) {
            sys.pipeline().setFidelity(
                leg % 2 ? Fidelity::Functional : Fidelity::Detailed);
            sys.runCycles(3000 + 700 * leg);
            EXPECT_FALSE(cosim.diverged())
                << w << " contexts, leg " << leg << ":\n"
                << cosim.report();
            EXPECT_TRUE(sys.pipeline().auditInvariants().empty())
                << sys.pipeline().auditInvariants();
        }
        EXPECT_GT(sys.pipeline().fidelitySwitches(), 8u);
        EXPECT_GT(sys.pipeline().funcInstrs(), 0u);
    });
}

// A zero-length fidelity toggle (switch to functional and straight
// back, executing nothing) at a drained boundary is invisible:
// metrics exports stay bit-identical to the run that never touched
// the fidelity API. A mid-run toggle must drain (real cycles run),
// but still keeps the fidelity block out of the export — counters
// only surface once functional instructions actually execute.
TEST(FidelitySwitch, NoOpToggleIsExportInvisible)
{
    auto run = [](bool toggle, bool midRun) {
        MachineConfig cfg = fuzzConfig(4);
        cfg.kernel.seed = 42;
        std::vector<FuzzedProgram> progs;
        System sys(cfg);
        for (int i = 0; i < 5; ++i) {
            progs.push_back(fuzzProgram(mixHash(42, 77u + i)));
            installFuzzedProc(sys.kernel(), progs.back(), i);
        }
        sys.start();
        if (toggle && !midRun) {
            // Nothing in flight yet: the toggle drains nothing.
            sys.pipeline().setFidelity(Fidelity::Functional);
            sys.pipeline().setFidelity(Fidelity::Detailed);
        }
        sys.runCycles(10000);
        if (toggle && midRun) {
            sys.pipeline().setFidelity(Fidelity::Functional);
            sys.pipeline().setFidelity(Fidelity::Detailed);
        }
        sys.runCycles(10000);
        EXPECT_EQ(sys.pipeline().funcInstrs(), 0u);
        return exportAll(sys);
    };
    EXPECT_EQ(run(false, false), run(true, false));
    // The mid-run toggle changes timing (the drain is real work) but
    // never invents a fidelity block in the export.
    EXPECT_EQ(run(true, true).find("fidelity"), std::string::npos);
}

// Hybrid execution makes architectural progress faster than detailed
// execution over the same cycle budget (functional legs retire a
// fetch-width batch per cycle) while staying oracle-clean.
TEST(FidelitySwitch, FunctionalLegsAccelerateRetirement)
{
    auto retiredAfter = [](bool hybrid) {
        MachineConfig cfg = fuzzConfig(4);
        cfg.kernel.seed = 9;
        std::vector<FuzzedProgram> progs;
        System sys(cfg);
        for (int i = 0; i < 5; ++i) {
            progs.push_back(fuzzProgram(mixHash(9, 77u + i)));
            installFuzzedProc(sys.kernel(), progs.back(), i);
        }
        Cosim cosim(sys.pipeline());
        sys.start();
        for (int leg = 0; leg < 4; ++leg) {
            if (hybrid)
                sys.pipeline().setFidelity(
                    leg % 2 ? Fidelity::Functional
                            : Fidelity::Detailed);
            sys.runCycles(10000);
        }
        EXPECT_FALSE(cosim.diverged()) << cosim.report();
        return sys.pipeline().stats().totalRetired();
    };
    const std::uint64_t detailed = retiredAfter(false);
    const std::uint64_t hybrid = retiredAfter(true);
    EXPECT_GT(hybrid, detailed + detailed / 2);
}

namespace {

/** |full - sampled| must fit the sampled run's own error bound plus
 *  a floor for the systematic (non-sampling) bias. */
void
expectWithin(double full, const SampleEstimate &est, double floorAbs,
             const char *what)
{
    const double bound = 3.0 * est.halfWidth + floorAbs;
    EXPECT_LE(std::fabs(full - est.mean), bound)
        << what << ": full " << full << " vs sampled " << est.mean
        << " +/- " << est.halfWidth << " (bound " << bound << ")";
}

/** Full-detail vs sampled measurement of one workload/width point. */
void
sampledVsFull(WorkloadConfig::Kind kind, int contexts)
{
    Session::Config base;
    base.system.topology.contextsPerCore = contexts;
    base.workload.kind = kind;
    base.workload.seed = 31 + contexts;
    base.phases.startupInstrs = 40'000;
    base.phases.measureInstrs = 400'000;

    Session full(base);
    const RunResult fr = full.run();
    const double fullCpi =
        static_cast<double>(fr.steady.core.cycles) /
        static_cast<double>(fr.steady.core.totalRetired());
    const ModeShares fm = modeShares(fr.steady);

    Session::Config sc = base;
    sc.sample.enabled = true;
    sc.sample.periodInstrs = 25'000;
    sc.sample.warmInstrs = 2'500;
    sc.sample.intervalInstrs = 2'500;
    sc.sample.confidence = 0.95;
    // The skipped instructions still retire against the oracle.
    sc.cosim = true;
    Session sampled(sc);
    const RunResult sr = sampled.run();

    ASSERT_TRUE(sr.sample.enabled);
    EXPECT_GE(sr.sample.intervals, 10);
    // Most of the budget was fast-forwarded, and the split accounts
    // for every instruction of the measurement phase.
    EXPECT_GT(sr.sample.functionalInstrs, sr.sample.detailedInstrs);
    EXPECT_EQ(sr.sample.functionalInstrs + sr.sample.detailedInstrs,
              sr.steady.core.totalRetired());
    EXPECT_EQ(sr.steady.fidelity.funcInstrs,
              sr.sample.functionalInstrs);

    expectWithin(fullCpi, sr.sample.cpi, 0.12 * fullCpi, "CPI");
    expectWithin(fm.userPct, sr.sample.userPct, 6.0, "user%");
    expectWithin(fm.kernelPct, sr.sample.kernelPct, 6.0, "kernel%");
    expectWithin(fm.palPct, sr.sample.palPct, 6.0, "pal%");
    expectWithin(fm.idlePct, sr.sample.idlePct, 6.0, "idle%");
}

} // namespace

// The headline accuracy claim: sampled CPI and kernel-mode breakdowns
// land within the reported confidence intervals (plus a small bias
// floor) of full-detail runs, on both workloads at 1/2/4/8 contexts.
TEST(Sampled, SpecIntWithinErrorBounds)
{
    const int widths[] = {1, 2, 4, 8};
    parallelFor(4, [&](std::size_t i) {
        sampledVsFull(WorkloadConfig::Kind::SpecInt, widths[i]);
    });
}

TEST(Sampled, ApacheWithinErrorBounds)
{
    const int widths[] = {1, 2, 4, 8};
    parallelFor(4, [&](std::size_t i) {
        sampledVsFull(WorkloadConfig::Kind::Apache, widths[i]);
    });
}

// --- parameter parsing and the CI arithmetic ---

TEST(SampleParams, FromStringParsesEveryKey)
{
    const SampleParams p = SampleParams::fromString(
        "period=100000,warm=5000,interval=4000,conf=0.99");
    EXPECT_TRUE(p.enabled);
    EXPECT_EQ(p.periodInstrs, 100000u);
    EXPECT_EQ(p.warmInstrs, 5000u);
    EXPECT_EQ(p.intervalInstrs, 4000u);
    EXPECT_DOUBLE_EQ(p.confidence, 0.99);
}

TEST(SampleParams, FromStringDefaultsUnmentionedKeys)
{
    const SampleParams d;
    const SampleParams p = SampleParams::fromString("period=60000");
    EXPECT_TRUE(p.enabled);
    EXPECT_EQ(p.periodInstrs, 60000u);
    EXPECT_EQ(p.warmInstrs, d.warmInstrs);
    EXPECT_EQ(p.intervalInstrs, d.intervalInstrs);
    EXPECT_DOUBLE_EQ(p.confidence, d.confidence);
}

TEST(SampleParams, ConfidenceZLadder)
{
    EXPECT_DOUBLE_EQ(confidenceZ(0.99), 2.576);
    EXPECT_DOUBLE_EQ(confidenceZ(0.95), 1.96);
    EXPECT_DOUBLE_EQ(confidenceZ(0.90), 1.645);
}

TEST(EnvOverrides, FidelityAndSampleFromLookup)
{
    std::map<std::string, std::string> env = {
        {"SMTOS_FIDELITY", "functional"},
        {"SMTOS_SAMPLE", "period=80000,interval=3000"},
    };
    const EnvOverrides ov =
        EnvOverrides::fromLookup([&](const char *name) {
            auto it = env.find(name);
            return it == env.end() ? nullptr : it->second.c_str();
        });
    EXPECT_TRUE(ov.hasFidelity);
    EXPECT_EQ(ov.fidelity, Fidelity::Functional);
    EXPECT_TRUE(ov.hasSample);
    EXPECT_EQ(ov.sample.periodInstrs, 80000u);
    EXPECT_EQ(ov.sample.intervalInstrs, 3000u);

    env["SMTOS_FIDELITY"] = "detailed";
    const EnvOverrides ov2 =
        EnvOverrides::fromLookup([&](const char *name) {
            auto it = env.find(name);
            return it == env.end() ? nullptr : it->second.c_str();
        });
    EXPECT_TRUE(ov2.hasFidelity);
    EXPECT_EQ(ov2.fidelity, Fidelity::Detailed);
}

// --- FIDL snapshot section ---

// A sampled session snapshotted at the measurement boundary resumes
// into a bit-identical sampled measurement: same steady deltas, same
// per-interval estimates.
TEST(SampleSnapshot, SampledSessionResumesBitIdentically)
{
    Session::Config cfg;
    cfg.workload.seed = 17;
    cfg.phases.startupInstrs = 30'000;
    cfg.phases.measureInstrs = 120'000;
    cfg.sample.enabled = true;
    cfg.sample.periodInstrs = 20'000;
    cfg.sample.warmInstrs = 2'000;
    cfg.sample.intervalInstrs = 2'000;

    Session a(cfg);
    a.runStartup();
    const std::vector<std::uint8_t> art = a.snapshot();
    const RunResult ra = a.runMeasurement();

    Session::ResumeOptions opts;
    opts.phases = cfg.phases;
    std::string err;
    auto b = Session::resume(art, opts, &err);
    ASSERT_TRUE(b) << err;
    EXPECT_TRUE(b->config().sample.enabled);
    EXPECT_EQ(b->config().sample.periodInstrs, 20'000u);
    const RunResult rb = b->runMeasurement();

    EXPECT_EQ(toJson(ra.steady), toJson(rb.steady));
    EXPECT_EQ(ra.sample.intervals, rb.sample.intervals);
    EXPECT_EQ(ra.sample.cpi.mean, rb.sample.cpi.mean);
    EXPECT_EQ(ra.sample.cpi.halfWidth, rb.sample.cpi.halfWidth);
    EXPECT_EQ(ra.sample.intervalCpi, rb.sample.intervalCpi);
    EXPECT_EQ(ra.sample.functionalInstrs, rb.sample.functionalInstrs);
}

// A functional-mode artifact carries its fidelity and counters; the
// resume-time override can force it back to detailed.
TEST(SampleSnapshot, FunctionalArtifactPreservesFidelity)
{
    Session::Config cfg;
    cfg.workload.seed = 23;
    cfg.fidelity = Fidelity::Functional;
    cfg.phases.startupInstrs = 50'000;
    cfg.phases.measureInstrs = 50'000;

    Session a(cfg);
    a.runStartup();
    const std::uint64_t fi = a.system().pipeline().funcInstrs();
    EXPECT_GT(fi, 0u);
    const std::vector<std::uint8_t> art = a.snapshot();

    Session::ResumeOptions opts;
    opts.phases = cfg.phases;
    std::string err;
    auto b = Session::resume(art, opts, &err);
    ASSERT_TRUE(b) << err;
    EXPECT_EQ(b->config().fidelity, Fidelity::Functional);
    EXPECT_EQ(b->system().pipeline().fidelity(),
              Fidelity::Functional);
    EXPECT_EQ(b->system().pipeline().funcInstrs(), fi);
    // The resumed run keeps executing functionally.
    const RunResult rb = b->runMeasurement();
    EXPECT_GT(b->system().pipeline().funcInstrs(), fi);
    EXPECT_TRUE(rb.steady.fidelity.enabled());

    // Resume-time override: force the artifact back to detailed.
    opts.fidelity = Fidelity::Detailed;
    auto c = Session::resume(art, opts, &err);
    ASSERT_TRUE(c) << err;
    EXPECT_EQ(c->system().pipeline().fidelity(), Fidelity::Detailed);
    c->runMeasurement();
    EXPECT_EQ(c->system().pipeline().funcInstrs(), fi);
}

// A detailed start-up artifact resumes into a sampled measurement via
// the resume-time override (the fig_overload_knee pattern, applied to
// fidelity), and the skipped instructions stay oracle-checked.
TEST(SampleSnapshot, DetailedArtifactResumesIntoSampling)
{
    Session::Config cfg;
    cfg.workload.seed = 29;
    cfg.phases.startupInstrs = 30'000;
    cfg.phases.measureInstrs = 100'000;
    cfg.cosim = true;

    Session a(cfg);
    a.runStartup();
    const std::vector<std::uint8_t> art = a.snapshot();

    Session::ResumeOptions opts;
    opts.phases = cfg.phases;
    opts.cosim = true;
    SampleParams sp;
    sp.enabled = true;
    sp.periodInstrs = 20'000;
    sp.warmInstrs = 2'000;
    sp.intervalInstrs = 2'000;
    opts.sample = sp;
    std::string err;
    auto b = Session::resume(art, opts, &err);
    ASSERT_TRUE(b) << err;
    const RunResult rb = b->runMeasurement();
    EXPECT_TRUE(rb.sample.enabled);
    EXPECT_GT(rb.sample.intervals, 0);
    EXPECT_GT(rb.sample.functionalInstrs, 0u);
}

// Pure-detailed artifacts write no FIDL section: the snapshot format
// for every pre-fidelity configuration is byte-for-byte unchanged.
TEST(SampleSnapshot, DetailedArtifactHasNoFidlSection)
{
    Session::Config cfg;
    cfg.workload.seed = 37;
    cfg.phases.startupInstrs = 20'000;
    cfg.phases.measureInstrs = 20'000;
    Session a(cfg);
    a.runStartup();
    const std::vector<std::uint8_t> art = a.snapshot();
    const std::string tag = "FIDL";
    EXPECT_EQ(std::search(art.begin(), art.end(), tag.begin(),
                          tag.end()),
              art.end());

    // And a sampled-config session does write one, even before any
    // functional instruction has run.
    Session::Config scfg = cfg;
    scfg.sample.enabled = true;
    scfg.sample.periodInstrs = 20'000;
    Session b(scfg);
    b.runStartup();
    const std::vector<std::uint8_t> art2 = b.snapshot();
    EXPECT_NE(std::search(art2.begin(), art2.end(), tag.begin(),
                          tag.end()),
              art2.end());
}
