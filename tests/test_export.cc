/**
 * @file
 * Metrics-export tests: JSON structure and CSV rows.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "sim/export.h"

using namespace smtos;

namespace {

MetricsSnapshot
sample()
{
    MetricsSnapshot s;
    s.core.cycles = 500;
    s.core.retired[0] = 800;
    s.core.retired[1] = 200;
    s.core.retiredByTag[TagRead] = 120;
    s.core.condRetired[0] = 50;
    s.core.condMispred[0] = 5;
    s.l1d.accesses[0] = 100;
    s.l1d.misses[0] = 10;
    s.requestsServed = 4;
    return s;
}

} // namespace

TEST(Export, JsonContainsHeadlineFields)
{
    const std::string j = toJson(sample());
    EXPECT_NE(j.find("\"cycles\":500"), std::string::npos);
    EXPECT_NE(j.find("\"instructions\":1000"), std::string::npos);
    EXPECT_NE(j.find("\"ipc\":2"), std::string::npos);
    EXPECT_NE(j.find("\"user\":80"), std::string::npos);
    EXPECT_NE(j.find("\"requests_served\":4"), std::string::npos);
}

TEST(Export, JsonContainsTagBreakdown)
{
    const std::string j = toJson(sample());
    EXPECT_NE(j.find("\"read\":120"), std::string::npos);
}

TEST(Export, JsonBalancedBraces)
{
    const std::string j = toJson(sample());
    int depth = 0;
    for (char c : j) {
        if (c == '{')
            ++depth;
        if (c == '}')
            --depth;
        ASSERT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0);
    EXPECT_EQ(j.front(), '{');
    EXPECT_EQ(j.back(), '}');
}

TEST(Export, JsonInterferenceArrays)
{
    const std::string j = toJson(sample());
    EXPECT_NE(j.find("\"l1d\":{\"accesses\":[100,0]"),
              std::string::npos);
}

TEST(Export, CsvHeaderAndRow)
{
    std::ostringstream os;
    writeCsvRow(os, "run1", sample(), true);
    writeCsvRow(os, "run2", sample(), false);
    const std::string csv = os.str();
    // Exactly one header plus two data rows.
    EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);
    EXPECT_NE(csv.find("label,cycles"), std::string::npos);
    EXPECT_NE(csv.find("run1,500,1000,2"), std::string::npos);
    EXPECT_NE(csv.find("run2,"), std::string::npos);
}

TEST(Export, CsvColumnCountConsistent)
{
    std::ostringstream os;
    writeCsvRow(os, "x", sample(), true);
    std::string header, row;
    std::istringstream in(os.str());
    std::getline(in, header);
    std::getline(in, row);
    EXPECT_EQ(std::count(header.begin(), header.end(), ','),
              std::count(row.begin(), row.end(), ','));
}
