/**
 * @file
 * Configuration contract tests: the presets must match Table 1 of the
 * paper exactly, and the derived pipeline quantities must follow the
 * stated 9-stage (SMT) / 7-stage (superscalar) design.
 */

#include <gtest/gtest.h>

#include "bp/mcfarling.h"
#include "sim/config.h"

using namespace smtos;

TEST(Table1, SmtCoreParameters)
{
    const MachineConfig c = smtConfig();
    EXPECT_EQ(c.core.numContexts, 8);
    EXPECT_EQ(c.core.fetchWidth, 8);      // 8 instructions per cycle
    EXPECT_EQ(c.core.fetchContexts, 2);   // the 2.8 ICOUNT scheme
    EXPECT_EQ(c.core.pipelineStages, 9);
    EXPECT_EQ(c.core.intUnits, 6);        // 6 integer units
    EXPECT_EQ(c.core.memUnits, 4);        // of which 4 load/store
    EXPECT_EQ(c.core.fpUnits, 4);
    EXPECT_EQ(c.core.intQueue, 32);       // 32-entry queues
    EXPECT_EQ(c.core.fpQueue, 32);
    EXPECT_EQ(c.core.intRenameRegs, 100); // 100 renaming registers
    EXPECT_EQ(c.core.fpRenameRegs, 100);
    EXPECT_EQ(c.core.retireWidth, 12);    // 12 instructions/cycle
    EXPECT_EQ(c.core.itlbEntries, 128);   // 128-entry TLBs
    EXPECT_EQ(c.core.dtlbEntries, 128);
    EXPECT_EQ(c.core.dcachePorts, 2);     // dual-ported D-cache
}

TEST(Table1, MemoryHierarchy)
{
    const MachineConfig c = smtConfig();
    EXPECT_EQ(c.mem.l1i.sizeBytes, 128u * 1024);
    EXPECT_EQ(c.mem.l1i.assoc, 2);
    EXPECT_EQ(c.mem.l1d.sizeBytes, 128u * 1024);
    EXPECT_EQ(c.mem.l1d.assoc, 2);
    EXPECT_EQ(c.mem.l2.sizeBytes, 16u * 1024 * 1024);
    EXPECT_EQ(c.mem.l2.assoc, 1); // direct mapped
    EXPECT_EQ(c.mem.l1i.lineBytes, 64);
    EXPECT_EQ(c.mem.l2Latency, 20u);
    EXPECT_EQ(c.mem.l1FillPenalty, 2u);
    EXPECT_EQ(c.mem.l1MshrEntries, 32);
    EXPECT_EQ(c.mem.l2MshrEntries, 32);
    EXPECT_EQ(c.mem.storeBufferEntries, 32);
    EXPECT_EQ(c.mem.l1l2BusBytesPerCycle, 32); // 256 bits
    EXPECT_EQ(c.mem.l1l2BusLatency, 2u);
    EXPECT_EQ(c.mem.memBusBytesPerCycle, 16);  // 128 bits
    EXPECT_EQ(c.mem.memBusLatency, 4u);
    EXPECT_EQ(c.mem.dramLatency, 90u);
    EXPECT_EQ(c.mem.dramLatency, defaultMemLatency);
}

TEST(Table1, BankedDramDefaultsOffAndFlatEquivalent)
{
    const MachineConfig c = smtConfig();
    // Banked DRAM is opt-in: the preset stays the paper's flat
    // 90-cycle memory.
    EXPECT_FALSE(c.mem.dram.banked);
    const DramParams d;
    EXPECT_EQ(d.channels, 2);
    EXPECT_EQ(d.ranks, 2);
    EXPECT_EQ(d.banksPerRank, 8);
    EXPECT_EQ(d.rowBytes, 2048);
    EXPECT_EQ(d.burstBytes, 64);
    EXPECT_EQ(d.queueDepth, 16);
    EXPECT_FALSE(d.closedPage);
    // Timing is anchored to the flat model: a row conflict
    // (tRP+tRCD+tCAS+tBurst) costs exactly the Table-1 latency.
    EXPECT_EQ(d.tRp + d.tRcd + d.tCas + d.tBurst, defaultMemLatency);
}

TEST(Table1, BranchHardwareDefaults)
{
    McFarlingParams p;
    EXPECT_EQ(p.localHistEntries, 2048); // 2K-entry history table
    EXPECT_EQ(p.localPredEntries, 4096); // 4K-entry prediction table
    EXPECT_EQ(p.globalEntries, 8192);    // 8K entries
    EXPECT_EQ(p.chooserEntries, 8192);   // 8K-entry selection table
}

TEST(Superscalar, DiffersOnlyWhereThePaperSays)
{
    const MachineConfig smt = smtConfig();
    const MachineConfig ss = superscalarConfig();
    EXPECT_EQ(ss.core.numContexts, 1);
    EXPECT_EQ(ss.core.pipelineStages, 7); // 2 fewer stages
    // Everything else identical.
    EXPECT_EQ(ss.core.intUnits, smt.core.intUnits);
    EXPECT_EQ(ss.core.intQueue, smt.core.intQueue);
    EXPECT_EQ(ss.core.intRenameRegs, smt.core.intRenameRegs);
    EXPECT_EQ(ss.core.retireWidth, smt.core.retireWidth);
    EXPECT_EQ(ss.mem.l1d.sizeBytes, smt.mem.l1d.sizeBytes);
    EXPECT_EQ(ss.mem.l2.sizeBytes, smt.mem.l2.sizeBytes);
}

TEST(DerivedTiming, FrontEndDepths)
{
    CoreParams nine;
    nine.pipelineStages = 9;
    CoreParams seven;
    seven.pipelineStages = 7;
    EXPECT_EQ(nine.issueDelay(), 4u);
    EXPECT_EQ(seven.issueDelay(), 2u);
    EXPECT_EQ(nine.redirectPenalty(), seven.redirectPenalty() + 2);
}

TEST(KernelDefaults, PaperFaithfulKnobs)
{
    Kernel::Params p;
    EXPECT_FALSE(p.appOnly);
    EXPECT_FALSE(p.sharedTlbIpr);   // paper's modified OS by default
    EXPECT_EQ(p.numNetisr, 2);      // netisr thread pool
    EXPECT_GT(p.maxAsn, 64);        // ASNs outnumber server processes
}
