/**
 * @file
 * End-to-end system properties: the orderings the paper reports must
 * hold on the simulator (SMT beats superscalar, Apache is more
 * OS-intensive than SPECInt, kernel misses exceed user misses, ...).
 * These are the headline shape checks; the benches print the numbers.
 */

#include <gtest/gtest.h>

#include "harness/experiment.h"

using namespace smtos;

namespace {

RunSpec
specSpec()
{
    RunSpec s;
    s.workload = RunSpec::Workload::SpecInt;
    s.spec.inputChunks = 24;
    s.measureInstrs = 700000;
    return s;
}

RunSpec
apacheSpec()
{
    RunSpec s;
    s.workload = RunSpec::Workload::Apache;
    s.startupInstrs = 400000;
    s.measureInstrs = 700000;
    return s;
}

} // namespace

TEST(SystemProps, SpecIntSmtReachesHighIpc)
{
    RunResult r = runExperiment(specSpec());
    EXPECT_GT(archMetrics(r.steady).ipc, 3.0);
}

TEST(SystemProps, SpecIntStartupHasMoreOsThanSteady)
{
    RunResult r = runExperiment(specSpec());
    const ModeShares st = modeShares(r.startup);
    const ModeShares sd = modeShares(r.steady);
    const double os_start = st.kernelPct + st.palPct;
    const double os_steady = sd.kernelPct + sd.palPct;
    EXPECT_GT(os_start, os_steady);
    EXPECT_LT(os_steady, 25.0);
}

TEST(SystemProps, ApacheIsKernelDominated)
{
    RunResult r = runExperiment(apacheSpec());
    const ModeShares m = modeShares(r.steady);
    EXPECT_GT(m.kernelPct + m.palPct, 55.0);
    EXPECT_LT(m.userPct, 40.0);
}

TEST(SystemProps, SmtBeatsSuperscalarOnApache)
{
    RunSpec smt = apacheSpec();
    RunSpec ss = apacheSpec();
    ss.smt = false;
    ss.measureInstrs = 400000;
    RunResult r_smt = runExperiment(smt);
    RunResult r_ss = runExperiment(ss);
    const double ipc_smt = archMetrics(r_smt.steady).ipc;
    const double ipc_ss = archMetrics(r_ss.steady).ipc;
    EXPECT_GT(ipc_smt, 1.5 * ipc_ss);
}

TEST(SystemProps, SmtBeatsSuperscalarOnSpecInt)
{
    RunSpec smt = specSpec();
    RunSpec ss = specSpec();
    ss.smt = false;
    ss.measureInstrs = 400000;
    RunResult r_smt = runExperiment(smt);
    RunResult r_ss = runExperiment(ss);
    EXPECT_GT(archMetrics(r_smt.steady).ipc,
              archMetrics(r_ss.steady).ipc);
}

TEST(SystemProps, ApacheStressesCachesMoreThanSpecInt)
{
    RunResult ra = runExperiment(apacheSpec());
    RunResult rs = runExperiment(specSpec());
    const ArchMetrics a = archMetrics(ra.steady);
    const ArchMetrics s = archMetrics(rs.steady);
    EXPECT_GT(a.l1dMissPct, s.l1dMissPct);
}

TEST(SystemProps, AppOnlyRemovesKernelWork)
{
    RunSpec with_os = specSpec();
    RunSpec app_only = specSpec();
    app_only.withOs = false;
    RunResult r1 = runExperiment(with_os);
    RunResult r2 = runExperiment(app_only);
    const ModeShares m2 = modeShares(r2.steady);
    EXPECT_NEAR(m2.userPct, 100.0, 0.1);
    // Throughput stays within the same band (the paper reports a
    // 5% delta; our scaled simulation diverges more — see
    // EXPERIMENTS.md, Table 4).
    EXPECT_GE(archMetrics(r2.steady).ipc,
              archMetrics(r1.steady).ipc * 0.5);
    EXPECT_LE(archMetrics(r2.steady).ipc,
              archMetrics(r1.steady).ipc * 1.5);
}

TEST(SystemProps, KernelCacheBehaviorWorseThanUser)
{
    RunResult r = runExperiment(specSpec());
    const MissBreakdown b = missBreakdown(r.steady.l1d);
    EXPECT_GT(b.totalMissRate[1], b.totalMissRate[0]);
}

TEST(SystemProps, ApacheShowsConstructiveSharing)
{
    RunResult r = runExperiment(apacheSpec());
    const SharingBreakdown icache = sharingBreakdown(r.steady.l1i);
    const SharingBreakdown dcache = sharingBreakdown(r.steady.l1d);
    const double total =
        icache.avoidedPct[1][1] + dcache.avoidedPct[1][1];
    EXPECT_GT(total, 0.0); // kernel-kernel prefetching exists
}

TEST(SystemProps, MissCausePercentagesSumTo100)
{
    RunResult r = runExperiment(apacheSpec());
    for (const InterferenceStats *s :
         {&r.steady.l1d, &r.steady.l1i, &r.steady.l2,
          &r.steady.dtlb}) {
        if (s->totalMisses() == 0)
            continue;
        const MissBreakdown b = missBreakdown(*s);
        double sum = 0;
        for (int c = 0; c < 2; ++c)
            for (int k = 0; k < numMissCauses; ++k)
                sum += b.causePct[c][k];
        EXPECT_NEAR(sum, 100.0, 0.2);
    }
}

TEST(SystemProps, WindowsPartitionTheMeasurement)
{
    RunSpec s = specSpec();
    s.measureInstrs = 300000;
    s.windowInstrs = 100000;
    RunResult r = runExperiment(s);
    ASSERT_EQ(r.windows.size(), 3u);
    std::uint64_t sum = 0;
    for (const auto &w : r.windows)
        sum += w.core.totalRetired();
    EXPECT_EQ(sum, r.steady.core.totalRetired());
}

TEST(SystemProps, DeterministicAcrossRuns)
{
    RunSpec s = specSpec();
    s.measureInstrs = 200000;
    RunResult a = runExperiment(s);
    RunResult b = runExperiment(s);
    EXPECT_EQ(a.steady.core.cycles, b.steady.core.cycles);
    EXPECT_EQ(a.steady.l1d.totalMisses(),
              b.steady.l1d.totalMisses());
}

// Parameterized: IPC rises with hardware contexts (the core SMT
// claim, also the basis of the context-count ablation bench).
class ContextScale : public testing::TestWithParam<int>
{
};

TEST_P(ContextScale, ApacheThroughputScalesWithContexts)
{
    RunSpec s = apacheSpec();
    s.measureInstrs = 350000;
    s.startupInstrs = 250000;
    RunResult one;
    {
        RunSpec base = s;
        base.smt = false; // 1 context
        one = runExperiment(base);
    }
    // Custom context count via the harness is not exposed; compare
    // the 8-context SMT against the superscalar for each seed.
    s.seed = 99 + GetParam();
    RunResult many = runExperiment(s);
    EXPECT_GT(archMetrics(many.steady).ipc,
              archMetrics(one.steady).ipc);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ContextScale, testing::Values(1, 2));
