/**
 * @file
 * End-to-end system properties: the orderings the paper reports must
 * hold on the simulator (SMT beats superscalar, Apache is more
 * OS-intensive than SPECInt, kernel misses exceed user misses, ...).
 * These are the headline shape checks; the benches print the numbers.
 */

#include <gtest/gtest.h>

#include "harness/session.h"

using namespace smtos;

namespace {

Session::Config
specSpec()
{
    Session::Config s;
    s.workload.kind = WorkloadConfig::Kind::SpecInt;
    s.workload.spec.inputChunks = 24;
    s.phases.measureInstrs = 700000;
    return s;
}

Session::Config
apacheSpec()
{
    Session::Config s;
    s.workload.kind = WorkloadConfig::Kind::Apache;
    s.phases.startupInstrs = 400000;
    s.phases.measureInstrs = 700000;
    return s;
}

} // namespace

TEST(SystemProps, SpecIntSmtReachesHighIpc)
{
    RunResult r = Session(specSpec()).run();
    EXPECT_GT(archMetrics(r.steady).ipc, 3.0);
}

TEST(SystemProps, SpecIntStartupHasMoreOsThanSteady)
{
    RunResult r = Session(specSpec()).run();
    const ModeShares st = modeShares(r.startup);
    const ModeShares sd = modeShares(r.steady);
    const double os_start = st.kernelPct + st.palPct;
    const double os_steady = sd.kernelPct + sd.palPct;
    EXPECT_GT(os_start, os_steady);
    EXPECT_LT(os_steady, 25.0);
}

TEST(SystemProps, ApacheIsKernelDominated)
{
    RunResult r = Session(apacheSpec()).run();
    const ModeShares m = modeShares(r.steady);
    EXPECT_GT(m.kernelPct + m.palPct, 55.0);
    EXPECT_LT(m.userPct, 40.0);
}

TEST(SystemProps, SmtBeatsSuperscalarOnApache)
{
    Session::Config smt = apacheSpec();
    Session::Config ss = apacheSpec();
    ss.system.smt = false;
    ss.phases.measureInstrs = 400000;
    RunResult r_smt = Session(smt).run();
    RunResult r_ss = Session(ss).run();
    const double ipc_smt = archMetrics(r_smt.steady).ipc;
    const double ipc_ss = archMetrics(r_ss.steady).ipc;
    EXPECT_GT(ipc_smt, 1.5 * ipc_ss);
}

TEST(SystemProps, SmtBeatsSuperscalarOnSpecInt)
{
    Session::Config smt = specSpec();
    Session::Config ss = specSpec();
    ss.system.smt = false;
    ss.phases.measureInstrs = 400000;
    RunResult r_smt = Session(smt).run();
    RunResult r_ss = Session(ss).run();
    EXPECT_GT(archMetrics(r_smt.steady).ipc,
              archMetrics(r_ss.steady).ipc);
}

TEST(SystemProps, ApacheStressesCachesMoreThanSpecInt)
{
    RunResult ra = Session(apacheSpec()).run();
    RunResult rs = Session(specSpec()).run();
    const ArchMetrics a = archMetrics(ra.steady);
    const ArchMetrics s = archMetrics(rs.steady);
    EXPECT_GT(a.l1dMissPct, s.l1dMissPct);
}

TEST(SystemProps, AppOnlyRemovesKernelWork)
{
    Session::Config with_os = specSpec();
    Session::Config app_only = specSpec();
    app_only.system.withOs = false;
    RunResult r1 = Session(with_os).run();
    RunResult r2 = Session(app_only).run();
    const ModeShares m2 = modeShares(r2.steady);
    EXPECT_NEAR(m2.userPct, 100.0, 0.1);
    // Throughput stays within the same band (the paper reports a
    // 5% delta; our scaled simulation diverges more — see
    // EXPERIMENTS.md, Table 4).
    EXPECT_GE(archMetrics(r2.steady).ipc,
              archMetrics(r1.steady).ipc * 0.5);
    EXPECT_LE(archMetrics(r2.steady).ipc,
              archMetrics(r1.steady).ipc * 1.5);
}

TEST(SystemProps, KernelCacheBehaviorWorseThanUser)
{
    RunResult r = Session(specSpec()).run();
    const MissBreakdown b = missBreakdown(r.steady.l1d);
    EXPECT_GT(b.totalMissRate[1], b.totalMissRate[0]);
}

TEST(SystemProps, ApacheShowsConstructiveSharing)
{
    RunResult r = Session(apacheSpec()).run();
    const SharingBreakdown icache = sharingBreakdown(r.steady.l1i);
    const SharingBreakdown dcache = sharingBreakdown(r.steady.l1d);
    const double total =
        icache.avoidedPct[1][1] + dcache.avoidedPct[1][1];
    EXPECT_GT(total, 0.0); // kernel-kernel prefetching exists
}

TEST(SystemProps, MissCausePercentagesSumTo100)
{
    RunResult r = Session(apacheSpec()).run();
    for (const InterferenceStats *s :
         {&r.steady.l1d, &r.steady.l1i, &r.steady.l2,
          &r.steady.dtlb}) {
        if (s->totalMisses() == 0)
            continue;
        const MissBreakdown b = missBreakdown(*s);
        double sum = 0;
        for (int c = 0; c < 2; ++c)
            for (int k = 0; k < numMissCauses; ++k)
                sum += b.causePct[c][k];
        EXPECT_NEAR(sum, 100.0, 0.2);
    }
}

TEST(SystemProps, WindowsPartitionTheMeasurement)
{
    Session::Config s = specSpec();
    s.phases.measureInstrs = 300000;
    s.phases.windowInstrs = 100000;
    RunResult r = Session(s).run();
    ASSERT_EQ(r.windows.size(), 3u);
    std::uint64_t sum = 0;
    for (const auto &w : r.windows)
        sum += w.core.totalRetired();
    EXPECT_EQ(sum, r.steady.core.totalRetired());
}

TEST(SystemProps, DeterministicAcrossRuns)
{
    Session::Config s = specSpec();
    s.phases.measureInstrs = 200000;
    RunResult a = Session(s).run();
    RunResult b = Session(s).run();
    EXPECT_EQ(a.steady.core.cycles, b.steady.core.cycles);
    EXPECT_EQ(a.steady.l1d.totalMisses(),
              b.steady.l1d.totalMisses());
}

// Parameterized: IPC rises with hardware contexts (the core SMT
// claim, also the basis of the context-count ablation bench).
class ContextScale : public testing::TestWithParam<int>
{
};

TEST_P(ContextScale, ApacheThroughputScalesWithContexts)
{
    Session::Config s = apacheSpec();
    s.phases.measureInstrs = 350000;
    s.phases.startupInstrs = 250000;
    RunResult one;
    {
        Session::Config base = s;
        base.system.smt = false; // 1 context
        one = Session(base).run();
    }
    // Custom context count via the harness is not exposed; compare
    // the 8-context SMT against the superscalar for each seed.
    s.workload.seed = 99 + GetParam();
    RunResult many = Session(s).run();
    EXPECT_GT(archMetrics(many.steady).ipc,
              archMetrics(one.steady).ipc);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ContextScale, testing::Values(1, 2));
