/**
 * @file
 * Broad property sweeps (TEST_P) across hardware parameters: the
 * invariants that must hold for any configuration — classification
 * accounting, monotonic capacity effects, queue conservation, and
 * pipeline-parameter sanity.
 */

#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "common/rng.h"
#include "harness/session.h"
#include "mem/cache.h"
#include "vm/tlb.h"

using namespace smtos;

// ---------------------------------------------------------------
// Cache classification invariants across geometry x thread count.
// ---------------------------------------------------------------

using CacheSweepParam = std::tuple<int, int, int>; // sizeKB, assoc, thr

class CacheSweep : public testing::TestWithParam<CacheSweepParam>
{
};

TEST_P(CacheSweep, AccountingInvariants)
{
    const auto [size_kb, assoc, threads] = GetParam();
    CacheParams p;
    p.sizeBytes = static_cast<std::uint64_t>(size_kb) * 1024;
    p.assoc = assoc;
    p.lineBytes = 64;
    Cache c(p);
    Rng rng(size_kb * 131 + assoc * 17 + threads);
    for (int i = 0; i < 20000; ++i) {
        const ThreadId t = static_cast<ThreadId>(rng.below(threads));
        const Mode m = rng.chance(0.3) ? Mode::Kernel : Mode::User;
        c.access(rng.below(256 * 1024) & ~7ull,
                 AccessInfo{t, m, 0}, rng.chance(0.25));
    }
    const InterferenceStats &s = c.stats();
    // 1) misses never exceed accesses, per class.
    EXPECT_LE(s.misses[0], s.accesses[0]);
    EXPECT_LE(s.misses[1], s.accesses[1]);
    // 2) causes partition the misses exactly.
    for (int cls = 0; cls < 2; ++cls) {
        std::uint64_t sum = 0;
        for (int k = 0; k < numMissCauses; ++k)
            sum += s.cause[cls][k];
        EXPECT_EQ(sum, s.misses[cls]);
    }
    // 3) single-thread runs can have no interthread conflicts.
    if (threads == 1) {
        EXPECT_EQ(s.cause[0][static_cast<int>(
                      MissCause::Interthread)],
                  0u);
        EXPECT_EQ(s.cause[1][static_cast<int>(
                      MissCause::Interthread)],
                  0u);
    }
    // 4) avoided misses only possible with >1 thread.
    const std::uint64_t avoided = s.avoided[0][0] + s.avoided[0][1] +
                                  s.avoided[1][0] + s.avoided[1][1];
    if (threads == 1) {
        EXPECT_EQ(avoided, 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheSweep,
    testing::Combine(testing::Values(1, 4, 16, 128),
                     testing::Values(1, 2, 4),
                     testing::Values(1, 2, 8)));

// ---------------------------------------------------------------
// Bigger caches never miss more on an identical trace.
// ---------------------------------------------------------------

class CacheMonotone : public testing::TestWithParam<int>
{
};

TEST_P(CacheMonotone, FullyAssocCapacityMonotonic)
{
    // LRU with full associativity has the stack property: a larger
    // cache never misses more on the same reference trace.
    auto run = [&](std::uint64_t kb) {
        CacheParams p;
        p.sizeBytes = kb * 1024;
        p.assoc = static_cast<int>(p.sizeBytes / 64); // fully assoc
        Cache c(p);
        Rng rng(GetParam());
        for (int i = 0; i < 30000; ++i)
            c.access(rng.below(64 * 1024) & ~7ull,
                     AccessInfo{1, Mode::User, 0}, false);
        return c.stats().totalMisses();
    };
    const auto m_small = run(2);
    const auto m_big = run(8);
    EXPECT_GE(m_small, m_big);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CacheMonotone,
                         testing::Values(1, 2, 3, 4));

// ---------------------------------------------------------------
// TLB invariants across sizes and ASN counts.
// ---------------------------------------------------------------

using TlbSweepParam = std::tuple<int, int>; // entries, spaces

class TlbSweep : public testing::TestWithParam<TlbSweepParam>
{
};

TEST_P(TlbSweep, LookupInsertConsistency)
{
    const auto [entries, spaces] = GetParam();
    Tlb t("T", entries);
    Rng rng(entries * 31 + spaces);
    for (int i = 0; i < 5000; ++i) {
        const Asn asn = static_cast<Asn>(rng.below(spaces));
        const Addr vpn = rng.below(256);
        AccessInfo who{static_cast<ThreadId>(asn), Mode::User, 0};
        if (t.lookup(vpn, asn, who) < 0)
            t.insert(vpn, asn, vpn * 7 + asn, who);
        // Immediately after an insert, the translation must resolve
        // to the inserted frame.
        EXPECT_EQ(t.lookup(vpn, asn, who),
                  static_cast<std::int64_t>(vpn * 7 + asn));
    }
    EXPECT_LE(t.validEntries(), entries);
    const auto &s = t.stats();
    for (int cls = 0; cls < 2; ++cls) {
        std::uint64_t sum = 0;
        for (int k = 0; k < numMissCauses; ++k)
            sum += s.cause[cls][k];
        EXPECT_EQ(sum, s.misses[cls]);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TlbSweep,
    testing::Combine(testing::Values(4, 16, 64, 128),
                     testing::Values(1, 3, 9)));

// ---------------------------------------------------------------
// System-level parameter sanity sweeps.
// ---------------------------------------------------------------

class ContextSweep : public testing::TestWithParam<int>
{
};

TEST_P(ContextSweep, SpecIntRunsAtAnyContextCount)
{
    Session::Config s;
    s.workload.kind = WorkloadConfig::Kind::SpecInt;
    s.workload.spec.numApps = 4;
    s.workload.spec.inputChunks = 8;
    s.system.topology.contextsPerCore = GetParam();
    s.phases.startupInstrs = 150'000;
    s.phases.measureInstrs = 250'000;
    RunResult r = Session(s).run();
    EXPECT_GE(r.steady.core.totalRetired(), 250'000u);
    EXPECT_GT(archMetrics(r.steady).ipc, 0.1);
    // Fetchable contexts can never exceed the configured count.
    EXPECT_LE(archMetrics(r.steady).fetchableContexts,
              static_cast<double>(GetParam()) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Counts, ContextSweep,
                         testing::Values(1, 2, 3, 5, 8));

class SeedSweep : public testing::TestWithParam<int>
{
};

TEST_P(SeedSweep, ApacheServesUnderAnySeed)
{
    Session::Config s;
    s.workload.kind = WorkloadConfig::Kind::Apache;
    s.workload.apache.numServers = 16;
    s.workload.seed = 1000 + GetParam();
    s.phases.startupInstrs = 900'000;
    s.phases.measureInstrs = 900'000;
    RunResult r = Session(s).run();
    EXPECT_GT(r.requestsServed, 0u);
    const ModeShares m = modeShares(r.steady);
    EXPECT_GT(m.kernelPct + m.palPct, 40.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep, testing::Values(1, 2, 3));

// ---------------------------------------------------------------
// Mode accounting: retired-by-mode always partitions the total.
// ---------------------------------------------------------------

class ModePartition : public testing::TestWithParam<bool>
{
};

TEST_P(ModePartition, RetiredModesSumExactly)
{
    Session::Config s;
    s.workload.kind = GetParam() ? WorkloadConfig::Kind::Apache
                            : WorkloadConfig::Kind::SpecInt;
    s.workload.spec.inputChunks = 8;
    s.phases.startupInstrs = 200'000;
    s.phases.measureInstrs = 300'000;
    RunResult r = Session(s).run();
    const auto &c = r.steady.core;
    EXPECT_EQ(c.retired[0] + c.retired[1] + c.retired[2] +
                  c.retired[3],
              c.totalRetired());
    const ModeShares m = modeShares(r.steady);
    EXPECT_NEAR(m.userPct + m.kernelPct + m.palPct + m.idlePct,
                100.0, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Workloads, ModePartition,
                         testing::Values(false, true));
