/**
 * @file
 * End-to-end request tracing: the span-sum == end-to-end invariant
 * must hold exactly for every clean span (verified under the
 * co-simulation oracle across context counts), tracing must not
 * perturb the simulation (identical cycles/metrics with the tracer on
 * and off), same-seed runs must produce byte-identical span JSONL,
 * tracer state must round-trip through snapshot/resume taken
 * mid-request (a straight run's span file equals the concatenation of
 * the two halves' files), and injected packet loss must surface as
 * retransmit-annotated spans that stay out of the clean histograms.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "fault/fault.h"
#include "harness/cosim.h"
#include "harness/session.h"
#include "net/clients.h"
#include "obs/reqtrace.h"
#include "obs/session.h"
#include "sim/config.h"
#include "sim/export.h"
#include "sim/system.h"
#include "workload/apache.h"
#include "workload/specint.h"

using namespace smtos;

namespace {

namespace fs = std::filesystem;

std::string
readFile(const fs::path &p)
{
    std::ifstream in(p, std::ios::binary);
    EXPECT_TRUE(in.good()) << "cannot open " << p;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/** Temp dir for one test's artifacts, removed on destruction. */
struct TempDir
{
    fs::path path;

    explicit TempDir(const std::string &tag)
        : path(fs::temp_directory_path() /
               ("smtos_reqtrace_" + tag + "_" +
                std::to_string(static_cast<unsigned>(::getpid()))))
    {
        fs::create_directories(path);
    }
    ~TempDir() { fs::remove_all(path); }
};

/**
 * Every clean span must telescope: monotone boundaries whose stage
 * differences sum exactly to the client-observed end-to-end latency.
 */
void
checkCleanSpans(const RequestTracer &tr)
{
    std::uint64_t clean = 0;
    for (const RequestTracer::Span &s : tr.completed()) {
        if (!s.clean)
            continue;
        ++clean;
        std::uint64_t sum = 0;
        for (int b = 0; b < numReqStages; ++b) {
            ASSERT_LE(s.t[b], s.t[b + 1])
                << "non-monotone boundary " << b << " of span ("
                << s.client << ", " << s.seq << ")";
            sum += s.t[b + 1] - s.t[b];
        }
        ASSERT_EQ(sum, s.t[numReqBoundaries - 1] - s.t[0])
            << "stage sum != end-to-end for span (" << s.client
            << ", " << s.seq << ")";
    }
    EXPECT_EQ(clean, tr.stats().completedClean);
}

/** Aggregate counters must agree with themselves and the clients. */
void
checkStatsConsistency(const RequestTracer &tr,
                      const ClientPopulation &cl)
{
    const ReqTraceStats &st = tr.stats();
    std::uint64_t stageSum = 0, queueing = 0, service = 0;
    for (int i = 0; i < numReqStages; ++i) {
        stageSum += st.stageCycles[i];
        (reqStageIsQueueing(i) ? queueing : service) +=
            st.stageCycles[i];
    }
    EXPECT_EQ(queueing, st.queueingCycles);
    EXPECT_EQ(service, st.serviceCycles);
    EXPECT_EQ(stageSum, st.queueingCycles + st.serviceCycles);
    EXPECT_EQ(tr.e2e().totalSamples(), st.completedClean);
    // The tracer was attached before the first packet, so every
    // completion is classified; the client histograms partition the
    // same way (first-try == clean, retried == retried).
    EXPECT_EQ(st.completedClean + st.completedRetried +
                  st.completedIrregular,
              cl.responsesCompleted());
    EXPECT_EQ(st.completedIrregular, 0u);
    EXPECT_EQ(st.completedClean, cl.latency().totalSamples());
    EXPECT_EQ(st.completedRetried, cl.retriedResponses());
}

MachineConfig
apacheConfig(int contexts)
{
    MachineConfig cfg = smtConfig();
    cfg.core.numContexts = contexts;
    cfg.kernel.seed = 11;
    cfg.kernel.enableNetwork = true;
    return cfg;
}

/** JSON with one ,"key":{...} object removed (brace-balanced). */
std::string
stripObject(std::string json, const std::string &key)
{
    const std::string tag = ",\"" + key + "\":{";
    const std::size_t at = json.find(tag);
    if (at == std::string::npos)
        return json;
    std::size_t depth = 0, end = at;
    for (std::size_t i = at + tag.size() - 1; i < json.size(); ++i) {
        if (json[i] == '{')
            ++depth;
        else if (json[i] == '}' && --depth == 0) {
            end = i;
            break;
        }
    }
    json.erase(at, end - at + 1);
    return json;
}

Session::Config
tracedApache()
{
    Session::Config cfg;
    cfg.workload.kind = WorkloadConfig::Kind::Apache;
    cfg.phases.startupInstrs = 1'000'000;
    cfg.phases.measureInstrs = 1'500'000;
    return cfg;
}

ObsConfig
spanSink(const fs::path &file)
{
    ObsConfig oc;
    oc.reqtrace = true;
    oc.reqtraceFilePath = file.string();
    return oc;
}

} // namespace

// The tentpole invariant, under the co-simulation oracle: at every
// context count the traced run stays architecturally exact, and every
// clean span telescopes to the client-observed latency.
class ReqTraceInvariant : public ::testing::TestWithParam<int>
{
};

TEST_P(ReqTraceInvariant, CleanSpansTelescopeUnderCosim)
{
    const int contexts = GetParam();
    System sys(apacheConfig(contexts));

    ObsConfig oc;
    oc.reqtrace = true;
    ObsSession obs(oc);
    obs.attach(sys);

    ApacheWorkload w = buildApache(ApacheParams{});
    installApache(sys.kernel(), w);
    Cosim cosim(sys.pipeline());
    sys.start();
    sys.runCycles(1'200'000);

    EXPECT_FALSE(cosim.diverged()) << cosim.report();
    EXPECT_GT(cosim.checked(), 50000u);

    const RequestTracer &tr = *obs.reqtrace();
    EXPECT_GT(tr.stats().tracked, 0u);
    if (contexts >= 2) {
        EXPECT_GT(tr.stats().completedClean, 0u);
    }
    checkCleanSpans(tr);
    checkStatsConsistency(tr, sys.kernel().clients());
}

INSTANTIATE_TEST_SUITE_P(Contexts, ReqTraceInvariant,
                         ::testing::Values(1, 2, 4, 8),
                         [](const auto &info) {
                             return "Ctx" +
                                    std::to_string(info.param);
                         });

// A workload with no network traffic must produce no spans — and the
// tracer's presence must not disturb the oracle.
TEST(ReqTraceSpec, SpecIntHasNoSpans)
{
    MachineConfig cfg = smtConfig();
    cfg.kernel.seed = 7;
    System sys(cfg);

    ObsConfig oc;
    oc.reqtrace = true;
    ObsSession obs(oc);
    obs.attach(sys);

    SpecIntParams p;
    p.inputChunks = 24;
    SpecIntWorkload w = buildSpecInt(p);
    installSpecInt(sys.kernel(), w);
    Cosim cosim(sys.pipeline());
    sys.start();
    sys.runCycles(150'000);

    EXPECT_FALSE(cosim.diverged()) << cosim.report();
    const RequestTracer &tr = *obs.reqtrace();
    EXPECT_EQ(tr.stats().tracked, 0u);
    EXPECT_EQ(tr.inflight(), 0u);
    EXPECT_TRUE(tr.completed().empty());
}

// Tracing is observation only: the traced run's cycles, requests, and
// exported metrics (minus the reqtrace block itself) are identical to
// the untraced run's, and only the traced timeline carries request
// flow events and queue-depth counter tracks.
TEST(ReqTraceParity, TracingDoesNotPerturbTheSimulation)
{
    Session::Config cfg;
    cfg.workload.kind = WorkloadConfig::Kind::Apache;
    cfg.phases.startupInstrs = 200'000;
    cfg.phases.measureInstrs = 400'000;

    const RunResult plain = Session(cfg).run();

    TempDir dir("parity");
    ObsConfig untracedOc;
    untracedOc.timelinePath = (dir.path / "plain.json").string();
    RunResult probed;
    {
        ObsSession obs(untracedOc);
        Session::Config c = cfg;
        c.obs = &obs;
        probed = Session(c).run();
    }

    ObsConfig tracedOc = spanSink(dir.path / "spans.jsonl");
    tracedOc.timelinePath = (dir.path / "traced.json").string();
    RunResult traced;
    {
        ObsSession obs(tracedOc);
        Session::Config c = cfg;
        c.obs = &obs;
        traced = Session(c).run();
    }

    EXPECT_EQ(traced.cycles, plain.cycles);
    EXPECT_EQ(traced.requestsServed, plain.requestsServed);
    EXPECT_EQ(probed.cycles, plain.cycles);
    EXPECT_EQ(toJson(probed.steady), toJson(plain.steady));
    EXPECT_EQ(stripObject(toJson(traced.steady), "reqtrace"),
              toJson(plain.steady));
    EXPECT_NE(toJson(traced.steady).find("\"reqtrace\":"),
              std::string::npos);

    const std::string plainTl = readFile(dir.path / "plain.json");
    const std::string tracedTl = readFile(dir.path / "traced.json");
    EXPECT_EQ(plainTl.find("\"cat\":\"req\""), std::string::npos);
    EXPECT_EQ(plainTl.find("queues"), std::string::npos);
    EXPECT_NE(tracedTl.find("\"cat\":\"req\""), std::string::npos);
    EXPECT_NE(tracedTl.find("\"cat\":\"queue\""), std::string::npos);
}

// Same seed, same spans, same bytes.
TEST(ReqTraceDeterminism, SameSeedSpanFilesAreByteIdentical)
{
    TempDir dir("determ");
    std::string bytes[2];
    for (int i = 0; i < 2; ++i) {
        const fs::path f =
            dir.path / ("spans" + std::to_string(i) + ".jsonl");
        ObsSession obs(spanSink(f));
        Session::Config cfg = tracedApache();
        cfg.obs = &obs;
        Session(cfg).run();
        bytes[i] = readFile(f);
    }
    EXPECT_FALSE(bytes[0].empty());
    EXPECT_EQ(bytes[0], bytes[1]);
    EXPECT_NE(bytes[0].find("\"clean\":true"), std::string::npos);
}

// Snapshot taken with requests in flight: the resumed tracer picks
// the spans up mid-pipeline, its span file continues exactly where
// the origin's stopped (concatenation equals the straight-through
// file), and the final aggregates match the straight run's.
TEST(ReqTraceSnap, ResumeMidRequestRoundTrips)
{
    TempDir dir("snap");
    const Session::Config base = tracedApache();

    // Straight through: one session, one span file.
    ReqTraceStats straightStats;
    std::uint64_t straightCycles = 0;
    {
        ObsSession obs(spanSink(dir.path / "straight.jsonl"));
        Session::Config cfg = base;
        cfg.obs = &obs;
        Session s(cfg);
        s.runStartup();
        straightCycles = s.run().cycles;
        straightStats = obs.reqtrace()->stats();
    }

    // Split: startup + snapshot under one tracer, measurement under a
    // fresh tracer restored from the artifact.
    std::vector<std::uint8_t> artifact;
    {
        ObsSession obs(spanSink(dir.path / "half1.jsonl"));
        Session::Config cfg = base;
        cfg.obs = &obs;
        Session origin(cfg);
        origin.runStartup();
        artifact = origin.snapshot();
        EXPECT_GT(obs.reqtrace()->inflight(), 0u)
            << "snapshot was not taken mid-request";
        obs.finish();
    }
    ReqTraceStats resumedStats;
    std::uint64_t resumedCycles = 0;
    {
        ObsSession obs(spanSink(dir.path / "half2.jsonl"));
        Session::ResumeOptions opts;
        opts.phases = base.phases;
        opts.obs = &obs;
        std::string err;
        std::unique_ptr<Session> resumed =
            Session::resume(artifact, opts, &err);
        ASSERT_NE(resumed, nullptr) << err;
        resumedCycles = resumed->run().cycles;
        resumedStats = obs.reqtrace()->stats();
    }

    EXPECT_EQ(resumedCycles, straightCycles);
    EXPECT_EQ(readFile(dir.path / "half1.jsonl") +
                  readFile(dir.path / "half2.jsonl"),
              readFile(dir.path / "straight.jsonl"));

    EXPECT_EQ(resumedStats.tracked, straightStats.tracked);
    EXPECT_EQ(resumedStats.completedClean,
              straightStats.completedClean);
    EXPECT_EQ(resumedStats.completedRetried,
              straightStats.completedRetried);
    EXPECT_EQ(resumedStats.completedIrregular,
              straightStats.completedIrregular);
    EXPECT_EQ(resumedStats.aborted, straightStats.aborted);
    EXPECT_EQ(resumedStats.queueingCycles,
              straightStats.queueingCycles);
    EXPECT_EQ(resumedStats.serviceCycles,
              straightStats.serviceCycles);
    for (int i = 0; i < numReqStages; ++i)
        EXPECT_EQ(resumedStats.stageCycles[i],
                  straightStats.stageCycles[i])
            << reqStageName(i);
}

// The snapshot tracer section is strictly optional: an untraced
// session's artifact carries no RQTR section and still resumes into
// an untraced session.
TEST(ReqTraceSnap, UntracedArtifactHasNoTracerSection)
{
    Session::Config cfg = tracedApache();
    cfg.phases.startupInstrs = 200'000;
    Session s(cfg);
    s.runStartup();
    const std::vector<std::uint8_t> artifact = s.snapshot();

    const std::string bytes(artifact.begin(), artifact.end());
    EXPECT_EQ(bytes.find("RQTR"), std::string::npos);

    Session::ResumeOptions opts;
    opts.phases.measureInstrs = 100'000;
    std::string err;
    EXPECT_NE(Session::resume(artifact, opts, &err), nullptr) << err;
}

// Packet loss: retransmitted requests are annotated, counted, and
// timed apart; the spans that stayed clean still telescope exactly.
TEST(ReqTraceFaults, LossAnnotatesRetriedSpans)
{
    MachineConfig cfg = apacheConfig(8);
    // A light client population keeps the unlost requests well under
    // the retry timeout (so they complete clean) while lost packets
    // still time out and retry within the run.
    cfg.kernel.web.numClients = 16;
    cfg.kernel.web.retryTimeout = 200000;
    System sys(cfg);

    TempDir dir("loss");
    ObsSession obs(spanSink(dir.path / "spans.jsonl"));
    obs.attach(sys);

    FaultParams fp;
    fp.lossPct = 0.01;
    FaultPlan plan(fp);
    sys.attachFaults(&plan);

    ApacheWorkload w = buildApache(ApacheParams{});
    installApache(sys.kernel(), w);
    sys.start();
    sys.runCycles(1'500'000);
    obs.finish();

    const RequestTracer &tr = *obs.reqtrace();
    const ReqTraceStats &st = tr.stats();
    EXPECT_GT(sys.kernel().faultCounters().pktLost, 0u);
    EXPECT_GT(st.retransmitAnnotations, 0u);
    EXPECT_GT(st.completedRetried, 0u);
    EXPECT_GT(st.completedClean, 0u);
    checkCleanSpans(tr);
    EXPECT_EQ(st.completedRetried,
              sys.kernel().clients().retriedResponses());
    // Retried spans never land in the clean histograms.
    EXPECT_EQ(tr.e2e().totalSamples(), st.completedClean);

    const std::string spans = readFile(dir.path / "spans.jsonl");
    EXPECT_NE(spans.find("\"retried\":true"), std::string::npos);
    EXPECT_NE(spans.find("\"clean\":true"), std::string::npos);
}
