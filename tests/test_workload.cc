/**
 * @file
 * Workload-builder tests: image validity, determinism, instruction
 * mixes, and per-app diversity.
 */

#include <gtest/gtest.h>

#include "kernel/tags.h"
#include "workload/apache.h"
#include "workload/specint.h"

using namespace smtos;

namespace {

/** Count the dynamic-oblivious static mix of an image. */
struct StaticMix
{
    int loads = 0, stores = 0, branches = 0, fp = 0, total = 0;
    int syscalls = 0;
};

StaticMix
staticMix(const CodeImage &img)
{
    StaticMix m;
    for (int f = 0; f < img.numFunctions(); ++f) {
        for (int b = 0; b < img.numBlocks(f); ++b) {
            const BasicBlock &bb = img.block(f, b);
            for (int i = 0; i < bb.numInstrs; ++i) {
                const Instr &in = img.instrAt(f, b, i);
                if (in.op == Op::Nop)
                    continue; // padding
                ++m.total;
                m.loads += in.isLoad();
                m.stores += in.isStore();
                m.branches += in.isBranch();
                m.fp += (in.op == Op::FpAdd || in.op == Op::FpMul);
                m.syscalls += (in.op == Op::Syscall);
            }
        }
    }
    return m;
}

} // namespace

TEST(SpecIntBuild, EightValidImages)
{
    SpecIntParams p;
    SpecIntWorkload w = buildSpecInt(p);
    EXPECT_EQ(w.images.size(), 8u);
    for (const auto &img : w.images) {
        EXPECT_TRUE(img->finalized());
        EXPECT_GT(img->numInstrs(), 500u);
    }
}

TEST(SpecIntBuild, Deterministic)
{
    SpecIntParams p;
    SpecIntWorkload a = buildSpecInt(p);
    SpecIntWorkload b = buildSpecInt(p);
    for (size_t i = 0; i < a.images.size(); ++i)
        EXPECT_EQ(a.images[i]->numInstrs(), b.images[i]->numInstrs());
}

TEST(SpecIntBuild, AppsDiffer)
{
    SpecIntParams p;
    SpecIntWorkload w = buildSpecInt(p);
    EXPECT_NE(w.images[0]->numInstrs(), w.images[1]->numInstrs());
}

TEST(SpecIntBuild, MixNearProfile)
{
    SpecIntParams p;
    SpecIntWorkload w = buildSpecInt(p);
    for (const auto &img : w.images) {
        StaticMix m = staticMix(*img);
        // Static mix is diluted by terminators and mid-block
        // error-check branches; the dynamic mix (Table 2 bench) is
        // the calibrated quantity. Assert loose static bands only.
        EXPECT_GT(m.loads / double(m.total), 0.10);
        EXPECT_LT(m.loads / double(m.total), 0.26);
        EXPECT_GT(m.stores / double(m.total), 0.05);
        EXPECT_LT(m.stores / double(m.total), 0.16);
        EXPECT_LT(m.fp / double(m.total), 0.06);
    }
}

TEST(SpecIntBuild, HasStartupReadLoop)
{
    SpecIntParams p;
    SpecIntWorkload w = buildSpecInt(p);
    StaticMix m = staticMix(*w.images[0]);
    EXPECT_GE(m.syscalls, 2); // read + the rare steady-state syscall
}

TEST(SpecIntBuild, MainIsInfinite)
{
    SpecIntParams p;
    SpecIntWorkload w = buildSpecInt(p);
    // Entry function's final instruction is a backward jump, never a
    // return: apps run forever.
    const CodeImage &img = *w.images[0];
    const int f = w.entryFuncs[0];
    const int last = img.numBlocks(f) - 1;
    const BasicBlock &bb = img.block(f, last);
    EXPECT_EQ(img.instrAt(f, last, bb.numInstrs - 1).op, Op::Jump);
}

TEST(ApacheBuild, ValidSharedImage)
{
    ApacheParams p;
    ApacheWorkload w = buildApache(p);
    EXPECT_TRUE(w.image->finalized());
    EXPECT_GT(w.image->numInstrs(), 2000u);
    EXPECT_GE(w.entryFunc, 0);
}

TEST(ApacheBuild, RequestPathSyscallSequence)
{
    ApacheParams p;
    ApacheWorkload w = buildApache(p);
    // The main function issues accept, read, stat, open, read,
    // writev, close in program order.
    const CodeImage &img = *w.image;
    const int f = w.entryFunc;
    std::vector<std::uint16_t> sys;
    for (int b = 0; b < img.numBlocks(f); ++b) {
        const BasicBlock &bb = img.block(f, b);
        for (int i = 0; i < bb.numInstrs; ++i) {
            const Instr &in = img.instrAt(f, b, i);
            if (in.op == Op::Syscall)
                sys.push_back(in.payload);
        }
    }
    const std::vector<std::uint16_t> expect = {
        SysAccept, SysRead, SysStat, SysOpen,
        SysRead,   SysWritev, SysClose, SysWrite};
    EXPECT_EQ(sys, expect);
}

TEST(ApacheBuild, NoFloatingPoint)
{
    ApacheParams p;
    ApacheWorkload w = buildApache(p);
    StaticMix m = staticMix(*w.image);
    EXPECT_EQ(m.fp, 0);
}

TEST(ApacheBuild, MixNearTable5User)
{
    ApacheParams p;
    ApacheWorkload w = buildApache(p);
    StaticMix m = staticMix(*w.image);
    EXPECT_GT(m.loads / double(m.total), 0.11);
    EXPECT_LT(m.loads / double(m.total), 0.28);
    EXPECT_GT(m.stores / double(m.total), 0.05);
    EXPECT_LT(m.stores / double(m.total), 0.16);
}

TEST(KernelImageBuild, AllEntryPointsExist)
{
    auto kc = buildKernelImage(7);
    EXPECT_TRUE(kc->image.finalized());
    EXPECT_GE(kc->palDtlbRefill, 0);
    EXPECT_GE(kc->palItlbRefill, 0);
    EXPECT_GE(kc->vmPageFault, 0);
    EXPECT_GE(kc->pageAlloc, 0);
    EXPECT_GE(kc->pageZero, 0);
    for (int v = 0; v < serviceVariants; ++v) {
        EXPECT_GE(kc->sysEntry[v], 0);
        EXPECT_GE(kc->svcReadFile[v], 0);
        EXPECT_GE(kc->svcReadSock[v], 0);
        EXPECT_GE(kc->svcWritev[v], 0);
        EXPECT_GE(kc->svcStat[v], 0);
        EXPECT_GE(kc->svcOpen[v], 0);
        EXPECT_GE(kc->svcClose[v], 0);
        EXPECT_GE(kc->svcAccept[v], 0);
        EXPECT_GE(kc->netOutput[v], 0);
    }
    for (int v = 0; v < netisrVariants; ++v)
        EXPECT_GE(kc->netisrLoop[v], 0);
    EXPECT_GE(kc->intrNet, 0);
    EXPECT_GE(kc->intrTimer, 0);
    EXPECT_GE(kc->schedSwitch, 0);
    EXPECT_GE(kc->idleLoop, 0);
}

TEST(KernelImageBuild, PalHandlersArePal)
{
    auto kc = buildKernelImage(7);
    EXPECT_TRUE(kc->image.func(kc->palDtlbRefill).pal);
    EXPECT_TRUE(kc->image.func(kc->palItlbRefill).pal);
    EXPECT_FALSE(kc->image.func(kc->vmPageFault).pal);
}

TEST(KernelImageBuild, KernelMemOpsHalfPhysical)
{
    auto kc = buildKernelImage(7);
    int mem = 0, phys = 0;
    const CodeImage &img = kc->image;
    for (int f = 0; f < img.numFunctions(); ++f) {
        for (int b = 0; b < img.numBlocks(f); ++b) {
            const BasicBlock &bb = img.block(f, b);
            for (int i = 0; i < bb.numInstrs; ++i) {
                const Instr &in = img.instrAt(f, b, i);
                if (in.isMem()) {
                    ++mem;
                    phys += in.isPhysMem();
                }
            }
        }
    }
    EXPECT_NEAR(phys / double(mem), 0.55, 0.15);
}

TEST(KernelImageBuild, TagsCoverEveryFunction)
{
    auto kc = buildKernelImage(7);
    const CodeImage &img = kc->image;
    for (int f = 0; f < img.numFunctions(); ++f) {
        const Function &fn = img.func(f);
        // Padding functions carry tag -1; every named routine must
        // carry a valid service tag.
        if (fn.name.rfind("pad", 0) == 0)
            continue;
        EXPECT_GE(fn.tag, 0) << fn.name;
        EXPECT_LT(fn.tag, NumServiceTags) << fn.name;
    }
}

TEST(KernelImageBuild, VariantsAreDistinctFunctions)
{
    auto kc = buildKernelImage(7);
    for (int v = 1; v < serviceVariants; ++v)
        EXPECT_NE(kc->svcReadFile[0], kc->svcReadFile[v]);
}

// Parameterized sweep over app counts.
class SpecIntScale : public testing::TestWithParam<int>
{
};

TEST_P(SpecIntScale, BuildsRequestedAppCount)
{
    SpecIntParams p;
    p.numApps = GetParam();
    SpecIntWorkload w = buildSpecInt(p);
    EXPECT_EQ(static_cast<int>(w.images.size()), GetParam());
    EXPECT_EQ(static_cast<int>(w.entryFuncs.size()), GetParam());
}

INSTANTIATE_TEST_SUITE_P(Counts, SpecIntScale,
                         testing::Values(1, 2, 4, 8, 12));
