/**
 * @file
 * Branch-prediction tests: McFarling hybrid learning, BTB behavior
 * and classification, return-address stacks.
 */

#include <gtest/gtest.h>

#include "bp/btb.h"
#include "bp/mcfarling.h"
#include "bp/ras.h"
#include "common/rng.h"

using namespace smtos;

namespace {

AccessInfo
user(ThreadId t)
{
    return AccessInfo{t, Mode::User, 0};
}

} // namespace

TEST(McFarling, LearnsAlwaysTaken)
{
    McFarling m;
    const Addr pc = 0x1000;
    for (int i = 0; i < 64; ++i)
        m.train(pc, true);
    EXPECT_TRUE(m.predict(pc));
}

TEST(McFarling, LearnsAlwaysNotTaken)
{
    McFarling m;
    const Addr pc = 0x2000;
    for (int i = 0; i < 64; ++i)
        m.train(pc, false);
    EXPECT_FALSE(m.predict(pc));
}

TEST(McFarling, LocalHistoryLearnsLoopPattern)
{
    // Pattern T T T N repeating: a loop of trip 4. After warmup the
    // predictor should track it nearly perfectly.
    McFarling m;
    const Addr pc = 0x3000;
    int correct = 0, total = 0;
    for (int i = 0; i < 4000; ++i) {
        const bool taken = (i % 4) != 3;
        const bool pred = m.predict(pc);
        if (i > 1000) {
            ++total;
            correct += (pred == taken);
        }
        m.train(pc, taken);
    }
    EXPECT_GT(static_cast<double>(correct) / total, 0.95);
}

TEST(McFarling, GlobalHistoryLearnsCorrelation)
{
    // Branch B is taken iff branch A was taken: only the global
    // (history-indexed) component can learn this.
    McFarling m;
    Rng rng(5);
    const Addr a = 0x4000, b = 0x5000;
    int correct = 0, total = 0;
    for (int i = 0; i < 8000; ++i) {
        const bool ta = rng.chance(0.5);
        m.predict(a);
        m.train(a, ta);
        const bool pred = m.predict(b);
        if (i > 4000) {
            ++total;
            correct += (pred == ta);
        }
        m.train(b, ta);
    }
    EXPECT_GT(static_cast<double>(correct) / total, 0.9);
}

TEST(McFarling, RandomBranchNearChance)
{
    McFarling m;
    Rng rng(17);
    const Addr pc = 0x6000;
    int correct = 0;
    const int n = 10000;
    for (int i = 0; i < n; ++i) {
        const bool t = rng.chance(0.5);
        correct += (m.predict(pc) == t);
        m.train(pc, t);
    }
    EXPECT_NEAR(static_cast<double>(correct) / n, 0.5, 0.06);
}

TEST(McFarling, BiasedBranchBeatsChance)
{
    McFarling m;
    Rng rng(19);
    const Addr pc = 0x7000;
    int correct = 0;
    const int n = 10000;
    for (int i = 0; i < n; ++i) {
        const bool t = rng.chance(0.9);
        correct += (m.predict(pc) == t);
        m.train(pc, t);
    }
    EXPECT_GT(static_cast<double>(correct) / n, 0.78);
}

TEST(McFarling, GhrCheckpointRestore)
{
    McFarling m;
    const auto g0 = m.ghr();
    m.pushHistory(true);
    m.pushHistory(false);
    EXPECT_NE(m.ghr(), g0);
    m.setGhr(g0);
    EXPECT_EQ(m.ghr(), g0);
}

TEST(McFarling, SharedHistoryPerturbation)
{
    // Thread interleaving perturbs the shared GHR: the same branch
    // trained in isolation vs interleaved with noise predicts
    // differently at least sometimes (this is the SMT interference
    // effect the paper measures).
    McFarling iso, mixed;
    Rng noise(23);
    const Addr pc = 0x8000;
    int diverged = 0;
    for (int i = 0; i < 2000; ++i) {
        const bool t = (i % 3) != 0;
        if (iso.predict(pc) != mixed.predict(pc))
            ++diverged;
        iso.train(pc, t);
        mixed.train(pc, t);
        mixed.train(pc + 64 * (1 + noise.below(50)),
                    noise.chance(0.5));
    }
    EXPECT_GT(diverged, 0);
}

TEST(Btb, MissThenUpdateThenHit)
{
    Btb b(64, 4);
    auto r = b.lookup(0x1000, user(1));
    EXPECT_FALSE(r.hit);
    b.update(0x1000, 0x2000, user(1));
    r = b.lookup(0x1000, user(1));
    EXPECT_TRUE(r.hit);
    EXPECT_EQ(r.target, 0x2000u);
}

TEST(Btb, UpdateRefreshesTarget)
{
    Btb b(64, 4);
    b.update(0x1000, 0x2000, user(1));
    b.update(0x1000, 0x3000, user(1));
    EXPECT_EQ(b.lookup(0x1000, user(1)).target, 0x3000u);
}

TEST(Btb, SetConflictEvictsLru)
{
    Btb b(8, 2); // 4 sets; pcs 16 bytes apart in same set
    const Addr s = 0x1000;
    const Addr stride = 4 * 4; // sets indexed by pc>>2
    b.update(s + 0 * stride, 1, user(1));
    b.update(s + 1 * stride, 2, user(1));
    b.lookup(s + 0 * stride, user(1)); // refresh LRU of first
    b.update(s + 2 * stride, 3, user(1)); // evicts second
    EXPECT_TRUE(b.present(s + 0 * stride));
    EXPECT_FALSE(b.present(s + 1 * stride));
}

TEST(Btb, EvictionClassified)
{
    Btb b(8, 2);
    const Addr stride = 4 * 4;
    b.lookup(0x1000, user(1));
    b.update(0x1000, 1, user(1));
    b.update(0x1000 + stride, 2, user(2));
    b.update(0x1000 + 2 * stride, 3, user(2)); // evicts 0x1000
    b.lookup(0x1000, user(1));
    EXPECT_EQ(b.stats().cause[0][static_cast<int>(
                  MissCause::Interthread)],
              1u);
}

TEST(Btb, KernelMissRateSeparated)
{
    Btb b(64, 4);
    AccessInfo k{1, Mode::Kernel, 0};
    b.lookup(0x1000, k);
    b.lookup(0x2000, user(2));
    b.update(0x2000, 5, user(2));
    b.lookup(0x2000, user(2));
    EXPECT_DOUBLE_EQ(b.missRatePct(true), 100.0);
    EXPECT_DOUBLE_EQ(b.missRatePct(false), 50.0);
}

TEST(Btb, WrongTargetCounter)
{
    Btb b(64, 4);
    b.noteWrongTarget();
    b.noteWrongTarget();
    EXPECT_EQ(b.wrongTargetHits(), 2u);
    b.resetStats();
    EXPECT_EQ(b.wrongTargetHits(), 0u);
}

TEST(Ras, LifoOrder)
{
    Ras r(8);
    r.push(100);
    r.push(200);
    EXPECT_EQ(r.pop(), 200u);
    EXPECT_EQ(r.pop(), 100u);
}

TEST(Ras, WrapsAroundWhenOverfull)
{
    Ras r(2);
    r.push(1);
    r.push(2);
    r.push(3); // overwrites 1
    EXPECT_EQ(r.pop(), 3u);
    EXPECT_EQ(r.pop(), 2u);
    EXPECT_EQ(r.pop(), 3u); // wrapped: oldest lost
}

TEST(Ras, CheckpointRestoresTop)
{
    Ras r(8);
    r.push(100);
    auto cp = r.save();
    r.push(200);
    r.pop();
    r.pop(); // disturbed
    r.restore(cp);
    EXPECT_EQ(r.pop(), 100u);
}

TEST(Ras, DeepCallChain)
{
    Ras r(16);
    for (Addr i = 0; i < 10; ++i)
        r.push(1000 + i);
    for (Addr i = 0; i < 10; ++i)
        EXPECT_EQ(r.pop(), 1000 + 9 - i);
}

// Parameterized: predictor accuracy must improve monotonically-ish
// with bias strength.
class BpBias : public testing::TestWithParam<double>
{
};

TEST_P(BpBias, AccuracyTracksBias)
{
    const double bias = GetParam();
    McFarling m;
    Rng rng(31);
    int correct = 0;
    const int n = 12000;
    for (int i = 0; i < n; ++i) {
        const Addr pc = 0x1000 + (i % 7) * 16;
        const bool t = rng.chance(bias);
        correct += (m.predict(pc) == t);
        m.train(pc, t);
    }
    const double acc = static_cast<double>(correct) / n;
    // Accuracy should be at least roughly max(bias, 1-bias) - 7%.
    const double floor = std::max(bias, 1.0 - bias) - 0.22;
    EXPECT_GT(acc, floor);
}

INSTANTIATE_TEST_SUITE_P(Biases, BpBias,
                         testing::Values(0.5, 0.7, 0.9, 0.97));
