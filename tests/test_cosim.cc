/**
 * @file
 * Lockstep reference-model validation: the timing pipeline's retired
 * stream must match the functional RefCore oracle instruction for
 * instruction across fuzzed programs and context widths; an injected
 * wrong result must be caught; and identical (seed, config) runs must
 * export bit-identical metrics, whole-run or pause/resumed.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <string>
#include <vector>

#include "harness/cosim.h"
#include "harness/parallel.h"
#include "ref/progfuzz.h"
#include "sim/config.h"
#include "sim/export.h"
#include "sim/metrics.h"
#include "sim/system.h"
#include "workload/apache.h"
#include "workload/specint.h"

using namespace smtos;

namespace {

MachineConfig
fuzzConfig(int contexts, bool banked = false)
{
    MachineConfig cfg = smtConfig();
    cfg.core.numContexts = contexts;
    cfg.core.fetchContexts = contexts >= 2 ? 2 : 1;
    // Short quantum so short runs still exercise timer interrupts,
    // preemption, and context-switch state syncs.
    cfg.kernel.timerQuantum = 6000;
    // Banked DRAM on a deliberately small geometry, so row conflicts
    // and queue backpressure reshape miss timing under the oracle.
    if (banked) {
        cfg.mem.dram.banked = true;
        cfg.mem.dram.channels = 1;
        cfg.mem.dram.banksPerRank = 4;
        cfg.mem.dram.queueDepth = 4;
    }
    return cfg;
}

/** One fuzzed co-simulated run; returns instructions verified. */
std::uint64_t
runFuzzCosim(std::uint64_t seed, int contexts, Cycle cycles,
             std::uint64_t inject_at = 0, std::string *report = nullptr,
             bool banked = false)
{
    MachineConfig cfg = fuzzConfig(contexts, banked);
    cfg.kernel.seed = seed;

    // One more runnable program than contexts, so the scheduler has
    // to multiplex and every run crosses thread migrations.
    std::vector<FuzzedProgram> progs;
    System sys(cfg);
    for (int i = 0; i <= contexts; ++i) {
        progs.push_back(fuzzProgram(mixHash(seed, 77u + i)));
        installFuzzedProc(sys.kernel(), progs.back(), i);
    }

    Cosim cosim(sys.pipeline());
    if (inject_at)
        sys.pipeline().injectRetireFault(inject_at);
    sys.start();
    sys.runCycles(cycles);

    if (report)
        *report = cosim.report();
    if (inject_at) {
        EXPECT_TRUE(cosim.diverged())
            << "seed " << seed << ": injected fault not caught";
    } else {
        EXPECT_FALSE(cosim.diverged())
            << "seed " << seed << ", " << contexts
            << " contexts:\n" << cosim.report();
        EXPECT_GT(cosim.syncs(), 0u);
    }
    return cosim.checked();
}

} // namespace

// The tentpole acceptance loop: >= 50 fuzzed seeds spread across
// 1/2/4/8-context configurations, zero divergences.
TEST(CosimFuzz, NoDivergenceAcrossSeedsAndWidths)
{
    const int widths[] = {1, 2, 4, 8};
    constexpr int perWidth = 13;
    constexpr int runs = 4 * perWidth;
    // Each (seed, width) run is an independent system; fan the 52
    // runs out on the harness worker pool (gtest assertions are
    // thread-safe on pthread platforms).
    std::atomic<std::uint64_t> total_checked{0};
    parallelFor(runs, [&](std::size_t i) {
        const int w = widths[i / perWidth];
        const std::uint64_t seed = 1 + i;
        total_checked += runFuzzCosim(seed, w, 25000);
    });
    // Every run must actually have verified a substantial stream.
    EXPECT_GT(total_checked.load(), 52u * 5000u);
}

// The same 52-seed sweep with banked DRAM: timing changes (row
// conflicts, FR-FCFS reordering, queue backpressure) must never
// change what retires — the oracle is timing-blind and stays clean.
TEST(CosimFuzz, NoDivergenceWithBankedDram)
{
    const int widths[] = {1, 2, 4, 8};
    constexpr int perWidth = 13;
    constexpr int runs = 4 * perWidth;
    std::atomic<std::uint64_t> total_checked{0};
    parallelFor(runs, [&](std::size_t i) {
        const int w = widths[i / perWidth];
        const std::uint64_t seed = 1 + i;
        total_checked +=
            runFuzzCosim(seed, w, 20000, 0, nullptr, true);
    });
    EXPECT_GT(total_checked.load(), 52u * 4000u);
}

// The oracle also holds on the paper's real workload models, which
// reach kernel paths the fuzzer cannot (network interrupts, netisr
// kernel threads, blocking syscalls).
TEST(Cosim, SpecIntWorkloadMatchesReference)
{
    MachineConfig cfg = smtConfig();
    cfg.kernel.seed = 7;
    System sys(cfg);
    SpecIntParams p;
    p.inputChunks = 24;
    SpecIntWorkload w = buildSpecInt(p);
    installSpecInt(sys.kernel(), w);
    Cosim cosim(sys.pipeline());
    sys.start();
    sys.runCycles(120000);
    EXPECT_FALSE(cosim.diverged()) << cosim.report();
    EXPECT_GT(cosim.checked(), 50000u);
}

TEST(Cosim, ApacheWorkloadMatchesReference)
{
    MachineConfig cfg = smtConfig();
    cfg.kernel.seed = 11;
    cfg.kernel.enableNetwork = true;
    System sys(cfg);
    ApacheParams p;
    ApacheWorkload w = buildApache(p);
    installApache(sys.kernel(), w);
    Cosim cosim(sys.pipeline());
    sys.start();
    sys.runCycles(120000);
    EXPECT_FALSE(cosim.diverged()) << cosim.report();
    EXPECT_GT(cosim.checked(), 50000u);
}

// A deliberately wrong retirement record (test-only hook: the 4000th
// retired instruction's PC is misreported) must be caught at exactly
// that instruction, with a report naming pc, context, and the
// disassembled instruction.
TEST(Cosim, InjectedFaultIsCaughtWithDiagnosis)
{
    std::string report;
    const std::uint64_t checked =
        runFuzzCosim(3, 4, 30000, 4000, &report);
    // Everything before the corrupted retirement verified clean.
    EXPECT_EQ(checked, 3999u);
    EXPECT_NE(report.find("cosim divergence"), std::string::npos)
        << report;
    EXPECT_NE(report.find("pc: got"), std::string::npos) << report;
    EXPECT_NE(report.find("ctx"), std::string::npos) << report;
    // The disassembled window is present.
    EXPECT_NE(report.find("retirements of this thread"),
              std::string::npos)
        << report;
}

namespace {

/** Full metric export (JSON + CSV) of a system's current counters. */
std::string
exportAll(System &sys)
{
    MetricsSnapshot s = MetricsSnapshot::capture(sys);
    std::ostringstream os;
    os << toJson(s) << "\n";
    writeCsvRow(os, "run", s, true);
    return os.str();
}

/** Build + run a fuzz system for @p total cycles in @p chunks legs. */
std::string
chunkedFuzzRun(std::uint64_t seed, Cycle total, int chunks)
{
    MachineConfig cfg = fuzzConfig(4);
    cfg.kernel.seed = seed;
    std::vector<FuzzedProgram> progs;
    System sys(cfg);
    for (int i = 0; i < 5; ++i) {
        progs.push_back(fuzzProgram(mixHash(seed, 77u + i)));
        installFuzzedProc(sys.kernel(), progs.back(), i);
    }
    sys.start();
    const Cycle leg = total / chunks;
    for (int i = 0; i < chunks - 1; ++i)
        sys.runCycles(leg);
    sys.runCycles(total - leg * (chunks - 1));
    return exportAll(sys);
}

} // namespace

// Two runs with identical seed and configuration produce bit-identical
// metric exports.
TEST(CosimDeterminism, IdenticalRunsExportIdenticalMetrics)
{
    const std::string a = chunkedFuzzRun(42, 50000, 1);
    const std::string b = chunkedFuzzRun(42, 50000, 1);
    EXPECT_EQ(a, b);
    // And a different seed actually changes the export (the check
    // above is not vacuous).
    const std::string c = chunkedFuzzRun(43, 50000, 1);
    EXPECT_NE(a, c);
}

// Pausing and resuming through System::runCycles is invisible: one
// 50k-cycle leg and five 10k-cycle legs retire the same history.
TEST(CosimDeterminism, PauseResumeReplayIsBitIdentical)
{
    const std::string whole = chunkedFuzzRun(42, 50000, 1);
    const std::string split = chunkedFuzzRun(42, 50000, 5);
    EXPECT_EQ(whole, split);
}

// The co-simulated SpecInt run retires kernel, PAL, user, and idle
// instructions — the oracle is exercised in every privilege mode.
TEST(Cosim, OracleCoversAllModes)
{
    MachineConfig cfg = smtConfig();
    cfg.kernel.seed = 5;
    System sys(cfg);
    SpecIntParams p;
    p.numApps = 4; // fewer apps than contexts: idle threads run
    p.inputChunks = 16;
    SpecIntWorkload w = buildSpecInt(p);
    installSpecInt(sys.kernel(), w);
    Cosim cosim(sys.pipeline());
    sys.start();
    sys.runCycles(120000);
    EXPECT_FALSE(cosim.diverged()) << cosim.report();
    const CoreStats &cs = sys.pipeline().stats();
    EXPECT_GT(cs.retired[static_cast<int>(Mode::User)], 0u);
    EXPECT_GT(cs.retired[static_cast<int>(Mode::Kernel)], 0u);
    EXPECT_GT(cs.retired[static_cast<int>(Mode::Pal)], 0u);
    EXPECT_GT(cs.retired[static_cast<int>(Mode::Idle)], 0u);
}
