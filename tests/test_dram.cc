/**
 * @file
 * Banked-DRAM controller suite (`ctest -L dram`): closed-form row
 * hit/empty/conflict latencies, FR-FCFS data-bus scheduling, open- vs
 * closed-page policies, bounded-queue backpressure, a bandwidth
 * ceiling on synthetic streaming, multi-stream interference the flat
 * model cannot produce, snapshot round-trips of mid-flight controller
 * state, and Session-level validation plus cosim-clean integration.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "harness/cosim.h"
#include "harness/session.h"
#include "mem/dram.h"
#include "mem/memctrl.h"
#include "sim/export.h"
#include "snap/snapshot.h"

using namespace smtos;

namespace {

/** One channel, one rank, one bank: every access shares the row
 *  buffer, so outcomes are scripted exactly. */
DramParams
singleBank()
{
    DramParams p;
    p.banked = true;
    p.channels = 1;
    p.ranks = 1;
    p.banksPerRank = 1;
    return p;
}

const AccessInfo who{};

} // namespace

// The flat path is untouched: banked=false forwards to the
// fixed-latency Dram, and the Table-1 latency is named once.
TEST(MemCtrl, FlatModeIsTheFixedLatencyDram)
{
    EXPECT_EQ(defaultMemLatency, 90u);
    MemCtrl mc(defaultMemLatency, DramParams{});
    EXPECT_FALSE(mc.banked());
    EXPECT_EQ(mc.access(0x1000, who, 500), 590u);
    EXPECT_EQ(mc.access(0x2000, who, 700), 790u);
    EXPECT_EQ(mc.flat().accesses(), 2u);
    const DramStats s = mc.stats();
    EXPECT_FALSE(s.banked);
    EXPECT_EQ(s.accesses, 2u);
}

// Line-interleaved address decomposition: consecutive lines walk the
// channels, then the banks; the row changes every
// channels*ranks*banksPerRank*rowBytes bytes within one bank.
TEST(MemCtrl, AddressMapSpreadsLinesAcrossChannelsAndBanks)
{
    MemCtrl mc(defaultMemLatency, [] {
        DramParams p;
        p.banked = true;
        return p;
    }());
    EXPECT_EQ(mc.channelOf(0), 0);
    EXPECT_EQ(mc.channelOf(64), 1);
    EXPECT_EQ(mc.channelOf(128), 0);
    EXPECT_NE(mc.bankOf(0), mc.bankOf(128));
    // Same bank, next row: stride 2ch * 2rk * 8bk * 2048B.
    const Addr rowStride = 2 * 2 * 8 * 2048;
    EXPECT_EQ(mc.bankOf(0), mc.bankOf(rowStride));
    EXPECT_EQ(mc.rowOf(0), 0);
    EXPECT_EQ(mc.rowOf(rowStride), 1);
}

// The paper-facing latency spread, closed form: a row hit pays
// tCAS+tBurst (30), an empty bank tRCD+tCAS+tBurst (60), a conflict
// tRP+tRCD+tCAS+tBurst (90 — the flat model's Table-1 latency).
TEST(MemCtrl, RowHitEmptyConflictLatencySpread)
{
    MemCtrl mc(defaultMemLatency, singleBank());
    const Cycle empty = mc.access(0, who, 1000) - 1000;
    const Cycle hit = mc.access(64, who, 2000) - 2000;
    const Cycle conflict = mc.access(2048, who, 3000) - 3000;
    EXPECT_EQ(empty, 60u);
    EXPECT_EQ(hit, 30u);
    EXPECT_EQ(conflict, 90u);
    EXPECT_LT(hit, empty);
    EXPECT_LT(empty, conflict);
    const DramStats s = mc.stats();
    EXPECT_EQ(s.rowHits, 1u);
    EXPECT_EQ(s.rowEmpties, 1u);
    EXPECT_EQ(s.rowConflicts, 1u);
    EXPECT_EQ(s.accesses, 3u);
    EXPECT_EQ(s.latencyCycles, 180u);
}

// FR-FCFS: a later-arriving request whose bank is ready early claims
// an earlier data-bus slot than a queued row conflict — first-ready
// beats first-come on the shared channel.
TEST(MemCtrl, FrFcfsReadyRequestOvertakesQueuedConflict)
{
    DramParams p = singleBank();
    p.banksPerRank = 2;
    MemCtrl mc(defaultMemLatency, p);
    // bank0 row0 opens the row.
    const Cycle a = mc.access(0, who, 0);
    EXPECT_EQ(a, 60u);
    // bank0 row1: conflict, data not ready until after precharge +
    // activate (row stride for 2 banks is 2*2048).
    const Cycle b = mc.access(4096, who, 1);
    EXPECT_EQ(b, 150u);
    // bank1 row0 arrives last but its bank is idle: it slots into the
    // bus gap ahead of the conflict.
    const Cycle c = mc.access(64, who, 2);
    EXPECT_LT(c, b);
    EXPECT_EQ(c, 64u);
}

// Open page keeps the row latched (streaming = hits); closed page
// auto-precharges (never a conflict, never a hit, higher latency on
// row-local streams).
TEST(MemCtrl, OpenVsClosedPagePolicy)
{
    DramParams open = singleBank();
    DramParams closed = singleBank();
    closed.closedPage = true;
    MemCtrl mo(defaultMemLatency, open);
    MemCtrl mcl(defaultMemLatency, closed);
    // Stream 16 lines of row 0, each issued at the previous finish.
    Cycle to = 0, tc = 0;
    for (int i = 0; i < 16; ++i) {
        to = mo.access(static_cast<Addr>(i) * 64, who, to);
        tc = mcl.access(static_cast<Addr>(i) * 64, who, tc);
    }
    const DramStats so = mo.stats();
    const DramStats sc = mcl.stats();
    EXPECT_EQ(so.rowHits, 15u);
    EXPECT_EQ(so.rowEmpties, 1u);
    EXPECT_EQ(sc.rowHits, 0u);
    EXPECT_EQ(sc.rowConflicts, 0u);
    EXPECT_EQ(sc.rowEmpties, 16u);
    EXPECT_LT(to, tc);
    EXPECT_LT(so.avgLatency(), sc.avgLatency());
}

// The bounded per-channel queue backpressures: once queueDepth
// requests are in flight, the next arrival is pushed to the oldest
// completion.
TEST(MemCtrl, QueueBackpressureStallsArrivals)
{
    DramParams p = singleBank();
    p.queueDepth = 2;
    MemCtrl mc(defaultMemLatency, p);
    for (int i = 0; i < 8; ++i)
        mc.access(static_cast<Addr>(i) * 64, who, 0);
    const DramStats s = mc.stats();
    EXPECT_GT(s.queueFullStalls, 0u);
    EXPECT_GT(s.queueStallCycles, 0u);
    // Occupancy never exceeds the bound: the per-access sum is at
    // most accesses * queueDepth.
    EXPECT_LE(s.queueOccupancy, s.accesses * 2u);
    // Deep queue, same stream: no stalls.
    MemCtrl deep(defaultMemLatency, singleBank());
    for (int i = 0; i < 8; ++i)
        deep.access(static_cast<Addr>(i) * 64, who, 0);
    EXPECT_EQ(deep.stats().queueFullStalls, 0u);
}

// Closed-form bandwidth ceiling: each 64-byte burst holds its channel
// data bus for tBurst cycles, so streaming cannot exceed
// channels * burstBytes / tBurst bytes per cycle.
TEST(MemCtrl, StreamingBandwidthCeiling)
{
    DramParams p;
    p.banked = true; // default 2ch x 2rk x 8bk geometry
    MemCtrl mc(defaultMemLatency, p);
    constexpr int lines = 512;
    Cycle last = 0;
    for (int i = 0; i < lines; ++i)
        last = std::max(last,
                        mc.access(static_cast<Addr>(i) * 64, who, 0));
    const DramStats s = mc.stats();
    EXPECT_EQ(s.accesses, static_cast<std::uint64_t>(lines));
    // Sequential lines hit their open rows almost always.
    EXPECT_GT(s.rowHits, s.rowConflicts);
    // Per-channel data-bus occupancy is exactly tBurst per access.
    for (std::size_t ch = 0; ch < s.chAccesses.size(); ++ch)
        EXPECT_EQ(s.chBusyCycles[ch], s.chAccesses[ch] * p.tBurst);
    const double bytesPerCycle =
        static_cast<double>(lines) * 64.0 / static_cast<double>(last);
    const double ceiling = static_cast<double>(p.channels) * 64.0 /
                           static_cast<double>(p.tBurst);
    EXPECT_LE(bytesPerCycle, ceiling + 1e-9);
    // And the stream actually saturates: within 2x of the ceiling.
    EXPECT_GT(bytesPerCycle, ceiling / 2.0);
}

// Two interleaved streams thrashing one bank's row buffer see higher
// latency than either stream alone — the interference the flat
// 90-cycle model is structurally unable to produce.
TEST(MemCtrl, InterleavedStreamsThrashTheRowBuffer)
{
    constexpr int n = 32;
    // Solo: one stream inside row 0.
    MemCtrl solo(defaultMemLatency, singleBank());
    Cycle t = 0;
    for (int i = 0; i < n; ++i)
        t = solo.access(static_cast<Addr>(i % 32) * 64, who, t);
    // Interleaved: the same accesses riding with a second stream in
    // row 1 of the same bank.
    MemCtrl mixed(defaultMemLatency, singleBank());
    t = 0;
    for (int i = 0; i < n; ++i) {
        t = mixed.access(static_cast<Addr>(i % 32) * 64, who, t);
        t = mixed.access(2048 + static_cast<Addr>(i % 32) * 64, who,
                         t);
    }
    const DramStats ss = solo.stats();
    const DramStats sm = mixed.stats();
    EXPECT_EQ(ss.rowConflicts, 0u);
    // Only the very first access finds the bank precharged; every
    // later access lands on the other stream's row.
    EXPECT_EQ(sm.rowConflicts, 2u * n - 1u);
    EXPECT_GT(sm.avgLatency(), 2.0 * ss.avgLatency());
}

// Mid-flight controller state (open rows, tFAW windows, reserved bus
// intervals, in-flight queues, counters) round-trips through a
// snapshot: the restored controller continues bit-identically and
// re-serializes to the same bytes.
TEST(MemCtrl, SnapshotRoundTripsMidFlightQueues)
{
    DramParams p = singleBank();
    p.banksPerRank = 4;
    p.queueDepth = 4;
    auto stream = [](MemCtrl &mc, int from, int to) {
        std::vector<Cycle> out;
        for (int i = from; i < to; ++i)
            out.push_back(mc.access(static_cast<Addr>(i) * 56 * 64,
                                    who,
                                    static_cast<Cycle>(i) * 3));
        return out;
    };
    MemCtrl a(defaultMemLatency, p);
    stream(a, 0, 20); // queues and bus reservations still in flight
    Snapshotter sa;
    sa.beginSection("DRAM", 1);
    a.save(sa);
    sa.endSection();
    const std::vector<std::uint8_t> bytesA = sa.finish();

    MemCtrl b(defaultMemLatency, p);
    Restorer rb(bytesA);
    ASSERT_TRUE(rb.ok()) << rb.error();
    rb.enterSection("DRAM");
    b.load(rb);
    rb.leaveSection();

    // Re-serialization is byte-identical…
    Snapshotter sb;
    sb.beginSection("DRAM", 1);
    b.save(sb);
    sb.endSection();
    EXPECT_EQ(bytesA, sb.finish());

    // …and both controllers continue identically.
    EXPECT_EQ(stream(a, 20, 40), stream(b, 20, 40));
    Snapshotter sa2, sb2;
    sa2.beginSection("DRAM", 1);
    a.save(sa2);
    sa2.endSection();
    sb2.beginSection("DRAM", 1);
    b.save(sb2);
    sb2.endSection();
    EXPECT_EQ(sa2.finish(), sb2.finish());
}

// In flat mode the controller's snapshot blob is byte-identical to
// the plain Dram blob it replaced — pre-banked HIER sections restore
// unchanged.
TEST(MemCtrl, FlatSnapshotMatchesPlainDramBytes)
{
    MemCtrl mc(defaultMemLatency, DramParams{});
    Dram d(defaultMemLatency);
    for (Cycle t = 0; t < 5; ++t) {
        mc.access(0, who, t);
        d.access(t);
    }
    Snapshotter s1, s2;
    s1.beginSection("DRAM", 1);
    mc.save(s1);
    s1.endSection();
    s2.beginSection("DRAM", 1);
    d.save(s2);
    s2.endSection();
    EXPECT_EQ(s1.finish(), s2.finish());
}

// Session validation rejects broken geometry before any system is
// built.
TEST(DramConfigDeathTest, SessionRejectsBadGeometry)
{
    auto mk = [](auto mutate) {
        Session::Config cfg;
        cfg.system.dram.banked = true;
        mutate(cfg.system);
        return cfg;
    };
    EXPECT_DEATH(Session s(mk([](SystemConfig &sc) {
                     sc.dram.banksPerRank = 0;
                 })),
                 "geometry must be nonzero");
    EXPECT_DEATH(
        Session s(mk([](SystemConfig &sc) { sc.dram.channels = 3; })),
        "powers of two");
    EXPECT_DEATH(
        Session s(mk([](SystemConfig &sc) { sc.dram.queueDepth = 0; })),
        "queueDepth");
    EXPECT_DEATH(
        Session s(mk([](SystemConfig &sc) { sc.dram.rowBytes = 32; })),
        "rowBytes");
    EXPECT_DEATH(
        Session s(mk([](SystemConfig &sc) { sc.memLatency = 0; })),
        "memLatency");
}

// Flat-mode metric exports carry no dram object (bit-identity with
// the pre-banked format); banked exports do.
TEST(DramSession, JsonExportsDramObjectOnlyWhenBanked)
{
    Session::Config flat;
    flat.phases.startupInstrs = 1;
    flat.phases.measureInstrs = 20'000;
    Session sf(flat);
    const std::string jf = toJson(sf.run().steady);
    EXPECT_EQ(jf.find("\"dram\""), std::string::npos);

    Session::Config banked = flat;
    banked.system.dram.banked = true;
    Session sb(banked);
    const std::string jb = toJson(sb.run().steady);
    EXPECT_NE(jb.find("\"dram\""), std::string::npos);
    EXPECT_NE(jb.find("\"row_hits\""), std::string::npos);
}

// The acceptance run: two contexts on a deliberately small banked
// geometry interfere in the row buffers — conflicts the flat model
// cannot represent — while the co-simulation oracle verifies every
// retired instruction.
TEST(DramSession, TwoContextInterferenceUnderCosim)
{
    Session::Config cfg;
    cfg.system.topology.contextsPerCore = 2;
    cfg.system.dram.banked = true;
    cfg.system.dram.channels = 1;
    cfg.system.dram.ranks = 1;
    cfg.system.dram.banksPerRank = 2;
    cfg.system.dram.rowBytes = 1024;
    cfg.phases.startupInstrs = 20'000;
    cfg.phases.measureInstrs = 120'000;
    cfg.cosim = true;
    Session s(cfg);
    const RunResult r = s.run(); // panics on divergence
    ASSERT_NE(s.cosim(), nullptr);
    EXPECT_FALSE(s.cosim()->diverged());
    EXPECT_TRUE(r.steady.dram.banked);
    EXPECT_GT(r.steady.dram.accesses, 0u);
    const std::uint64_t conflicts =
        r.startup.dram.rowConflicts + r.steady.dram.rowConflicts;
    EXPECT_GT(conflicts, 0u);
    // Outcome taxonomy is total: every access is exactly one of
    // hit/empty/conflict.
    EXPECT_EQ(r.steady.dram.rowHits + r.steady.dram.rowEmpties +
                  r.steady.dram.rowConflicts,
              r.steady.dram.accesses);
}

// A banked session snapshot restores with the row-buffer policy
// flipped (timing-only override), and the artifact round-trips the
// controller section.
TEST(DramSession, ResumeFlipsPagePolicyOnly)
{
    Session::Config cfg;
    cfg.system.topology.contextsPerCore = 2;
    cfg.system.dram.banked = true;
    cfg.phases.startupInstrs = 1;
    cfg.phases.measureInstrs = 30'000;
    Session s(cfg);
    s.run();
    const std::vector<std::uint8_t> art = s.snapshot();

    Session::ResumeOptions opts;
    opts.phases.measureInstrs = 20'000;
    opts.dramClosedPage = true;
    std::string err;
    auto resumed = Session::resume(art, opts, &err);
    ASSERT_NE(resumed, nullptr) << err;
    EXPECT_TRUE(resumed->config().system.dram.closedPage);
    const RunResult r = resumed->runMeasurement();
    EXPECT_TRUE(r.steady.dram.banked);
    // Closed-page from here on: the continued run adds no row hits
    // beyond what an open row at restore time could contribute.
    EXPECT_GT(r.steady.dram.rowEmpties, 0u);
}
