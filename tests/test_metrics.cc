/**
 * @file
 * Metrics tests: snapshot deltas, mode shares, mix rows, miss
 * breakdowns, sharing breakdowns.
 */

#include <gtest/gtest.h>

#include "sim/metrics.h"

using namespace smtos;

namespace {

MetricsSnapshot
synthetic()
{
    MetricsSnapshot s;
    s.core.cycles = 1000;
    s.core.retired[0] = 600; // user
    s.core.retired[1] = 300; // kernel
    s.core.retired[2] = 50;  // pal
    s.core.retired[3] = 50;  // idle
    s.core.fetched = 1200;
    s.core.squashed = 120;
    s.core.condRetired[0] = 100;
    s.core.condMispred[0] = 9;
    s.core.condTaken[0] = 60;
    s.core.mix[0][static_cast<int>(MixClass::Load)] = 120;
    s.core.mix[0][static_cast<int>(MixClass::Store)] = 60;
    s.core.mix[0][static_cast<int>(MixClass::CondBranch)] = 100;
    s.core.mix[0][static_cast<int>(MixClass::OtherInt)] = 320;
    s.core.physMem[0][0] = 30;
    s.core.zeroFetchCycles = 100;
    s.l1d.accesses[0] = 200;
    s.l1d.misses[0] = 20;
    s.l1d.accesses[1] = 100;
    s.l1d.misses[1] = 30;
    s.l1d.cause[0][0] = 5;
    s.l1d.cause[0][2] = 15;
    s.l1d.cause[1][1] = 30;
    s.l1d.avoided[0][1] = 10;
    s.mmEntries["page_alloc"] = 7;
    s.requestsServed = 3;
    return s;
}

} // namespace

TEST(Metrics, DeltaSubtractsCounters)
{
    MetricsSnapshot a = synthetic();
    MetricsSnapshot b = synthetic();
    b.core.cycles = 3000;
    b.core.retired[0] = 1600;
    b.core.squashed = 150;
    b.mmEntries["page_alloc"] = 17;
    b.requestsServed = 13;
    MetricsSnapshot d = b.delta(a);
    EXPECT_EQ(d.core.cycles, 2000u);
    EXPECT_EQ(d.core.retired[0], 1000u);
    EXPECT_EQ(d.core.squashed, 30u);
    EXPECT_EQ(d.mmEntries["page_alloc"], 10u);
    EXPECT_EQ(d.requestsServed, 10u);
}

TEST(Metrics, ModeSharesSumTo100)
{
    ModeShares m = modeShares(synthetic());
    EXPECT_NEAR(m.userPct + m.kernelPct + m.palPct + m.idlePct, 100.0,
                1e-9);
    EXPECT_DOUBLE_EQ(m.userPct, 60.0);
    EXPECT_DOUBLE_EQ(m.kernelPct, 30.0);
}

TEST(Metrics, ArchMetricsDerivations)
{
    ArchMetrics a = archMetrics(synthetic());
    EXPECT_DOUBLE_EQ(a.ipc, 1.0);
    EXPECT_DOUBLE_EQ(a.branchMispredPct, 9.0);
    EXPECT_DOUBLE_EQ(a.squashedPct, 10.0);
    EXPECT_DOUBLE_EQ(a.zeroFetchPct, 10.0);
    EXPECT_DOUBLE_EQ(a.l1dMissPct, 100.0 * 50 / 300);
}

TEST(Metrics, MixRowUserClass)
{
    MixRow r = mixRow(synthetic(), false);
    EXPECT_DOUBLE_EQ(r.loadPct, 20.0);
    EXPECT_DOUBLE_EQ(r.storePct, 10.0);
    EXPECT_DOUBLE_EQ(r.loadPhysPct, 25.0); // 30 of 120 loads
    EXPECT_DOUBLE_EQ(r.condTakenPct, 60.0);
    EXPECT_DOUBLE_EQ(r.condPct, 100.0); // all branches conditional
}

TEST(Metrics, MissBreakdownSumsTo100)
{
    MissBreakdown b = missBreakdown(synthetic().l1d);
    double sum = 0;
    for (int c = 0; c < 2; ++c)
        for (int k = 0; k < numMissCauses; ++k)
            sum += b.causePct[c][k];
    EXPECT_NEAR(sum, 100.0, 1e-9);
    EXPECT_DOUBLE_EQ(b.totalMissRate[0], 10.0);
    EXPECT_DOUBLE_EQ(b.totalMissRate[1], 30.0);
}

TEST(Metrics, SharingBreakdownRelativeToMisses)
{
    SharingBreakdown b = sharingBreakdown(synthetic().l1d);
    EXPECT_DOUBLE_EQ(b.avoidedPct[0][1], 20.0); // 10 of 50 misses
}

TEST(Metrics, TagShare)
{
    MetricsSnapshot s = synthetic();
    s.core.retiredByTag[TagRead] = 100;
    EXPECT_DOUBLE_EQ(tagSharePct(s, TagRead), 10.0);
}

TEST(Metrics, GroupShareAggregatesTags)
{
    MetricsSnapshot s = synthetic();
    s.core.retiredByTag[TagPalDtlb] = 50;
    s.core.retiredByTag[TagVmFault] = 30;
    s.core.retiredByTag[TagPageZero] = 20;
    EXPECT_DOUBLE_EQ(groupSharePct(s, ServiceGroup::TlbHandling),
                     10.0);
}

TEST(Metrics, CaptureFromLiveSystem)
{
    MachineConfig cfg = smtConfig();
    System sys(cfg);
    sys.start();
    MetricsSnapshot s0 = MetricsSnapshot::capture(sys);
    sys.run(20000);
    MetricsSnapshot s1 = MetricsSnapshot::capture(sys);
    MetricsSnapshot d = s1.delta(s0);
    EXPECT_GE(d.core.totalRetired(), 20000u);
    EXPECT_GT(d.core.cycles, 0u);
    ArchMetrics a = archMetrics(d);
    EXPECT_GT(a.ipc, 0.0);
}

TEST(Metrics, ServiceGroupNamesResolve)
{
    for (int t = 0; t < NumServiceTags; ++t) {
        EXPECT_STRNE(serviceTagName(t), "?");
        EXPECT_STRNE(serviceGroupName(serviceGroupOf(t)), "?");
    }
}
