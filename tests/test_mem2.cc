/**
 * @file
 * MSHR and store-buffer corner cases: merge and overflow paths,
 * hit-under-fill, full-buffer stalls, and occupancy accounting.
 */

#include <gtest/gtest.h>

#include "mem/mshr.h"
#include "mem/storebuffer.h"

using namespace smtos;

TEST(Mshr, MergesRequestsToSameBlock)
{
    MshrFile m("test", 4);
    MshrGrant g = m.request(0x1000, 10);
    EXPECT_FALSE(g.merged);
    EXPECT_EQ(g.startAt, 10u);
    m.complete(0x1000, g.startAt, 60);

    // A second miss on the same block merges into the in-flight fill.
    MshrGrant g2 = m.request(0x1000, 20);
    EXPECT_TRUE(g2.merged);
    EXPECT_EQ(g2.mergedReadyAt, 60u);
    EXPECT_EQ(m.fills(), 1u);
    EXPECT_EQ(m.merges(), 1u);
    EXPECT_EQ(m.fullStalls(), 0u);
}

TEST(Mshr, DistinctBlocksClaimDistinctEntries)
{
    MshrFile m("test", 4);
    for (int i = 0; i < 4; ++i) {
        MshrGrant g = m.request(0x1000 + 0x40 * i, 10);
        EXPECT_FALSE(g.merged);
        m.complete(0x1000 + 0x40 * i, g.startAt, 100 + 10 * i);
    }
    EXPECT_EQ(m.outstanding(10), 4);
    EXPECT_EQ(m.fills(), 4u);
}

TEST(Mshr, FullFileStallsUntilEarliestFill)
{
    MshrFile m("test", 2);
    MshrGrant a = m.request(0x1000, 0);
    m.complete(0x1000, a.startAt, 50);
    MshrGrant b = m.request(0x2000, 0);
    m.complete(0x2000, b.startAt, 80);

    // Third distinct block at cycle 10: both entries busy, so the
    // request waits for the earliest fill (cycle 50).
    MshrGrant c = m.request(0x3000, 10);
    EXPECT_FALSE(c.merged);
    EXPECT_GE(c.startAt, 50u);
    EXPECT_EQ(m.fullStalls(), 1u);
    m.complete(0x3000, c.startAt, 120);
    EXPECT_EQ(m.fills(), 3u);
}

TEST(Mshr, EntriesExpireAndGetReused)
{
    MshrFile m("test", 1);
    MshrGrant a = m.request(0x1000, 0);
    m.complete(0x1000, a.startAt, 30);
    EXPECT_EQ(m.outstanding(10), 1);
    EXPECT_EQ(m.outstanding(30), 0);

    // After the fill completed, a new block gets the slot with no
    // stall, and a repeat of the first block is a fresh miss (no
    // stale merge against an expired entry).
    MshrGrant b = m.request(0x2000, 40);
    EXPECT_FALSE(b.merged);
    EXPECT_EQ(b.startAt, 40u);
    m.complete(0x2000, b.startAt, 90);
    MshrGrant c = m.request(0x1000, 95);
    EXPECT_FALSE(c.merged);
    EXPECT_EQ(m.fullStalls(), 0u);
}

TEST(Mshr, HitUnderFillWaitsForFill)
{
    MshrFile m("test", 2);
    MshrGrant a = m.request(0x1000, 0);
    m.complete(0x1000, a.startAt, 70);

    // A cache hit on the block mid-fill waits for the fill and counts
    // as a merge; a hit on an idle block does not.
    EXPECT_EQ(m.hitUnderFill(0x1000, 10), 70u);
    EXPECT_EQ(m.merges(), 1u);
    EXPECT_EQ(m.hitUnderFill(0x2000, 10), 0u);
    EXPECT_EQ(m.hitUnderFill(0x1000, 75), 0u);
    EXPECT_EQ(m.merges(), 1u);
}

TEST(Mshr, OccupancyIntegralSumsFillDurations)
{
    MshrFile m("test", 2);
    MshrGrant a = m.request(0x1000, 0);
    m.complete(0x1000, a.startAt, 40);
    MshrGrant b = m.request(0x2000, 10);
    m.complete(0x2000, b.startAt, 30);
    // 40 cycles in flight for the first fill + 20 for the second.
    EXPECT_DOUBLE_EQ(m.occupancyIntegral(), 60.0);
}

TEST(StoreBuffer, DrainsInBackgroundUntilFull)
{
    StoreBuffer sb(2);
    EXPECT_EQ(sb.push(0, 100), 0u);
    EXPECT_EQ(sb.push(0, 120), 0u);
    EXPECT_TRUE(sb.full(50));
    EXPECT_EQ(sb.occupancy(50), 2);

    // Buffer full: the third store waits for the earliest drain.
    const Cycle entered = sb.push(60, 200);
    EXPECT_GE(entered, 100u);
    EXPECT_EQ(sb.fullStalls(), 1u);
    EXPECT_EQ(sb.stores(), 3u);
}

TEST(StoreBuffer, OccupancyDropsAsDrainsComplete)
{
    StoreBuffer sb(4);
    sb.push(0, 10);
    sb.push(0, 20);
    sb.push(0, 30);
    EXPECT_EQ(sb.occupancy(5), 3);
    EXPECT_EQ(sb.occupancy(15), 2);
    EXPECT_EQ(sb.occupancy(25), 1);
    EXPECT_EQ(sb.occupancy(35), 0);
    EXPECT_FALSE(sb.full(5));
    EXPECT_EQ(sb.fullStalls(), 0u);
}

TEST(StoreBuffer, BackToBackFullStallsSerialize)
{
    StoreBuffer sb(1);
    EXPECT_EQ(sb.push(0, 50), 0u);
    const Cycle s2 = sb.push(0, 90);
    EXPECT_GE(s2, 50u);
    const Cycle s3 = sb.push(s2, 130);
    EXPECT_GE(s3, 90u);
    EXPECT_EQ(sb.fullStalls(), 2u);
    EXPECT_EQ(sb.stores(), 3u);
}
