/**
 * @file
 * Deeper pipeline scenarios: issue-width enforcement, serializing
 * ordering, interrupt interleaving with kernel code, target
 * mispredictions, filter modes, fetch policies, and multi-context
 * fairness.
 */

#include <gtest/gtest.h>

#include <memory>

#include "core/pipeline.h"
#include "isa/codegen.h"
#include "kernel/layout.h"
#include "vm/physmem.h"

using namespace smtos;

namespace {

class RecorderOs : public OsCallbacks
{
  public:
    RecorderOs(Tlb &itlb, Tlb &dtlb) : itlb_(itlb), dtlb_(dtlb) {}

    void
    dtlbMiss(ThreadState &t, Addr vaddr) override
    {
        AccessInfo who{t.id, Mode::Pal, 0};
        dtlb_.insert(pageOf(vaddr), t.space->asn(), pageOf(vaddr),
                     who);
        ++dtlbMisses;
    }

    void
    itlbMiss(ThreadState &t, Addr pc) override
    {
        AccessInfo who{t.id, Mode::Pal, 0};
        itlb_.insert(pageOf(pc), t.space->asn(), pageOf(pc), who);
    }

    void
    serializing(Context &, ThreadState &t, const Instr &in) override
    {
        order.push_back(in.op == Op::Syscall ? int(in.payload) : -1);
        t.cursor.setStuck(false);
        if (in.op == Op::Halt)
            t.cursor.setStuck(true);
        else
            t.cursor.stepSequential(images);
    }

    void
    interrupt(Context &, ThreadState &, std::uint16_t v) override
    {
        interrupts.push_back(v);
    }

    void cycleHook(Cycle) override {}

    Addr
    magicTranslate(ThreadState &, Addr vaddr, bool) override
    {
        return vaddr;
    }

    ImageSet images;
    Tlb &itlb_;
    Tlb &dtlb_;
    std::vector<int> order;
    std::vector<int> interrupts;
    int dtlbMisses = 0;
};

class Pipeline2 : public testing::Test
{
  protected:
    Pipeline2()
        : user(std::make_unique<CodeImage>("u", userTextBase)),
          kernel(std::make_unique<CodeImage>("k", kernelBase)),
          gu(*user, CodeProfile{}, 3), gk(*kernel, CodeProfile{}, 4)
    {
    }

    void
    wire(CoreParams cp = CoreParams{})
    {
        if (!kernel->finalized())
            kernel->finalize();
        hier = std::make_unique<Hierarchy>(HierarchyParams{});
        pipe = std::make_unique<Pipeline>(cp, *hier, kernel.get());
        os = std::make_unique<RecorderOs>(pipe->itlb(), pipe->dtlb());
        os->images = ImageSet{user.get(), kernel.get()};
        pipe->setOs(os.get());
        mem = std::make_unique<PhysMem>();
        space = std::make_unique<AddrSpace>(1, *mem);
        space->setAsn(1);
        for (Addr vpn = pageOf(userTextBase);
             vpn < pageOf(userTextBase) + 256; ++vpn)
            space->mapShared(vpn, vpn);
    }

    ThreadState &
    makeThread(int entry, ThreadId id = 0)
    {
        auto t = std::make_unique<ThreadState>();
        t->id = id;
        t->space = space.get();
        t->userImage = user.get();
        t->cursor.reset(entry, false, 11 + id);
        t->regions[0] = MemRegion{0x20000000, 1 << 16};
        t->regions[1] = MemRegion{0x30000000, 1 << 16};
        t->regions[2] = MemRegion{0x70000000, 1 << 16};
        threads.push_back(std::move(t));
        return *threads.back();
    }

    std::unique_ptr<CodeImage> user, kernel;
    CodeGen gu, gk;
    std::unique_ptr<Hierarchy> hier;
    std::unique_ptr<Pipeline> pipe;
    std::unique_ptr<RecorderOs> os;
    std::unique_ptr<PhysMem> mem;
    std::unique_ptr<AddrSpace> space;
    std::vector<std::unique_ptr<ThreadState>> threads;
};

} // namespace

TEST_F(Pipeline2, SyscallsCommitInProgramOrder)
{
    user->beginFunction("main", -1);
    user->beginBlock();
    user->emit(gu.makeSyscall(1));
    user->emit(gu.makeAlu());
    user->emit(gu.makeSyscall(2));
    user->emit(gu.makeAlu());
    user->emit(gu.makeSyscall(3));
    user->emit(gu.makeJump(0));
    user->finalize();
    wire();
    pipe->bindThread(0, &makeThread(0));
    pipe->runInstrs(200);
    ASSERT_GE(os->order.size(), 6u);
    for (size_t i = 0; i + 2 < 6; i += 3) {
        EXPECT_EQ(os->order[i], 1);
        EXPECT_EQ(os->order[i + 1], 2);
        EXPECT_EQ(os->order[i + 2], 3);
    }
}

TEST_F(Pipeline2, IssueNeverExceedsIntUnits)
{
    // 12 independent ALUs per block: issue is capped by the 6 int
    // units, so IPC can approach but never exceed 6.
    user->beginFunction("main", -1);
    user->beginBlock();
    for (int i = 0; i < 24; ++i) {
        Instr in;
        in.op = Op::IntAlu;
        in.srcA = static_cast<std::uint8_t>(i % 8);
        in.dest = static_cast<std::uint8_t>(8 + (i % 16));
        user->emit(in);
    }
    user->emit(gu.makeJump(0));
    user->finalize();
    wire();
    pipe->bindThread(0, &makeThread(0, 0));
    pipe->bindThread(1, &makeThread(0, 1));
    pipe->runInstrs(30000);
    EXPECT_LE(pipe->stats().ipc(), 6.05);
    EXPECT_GT(pipe->stats().ipc(), 3.0);
}

TEST_F(Pipeline2, EightContextsSaturateIssue)
{
    const int f = gu.genFunction("main", 6, {}, -1, true);
    user->finalize();
    CoreParams cp;
    cp.numContexts = 8;
    wire(cp);
    for (int c = 0; c < 8; ++c)
        pipe->bindThread(c, &makeThread(f, c));
    pipe->runInstrs(40000);
    EXPECT_GT(pipe->stats().ipc(), 1.2);
    EXPECT_GT(pipe->stats().maxIssueCycles, 0u);
}

TEST_F(Pipeline2, ReturnsPredictedByRas)
{
    // Tight call/return chains: the per-context RAS should make
    // return-target mispredictions rare.
    const int leaf = gu.genFunction("leaf", 2, {});
    user->beginFunction("main", -1);
    user->beginBlock();
    user->emit(gu.makeAlu());
    user->emit(gu.makeCall(leaf));
    user->beginBlock();
    user->emit(gu.makeAlu());
    user->emit(gu.makeCall(leaf));
    user->beginBlock();
    user->emit(gu.makeJump(0));
    user->finalize();
    wire();
    pipe->bindThread(0, &makeThread(1));
    pipe->runInstrs(20000);
    const auto &s = pipe->stats();
    EXPECT_LT(static_cast<double>(s.targetMispred[0]),
              0.02 * static_cast<double>(s.totalRetired()));
}

TEST_F(Pipeline2, IndirectJumpsMissTargetsSometimes)
{
    user->beginFunction("main", -1);
    user->beginBlock();
    user->emit(gu.makeAlu());
    Instr ij;
    ij.op = Op::IndirectJump;
    ij.srcA = 1;
    ij.targetBlock = 1;
    ij.indirectFan = 4;
    user->emit(ij);
    for (int b = 0; b < 4; ++b) {
        user->beginBlock();
        user->emit(gu.makeAlu());
        user->emit(gu.makeJump(0));
    }
    user->finalize();
    wire();
    pipe->bindThread(0, &makeThread(0));
    pipe->runInstrs(20000);
    EXPECT_GT(pipe->stats().targetMispred[0], 50u);
    EXPECT_GT(pipe->btb().wrongTargetHits(), 10u);
}

TEST_F(Pipeline2, InterruptDuringKernelFramesNests)
{
    // Thread running a kernel loop receives an interrupt; the
    // handler is whatever the OS pushes — here the recorder just
    // notes delivery, which must still happen while in kernel mode.
    const int kf = gk.genFunction("kloop", 4, {}, 7, true);
    user->beginFunction("main", -1);
    user->beginBlock();
    user->emit(gu.makeReturn());
    user->finalize();
    wire();
    ThreadState &t = makeThread(0);
    t.cursor.reset(kf, true, 5); // start in kernel code
    t.userImage = user.get();
    pipe->bindThread(0, &t);
    pipe->runInstrs(500);
    pipe->raiseInterrupt(0, 9);
    pipe->runInstrs(500);
    ASSERT_EQ(os->interrupts.size(), 1u);
    EXPECT_EQ(os->interrupts[0], 9);
}

TEST_F(Pipeline2, KernelTagAttributionFollowsFunctions)
{
    const int kf = gk.genFunction("tagged", 5, {}, 13, true);
    user->beginFunction("main", -1);
    user->beginBlock();
    user->emit(gu.makeReturn());
    user->finalize();
    wire();
    ThreadState &t = makeThread(0);
    t.cursor.reset(kf, true, 5);
    pipe->bindThread(0, &t);
    pipe->runInstrs(2000);
    EXPECT_GT(pipe->stats().retiredByTag[13], 1500u);
}

TEST_F(Pipeline2, FilterPrivilegedBranchesPerfect)
{
    const int kf = gk.genFunction("kloop", 8, {}, 7, true);
    user->beginFunction("main", -1);
    user->beginBlock();
    user->emit(gu.makeReturn());
    user->finalize();
    wire();
    pipe->setFilterPrivilegedBranches(true);
    ThreadState &t = makeThread(0);
    t.cursor.reset(kf, true, 5);
    pipe->bindThread(0, &t);
    pipe->runInstrs(5000);
    // Kernel branches neither mispredict nor touch the BTB.
    EXPECT_EQ(pipe->stats().condMispred[1], 0u);
    EXPECT_EQ(pipe->btb().stats().totalAccesses(), 0u);
}

TEST_F(Pipeline2, RoundRobinFetchStillProgressesAll)
{
    const int f = gu.genFunction("main", 5, {}, -1, true);
    user->finalize();
    CoreParams cp;
    cp.numContexts = 4;
    cp.fetchPolicy = FetchPolicy::RoundRobin;
    wire(cp);
    for (int c = 0; c < 4; ++c)
        pipe->bindThread(c, &makeThread(f, c));
    pipe->runInstrs(20000);
    for (auto &t : threads)
        EXPECT_GT(t->cursor.retired, 1000u);
}

TEST_F(Pipeline2, DtlbTrapInsideLoopRetriesExactAddress)
{
    // A store walking fresh pages: every page boundary traps once;
    // the store must re-execute with the same address (no livelock).
    user->beginFunction("main", -1);
    user->beginBlock();
    Instr st = gu.makeStore(MemPattern::SeqStream, 1, 0, 512, false);
    user->emit(st);
    user->emit(gu.makeAlu());
    user->emit(gu.makeJump(0));
    user->finalize();
    wire();
    pipe->bindThread(0, &makeThread(0));
    pipe->runInstrs(30000);
    // ~30000/3 stores * 512B stride = ~5MB walked -> ~16 pages of the
    // 64KB region, each trapping exactly once per wrap.
    EXPECT_GT(os->dtlbMisses, 10);
    EXPECT_LT(os->dtlbMisses, 60);
}

TEST_F(Pipeline2, WrongPathFetchDoesNotReachOs)
{
    // A syscall sits on the not-taken arm of a strongly-taken branch:
    // wrong-path fetch may reach it, but it must never commit.
    user->beginFunction("main", -1);
    user->beginBlock();
    user->emit(gu.makeAlu());
    user->emit(gu.makeCond(2, 0.97)); // almost always skips
    user->beginBlock();
    user->emit(gu.makeSyscall(42));
    user->emit(gu.makeAlu());
    user->beginBlock();
    user->emit(gu.makeAlu());
    user->emit(gu.makeJump(0));
    user->finalize();
    wire();
    pipe->bindThread(0, &makeThread(0));
    pipe->runInstrs(20000);
    // The syscall commits only as often as the branch actually falls
    // through (~3%), never from wrong-path fetches.
    std::size_t syscalls = 0;
    for (int v : os->order)
        syscalls += (v == 42);
    EXPECT_LT(syscalls, 400u);
    EXPECT_GT(syscalls, 20u);
}

TEST_F(Pipeline2, SquashReleasesRenameRegisters)
{
    // Heavy misprediction with dest-writing wrong paths: if rename
    // registers leaked on squash the pipeline would wedge.
    user->beginFunction("main", -1);
    user->beginBlock();
    user->emit(gu.makeAlu());
    user->emit(gu.makeCond(2, 0.5));
    user->beginBlock();
    for (int i = 0; i < 10; ++i)
        user->emit(gu.makeAlu());
    user->beginBlock();
    user->emit(gu.makeAlu());
    user->emit(gu.makeJump(0));
    user->finalize();
    wire();
    pipe->bindThread(0, &makeThread(0));
    pipe->runInstrs(60000); // would panic on wedge via the watchdog
    EXPECT_GE(pipe->stats().totalRetired(), 60000u);
}

TEST_F(Pipeline2, ZeroIssueAndZeroFetchTracked)
{
    // A serial multiply chain guarantees empty-issue cycles.
    user->beginFunction("main", -1);
    user->beginBlock();
    for (int i = 0; i < 4; ++i) {
        Instr in;
        in.op = Op::IntMul;
        in.srcA = 1;
        in.dest = 1;
        user->emit(in);
    }
    user->emit(gu.makeJump(0));
    user->finalize();
    wire();
    pipe->bindThread(0, &makeThread(0));
    pipe->runInstrs(5000);
    EXPECT_GT(pipe->stats().zeroIssueCycles, 1000u);
    EXPECT_GT(pipe->stats().zeroFetchCycles, 100u);
}

TEST_F(Pipeline2, SuperscalarHasSevenStagePenalty)
{
    // Same unpredictable-branch code: the 9-stage SMT pays a larger
    // mispredict penalty than the 7-stage superscalar.
    user->beginFunction("main", -1);
    user->beginBlock();
    user->emit(gu.makeAlu());
    user->emit(gu.makeCond(2, 0.5));
    user->beginBlock();
    user->emit(gu.makeAlu());
    user->beginBlock();
    user->emit(gu.makeAlu());
    user->emit(gu.makeJump(0));
    user->finalize();

    CoreParams nine;
    nine.numContexts = 1;
    nine.pipelineStages = 9;
    wire(nine);
    pipe->bindThread(0, &makeThread(0, 0));
    pipe->runInstrs(30000);
    const Cycle c9 = pipe->now();

    CoreParams seven;
    seven.numContexts = 1;
    seven.pipelineStages = 7;
    wire(seven);
    pipe->bindThread(0, &makeThread(0, 1));
    pipe->runInstrs(30000);
    const Cycle c7 = pipe->now();
    EXPECT_LT(c7, c9);
}
