/**
 * @file
 * Cache model tests: hits/misses, LRU, miss-cause classification
 * (Tables 3/7 machinery), constructive sharing (Table 8 machinery),
 * and parameterized geometry sweeps.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "mem/cache.h"

using namespace smtos;

namespace {

AccessInfo
user(ThreadId t)
{
    return AccessInfo{t, Mode::User, 0};
}

AccessInfo
kern(ThreadId t)
{
    return AccessInfo{t, Mode::Kernel, 0};
}

CacheParams
tiny()
{
    CacheParams p;
    p.name = "tiny";
    p.sizeBytes = 1024; // 16 lines
    p.assoc = 2;        // 8 sets
    p.lineBytes = 64;
    return p;
}

} // namespace

TEST(Cache, FirstAccessIsCompulsoryMiss)
{
    Cache c(tiny());
    auto out = c.access(0x1000, user(1), false);
    EXPECT_FALSE(out.hit);
    EXPECT_EQ(out.cause, MissCause::Compulsory);
}

TEST(Cache, SecondAccessHits)
{
    Cache c(tiny());
    c.access(0x1000, user(1), false);
    EXPECT_TRUE(c.access(0x1000, user(1), false).hit);
    EXPECT_TRUE(c.access(0x1038, user(1), false).hit); // same line
}

TEST(Cache, DifferentLineMisses)
{
    Cache c(tiny());
    c.access(0x1000, user(1), false);
    EXPECT_FALSE(c.access(0x1040, user(1), false).hit);
}

TEST(Cache, AssociativityHoldsConflictingLines)
{
    Cache c(tiny()); // 8 sets: addresses 512B apart map to same set
    const Addr a = 0x0000, b = a + 8 * 64;
    c.access(a, user(1), false);
    c.access(b, user(1), false);
    EXPECT_TRUE(c.access(a, user(1), false).hit);
    EXPECT_TRUE(c.access(b, user(1), false).hit);
}

TEST(Cache, LruEvictsOldest)
{
    Cache c(tiny());
    const Addr a = 0, b = 8 * 64, d = 16 * 64; // same set, 3 lines
    c.access(a, user(1), false);
    c.access(b, user(1), false);
    c.access(d, user(1), false); // evicts a
    EXPECT_FALSE(c.probe(a));
    EXPECT_TRUE(c.probe(b));
    EXPECT_TRUE(c.probe(d));
}

TEST(Cache, IntrathreadConflictClassified)
{
    Cache c(tiny());
    const Addr a = 0, b = 8 * 64, d = 16 * 64;
    c.access(a, user(1), false);
    c.access(b, user(1), false);
    c.access(d, user(1), false); // thread 1 evicts its own a
    auto out = c.access(a, user(1), false);
    EXPECT_FALSE(out.hit);
    EXPECT_EQ(out.cause, MissCause::Intrathread);
}

TEST(Cache, InterthreadConflictClassified)
{
    Cache c(tiny());
    const Addr a = 0, b = 8 * 64, d = 16 * 64;
    c.access(a, user(1), false);
    c.access(b, user(2), false);
    c.access(d, user(2), false); // thread 2 evicts thread 1's a
    auto out = c.access(a, user(1), false);
    EXPECT_EQ(out.cause, MissCause::Interthread);
}

TEST(Cache, UserKernelConflictClassified)
{
    Cache c(tiny());
    const Addr a = 0, b = 8 * 64, d = 16 * 64;
    c.access(a, user(1), false);
    c.access(b, kern(2), false);
    c.access(d, kern(2), false); // kernel evicts user line
    auto out = c.access(a, user(1), false);
    EXPECT_EQ(out.cause, MissCause::UserKernel);
}

TEST(Cache, PalCountsAsKernelForClassification)
{
    Cache c(tiny());
    const Addr a = 0, b = 8 * 64, d = 16 * 64;
    AccessInfo pal{3, Mode::Pal, 0};
    c.access(a, pal, false);
    c.access(b, pal, false);
    c.access(d, pal, false); // pal evicts its own: same class
    auto out = c.access(a, pal, false);
    EXPECT_EQ(out.cause, MissCause::Intrathread);
    EXPECT_EQ(c.stats().misses[1], 4u); // counted as kernel class
}

TEST(Cache, OsInvalidationClassified)
{
    Cache c(tiny());
    c.access(0x1000, user(1), false);
    c.invalidateAll();
    auto out = c.access(0x1000, user(1), false);
    EXPECT_EQ(out.cause, MissCause::OsInvalidation);
}

TEST(Cache, InvalidateBlockOnlyKillsThatBlock)
{
    Cache c(tiny());
    c.access(0x1000, user(1), false);
    c.access(0x2000, user(1), false);
    c.invalidateBlock(0x1000);
    EXPECT_FALSE(c.probe(0x1000));
    EXPECT_TRUE(c.probe(0x2000));
}

TEST(Cache, ConstructiveSharingDetected)
{
    Cache c(tiny());
    c.access(0x1000, kern(1), false);
    auto out = c.access(0x1000, kern(2), false); // prefetched by 1
    EXPECT_TRUE(out.hit);
    EXPECT_TRUE(out.sharedAvoidance);
    EXPECT_TRUE(out.fillerKernel);
    EXPECT_EQ(c.stats().avoided[1][1], 1u);
}

TEST(Cache, SharingCountedOncePerThread)
{
    Cache c(tiny());
    c.access(0x1000, user(1), false);
    c.access(0x1000, user(2), false); // counts
    auto out = c.access(0x1000, user(2), false); // already touched
    EXPECT_FALSE(out.sharedAvoidance);
    EXPECT_EQ(c.stats().avoided[0][0], 1u);
}

TEST(Cache, UserKernelSharingMatrix)
{
    Cache c(tiny());
    c.access(0x1000, kern(1), false);
    c.access(0x1000, user(2), false); // user saved by kernel fill
    EXPECT_EQ(c.stats().avoided[0][1], 1u);
    c.access(0x2000, user(3), false);
    c.access(0x2000, kern(4), false); // kernel saved by user fill
    EXPECT_EQ(c.stats().avoided[1][0], 1u);
}

TEST(Cache, DirtyEvictionReported)
{
    Cache c(tiny());
    const Addr a = 0, b = 8 * 64, d = 16 * 64;
    c.access(a, user(1), true); // dirty
    c.access(b, user(1), false);
    auto out = c.access(d, user(1), false); // evicts dirty a
    EXPECT_TRUE(out.dirtyEviction);
}

TEST(Cache, CleanEvictionNotDirty)
{
    Cache c(tiny());
    const Addr a = 0, b = 8 * 64, d = 16 * 64;
    c.access(a, user(1), false);
    c.access(b, user(1), false);
    auto out = c.access(d, user(1), false);
    EXPECT_FALSE(out.dirtyEviction);
}

TEST(Cache, MissRatesByClass)
{
    Cache c(tiny());
    c.access(0x1000, user(1), false); // user miss
    c.access(0x1000, user(1), false); // user hit
    c.access(0x2000, kern(2), false); // kernel miss
    EXPECT_DOUBLE_EQ(c.missRatePct(false), 50.0);
    EXPECT_DOUBLE_EQ(c.missRatePct(true), 100.0);
    EXPECT_NEAR(c.missRatePct(), 100.0 * 2 / 3, 1e-9);
}

TEST(Cache, StatsCausesSumToMisses)
{
    Cache c(tiny());
    Rng rng(3);
    for (int i = 0; i < 5000; ++i) {
        AccessInfo who = (i % 3 == 0) ? kern(i % 5) : user(i % 7);
        c.access(rng.below(64 * 1024) & ~7ull, who, rng.chance(0.3));
    }
    const InterferenceStats &s = c.stats();
    for (int cls = 0; cls < 2; ++cls) {
        std::uint64_t sum = 0;
        for (int k = 0; k < numMissCauses; ++k)
            sum += s.cause[cls][k];
        EXPECT_EQ(sum, s.misses[cls]);
    }
}

TEST(Cache, DirectMappedConflicts)
{
    CacheParams p = tiny();
    p.assoc = 1;
    Cache c(p); // 16 sets direct mapped
    const Addr a = 0, b = 16 * 64;
    c.access(a, user(1), false);
    c.access(b, user(1), false); // evicts a immediately
    EXPECT_FALSE(c.probe(a));
}

TEST(MissClassifier, TracksDistinctBlocks)
{
    MissClassifier mc;
    mc.recordEviction(1, AccessInfo{1, Mode::User, 0});
    mc.recordEviction(2, AccessInfo{2, Mode::Kernel, 0});
    EXPECT_EQ(mc.trackedBlocks(), 2u);
    EXPECT_EQ(mc.classify(3, AccessInfo{1, Mode::User, 0}),
              MissCause::Compulsory);
}

TEST(MissClassifier, InvalidationSticky)
{
    MissClassifier mc;
    mc.recordEviction(1, AccessInfo{1, Mode::User, 0});
    mc.recordInvalidation(1);
    EXPECT_EQ(mc.classify(1, AccessInfo{1, Mode::User, 0}),
              MissCause::OsInvalidation);
}

TEST(MissCauseNames, AllDistinct)
{
    EXPECT_STREQ(missCauseName(MissCause::Compulsory), "compulsory");
    EXPECT_STREQ(missCauseName(MissCause::Intrathread), "intrathread");
    EXPECT_STREQ(missCauseName(MissCause::Interthread), "interthread");
    EXPECT_STREQ(missCauseName(MissCause::UserKernel), "user-kernel");
    EXPECT_STREQ(missCauseName(MissCause::OsInvalidation),
                 "os-invalidation");
}

// --- parameterized geometry sweep -----------------------------------

struct GeoParam
{
    std::uint64_t size;
    int assoc;
};

class CacheGeometry : public testing::TestWithParam<GeoParam>
{
};

TEST_P(CacheGeometry, SequentialWorkingSetFitsOrThrashes)
{
    CacheParams p;
    p.sizeBytes = GetParam().size;
    p.assoc = GetParam().assoc;
    p.lineBytes = 64;
    Cache c(p);
    // Walk a working set equal to half the cache twice: the second
    // pass must hit every line.
    const int lines = static_cast<int>(p.sizeBytes / 64 / 2);
    for (int pass = 0; pass < 2; ++pass)
        for (int i = 0; i < lines; ++i)
            c.access(static_cast<Addr>(i) * 64, user(1), false);
    EXPECT_EQ(c.stats().totalMisses(),
              static_cast<std::uint64_t>(lines));
}

TEST_P(CacheGeometry, OversizedWorkingSetAlwaysMisses)
{
    CacheParams p;
    p.sizeBytes = GetParam().size;
    p.assoc = GetParam().assoc;
    p.lineBytes = 64;
    Cache c(p);
    // A strided set 4x the cache size revisited in order defeats LRU.
    const int lines = static_cast<int>(p.sizeBytes / 64 * 4);
    for (int pass = 0; pass < 3; ++pass)
        for (int i = 0; i < lines; ++i)
            c.access(static_cast<Addr>(i) * 64, user(1), false);
    EXPECT_EQ(c.stats().totalMisses(),
              static_cast<std::uint64_t>(3 * lines));
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometry,
    testing::Values(GeoParam{1024, 1}, GeoParam{1024, 2},
                    GeoParam{4096, 2}, GeoParam{4096, 4},
                    GeoParam{16384, 1}, GeoParam{16384, 4}));
