/**
 * @file
 * Snapshot/restore engine: a restored session is the session. For
 * every workload x context count x host-fast-path x fault-plan cell,
 * resuming the post-startup artifact and measuring must produce the
 * byte-identical metrics export, timeline, and fault log that the
 * straight-through run produces — and corrupted or version-skewed
 * artifacts must be rejected before any state is touched.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "harness/cosim.h"
#include "harness/session.h"
#include "harness/sweep.h"
#include "obs/session.h"
#include "sim/export.h"
#include "snap/snapshot.h"

using namespace smtos;

namespace {

struct Scenario
{
    WorkloadConfig::Kind kind;
    int contexts;
    bool fastForward;
    bool faults;
    bool banked = false; ///< banked DRAM behind the L2
};

std::string
scenarioName(const ::testing::TestParamInfo<Scenario> &info)
{
    const Scenario &s = info.param;
    std::string n =
        s.kind == WorkloadConfig::Kind::Apache ? "Apache" : "SpecInt";
    n += "Ctx" + std::to_string(s.contexts);
    n += s.fastForward ? "Fast" : "Slow";
    n += s.faults ? "Faults" : "Clean";
    n += s.banked ? "Banked" : "Flat";
    return n;
}

Session::Config
configFor(const Scenario &sc)
{
    Session::Config cfg;
    cfg.workload.kind = sc.kind;
    cfg.workload.spec.inputChunks = 8;
    cfg.system.topology.contextsPerCore = sc.contexts;
    cfg.system.fastForward = sc.fastForward;
    cfg.system.dram.banked = sc.banked;
    if (sc.kind == WorkloadConfig::Kind::Apache) {
        cfg.phases.startupInstrs = 260'000;
        cfg.phases.measureInstrs = 120'000;
    } else {
        cfg.phases.startupInstrs = 120'000;
        cfg.phases.measureInstrs = 120'000;
    }
    if (sc.faults) {
        cfg.faults.lossPct = 0.02;
        cfg.faults.mcePeriod = 60'000;
    }
    return cfg;
}

struct Observed
{
    std::string json;     ///< toJson of the measurement delta
    std::string faultLog; ///< plan log, empty when no plan
    std::uint64_t cycles = 0;
    std::uint64_t requestsServed = 0;
};

Observed
observe(Session &s, const RunResult &r)
{
    Observed o;
    o.json = toJson(r.steady);
    if (s.faultPlan())
        o.faultLog = s.faultPlan()->logText();
    o.cycles = r.cycles;
    o.requestsServed = r.requestsServed;
    return o;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

} // namespace

class SnapRoundTrip : public ::testing::TestWithParam<Scenario>
{
};

// The matrix: startup once, snapshot; the resumed measurement must be
// byte-identical to continuing the origin session.
TEST_P(SnapRoundTrip, ResumedRunIsByteIdentical)
{
    const Session::Config cfg = configFor(GetParam());

    Session origin(cfg);
    origin.runStartup();
    const std::vector<std::uint8_t> artifact = origin.snapshot();
    // Snapshotting is a pure observation: equal state, equal bytes.
    EXPECT_EQ(artifact, origin.snapshot());

    const Observed straight =
        observe(origin, origin.runMeasurement());

    Session::ResumeOptions opts;
    opts.phases = cfg.phases;
    std::string err;
    auto resumed = Session::resume(artifact, opts, &err);
    ASSERT_NE(resumed, nullptr) << err;
    const Observed replay =
        observe(*resumed, resumed->runMeasurement());

    EXPECT_EQ(straight.json, replay.json);
    EXPECT_EQ(straight.cycles, replay.cycles);
    EXPECT_EQ(straight.requestsServed, replay.requestsServed);
    EXPECT_EQ(straight.faultLog, replay.faultLog);
    if (GetParam().faults)
        EXPECT_FALSE(straight.faultLog.empty());
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, SnapRoundTrip,
    ::testing::ValuesIn([] {
        std::vector<Scenario> v;
        for (WorkloadConfig::Kind kind :
             {WorkloadConfig::Kind::SpecInt,
              WorkloadConfig::Kind::Apache})
            for (int contexts : {1, 2, 4, 8})
                for (bool fast : {true, false})
                    for (bool faults : {false, true})
                        for (bool banked : {false, true})
                            v.push_back({kind, contexts, fast,
                                         faults, banked});
        return v;
    }()),
    scenarioName);

// The timeline sink sees the same measurement-phase event stream
// (absolute cycle timestamps included) either way.
TEST(SnapTimeline, ResumedTimelineIsByteIdentical)
{
    Session::Config cfg =
        configFor({WorkloadConfig::Kind::Apache, 4, true, false});

    const std::string straightPath = "snap_tl_straight.json";
    const std::string replayPath = "snap_tl_replay.json";

    Session origin(cfg);
    origin.runStartup();
    const std::vector<std::uint8_t> artifact = origin.snapshot();
    {
        ObsConfig oc;
        oc.timelinePath = straightPath;
        ObsSession obs(oc);
        origin.attachObs(obs);
        origin.runMeasurement();
    }
    {
        ObsConfig oc;
        oc.timelinePath = replayPath;
        ObsSession obs(oc);
        Session::ResumeOptions opts;
        opts.phases = cfg.phases;
        opts.obs = &obs;
        std::string err;
        auto resumed = Session::resume(artifact, opts, &err);
        ASSERT_NE(resumed, nullptr) << err;
        resumed->runMeasurement();
    }
    const std::string a = slurp(straightPath);
    const std::string b = slurp(replayPath);
    EXPECT_FALSE(a.empty());
    EXPECT_EQ(a, b);
    std::remove(straightPath.c_str());
    std::remove(replayPath.c_str());
}

// A snapshot taken from a cosim session restores into a cosim session
// (committed registers travel with the artifact) and the oracle stays
// clean across the boundary. runMeasurement panics on divergence, so
// surviving the call is the assertion; checked() proves it engaged.
TEST(SnapCosim, OracleStaysCleanAcrossRestore)
{
    Session::Config cfg =
        configFor({WorkloadConfig::Kind::SpecInt, 4, true, false});
    cfg.cosim = true;

    Session origin(cfg);
    origin.runStartup();
    const std::vector<std::uint8_t> artifact = origin.snapshot();

    Session::ResumeOptions opts;
    opts.phases = cfg.phases;
    opts.cosim = true;
    std::string err;
    auto resumed = Session::resume(artifact, opts, &err);
    ASSERT_NE(resumed, nullptr) << err;
    resumed->runMeasurement();
    ASSERT_NE(resumed->cosim(), nullptr);
    EXPECT_FALSE(resumed->cosim()->diverged());
    EXPECT_GT(resumed->cosim()->checked(), 0u);
}

// Resuming with no overrides and snapshotting again reproduces the
// artifact byte for byte: restore loses nothing.
TEST(SnapArtifact, ResumeThenSnapshotIsIdentity)
{
    const Session::Config cfg =
        configFor({WorkloadConfig::Kind::Apache, 2, true, true});
    Session origin(cfg);
    origin.runStartup();
    const std::vector<std::uint8_t> artifact = origin.snapshot();

    std::string err;
    auto resumed =
        Session::resume(artifact, Session::ResumeOptions{}, &err);
    ASSERT_NE(resumed, nullptr) << err;
    EXPECT_EQ(artifact, resumed->snapshot());
}

TEST(SnapArtifact, RejectsCorruptTruncatedAndVersionSkew)
{
    const Session::Config cfg =
        configFor({WorkloadConfig::Kind::SpecInt, 2, true, false});
    Session origin(cfg);
    origin.runStartup();
    const std::vector<std::uint8_t> artifact = origin.snapshot();

    auto rejects = [](std::vector<std::uint8_t> bad) {
        std::string err;
        auto s = Session::resume(bad, Session::ResumeOptions{}, &err);
        EXPECT_EQ(s, nullptr);
        EXPECT_FALSE(err.empty());
    };

    // Bad magic.
    {
        std::vector<std::uint8_t> bad = artifact;
        bad[0] ^= 0xff;
        rejects(bad);
    }
    // Unsupported format version (header u32 after the 8-byte magic).
    {
        std::vector<std::uint8_t> bad = artifact;
        bad[8] += 1;
        rejects(bad);
    }
    // Payload corruption: the checksum gate must catch a single
    // flipped bit anywhere in the payload.
    {
        std::vector<std::uint8_t> bad = artifact;
        bad[bad.size() / 2] ^= 0x20;
        rejects(bad);
    }
    // Truncation, both mid-header and mid-payload.
    {
        rejects(std::vector<std::uint8_t>(artifact.begin(),
                                          artifact.begin() + 9));
        rejects(std::vector<std::uint8_t>(
            artifact.begin(), artifact.begin() + artifact.size() / 2));
    }
    // Empty.
    rejects({});
}

// The sweep engine is restore fan-out: every point must reproduce the
// straight-through run of the same configuration. jobs=2 exercises
// the concurrent-restore path even on one-core hosts (TSan coverage).
TEST(SnapSweep, SweepPointsMatchStraightThroughRuns)
{
    SweepGroup g;
    g.base = configFor({WorkloadConfig::Kind::Apache, 4, true, false});
    SweepPoint icount;
    icount.label = "icount";
    icount.opts.phases = g.base.phases;
    SweepPoint rr;
    rr.label = "rr";
    rr.opts.phases = g.base.phases;
    rr.opts.roundRobinFetch = true;
    g.points = {icount, rr};

    const std::vector<RunResult> swept = runSweep(g, 2);
    ASSERT_EQ(swept.size(), 2u);

    // The unmodified point must equal a straight-through run of the
    // base configuration end to end.
    const RunResult straightIcount = Session(g.base).run();
    EXPECT_EQ(toJson(swept[0].steady), toJson(straightIcount.steady));

    // A policy-overridden point cannot be reproduced by any from-boot
    // run (its startup deliberately ran under the base policy); its
    // comparator is a manual resume from an identical snapshot.
    // Snapshot determinism (see Matrix/SnapRoundTrip) makes this
    // artifact byte-equal to the one runSweep produced internally.
    Session origin(g.base);
    origin.runStartup();
    std::string err;
    auto rrManual = Session::resume(origin.snapshot(), rr.opts, &err);
    ASSERT_NE(rrManual, nullptr) << err;
    const RunResult manualRr = rrManual->runMeasurement();
    EXPECT_EQ(toJson(swept[1].steady), toJson(manualRr.steady));
    // The fetch policy must actually differ for the comparison to
    // mean anything.
    EXPECT_NE(toJson(swept[0].steady), toJson(swept[1].steady));
}
