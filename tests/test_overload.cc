/**
 * @file
 * Open-loop overload: the admission policies must make closed-form
 * drop decisions from their own deterministic RNG stream, the
 * open-loop arrival process must track its configured rate and be
 * byte-reproducible from its seed (identical metrics JSON and span
 * files), overloaded runs must stay architecturally exact under the
 * co-simulation oracle across context counts, overload state must
 * round-trip through snapshot/resume taken mid-flight, the accounted
 * mbuf pool must turn exhaustion into a refusal instead of the legacy
 * allocator's silent aliasing, and runs with everything disabled must
 * produce artifacts with no overload footprint at all.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "harness/cosim.h"
#include "harness/env.h"
#include "harness/session.h"
#include "kernel/admission.h"
#include "kernel/kernel.h"
#include "net/clients.h"
#include "net/network.h"
#include "obs/session.h"
#include "sim/config.h"
#include "sim/export.h"
#include "sim/system.h"
#include "workload/apache.h"

namespace smtos {

/** White-box access to the kernel's mbuf allocators and counters. */
class KernelTestPeer
{
  public:
    static Addr
    allocRx(Kernel &k, std::uint32_t bytes)
    {
        return k.allocRxMbuf(bytes);
    }
    static void
    freeRx(Kernel &k, Addr mbuf, std::uint32_t bytes)
    {
        k.freeRxMbuf(mbuf, bytes);
    }
    static Addr
    allocLegacy(Kernel &k, std::uint32_t bytes)
    {
        return k.allocMbuf(bytes);
    }
    static Addr
    allocTx(Kernel &k, std::uint32_t bytes)
    {
        return k.allocTxMbuf(bytes);
    }
    static std::uint64_t txWraps(const Kernel &k)
    {
        return k.mbufTxWraps_;
    }
};

} // namespace smtos

using namespace smtos;

namespace {

namespace fs = std::filesystem;

std::string
readFile(const fs::path &p)
{
    std::ifstream in(p, std::ios::binary);
    EXPECT_TRUE(in.good()) << "cannot open " << p;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/** Temp dir for one test's artifacts, removed on destruction. */
struct TempDir
{
    fs::path path;

    explicit TempDir(const std::string &tag)
        : path(fs::temp_directory_path() /
               ("smtos_overload_" + tag + "_" +
                std::to_string(static_cast<unsigned>(::getpid()))))
    {
        fs::create_directories(path);
    }
    ~TempDir() { fs::remove_all(path); }
};

/** The overload operating point most tests run at: open-loop load
 *  just past what a small machine serves, oldest-first shedding with
 *  a deadline below the client retry timeout. */
OpenLoopParams
openLoopPoint()
{
    OpenLoopParams p;
    p.enabled = true;
    p.ratePerMcycle = 200.0;
    p.retryTimeout = 150'000;
    p.maxRetries = 2;
    return p;
}

AdmitParams
oldestFirstPoint()
{
    AdmitParams p;
    p.policy = AdmitPolicy::OldestFirst;
    p.queueCap = 16;
    p.shedDeadline = 100'000;
    p.mbufAccounting = true;
    return p;
}

MachineConfig
overloadMachine(int contexts)
{
    MachineConfig cfg = smtConfig();
    cfg.core.numContexts = contexts;
    cfg.kernel.seed = 11;
    cfg.kernel.enableNetwork = true;
    cfg.kernel.openLoop = openLoopPoint();
    cfg.kernel.admit = oldestFirstPoint();
    return cfg;
}

Session::Config
overloadSession()
{
    Session::Config cfg;
    cfg.workload.kind = WorkloadConfig::Kind::Apache;
    cfg.workload.openLoop = openLoopPoint();
    cfg.system.admit = oldestFirstPoint();
    cfg.system.topology.contextsPerCore = 4;
    cfg.phases.startupInstrs = 260'000;
    cfg.phases.measureInstrs = 200'000;
    return cfg;
}

/** Section tags of a snapshot artifact, in payload order. */
std::vector<std::string>
sectionTags(const std::vector<std::uint8_t> &artifact)
{
    std::vector<std::string> tags;
    std::size_t pos = 28; // magic + format version + length + checksum
    while (pos + 16 <= artifact.size()) {
        tags.emplace_back(artifact.begin() +
                              static_cast<std::ptrdiff_t>(pos),
                          artifact.begin() +
                              static_cast<std::ptrdiff_t>(pos + 4));
        std::uint64_t len;
        std::memcpy(&len, artifact.data() + pos + 8, sizeof len);
        pos += 16 + len;
    }
    return tags;
}

} // namespace

// --- parameter parsing (the SMTOS_OPENLOOP / SMTOS_ADMIT grammar) ---

TEST(OverloadParse, AdmitFromString)
{
    const AdmitParams p = AdmitParams::fromString(
        "policy=oldest,cap=32,deadline=120000,seed=7,mbufacct=1");
    EXPECT_EQ(p.policy, AdmitPolicy::OldestFirst);
    EXPECT_EQ(p.queueCap, 32);
    EXPECT_EQ(p.shedDeadline, 120000u);
    EXPECT_EQ(p.seed, 7u);
    EXPECT_TRUE(p.mbufAccounting);
    EXPECT_TRUE(p.enabled());

    const AdmitParams red =
        AdmitParams::fromString("policy=red,cap=64,redmin=16,redmaxp=0.5");
    EXPECT_EQ(red.policy, AdmitPolicy::RandomEarlyDrop);
    EXPECT_EQ(red.redMinDepth, 16);
    EXPECT_DOUBLE_EQ(red.redMaxProb, 0.5);

    EXPECT_FALSE(AdmitParams{}.enabled());
}

TEST(OverloadParse, OpenLoopFromString)
{
    const OpenLoopParams p = OpenLoopParams::fromString(
        "rate=4.5,kind=bursty,burstfactor=3,burstduty=0.5,"
        "burstperiod=100000,slowpct=0.25,slowdrain=2000,"
        "keepalive=0.1,retry=90000,maxretries=3,seed=42");
    EXPECT_TRUE(p.enabled);
    EXPECT_EQ(p.kind, ArrivalKind::Bursty);
    EXPECT_DOUBLE_EQ(p.ratePerMcycle, 4.5);
    EXPECT_DOUBLE_EQ(p.burstFactor, 3.0);
    EXPECT_DOUBLE_EQ(p.burstDuty, 0.5);
    EXPECT_EQ(p.burstPeriod, 100000u);
    EXPECT_DOUBLE_EQ(p.slowPct, 0.25);
    EXPECT_EQ(p.slowDrainPerKb, 2000u);
    EXPECT_DOUBLE_EQ(p.keepAlivePct, 0.1);
    EXPECT_EQ(p.retryTimeout, 90000u);
    EXPECT_EQ(p.maxRetries, 3);
    EXPECT_EQ(p.seed, 42u);

    EXPECT_FALSE(OpenLoopParams{}.enabled);
}

TEST(OverloadParse, EnvOverridesCarryBoth)
{
    const EnvOverrides ov =
        EnvOverrides::fromLookup([](const char *name) -> const char * {
            if (std::strcmp(name, "SMTOS_OPENLOOP") == 0)
                return "rate=2.0";
            if (std::strcmp(name, "SMTOS_ADMIT") == 0)
                return "policy=droptail,cap=24";
            return nullptr;
        });
    EXPECT_TRUE(ov.hasOpenLoop);
    EXPECT_TRUE(ov.openLoop.enabled);
    EXPECT_DOUBLE_EQ(ov.openLoop.ratePerMcycle, 2.0);
    EXPECT_TRUE(ov.hasAdmit);
    EXPECT_EQ(ov.admit.policy, AdmitPolicy::DropTail);
    EXPECT_EQ(ov.admit.queueCap, 24);
}

// --- admission decisions (closed-form) ---

TEST(Admission, DropTailRefusesExactlyAtCap)
{
    AdmitParams p;
    p.policy = AdmitPolicy::DropTail;
    p.queueCap = 8;
    AdmissionControl ac(p);
    int drops = 0;
    for (int depth = 0; depth < 16; ++depth)
        drops += ac.shouldDrop(depth) ? 1 : 0;
    // Exactly the depths 8..15 are refused.
    EXPECT_EQ(drops, 8);
    EXPECT_FALSE(ac.shouldDrop(7));
    EXPECT_TRUE(ac.shouldDrop(8));
}

TEST(Admission, NonePolicyNeverDropsAndDrawsNoRng)
{
    AdmissionControl ac{AdmitParams{}};
    const std::uint64_t rng0 = ac.rngRawState();
    for (int depth = 0; depth < 1000; ++depth)
        EXPECT_FALSE(ac.shouldDrop(depth));
    EXPECT_EQ(ac.rngRawState(), rng0);
}

TEST(Admission, RedDropFractionMatchesClosedForm)
{
    AdmitParams p;
    p.policy = AdmitPolicy::RandomEarlyDrop;
    p.queueCap = 64;
    p.redMinDepth = 16;
    p.redMaxProb = 0.5;
    AdmissionControl a(p), b(p);

    // Below redMinDepth RED never drops and never draws.
    const std::uint64_t rng0 = a.rngRawState();
    for (int i = 0; i < 100; ++i)
        EXPECT_FALSE(a.shouldDrop(15));
    EXPECT_EQ(a.rngRawState(), rng0);
    // At the cap it is pure drop-tail.
    EXPECT_TRUE(a.shouldDrop(64));

    // At depth 40 the closed form is 0.5 * (40-16)/(64-16) = 0.25.
    const int n = 40000;
    int dropsA = 0, dropsB = 0;
    for (int i = 0; i < n; ++i) {
        dropsA += a.shouldDrop(40) ? 1 : 0;
        dropsB += b.shouldDrop(40) ? 1 : 0;
    }
    // Same seed, same stream: bit-identical decisions.
    EXPECT_EQ(dropsA, dropsB);
    const double frac = static_cast<double>(dropsA) / n;
    EXPECT_NEAR(frac, 0.25, 0.02);

    // A different seed gives a different (but still ~0.25) schedule.
    AdmitParams q = p;
    q.seed = 0x5eedULL;
    AdmissionControl c(q);
    int dropsC = 0;
    for (int i = 0; i < n; ++i)
        dropsC += c.shouldDrop(40) ? 1 : 0;
    EXPECT_NE(dropsA, dropsC);
    EXPECT_NEAR(static_cast<double>(dropsC) / n, 0.25, 0.02);
}

// --- the open-loop arrival process ---

TEST(OpenLoopClients, PoissonArrivalsTrackConfiguredRate)
{
    ClientPopulation cl{SpecWebParams{}, 7};
    Network net;
    OpenLoopParams p;
    p.enabled = true;
    p.ratePerMcycle = 200.0;
    cl.setOpenLoop(p);

    // 2M cycles at NIC-interrupt granularity: expect ~400 arrivals.
    for (Cycle now = 8000; now <= 2'000'000; now += 8000)
        cl.tick(now, net);
    EXPECT_GT(cl.arrivals(), 300u);
    EXPECT_LT(cl.arrivals(), 500u);
    // Nothing answers, so every port fills and the overflow counter
    // must absorb the arrivals beyond the 128 ports.
    EXPECT_GT(cl.arrivalOverflows(), 0u);
    EXPECT_EQ(cl.requestsIssued() + cl.arrivalOverflows(),
              cl.arrivals());
}

TEST(OpenLoopClients, SameSeedSameSchedule)
{
    OpenLoopParams p;
    p.enabled = true;
    p.ratePerMcycle = 120.0;
    p.kind = ArrivalKind::Bursty;

    auto runOnce = [&p]() {
        ClientPopulation cl{SpecWebParams{}, 7};
        Network net;
        cl.setOpenLoop(p);
        for (Cycle now = 8000; now <= 1'000'000; now += 8000)
            cl.tick(now, net);
        return std::make_pair(cl.arrivals(), cl.requestsIssued());
    };
    EXPECT_EQ(runOnce(), runOnce());

    OpenLoopParams q = p;
    q.seed = 0xfeedULL;
    ClientPopulation cl{SpecWebParams{}, 7};
    Network net;
    cl.setOpenLoop(q);
    for (Cycle now = 8000; now <= 1'000'000; now += 8000)
        cl.tick(now, net);
    EXPECT_NE(cl.arrivals(), runOnce().first);
}

TEST(OpenLoopClients, RampStartsSlower)
{
    SpecWebParams web;
    Network net;
    OpenLoopParams p;
    p.enabled = true;
    p.ratePerMcycle = 200.0;

    ClientPopulation flat{web, 7};
    flat.setOpenLoop(p);
    p.kind = ArrivalKind::Ramp;
    p.rampStartFactor = 0.1;
    p.rampCycles = 4'000'000;
    ClientPopulation ramp{web, 7};
    ramp.setOpenLoop(p);

    for (Cycle now = 8000; now <= 1'000'000; now += 8000) {
        flat.tick(now, net);
        ramp.tick(now, net);
    }
    // Deep in the ramp the offered load is a fraction of the flat
    // process's.
    EXPECT_LT(ramp.arrivals() * 2, flat.arrivals());
}

// --- overloaded runs stay architecturally exact (cosim oracle) ---

class OverloadInvariant : public ::testing::TestWithParam<int>
{
};

TEST_P(OverloadInvariant, ExactUnderCosimAcrossContexts)
{
    const int contexts = GetParam();
    System sys(overloadMachine(contexts));
    ApacheWorkload w = buildApache(ApacheParams{});
    installApache(sys.kernel(), w);
    Cosim cosim(sys.pipeline());
    sys.start();
    sys.runCycles(1'200'000);

    EXPECT_FALSE(cosim.diverged()) << cosim.report();
    EXPECT_GT(cosim.checked(), 50000u);
    // The open-loop process offered load...
    const OverloadStats st = sys.kernel().overloadStats();
    EXPECT_TRUE(st.enabled);
    EXPECT_GT(st.offeredArrivals, 0u);
    // ...and the kernel's structural invariants held throughout,
    // including the accounted-RX-mbuf map.
    EXPECT_EQ(sys.kernel().auditInvariants(), "");
}

INSTANTIATE_TEST_SUITE_P(Contexts, OverloadInvariant,
                         ::testing::Values(1, 2, 4, 8),
                         [](const auto &info) {
                             return "Ctx" +
                                    std::to_string(info.param);
                         });

TEST(OverloadRun, SlowClientsDrainAndComplete)
{
    MachineConfig cfg = overloadMachine(8);
    cfg.kernel.openLoop.ratePerMcycle = 60.0;
    cfg.kernel.openLoop.slowPct = 1.0;
    cfg.kernel.openLoop.slowDrainPerKb = 1000;
    System sys(cfg);
    ApacheWorkload w = buildApache(ApacheParams{});
    installApache(sys.kernel(), w);
    sys.start();
    sys.runCycles(2'400'000);

    const OverloadStats st = sys.kernel().overloadStats();
    EXPECT_GT(st.slowCompletions, 0u);
    EXPECT_GT(st.goodput, 0u);
    // Every slow completion is also a goodput completion.
    EXPECT_LE(st.slowCompletions, st.goodput);
}

// --- determinism of the full pipeline (metrics JSON + span files) ---

TEST(OverloadDeterminism, SameSeedByteIdenticalArtifacts)
{
    TempDir tmp("det");
    auto runOnce = [&tmp](const std::string &tag) {
        ObsConfig oc;
        oc.reqtrace = true;
        oc.reqtraceFilePath = (tmp.path / (tag + ".jsonl")).string();
        ObsSession obs(oc);
        Session::Config cfg = overloadSession();
        cfg.obs = &obs;
        Session s(cfg);
        const RunResult r = s.run();
        return toJson(r.steady);
    };
    const std::string a = runOnce("a");
    const std::string b = runOnce("b");
    EXPECT_EQ(a, b);
    EXPECT_EQ(readFile(tmp.path / "a.jsonl"),
              readFile(tmp.path / "b.jsonl"));
    // The gated overload object is present and accounted.
    EXPECT_NE(a.find("\"overload\":{\"offered_arrivals\":"),
              std::string::npos);
}

// --- snapshot/resume with overload state mid-flight ---

TEST(OverloadSnap, ResumedRunIsByteIdentical)
{
    Session::Config cfg = overloadSession();
    Session origin(cfg);
    origin.runStartup();
    const std::vector<std::uint8_t> artifact = origin.snapshot();
    // Snapshotting is repeatable and the OVLD section trails the
    // artifact.
    EXPECT_EQ(artifact, origin.snapshot());
    const std::vector<std::string> tags = sectionTags(artifact);
    ASSERT_FALSE(tags.empty());
    EXPECT_EQ(tags.back(), "OVLD");

    const std::string straight = toJson(origin.runMeasurement().steady);

    Session::ResumeOptions opts;
    opts.phases = cfg.phases;
    std::string err;
    auto resumed = Session::resume(artifact, opts, &err);
    ASSERT_NE(resumed, nullptr) << err;
    EXPECT_TRUE(resumed->config().workload.openLoop.enabled);
    EXPECT_EQ(resumed->config().system.admit.policy,
              AdmitPolicy::OldestFirst);
    const std::string replay = toJson(resumed->runMeasurement().steady);
    EXPECT_EQ(straight, replay);
    EXPECT_NE(straight.find("\"overload\""), std::string::npos);
}

TEST(OverloadSnap, ResumeThenSnapshotIsIdentity)
{
    Session::Config cfg = overloadSession();
    Session origin(cfg);
    origin.runStartup();
    const std::vector<std::uint8_t> artifact = origin.snapshot();
    std::string err;
    auto resumed =
        Session::resume(artifact, Session::ResumeOptions{}, &err);
    ASSERT_NE(resumed, nullptr) << err;
    EXPECT_EQ(artifact, resumed->snapshot());
}

TEST(OverloadSnap, ClosedLoopArtifactResumesIntoOverload)
{
    // The fig_overload_knee pattern: one closed-loop start-up
    // artifact, pushed into open-loop load under an admission policy
    // purely via ResumeOptions.
    Session::Config cfg;
    cfg.workload.kind = WorkloadConfig::Kind::Apache;
    cfg.system.topology.contextsPerCore = 4;
    cfg.phases.startupInstrs = 260'000;
    cfg.phases.measureInstrs = 200'000;
    Session origin(cfg);
    origin.runStartup();
    const std::vector<std::uint8_t> artifact = origin.snapshot();
    // The closed-loop artifact must carry no OVLD section.
    for (const std::string &t : sectionTags(artifact))
        EXPECT_NE(t, "OVLD");

    Session::ResumeOptions opts;
    opts.phases = cfg.phases;
    opts.openLoop = openLoopPoint();
    opts.admit = oldestFirstPoint();
    std::string err;
    auto resumed = Session::resume(artifact, opts, &err);
    ASSERT_NE(resumed, nullptr) << err;
    const std::string json = toJson(resumed->runMeasurement().steady);
    EXPECT_NE(json.find("\"overload\""), std::string::npos);
    const OverloadStats st =
        resumed->system().kernel().overloadStats();
    EXPECT_TRUE(st.enabled);
    EXPECT_GT(st.offeredArrivals, 0u);
    // And its own snapshot now carries the overload section.
    const std::vector<std::string> tags =
        sectionTags(resumed->snapshot());
    ASSERT_FALSE(tags.empty());
    EXPECT_EQ(tags.back(), "OVLD");
}

// --- the mbuf pool: accounted refusal vs legacy aliasing ---

TEST(MbufPool, AccountedRxPoolRefusesWhenExhausted)
{
    System sys(overloadMachine(2));
    Kernel &k = sys.kernel();

    // The RX region holds exactly 96 2KB units.
    std::set<Addr> got;
    std::vector<Addr> order;
    for (int i = 0; i < 96; ++i) {
        const Addr m = KernelTestPeer::allocRx(k, 2048);
        ASSERT_NE(m, 0u) << "unit " << i;
        got.insert(m);
        order.push_back(m);
    }
    // All distinct: exhaustion cannot silently alias.
    EXPECT_EQ(got.size(), 96u);
    // The 97th allocation is refused, not wrapped.
    EXPECT_EQ(KernelTestPeer::allocRx(k, 2048), 0u);
    // Freeing returns the unit to the pool.
    KernelTestPeer::freeRx(k, order[40], 2048);
    EXPECT_EQ(KernelTestPeer::allocRx(k, 2048), order[40]);
    EXPECT_EQ(KernelTestPeer::allocRx(k, 2048), 0u);
}

TEST(MbufPool, LegacyBumpAllocatorAliasesOnWrap)
{
    // The pre-accounting allocator wraps its cursor and reuses live
    // buffers without any signal — the hazard the accounted pool
    // (admit.mbufAccounting) turns into counted backpressure. Pin
    // the behavior so the contrast stays documented.
    MachineConfig cfg = smtConfig();
    cfg.kernel.enableNetwork = true;
    System sys(cfg);
    Kernel &k = sys.kernel();

    const Addr first = KernelTestPeer::allocLegacy(k, 2048);
    bool aliased = false;
    for (int i = 0; i < 256 && !aliased; ++i)
        aliased = KernelTestPeer::allocLegacy(k, 2048) == first;
    EXPECT_TRUE(aliased);
}

TEST(MbufPool, TxWrapsAreCounted)
{
    System sys(overloadMachine(2));
    Kernel &k = sys.kernel();
    EXPECT_EQ(KernelTestPeer::txWraps(k), 0u);
    // The TX region is 32 2KB units; the 33rd bump wraps and counts.
    for (int i = 0; i < 33; ++i)
        KernelTestPeer::allocTx(k, 2048);
    EXPECT_EQ(KernelTestPeer::txWraps(k), 1u);
}

// --- disabled parity: no overload footprint anywhere ---

TEST(OverloadDisabled, ClosedLoopRunHasNoOverloadFootprint)
{
    Session::Config cfg;
    cfg.workload.kind = WorkloadConfig::Kind::Apache;
    cfg.system.topology.contextsPerCore = 2;
    cfg.phases.startupInstrs = 200'000;
    cfg.phases.measureInstrs = 120'000;
    Session s(cfg);
    const RunResult r = s.run();
    const std::string json = toJson(r.steady);
    EXPECT_EQ(json.find("\"overload\""), std::string::npos);
    EXPECT_FALSE(s.capture().overload.enabled);
    const ClientPopulation &cl = s.system().kernel().clients();
    EXPECT_EQ(cl.arrivals(), 0u);
    EXPECT_FALSE(cl.openLoopEnabled());
}
