/**
 * @file
 * CMP/SMP correctness: the MESI hub's closed-form latencies, the TLB
 * shootdown completion invariant, work-stealing determinism, a cosim
 * fuzz over the topology matrix, and the single-core byte-identity
 * contract (cores = 1 artifacts keep the historical layout exactly).
 */

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "harness/cosim.h"
#include "harness/env.h"
#include "harness/session.h"
#include "mem/coherence.h"
#include "mem/hierarchy.h"
#include "sim/export.h"

using namespace smtos;

namespace {

// --- MESI unit fixtures: two private hierarchies behind one hub. ---

struct Chip2
{
    Hierarchy h0, h1;
    CoherenceHub hub;

    Chip2() : h0(HierarchyParams{}), h1(HierarchyParams{})
    {
        hub.attach(&h0);
        hub.attach(&h1);
        h0.setCoherence(&hub, 0, nullptr);
        h1.setCoherence(&hub, 1, &h0);
    }
};

const AccessInfo who0{0, Mode::User, 0};
const AccessInfo who1{1, Mode::User, 1};

// --- Session configs ---

Session::Config
smpSpec(int cores, int ctx)
{
    Session::Config s;
    s.system.topology.cores = cores;
    s.system.topology.contextsPerCore = ctx;
    s.workload.kind = WorkloadConfig::Kind::SpecInt;
    s.workload.spec.inputChunks = 16;
    s.phases.startupInstrs = 120'000;
    s.phases.measureInstrs = 160'000;
    return s;
}

Session::Config
smpApache(int cores, int ctx)
{
    Session::Config s = smpSpec(cores, ctx);
    s.workload.kind = WorkloadConfig::Kind::Apache;
    return s;
}

/** Walk the artifact's section framing: (fourcc, version) in order. */
std::vector<std::pair<std::string, std::uint32_t>>
sectionsOf(const std::vector<std::uint8_t> &artifact)
{
    std::vector<std::pair<std::string, std::uint32_t>> out;
    std::size_t pos = 8 + 4 + 8 + 8; // magic, format, length, checksum
    while (pos + 16 <= artifact.size()) {
        char tag[5] = {0};
        std::memcpy(tag, artifact.data() + pos, 4);
        std::uint32_t version;
        std::memcpy(&version, artifact.data() + pos + 4,
                    sizeof version);
        std::uint64_t len;
        std::memcpy(&len, artifact.data() + pos + 8, sizeof len);
        out.emplace_back(tag, version);
        pos += 16 + len;
    }
    EXPECT_EQ(pos, artifact.size());
    return out;
}

int
countTag(const std::vector<std::pair<std::string, std::uint32_t>> &ss,
         const std::string &tag)
{
    int n = 0;
    for (const auto &s : ss)
        if (s.first == tag)
            ++n;
    return n;
}

} // namespace

// ===================== MESI state machine =====================

// A store with no remote copy is MESI's silent E->M: no invalidation,
// no upgrade broadcast, zero added latency.
TEST(Mesi, ExclusiveToModifiedIsSilent)
{
    Chip2 c;
    c.h0.l1d().access(0x1000, who0, false);
    EXPECT_EQ(c.hub.onWrite(0, 0x1000), 0u);
    EXPECT_EQ(c.hub.stats().snoopProbes, 1u);
    EXPECT_EQ(c.hub.stats().invalidations, 0u);
    EXPECT_EQ(c.hub.stats().upgrades, 0u);
    EXPECT_EQ(c.hub.stats().interventionWritebacks, 0u);
}

// A store that finds a remote clean sharer pays exactly the S->M
// upgrade broadcast and invalidates the remote copy.
TEST(Mesi, UpgradeInvalidatesCleanSharer)
{
    Chip2 c;
    c.h1.l1d().access(0x2000, who1, false); // remote Shared copy
    EXPECT_TRUE(c.h1.l1d().probe(0x2000));
    EXPECT_EQ(c.hub.onWrite(0, 0x2000), CoherenceHub::upgradeLatency);
    EXPECT_FALSE(c.h1.l1d().probe(0x2000));
    EXPECT_EQ(c.hub.stats().invalidations, 1u);
    EXPECT_EQ(c.hub.stats().upgrades, 1u);
    EXPECT_EQ(c.hub.stats().interventionWritebacks, 0u);
}

// A store that finds a remote Modified copy pays the intervention
// writeback (the dirty data's trip to the shared L2 is on the
// store's critical path), not the cheap upgrade.
TEST(Mesi, WriteToRemoteModifiedPaysIntervention)
{
    Chip2 c;
    c.h1.l1d().access(0x3000, who1, true); // remote Modified copy
    EXPECT_TRUE(c.h1.l1d().probeDirty(0x3000));
    EXPECT_EQ(c.hub.onWrite(0, 0x3000),
              CoherenceHub::interventionLatency);
    EXPECT_FALSE(c.h1.l1d().probe(0x3000));
    EXPECT_EQ(c.hub.stats().invalidations, 1u);
    EXPECT_EQ(c.hub.stats().interventionWritebacks, 1u);
    EXPECT_EQ(c.hub.stats().upgrades, 0u);
}

// A read miss downgrades a remote Modified copy M->S: the remote
// copy stays resident but loses dirty ownership, and the requester
// pays the intervention on its fill path.
TEST(Mesi, ReadMissDowngradesRemoteModified)
{
    Chip2 c;
    c.h1.l1d().access(0x4000, who1, true);
    EXPECT_EQ(c.hub.onReadMiss(0, 0x4000),
              CoherenceHub::interventionLatency);
    EXPECT_TRUE(c.h1.l1d().probe(0x4000));
    EXPECT_FALSE(c.h1.l1d().probeDirty(0x4000));
    EXPECT_EQ(c.hub.stats().downgrades, 1u);
    EXPECT_EQ(c.hub.stats().interventionWritebacks, 1u);
    // A second read miss finds the copy already Shared: free.
    EXPECT_EQ(c.hub.onReadMiss(0, 0x4000), 0u);
    EXPECT_EQ(c.hub.stats().downgrades, 1u);
}

// Clean remote sharers cost a read miss nothing.
TEST(Mesi, ReadMissWithCleanSharerIsFree)
{
    Chip2 c;
    c.h1.l1d().access(0x5000, who1, false);
    EXPECT_EQ(c.hub.onReadMiss(0, 0x5000), 0u);
    EXPECT_EQ(c.hub.stats().downgrades, 0u);
    EXPECT_EQ(c.hub.stats().interventionWritebacks, 0u);
    EXPECT_TRUE(c.h1.l1d().probe(0x5000));
}

// DMA writes (disk reads landing in memory) invalidate every core's
// stale L1D copy.
TEST(Mesi, DmaInvalidatesEveryCore)
{
    Chip2 c;
    c.h0.l1d().access(0x6000, who0, false);
    c.h1.l1d().access(0x6000, who1, false);
    c.hub.dmaInvalidate(0x6000);
    EXPECT_FALSE(c.h0.l1d().probe(0x6000));
    EXPECT_FALSE(c.h1.l1d().probe(0x6000));
}

// ===================== TLB shootdowns =====================

// munmap on a CMP IPIs every other core; the kernel's ledger must
// balance (raised = delivered + pending) and the audit must stay
// clean through delivery. Small heaps make the workload's munmap
// calls hit mapped pages deterministically often.
TEST(Shootdown, CompletionInvariantHolds)
{
    Session::Config cfg = smpSpec(2, 4);
    cfg.workload.spec.heapBase = 1ull << 16;
    cfg.workload.spec.heapStep = 1ull << 14;
    cfg.phases.startupInstrs = 400'000;
    cfg.phases.measureInstrs = 1'500'000;
    Session s(cfg);
    s.run();
    const Kernel &k = s.system().kernel();
    EXPECT_GT(k.shootdownIpis(), 0u);
    EXPECT_GT(k.shootdownsDelivered(), 0u);
    EXPECT_LE(k.shootdownsDelivered(), k.shootdownIpis());
    EXPECT_EQ(s.system().kernel().auditInvariants(), "");
}

// ===================== work stealing =====================

// An imbalanced process count (5 user procs across 2 cores x 2
// contexts) forces idle cores to steal; twin runs must agree on
// every exported number and on the steal count itself.
TEST(WorkStealing, StealsHappenAndRunsAreDeterministic)
{
    Session::Config cfg = smpSpec(2, 2);
    cfg.workload.spec.numApps = 5;
    cfg.workload.spec.inputChunks = 40;
    cfg.phases.startupInstrs = 600'000;
    cfg.phases.measureInstrs = 200'000;

    Session a(cfg);
    const RunResult ra = a.run();
    Session b(cfg);
    const RunResult rb = b.run();

    EXPECT_GT(a.system().kernel().workSteals(), 0u);
    EXPECT_EQ(a.system().kernel().workSteals(),
              b.system().kernel().workSteals());
    EXPECT_EQ(toJson(ra.startup), toJson(rb.startup));
    EXPECT_EQ(toJson(ra.steady), toJson(rb.steady));
    EXPECT_EQ(ra.cycles, rb.cycles);
    EXPECT_EQ(a.system().kernel().auditInvariants(), "");
}

// ===================== per-core aggregates =====================

// The top-level capture is the machine aggregate of the per-core
// slices: instruction counts sum, and lockstep makes every core
// report the same chip cycle.
TEST(Topology, PerCoreSlicesSumToMachineAggregates)
{
    Session s(smpApache(2, 4));
    const RunResult r = s.run();
    ASSERT_EQ(r.steady.cores.size(), 2u);
    EXPECT_EQ(r.steady.smp.enabled, 1);
    std::uint64_t instrs = 0;
    for (const CoreSlice &c : r.steady.cores) {
        instrs += c.core.totalRetired();
        EXPECT_EQ(c.core.cycles, r.steady.core.cycles);
    }
    EXPECT_EQ(instrs, r.steady.core.totalRetired());
    EXPECT_TRUE(r.steady.smp.coherence.any());

    const std::string json = toJson(r.steady);
    EXPECT_NE(json.find("\"cores\":["), std::string::npos);
    EXPECT_NE(json.find("\"smp\":{"), std::string::npos);
    EXPECT_NE(json.find("\"coherence\""), std::string::npos);
}

// ===================== cosim fuzz =====================

struct FuzzCase
{
    int seed;
};

class SmpCosimFuzz : public ::testing::TestWithParam<int>
{
};

// 52 seeds across {1,2,4} cores x {1,2,4,8} contexts, alternating
// SPECInt and Apache. runMeasurement panics on divergence, so a
// surviving oracle with checked() > 0 is the assertion.
TEST_P(SmpCosimFuzz, OracleStaysClean)
{
    const int seed = GetParam();
    static const int coreChoices[] = {1, 2, 4};
    static const int ctxChoices[] = {1, 2, 4, 8};
    const int cores = coreChoices[seed % 3];
    const int ctx = ctxChoices[(seed / 3) % 4];
    Session::Config cfg = seed % 2 ? smpApache(cores, ctx)
                                   : smpSpec(cores, ctx);
    cfg.phases.startupInstrs = 60'000;
    cfg.phases.measureInstrs = 80'000;
    cfg.workload.seed = 1000 + static_cast<std::uint64_t>(seed);
    cfg.cosim = true;
    Session s(cfg);
    s.run();
    ASSERT_NE(s.cosim(), nullptr);
    EXPECT_FALSE(s.cosim()->diverged());
    EXPECT_GT(s.cosim()->checked(), 0u);
    EXPECT_EQ(s.system().kernel().auditInvariants(), "");
}

INSTANTIATE_TEST_SUITE_P(Seeds, SmpCosimFuzz,
                         ::testing::Range(0, 52));

// ===================== snapshot formats =====================

// cores = 1 artifacts keep the seed layout exactly: CFG version 2,
// one PIPE section, no COH section, and no SMP keys in the JSON.
TEST(SnapshotFormat, SingleCoreArtifactKeepsSeedLayout)
{
    Session::Config cfg = smpSpec(1, 4);
    Session s(cfg);
    s.runStartup();
    const auto sections = sectionsOf(s.snapshot());
    ASSERT_FALSE(sections.empty());
    EXPECT_EQ(sections[0].first, "CFG ");
    EXPECT_EQ(sections[0].second, 2u);
    EXPECT_EQ(countTag(sections, "PIPE"), 1);
    EXPECT_EQ(countTag(sections, "HIER"), 1);
    EXPECT_EQ(countTag(sections, "COH "), 0);

    const std::string json =
        toJson(MetricsSnapshot::capture(s.system()));
    EXPECT_EQ(json.find("\"cores\":["), std::string::npos);
    EXPECT_EQ(json.find("\"smp\":{"), std::string::npos);
}

// CMP artifacts carry the widened CFG plus one PIPE/HIER pair per
// core and the coherence hub's section.
TEST(SnapshotFormat, CmpArtifactCarriesPerCoreSections)
{
    Session s(smpApache(2, 4));
    s.runStartup();
    const auto sections = sectionsOf(s.snapshot());
    ASSERT_FALSE(sections.empty());
    EXPECT_EQ(sections[0].first, "CFG ");
    EXPECT_EQ(sections[0].second, 3u);
    EXPECT_EQ(countTag(sections, "PIPE"), 2);
    EXPECT_EQ(countTag(sections, "HIER"), 2);
    EXPECT_EQ(countTag(sections, "COH "), 1);
}

// A CMP measurement resumed from the artifact is byte-identical to
// the uninterrupted one, and restoring then re-snapshotting loses
// nothing.
TEST(SnapshotFormat, CmpRoundTripIsExact)
{
    Session::Config cfg = smpApache(2, 4);
    Session origin(cfg);
    origin.runStartup();
    const std::vector<std::uint8_t> artifact = origin.snapshot();

    std::string err;
    auto identity =
        Session::resume(artifact, Session::ResumeOptions{}, &err);
    ASSERT_NE(identity, nullptr) << err;
    EXPECT_EQ(artifact, identity->snapshot());

    const std::string straight =
        toJson(origin.runMeasurement().steady);
    Session::ResumeOptions opts;
    opts.phases = cfg.phases;
    auto resumed = Session::resume(artifact, opts, &err);
    ASSERT_NE(resumed, nullptr) << err;
    EXPECT_EQ(straight, toJson(resumed->runMeasurement().steady));
}

// The cosim oracle survives a CMP snapshot/restore boundary.
TEST(SnapshotFormat, CmpCosimSurvivesRestore)
{
    Session::Config cfg = smpSpec(2, 4);
    cfg.cosim = true;
    Session origin(cfg);
    origin.runStartup();
    const std::vector<std::uint8_t> artifact = origin.snapshot();

    Session::ResumeOptions opts;
    opts.phases = cfg.phases;
    opts.cosim = true;
    std::string err;
    auto resumed = Session::resume(artifact, opts, &err);
    ASSERT_NE(resumed, nullptr) << err;
    resumed->runMeasurement();
    ASSERT_NE(resumed->cosim(), nullptr);
    EXPECT_FALSE(resumed->cosim()->diverged());
    EXPECT_GT(resumed->cosim()->checked(), 0u);
}

// ===================== SMTOS_CORES =====================

TEST(SmpEnv, SmtosCoresParsesAndValidates)
{
    const EnvOverrides ov =
        EnvOverrides::fromLookup([](const char *name) -> const char * {
            return std::strcmp(name, "SMTOS_CORES") == 0 ? "4"
                                                         : nullptr;
        });
    EXPECT_TRUE(ov.hasCores);
    EXPECT_EQ(ov.cores, 4);

    const EnvOverrides none = EnvOverrides::fromLookup(
        [](const char *) -> const char * { return nullptr; });
    EXPECT_FALSE(none.hasCores);
}
