/**
 * @file
 * Cross-module integration tests: full fault round trips, ASN
 * wraparound, scheduler policies, icache-flush effects, determinism
 * of the composed system under nontrivial configurations.
 */

#include <gtest/gtest.h>

#include "harness/session.h"
#include "net/clients.h"
#include "sim/system.h"
#include "workload/apache.h"
#include "workload/specint.h"

using namespace smtos;

TEST(Integration, AsnWraparoundFlushesAndRecovers)
{
    MachineConfig cfg = smtConfig();
    cfg.kernel.enableNetwork = true;
    cfg.kernel.maxAsn = 5; // force frequent wraparound
    cfg.kernel.web.numClients = 16;
    System sys(cfg);
    ApacheParams p;
    p.numServers = 16;
    ApacheWorkload w = buildApache(p);
    installApache(sys.kernel(), w);
    sys.start();
    sys.run(2'600'000);
    EXPECT_GT(sys.kernel().tlbWraparounds(), 0u);
    EXPECT_GT(sys.kernel().requestsServed(), 0u);
    // Wraparound flushes show up as OS invalidations in the TLBs.
    const auto &dtlb = sys.pipeline().dtlb().stats();
    const auto inval =
        dtlb.cause[0][static_cast<int>(MissCause::OsInvalidation)] +
        dtlb.cause[1][static_cast<int>(MissCause::OsInvalidation)];
    EXPECT_GT(inval, 0u);
}

TEST(Integration, IcacheFlushesFollowTextFaults)
{
    // SPECInt text pages fault in lazily; each text-page allocation
    // flushes the shared I-cache (Alpha imb on mapping executable
    // pages), which the paper identifies as the source of the
    // kernel-induced I-cache misses at start-up.
    MachineConfig cfg = smtConfig();
    System sys(cfg);
    SpecIntParams p;
    p.numApps = 4;
    p.inputChunks = 8;
    SpecIntWorkload w = buildSpecInt(p);
    installSpecInt(sys.kernel(), w);
    sys.start();
    sys.run(600'000);
    const auto &l1i = sys.hierarchy().l1i().stats();
    const auto inval =
        l1i.cause[0][static_cast<int>(MissCause::OsInvalidation)] +
        l1i.cause[1][static_cast<int>(MissCause::OsInvalidation)];
    EXPECT_GT(inval, 0u);
}

TEST(Integration, AffinitySchedulerReducesNothingButWorks)
{
    // The affinity policy must preserve correctness: same requests
    // served ballpark, all servers progress.
    Session::Config base;
    base.workload.kind = WorkloadConfig::Kind::Apache;
    base.workload.apache.numServers = 16; // concentrate so requests finish
    base.phases.startupInstrs = 1'200'000;
    base.phases.measureInstrs = 1'200'000;
    Session::Config aff = base;
    aff.system.affinitySched = true;
    RunResult r1 = Session(base).run();
    RunResult r2 = Session(aff).run();
    EXPECT_GT(r2.requestsServed, 0u);
    // Throughput within a sane band of each other.
    const double a = archMetrics(r1.steady).ipc;
    const double b = archMetrics(r2.steady).ipc;
    EXPECT_GT(b, 0.5 * a);
    EXPECT_LT(b, 2.0 * a);
}

TEST(Integration, FilterKernelRefsLowersUserVisibleMissRates)
{
    Session::Config full;
    full.workload.kind = WorkloadConfig::Kind::Apache;
    full.phases.startupInstrs = 600'000;
    full.phases.measureInstrs = 600'000;
    Session::Config filt = full;
    filt.system.filterKernelRefs = true;
    const ArchMetrics a = archMetrics(Session(filt).run().steady);
    const ArchMetrics b = archMetrics(Session(full).run().steady);
    // Removing kernel references must not increase the I-cache or
    // branch mispredict rates (Table 9's direction).
    EXPECT_LE(a.l1iMissPct, b.l1iMissPct + 0.05);
    EXPECT_LE(a.branchMispredPct, b.branchMispredPct + 0.5);
}

TEST(Integration, NicIntervalControlsInterruptRate)
{
    auto run_with = [](Cycle interval) {
        MachineConfig cfg = smtConfig();
        cfg.kernel.enableNetwork = true;
        cfg.kernel.nicInterval = interval;
        System sys(cfg);
        ApacheParams p;
        ApacheWorkload w = buildApache(p);
        installApache(sys.kernel(), w);
        sys.start();
        sys.run(800'000);
        return sys.pipeline().stats().kernelEntries.get("interrupt");
    };
    const auto fast = run_with(4000);
    const auto slow = run_with(32000);
    EXPECT_GT(fast, slow);
}

TEST(Integration, KernelThreadsRunKernelOnlyCode)
{
    MachineConfig cfg = smtConfig();
    cfg.kernel.enableNetwork = true;
    System sys(cfg);
    ApacheParams p;
    p.numServers = 4;
    ApacheWorkload w = buildApache(p);
    installApache(sys.kernel(), w);
    sys.start();
    sys.run(600'000);
    for (int pid = 0; pid < sys.kernel().numProcs(); ++pid) {
        Process &pr = sys.kernel().proc(pid);
        if (pr.cfg.kind == ProcKind::KernelThread) {
            EXPECT_TRUE(pr.ts.cursor.top().inKernel);
            EXPECT_GT(pr.ts.cursor.retired, 0u);
        }
    }
}

TEST(Integration, BufferCacheHitsAfterWarmup)
{
    MachineConfig cfg = smtConfig();
    cfg.kernel.enableNetwork = true;
    cfg.kernel.web.numFiles = 8; // tiny file set: warms fast
    System sys(cfg);
    ApacheParams p;
    ApacheWorkload w = buildApache(p);
    installApache(sys.kernel(), w);
    sys.start();
    sys.run(2'500'000);
    sys.run(2'500'000);
    // Every (file, page) is read from disk at most once: total disk
    // reads are bounded by the file set's page count, regardless of
    // how many requests were served.
    std::uint64_t total_pages = 0;
    for (int f = 0; f < 8; ++f)
        total_pages += (specWebFileBytes(f) + pageBytes - 1) /
                       pageBytes;
    EXPECT_GT(sys.kernel().requestsServed(), 4u);
    EXPECT_LE(sys.kernel().diskReads(), total_pages);
}

TEST(Integration, SuperscalarApacheMatchesPaperBallpark)
{
    Session::Config ss;
    ss.workload.kind = WorkloadConfig::Kind::Apache;
    ss.system.smt = false;
    ss.phases.startupInstrs = 700'000;
    ss.phases.measureInstrs = 700'000;
    const double ipc = archMetrics(Session(ss).run().steady).ipc;
    // Paper: 1.1 IPC. Accept a generous band around it.
    EXPECT_GT(ipc, 0.4);
    EXPECT_LT(ipc, 2.2);
}

TEST(Integration, RequestsRequireNetisrActivity)
{
    MachineConfig cfg = smtConfig();
    cfg.kernel.enableNetwork = true;
    System sys(cfg);
    ApacheParams p;
    ApacheWorkload w = buildApache(p);
    installApache(sys.kernel(), w);
    sys.start();
    sys.run(900'000);
    const auto &s = sys.pipeline().stats();
    EXPECT_GT(s.retiredByTag[TagNetIsr], 0u);
    EXPECT_GT(s.retiredByTag[TagInterrupt], 0u);
    EXPECT_GT(s.retiredByTag[TagAccept], 0u);
}

TEST(Integration, PhysicalFramesNeverDoubleAllocated)
{
    // Run a heavy mixed workload and verify the frame accounting
    // stays consistent (alloc - free == live).
    MachineConfig cfg = smtConfig();
    System sys(cfg);
    SpecIntParams p;
    p.numApps = 8;
    p.inputChunks = 16;
    SpecIntWorkload w = buildSpecInt(p);
    installSpecInt(sys.kernel(), w);
    sys.start();
    sys.run(1'500'000);
    EXPECT_LE(sys.physMem().allocated(),
              sys.physMem().totalFrames() -
                  sys.physMem().firstAllocatable());
    EXPECT_GT(sys.physMem().freeFrames(), 0u);
}

TEST(Integration, SharedTlbIprSerializesHandlers)
{
    // With shared TLB-miss IPRs (the unmodified-SMP-OS ablation),
    // concurrent faults spin on the virtual IPR lock; the paper's
    // per-context replication removes that time entirely.
    Session::Config fast;
    fast.workload.kind = WorkloadConfig::Kind::SpecInt;
    fast.workload.spec.inputChunks = 24;
    fast.phases.measureInstrs = 200'000;
    Session::Config slow = fast;
    slow.system.sharedTlbIpr = true;
    RunResult r_fast = Session(fast).run();
    RunResult r_slow = Session(slow).run();
    // Spin time exists only in the shared-IPR configuration.
    EXPECT_EQ(tagSharePct(r_fast.startup, TagSpin), 0.0);
    EXPECT_GT(tagSharePct(r_slow.startup, TagSpin), 0.0);
    // And it costs start-up cycles.
    EXPECT_GE(r_slow.startup.core.cycles,
              r_fast.startup.core.cycles);
}
