/**
 * @file
 * Pipeline tests against hand-built images and a stub OS model:
 * in-order commit, dependence stalls, mispredict squash/recovery,
 * serializing instructions, ICOUNT fairness, TLB traps.
 */

#include <gtest/gtest.h>

#include <memory>

#include "core/pipeline.h"
#include "isa/codegen.h"
#include "kernel/layout.h"
#include "vm/physmem.h"

using namespace smtos;

namespace {

/** Minimal OS: identity translation, counts callbacks. */
class StubOs : public OsCallbacks
{
  public:
    explicit StubOs(Tlb &itlb, Tlb &dtlb) : itlb_(itlb), dtlb_(dtlb) {}

    void
    dtlbMiss(ThreadState &t, Addr vaddr) override
    {
        ++dtlbMisses;
        // Instant software refill without handler code.
        AccessInfo who{t.id, Mode::Pal, 0};
        dtlb_.insert(pageOf(vaddr), t.space->asn(), pageOf(vaddr),
                     who);
    }

    void
    itlbMiss(ThreadState &t, Addr pc) override
    {
        ++itlbMisses;
        AccessInfo who{t.id, Mode::Pal, 0};
        itlb_.insert(pageOf(pc), t.space->asn(), pageOf(pc), who);
    }

    void
    serializing(Context &ctx, ThreadState &t,
                const Instr &in) override
    {
        (void)ctx;
        ++serializations;
        lastMagic = in.magic;
        lastSyscall = in.payload;
        t.cursor.setStuck(false);
        if (in.op != Op::Halt) {
            t.cursor.stepSequential(images);
        } else {
            ++halts;
            t.cursor.setStuck(true);
        }
    }

    void
    interrupt(Context &ctx, ThreadState &t,
              std::uint16_t vector) override
    {
        (void)ctx;
        (void)t;
        (void)vector;
        ++interrupts;
    }

    void cycleHook(Cycle) override {}

    Addr
    magicTranslate(ThreadState &, Addr vaddr, bool) override
    {
        return vaddr;
    }

    ImageSet images;
    Tlb &itlb_;
    Tlb &dtlb_;
    int dtlbMisses = 0;
    int itlbMisses = 0;
    int serializations = 0;
    int interrupts = 0;
    int halts = 0;
    MagicOp lastMagic = MagicOp::None;
    std::uint16_t lastSyscall = 0;
};

/** Fixture wiring a 2-context SMT with identity-mapped memory. */
class PipelineTest : public testing::Test
{
  protected:
    PipelineTest()
        : user(std::make_unique<CodeImage>("u", userTextBase)),
          kernel(std::make_unique<CodeImage>("k", kernelBase)),
          gu(*user, CodeProfile{}, 1), gk(*kernel, CodeProfile{}, 2)
    {
    }

    /** Call after building images. */
    void
    wire(int contexts = 2)
    {
        if (!kernel->finalized())
            kernel->finalize();
        CoreParams cp;
        cp.numContexts = contexts;
        hier = std::make_unique<Hierarchy>(HierarchyParams{});
        pipe = std::make_unique<Pipeline>(cp, *hier, kernel.get());
        os = std::make_unique<StubOs>(pipe->itlb(), pipe->dtlb());
        os->images = ImageSet{user.get(), kernel.get()};
        pipe->setOs(os.get());
        mem = std::make_unique<PhysMem>();
        space = std::make_unique<AddrSpace>(1, *mem);
        space->setAsn(1);
        // Identity-map plenty of pages around the text and data.
        for (Addr vpn = pageOf(userTextBase);
             vpn < pageOf(userTextBase) + 64; ++vpn)
            space->mapShared(vpn, vpn);
    }

    ThreadState &
    makeThread(int entry, ThreadId id = 0)
    {
        auto t = std::make_unique<ThreadState>();
        t->id = id;
        t->space = space.get();
        t->userImage = user.get();
        t->cursor.reset(entry, false, 7 + id);
        t->regions[0] = MemRegion{0x20000000, 1 << 16};
        t->regions[1] = MemRegion{0x30000000, 1 << 16};
        t->regions[2] = MemRegion{0x70000000, 1 << 16};
        threads.push_back(std::move(t));
        return *threads.back();
    }

    std::unique_ptr<CodeImage> user;
    std::unique_ptr<CodeImage> kernel;
    CodeGen gu, gk;
    std::unique_ptr<Hierarchy> hier;
    std::unique_ptr<Pipeline> pipe;
    std::unique_ptr<StubOs> os;
    std::unique_ptr<PhysMem> mem;
    std::unique_ptr<AddrSpace> space;
    std::vector<std::unique_ptr<ThreadState>> threads;
};

} // namespace

TEST_F(PipelineTest, RunsStraightLineCode)
{
    const int f = gu.genFunction("main", 4, {}, -1, true);
    user->finalize();
    wire();
    pipe->bindThread(0, &makeThread(f));
    pipe->runInstrs(5000);
    EXPECT_GE(pipe->stats().totalRetired(), 5000u);
    EXPECT_GT(pipe->stats().ipc(), 0.3);
}

TEST_F(PipelineTest, TwoThreadsBeatOne)
{
    const int f = gu.genFunction("main", 6, {}, -1, true);
    user->finalize();
    wire(2);
    pipe->bindThread(0, &makeThread(f, 0));
    pipe->runInstrs(4000);
    const Cycle c1 = pipe->now();

    // Fresh pipeline with both contexts busy.
    wire(2);
    pipe->bindThread(0, &makeThread(f, 1));
    pipe->bindThread(1, &makeThread(f, 2));
    pipe->runInstrs(8000);
    const Cycle c2 = pipe->now();
    // Two threads retire 2x the work in well under 2x the cycles.
    EXPECT_LT(static_cast<double>(c2),
              1.8 * static_cast<double>(c1));
}

TEST_F(PipelineTest, SerializingInstructionReachesOs)
{
    user->beginFunction("main", -1);
    user->beginBlock();
    user->emit(gu.makeAlu());
    user->emit(gu.makeSyscall(9));
    user->emit(gu.makeAlu());
    user->emit(gu.makeJump(0));
    user->finalize();
    wire();
    pipe->bindThread(0, &makeThread(0));
    pipe->runInstrs(400);
    EXPECT_GT(os->serializations, 0);
    EXPECT_EQ(os->lastSyscall, 9);
}

TEST_F(PipelineTest, MagicPayloadDelivered)
{
    user->beginFunction("main", -1);
    user->beginBlock();
    user->emit(gu.makeMagic(MagicOp::NetSend, 5));
    user->emit(gu.makeAlu());
    user->emit(gu.makeJump(0));
    user->finalize();
    wire();
    pipe->bindThread(0, &makeThread(0));
    pipe->runInstrs(100);
    EXPECT_EQ(os->lastMagic, MagicOp::NetSend);
}

TEST_F(PipelineTest, HaltStopsThread)
{
    user->beginFunction("main", -1);
    user->beginBlock();
    user->emit(gu.makeAlu());
    Instr h;
    h.op = Op::Halt;
    user->emit(h);
    user->emit(gu.makeAlu());
    user->emit(gu.makeReturn());
    const int f2 = gu.genFunction("spin", 3, {}, -1, true);
    user->finalize();
    wire();
    pipe->bindThread(0, &makeThread(0, 0));
    pipe->bindThread(1, &makeThread(f2, 1)); // keeps retiring
    pipe->runInstrs(500);
    EXPECT_EQ(os->halts, 1);
}

TEST_F(PipelineTest, MispredictsAreSquashedAndRecovered)
{
    // A 50/50 branch is unpredictable: wrong paths must be fetched
    // and squashed, and retired count must stay exact.
    user->beginFunction("main", -1);
    user->beginBlock();
    user->emit(gu.makeAlu());
    user->emit(gu.makeCond(2, 0.5));
    user->beginBlock();
    user->emit(gu.makeAlu());
    user->emit(gu.makeAlu());
    user->beginBlock();
    user->emit(gu.makeAlu());
    user->emit(gu.makeJump(0));
    user->finalize();
    wire();
    pipe->bindThread(0, &makeThread(0));
    pipe->runInstrs(20000);
    EXPECT_GT(pipe->stats().squashed, 100u);
    EXPECT_GT(pipe->stats().fetchedWrongPath, 100u);
    EXPECT_GT(pipe->stats().condMispred[0], 50u);
}

TEST_F(PipelineTest, PerfectlyBiasedBranchBarelyMispredicts)
{
    user->beginFunction("main", -1);
    user->beginBlock();
    user->emit(gu.makeAlu());
    user->emit(gu.makeCond(2, 1.0)); // always taken
    user->beginBlock();
    user->emit(gu.makeAlu());
    user->beginBlock();
    user->emit(gu.makeAlu());
    user->emit(gu.makeJump(0));
    user->finalize();
    wire();
    pipe->bindThread(0, &makeThread(0));
    pipe->runInstrs(20000);
    const auto &s = pipe->stats();
    EXPECT_LT(static_cast<double>(s.condMispred[0]) /
                  static_cast<double>(s.condRetired[0]),
              0.02);
}

TEST_F(PipelineTest, DtlbMissTrapsOnce)
{
    user->beginFunction("main", -1);
    user->beginBlock();
    // One load, repeatedly, to a fixed stack page (unmapped at start).
    user->emit(gu.makeLoad(MemPattern::StackFrame, 2, 0, 8, false));
    user->emit(gu.makeAlu());
    user->emit(gu.makeJump(0));
    user->finalize();
    wire();
    ThreadState &t = makeThread(0);
    // Map the stack region pages so the stub can refill them.
    for (Addr vpn = pageOf(0x70000000);
         vpn <= pageOf(0x70000000 + (1 << 16)); ++vpn)
        space->mapShared(vpn, vpn);
    pipe->bindThread(0, &t);
    pipe->runInstrs(5000);
    // The stack region spans 16 pages: a handful of traps, then all
    // translations are cached in the DTLB.
    EXPECT_GT(os->dtlbMisses, 0);
    EXPECT_LE(os->dtlbMisses, 20);
}

TEST_F(PipelineTest, ItlbMissOnFirstFetch)
{
    const int f = gu.genFunction("main", 3, {}, -1, true);
    user->finalize();
    wire();
    pipe->bindThread(0, &makeThread(f));
    pipe->runInstrs(1000);
    EXPECT_GT(os->itlbMisses, 0);
}

TEST_F(PipelineTest, InterruptDeliveredAfterDrain)
{
    const int f = gu.genFunction("main", 4, {}, -1, true);
    user->finalize();
    wire();
    pipe->bindThread(0, &makeThread(f));
    pipe->runInstrs(200);
    pipe->raiseInterrupt(0, 3);
    pipe->runInstrs(500);
    EXPECT_EQ(os->interrupts, 1);
}

TEST_F(PipelineTest, RetiredInstructionCountsExact)
{
    const int f = gu.genFunction("main", 5, {}, -1, true);
    user->finalize();
    wire();
    pipe->bindThread(0, &makeThread(f));
    pipe->runInstrs(3000);
    const auto &s = pipe->stats();
    std::uint64_t mix_total = 0;
    for (int c = 0; c < 2; ++c)
        for (int k = 0; k < numMixClasses; ++k)
            mix_total += s.mix[c][k];
    EXPECT_EQ(mix_total, s.totalRetired());
}

TEST_F(PipelineTest, FetchableContextsSampled)
{
    const int f = gu.genFunction("main", 4, {}, -1, true);
    user->finalize();
    wire(2);
    pipe->bindThread(0, &makeThread(f, 0));
    pipe->bindThread(1, &makeThread(f, 1));
    pipe->runInstrs(2000);
    EXPECT_GT(pipe->stats().fetchableContexts.mean(), 0.5);
    EXPECT_LE(pipe->stats().fetchableContexts.mean(), 2.0);
}

TEST_F(PipelineTest, IdleThreadAccountedAsIdle)
{
    const int f = gu.genFunction("main", 4, {}, -1, true);
    user->finalize();
    wire();
    ThreadState &t = makeThread(f);
    t.isIdleThread = true;
    t.userImage = user.get();
    pipe->bindThread(0, &t);
    pipe->runInstrs(500);
    EXPECT_EQ(pipe->stats()
                  .retired[static_cast<int>(Mode::User)],
              pipe->stats().totalRetired());
    // User-mode code of an idle thread still counts as user; only
    // privileged-mode execution counts as Idle. Run kernel code:
    SUCCEED();
}

TEST_F(PipelineTest, SharedIqThrottlesFetch)
{
    // Long dependence chains through IntMul keep the queue full;
    // the pipeline must still make forward progress.
    user->beginFunction("main", -1);
    user->beginBlock();
    for (int i = 0; i < 8; ++i) {
        Instr in;
        in.op = Op::IntMul;
        in.srcA = 1;
        in.srcB = 1;
        in.dest = 1; // serial chain
        user->emit(in);
    }
    user->emit(gu.makeJump(0));
    user->finalize();
    wire();
    pipe->bindThread(0, &makeThread(0));
    pipe->runInstrs(2000);
    // Serial 8-cycle multiplies: IPC must be near 1/8.
    EXPECT_LT(pipe->stats().ipc(), 0.5);
    EXPECT_GT(pipe->stats().ipc(), 0.05);
}

TEST_F(PipelineTest, IndependentOpsReachHighIpc)
{
    user->beginFunction("main", -1);
    user->beginBlock();
    for (int i = 0; i < 12; ++i) {
        Instr in;
        in.op = Op::IntAlu;
        in.srcA = static_cast<std::uint8_t>(1 + i);
        in.dest = static_cast<std::uint8_t>(1 + i);
        user->emit(in);
    }
    user->emit(gu.makeJump(0));
    user->finalize();
    wire();
    pipe->bindThread(0, &makeThread(0));
    pipe->runInstrs(20000);
    EXPECT_GT(pipe->stats().ipc(), 2.0);
}
