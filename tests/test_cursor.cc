/**
 * @file
 * Cursor tests: CFG walking, branch semantics, calls/returns,
 * checkpoint/restore, fault stacks, retry replay, address generation.
 */

#include <gtest/gtest.h>

#include <set>

#include "isa/codegen.h"
#include "isa/cursor.h"
#include "kernel/layout.h"

using namespace smtos;

namespace {

/** A tiny two-image fixture: user image + "kernel" image. */
class CursorTest : public testing::Test
{
  protected:
    CursorTest()
        : user_("user", userTextBase), kernel_("kern", kernelBase),
          gu_(user_, CodeProfile{}, 1), gk_(kernel_, CodeProfile{}, 2)
    {
    }

    ImageSet
    is() const
    {
        return ImageSet{&user_, &kernel_};
    }

    CodeImage user_;
    CodeImage kernel_;
    CodeGen gu_;
    CodeGen gk_;
    ThreadIprs iprs_;
    MemRegion regions_[maxRegions] = {};
};

} // namespace

TEST_F(CursorTest, SequentialWalkAndFallthrough)
{
    user_.beginFunction("main", -1);
    user_.beginBlock();
    user_.emit(gu_.makeAlu());
    user_.emit(gu_.makeAlu());
    user_.beginBlock();
    user_.emit(gu_.makeAlu());
    user_.emit(gu_.makeReturn());
    user_.finalize();

    Cursor c;
    c.reset(0, false, 1);
    EXPECT_EQ(c.currentPc(is()), userTextBase);
    c.stepSequential(is());
    EXPECT_EQ(c.currentPc(is()), userTextBase + 4);
    c.stepSequential(is()); // falls into block 1
    EXPECT_EQ(c.top().block, 1);
    EXPECT_EQ(c.top().instrIdx, 0);
}

TEST_F(CursorTest, ModeFollowsFrames)
{
    user_.beginFunction("main", -1);
    user_.beginBlock();
    user_.emit(gu_.makeReturn());
    user_.finalize();
    kernel_.beginFunction("svc", 1);
    kernel_.beginBlock();
    kernel_.emit(gk_.makeReturn());
    kernel_.beginFunction("pal", 2, true);
    kernel_.beginBlock();
    kernel_.emit(gk_.makePalReturn());
    kernel_.finalize();

    Cursor c;
    c.reset(0, false, 1);
    EXPECT_EQ(c.mode(is()), Mode::User);
    c.push(0, true);
    EXPECT_EQ(c.mode(is()), Mode::Kernel);
    c.push(1, true);
    EXPECT_EQ(c.mode(is()), Mode::Pal);
    c.pop();
    c.pop();
    EXPECT_EQ(c.mode(is()), Mode::User);
}

TEST_F(CursorTest, LoopBranchCountsTrips)
{
    user_.beginFunction("main", -1);
    user_.beginBlock();
    user_.emit(gu_.makeAlu());
    user_.emit(gu_.makeLoop(0, 3, 0)); // self-loop, 3 trips
    user_.beginBlock();
    user_.emit(gu_.makeReturn());
    user_.finalize();

    Cursor c;
    c.reset(0, false, 1);
    int taken = 0;
    for (int iter = 0; iter < 3; ++iter) {
        c.stepSequential(is()); // past the alu
        BranchPreview bp = c.previewBranch(is(), iprs_);
        taken += bp.taken;
        c.followBranch(is(), bp, bp.taken);
        if (!bp.taken)
            break;
    }
    EXPECT_EQ(taken, 2); // taken twice, falls out on the 3rd
    EXPECT_EQ(c.top().block, 1);
}

TEST_F(CursorTest, DynamicTripFromIprs)
{
    user_.beginFunction("main", -1);
    user_.beginBlock();
    user_.emit(gu_.makeAlu());
    user_.emit(gu_.makeLoop(0, dynamicTrip, 0, 1)); // serviceTrip
    user_.beginBlock();
    user_.emit(gu_.makeReturn());
    user_.finalize();

    iprs_.serviceTrip = 5;
    Cursor c;
    c.reset(0, false, 1);
    int executions = 0;
    while (true) {
        ++executions;
        c.stepSequential(is());
        BranchPreview bp = c.previewBranch(is(), iprs_);
        c.followBranch(is(), bp, bp.taken);
        if (!bp.taken)
            break;
    }
    EXPECT_EQ(executions, 5);
}

TEST_F(CursorTest, CallPushesAndReturnResumes)
{
    kernel_.finalize();
    user_.beginFunction("leaf", -1); // func 0
    user_.beginBlock();
    user_.emit(gu_.makeAlu());
    user_.emit(gu_.makeReturn());
    user_.beginFunction("main", -1); // func 1
    user_.beginBlock();
    user_.emit(gu_.makeCall(0));
    user_.beginBlock();
    user_.emit(gu_.makeAlu());
    user_.emit(gu_.makeReturn());
    user_.finalize();

    Cursor c;
    c.reset(1, false, 1);
    BranchPreview call = c.previewBranch(is(), iprs_);
    EXPECT_EQ(call.kind, BranchPreview::Kind::Call);
    EXPECT_EQ(call.targetPc, userTextBase); // leaf entry
    c.followBranch(is(), call, true);
    EXPECT_EQ(c.depth(), 2);
    EXPECT_EQ(c.top().func, 0);
    // Return address is main's next instruction (block 1).
    const Addr ret_pc = c.parentPc(is());
    c.stepSequential(is()); // leaf's alu
    BranchPreview ret = c.previewBranch(is(), iprs_);
    EXPECT_EQ(ret.kind, BranchPreview::Kind::Ret);
    EXPECT_EQ(ret.targetPc, ret_pc);
    c.followBranch(is(), ret, true);
    EXPECT_EQ(c.depth(), 1);
    EXPECT_EQ(c.currentPc(is()), ret_pc);
}

TEST_F(CursorTest, WrongPathReturnUnderflowSticks)
{
    kernel_.finalize();
    user_.beginFunction("main", -1);
    user_.beginBlock();
    user_.emit(gu_.makeReturn());
    user_.finalize();

    Cursor c;
    c.reset(0, false, 1);
    c.setWrongPath(true);
    BranchPreview bp = c.previewBranch(is(), iprs_);
    c.followBranch(is(), bp, true);
    EXPECT_TRUE(c.stuck());
}

TEST_F(CursorTest, CheckpointRestoreIsExact)
{
    kernel_.finalize();
    user_.beginFunction("main", -1);
    for (int i = 0; i < 4; ++i) {
        user_.beginBlock();
        user_.emit(gu_.makeCond(0, 0.5)); // rng-consuming branch
    }
    user_.beginBlock();
    user_.emit(gu_.makeReturn());
    user_.finalize();

    Cursor c;
    c.reset(0, false, 99);
    Cursor cp = c; // checkpoint
    BranchPreview b1 = c.previewBranch(is(), iprs_);
    // Restore and re-preview: identical stochastic outcome.
    c = cp;
    BranchPreview b2 = c.previewBranch(is(), iprs_);
    EXPECT_EQ(b1.taken, b2.taken);
}

TEST_F(CursorTest, FaultStackNests)
{
    Cursor c;
    FaultRec a;
    a.vpn = 1;
    FaultRec b;
    b.vpn = 2;
    c.pushFault(a);
    c.pushFault(b);
    EXPECT_EQ(c.topFault().vpn, 2u);
    EXPECT_EQ(c.popFault().vpn, 2u);
    EXPECT_EQ(c.popFault().vpn, 1u);
    EXPECT_FALSE(c.hasFault());
}

TEST_F(CursorTest, FaultStackRewindsWithCheckpoint)
{
    Cursor c;
    FaultRec a;
    a.vpn = 7;
    Cursor cp = c;
    c.pushFault(a);
    EXPECT_TRUE(c.hasFault());
    c = cp; // squash restores the pre-fault state
    EXPECT_FALSE(c.hasFault());
}

TEST_F(CursorTest, RetryVaddrConsumedOnceAtDepth)
{
    Cursor c;
    c.reset(0, false, 1);
    c.setRetryVaddr(0xdead0);
    Addr v = 0;
    EXPECT_TRUE(c.takeRetryVaddr(v));
    EXPECT_EQ(v, 0xdead0u);
    EXPECT_FALSE(c.takeRetryVaddr(v)); // consumed
}

TEST_F(CursorTest, RetryVaddrIgnoredAtDifferentDepth)
{
    Cursor c;
    c.reset(0, false, 1);
    c.setRetryVaddr(0xdead0);
    c.push(0, true); // handler frame on top
    Addr v = 0;
    EXPECT_FALSE(c.takeRetryVaddr(v)); // depth differs
    c.pop();
    EXPECT_TRUE(c.takeRetryVaddr(v));
}

TEST_F(CursorTest, PteWalkAddressComesFromFaultTop)
{
    Cursor c;
    c.reset(0, false, 1);
    FaultRec r;
    r.pteAddr = 0x12340;
    c.pushFault(r);
    Instr in;
    in.op = Op::LoadPhys;
    in.pattern = MemPattern::PteWalk;
    EXPECT_EQ(c.memAddress(in, regions_, iprs_), 0x12340u);
}

TEST_F(CursorTest, FrameTouchWalksFault)
{
    Cursor c;
    c.reset(0, false, 1);
    FaultRec r;
    r.frame = 5;
    c.pushFault(r);
    Instr in;
    in.op = Op::StorePhys;
    in.pattern = MemPattern::FrameTouch;
    in.stride = 64;
    EXPECT_EQ(c.memAddress(in, regions_, iprs_), 5u * 4096u);
}

TEST_F(CursorTest, CopyPatternsTrackLoopCounter)
{
    kernel_.finalize();
    user_.beginFunction("main", -1);
    user_.beginBlock();
    Instr ld = gu_.makeLoad(MemPattern::CopySrc, 0, 0, 64, true);
    user_.emit(ld);
    user_.emit(gu_.makeLoop(0, 4, 0));
    user_.beginBlock();
    user_.emit(gu_.makeReturn());
    user_.finalize();

    iprs_.copySrc = 0x100000;
    Cursor c;
    c.reset(0, false, 1);
    std::vector<Addr> addrs;
    for (int i = 0; i < 4; ++i) {
        addrs.push_back(
            c.memAddress(c.currentInstr(is()), regions_, iprs_));
        c.stepSequential(is());
        BranchPreview bp = c.previewBranch(is(), iprs_);
        c.followBranch(is(), bp, bp.taken);
        if (!bp.taken)
            break;
    }
    ASSERT_EQ(addrs.size(), 4u);
    EXPECT_EQ(addrs[0], 0x100000u);
    EXPECT_EQ(addrs[1], 0x100040u);
    EXPECT_EQ(addrs[3], 0x1000c0u);
}

TEST_F(CursorTest, SeqStreamStaysInRegion)
{
    Cursor c;
    c.reset(0, false, 1);
    regions_[1] = MemRegion{0x30000000, 1 << 20};
    Instr in;
    in.op = Op::Load;
    in.pattern = MemPattern::SeqStream;
    in.region = 1;
    in.stride = 64;
    for (int i = 0; i < 10000; ++i) {
        Addr a = c.memAddress(in, regions_, iprs_);
        ASSERT_GE(a, 0x30000000u);
        ASSERT_LT(a, 0x30000000u + (1 << 20));
    }
}

TEST_F(CursorTest, RandomWindowHasLocality)
{
    Cursor c;
    c.reset(0, false, 1);
    regions_[0] = MemRegion{0x20000000, 8 << 20};
    Instr in;
    in.op = Op::Load;
    in.pattern = MemPattern::RandomInRegion;
    in.region = 0;
    in.stride = 32;
    // Successive addresses must fall within a small window, not
    // spread across the whole 8MB region.
    std::set<Addr> pages;
    for (int i = 0; i < 1000; ++i)
        pages.insert(pageOf(c.memAddress(in, regions_, iprs_)));
    EXPECT_LT(pages.size(), 16u);
}

TEST_F(CursorTest, TriviallyCopyable)
{
    EXPECT_TRUE(std::is_trivially_copyable_v<Cursor>);
}

TEST_F(CursorTest, IndirectTargetsWithinFan)
{
    kernel_.finalize();
    user_.beginFunction("main", -1);
    user_.beginBlock();
    Instr ij;
    ij.op = Op::IndirectJump;
    ij.targetBlock = 1;
    ij.indirectFan = 3;
    user_.emit(ij);
    user_.beginBlock();
    user_.emit(gu_.makeAlu());
    user_.beginBlock();
    user_.emit(gu_.makeAlu());
    user_.beginBlock();
    user_.emit(gu_.makeAlu());
    user_.emit(gu_.makeReturn());
    user_.finalize();

    Cursor c;
    c.reset(0, false, 5);
    for (int i = 0; i < 50; ++i) {
        Cursor copy = c;
        BranchPreview bp = copy.previewBranch(is(), iprs_);
        EXPECT_GE(bp.targetBlock, 1);
        EXPECT_LE(bp.targetBlock, 3);
    }
}
