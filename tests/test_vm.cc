/**
 * @file
 * Virtual memory tests: frame allocation, page tables, and the
 * ASN-tagged shared TLB.
 */

#include <gtest/gtest.h>

#include "vm/addrspace.h"
#include "vm/physmem.h"
#include "vm/tlb.h"

using namespace smtos;

namespace {

AccessInfo
user(ThreadId t)
{
    return AccessInfo{t, Mode::User, 0};
}

} // namespace

TEST(PhysMem, AllocationAboveReservation)
{
    PhysMem pm(1 << 20, 64 << 10); // 256 frames, 16 reserved
    EXPECT_EQ(pm.totalFrames(), 256u);
    EXPECT_EQ(pm.firstAllocatable(), 16u);
    Frame f = pm.allocFrame();
    EXPECT_GE(f, 16u);
}

TEST(PhysMem, FreeListReuse)
{
    PhysMem pm(1 << 20, 64 << 10);
    Frame f = pm.allocFrame();
    pm.freeFrame(f);
    EXPECT_EQ(pm.allocFrame(), f);
}

TEST(PhysMem, CountsAllocated)
{
    PhysMem pm(1 << 20, 64 << 10);
    const auto before = pm.freeFrames();
    Frame f = pm.allocFrame();
    pm.allocFrame();
    EXPECT_EQ(pm.allocated(), 2u);
    EXPECT_EQ(pm.freeFrames(), before - 2);
    pm.freeFrame(f);
    EXPECT_EQ(pm.allocated(), 1u);
}

TEST(PhysMem, ExhaustionIsFatal)
{
    PhysMem pm(128 << 10, 64 << 10); // 16 allocatable frames
    for (int i = 0; i < 16; ++i)
        pm.allocFrame();
    EXPECT_EXIT(pm.allocFrame(), testing::ExitedWithCode(1),
                "exhausted");
}

TEST(PhysMem, FrameAddr)
{
    EXPECT_EQ(PhysMem::frameAddr(3), 3u * 4096u);
}

TEST(AddrSpace, MapNewAndTranslate)
{
    PhysMem pm;
    AddrSpace as(1, pm);
    EXPECT_FALSE(as.mapped(100));
    Frame f = as.mapNew(100);
    EXPECT_TRUE(as.mapped(100));
    EXPECT_EQ(as.frameOf(100), f);
    EXPECT_EQ(as.residentPages(), 1u);
}

TEST(AddrSpace, SharedMapping)
{
    PhysMem pm;
    AddrSpace a(1, pm), b(2, pm);
    Frame f = a.mapNew(7);
    b.mapShared(7, f);
    EXPECT_EQ(b.frameOf(7), f);
}

TEST(AddrSpace, UnmapFreesWhenAsked)
{
    PhysMem pm;
    AddrSpace as(1, pm);
    as.mapNew(5);
    const auto allocated = pm.allocated();
    as.unmap(5, true);
    EXPECT_FALSE(as.mapped(5));
    EXPECT_EQ(pm.allocated(), allocated - 1);
}

TEST(AddrSpace, PtePhysAddrStable)
{
    PhysMem pm;
    AddrSpace as(1, pm);
    const Addr p1 = as.ptePhysAddr(100);
    const Addr p2 = as.ptePhysAddr(100);
    EXPECT_EQ(p1, p2);
    // Adjacent VPNs share a page-table page, 8 bytes apart.
    EXPECT_EQ(as.ptePhysAddr(101), p1 + 8);
    // A distant VPN lives in a different PT page.
    const Addr far = as.ptePhysAddr(100 + ptesPerPage);
    EXPECT_NE(pageOf(far), pageOf(p1));
}

TEST(AddrSpace, AsnAssignment)
{
    PhysMem pm;
    AddrSpace as(1, pm);
    EXPECT_EQ(as.asn(), -1);
    as.setAsn(7);
    EXPECT_EQ(as.asn(), 7);
}

TEST(Tlb, MissThenInsertThenHit)
{
    Tlb t("T", 8);
    EXPECT_LT(t.lookup(100, 1, user(1)), 0);
    t.insert(100, 1, 55, user(1));
    EXPECT_EQ(t.lookup(100, 1, user(1)), 55);
    EXPECT_EQ(t.stats().accesses[0], 2u);
    EXPECT_EQ(t.stats().misses[0], 1u);
}

TEST(Tlb, AsnMismatchMisses)
{
    Tlb t("T", 8);
    t.insert(100, 1, 55, user(1));
    EXPECT_LT(t.lookup(100, 2, user(1)), 0);
}

TEST(Tlb, GlobalEntryMatchesAnyAsn)
{
    Tlb t("T", 8);
    t.insert(100, 0, 55, user(1), true);
    EXPECT_EQ(t.lookup(100, 3, user(2)), 55);
    EXPECT_EQ(t.lookup(100, 9, user(3)), 55);
}

TEST(Tlb, DuplicateInsertIgnored)
{
    Tlb t("T", 2);
    t.insert(100, 1, 55, user(1));
    t.insert(100, 1, 77, user(2)); // already present: no-op
    EXPECT_EQ(t.lookup(100, 1, user(1)), 55);
    EXPECT_EQ(t.validEntries(), 1);
}

TEST(Tlb, RoundRobinEviction)
{
    Tlb t("T", 2);
    t.insert(1, 1, 10, user(1));
    t.insert(2, 1, 20, user(1));
    t.insert(3, 1, 30, user(1)); // evicts vpn 1
    EXPECT_LT(t.lookup(1, 1, user(1)), 0);
    EXPECT_EQ(t.lookup(2, 1, user(1)), 20);
    EXPECT_EQ(t.lookup(3, 1, user(1)), 30);
}

TEST(Tlb, EvictionClassifiedOnRemiss)
{
    Tlb t("T", 2);
    t.lookup(1, 1, user(1)); // compulsory
    t.insert(1, 1, 10, user(1));
    t.insert(2, 1, 20, user(2));
    t.insert(3, 1, 30, user(2)); // thread 2 evicts thread 1's vpn 1
    t.lookup(1, 1, user(1));     // interthread conflict
    EXPECT_EQ(t.stats().cause[0][static_cast<int>(
                  MissCause::Interthread)],
              1u);
}

TEST(Tlb, FlushAsnOnlyRemovesThatAsn)
{
    Tlb t("T", 8);
    t.insert(1, 1, 10, user(1));
    t.insert(2, 2, 20, user(2));
    t.insert(3, 0, 30, user(3), true); // global
    t.flushAsn(1);
    EXPECT_LT(t.lookup(1, 1, user(1)), 0);
    EXPECT_EQ(t.lookup(2, 2, user(2)), 20);
    EXPECT_EQ(t.lookup(3, 5, user(3)), 30); // global survives
}

TEST(Tlb, FlushAllClassifiedAsInvalidation)
{
    Tlb t("T", 8);
    t.insert(1, 1, 10, user(1));
    t.flushAll();
    EXPECT_EQ(t.validEntries(), 0);
    t.lookup(1, 1, user(1));
    EXPECT_EQ(t.stats().cause[0][static_cast<int>(
                  MissCause::OsInvalidation)],
              1u);
}

TEST(Tlb, FlushPageRemovesOneTranslation)
{
    Tlb t("T", 8);
    t.insert(1, 1, 10, user(1));
    t.insert(2, 1, 20, user(1));
    t.flushPage(1, 1);
    EXPECT_LT(t.lookup(1, 1, user(1)), 0);
    EXPECT_EQ(t.lookup(2, 1, user(1)), 20);
}

TEST(Tlb, KernelClassCounted)
{
    Tlb t("T", 8);
    AccessInfo k{1, Mode::Kernel, 0};
    t.lookup(9, 1, k);
    EXPECT_EQ(t.stats().accesses[1], 1u);
    EXPECT_EQ(t.stats().misses[1], 1u);
}

TEST(Tlb, MissRatePct)
{
    Tlb t("T", 8);
    t.lookup(1, 1, user(1));
    t.insert(1, 1, 10, user(1));
    t.lookup(1, 1, user(1));
    EXPECT_DOUBLE_EQ(t.missRatePct(), 50.0);
}

// Parameterized: capacity behavior across TLB sizes.
class TlbCapacity : public testing::TestWithParam<int>
{
};

TEST_P(TlbCapacity, WorkingSetWithinCapacityNeverRemisses)
{
    const int entries = GetParam();
    Tlb t("T", entries);
    for (int vpn = 0; vpn < entries; ++vpn) {
        t.lookup(vpn, 1, user(1));
        t.insert(vpn, 1, 100 + vpn, user(1));
    }
    const auto misses = t.stats().totalMisses();
    for (int pass = 0; pass < 3; ++pass)
        for (int vpn = 0; vpn < entries; ++vpn)
            EXPECT_GE(t.lookup(vpn, 1, user(1)), 0);
    EXPECT_EQ(t.stats().totalMisses(), misses);
}

INSTANTIATE_TEST_SUITE_P(Sizes, TlbCapacity,
                         testing::Values(4, 16, 64, 128));

TEST(Tlb, ConstructiveSharingTracked)
{
    Tlb t("T", 8);
    AccessInfo filler{1, Mode::Pal, 0};
    t.insert(5, 0, 50, filler, true); // global entry, kernel filler
    AccessInfo u2{2, Mode::User, 1};
    EXPECT_GE(t.lookup(5, 3, u2), 0);
    EXPECT_EQ(t.stats().avoided[0][1], 1u); // user saved by kernel
    // Second use by the same thread does not double count.
    t.lookup(5, 3, u2);
    EXPECT_EQ(t.stats().avoided[0][1], 1u);
}

TEST(Tlb, FillerDoesNotCountAsSharing)
{
    Tlb t("T", 8);
    AccessInfo who{4, Mode::User, 0};
    t.insert(9, 1, 90, who);
    t.lookup(9, 1, who);
    EXPECT_EQ(t.stats().avoided[0][0], 0u);
    EXPECT_EQ(t.stats().avoided[0][1], 0u);
}
