/**
 * @file
 * Fault-injection subsystem: deterministic schedules (same seed =>
 * byte-identical fault log and metrics), the no-fault bit-identity
 * guarantee, graceful degradation of the Apache workload under packet
 * loss and machine checks (verified against the co-simulation
 * oracle), backpressure accounting, the invariant auditor, and the
 * crash-diagnostics bundle.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "fault/auditor.h"
#include "fault/diag.h"
#include "fault/fault.h"
#include "harness/cosim.h"
#include "harness/env.h"
#include "harness/session.h"
#include "net/network.h"
#include "sim/config.h"
#include "sim/export.h"
#include "sim/metrics.h"
#include "sim/system.h"
#include "workload/apache.h"

namespace smtos {

/** White-box access used to plant a corruption the auditor must see. */
class KernelTestPeer
{
  public:
    static void
    corruptAcceptQueue(Kernel &k)
    {
        k.acceptQ_.push_back(9999);
    }
};

} // namespace smtos

using namespace smtos;

namespace {

MachineConfig
apacheConfig(std::uint64_t seed = 11)
{
    MachineConfig cfg = smtConfig();
    cfg.kernel.seed = seed;
    cfg.kernel.enableNetwork = true;
    return cfg;
}

struct ApacheRun
{
    std::string json;
    std::string faultLog;
    std::uint64_t requestsServed = 0;
    FaultCounters counters;
};

/** One Apache run, optionally under @p fp; exports metrics + log. */
ApacheRun
runApache(const FaultParams *fp, Cycle cycles,
          bool attach_zero_plan = false)
{
    MachineConfig cfg = apacheConfig();
    System sys(cfg);
    std::unique_ptr<FaultPlan> plan;
    if (fp)
        plan = std::make_unique<FaultPlan>(*fp);
    else if (attach_zero_plan)
        plan = std::make_unique<FaultPlan>(FaultParams{});
    if (plan)
        sys.attachFaults(plan.get());
    ApacheWorkload w = buildApache(ApacheParams{});
    installApache(sys.kernel(), w);
    sys.start();
    sys.runCycles(cycles);

    ApacheRun r;
    r.json = toJson(MetricsSnapshot::capture(sys));
    if (plan)
        r.faultLog = plan->logText();
    r.requestsServed = sys.kernel().requestsServed();
    r.counters = sys.kernel().faultCounters();
    return r;
}

} // namespace

TEST(FaultParams, ParseSpecString)
{
    const FaultParams p = FaultParams::fromString(
        "seed=42,loss=0.01,reorder=0.25,delay=5:20,nicdrop=0.5,"
        "mce=10000,mceretry=5,breakrecovery=1,conntable=64,"
        "backlog=8,audit=5000");
    EXPECT_EQ(p.seed, 42u);
    EXPECT_DOUBLE_EQ(p.lossPct, 0.01);
    EXPECT_DOUBLE_EQ(p.reorderPct, 0.25);
    EXPECT_EQ(p.delayMin, 5u);
    EXPECT_EQ(p.delayMax, 20u);
    EXPECT_DOUBLE_EQ(p.nicDropPct, 0.5);
    EXPECT_EQ(p.mcePeriod, 10000u);
    EXPECT_EQ(p.mceRetryLimit, 5);
    EXPECT_TRUE(p.mceBreakRecovery);
    EXPECT_EQ(p.connTableSize, 64);
    EXPECT_EQ(p.listenBacklog, 8);
    EXPECT_EQ(p.auditEvery, 5000u);
    EXPECT_TRUE(p.any());

    EXPECT_FALSE(FaultParams{}.any());
    EXPECT_FALSE(FaultParams::fromString("").any());
    // A single-value delay spec sets both bounds.
    const FaultParams d = FaultParams::fromString("delay=7");
    EXPECT_EQ(d.delayMin, 7u);
    EXPECT_EQ(d.delayMax, 7u);
}

TEST(FaultParams, EnvOverridesReadSmtosFaults)
{
    const EnvOverrides env = EnvOverrides::fromLookup(
        [](const char *name) -> const char * {
            return std::strcmp(name, "SMTOS_FAULTS") == 0
                       ? "loss=0.125,mce=4096"
                       : nullptr;
        });
    EXPECT_TRUE(env.hasFaults);
    EXPECT_DOUBLE_EQ(env.faults.lossPct, 0.125);
    EXPECT_EQ(env.faults.mcePeriod, 4096u);

    const EnvOverrides empty = EnvOverrides::fromLookup(
        [](const char *) -> const char * { return nullptr; });
    EXPECT_FALSE(empty.hasFaults);
    EXPECT_FALSE(empty.faults.any());
}

// The machine-check schedule is a pure function of (seed, period):
// two plans with the same params agree on every injection time and
// victim selector; a different seed actually changes the schedule.
TEST(FaultPlan, MceScheduleIsSeedDeterministic)
{
    FaultParams fp;
    fp.mcePeriod = 10000;
    auto schedule = [](const FaultParams &p) {
        FaultPlan plan(p);
        std::vector<std::uint64_t> picks;
        for (Cycle c = 0; c < 200000; ++c)
            if (plan.mceDue(c))
                picks.push_back(plan.takeMce(c));
        return picks;
    };
    const auto a = schedule(fp);
    const auto b = schedule(fp);
    EXPECT_FALSE(a.empty());
    EXPECT_EQ(a, b);
    fp.seed ^= 1;
    EXPECT_NE(a, schedule(fp));
}

// Two identically configured lossy/delaying/reordering links deliver
// the same packets in the same order and log the same faults.
TEST(NetworkFault, LinkPerturbationIsDeterministic)
{
    FaultParams fp;
    fp.lossPct = 0.2;
    fp.reorderPct = 0.2;
    fp.delayMin = 3;
    fp.delayMax = 40;

    auto run = [&fp]() {
        FaultPlan plan(fp);
        Network net;
        net.attachFaults(&plan);
        std::ostringstream os;
        for (Cycle now = 0; now < 400; ++now) {
            net.advance(now);
            // A burst per cycle so queues are non-empty when later
            // packets arrive and reordering has something to swap.
            for (int k = 0; k < 3; ++k) {
                Packet p;
                p.client = static_cast<int>((3 * now + k) % 7);
                p.bytes = 100 + static_cast<std::uint32_t>(now % 13);
                p.fileId = static_cast<int>(now % 5);
                net.clientSend(p);
                net.serverSend(p);
            }
            while (net.serverHasRx()) {
                const Packet rx = net.popServerRx();
                os << "s" << rx.client << ":" << rx.bytes << " ";
            }
            while (net.clientHasRx())
                os << "c" << net.popClientRx().client << " ";
        }
        os << "| " << plan.logText();
        return os.str();
    };
    const std::string a = run();
    EXPECT_EQ(a, run());
    EXPECT_NE(a.find("pkt_loss"), std::string::npos);
    EXPECT_NE(a.find("pkt_delay"), std::string::npos);
    EXPECT_NE(a.find("pkt_reorder"), std::string::npos);
}

// Same seed, same plan => byte-identical fault log and metric export
// on the full Apache workload.
TEST(FaultDeterminism, SameSeedIsByteIdentical)
{
    FaultParams fp;
    fp.lossPct = 0.02;
    fp.mcePeriod = 20000;
    const ApacheRun a = runApache(&fp, 120000);
    const ApacheRun b = runApache(&fp, 120000);
    EXPECT_GT(a.counters.pktLost, 0u);
    EXPECT_GT(a.counters.mceRaised, 0u);
    EXPECT_FALSE(a.faultLog.empty());
    EXPECT_EQ(a.faultLog, b.faultLog);
    EXPECT_EQ(a.json, b.json);
}

// An attached plan with every rate at zero must not perturb anything:
// the metric export is bit-identical to a run with no plan at all.
TEST(FaultDeterminism, ZeroRatePlanIsBitIdenticalToNoPlan)
{
    const ApacheRun none = runApache(nullptr, 1'200'000);
    const ApacheRun zero = runApache(nullptr, 1'200'000, true);
    EXPECT_EQ(none.json, zero.json);
    EXPECT_TRUE(zero.faultLog.empty());
    EXPECT_GT(none.requestsServed, 0u);
}

// The acceptance scenario: 1% packet loss plus periodic machine
// checks. The server keeps serving, the recovery paths leave the
// architectural stream exactly as the reference model expects, and
// the invariant auditor stays quiet.
TEST(FaultRecovery, ApacheSurvivesLossAndMceUnderCosim)
{
    MachineConfig cfg = apacheConfig();
    cfg.kernel.web.retryTimeout = 30000;
    System sys(cfg);

    FaultParams fp;
    fp.lossPct = 0.01;
    fp.mcePeriod = 25000;
    fp.auditEvery = 5000;
    FaultPlan plan(fp);
    sys.attachFaults(&plan);
    InvariantAuditor auditor(sys, fp.auditEvery);
    sys.kernel().setAuditor(&auditor);

    ApacheWorkload w = buildApache(ApacheParams{});
    installApache(sys.kernel(), w);
    Cosim cosim(sys.pipeline());
    sys.start();
    sys.runCycles(1'500'000);

    EXPECT_FALSE(cosim.diverged()) << cosim.report();
    EXPECT_GT(cosim.checked(), 50000u);
    EXPECT_GT(sys.kernel().requestsServed(), 0u);
    EXPECT_GT(auditor.checksRun(), 0u);
    const FaultCounters c = sys.kernel().faultCounters();
    EXPECT_GT(c.pktLost, 0u);
    EXPECT_GT(c.mceRaised, 0u);
}

// A deliberately broken machine-check recovery path (silent register
// corruption instead of the trap) must be caught by the oracle.
TEST(FaultRecovery, BrokenMceRecoveryIsCaughtByCosim)
{
    MachineConfig cfg = apacheConfig();
    System sys(cfg);

    FaultParams fp;
    fp.mcePeriod = 8000;
    fp.mceBreakRecovery = true;
    FaultPlan plan(fp);
    sys.attachFaults(&plan);

    ApacheWorkload w = buildApache(ApacheParams{});
    installApache(sys.kernel(), w);
    Cosim cosim(sys.pipeline());
    sys.start();
    sys.runCycles(200000);

    EXPECT_GT(plan.injected().mceRaised, 0u);
    EXPECT_TRUE(cosim.diverged())
        << "silent architectural corruption was not detected";
}

// Client timeout/retransmit keeps the workload progressing under
// heavy loss.
TEST(FaultRecovery, RetransmitsRecoverHeavyLoss)
{
    MachineConfig cfg = apacheConfig();
    cfg.kernel.web.retryTimeout = 20000;
    System sys(cfg);

    FaultParams fp;
    fp.lossPct = 0.15;
    FaultPlan plan(fp);
    sys.attachFaults(&plan);
    EXPECT_TRUE(sys.kernel().clients().recoveryEnabled());

    ApacheWorkload w = buildApache(ApacheParams{});
    installApache(sys.kernel(), w);
    sys.start();
    sys.runCycles(1'500'000);

    const FaultCounters c = sys.kernel().faultCounters();
    EXPECT_GT(c.pktLost, 0u);
    EXPECT_GT(c.retransmits, 0u);
    EXPECT_GT(sys.kernel().clients().responsesCompleted(), 0u);
    // First-try and retried completions land in separate histograms;
    // together they account for every completed response.
    const ClientPopulation &cl = sys.kernel().clients();
    EXPECT_EQ(cl.latency().totalSamples() +
                  cl.retriedLatency().totalSamples(),
              cl.responsesCompleted());
    EXPECT_GT(cl.retriedLatency().totalSamples(), 0u);
    EXPECT_EQ(cl.retriedLatency().totalSamples(),
              cl.retriedResponses());
}

// Connection-table and listen-queue exhaustion is explicit
// backpressure: counted, logged, and exported — not just a warning.
TEST(FaultBackpressure, ExhaustionDropsAreCountedAndExported)
{
    FaultParams fp;
    fp.connTableSize = 4;
    fp.listenBacklog = 1;
    const ApacheRun r = runApache(&fp, 1'500'000);
    EXPECT_GT(r.counters.synDrops + r.counters.backlogDrops, 0u);
    EXPECT_GT(r.requestsServed, 0u);
    EXPECT_NE(r.json.find("\"faults\":{"), std::string::npos);
    EXPECT_NE(r.json.find("\"syn_drops\":"), std::string::npos);
    EXPECT_NE(r.json.find("\"backlog_drops\":"), std::string::npos);
}

// The metric JSON always carries the fault block (zeros without a
// plan), so downstream tooling can rely on the schema.
TEST(FaultExport, JsonCarriesFaultBlockWithoutPlan)
{
    const ApacheRun r = runApache(nullptr, 60000);
    EXPECT_NE(r.json.find("\"faults\":{\"pkt_lost\":0"),
              std::string::npos)
        << r.json;
}

// The auditor passes on a healthy run and flags planted corruption.
TEST(InvariantAuditor, CleanRunPassesPlantedCorruptionFails)
{
    MachineConfig cfg = apacheConfig();
    System sys(cfg);
    ApacheWorkload w = buildApache(ApacheParams{});
    installApache(sys.kernel(), w);
    sys.start();
    sys.runCycles(60000);

    InvariantAuditor auditor(sys, 1000);
    EXPECT_EQ(auditor.checkNow(), "");

    KernelTestPeer::corruptAcceptQueue(sys.kernel());
    const std::string report = auditor.checkNow();
    EXPECT_NE(report, "");
    EXPECT_NE(report.find("accept"), std::string::npos) << report;
}

// The harness builds a plan from Session::Config::faults and reports its
// counters through the phase deltas.
TEST(FaultHarness, RunExperimentThreadsFaultParams)
{
    Session::Config spec;
    spec.workload.kind = WorkloadConfig::Kind::Apache;
    spec.phases.startupInstrs = 40000;
    spec.phases.measureInstrs = 120000;
    spec.faults.lossPct = 0.05;
    const RunResult r = Session(spec).run();
    EXPECT_GT(r.steady.faults.pktLost + r.startup.faults.pktLost, 0u);
}

// The crash-diagnostics bundle lands in SMTOS_DIAG_DIR with the
// reason, both state dumps, and the fault log.
TEST(DiagBundle, WritesBundleDirectory)
{
    namespace fs = std::filesystem;
    const fs::path dir =
        fs::temp_directory_path() / "smtos-diag-test";
    fs::remove_all(dir);
    diagSetDir(dir.string());

    MachineConfig cfg = apacheConfig();
    System sys(cfg);
    FaultParams fp;
    fp.lossPct = 0.05;
    FaultPlan plan(fp);
    sys.attachFaults(&plan);
    ApacheWorkload w = buildApache(ApacheParams{});
    installApache(sys.kernel(), w);
    sys.start();
    sys.runCycles(60000);

    diagArm(&sys, &plan);
    const std::string written = diagWriteBundle("unit-test crash");
    diagArm(nullptr, nullptr);
    diagSetDir("");

    EXPECT_EQ(written, dir.string());
    EXPECT_TRUE(fs::exists(dir / "crash.txt"));
    EXPECT_TRUE(fs::exists(dir / "contexts.txt"));
    EXPECT_TRUE(fs::exists(dir / "faultlog.txt"));
    EXPECT_TRUE(fs::exists(dir / "ring.txt"));

    std::ifstream crash(dir / "crash.txt");
    std::string line;
    std::getline(crash, line);
    EXPECT_EQ(line, "unit-test crash");

    std::ifstream ctxs(dir / "contexts.txt");
    std::stringstream ss;
    ss << ctxs.rdbuf();
    EXPECT_NE(ss.str().find("ctx"), std::string::npos);
    fs::remove_all(dir);
}

// Disarmed, the bundle writer is inert.
TEST(DiagBundle, DisarmedWritesNothing)
{
    EXPECT_EQ(diagWriteBundle("nobody home"), "");
}
