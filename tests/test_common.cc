/**
 * @file
 * Unit tests for the common substrate: rng, stats, tables, types.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"
#include "common/types.h"

using namespace smtos;

TEST(Rng, DeterministicPerSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_EQ(same, 0);
}

TEST(Rng, ZeroSeedIsUsable)
{
    Rng a(0);
    EXPECT_NE(a.next(), 0u);
}

TEST(Rng, BelowStaysInRange)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, RangeInclusive)
{
    Rng r(9);
    bool lo = false, hi = false;
    for (int i = 0; i < 2000; ++i) {
        auto v = r.range(3, 5);
        EXPECT_GE(v, 3);
        EXPECT_LE(v, 5);
        lo |= (v == 3);
        hi |= (v == 5);
    }
    EXPECT_TRUE(lo);
    EXPECT_TRUE(hi);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(11);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceRate)
{
    Rng r(13);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        hits += r.chance(0.3) ? 1 : 0;
    EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, MixHashIsPure)
{
    EXPECT_EQ(mixHash(123, 456), mixHash(123, 456));
    EXPECT_NE(mixHash(123, 456), mixHash(123, 457));
}

TEST(Stats, PctAndRatioGuardZero)
{
    EXPECT_EQ(pct(5, 0), 0.0);
    EXPECT_EQ(ratio(5, 0), 0.0);
    EXPECT_DOUBLE_EQ(pct(1, 4), 25.0);
    EXPECT_DOUBLE_EQ(ratio(1, 4), 0.25);
}

TEST(Sampler, Basics)
{
    Sampler s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    s.sample(2);
    s.sample(4);
    s.sample(6);
    EXPECT_EQ(s.count(), 3u);
    EXPECT_DOUBLE_EQ(s.mean(), 4.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 6.0);
}

TEST(Sampler, Reset)
{
    Sampler s;
    s.sample(10);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.sum(), 0.0);
}

TEST(Sampler, FromSumCount)
{
    Sampler s = Sampler::fromSumCount(30.0, 10);
    EXPECT_DOUBLE_EQ(s.mean(), 3.0);
}

TEST(Histogram, BucketsAndClamping)
{
    Histogram h(0, 100, 10);
    h.sample(5);
    h.sample(15);
    h.sample(-50);  // clamps into bucket 0
    h.sample(1000); // clamps into the last bucket
    EXPECT_EQ(h.totalSamples(), 4u);
    EXPECT_EQ(h.bucketCount(0), 2u);
    EXPECT_EQ(h.bucketCount(1), 1u);
    EXPECT_EQ(h.bucketCount(9), 1u);
}

TEST(Histogram, BucketLowerBounds)
{
    Histogram h(0, 100, 10);
    EXPECT_EQ(h.bucketLo(0), 0);
    EXPECT_EQ(h.bucketLo(5), 50);
}

TEST(Histogram, WeightedMean)
{
    Histogram h(0, 10, 10);
    h.sample(2, 3);
    h.sample(8, 1);
    EXPECT_DOUBLE_EQ(h.mean(), (2.0 * 3 + 8.0) / 4.0);
}

TEST(Histogram, QuantilesOfUniformSamples)
{
    Histogram h(0, 100, 10);
    for (int v = 0; v < 100; ++v)
        h.sample(v);
    // rank = ceil(q*n), value interpolated at (rank - cum - 0.5)/n
    // inside the owning bucket.
    EXPECT_DOUBLE_EQ(h.p50(), 49.5);
    EXPECT_DOUBLE_EQ(h.p95(), 94.5);
    EXPECT_DOUBLE_EQ(h.p99(), 98.5);
    EXPECT_LE(h.p50(), h.p95());
    EXPECT_LE(h.p95(), h.p99());
}

TEST(Histogram, P999OfUniformSamples)
{
    // p999 needs at least ~1000 samples to separate from p99.
    Histogram h(0, 1000, 10);
    for (int v = 0; v < 1000; ++v)
        h.sample(v);
    EXPECT_DOUBLE_EQ(h.p50(), 499.5);
    EXPECT_DOUBLE_EQ(h.p99(), 989.5);
    EXPECT_DOUBLE_EQ(h.p999(), 998.5);
    EXPECT_LE(h.p99(), h.p999());
    EXPECT_LE(h.p999(), 1000.0);
}

TEST(Histogram, P999EmptyAndPointMass)
{
    Histogram e(0, 100, 10);
    EXPECT_DOUBLE_EQ(e.p999(), 0.0);

    Histogram h(0, 10, 10);
    h.sample(7, 2000); // all weight in bucket [7, 8)
    EXPECT_GE(h.p999(), 7.0);
    EXPECT_LT(h.p999(), 8.0);
}

TEST(Histogram, QuantileEdgeRanksAndPointMass)
{
    Histogram h(0, 10, 10);
    h.sample(3, 100); // all weight in bucket [3, 4)
    EXPECT_DOUBLE_EQ(h.quantile(0.0), 3.0 + (1.0 - 0.5) / 100.0);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 3.0 + (100.0 - 0.5) / 100.0);
    EXPECT_GE(h.p50(), 3.0);
    EXPECT_LT(h.p50(), 4.0);
}

TEST(Histogram, QuantilesOfClampedTerminalBuckets)
{
    // Out-of-range samples clamp into the terminal buckets; the
    // reported quantile must stay inside [lo, hi].
    Histogram h(0, 100, 10);
    h.sample(1'000'000, 10); // clamps into bucket 9 = [90, 100)
    EXPECT_DOUBLE_EQ(h.p50(), 90.0 + (5.0 - 0.5));
    EXPECT_LE(h.p99(), 100.0);

    Histogram lo(0, 100, 10);
    lo.sample(-50, 4); // clamps into bucket 0 = [0, 10)
    EXPECT_DOUBLE_EQ(lo.p50(), (2.0 - 0.5) / 4.0 * 10.0);
    EXPECT_GE(lo.quantile(0.0), 0.0);
}

TEST(Histogram, QuantileOfEmptyHistogramIsZero)
{
    Histogram h(0, 100, 10);
    EXPECT_DOUBLE_EQ(h.p50(), 0.0);
    EXPECT_DOUBLE_EQ(h.p99(), 0.0);
}

TEST(CounterMap, AddAndTotal)
{
    CounterMap m;
    m.add("a");
    m.add("a", 2);
    m.add("b", 5);
    EXPECT_EQ(m.get("a"), 3u);
    EXPECT_EQ(m.get("b"), 5u);
    EXPECT_EQ(m.get("missing"), 0u);
    EXPECT_EQ(m.total(), 8u);
}

TEST(TextTable, RendersAllCells)
{
    TextTable t("demo");
    t.header({"col1", "column2"});
    t.row({"a", TextTable::num(3.14159, 2)});
    t.row({TextTable::num(std::uint64_t{42}),
           TextTable::percent(12.345)});
    std::ostringstream os;
    t.print(os);
    const std::string s = os.str();
    EXPECT_NE(s.find("demo"), std::string::npos);
    EXPECT_NE(s.find("col1"), std::string::npos);
    EXPECT_NE(s.find("3.14"), std::string::npos);
    EXPECT_NE(s.find("42"), std::string::npos);
    EXPECT_NE(s.find("12.3%"), std::string::npos);
}

TEST(Types, PageHelpers)
{
    EXPECT_EQ(pageOf(0x12345), 0x12ull);
    EXPECT_EQ(pageOffset(0x12345), 0x345ull);
    EXPECT_EQ(pageBytes, 4096u);
}

TEST(Types, ModeNames)
{
    EXPECT_STREQ(modeName(Mode::User), "user");
    EXPECT_STREQ(modeName(Mode::Kernel), "kernel");
    EXPECT_STREQ(modeName(Mode::Pal), "pal");
    EXPECT_STREQ(modeName(Mode::Idle), "idle");
}

TEST(Types, PrivilegeClassification)
{
    EXPECT_FALSE(isPrivileged(Mode::User));
    EXPECT_TRUE(isPrivileged(Mode::Kernel));
    EXPECT_TRUE(isPrivileged(Mode::Pal));
    EXPECT_FALSE(isPrivileged(Mode::Idle));
}

TEST(LoggingDeath, PanicAborts)
{
    EXPECT_DEATH(smtos_panic("boom %d", 42), "boom 42");
}

TEST(LoggingDeath, AssertAborts)
{
    EXPECT_DEATH(smtos_assert(1 == 2), "assertion failed");
}

TEST(LoggingDeath, FatalExits)
{
    EXPECT_EXIT(smtos_fatal("bad config"),
                testing::ExitedWithCode(1), "bad config");
}
