/**
 * @file
 * Kernel-model integration tests: boot, process creation, syscall
 * dispatch, TLB fault round trips, scheduling/blocking, munmap
 * invalidation, ASN management.
 */

#include <gtest/gtest.h>

#include "kernel/kernel.h"
#include "kernel/tags.h"
#include "sim/system.h"
#include "workload/apache.h"
#include "workload/specint.h"

using namespace smtos;

namespace {

/** A system with the SPECInt workload, small for test speed. */
struct SpecFixture
{
    SpecFixture()
    {
        MachineConfig cfg = smtConfig();
        sys = std::make_unique<System>(cfg);
        SpecIntParams p;
        p.numApps = 4;
        p.inputChunks = 8;
        w = buildSpecInt(p);
        installSpecInt(sys->kernel(), w);
        sys->start();
    }

    std::unique_ptr<System> sys;
    SpecIntWorkload w;
};

/** A system with the Apache workload, small for test speed. */
struct ApacheFixture
{
    explicit ApacheFixture(int servers = 8)
    {
        MachineConfig cfg = smtConfig();
        cfg.kernel.enableNetwork = true;
        cfg.kernel.web.numClients = 16;
        sys = std::make_unique<System>(cfg);
        ApacheParams p;
        p.numServers = servers;
        w = buildApache(p);
        installApache(sys->kernel(), w);
        sys->start();
    }

    std::unique_ptr<System> sys;
    ApacheWorkload w;
};

} // namespace

TEST(KernelBoot, IdleThreadsBoundToAllContexts)
{
    MachineConfig cfg = smtConfig();
    System sys(cfg);
    sys.start();
    for (int c = 0; c < sys.pipeline().numContexts(); ++c)
        EXPECT_TRUE(sys.pipeline().ctx(c).hasThread());
    // With no user work, the machine idles.
    sys.run(2000);
    const auto &s = sys.pipeline().stats();
    EXPECT_GT(s.retired[static_cast<int>(Mode::Idle)],
              s.totalRetired() / 2);
}

TEST(KernelBoot, KernelTextFetchesViaKseg)
{
    MachineConfig cfg = smtConfig();
    System sys(cfg);
    sys.start();
    sys.run(1000);
    // Kernel text executes from the unmapped KSEG region (as on a
    // real Alpha): the idle loops run without any ITLB traffic, and
    // the I-cache still sees the fetches.
    EXPECT_EQ(sys.pipeline().itlb().stats().totalAccesses(), 0u);
    EXPECT_GT(sys.hierarchy().l1i().stats().totalAccesses(), 0u);
}

TEST(KernelSpec, ProcessesMakeProgress)
{
    SpecFixture f;
    f.sys->run(200000);
    for (int pid = 0; pid < f.sys->kernel().numProcs(); ++pid) {
        const Process &p = f.sys->kernel().proc(pid);
        if (p.cfg.kind == ProcKind::SpecIntApp) {
            EXPECT_GT(p.ts.cursor.retired, 0u);
        }
    }
}

TEST(KernelSpec, InputReadsHitTheBufferCache)
{
    SpecFixture f;
    f.sys->run(400000);
    EXPECT_GT(f.sys->kernel().diskReads(), 0u);
    EXPECT_GT(f.sys->kernel().syscallEntries().get("read"), 0u);
}

TEST(KernelSpec, PageFaultsAllocateFrames)
{
    SpecFixture f;
    const auto before = f.sys->physMem().allocated();
    f.sys->run(400000);
    EXPECT_GT(f.sys->physMem().allocated(), before);
    EXPECT_GT(f.sys->kernel().mmEntries().get("page_alloc"), 0u);
    EXPECT_GT(f.sys->kernel().mmEntries().get("dtlb_refill"), 0u);
}

TEST(KernelSpec, StartupCompletes)
{
    SpecFixture f;
    for (int i = 0; i < 50 && !f.sys->kernel().startupComplete(); ++i)
        f.sys->run(100000);
    EXPECT_TRUE(f.sys->kernel().startupComplete());
}

TEST(KernelSpec, KernelTimeAttributedToTags)
{
    SpecFixture f;
    f.sys->run(300000);
    const auto &s = f.sys->pipeline().stats();
    std::uint64_t tagged = 0;
    for (int t = 0; t < NumServiceTags; ++t)
        tagged += s.retiredByTag[t];
    const std::uint64_t privileged =
        s.retired[static_cast<int>(Mode::Kernel)] +
        s.retired[static_cast<int>(Mode::Pal)] +
        s.retired[static_cast<int>(Mode::Idle)];
    EXPECT_EQ(tagged, privileged);
}

TEST(KernelApache, ServesRequests)
{
    ApacheFixture f;
    f.sys->run(600000);
    EXPECT_GT(f.sys->kernel().requestsServed(), 0u);
    EXPECT_GT(f.sys->kernel().clients().responsesCompleted(), 0u);
}

TEST(KernelApache, SyscallMixCoversRequestPath)
{
    ApacheFixture f;
    f.sys->run(800000);
    const auto &sc = f.sys->kernel().syscallEntries();
    EXPECT_GT(sc.get("naccept"), 0u);
    EXPECT_GT(sc.get("read"), 0u);
    EXPECT_GT(sc.get("stat"), 0u);
    EXPECT_GT(sc.get("open"), 0u);
    EXPECT_GT(sc.get("writev"), 0u);
    EXPECT_GT(sc.get("close"), 0u);
    // Reads outnumber accepts (request read + per-chunk file reads).
    EXPECT_GT(sc.get("read"), sc.get("naccept"));
}

TEST(KernelApache, KernelDominatesExecution)
{
    ApacheFixture f;
    f.sys->run(800000);
    const auto &s = f.sys->pipeline().stats();
    const double kern = static_cast<double>(
        s.retired[static_cast<int>(Mode::Kernel)] +
        s.retired[static_cast<int>(Mode::Pal)]);
    EXPECT_GT(kern / s.totalRetired(), 0.5);
}

TEST(KernelApache, BlockingAndWakeupCycle)
{
    ApacheFixture f(8);
    f.sys->run(600000);
    // Servers must block (accept) and be rescheduled repeatedly.
    EXPECT_GT(f.sys->kernel().contextSwitches(), 20u);
}

TEST(KernelApache, MoreServersThanContextsAllRun)
{
    ApacheFixture f(24);
    f.sys->run(1200000);
    int ran = 0;
    for (int pid = 0; pid < f.sys->kernel().numProcs(); ++pid) {
        const Process &p = f.sys->kernel().proc(pid);
        if (p.cfg.kind == ProcKind::ApacheServer &&
            p.ts.cursor.retired > 0)
            ++ran;
    }
    EXPECT_GT(ran, 12);
}

TEST(KernelApache, NetworkConservation)
{
    ApacheFixture f;
    f.sys->run(800000);
    Network &n = f.sys->kernel().network();
    // Every served request produced at least one response packet.
    EXPECT_GE(n.responsePackets(),
              f.sys->kernel().requestsServed());
    EXPECT_GT(n.requestBytes(), 0u);
    EXPECT_GT(n.responseBytes(), n.requestBytes());
}

TEST(KernelApache, SharedTextFramesAcrossServers)
{
    ApacheFixture f;
    Kernel &k = f.sys->kernel();
    // All apache processes map the image base page to the same frame.
    Frame first = 0;
    bool have = false;
    for (int pid = 0; pid < k.numProcs(); ++pid) {
        Process &p = k.proc(pid);
        if (p.cfg.kind != ProcKind::ApacheServer)
            continue;
        const Frame fr = p.space->frameOf(pageOf(userTextBase));
        if (!have) {
            first = fr;
            have = true;
        } else {
            EXPECT_EQ(fr, first);
        }
    }
    EXPECT_TRUE(have);
}

TEST(KernelAppOnly, SyscallsCompleteWithoutKernelCode)
{
    MachineConfig cfg = smtConfig();
    cfg.kernel.appOnly = true;
    System sys(cfg);
    SpecIntParams p;
    p.numApps = 4;
    p.inputChunks = 8;
    SpecIntWorkload w = buildSpecInt(p);
    installSpecInt(sys.kernel(), w);
    sys.start();
    sys.run(300000);
    const auto &s = sys.pipeline().stats();
    // No kernel or PAL instructions retire in app-only mode.
    EXPECT_EQ(s.retired[static_cast<int>(Mode::Kernel)], 0u);
    EXPECT_EQ(s.retired[static_cast<int>(Mode::Pal)], 0u);
    EXPECT_GT(s.retired[static_cast<int>(Mode::User)], 0u);
}

TEST(KernelSched, TimerPreemptionSharesOneContext)
{
    // Superscalar: 4 apps must time-share the single context.
    MachineConfig cfg = superscalarConfig();
    System sys(cfg);
    SpecIntParams p;
    p.numApps = 4;
    p.inputChunks = 4;
    SpecIntWorkload w = buildSpecInt(p);
    installSpecInt(sys.kernel(), w);
    sys.start();
    sys.run(1500000);
    int progressed = 0;
    for (int pid = 0; pid < sys.kernel().numProcs(); ++pid) {
        const Process &pr = sys.kernel().proc(pid);
        if (pr.cfg.kind == ProcKind::SpecIntApp &&
            pr.ts.cursor.retired > 1000)
            ++progressed;
    }
    EXPECT_EQ(progressed, 4);
    EXPECT_GT(sys.kernel().contextSwitches(), 4u);
}

TEST(KernelVm, MunmapInvalidatesTlb)
{
    SpecFixture f;
    f.sys->run(1500000);
    // munmap/mmap apps issue occasional unmaps; the DTLB must see
    // OS invalidations (or at least munmap entries counted).
    const auto &mm = f.sys->kernel().mmEntries();
    EXPECT_GT(mm.get("munmap") + mm.get("smmap") + mm.get("obreak"),
              0u);
}
