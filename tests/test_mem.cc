/**
 * @file
 * Memory-system timing tests: MSHR merge/occupancy, store buffer,
 * buses, DRAM, and the composed hierarchy.
 */

#include <gtest/gtest.h>

#include "mem/bus.h"
#include "mem/dram.h"
#include "mem/hierarchy.h"
#include "mem/mshr.h"
#include "mem/storebuffer.h"

using namespace smtos;

namespace {

AccessInfo
user(ThreadId t)
{
    return AccessInfo{t, Mode::User, 0};
}

AccessInfo
kern(ThreadId t)
{
    return AccessInfo{t, Mode::Kernel, 0};
}

} // namespace

TEST(Mshr, GrantAndComplete)
{
    MshrFile m("t", 4);
    auto g = m.request(100, 10);
    EXPECT_FALSE(g.merged);
    EXPECT_EQ(g.startAt, 10u);
    m.complete(100, 10, 50);
    EXPECT_EQ(m.outstanding(20), 1);
    EXPECT_EQ(m.outstanding(50), 0);
}

TEST(Mshr, MergesSameBlock)
{
    MshrFile m("t", 4);
    auto g1 = m.request(100, 10);
    m.complete(100, 10, 90);
    auto g2 = m.request(100, 20);
    EXPECT_TRUE(g2.merged);
    EXPECT_EQ(g2.mergedReadyAt, 90u);
    EXPECT_EQ(m.merges(), 1u);
    (void)g1;
}

TEST(Mshr, FullFileDelaysGrant)
{
    MshrFile m("t", 2);
    m.request(1, 0);
    m.complete(1, 0, 100);
    m.request(2, 0);
    m.complete(2, 0, 200);
    auto g = m.request(3, 0);
    EXPECT_EQ(g.startAt, 100u); // waits for the earliest completion
    EXPECT_EQ(m.fullStalls(), 1u);
}

TEST(Mshr, OccupancyIntegralAccumulates)
{
    MshrFile m("t", 4);
    auto g = m.request(1, 0);
    m.complete(1, g.startAt, 40);
    EXPECT_DOUBLE_EQ(m.occupancyIntegral(), 40.0);
}

TEST(Mshr, ExpiredEntriesReused)
{
    MshrFile m("t", 1);
    m.request(1, 0);
    m.complete(1, 0, 10);
    auto g = m.request(2, 20); // entry expired by now
    EXPECT_EQ(g.startAt, 20u);
    EXPECT_EQ(m.fullStalls(), 0u);
}

TEST(StoreBuffer, AcceptsUntilFull)
{
    StoreBuffer sb(2);
    EXPECT_EQ(sb.push(0, 100), 0u);
    EXPECT_EQ(sb.push(0, 200), 0u);
    EXPECT_TRUE(sb.full(0));
    // Third store waits until the earliest drain (cycle 100).
    EXPECT_EQ(sb.push(0, 300), 100u);
    EXPECT_EQ(sb.fullStalls(), 1u);
}

TEST(StoreBuffer, DrainsOverTime)
{
    StoreBuffer sb(2);
    sb.push(0, 50);
    sb.push(0, 60);
    EXPECT_EQ(sb.occupancy(0), 2);
    EXPECT_EQ(sb.occupancy(55), 1);
    EXPECT_EQ(sb.occupancy(60), 0);
}

TEST(Bus, LatencyAndBandwidth)
{
    Bus b("t", 32, 2); // 32B/cycle, 2-cycle latency
    // 64B transfer: 2 cycles occupancy + 2 latency.
    EXPECT_EQ(b.transfer(10, 64), 14u);
    EXPECT_EQ(b.transactions(), 1u);
}

TEST(Bus, QueuesWhenBusy)
{
    Bus b("t", 32, 2);
    b.transfer(10, 64);             // occupies 10-12
    EXPECT_EQ(b.transfer(10, 64), 16u); // starts at 12
    EXPECT_EQ(b.queueingDelay(), 2u);
    EXPECT_DOUBLE_EQ(b.avgDelay(), 1.0);
}

TEST(Bus, IdleBusNoDelay)
{
    Bus b("t", 16, 4);
    b.transfer(0, 16);
    b.transfer(100, 16);
    EXPECT_EQ(b.queueingDelay(), 0u);
}

TEST(Dram, FixedLatencyPipelined)
{
    Dram d(90);
    EXPECT_EQ(d.access(10), 100u);
    EXPECT_EQ(d.access(11), 101u); // fully pipelined
    EXPECT_EQ(d.accesses(), 2u);
}

TEST(Hierarchy, L1HitIsFast)
{
    Hierarchy h{HierarchyParams{}};
    auto fill = h.data(0x1000, user(1), false, 0);
    const Cycle later = fill.readyAt + 5;
    auto r = h.data(0x1000, user(1), false, later);
    EXPECT_TRUE(r.l1Hit);
    EXPECT_EQ(r.readyAt, later + h.params().l1HitLatency);
}

TEST(Hierarchy, HitUnderFillWaitsForTheFill)
{
    Hierarchy h{HierarchyParams{}};
    auto fill = h.data(0x1000, user(1), false, 0);
    auto r = h.data(0x1000, user(2), false, 10);
    EXPECT_TRUE(r.l1Hit);
    EXPECT_EQ(r.readyAt, fill.readyAt);
}

TEST(Hierarchy, ColdLoadGoesToDram)
{
    Hierarchy h{HierarchyParams{}};
    auto r = h.data(0x1000, user(1), false, 0);
    EXPECT_FALSE(r.l1Hit);
    EXPECT_FALSE(r.l2Hit);
    // At least L2 latency + DRAM latency.
    EXPECT_GT(r.readyAt, h.params().l2Latency +
                             h.params().dramLatency);
    EXPECT_EQ(h.dram().accesses(), 1u);
}

TEST(Hierarchy, L2HitAvoidsDram)
{
    HierarchyParams p;
    p.l1d.sizeBytes = 1024; // tiny L1 so we can evict easily
    Hierarchy h{p};
    h.data(0x1000, user(1), false, 0);
    // Evict 0x1000 from tiny L1 (same set: 512B apart, 2-way).
    h.data(0x1000 + 512, user(1), false, 200);
    h.data(0x1000 + 1024, user(1), false, 400);
    const auto dram_before = h.dram().accesses();
    auto r = h.data(0x1000, user(1), false, 600);
    EXPECT_FALSE(r.l1Hit);
    EXPECT_TRUE(r.l2Hit);
    EXPECT_EQ(h.dram().accesses(), dram_before);
}

TEST(Hierarchy, StoreMissDoesNotFetchFromDram)
{
    Hierarchy h{HierarchyParams{}};
    const auto before = h.dram().accesses();
    auto r = h.data(0x9000, user(1), true, 0);
    EXPECT_FALSE(r.l1Hit);
    EXPECT_EQ(h.dram().accesses(), before); // write-validate
    // And the line is now present for subsequent loads.
    EXPECT_TRUE(h.data(0x9000, user(1), false, 100).l1Hit);
}

TEST(Hierarchy, FetchPathUsesICache)
{
    Hierarchy h{HierarchyParams{}};
    auto r1 = h.fetch(0x4000, kern(1), 0);
    EXPECT_FALSE(r1.l1Hit);
    auto r2 = h.fetch(0x4000, kern(1), r1.readyAt);
    EXPECT_TRUE(r2.l1Hit);
    EXPECT_EQ(h.l1i().stats().totalAccesses(), 2u);
    EXPECT_EQ(h.l1d().stats().totalAccesses(), 0u);
}

TEST(Hierarchy, MshrMergeOnConcurrentMisses)
{
    Hierarchy h{HierarchyParams{}};
    auto r1 = h.data(0x5000, user(1), false, 0);
    auto r2 = h.data(0x5000, user(2), false, 1); // same line in flight
    EXPECT_EQ(h.l1Mshr().merges(), 1u);
    EXPECT_LE(r2.readyAt, r1.readyAt);
}

TEST(Hierarchy, FlushIcacheInvalidates)
{
    Hierarchy h{HierarchyParams{}};
    h.fetch(0x4000, user(1), 0);
    h.flushIcache();
    auto r = h.fetch(0x4000, user(1), 1000);
    EXPECT_FALSE(r.l1Hit);
    EXPECT_EQ(h.l1i().stats().cause[0][static_cast<int>(
                  MissCause::OsInvalidation)],
              1u);
}

TEST(Hierarchy, DmaWriteInvalidatesCachedCopies)
{
    Hierarchy h{HierarchyParams{}};
    h.data(0x8000, user(1), false, 0);
    h.dmaWrite(0x8000, 4096);
    auto r = h.data(0x8000, user(1), false, 1000);
    EXPECT_FALSE(r.l1Hit);
}

TEST(Hierarchy, FilterPrivilegedSkipsKernelRefs)
{
    HierarchyParams p;
    p.filterPrivileged = true;
    Hierarchy h{p};
    auto r = h.data(0x1000, kern(1), false, 0);
    EXPECT_TRUE(r.l1Hit); // kernel refs complete instantly
    EXPECT_EQ(h.l1d().stats().totalAccesses(), 0u);
    // User refs still go through the cache.
    h.data(0x2000, user(2), false, 0);
    EXPECT_EQ(h.l1d().stats().totalAccesses(), 1u);
}

TEST(Hierarchy, OutstandingMissIntegralsGrow)
{
    Hierarchy h{HierarchyParams{}};
    h.data(0x1000, user(1), false, 0);
    h.fetch(0x2000, user(1), 0);
    EXPECT_GT(h.dmissIntegral(), 0.0);
    EXPECT_GT(h.imissIntegral(), 0.0);
    EXPECT_GT(h.l2missIntegral(), 0.0);
}

TEST(Hierarchy, BusContentionSlowsParallelMisses)
{
    Hierarchy h{HierarchyParams{}};
    Cycle first = h.data(0x10000, user(1), false, 0).readyAt;
    Cycle second = h.data(0x20000, user(2), false, 0).readyAt;
    Cycle third = h.data(0x30000, user(3), false, 0).readyAt;
    EXPECT_GE(second, first);
    EXPECT_GE(third, second);
}
