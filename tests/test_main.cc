/**
 * @file
 * Test driver main: like every tool main(), parse the SMTOS_*
 * environment exactly once and install it before any test runs.
 * Library code never calls getenv, so without this the suites would
 * ignore SMTOS_TRACE / SMTOS_JOBS / SMTOS_FAULTS entirely.
 */

#include <gtest/gtest.h>

#include "harness/env.h"

int
main(int argc, char **argv)
{
    ::testing::InitGoogleTest(&argc, argv);
    smtos::EnvOverrides::fromEnvironment().install();
    return RUN_ALL_TESTS();
}
