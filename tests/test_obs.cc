/**
 * @file
 * Observability-layer properties: the cycle-attribution sum invariant
 * must hold exactly, every artifact (report, interval JSONL/CSV,
 * trace.json) must be bit-identical across same-seed runs, the
 * timeline must be schema-valid (alphabetically sorted keys, monotone
 * timestamps, balanced JSON), and attaching probes must not perturb
 * the simulation (identical MetricsSnapshot with probes on and off).
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "harness/session.h"
#include "obs/profiler.h"
#include "obs/session.h"
#include "obs/timeline.h"
#include "sim/export.h"

using namespace smtos;

namespace {

namespace fs = std::filesystem;

std::string
readFile(const fs::path &p)
{
    std::ifstream in(p, std::ios::binary);
    EXPECT_TRUE(in.good()) << "cannot open " << p;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/** Temp dir for one test's artifacts, removed on destruction. */
struct TempDir
{
    fs::path path;

    explicit TempDir(const std::string &tag)
        : path(fs::temp_directory_path() /
               ("smtos_obs_" + tag + "_" +
                std::to_string(static_cast<unsigned>(::getpid()))))
    {
        fs::create_directories(path);
    }
    ~TempDir() { fs::remove_all(path); }
};

ObsConfig
allSinks(const fs::path &dir)
{
    ObsConfig oc;
    oc.profile = true;
    oc.reportPath = (dir / "report.txt").string();
    oc.intervalCycles = 10'000;
    oc.intervalJsonlPath = (dir / "interval.jsonl").string();
    oc.intervalCsvPath = (dir / "interval.csv").string();
    oc.timelinePath = (dir / "trace.json").string();
    return oc;
}

Session::Config
shortApache()
{
    Session::Config s;
    s.workload.kind = WorkloadConfig::Kind::Apache;
    s.phases.startupInstrs = 100'000;
    s.phases.measureInstrs = 150'000;
    return s;
}

/** Keys of one serialized event object, in order of appearance. */
std::vector<std::string>
eventKeys(const std::string &obj)
{
    std::vector<std::string> keys;
    int depth = 0;
    for (size_t i = 0; i < obj.size(); ++i) {
        const char c = obj[i];
        if (c == '{' || c == '[') {
            ++depth;
        } else if (c == '}' || c == ']') {
            --depth;
        } else if (c == '"' && depth == 1) {
            const size_t end = obj.find('"', i + 1);
            if (end == std::string::npos)
                break;
            const std::string tok = obj.substr(i + 1, end - i - 1);
            // A key at depth 1 is followed by ':'.
            if (end + 1 < obj.size() && obj[end + 1] == ':')
                keys.push_back(tok);
            i = end;
            // Skip the value; nested objects bump depth themselves,
            // string values are consumed on the next '"' pass.
        }
    }
    return keys;
}

} // namespace

TEST(ObsProfiler, FetchAndIssueSumInvariantsExact)
{
    TempDir dir("sum");
    ObsConfig oc;
    oc.profile = true;
    oc.reportPath = (dir.path / "report.txt").string();
    ObsSession obs(oc);

    Session::Config spec = shortApache();
    spec.obs = &obs;
    Session(spec).run();

    const CycleProfiler &p = *obs.profiler();
    ASSERT_GT(p.cycles(), 0u);
    EXPECT_EQ(p.fetchSlotsUsed() + p.fetchSlotsLost(),
              p.fetchSlotsTotal());
    EXPECT_EQ(p.issueSlotsUsed() + p.issueSlotsLost(),
              p.issueSlotsTotal());

    // Per-context and per-tag breakdowns partition the lost total.
    std::uint64_t by_ctx = 0;
    for (CtxId c = 0; c < 8; ++c)
        by_ctx += p.fetchSlotsLostByCtx(c);
    EXPECT_EQ(by_ctx, p.fetchSlotsLost());
}

TEST(ObsProfiler, ProbesDoNotPerturbTheSimulation)
{
    Session::Config plain = shortApache();
    RunResult r_plain = Session(plain).run();

    // Profiler + timeline only: interval sampling is excluded because
    // it legitimately changes the measurement *stepping* (cycle-driven
    // loop instead of one run(measureInstrs) call), which moves the
    // stopping point. The probes themselves must not move anything.
    TempDir dir("parity");
    ObsConfig oc = allSinks(dir.path);
    oc.intervalCycles = 0;
    oc.timelineDetail = true;
    ObsSession obs(oc);
    Session::Config probed = shortApache();
    probed.obs = &obs;
    RunResult r_probed = Session(probed).run();

    EXPECT_EQ(r_plain.cycles, r_probed.cycles);
    EXPECT_EQ(toJson(r_plain.steady), toJson(r_probed.steady));
    EXPECT_EQ(toJson(r_plain.startup), toJson(r_probed.startup));
}

TEST(ObsArtifacts, DeterministicAcrossSameSeedRuns)
{
    TempDir d1("det1");
    TempDir d2("det2");
    for (const TempDir *d : {&d1, &d2}) {
        ObsSession obs(allSinks(d->path));
        Session::Config spec = shortApache();
        spec.obs = &obs;
        Session(spec).run();
    }
    for (const char *name :
         {"report.txt", "interval.jsonl", "interval.csv",
          "trace.json"}) {
        const std::string a = readFile(d1.path / name);
        const std::string b = readFile(d2.path / name);
        EXPECT_FALSE(a.empty()) << name;
        EXPECT_EQ(a, b) << name << " differs across same-seed runs";
    }
}

TEST(ObsArtifacts, IntervalRowsAreWellFormed)
{
    TempDir dir("interval");
    {
        ObsSession obs(allSinks(dir.path));
        Session::Config spec = shortApache();
        spec.obs = &obs;
        Session(spec).run();
    }

    const std::string jsonl = readFile(dir.path / "interval.jsonl");
    std::istringstream in(jsonl);
    std::string line;
    int rows = 0;
    std::int64_t prev_end = -1;
    while (std::getline(in, line)) {
        ASSERT_FALSE(line.empty());
        EXPECT_EQ(line.front(), '{');
        EXPECT_EQ(line.back(), '}');
        const std::string idx = "\"interval\":" + std::to_string(rows);
        EXPECT_NE(line.find(idx), std::string::npos) << line;
        // Intervals tile the run: start where the previous ended.
        const size_t cs = line.find("\"cycle_start\":");
        const size_t ce = line.find("\"cycle_end\":");
        ASSERT_NE(cs, std::string::npos);
        ASSERT_NE(ce, std::string::npos);
        const std::int64_t c0 = std::stoll(line.substr(cs + 14));
        const std::int64_t c1 = std::stoll(line.substr(ce + 12));
        if (prev_end >= 0)
            EXPECT_EQ(c0, prev_end);
        EXPECT_GT(c1, c0);
        prev_end = c1;
        ++rows;
    }
    EXPECT_GE(rows, 2);

    // CSV: header plus one line per JSONL row, same column count each.
    const std::string csv = readFile(dir.path / "interval.csv");
    std::istringstream cin(csv);
    int csv_rows = 0;
    size_t cols = 0;
    while (std::getline(cin, line)) {
        const size_t n =
            static_cast<size_t>(
                std::count(line.begin(), line.end(), ',')) +
            1;
        if (csv_rows == 0)
            cols = n;
        else
            EXPECT_EQ(n, cols) << "ragged CSV row " << csv_rows;
        ++csv_rows;
    }
    EXPECT_EQ(csv_rows, rows + 1);
}

TEST(ObsTimeline, TraceJsonIsSchemaValid)
{
    TempDir dir("trace");
    {
        ObsSession obs(allSinks(dir.path));
        Session::Config spec = shortApache();
        spec.obs = &obs;
        Session(spec).run();
    }
    const std::string trace = readFile(dir.path / "trace.json");
    ASSERT_EQ(trace.rfind("{\"displayTimeUnit\":\"ns\","
                          "\"traceEvents\":[",
                          0),
              0u);
    EXPECT_EQ(trace.substr(trace.size() - 4), "\n]}\n");

    // Balanced braces/brackets over the whole document.
    int depth = 0;
    bool in_str = false;
    for (const char c : trace) {
        if (in_str) {
            in_str = c != '"';
            continue;
        }
        if (c == '"')
            in_str = true;
        else if (c == '{' || c == '[')
            ++depth;
        else if (c == '}' || c == ']')
            --depth;
        EXPECT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0);

    // Per-event checks: one object per line, keys alphabetical,
    // timestamps monotone non-decreasing.
    std::istringstream in(trace);
    std::string line;
    std::getline(in, line); // header
    std::int64_t prev_ts = 0;
    int events = 0;
    while (std::getline(in, line)) {
        if (line == "]}" || line.empty())
            break;
        while (!line.empty() && line.back() == ',')
            line.pop_back();
        ASSERT_EQ(line.front(), '{') << line;
        ASSERT_EQ(line.back(), '}') << line;
        const std::vector<std::string> keys = eventKeys(line);
        ASSERT_GE(keys.size(), 5u) << line;
        for (size_t i = 1; i < keys.size(); ++i)
            EXPECT_LT(keys[i - 1], keys[i])
                << "unsorted keys in " << line;
        const size_t ts = line.find("\"ts\":");
        ASSERT_NE(ts, std::string::npos) << line;
        const std::int64_t t = std::stoll(line.substr(ts + 5));
        EXPECT_GE(t, prev_ts) << "timestamps regress at " << line;
        prev_ts = t;
        ++events;
    }
    EXPECT_GT(events, 100);

    // Spans pair up: every B has a matching E (finish closes spans).
    const auto count = [&trace](const std::string &needle) {
        size_t n = 0, pos = 0;
        while ((pos = trace.find(needle, pos)) != std::string::npos) {
            ++n;
            pos += needle.size();
        }
        return n;
    };
    EXPECT_EQ(count("\"ph\":\"B\""), count("\"ph\":\"E\""));
}

TEST(ObsTimeline, SyntheticSpansAndSortedKeys)
{
    std::ostringstream os;
    TimelineExporter tl(os, /*detail=*/true);
    tl.begin(2);
    tl.modeSpan(0, 3, Mode::User, 10);
    tl.modeSpan(0, 3, Mode::Kernel, 25);
    tl.syscallBegin(0, 3, "read", 25);
    tl.squash(1, 4, 0x1234, "mispredict", 30);
    tl.schedSpan(1, 4, false, "pid4", 32);
    tl.memInstant("dtlb", 3, 0xbeef, 40);
    tl.modeSpan(0, 3, Mode::User, 48);
    tl.finish(60); // closes mode, sched, and syscall spans
    const std::string out = os.str();

    // Header, footer, and the spans we opened.
    EXPECT_EQ(out.rfind("{\"displayTimeUnit\":\"ns\"", 0), 0u);
    EXPECT_EQ(out.substr(out.size() - 4), "\n]}\n");
    EXPECT_NE(out.find("\"name\":\"core modes\""), std::string::npos);
    EXPECT_NE(out.find("\"name\":\"kernel\",\"ph\":\"B\""),
              std::string::npos);
    EXPECT_NE(out.find("\"name\":\"mispredict\",\"ph\":\"i\""),
              std::string::npos);
    EXPECT_NE(out.find("\"args\":{\"pc\":\"0x1234\"}"),
              std::string::npos);
    EXPECT_NE(out.find("\"name\":\"dtlb\""), std::string::npos);
    // finish() closed user-mode and scheduler spans at ts 60.
    EXPECT_NE(out.find("\"ph\":\"E\",\"pid\":0,\"tid\":0,\"ts\":60"),
              std::string::npos);
    EXPECT_NE(out.find("\"ph\":\"E\",\"pid\":2,\"tid\":1,\"ts\":60"),
              std::string::npos);

    // Determinism: an identical synthetic sequence reproduces the
    // output byte for byte.
    std::ostringstream os2;
    TimelineExporter tl2(os2, true);
    tl2.begin(2);
    tl2.modeSpan(0, 3, Mode::User, 10);
    tl2.modeSpan(0, 3, Mode::Kernel, 25);
    tl2.syscallBegin(0, 3, "read", 25);
    tl2.squash(1, 4, 0x1234, "mispredict", 30);
    tl2.schedSpan(1, 4, false, "pid4", 32);
    tl2.memInstant("dtlb", 3, 0xbeef, 40);
    tl2.modeSpan(0, 3, Mode::User, 48);
    tl2.finish(60);
    EXPECT_EQ(out, os2.str());
    EXPECT_EQ(tl.eventCount(), tl2.eventCount());
}
