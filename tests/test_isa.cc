/**
 * @file
 * ISA and code-generation tests: instruction properties, image
 * building/validation, generated-code statistical properties.
 */

#include <gtest/gtest.h>

#include "isa/codegen.h"
#include "isa/instr.h"
#include "isa/program.h"

using namespace smtos;

TEST(Instr, BranchClassification)
{
    Instr in;
    in.op = Op::CondBranch;
    EXPECT_TRUE(in.isBranch());
    in.op = Op::IntAlu;
    EXPECT_FALSE(in.isBranch());
    in.op = Op::Syscall;
    EXPECT_TRUE(in.isBranch());
    EXPECT_TRUE(in.isSerializing());
}

TEST(Instr, MemClassification)
{
    Instr in;
    in.op = Op::LoadPhys;
    EXPECT_TRUE(in.isMem());
    EXPECT_TRUE(in.isPhysMem());
    EXPECT_TRUE(in.isLoad());
    EXPECT_FALSE(in.isStore());
    in.op = Op::Store;
    EXPECT_TRUE(in.isStore());
    EXPECT_FALSE(in.isPhysMem());
}

TEST(Instr, SerializingSet)
{
    for (Op op : {Op::Syscall, Op::Magic, Op::TlbWrite, Op::Halt}) {
        Instr in;
        in.op = op;
        EXPECT_TRUE(in.isSerializing()) << opName(op);
    }
    Instr in;
    in.op = Op::CondBranch;
    EXPECT_FALSE(in.isSerializing());
}

TEST(Instr, MixClassMapping)
{
    Instr in;
    in.op = Op::Load;
    EXPECT_EQ(in.mixClass(), MixClass::Load);
    in.op = Op::StorePhys;
    EXPECT_EQ(in.mixClass(), MixClass::Store);
    in.op = Op::Call;
    EXPECT_EQ(in.mixClass(), MixClass::UncondBranch);
    in.op = Op::IndirectJump;
    EXPECT_EQ(in.mixClass(), MixClass::IndirectJump);
    in.op = Op::Syscall;
    EXPECT_EQ(in.mixClass(), MixClass::PalCallReturn);
    in.op = Op::FpMul;
    EXPECT_EQ(in.mixClass(), MixClass::Fp);
    in.op = Op::IntMul;
    EXPECT_EQ(in.mixClass(), MixClass::OtherInt);
}

TEST(Instr, FpRegisterNamespace)
{
    EXPECT_FALSE(isFpReg(0));
    EXPECT_FALSE(isFpReg(31));
    EXPECT_TRUE(isFpReg(32));
    EXPECT_TRUE(isFpReg(63));
    EXPECT_FALSE(isFpReg(regNone));
}

TEST(CodeImage, BuildAndAccess)
{
    CodeImage img("t", 0x1000);
    CodeGen g(img, CodeProfile{}, 1);
    const int f = img.beginFunction("fn", 7);
    img.beginBlock();
    img.emit(g.makeAlu());
    img.emit(g.makeReturn());
    img.finalize();
    EXPECT_EQ(img.numFunctions(), 1);
    EXPECT_EQ(img.numInstrs(), 2u);
    EXPECT_EQ(img.func(f).tag, 7);
    EXPECT_EQ(img.funcByName("fn"), f);
    EXPECT_EQ(img.pcOf(f, 0, 1), 0x1000u + 4u);
    EXPECT_EQ(img.textBytes(), 8u);
}

TEST(CodeImage, PalFlag)
{
    CodeImage img("t", kernelBase);
    CodeGen g(img, CodeProfile{}, 1);
    img.beginFunction("p", 0, true);
    img.beginBlock();
    img.emit(g.makePalReturn());
    img.finalize();
    EXPECT_TRUE(img.func(0).pal);
}

TEST(CodeImageDeath, BranchMidBlockRejected)
{
    CodeImage img("t", 0x1000);
    CodeGen g(img, CodeProfile{}, 1);
    img.beginFunction("fn", -1);
    img.beginBlock();
    img.emit(g.makeJump(0));
    img.emit(g.makeAlu()); // branch not at block end
    EXPECT_DEATH(img.finalize(), "branch mid-block");
}

TEST(CodeImageDeath, MissingFunctionIsFatal)
{
    CodeImage img("t", 0x1000);
    CodeGen g(img, CodeProfile{}, 1);
    img.beginFunction("fn", -1);
    img.beginBlock();
    img.emit(g.makeReturn());
    img.finalize();
    EXPECT_EXIT(img.funcByName("nope"), testing::ExitedWithCode(1),
                "no function");
}

TEST(CodeImage, SerializingMidBlockAllowed)
{
    CodeImage img("t", 0x1000);
    CodeGen g(img, CodeProfile{}, 1);
    img.beginFunction("fn", -1);
    img.beginBlock();
    img.emit(g.makeSyscall(3));
    img.emit(g.makeAlu());
    img.emit(g.makeReturn());
    img.finalize();
    SUCCEED();
}

TEST(CodeGen, DeterministicPerSeed)
{
    auto build = [](std::uint64_t seed) {
        CodeImage img("t", 0x1000);
        CodeGen g(img, CodeProfile{}, seed);
        g.genFunction("f", 20, {});
        img.finalize();
        return img.numInstrs();
    };
    EXPECT_EQ(build(5), build(5));
}

TEST(CodeGen, GeneratedFunctionValidates)
{
    CodeImage img("t", 0x1000);
    CodeGen g(img, CodeProfile{}, 77);
    std::vector<int> leaves;
    for (int i = 0; i < 3; ++i)
        leaves.push_back(
            g.genFunction("leaf" + std::to_string(i), 10, {}));
    g.genFunction("mid", 30, leaves);
    img.finalize(); // would panic on invalid targets
    EXPECT_EQ(img.numFunctions(), 4);
}

TEST(CodeGen, InfiniteLoopFunctionEndsWithJump)
{
    CodeImage img("t", 0x1000);
    CodeGen g(img, CodeProfile{}, 3);
    const int f = g.genFunction("loop", 5, {}, -1, true);
    img.finalize();
    const int last = img.numBlocks(f) - 1;
    const BasicBlock &bb = img.block(f, last);
    const Instr &in = img.instrAt(f, last, bb.numInstrs - 1);
    EXPECT_EQ(in.op, Op::Jump);
    EXPECT_EQ(in.targetBlock, 0);
}

TEST(CodeGen, PaddingIsUnreachableButPresent)
{
    CodeImage img("t", 0x1000);
    CodeGen g(img, CodeProfile{}, 3);
    const auto before = img.numInstrs();
    g.genPadding(100);
    img.finalize();
    EXPECT_EQ(img.numInstrs(), before + 101); // 100 nops + return
}

TEST(CodeGen, MixMatchesProfile)
{
    CodeProfile prof;
    prof.loadFrac = 0.25;
    prof.storeFrac = 0.15;
    prof.fpFrac = 0.05;
    prof.midBranchFrac = 0.0;
    CodeImage img("t", 0x1000);
    CodeGen g(img, prof, 99);
    img.beginFunction("f", -1);
    img.beginBlock();
    const int n = 20000;
    g.emitWork(n);
    img.emit(g.makeReturn());
    img.finalize();

    int loads = 0, stores = 0, fp = 0;
    const BasicBlock &bb = img.block(0, 0);
    for (int i = 0; i < bb.numInstrs; ++i) {
        const Instr &in = img.instrAt(0, 0, i);
        loads += in.isLoad();
        stores += in.isStore();
        fp += (in.op == Op::FpAdd || in.op == Op::FpMul);
    }
    EXPECT_NEAR(loads / double(n), 0.25, 0.02);
    EXPECT_NEAR(stores / double(n), 0.15, 0.02);
    EXPECT_NEAR(fp / double(n), 0.05, 0.01);
}

TEST(CodeGen, PhysFractionRespected)
{
    CodeProfile prof;
    prof.physMemFrac = 0.5;
    prof.midBranchFrac = 0.0;
    prof.physRegions = {{5, 1.0}};
    CodeImage img("t", 0x1000);
    CodeGen g(img, prof, 11);
    img.beginFunction("f", -1);
    img.beginBlock();
    const int n = 20000;
    g.emitWork(n);
    img.emit(g.makeReturn());
    img.finalize();

    int mem = 0, phys = 0;
    const BasicBlock &bb = img.block(0, 0);
    for (int i = 0; i < bb.numInstrs; ++i) {
        const Instr &in = img.instrAt(0, 0, i);
        if (in.isMem()) {
            ++mem;
            phys += in.isPhysMem();
        }
    }
    EXPECT_NEAR(phys / double(mem), 0.5, 0.05);
}

TEST(CodeGen, NoPhysWithoutPhysRegions)
{
    CodeProfile prof;
    prof.physMemFrac = 0.9;
    prof.physRegions.clear();
    CodeImage img("t", 0x1000);
    CodeGen g(img, prof, 12);
    img.beginFunction("f", -1);
    img.beginBlock();
    g.emitWork(2000);
    img.emit(g.makeReturn());
    img.finalize();
    const BasicBlock &bb = img.block(0, 0);
    for (int i = 0; i < bb.numInstrs; ++i)
        EXPECT_FALSE(img.instrAt(0, 0, i).isPhysMem());
}

TEST(CodeGen, MakersSetExpectedFields)
{
    CodeImage img("t", 0x1000);
    CodeGen g(img, CodeProfile{}, 13);
    Instr c = g.makeCond(3, 0.5);
    EXPECT_EQ(c.op, Op::CondBranch);
    EXPECT_EQ(c.targetBlock, 3);
    EXPECT_EQ(c.takenChance1024, 512);

    Instr l = g.makeLoop(1, 7, 2, 1);
    EXPECT_EQ(l.loopTrip, 7);
    EXPECT_EQ(l.loopSlot, 2);
    EXPECT_EQ(l.payload, 1);

    Instr call = g.makeCall(9);
    EXPECT_EQ(call.op, Op::Call);
    EXPECT_EQ(call.callee, 9);

    Instr m = g.makeMagic(MagicOp::NetSend, 42);
    EXPECT_EQ(m.op, Op::Magic);
    EXPECT_EQ(m.magic, MagicOp::NetSend);
    EXPECT_EQ(m.payload, 42);

    Instr s = g.makeSyscall(5);
    EXPECT_EQ(s.op, Op::Syscall);
    EXPECT_EQ(s.payload, 5);
}

// Parameterized sweep: generated functions of any size validate and
// respect block-count requests.
class GenSize : public testing::TestWithParam<int>
{
};

TEST_P(GenSize, FunctionShapeHolds)
{
    CodeImage img("t", 0x1000);
    CodeGen g(img, CodeProfile{}, 1234 + GetParam());
    const int f = g.genFunction("f", GetParam(), {});
    img.finalize();
    EXPECT_EQ(img.numBlocks(f), GetParam());
    // Last block must end in Return.
    const BasicBlock &bb = img.block(f, GetParam() - 1);
    EXPECT_EQ(img.instrAt(f, GetParam() - 1, bb.numInstrs - 1).op,
              Op::Return);
}

INSTANTIATE_TEST_SUITE_P(Sizes, GenSize,
                         testing::Values(1, 2, 3, 5, 8, 16, 40));
