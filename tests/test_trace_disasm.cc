/**
 * @file
 * Tests for the tracing subsystem and the disassembler.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/trace.h"
#include "isa/codegen.h"
#include "isa/disasm.h"
#include "kernel/image.h"

using namespace smtos;

namespace {

struct TraceGuard
{
    TraceGuard()
    {
        Trace::setMask(0);
        Trace::setSink(&os);
    }
    ~TraceGuard()
    {
        Trace::setSink(nullptr);
        Trace::setMask(0);
    }
    std::ostringstream os;
};

} // namespace

TEST(Trace, DisabledByDefault)
{
    TraceGuard g;
    smtos_trace(TraceCat::Fetch, "should not appear %d", 1);
    EXPECT_TRUE(g.os.str().empty());
}

TEST(Trace, EnabledCategoryEmitsWithCyclePrefix)
{
    TraceGuard g;
    Trace::enable(TraceCat::Tlb);
    Trace::setCycle(123);
    smtos_trace(TraceCat::Tlb, "vpn=%d", 42);
    EXPECT_NE(g.os.str().find("123: tlb: vpn=42"), std::string::npos);
}

TEST(Trace, OtherCategoriesStaySilent)
{
    TraceGuard g;
    Trace::enable(TraceCat::Sched);
    smtos_trace(TraceCat::Net, "nope");
    EXPECT_TRUE(g.os.str().empty());
    smtos_trace(TraceCat::Sched, "yes");
    EXPECT_NE(g.os.str().find("sched: yes"), std::string::npos);
}

TEST(Trace, DisableRemovesCategory)
{
    TraceGuard g;
    Trace::enable(TraceCat::Fault);
    Trace::disable(TraceCat::Fault);
    smtos_trace(TraceCat::Fault, "nope");
    EXPECT_TRUE(g.os.str().empty());
}

TEST(Trace, ParseCategoryList)
{
    EXPECT_EQ(Trace::parseCats("fetch"),
              static_cast<std::uint32_t>(TraceCat::Fetch));
    EXPECT_EQ(Trace::parseCats("fetch,tlb"),
              static_cast<std::uint32_t>(TraceCat::Fetch) |
                  static_cast<std::uint32_t>(TraceCat::Tlb));
    EXPECT_EQ(Trace::parseCats("all"),
              static_cast<std::uint32_t>(TraceCat::All));
    EXPECT_EQ(Trace::parseCats(""), 0u);
}

TEST(Disasm, AluRendering)
{
    Instr in;
    in.op = Op::IntAlu;
    in.srcA = 1;
    in.srcB = 2;
    in.dest = 3;
    EXPECT_EQ(disasm(in), "intalu r3, r1, r2");
}

TEST(Disasm, FpRegisters)
{
    Instr in;
    in.op = Op::FpAdd;
    in.srcA = 33;
    in.srcB = 34;
    in.dest = 35;
    EXPECT_EQ(disasm(in), "fpadd f3, f1, f2");
}

TEST(Disasm, LoadRendering)
{
    CodeImage img("t", 0x1000);
    CodeGen g(img, CodeProfile{}, 1);
    Instr ld = g.makeLoad(MemPattern::SeqStream, 1, 2, 64, false);
    const std::string s = disasm(ld);
    EXPECT_NE(s.find("load"), std::string::npos);
    EXPECT_NE(s.find("seq:1"), std::string::npos);
    EXPECT_NE(s.find("+64"), std::string::npos);
}

TEST(Disasm, BranchRendering)
{
    CodeImage img("t", 0x1000);
    CodeGen g(img, CodeProfile{}, 1);
    EXPECT_NE(disasm(g.makeCond(3, 0.5)).find("->b3"),
              std::string::npos);
    EXPECT_NE(disasm(g.makeLoop(1, 7, 2)).find("loop(7, slot 2)"),
              std::string::npos);
    EXPECT_NE(disasm(g.makeCall(9)).find("call f9"),
              std::string::npos);
    EXPECT_NE(disasm(g.makeSyscall(4)).find("syscall #4"),
              std::string::npos);
}

TEST(Disasm, FunctionListingContainsPcs)
{
    CodeImage img("t", 0x1000);
    CodeGen g(img, CodeProfile{}, 1);
    const int f = g.genFunction("fn", 3, {});
    img.finalize();
    std::ostringstream os;
    listFunction(os, img, f);
    EXPECT_NE(os.str().find("function 0 'fn'"), std::string::npos);
    EXPECT_NE(os.str().find("0x1000"), std::string::npos);
    EXPECT_NE(os.str().find("block 2"), std::string::npos);
}

TEST(Disasm, ImageSummaryCountsPadding)
{
    CodeImage img("t", 0x1000);
    CodeGen g(img, CodeProfile{}, 1);
    g.genPadding(50);
    g.genFunction("hot", 2, {});
    img.finalize();
    std::ostringstream os;
    imageSummary(os, img);
    EXPECT_NE(os.str().find("2 functions"), std::string::npos);
    EXPECT_NE(os.str().find("padding: 51"), std::string::npos);
    EXPECT_NE(os.str().find("hot"), std::string::npos);
}

TEST(Disasm, KernelImageListsEverySummaryLine)
{
    auto kc = buildKernelImage(3);
    std::ostringstream os;
    imageSummary(os, kc->image);
    EXPECT_NE(os.str().find("svc_read_file"), std::string::npos);
    EXPECT_NE(os.str().find("netisr_loop"), std::string::npos);
    EXPECT_NE(os.str().find("idle_loop"), std::string::npos);
}
