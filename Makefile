# Convenience wrappers over the CMake build. CI runs the same two
# configurations: Release, and Debug with ASan/UBSan (SMTOS_SANITIZE).

BUILD_RELEASE := build
BUILD_ASAN := build-asan
JOBS ?= $(shell nproc 2>/dev/null || echo 4)

.PHONY: all test asan asan-test cosim clean

all:
	cmake -B $(BUILD_RELEASE) -S . -DCMAKE_BUILD_TYPE=Release
	cmake --build $(BUILD_RELEASE) -j $(JOBS)

test: all
	ctest --test-dir $(BUILD_RELEASE) --output-on-failure -j $(JOBS)

asan:
	cmake -B $(BUILD_ASAN) -S . -DCMAKE_BUILD_TYPE=Debug \
	    -DSMTOS_SANITIZE=ON
	cmake --build $(BUILD_ASAN) -j $(JOBS)

asan-test: asan
	ctest --test-dir $(BUILD_ASAN) --output-on-failure -j $(JOBS)

# Just the reference-model co-simulation suite (Release).
cosim: all
	ctest --test-dir $(BUILD_RELEASE) -L cosim --output-on-failure

clean:
	rm -rf $(BUILD_RELEASE) $(BUILD_ASAN)
