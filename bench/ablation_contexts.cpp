/**
 * @file
 * Ablation: Apache throughput vs number of hardware contexts — the
 * latency-tolerance claim at the heart of the paper, swept from the
 * superscalar (1 context) to the full 8-context SMT.
 *
 * Also the snapshot-sweep showcase: the context count is structural,
 * so each count is one SweepGroup whose start-up phase runs once and
 * is snapshotted; the per-group measurement points (fetch policy,
 * scheduler affinity, TLB-IPR sharing) resume from the shared
 * artifact. The bench times this against giving every point its own
 * start-up and appends both wall times to BENCH_simspeed.json
 * (argv[1], default "BENCH_simspeed.json"; "-" skips the record).
 */

#include "bench_common.h"

#include <chrono>
#include <cstdio>
#include <string>

#include "harness/parallel.h"
#include "harness/sweep.h"

using namespace smtos;
using namespace smtos::bench;

namespace {

constexpr int counts[] = {1, 2, 4, 8};
constexpr std::uint64_t measurePerPoint = 800'000;

Session::Config
baseFor(int n)
{
    Session::Config s = apacheSmt();
    s.system.topology.contextsPerCore = n;
    if (n == 1)
        s.phases.startupInstrs = 1'000'000;
    s.phases.measureInstrs = measurePerPoint;
    return s;
}

struct Variant
{
    const char *name;
    bool rrFetch, affinity, sharedTlbIpr;
};

constexpr Variant variants[] = {
    {"icount", false, false, false},
    {"rr-fetch", true, false, false},
    {"affinity", false, true, false},
    {"shared-tlb-ipr", false, false, true},
};

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/** Record the timing pair under the "snapshot-sweep" entry. */
void
record(const std::string &path, double perPointSec, double amortizedSec)
{
    char body[256];
    std::snprintf(body, sizeof body,
                  "        \"ablation_contexts\": {\n"
                  "          \"per_point_startup_seconds\": %.3f,\n"
                  "          \"snapshot_amortized_seconds\": %.3f,\n"
                  "          \"amortized_over_per_point\": %.4f\n"
                  "        }\n",
                  perPointSec, amortizedSec,
                  amortizedSec / perPointSec);
    recordEntry(path, "snapshot-sweep", body);
}

} // namespace

int
main(int argc, char **argv)
{
    banner("Ablation: hardware context count (Apache)",
           "throughput should rise with contexts as SMT converts "
           "thread-level parallelism into issue slots");

    // Per-point start-up: every (count, variant) pair builds its own
    // Session and runs the full start-up phase itself.
    std::vector<Session::Config> perPoint;
    for (int n : counts) {
        for (const Variant &v : variants) {
            Session::Config s = baseFor(n);
            s.system.roundRobinFetch = v.rrFetch;
            s.system.affinitySched = v.affinity;
            s.system.sharedTlbIpr = v.sharedTlbIpr;
            perPoint.push_back(s);
        }
    }
    const auto t0 = std::chrono::steady_clock::now();
    const std::vector<RunResult> straight = runSessions(perPoint);
    const double perPointSec = secondsSince(t0);

    // Snapshot-amortized: one group per context count; start-up runs
    // once per group and the variants resume from its artifact.
    std::vector<SweepGroup> groups;
    for (int n : counts) {
        SweepGroup g;
        g.base = baseFor(n);
        for (const Variant &v : variants) {
            SweepPoint p;
            p.label = std::string("ctx") + std::to_string(n) + "/" +
                      v.name;
            p.opts.phases = g.base.phases;
            p.opts.roundRobinFetch = v.rrFetch;
            p.opts.affinitySched = v.affinity;
            p.opts.sharedTlbIpr = v.sharedTlbIpr;
            g.points.push_back(p);
        }
        groups.push_back(g);
    }
    const auto t1 = std::chrono::steady_clock::now();
    const std::vector<std::vector<RunResult>> swept =
        runSweepGroups(groups);
    const double amortizedSec = secondsSince(t1);

    TextTable t("Apache steady state vs contexts (ICOUNT point)");
    t.header({"contexts", "IPC", "0-fetch %", "L1D miss %",
              "OS cycles %"});
    for (std::size_t i = 0; i < swept.size(); ++i) {
        const ArchMetrics a = archMetrics(swept[i][0].steady);
        const ModeShares m = modeShares(swept[i][0].steady);
        t.row({TextTable::num(static_cast<std::uint64_t>(counts[i])),
               TextTable::num(a.ipc, 2),
               TextTable::num(a.zeroFetchPct, 1),
               TextTable::num(a.l1dMissPct, 1),
               TextTable::num(m.kernelPct + m.palPct, 1)});
    }
    t.print();

    TextTable v("Fetch/sched/TLB variants at 8 contexts (resumed)");
    v.header({"variant", "IPC", "0-fetch %"});
    const std::vector<RunResult> &g8 = swept.back();
    for (std::size_t j = 0; j < g8.size(); ++j) {
        const ArchMetrics a = archMetrics(g8[j].steady);
        v.row({variants[j].name, TextTable::num(a.ipc, 2),
               TextTable::num(a.zeroFetchPct, 1)});
    }
    v.print();

    // The sweep must reproduce the straight-through runs exactly
    // where the configurations coincide — each group's unmodified
    // ICOUNT point. (A variant point is a different experiment from
    // its from-boot run: its start-up deliberately ran under the base
    // policy; ctest -L snap verifies those against a manual resume.)
    for (std::size_t i = 0; i < swept.size(); ++i) {
        const RunResult &s = swept[i][0];
        const RunResult &d = straight[i * std::size(variants)];
        if (s.steady.core.cycles != d.steady.core.cycles ||
            s.requestsServed != d.requestsServed) {
            std::fprintf(stderr,
                         "MISMATCH at group %zu: resumed ICOUNT run "
                         "diverged from straight-through\n", i);
            return 1;
        }
    }

    std::printf("\nper-point start-up: %.1fs   snapshot-amortized: "
                "%.1fs   (%.0f%%)\n", perPointSec, amortizedSec,
                100.0 * amortizedSec / perPointSec);
    record(argc > 1 ? argv[1] : "BENCH_simspeed.json", perPointSec,
           amortizedSec);
    return 0;
}
