/**
 * @file
 * Ablation: Apache throughput vs number of hardware contexts — the
 * latency-tolerance claim at the heart of the paper, swept from the
 * superscalar (1 context) to the full 8-context SMT.
 */

#include "bench_common.h"

#include "harness/parallel.h"

using namespace smtos;
using namespace smtos::bench;

int
main()
{
    banner("Ablation: hardware context count (Apache)",
           "throughput should rise with contexts as SMT converts "
           "thread-level parallelism into issue slots");

    const int counts[] = {1, 2, 4, 8};
    std::vector<RunSpec> specs;
    for (int n : counts) {
        RunSpec s = apacheSmt();
        s.numContexts = n;
        s.measureInstrs = n >= 4 ? 2'000'000 : 1'200'000;
        if (n == 1)
            s.startupInstrs = 1'000'000;
        specs.push_back(s);
    }
    const std::vector<RunResult> results = runExperiments(specs);

    TextTable t("Apache steady state vs contexts");
    t.header({"contexts", "IPC", "0-fetch %", "L1D miss %",
              "OS cycles %"});
    for (std::size_t i = 0; i < results.size(); ++i) {
        const ArchMetrics a = archMetrics(results[i].steady);
        const ModeShares m = modeShares(results[i].steady);
        t.row({TextTable::num(static_cast<std::uint64_t>(counts[i])),
               TextTable::num(a.ipc, 2),
               TextTable::num(a.zeroFetchPct, 1),
               TextTable::num(a.l1dMissPct, 1),
               TextTable::num(m.kernelPct + m.palPct, 1)});
    }
    t.print();
    return 0;
}
