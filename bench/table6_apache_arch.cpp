/**
 * @file
 * Table 6: architectural metrics comparing Apache on SMT with
 * SPECInt on SMT and Apache on the superscalar. The paper's headline:
 * Apache reaches 4.6 IPC on SMT vs 1.1 on the superscalar (4.2x),
 * the largest SMT gain measured on any workload.
 */

#include "bench_common.h"

using namespace smtos;
using namespace smtos::bench;

namespace {

void
metricRows(TextTable &t, const ArchMetrics &a, const ArchMetrics &s,
           const ArchMetrics &ss)
{
    auto row3 = [&](const char *name, double x, double y, double z,
                    int prec = 2) {
        t.row({name, TextTable::num(x, prec), TextTable::num(y, prec),
               TextTable::num(z, prec)});
    };
    row3("IPC", a.ipc, s.ipc, ss.ipc);
    row3("instructions squashed (% fetched)", a.squashedPct,
         s.squashedPct, ss.squashedPct, 1);
    row3("avg fetchable contexts", a.fetchableContexts,
         s.fetchableContexts, ss.fetchableContexts);
    row3("branch mispredict rate %", a.branchMispredPct,
         s.branchMispredPct, ss.branchMispredPct, 1);
    row3("ITLB miss rate %", a.itlbMissPct, s.itlbMissPct,
         ss.itlbMissPct);
    row3("DTLB miss rate %", a.dtlbMissPct, s.dtlbMissPct,
         ss.dtlbMissPct);
    row3("L1 Icache miss rate %", a.l1iMissPct, s.l1iMissPct,
         ss.l1iMissPct);
    row3("L1 Dcache miss rate %", a.l1dMissPct, s.l1dMissPct,
         ss.l1dMissPct);
    row3("L2 miss rate %", a.l2MissPct, s.l2MissPct, ss.l2MissPct);
    row3("0-fetch cycles %", a.zeroFetchPct, s.zeroFetchPct,
         ss.zeroFetchPct, 1);
    row3("0-issue cycles %", a.zeroIssuePct, s.zeroIssuePct,
         ss.zeroIssuePct, 1);
    row3("max (6) issue cycles %", a.maxIssuePct, s.maxIssuePct,
         ss.maxIssuePct, 1);
    row3("avg outstanding I$ misses", a.outstandingImiss,
         s.outstandingImiss, ss.outstandingImiss);
    row3("avg outstanding D$ misses", a.outstandingDmiss,
         s.outstandingDmiss, ss.outstandingDmiss);
    row3("avg outstanding L2 misses", a.outstandingL2miss,
         s.outstandingL2miss, ss.outstandingL2miss);
}

} // namespace

int
main()
{
    banner("Table 6: Apache vs SPECInt on SMT; Apache on superscalar",
           "paper: IPC 4.6 / 5.6 / 1.1; Apache stresses every "
           "structure harder than SPECInt; SMT hides the latency");

    const ArchMetrics apache_smt =
        archMetrics(run(apacheSmt()).steady);
    const ArchMetrics spec_smt =
        archMetrics(run(specSmt()).steady);
    const ArchMetrics apache_ss =
        archMetrics(run(superscalar(apacheSmt())).steady);

    TextTable t("steady-state architectural metrics");
    t.header({"metric", "SMT Apache", "SMT SPECInt",
              "superscalar Apache"});
    metricRows(t, apache_smt, spec_smt, apache_ss);
    t.print();

    std::printf("\nSMT-over-superscalar throughput gain on Apache: "
                "%.2fx (paper: 4.2x)\n",
                apache_smt.ipc / apache_ss.ipc);
    return 0;
}
