/**
 * @file
 * Ablation: FIFO vs cache-affinity run-queue policy on Apache — the
 * SMT-aware scheduling direction the paper lists as future work
 * (Parekh et al. [30], Snavely & Tullsen [36]).
 */

#include "bench_common.h"

using namespace smtos;
using namespace smtos::bench;

int
main()
{
    banner("Ablation: scheduler policy (FIFO vs cache affinity)",
           "future-work direction: affinity keeps a process's warm "
           "cache/TLB state on the context it last used");

    TextTable t("Apache on SMT, steady state");
    t.header({"policy", "IPC", "L1D miss %", "DTLB miss %",
              "context switches", "requests"});
    auto add = [&](const char *name, bool affinity) {
        Session::Config s = apacheSmt();
        s.system.affinitySched = affinity;
        RunResult r = run(s);
        const ArchMetrics a = archMetrics(r.steady);
        t.row({name, TextTable::num(a.ipc, 2),
               TextTable::num(a.l1dMissPct, 1),
               TextTable::num(a.dtlbMissPct, 2),
               TextTable::num(r.steady.contextSwitches),
               TextTable::num(r.steady.requestsServed)});
    };
    add("FIFO", false);
    add("affinity", true);
    t.print();
    return 0;
}
