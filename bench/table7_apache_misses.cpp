/**
 * @file
 * Table 7: distribution of miss causes for Apache on the SMT —
 * kernel/kernel interthread and intrathread conflicts are the largest
 * cause in the caches, a behavior unique to SMT's simultaneous
 * execution of multiple kernel threads.
 */

#include "bench_common.h"

using namespace smtos;
using namespace smtos::bench;

int
main()
{
    banner("Table 7: Apache miss-cause distribution",
           "65% of L1I and L1D misses are kernel intra+interthread "
           "conflicts; user-kernel conflicts significant everywhere");

    RunResult r = run(apacheSmt());

    TextTable t("miss causes, % of all misses in the structure "
                "(columns: user refs, kernel refs)");
    t.header({"structure", "row", "user", "kernel"});
    missRows(t, "BTB", missBreakdown(r.steady.btb));
    missRows(t, "L1I", missBreakdown(r.steady.l1i));
    missRows(t, "L1D", missBreakdown(r.steady.l1d));
    missRows(t, "L2", missBreakdown(r.steady.l2));
    missRows(t, "DTLB", missBreakdown(r.steady.dtlb));
    missRows(t, "ITLB", missBreakdown(r.steady.itlb));
    t.print();

    // Headline aggregates the paper calls out in the text.
    auto kernel_conflicts = [](const InterferenceStats &s) {
        const double all = static_cast<double>(s.totalMisses());
        const double k =
            static_cast<double>(
                s.cause[1][static_cast<int>(MissCause::Intrathread)] +
                s.cause[1][static_cast<int>(MissCause::Interthread)]);
        return all > 0 ? 100.0 * k / all : 0.0;
    };
    std::printf("\nkernel intra+interthread conflicts: L1I %.1f%%, "
                "L1D %.1f%%, L2 %.1f%% of all misses "
                "(paper: 65 / 65 / 41)\n",
                kernel_conflicts(r.steady.l1i),
                kernel_conflicts(r.steady.l1d),
                kernel_conflicts(r.steady.l2));
    return 0;
}
