/**
 * @file
 * Figure 3: incursions into kernel memory-management code by number
 * of entries — page allocation accounts for the majority of the
 * entries that do real work during start-up.
 */

#include "bench_common.h"

using namespace smtos;
using namespace smtos::bench;

int
main()
{
    banner("Figure 3: kernel memory-management incursions",
           "page allocation dominates MM entries during start-up");

    RunResult r = run(specSmt());

    TextTable t("MM entries by reason");
    t.header({"entry reason", "start-up count", "steady count"});
    for (const char *key :
         {"dtlb_refill", "itlb_refill", "page_fault", "page_alloc",
          "smmap", "munmap", "obreak"}) {
        auto get = [&](const MetricsSnapshot &d) {
            auto it = d.mmEntries.find(key);
            return it == d.mmEntries.end() ? std::uint64_t{0}
                                           : it->second;
        };
        t.row({key, TextTable::num(get(r.startup)),
               TextTable::num(get(r.steady))});
    }
    t.print();
    return 0;
}
