/**
 * @file
 * Table 2: percentage of dynamic instructions in the SPECInt workload
 * by instruction type, user vs kernel, start-up vs steady state —
 * including the fraction of memory ops using physical addresses and
 * the conditional-branch taken rates.
 */

#include "bench_common.h"

using namespace smtos;
using namespace smtos::bench;

namespace {

void
mixTable(const char *title, const MetricsSnapshot &d)
{
    TextTable t(title);
    t.header({"instruction type", "user", "kernel"});
    const MixRow u = mixRow(d, false);
    const MixRow k = mixRow(d, true);
    auto row2 = [&](const char *name, double a, double b) {
        t.row({name, TextTable::num(a, 1), TextTable::num(b, 1)});
    };
    row2("load", u.loadPct, k.loadPct);
    row2("  (physical %)", u.loadPhysPct, k.loadPhysPct);
    row2("store", u.storePct, k.storePct);
    row2("  (physical %)", u.storePhysPct, k.storePhysPct);
    row2("branch", u.branchPct, k.branchPct);
    row2("  conditional (of branches)", u.condPct, k.condPct);
    row2("  (taken %)", u.condTakenPct, k.condTakenPct);
    row2("  unconditional", u.uncondPct, k.uncondPct);
    row2("  indirect jump", u.indirectPct, k.indirectPct);
    row2("  PAL call/return", u.palPct, k.palPct);
    row2("remaining integer", u.otherIntPct, k.otherIntPct);
    row2("floating point", u.fpPct, k.fpPct);
    t.print();
}

} // namespace

int
main()
{
    banner("Table 2: SPECInt dynamic instruction mix",
           "kernel: ~half of memory ops physical, fewer taken "
           "branches, PAL call/return present; user: ~20% loads, "
           "~10% stores, ~2-3% FP");

    RunResult r = run(specSmt());
    mixTable("program start-up", r.startup);
    mixTable("steady state", r.steady);
    return 0;
}
