/**
 * @file
 * Ablation: banked DRAM behind the L2 — what the flat 90-cycle model
 * hides. Part A drives the MemCtrl directly with synthetic access
 * streams (sequential streaming, dependent pointer-chasing, aligned
 * multi-stream interference) swept over page policy and bank count,
 * showing the row-buffer locality / bank-parallelism tradeoff in
 * closed form. Part B runs SpecInt on the full system across context
 * counts via the SweepGroup engine, with open- vs closed-page resumed
 * from one shared start-up snapshot per count — multi-context
 * interference as the workload actually delivers it.
 *
 * Appends a representative point to BENCH_simspeed.json (argv[1],
 * default "BENCH_simspeed.json"; "-" skips the record).
 */

#include "bench_common.h"

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "harness/sweep.h"
#include "mem/memctrl.h"
#include "sim/metrics.h"

using namespace smtos;
using namespace smtos::bench;

namespace {

constexpr int bankCounts[] = {1, 4, 16};
constexpr int accessesPerPattern = 4096;

DramParams
geom(int banks, bool closedPage)
{
    DramParams p;
    p.banked = true;
    // One channel, one rank: the bank count is the whole sweep axis
    // and the data-bus ceiling stays fixed at burstBytes/tBurst.
    p.channels = 1;
    p.ranks = 1;
    p.banksPerRank = banks;
    p.closedPage = closedPage;
    return p;
}

struct PatternResult
{
    DramStats stats;
    Cycle span = 0; ///< first arrival (0) to last data-burst finish
};

/**
 * Issue accesses as fast as the burst slots allow while keeping at
 * most 16 outstanding (an L2-MSHR-like window), so the bandwidth
 * patterns saturate the controller without the open-loop queue wait
 * swamping the latency figure.
 */
template <typename AddrOf>
PatternResult
runWindowed(const DramParams &p, AddrOf addrOf)
{
    MemCtrl mc(defaultMemLatency, p);
    const AccessInfo who{};
    constexpr int window = 16;
    Cycle done[window] = {};
    Cycle arrival = 0, last = 0;
    for (int i = 0; i < accessesPerPattern; ++i) {
        arrival = std::max(
            {arrival, static_cast<Cycle>(i) * p.tBurst,
             done[i % window]});
        const Cycle finish = mc.access(addrOf(i), who, arrival);
        done[i % window] = finish;
        last = std::max(last, finish);
    }
    return {mc.stats(), last};
}

/** Sequential lines: bandwidth-bound, row-buffer friendly. */
PatternResult
runStreaming(int banks, bool closedPage)
{
    const DramParams p = geom(banks, closedPage);
    return runWindowed(p, [&p](int i) {
        return static_cast<Addr>(i) * p.burstBytes;
    });
}

/** Dependent LCG chain over an 8 MiB set: latency-bound. */
PatternResult
runPointerChase(int banks, bool closedPage)
{
    const DramParams p = geom(banks, closedPage);
    MemCtrl mc(defaultMemLatency, p);
    const AccessInfo who{};
    const std::uint64_t lines = 8u * 1024 * 1024 / p.burstBytes;
    std::uint64_t x = 0x9e3779b97f4a7c15ull;
    Cycle now = 0;
    for (int i = 0; i < accessesPerPattern; ++i) {
        x = x * 6364136223846793005ull + 1442695040888963407ull;
        const Addr a =
            static_cast<Addr>((x >> 16) % lines) * p.burstBytes;
        now = mc.access(a, who, now);
    }
    return {mc.stats(), now};
}

/**
 * Four row-aligned sequential streams, round-robin: every stream
 * wants the same bank sequence under a different row, the worst case
 * for an open-page policy.
 */
PatternResult
runInterference(int banks, bool closedPage)
{
    const DramParams p = geom(banks, closedPage);
    return runWindowed(p, [&p](int i) {
        const Addr base = static_cast<Addr>(i % 4) << 20;
        return base + static_cast<Addr>(i / 4) * p.burstBytes;
    });
}

double
bytesPerCycle(const PatternResult &r)
{
    return r.span == 0
               ? 0.0
               : static_cast<double>(r.stats.accesses * 64) /
                     static_cast<double>(r.span);
}

double
pct(std::uint64_t part, std::uint64_t whole)
{
    return whole == 0 ? 0.0
                      : 100.0 * static_cast<double>(part) /
                            static_cast<double>(whole);
}

// ---- Part B: SpecInt multi-context interference via SweepGroup ----

constexpr int counts[] = {1, 2, 4, 8};

Session::Config
baseFor(int n)
{
    Session::Config s = specSmt();
    s.system.topology.contextsPerCore = n;
    s.system.dram.banked = true; // Table-1 geometry, open page
    s.phases.measureInstrs = 600'000;
    return s;
}

void
record(const std::string &path, const PatternResult &stream,
       const PatternResult &chase, const DramStats &open8,
       const DramStats &closed8)
{
    char body[512];
    std::snprintf(body, sizeof body,
                  "        \"ablation_dram\": {\n"
                  "          \"stream_open16_bytes_per_cycle\": %.2f,\n"
                  "          \"stream_open16_row_hit_pct\": %.1f,\n"
                  "          \"chase_open16_avg_latency\": %.1f,\n"
                  "          \"spec8_open_avg_latency\": %.1f,\n"
                  "          \"spec8_closed_avg_latency\": %.1f\n"
                  "        }\n",
                  bytesPerCycle(stream),
                  pct(stream.stats.rowHits, stream.stats.accesses),
                  chase.stats.avgLatency(), open8.avgLatency(),
                  closed8.avgLatency());
    recordEntry(path, "dram-ablation", body);
}

} // namespace

int
main(int argc, char **argv)
{
    banner("Ablation: banked DRAM (page policy x bank count)",
           "the flat 90-cycle memory hides row-buffer locality, "
           "bank parallelism, and inter-context interference");

    struct Pattern
    {
        const char *name;
        PatternResult (*run)(int, bool);
    };
    const Pattern patterns[] = {{"streaming", runStreaming},
                                {"pointer-chase", runPointerChase},
                                {"interference", runInterference}};

    PatternResult stream16, chase16;
    TextTable a("Synthetic streams on one channel (4096 lines each)");
    a.header({"pattern", "policy", "banks", "hit %", "confl %",
              "avg lat", "B/cyc"});
    for (const Pattern &pat : patterns) {
        for (bool closedPage : {false, true}) {
            for (int banks : bankCounts) {
                const PatternResult r = pat.run(banks, closedPage);
                const DramStats &s = r.stats;
                a.row({pat.name, closedPage ? "closed" : "open",
                       TextTable::num(
                           static_cast<std::uint64_t>(banks)),
                       TextTable::num(pct(s.rowHits, s.accesses), 1),
                       TextTable::num(pct(s.rowConflicts, s.accesses),
                                      1),
                       TextTable::num(s.avgLatency(), 1),
                       TextTable::num(bytesPerCycle(r), 2)});
                if (!closedPage && banks == 16) {
                    if (pat.run == runStreaming)
                        stream16 = r;
                    else if (pat.run == runPointerChase)
                        chase16 = r;
                }
            }
        }
    }
    a.print();

    // Part B: one group per context count; the open- and closed-page
    // points resume from the group's shared start-up artifact, so the
    // policy flip is the only difference between them.
    std::vector<SweepGroup> groups;
    for (int n : counts) {
        SweepGroup g;
        g.base = baseFor(n);
        SweepPoint open;
        open.label = "ctx" + std::to_string(n) + "/open";
        open.opts.phases = g.base.phases;
        SweepPoint closed;
        closed.label = "ctx" + std::to_string(n) + "/closed";
        closed.opts.phases = g.base.phases;
        closed.opts.dramClosedPage = true;
        g.points = {open, closed};
        groups.push_back(g);
    }
    const std::vector<std::vector<RunResult>> swept =
        runSweepGroups(groups);

    TextTable b("SpecInt, Table-1 geometry: open vs closed page");
    b.header({"contexts", "IPC", "hit %", "confl %", "open lat",
              "closed lat", "q-stalls"});
    for (std::size_t i = 0; i < swept.size(); ++i) {
        const DramStats &o = swept[i][0].steady.dram;
        const DramStats &c = swept[i][1].steady.dram;
        const ArchMetrics m = archMetrics(swept[i][0].steady);
        b.row({TextTable::num(static_cast<std::uint64_t>(counts[i])),
               TextTable::num(m.ipc, 2),
               TextTable::num(pct(o.rowHits, o.accesses), 1),
               TextTable::num(pct(o.rowConflicts, o.accesses), 1),
               TextTable::num(o.avgLatency(), 1),
               TextTable::num(c.avgLatency(), 1),
               TextTable::num(o.queueFullStalls)});
    }
    b.print();

    const DramStats &open8 = swept.back()[0].steady.dram;
    const DramStats &closed8 = swept.back()[1].steady.dram;
    std::printf("\n8-context interference: open-page avg %.1f cyc "
                "(%.1f%% conflicts), closed-page avg %.1f cyc\n",
                open8.avgLatency(),
                pct(open8.rowConflicts, open8.accesses),
                closed8.avgLatency());

    record(argc > 1 ? argv[1] : "BENCH_simspeed.json", stream16,
           chase16, open8, closed8);
    return 0;
}
