/**
 * @file
 * Figure 2: breakdown of kernel time for SPECInt95 (start-up vs
 * steady state) — TLB handling dominates, then system calls, with a
 * small PAL and interrupt component.
 */

#include "bench_common.h"

using namespace smtos;
using namespace smtos::bench;

int
main()
{
    banner("Figure 2: SPECInt kernel-time breakdown",
           "start-up: TLB ~12%, syscalls ~5% of all cycles; steady: "
           "~5% OS total, same proportions");

    RunResult r = run(specSmt());

    TextTable t("kernel activity as % of all cycles");
    t.header({"component", "start-up %", "steady %"});
    for (ServiceGroup g :
         {ServiceGroup::TlbHandling, ServiceGroup::Syscall,
          ServiceGroup::Interrupt, ServiceGroup::Sched,
          ServiceGroup::NetIsr, ServiceGroup::Idle}) {
        t.row({serviceGroupName(g),
               TextTable::num(groupSharePct(r.startup, g), 2),
               TextTable::num(groupSharePct(r.steady, g), 2)});
    }
    const double pal_start =
        tagSharePct(r.startup, TagPalDtlb) +
        tagSharePct(r.startup, TagPalItlb);
    const double pal_steady =
        tagSharePct(r.steady, TagPalDtlb) +
        tagSharePct(r.steady, TagPalItlb);
    t.row({"(of which PAL refills)", TextTable::num(pal_start, 2),
           TextTable::num(pal_steady, 2)});
    t.print();
    return 0;
}
