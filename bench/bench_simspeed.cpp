/**
 * @file
 * Google-benchmark microbenchmarks of the simulator itself:
 * simulation rate (simulated instructions per host second) for each
 * workload/configuration, plus core substrate hot paths.
 */

#include <benchmark/benchmark.h>

#include <vector>

#include "bp/mcfarling.h"
#include "common/ring.h"
#include "harness/session.h"
#include "mem/cache.h"
#include "vm/addrspace.h"
#include "vm/physmem.h"
#include "vm/tlb.h"

using namespace smtos;

namespace {

void
BM_SimRate_SpecIntSmt(benchmark::State &state)
{
    for (auto _ : state) {
        Session::Config s;
        s.workload.kind = WorkloadConfig::Kind::SpecInt;
        s.workload.spec.inputChunks = 8;
        s.phases.startupInstrs = 50'000;
        s.phases.measureInstrs = static_cast<std::uint64_t>(state.range(0));
        RunResult r = Session(s).run();
        benchmark::DoNotOptimize(r.steady.core.cycles);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}

void
BM_SimRate_ApacheSmt(benchmark::State &state)
{
    for (auto _ : state) {
        Session::Config s;
        s.workload.kind = WorkloadConfig::Kind::Apache;
        s.phases.startupInstrs = 50'000;
        s.phases.measureInstrs = static_cast<std::uint64_t>(state.range(0));
        RunResult r = Session(s).run();
        benchmark::DoNotOptimize(r.steady.core.cycles);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}

void
BM_SimRate_SpecIntFunctional(benchmark::State &state)
{
    for (auto _ : state) {
        Session::Config s;
        s.workload.kind = WorkloadConfig::Kind::SpecInt;
        s.workload.spec.inputChunks = 8;
        s.fidelity = Fidelity::Functional;
        s.phases.startupInstrs = 50'000;
        s.phases.measureInstrs = static_cast<std::uint64_t>(state.range(0));
        RunResult r = Session(s).run();
        benchmark::DoNotOptimize(r.steady.core.cycles);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}

void
BM_SimRate_ApacheFunctional(benchmark::State &state)
{
    for (auto _ : state) {
        Session::Config s;
        s.workload.kind = WorkloadConfig::Kind::Apache;
        s.fidelity = Fidelity::Functional;
        s.phases.startupInstrs = 50'000;
        s.phases.measureInstrs = static_cast<std::uint64_t>(state.range(0));
        RunResult r = Session(s).run();
        benchmark::DoNotOptimize(r.steady.core.cycles);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}

void
BM_SimRate_SpecIntSampled(benchmark::State &state)
{
    for (auto _ : state) {
        Session::Config s;
        s.workload.kind = WorkloadConfig::Kind::SpecInt;
        s.workload.spec.inputChunks = 8;
        s.sample.enabled = true;
        s.phases.startupInstrs = 50'000;
        s.phases.measureInstrs = static_cast<std::uint64_t>(state.range(0));
        RunResult r = Session(s).run();
        benchmark::DoNotOptimize(r.sample.cpi.mean);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}

void
BM_CacheAccess(benchmark::State &state)
{
    Cache c(CacheParams{});
    AccessInfo who{1, Mode::User, 0};
    // Precompute the address stream so the timed loop measures the
    // cache, not the RNG.
    Rng rng(1);
    std::vector<Addr> addrs(4096);
    for (Addr &a : addrs)
        a = rng.below(1 << 22) & ~7ull;
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(c.access(addrs[i], who, false));
        i = (i + 1) & (addrs.size() - 1);
    }
    state.SetItemsProcessed(state.iterations());
}

void
BM_FixedRing(benchmark::State &state)
{
    // The pipeline's per-context queue idiom: push a burst, walk it,
    // pop from the front (commit) with an occasional tail rewind
    // (squash).
    FixedRing<std::uint64_t> ring;
    ring.init(64);
    std::uint64_t sum = 0;
    for (auto _ : state) {
        for (int k = 0; k < 8; ++k)
            ring.push_back(static_cast<std::uint64_t>(k));
        for (std::size_t k = 0; k < ring.size(); ++k)
            sum += ring[k];
        ring.pop_back();
        while (!ring.empty())
            ring.pop_front();
    }
    benchmark::DoNotOptimize(sum);
    state.SetItemsProcessed(state.iterations() * 8);
}

void
BM_TlbLookup(benchmark::State &state)
{
    // Hot TLB hits over a working set that fits the TLB — the case
    // the index-hint cache accelerates past the associative scan.
    Tlb tlb("bench-dtlb", 128);
    AccessInfo who{1, Mode::User, 0};
    constexpr Addr pages = 96;
    for (Addr v = 0; v < pages; ++v)
        tlb.insert(v, 1, static_cast<Frame>(v + 1), who);
    Rng rng(3);
    std::vector<Addr> vpns(4096);
    for (Addr &v : vpns)
        v = rng.below(pages);
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(tlb.lookup(vpns[i], 1, who));
        i = (i + 1) & (vpns.size() - 1);
    }
    state.SetItemsProcessed(state.iterations());
}

void
BM_AddrSpaceTranslate(benchmark::State &state)
{
    PhysMem mem;
    AddrSpace sp(1, mem);
    constexpr Addr pages = 512;
    for (Addr v = 0; v < pages; ++v)
        sp.mapNew(v);
    Rng rng(4);
    std::vector<Addr> vpns(4096);
    for (Addr &v : vpns)
        v = rng.below(pages);
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(sp.translate(vpns[i]));
        i = (i + 1) & (vpns.size() - 1);
    }
    state.SetItemsProcessed(state.iterations());
}

void
BM_PredictorTrain(benchmark::State &state)
{
    McFarling m;
    Rng rng(2);
    Addr pc = 0x1000;
    for (auto _ : state) {
        const bool taken = rng.chance(0.6);
        benchmark::DoNotOptimize(m.predict(pc));
        m.train(pc, taken);
        pc = 0x1000 + (rng.below(512) << 2);
    }
    state.SetItemsProcessed(state.iterations());
}

} // namespace

BENCHMARK(BM_SimRate_SpecIntSmt)->Arg(200000)->Unit(
    benchmark::kMillisecond);
BENCHMARK(BM_SimRate_ApacheSmt)->Arg(200000)->Unit(
    benchmark::kMillisecond);
BENCHMARK(BM_SimRate_SpecIntFunctional)->Arg(1000000)->Unit(
    benchmark::kMillisecond);
BENCHMARK(BM_SimRate_ApacheFunctional)->Arg(1000000)->Unit(
    benchmark::kMillisecond);
BENCHMARK(BM_SimRate_SpecIntSampled)->Arg(1000000)->Unit(
    benchmark::kMillisecond);
BENCHMARK(BM_CacheAccess);
BENCHMARK(BM_PredictorTrain);
BENCHMARK(BM_FixedRing);
BENCHMARK(BM_TlbLookup);
BENCHMARK(BM_AddrSpaceTranslate);

BENCHMARK_MAIN();
