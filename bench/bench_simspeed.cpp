/**
 * @file
 * Google-benchmark microbenchmarks of the simulator itself:
 * simulation rate (simulated instructions per host second) for each
 * workload/configuration, plus core substrate hot paths.
 */

#include <benchmark/benchmark.h>

#include "bp/mcfarling.h"
#include "harness/experiment.h"
#include "mem/cache.h"

using namespace smtos;

namespace {

void
BM_SimRate_SpecIntSmt(benchmark::State &state)
{
    for (auto _ : state) {
        RunSpec s;
        s.workload = RunSpec::Workload::SpecInt;
        s.spec.inputChunks = 8;
        s.startupInstrs = 50'000;
        s.measureInstrs = static_cast<std::uint64_t>(state.range(0));
        RunResult r = runExperiment(s);
        benchmark::DoNotOptimize(r.steady.core.cycles);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}

void
BM_SimRate_ApacheSmt(benchmark::State &state)
{
    for (auto _ : state) {
        RunSpec s;
        s.workload = RunSpec::Workload::Apache;
        s.startupInstrs = 50'000;
        s.measureInstrs = static_cast<std::uint64_t>(state.range(0));
        RunResult r = runExperiment(s);
        benchmark::DoNotOptimize(r.steady.core.cycles);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}

void
BM_CacheAccess(benchmark::State &state)
{
    Cache c(CacheParams{});
    AccessInfo who{1, Mode::User, 0};
    Rng rng(1);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            c.access(rng.below(1 << 22) & ~7ull, who, false));
    }
    state.SetItemsProcessed(state.iterations());
}

void
BM_PredictorTrain(benchmark::State &state)
{
    McFarling m;
    Rng rng(2);
    Addr pc = 0x1000;
    for (auto _ : state) {
        const bool taken = rng.chance(0.6);
        benchmark::DoNotOptimize(m.predict(pc));
        m.train(pc, taken);
        pc = 0x1000 + (rng.below(512) << 2);
    }
    state.SetItemsProcessed(state.iterations());
}

} // namespace

BENCHMARK(BM_SimRate_SpecIntSmt)->Arg(200000)->Unit(
    benchmark::kMillisecond);
BENCHMARK(BM_SimRate_ApacheSmt)->Arg(200000)->Unit(
    benchmark::kMillisecond);
BENCHMARK(BM_CacheAccess);
BENCHMARK(BM_PredictorTrain);

BENCHMARK_MAIN();
