/**
 * @file
 * Table 4: architectural metrics for SPECInt95 with and without the
 * operating system, on the SMT and on the superscalar. The paper's
 * key finding: omitting the OS costs 5% IPC on SMT but 15% on the
 * superscalar, with the I-cache and L2 stressed several-fold.
 */

#include "bench_common.h"

#include "harness/parallel.h"

using namespace smtos;
using namespace smtos::bench;

namespace {

void
column(TextTable &t, const char *name, const ArchMetrics &a)
{
    t.row({name, TextTable::num(a.ipc, 2),
           TextTable::num(a.fetchableContexts, 2),
           TextTable::num(a.branchMispredPct, 1),
           TextTable::num(a.squashedPct, 1),
           TextTable::num(a.l1iMissPct, 2),
           TextTable::num(a.l1dMissPct, 2),
           TextTable::num(a.l2MissPct, 2),
           TextTable::num(a.itlbMissPct, 2),
           TextTable::num(a.dtlbMissPct, 2)});
}

} // namespace

int
main()
{
    banner("Table 4: SPECInt with and without the OS, SMT vs "
           "superscalar",
           "IPC drop from adding the OS: SMT -5%, superscalar -15%; "
           "I-cache miss rate up ~2x (SMT) and ~13x (superscalar)");

    Session::Config smt_os = specSmt();
    Session::Config smt_only = specSmt();
    smt_only.system.withOs = false;
    Session::Config ss_os = superscalar(specSmt());
    Session::Config ss_only = superscalar(specSmt());
    ss_only.system.withOs = false;

    const std::vector<RunResult> results =
        runSessions({smt_only, smt_os, ss_only, ss_os});
    const ArchMetrics a1 = archMetrics(results[0].steady);
    const ArchMetrics a2 = archMetrics(results[1].steady);
    const ArchMetrics a3 = archMetrics(results[2].steady);
    const ArchMetrics a4 = archMetrics(results[3].steady);

    TextTable t("SPECInt steady state");
    t.header({"config", "IPC", "fetchable ctxs", "br mispred %",
              "squashed %", "L1I miss %", "L1D miss %", "L2 miss %",
              "ITLB miss %", "DTLB miss %"});
    column(t, "SMT, SPEC only", a1);
    column(t, "SMT, SPEC+OS", a2);
    column(t, "superscalar, SPEC only", a3);
    column(t, "superscalar, SPEC+OS", a4);
    t.print();

    std::printf("\nIPC change from adding the OS: SMT %+.1f%%, "
                "superscalar %+.1f%%\n",
                100.0 * (a2.ipc - a1.ipc) / a1.ipc,
                100.0 * (a4.ipc - a3.ipc) / a3.ipc);
    return 0;
}
