/**
 * @file
 * Figure 5: kernel and user activity when Apache executes on the SMT
 * — little start-up, then >75% of cycles in the operating system.
 */

#include "bench_common.h"

using namespace smtos;
using namespace smtos::bench;

int
main()
{
    banner("Figure 5: Apache kernel/user cycle shares",
           "Apache spends >75% of its cycles in the kernel once "
           "requests arrive");

    Session::Config s = apacheSmt();
    s.phases.windowInstrs = 500'000;
    RunResult r = run(s);

    TextTable t("Apache on SMT: per-window mode shares");
    t.header({"window", "user %", "kernel %", "pal %", "idle %",
              "OS total %"});
    auto add = [&](const std::string &name,
                   const MetricsSnapshot &d) {
        const ModeShares m = modeShares(d);
        t.row({name, TextTable::num(m.userPct, 1),
               TextTable::num(m.kernelPct, 1),
               TextTable::num(m.palPct, 1),
               TextTable::num(m.idlePct, 1),
               TextTable::num(m.kernelPct + m.palPct, 1)});
    };
    add("ramp-up", r.startup);
    for (size_t i = 0; i < r.windows.size(); ++i)
        add("w" + std::to_string(i), r.windows[i]);
    t.print();
    std::printf("\nrequests served during measurement: %llu\n",
                static_cast<unsigned long long>(
                    r.steady.requestsServed));
    return 0;
}
