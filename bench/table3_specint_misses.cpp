/**
 * @file
 * Table 3: total miss rate and the distribution of miss causes in the
 * BTB, L1 caches, L2, and DTLB when simulating SPECInt95 plus the
 * operating system on SMT. Bold paper entries (kernel-induced
 * interference) correspond to the interthread/user-kernel rows here.
 */

#include "bench_common.h"

using namespace smtos;
using namespace smtos::bench;

int
main()
{
    banner("Table 3: SPECInt miss-cause distribution",
           "application-thread conflicts dominate all structures "
           "except the I-cache (60% kernel-induced); kernel BTB miss "
           "rate far above user");

    Session::Config s = specSmt();
    s.phases.measureInstrs = 2'500'000;
    RunResult r = run(s);
    // The paper's table covers the whole simulation: combine the
    // start-up and steady intervals by re-deriving from the sums.
    TextTable t("miss causes, % of all misses in the structure "
                "(columns: user refs, kernel refs)");
    t.header({"structure", "row", "user", "kernel"});
    missRows(t, "BTB", missBreakdown(r.steady.btb));
    missRows(t, "L1I", missBreakdown(r.steady.l1i));
    missRows(t, "L1D", missBreakdown(r.steady.l1d));
    missRows(t, "L2", missBreakdown(r.steady.l2));
    missRows(t, "DTLB", missBreakdown(r.steady.dtlb));
    t.print();
    return 0;
}
