/**
 * @file
 * Ablation: the 2.8 ICOUNT fetch scheme of [41] vs a single-context
 * fetch (1.8) and round-robin selection, on the Apache workload.
 * ICOUNT's bias toward least-occupying threads is what keeps the
 * shared queues balanced under OS-heavy execution.
 */

#include "bench_common.h"

using namespace smtos;
using namespace smtos::bench;

int
main()
{
    banner("Ablation: fetch policy (ICOUNT 2.8 vs 1.8 vs round-robin)",
           "design-choice sweep; the paper adopts ICOUNT 2.8 from "
           "prior SMT work");

    TextTable t("Apache on SMT, steady state");
    t.header({"fetch policy", "IPC", "0-fetch %", "squashed %",
              "fetchable ctxs"});
    auto add = [&](const char *name, Session::Config s) {
        const ArchMetrics a = archMetrics(run(s).steady);
        t.row({name, TextTable::num(a.ipc, 2),
               TextTable::num(a.zeroFetchPct, 1),
               TextTable::num(a.squashedPct, 1),
               TextTable::num(a.fetchableContexts, 2)});
    };
    Session::Config icount28 = apacheSmt();
    Session::Config icount18 = apacheSmt();
    icount18.system.fetchContexts = 1;
    Session::Config rr28 = apacheSmt();
    rr28.system.roundRobinFetch = true;
    add("ICOUNT 2.8", icount28);
    add("ICOUNT 1.8", icount18);
    add("round-robin 2.8", rr28);
    t.print();
    return 0;
}
