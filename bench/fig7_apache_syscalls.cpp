/**
 * @file
 * Figure 7: breakdown of execution time spent processing kernel
 * system calls for Apache — by syscall name (left chart) and grouped
 * by resource/operation (right chart). In the paper, stat is ~10% of
 * all cycles, read/write/writev ~19%, and network vs file services
 * are nearly balanced.
 */

#include "bench_common.h"

using namespace smtos;
using namespace smtos::bench;

int
main()
{
    banner("Figure 7: Apache system-call time",
           "stat ~10%, read/write/writev ~19%, network ~21% and file "
           "~18% of kernel cycles");

    RunResult r = run(apacheSmt());
    const MetricsSnapshot &d = r.steady;

    TextTable t("by system call, % of ALL execution cycles");
    t.header({"syscall / component", "% of all cycles"});
    auto add = [&](const char *name, double v) {
        t.row({name, TextTable::num(v, 2)});
    };
    add("read (file)", tagSharePct(d, TagRead));
    add("read (socket)", tagSharePct(d, TagReadSock));
    add("write", tagSharePct(d, TagWrite));
    add("writev (+proto out)", tagSharePct(d, TagWritev) +
                                   tagSharePct(d, TagNetProto));
    add("stat", tagSharePct(d, TagStat));
    add("open", tagSharePct(d, TagOpen));
    add("close", tagSharePct(d, TagClose));
    add("naccept", tagSharePct(d, TagAccept));
    add("select", tagSharePct(d, TagSelect));
    add("smmap/munmap", tagSharePct(d, TagMmap) +
                            tagSharePct(d, TagMunmap));
    add("kernel preamble", tagSharePct(d, TagSysPreamble));
    add("PAL code", tagSharePct(d, TagPalDtlb) +
                        tagSharePct(d, TagPalItlb));
    t.print();

    // Right-hand chart: by resource class.
    const double net = tagSharePct(d, TagReadSock) +
                       tagSharePct(d, TagWritev) +
                       tagSharePct(d, TagNetProto) +
                       tagSharePct(d, TagAccept) +
                       tagSharePct(d, TagSelect);
    const double file_rw = tagSharePct(d, TagRead) +
                           tagSharePct(d, TagWrite);
    const double file_inq = tagSharePct(d, TagStat);
    const double file_ctl = tagSharePct(d, TagOpen) +
                            tagSharePct(d, TagClose);
    TextTable g("by resource class, % of all cycles");
    g.header({"class", "% of all cycles"});
    g.row({"network (read/write/accept/select)",
           TextTable::num(net, 2)});
    g.row({"file read/write", TextTable::num(file_rw, 2)});
    g.row({"file inquiry (stat)", TextTable::num(file_inq, 2)});
    g.row({"file control (open/close)", TextTable::num(file_ctl, 2)});
    g.print();

    TextTable c("system-call entry counts");
    c.header({"syscall", "count"});
    for (const auto &kv : d.syscalls)
        c.row({kv.first, TextTable::num(kv.second)});
    c.print();
    return 0;
}
