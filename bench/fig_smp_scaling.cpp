/**
 * @file
 * CMP scale-out: Apache throughput versus core count on the
 * multicore built from the paper's SMT core (DESIGN.md §16).
 *
 * The paper stops at one 8-context SMT; this bench asks the obvious
 * follow-on question — what a chip multiprocessor of those cores
 * buys an OS-intensive server workload once the kernel is actually
 * SMP-scalable. Each point runs the same SPECWeb-like drive on
 * {1,2,4} cores x 4 contexts with the measurement window scaled by
 * the core count (equal per-core instruction budget, so every point
 * spans a comparable stretch of chip time). Reported per point:
 * served requests, requests per million chip cycles, chip IPC, and
 * where the scaling loss went — lock contention (conn table, mbuf
 * pool, per-core run-queue locks), work steals, shootdown IPIs, and
 * MESI coherence traffic, all from the per-core-indexed metrics
 * export.
 *
 * The headline numbers land in BENCH_simspeed.json under the
 * "smp-scaling" label (argv[1], "-" skips) and the full curve in a
 * standalone JSON for CI artifact upload (argv[2], default
 * "smp-scaling.json", "-" skips). Exits nonzero when throughput
 * fails to rise from 1 to 4 cores.
 */

#include "bench_common.h"

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

using namespace smtos;
using namespace smtos::bench;

namespace {

constexpr int coreCounts[] = {1, 2, 4};
constexpr int contextsPerCore = 4;
constexpr std::uint64_t measurePerCore = 2'500'000;

struct Point
{
    int cores = 0;
    std::uint64_t cycles = 0;
    std::uint64_t requests = 0;
    double reqPerMcycle = 0;
    double ipc = 0;
    std::uint64_t lockSpin = 0; ///< summed over the named locks
    std::uint64_t lockHold = 0;
    std::uint64_t steals = 0;
    std::uint64_t shootdownIpis = 0;
    std::uint64_t snoops = 0;
    std::uint64_t invalidations = 0;
    /** Per-core kernel lock-spin attribution (cores > 1). */
    std::vector<std::uint64_t> spinByCore;
};

Point
runPoint(int cores)
{
    Session::Config s = apacheSmt();
    s.system.topology.cores = cores;
    s.system.topology.contextsPerCore = contextsPerCore;
    s.phases.startupInstrs = 1'500'000;
    s.phases.measureInstrs =
        measurePerCore * static_cast<std::uint64_t>(cores);
    Session ses(s);
    const RunResult r = ses.run();
    const MetricsSnapshot &d = r.steady;

    Point p;
    p.cores = cores;
    p.cycles = d.core.cycles;
    p.requests = r.requestsServed;
    p.reqPerMcycle =
        1e6 * static_cast<double>(r.requestsServed) /
        static_cast<double>(d.core.cycles ? d.core.cycles : 1);
    p.ipc = archMetrics(d).ipc;
    p.lockSpin = d.smp.connLock.spinCycles +
                 d.smp.mbufLock.spinCycles +
                 d.smp.schedLock.spinCycles;
    p.lockHold = d.smp.connLock.holdCycles +
                 d.smp.mbufLock.holdCycles +
                 d.smp.schedLock.holdCycles;
    p.steals = d.smp.workSteals;
    p.shootdownIpis = d.smp.shootdownIpis;
    p.snoops = d.smp.coherence.snoopProbes;
    p.invalidations = d.smp.coherence.invalidations;
    for (const CoreSlice &c : d.cores)
        p.spinByCore.push_back(c.lockSpinCycles);
    return p;
}

void
writeCurve(const std::string &path, const std::vector<Point> &curve)
{
    if (path == "-")
        return;
    std::ofstream out(path);
    out << "{\n  \"contexts_per_core\": " << contextsPerCore
        << ",\n  \"measure_instrs_per_core\": " << measurePerCore
        << ",\n  \"points\": [\n";
    for (std::size_t i = 0; i < curve.size(); ++i) {
        const Point &p = curve[i];
        out << "    {\"cores\": " << p.cores
            << ", \"cycles\": " << p.cycles
            << ", \"requests\": " << p.requests
            << ", \"req_per_mcycle\": " << p.reqPerMcycle
            << ", \"ipc\": " << p.ipc
            << ", \"lock_spin_cycles\": " << p.lockSpin
            << ", \"lock_hold_cycles\": " << p.lockHold
            << ", \"work_steals\": " << p.steals
            << ", \"shootdown_ipis\": " << p.shootdownIpis
            << ", \"snoop_probes\": " << p.snoops
            << ", \"invalidations\": " << p.invalidations
            << ", \"lock_spin_by_core\": [";
        for (std::size_t c = 0; c < p.spinByCore.size(); ++c)
            out << (c ? "," : "") << p.spinByCore[c];
        out << "]}" << (i + 1 < curve.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    std::printf("curve written to %s\n", path.c_str());
}

void
record(const std::string &path, const std::vector<Point> &curve)
{
    std::string body;
    for (const Point &p : curve) {
        char line[256];
        std::snprintf(line, sizeof line,
                      "        \"cores_%d\": {\n"
                      "          \"req_per_mcycle\": %.2f,\n"
                      "          \"requests\": %llu,\n"
                      "          \"lock_spin_cycles\": %llu\n"
                      "        }%s\n",
                      p.cores, p.reqPerMcycle,
                      static_cast<unsigned long long>(p.requests),
                      static_cast<unsigned long long>(p.lockSpin),
                      &p == &curve.back() ? "" : ",");
        body += line;
    }
    recordEntry(path, "smp-scaling", body);
}

} // namespace

int
main(int argc, char **argv)
{
    banner("CMP scale-out: Apache throughput vs cores",
           "beyond the paper: the SMP kernel should convert extra "
           "SMT cores into served requests, with the scaling losses "
           "attributed to locks, shootdowns and coherence");

    std::vector<Point> curve;
    for (int cores : coreCounts)
        curve.push_back(runPoint(cores));

    TextTable t("Apache steady state vs cores (4 contexts/core)");
    t.header({"cores", "req/Mcyc", "requests", "IPC", "lock spin",
              "steals", "shootdown IPIs", "snoops"});
    for (const Point &p : curve) {
        t.row({TextTable::num(static_cast<std::uint64_t>(p.cores)),
               TextTable::num(p.reqPerMcycle, 2),
               TextTable::num(p.requests),
               TextTable::num(p.ipc, 2),
               TextTable::num(p.lockSpin),
               TextTable::num(p.steals),
               TextTable::num(p.shootdownIpis),
               TextTable::num(p.snoops)});
    }
    t.print();

    for (const Point &p : curve) {
        if (p.spinByCore.empty())
            continue;
        std::printf("cores=%d lock-spin by core:", p.cores);
        for (std::size_t c = 0; c < p.spinByCore.size(); ++c)
            std::printf(" core%zu=%llu", c,
                        static_cast<unsigned long long>(
                            p.spinByCore[c]));
        std::printf("\n");
    }

    writeCurve(argc > 2 ? argv[2] : "smp-scaling.json", curve);
    record(argc > 1 ? argv[1] : "BENCH_simspeed.json", curve);

    // The claim under test: more cores serve more requests, both in
    // absolute terms over the scaled window and per chip cycle
    // across the full sweep.
    const Point &one = curve.front();
    const Point &four = curve.back();
    if (four.requests <= one.requests ||
        four.reqPerMcycle <= one.reqPerMcycle) {
        std::fprintf(stderr,
                     "FAIL: throughput did not rise 1 -> 4 cores "
                     "(%.2f -> %.2f req/Mcyc, %llu -> %llu served)\n",
                     one.reqPerMcycle, four.reqPerMcycle,
                     static_cast<unsigned long long>(one.requests),
                     static_cast<unsigned long long>(four.requests));
        return 1;
    }
    for (std::size_t i = 1; i < curve.size(); ++i) {
        if (curve[i].requests <= curve[i - 1].requests) {
            std::fprintf(stderr,
                         "FAIL: served requests not monotone at "
                         "%d cores\n", curve[i].cores);
            return 1;
        }
    }
    std::printf("\nOK: throughput rises 1 -> 4 cores "
                "(%.2f -> %.2f req/Mcyc)\n",
                one.reqPerMcycle, four.reqPerMcycle);
    return 0;
}
