/**
 * @file
 * Table 9: the OS's impact on specific hardware structures while
 * executing Apache. Following the paper's methodology footnote,
 * "Apache only" is measured by omitting operating-system references
 * to the measured components (the simulator cannot run Apache without
 * OS code at all).
 */

#include "bench_common.h"

using namespace smtos;
using namespace smtos::bench;

namespace {

struct Row
{
    double bp, btb, l1i, l1d, l2;
};

Row
measure(bool smt, bool filtered)
{
    Session::Config s = apacheSmt();
    if (!smt)
        s = superscalar(apacheSmt());
    s.system.filterKernelRefs = filtered;
    const MetricsSnapshot d = run(s).steady;
    const ArchMetrics a = archMetrics(d);
    Row r;
    r.bp = a.branchMispredPct;
    r.btb = a.btbMissPct;
    r.l1i = a.l1iMissPct;
    r.l1d = a.l1dMissPct;
    r.l2 = a.l2MissPct;
    return r;
}

} // namespace

int
main()
{
    banner("Table 9: OS impact on hardware structures (Apache)",
           "adding OS references: branch mispred ~2x, I$ ~5.5x (SMT) "
           "/ 3.6x (superscalar), D$ +35%, L2 ~3.5x");

    const Row smt_only = measure(true, true);
    const Row smt_full = measure(true, false);
    const Row ss_only = measure(false, true);
    const Row ss_full = measure(false, false);

    TextTable t("miss/mispredict rates (%)");
    t.header({"metric", "SMT Apache-only", "SMT Apache+OS",
              "SS Apache-only", "SS Apache+OS"});
    auto add = [&](const char *name, double a, double b, double c,
                   double d) {
        t.row({name, TextTable::num(a, 2), TextTable::num(b, 2),
               TextTable::num(c, 2), TextTable::num(d, 2)});
    };
    add("branch mispredict", smt_only.bp, smt_full.bp, ss_only.bp,
        ss_full.bp);
    add("BTB miss", smt_only.btb, smt_full.btb, ss_only.btb,
        ss_full.btb);
    add("L1 Icache miss", smt_only.l1i, smt_full.l1i, ss_only.l1i,
        ss_full.l1i);
    add("L1 Dcache miss", smt_only.l1d, smt_full.l1d, ss_only.l1d,
        ss_full.l1d);
    add("L2 miss", smt_only.l2, smt_full.l2, ss_only.l2, ss_full.l2);
    t.print();
    return 0;
}
