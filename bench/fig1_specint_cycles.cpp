/**
 * @file
 * Figure 1: breakdown of execution cycles (user/kernel/PAL/idle) over
 * time when SPECInt95 executes on the SMT — high OS share during
 * program start-up, dropping to a steady ~5%.
 */

#include "bench_common.h"

using namespace smtos;
using namespace smtos::bench;

int
main()
{
    banner("Figure 1: SPECInt cycle breakdown over time",
           "start-up ~18% OS, steady state ~5% OS");

    Session::Config s = specSmt();
    s.phases.measureInstrs = 2'400'000;
    s.phases.windowInstrs = 300'000;
    RunResult r = run(s);

    TextTable t("SPECInt95 on SMT: per-window mode shares");
    t.header({"window", "phase", "user %", "kernel %", "pal %",
              "idle %", "OS total %"});
    auto add = [&](const std::string &name, const char *phase,
                   const MetricsSnapshot &d) {
        const ModeShares m = modeShares(d);
        t.row({name, phase, TextTable::num(m.userPct, 1),
               TextTable::num(m.kernelPct, 1),
               TextTable::num(m.palPct, 1),
               TextTable::num(m.idlePct, 1),
               TextTable::num(m.kernelPct + m.palPct, 1)});
    };
    add("start-up", "start-up", r.startup);
    for (size_t i = 0; i < r.windows.size(); ++i)
        add("w" + std::to_string(i), "steady", r.windows[i]);
    t.print();
    return 0;
}
