/**
 * @file
 * Shared presets and helpers for the table/figure regeneration
 * benches. Every bench prints the paper's rows/series from a live
 * simulation; EXPERIMENTS.md records paper-vs-measured.
 *
 * Scale note: the paper simulated 0.65-1B+ instructions on SimOS; the
 * benches default to a few million (laptop scale), which preserves the
 * shape claims but not absolute magnitudes.
 */

#ifndef SMTOS_BENCH_COMMON_H
#define SMTOS_BENCH_COMMON_H

#include <cstdio>
#include <string>

#include "common/table.h"
#include "harness/parallel.h"
#include "harness/session.h"
#include "kernel/tags.h"

namespace smtos::bench {

/** SPECInt multiprogram on the 8-context SMT. */
inline Session::Config
specSmt()
{
    Session::Config c;
    c.workload.kind = WorkloadConfig::Kind::SpecInt;
    c.workload.spec.inputChunks = 48;
    c.phases.measureInstrs = 2'000'000;
    return c;
}

/** Apache under SPECWeb-like load on the 8-context SMT. */
inline Session::Config
apacheSmt()
{
    Session::Config c;
    c.workload.kind = WorkloadConfig::Kind::Apache;
    c.phases.startupInstrs = 2'000'000;
    c.phases.measureInstrs = 2'500'000;
    return c;
}

/** Superscalar variants (slower: shorter measurement). */
inline Session::Config
superscalar(Session::Config c)
{
    c.system.smt = false;
    c.phases.measureInstrs = 1'200'000;
    if (c.workload.kind == WorkloadConfig::Kind::Apache)
        c.phases.startupInstrs = 1'000'000;
    return c;
}

/** Build a Session for @p c and run both phases. */
inline RunResult
run(const Session::Config &c)
{
    return Session(c).run();
}

inline void
banner(const char *experiment, const char *paper_summary)
{
    std::printf("\n================================================"
                "=============\n");
    std::printf("smtos bench: %s\n", experiment);
    std::printf("paper reference: %s\n", paper_summary);
    std::printf("================================================"
                "=============\n");
}

/** Add a MissBreakdown's rows (user/kernel pair) to a table. */
inline void
missRows(TextTable &t, const char *structure, const MissBreakdown &b)
{
    auto pctOrDash = [](double v) { return TextTable::num(v, 1); };
    t.row({structure, "total miss rate", pctOrDash(b.totalMissRate[0]),
           pctOrDash(b.totalMissRate[1])});
    static const char *cause_names[numMissCauses] = {
        "compulsory", "intrathread", "interthread", "user-kernel",
        "invalidation by OS"};
    for (int k = 0; k < numMissCauses; ++k) {
        t.row({structure, cause_names[k],
               pctOrDash(b.causePct[0][k]),
               pctOrDash(b.causePct[1][k])});
    }
}

} // namespace smtos::bench

#endif // SMTOS_BENCH_COMMON_H
