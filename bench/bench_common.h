/**
 * @file
 * Shared presets and helpers for the table/figure regeneration
 * benches. Every bench prints the paper's rows/series from a live
 * simulation; EXPERIMENTS.md records paper-vs-measured.
 *
 * Scale note: the paper simulated 0.65-1B+ instructions on SimOS; the
 * benches default to a few million (laptop scale), which preserves the
 * shape claims but not absolute magnitudes.
 */

#ifndef SMTOS_BENCH_COMMON_H
#define SMTOS_BENCH_COMMON_H

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "common/table.h"
#include "harness/parallel.h"
#include "harness/session.h"
#include "kernel/tags.h"

namespace smtos::bench {

/** SPECInt multiprogram on the 8-context SMT. */
inline Session::Config
specSmt()
{
    Session::Config c;
    c.workload.kind = WorkloadConfig::Kind::SpecInt;
    c.workload.spec.inputChunks = 48;
    c.phases.measureInstrs = 2'000'000;
    return c;
}

/** Apache under SPECWeb-like load on the 8-context SMT. */
inline Session::Config
apacheSmt()
{
    Session::Config c;
    c.workload.kind = WorkloadConfig::Kind::Apache;
    c.phases.startupInstrs = 2'000'000;
    c.phases.measureInstrs = 2'500'000;
    return c;
}

/** Superscalar variants (slower: shorter measurement). */
inline Session::Config
superscalar(Session::Config c)
{
    c.system.smt = false;
    c.phases.measureInstrs = 1'200'000;
    if (c.workload.kind == WorkloadConfig::Kind::Apache)
        c.phases.startupInstrs = 1'000'000;
    return c;
}

/** Build a Session for @p c and run both phases. */
inline RunResult
run(const Session::Config &c)
{
    return Session(c).run();
}

inline void
banner(const char *experiment, const char *paper_summary)
{
    std::printf("\n================================================"
                "=============\n");
    std::printf("smtos bench: %s\n", experiment);
    std::printf("paper reference: %s\n", paper_summary);
    std::printf("================================================"
                "=============\n");
}

/** Add a MissBreakdown's rows (user/kernel pair) to a table. */
inline void
missRows(TextTable &t, const char *structure, const MissBreakdown &b)
{
    auto pctOrDash = [](double v) { return TextTable::num(v, 1); };
    t.row({structure, "total miss rate", pctOrDash(b.totalMissRate[0]),
           pctOrDash(b.totalMissRate[1])});
    static const char *cause_names[numMissCauses] = {
        "compulsory", "intrathread", "interthread", "user-kernel",
        "invalidation by OS"};
    for (int k = 0; k < numMissCauses; ++k) {
        t.row({structure, cause_names[k],
               pctOrDash(b.causePct[0][k]),
               pctOrDash(b.causePct[1][k])});
    }
}

/**
 * Splice one labelled entry into BENCH_simspeed.json's "entries"
 * array, replacing any previous entry with the same label. The file
 * is our own flat format (see tools/simspeed_gate.py), so a textual
 * splice beats a parser: drop the old entry by brace counting, insert
 * before the final ']'. @p benchmarksJson is the body of the entry's
 * "benchmarks" object, indented eight spaces, newline-terminated. A
 * @p path of "-" skips the record.
 */
inline void
recordEntry(const std::string &path, const std::string &label,
            const std::string &benchmarksJson)
{
    if (path == "-")
        return;
    std::string text;
    {
        std::ifstream in(path);
        if (in) {
            std::stringstream ss;
            ss << in.rdbuf();
            text = ss.str();
        }
    }
    if (text.empty())
        text = "{\n  \"entries\": [\n  ]\n}\n";

    const std::string tag = "\"label\": \"" + label + "\"";
    std::size_t at = text.find(tag);
    if (at != std::string::npos) {
        std::size_t open = text.rfind('{', at);
        std::size_t close = open, depth = 0;
        for (std::size_t i = open; i < text.size(); ++i) {
            if (text[i] == '{')
                ++depth;
            else if (text[i] == '}' && --depth == 0) {
                close = i;
                break;
            }
        }
        // Also eat the separating comma, whichever side it is on.
        std::size_t from = text.find_last_not_of(" \n", open - 1);
        if (from != std::string::npos && text[from] == ',')
            open = from;
        else {
            std::size_t next = text.find_first_not_of(" \n", close + 1);
            if (next != std::string::npos && text[next] == ',')
                close = next;
        }
        text.erase(open, close - open + 1);
    }

    std::size_t end = text.rfind(']');
    if (end == std::string::npos) {
        std::fprintf(stderr, "recordEntry: %s is not the expected "
                     "format; not recording\n", path.c_str());
        return;
    }
    std::size_t last = text.find_last_not_of(" \n", end - 1);
    const bool haveSibling = last != std::string::npos &&
                             text[last] == '}';
    const std::string entry = std::string(haveSibling ? ",\n" : "") +
                              "    {\n      \"label\": \"" + label +
                              "\",\n      \"benchmarks\": {\n" +
                              benchmarksJson + "      }\n    }\n  ";
    text.insert(haveSibling ? last + 1 : end, entry);
    std::ofstream out(path);
    out << text;
}

} // namespace smtos::bench

#endif // SMTOS_BENCH_COMMON_H
