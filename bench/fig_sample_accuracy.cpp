/**
 * @file
 * Switchable-fidelity headline numbers (DESIGN.md §15): host-side
 * simulation rate of the functional (warming-only) engine vs the
 * detailed pipeline, and the sampled-vs-full accuracy curve.
 *
 * Stage 1 times the measurement phase of identical workloads at both
 * fidelities and gates the tentpole claim: the functional engine must
 * execute at >= 10x the detailed simulated-instructions-per-host-
 * second rate on both SpecInt and Apache. Stage 2 sweeps the SMARTS
 * sampling period and reports the sampled CPI error against a
 * full-detail reference run next to the sampled run's own confidence
 * interval. Headlines are recorded into BENCH_simspeed.json (argv[1],
 * "-" skips) with the units in the key names; the full curve goes to
 * a standalone JSON for CI artifact upload (argv[2], default
 * "sample-accuracy.json", "-" skips).
 */

#include "bench_common.h"

#include <cmath>
#include <ctime>
#include <cstdio>
#include <string>
#include <vector>

#include "harness/sample.h"

using namespace smtos;
using namespace smtos::bench;

namespace {

Session::Config
workloadConfig(WorkloadConfig::Kind kind)
{
    Session::Config c;
    c.workload.kind = kind;
    if (kind == WorkloadConfig::Kind::SpecInt)
        c.workload.spec.inputChunks = 8;
    c.phases.startupInstrs = 100'000;
    return c;
}

/** Process CPU seconds now (excludes time stolen by other processes,
 *  so the rate reflects the simulator, not host load). */
double
cpuSecondsNow()
{
    timespec ts{};
    clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
    return static_cast<double>(ts.tv_sec) +
           static_cast<double>(ts.tv_nsec) * 1e-9;
}

/** Host CPU seconds spent in one runMeasurement() of @p cfg. */
double
timeMeasurement(const Session::Config &cfg)
{
    Session s(cfg);
    s.runStartup();
    const double t0 = cpuSecondsNow();
    s.runMeasurement();
    return cpuSecondsNow() - t0;
}

struct RatePoint
{
    const char *name;
    double detailedRate = 0;   ///< simulated instr / host second
    double functionalRate = 0;
    double ratio = 0;
};

RatePoint
measureRates(WorkloadConfig::Kind kind, const char *name)
{
    RatePoint r;
    r.name = name;

    Session::Config det = workloadConfig(kind);
    det.phases.measureInstrs = 400'000;

    Session::Config fun = det;
    fun.fidelity = Fidelity::Functional;
    // More work at the faster fidelity, so the timed region dwarfs
    // clock granularity.
    fun.phases.measureInstrs = 4'000'000;

    // Interleave the repeats so both fidelities sample the same host
    // weather, and keep each mode's minimum: the best-of-N estimator
    // converges on the quiet-machine rate that the speedup claim is
    // about, instead of folding in whatever else the host was doing.
    double detSec = 0;
    double funSec = 0;
    for (int rep = 0; rep < 4; ++rep) {
        const double d = timeMeasurement(det);
        const double f = timeMeasurement(fun);
        if (rep == 0 || d < detSec)
            detSec = d;
        if (rep == 0 || f < funSec)
            funSec = f;
    }
    r.detailedRate =
        static_cast<double>(det.phases.measureInstrs) / detSec;
    r.functionalRate =
        static_cast<double>(fun.phases.measureInstrs) / funSec;

    r.ratio = r.functionalRate / r.detailedRate;
    return r;
}

struct AccuracyPoint
{
    const char *name;
    std::uint64_t period = 0;
    double fullCpi = 0;
    double sampledCpi = 0;
    double halfWidth = 0;
    double errPct = 0;         ///< |sampled - full| / full
    int intervals = 0;
    double detailedFrac = 0;   ///< detailed instrs / total instrs
};

std::vector<AccuracyPoint>
accuracyCurve(WorkloadConfig::Kind kind, const char *name)
{
    Session::Config base = workloadConfig(kind);
    base.phases.measureInstrs = 600'000;

    Session full(base);
    const RunResult fr = full.run();
    const double fullCpi =
        static_cast<double>(fr.steady.core.cycles) /
        static_cast<double>(fr.steady.core.totalRetired());

    std::vector<AccuracyPoint> curve;
    for (const std::uint64_t period :
         {10'000ull, 20'000ull, 40'000ull, 80'000ull}) {
        Session::Config sc = base;
        sc.sample.enabled = true;
        sc.sample.periodInstrs = period;
        sc.sample.warmInstrs = 2'500;
        sc.sample.intervalInstrs = 2'500;
        Session s(sc);
        const RunResult rr = s.run();
        AccuracyPoint p;
        p.name = name;
        p.period = period;
        p.fullCpi = fullCpi;
        p.sampledCpi = rr.sample.cpi.mean;
        p.halfWidth = rr.sample.cpi.halfWidth;
        p.errPct = 100.0 * std::fabs(p.sampledCpi - fullCpi) / fullCpi;
        p.intervals = rr.sample.intervals;
        const double total = static_cast<double>(
            rr.sample.functionalInstrs + rr.sample.detailedInstrs);
        p.detailedFrac =
            total > 0
                ? static_cast<double>(rr.sample.detailedInstrs) / total
                : 0.0;
        curve.push_back(p);
    }
    return curve;
}

} // namespace

int
main(int argc, char **argv)
{
    banner("Functional-mode rate and sampled accuracy",
           "SMARTS-style sampling over the switchable-fidelity core: "
           "warming-only fast-forward, detailed measured intervals");

    // Stage 1 — the host-side rate claim.
    const RatePoint rates[] = {
        measureRates(WorkloadConfig::Kind::SpecInt, "SpecInt"),
        measureRates(WorkloadConfig::Kind::Apache, "Apache"),
    };
    TextTable rt("Simulation rate by fidelity (simulated instr/s)");
    rt.header({"workload", "detailed instr/s", "functional instr/s",
               "speedup"});
    for (const RatePoint &r : rates)
        rt.row({r.name, TextTable::num(r.detailedRate, 0),
                TextTable::num(r.functionalRate, 0),
                TextTable::num(r.ratio, 1)});
    rt.print();

    // Stage 2 — the accuracy curve.
    std::vector<AccuracyPoint> curve =
        accuracyCurve(WorkloadConfig::Kind::SpecInt, "SpecInt");
    {
        std::vector<AccuracyPoint> ap =
            accuracyCurve(WorkloadConfig::Kind::Apache, "Apache");
        curve.insert(curve.end(), ap.begin(), ap.end());
    }
    TextTable at("Sampled CPI vs full-detail reference");
    at.header({"workload", "period", "full CPI", "sampled CPI",
               "ci half-width", "err %", "intervals",
               "detailed frac"});
    for (const AccuracyPoint &p : curve)
        at.row({p.name, TextTable::num(p.period),
                TextTable::num(p.fullCpi, 3),
                TextTable::num(p.sampledCpi, 3),
                TextTable::num(p.halfWidth, 3),
                TextTable::num(p.errPct, 1),
                TextTable::num(static_cast<std::uint64_t>(p.intervals)),
                TextTable::num(p.detailedFrac, 3)});
    at.print();

    // Record the headlines; every key carries its unit.
    {
        char body[1024];
        double worstErr = 0;
        for (const AccuracyPoint &p : curve)
            worstErr = std::max(worstErr, p.errPct);
        std::snprintf(
            body, sizeof body,
            "        \"functional_mode\": {\n"
            "          \"specint_detailed_instr_per_sec\": %.0f,\n"
            "          \"specint_functional_instr_per_sec\": %.0f,\n"
            "          \"specint_speedup_ratio\": %.1f,\n"
            "          \"apache_detailed_instr_per_sec\": %.0f,\n"
            "          \"apache_functional_instr_per_sec\": %.0f,\n"
            "          \"apache_speedup_ratio\": %.1f\n"
            "        }\n",
            rates[0].detailedRate, rates[0].functionalRate,
            rates[0].ratio, rates[1].detailedRate,
            rates[1].functionalRate, rates[1].ratio);
        recordEntry(argc > 1 ? argv[1] : "BENCH_simspeed.json",
                    "functional-mode", body);
        std::snprintf(
            body, sizeof body,
            "        \"sampled_accuracy\": {\n"
            "          \"periods_instrs\": [10000, 20000, 40000, "
            "80000],\n"
            "          \"worst_cpi_err_pct\": %.2f,\n"
            "          \"specint_err_pct_at_40k\": %.2f,\n"
            "          \"apache_err_pct_at_40k\": %.2f\n"
            "        }\n",
            worstErr, curve[2].errPct, curve[6].errPct);
        recordEntry(argc > 1 ? argv[1] : "BENCH_simspeed.json",
                    "sampled-accuracy", body);
    }

    // Full curve as a standalone CI artifact.
    const std::string curvePath =
        argc > 2 ? argv[2] : "sample-accuracy.json";
    if (curvePath != "-") {
        std::FILE *f = std::fopen(curvePath.c_str(), "w");
        if (f) {
            std::fprintf(f, "{\n  \"rates\": [\n");
            for (std::size_t i = 0; i < 2; ++i)
                std::fprintf(
                    f,
                    "    {\"workload\": \"%s\", "
                    "\"detailed_instr_per_sec\": %.0f, "
                    "\"functional_instr_per_sec\": %.0f, "
                    "\"speedup_ratio\": %.1f}%s\n",
                    rates[i].name, rates[i].detailedRate,
                    rates[i].functionalRate, rates[i].ratio,
                    i == 0 ? "," : "");
            std::fprintf(f, "  ],\n  \"accuracy\": [\n");
            for (std::size_t i = 0; i < curve.size(); ++i) {
                const AccuracyPoint &p = curve[i];
                std::fprintf(
                    f,
                    "    {\"workload\": \"%s\", "
                    "\"period_instrs\": %llu, \"full_cpi\": %.4f, "
                    "\"sampled_cpi\": %.4f, "
                    "\"ci_half_width\": %.4f, \"err_pct\": %.2f, "
                    "\"intervals\": %d, \"detailed_frac\": %.4f}%s\n",
                    p.name,
                    static_cast<unsigned long long>(p.period),
                    p.fullCpi, p.sampledCpi, p.halfWidth, p.errPct,
                    p.intervals, p.detailedFrac,
                    i + 1 < curve.size() ? "," : "");
            }
            std::fprintf(f, "  ]\n}\n");
            std::fclose(f);
            std::printf("curve written to %s\n", curvePath.c_str());
        }
    }

    // Gate the tentpole claim last, after everything is recorded.
    bool ok = true;
    for (const RatePoint &r : rates) {
        if (r.ratio < 10.0) {
            std::printf("FAIL: functional %s rate is only %.1fx "
                        "detailed (need >= 10x)\n", r.name, r.ratio);
            ok = false;
        }
    }
    if (ok)
        std::printf("\nOK: functional engine >= 10x detailed rate on "
                    "both workloads\n");
    return ok ? 0 : 1;
}
