/**
 * @file
 * Table 8: percentage of misses avoided due to interthread
 * cooperation (constructive sharing) in Apache, by execution mode,
 * on SMT vs the superscalar. The paper: kernel-kernel prefetching
 * would have added 66% more I-cache misses on SMT but only 28% on
 * the superscalar.
 */

#include "bench_common.h"

using namespace smtos;
using namespace smtos::bench;

namespace {

void
sharingTable(const char *title, const MetricsSnapshot &d)
{
    TextTable t(title);
    t.header({"structure", "mode that would have missed",
              "saved by user fill", "saved by kernel fill"});
    auto add = [&](const char *s, const InterferenceStats &is) {
        const SharingBreakdown b = sharingBreakdown(is);
        t.row({s, "user", TextTable::num(b.avoidedPct[0][0], 1),
               TextTable::num(b.avoidedPct[0][1], 1)});
        t.row({s, "kernel", TextTable::num(b.avoidedPct[1][0], 1),
               TextTable::num(b.avoidedPct[1][1], 1)});
    };
    add("L1I", d.l1i);
    add("L1D", d.l1d);
    add("L2", d.l2);
    add("DTLB", d.dtlb);
    t.print();
}

} // namespace

int
main()
{
    banner("Table 8: misses avoided by interthread cooperation",
           "kernel-kernel prefetch avoidance on SMT: I$ 66%, L2 71%, "
           "DTLB 12%; much weaker on the superscalar");

    RunResult smt = run(apacheSmt());
    RunResult ss = run(superscalar(apacheSmt()));

    sharingTable("Apache on SMT (% of the structure's misses)",
                 smt.steady);
    sharingTable("Apache on superscalar (% of the structure's misses)",
                 ss.steady);
    return 0;
}
