/**
 * @file
 * Ablation: shared vs per-context TLB-miss IPRs.
 *
 * The paper's OS modification #2 replicated the internal processor
 * registers used to install TLB entries per hardware context,
 * removing a race and letting multiple contexts process TLB misses in
 * parallel. This bench runs the fault-heavy SPECInt start-up phase
 * both ways: with the paper's modified OS (parallel handlers) and
 * with the unmodified-SMP behavior (handlers serialize behind a spin
 * lock on the shared IPRs).
 */

#include "bench_common.h"

using namespace smtos;
using namespace smtos::bench;

int
main()
{
    banner("Ablation: per-context vs shared TLB-miss IPRs",
           "the paper's OS change #2; spin-waiting burned <1.2% of "
           "SPECInt cycles / <4.5% of Apache cycles in their runs");

    TextTable t("SPECInt start-up phase (fault-heavy)");
    t.header({"TLB IPRs", "IPC", "start-up cycles", "spin % of "
              "cycles", "lock spins"});
    auto add = [&](const char *name, bool shared) {
        Session::Config s = specSmt();
        s.system.sharedTlbIpr = shared;
        s.phases.measureInstrs = 400'000; // focus on the start-up interval
        RunResult r = run(s);
        const double spin = tagSharePct(r.startup, TagSpin);
        auto it = r.startup.mmEntries.find("tlb_lock_spin");
        const std::uint64_t spins =
            it == r.startup.mmEntries.end() ? 0 : it->second;
        t.row({name, TextTable::num(archMetrics(r.startup).ipc, 2),
               TextTable::num(r.startup.core.cycles),
               TextTable::num(spin, 2), TextTable::num(spins)});
    };
    add("per-context (paper's OS)", false);
    add("shared (unmodified SMP OS)", true);
    t.print();
    return 0;
}
