/**
 * @file
 * Figure 4: system calls as a percentage of total execution cycles
 * for SPECInt — file reads dominate during start-up (reading input
 * files), with small process-control components.
 */

#include "bench_common.h"

using namespace smtos;
using namespace smtos::bench;

int
main()
{
    banner("Figure 4: SPECInt system calls as % of execution cycles",
           "file reads ~3.5% of start-up cycles; preamble and process "
           "control fill most of the rest");

    RunResult r = run(specSmt());

    TextTable t("system-call time as % of all cycles");
    t.header({"service", "start-up %", "steady %"});
    for (int tag : {TagRead, TagSysPreamble, TagProcCtl, TagMmap,
                    TagMunmap, TagWrite, TagOpen, TagClose}) {
        t.row({serviceTagName(tag),
               TextTable::num(tagSharePct(r.startup, tag), 3),
               TextTable::num(tagSharePct(r.steady, tag), 3)});
    }

    TextTable c("system-call entry counts");
    c.header({"syscall", "start-up", "steady"});
    for (const char *key : {"read", "obreak", "smmap", "munmap"}) {
        auto get = [&](const MetricsSnapshot &d) {
            auto it = d.syscalls.find(key);
            return it == d.syscalls.end() ? std::uint64_t{0}
                                          : it->second;
        };
        c.row({key, TextTable::num(get(r.startup)),
               TextTable::num(get(r.steady))});
    }
    t.print();
    c.print();
    return 0;
}
