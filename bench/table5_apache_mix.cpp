/**
 * @file
 * Table 5: percentage of dynamic instructions by type when executing
 * Apache — about half of kernel memory references bypass the DTLB
 * (physical addresses), no floating point.
 */

#include "bench_common.h"

using namespace smtos;
using namespace smtos::bench;

int
main()
{
    banner("Table 5: Apache dynamic instruction mix",
           "kernel loads 19.9% (54% physical), stores 11.5% (40% "
           "physical), branches ~17.8%, FP 0");

    RunResult r = run(apacheSmt());
    const MixRow u = mixRow(r.steady, false);
    const MixRow k = mixRow(r.steady, true);

    TextTable t("Apache steady state");
    t.header({"instruction type", "user", "kernel"});
    auto row2 = [&](const char *name, double a, double b) {
        t.row({name, TextTable::num(a, 1), TextTable::num(b, 1)});
    };
    row2("load", u.loadPct, k.loadPct);
    row2("  (physical %)", u.loadPhysPct, k.loadPhysPct);
    row2("store", u.storePct, k.storePct);
    row2("  (physical %)", u.storePhysPct, k.storePhysPct);
    row2("branch", u.branchPct, k.branchPct);
    row2("  conditional (of branches)", u.condPct, k.condPct);
    row2("  (taken %)", u.condTakenPct, k.condTakenPct);
    row2("  unconditional", u.uncondPct, k.uncondPct);
    row2("  indirect jump", u.indirectPct, k.indirectPct);
    row2("  PAL call/return", u.palPct, k.palPct);
    row2("remaining integer", u.otherIntPct, k.otherIntPct);
    row2("floating point", u.fpPct, k.fpPct);
    t.print();
    return 0;
}
