/**
 * @file
 * Open-loop overload knee: goodput and tail latency as offered load
 * sweeps through and past the server's service capacity, with and
 * without kernel admission control.
 *
 * The paper's SPECWeb-like drive is closed-loop: 128 clients wait for
 * responses, so offered load politely tracks service capacity and the
 * server never sees overload. This bench decouples them: a Poisson
 * arrival process offers load at fixed multiples of the measured
 * capacity. Without protection, queueing delay crosses the client
 * retry timeout, retransmitted work burns service on responses nobody
 * consumes, and goodput collapses past the knee — and stays degraded
 * even below it: once a standing queue forms, each client's retry
 * doubles the effective arrival rate to at least capacity, so the
 * queue never drains (a metastable failure). With oldest-first
 * shedding (deadline below the retry timeout) the accept queue drops
 * exactly the requests whose clients are about to give up, the stale
 * backlog clears, and goodput stays flat at capacity.
 *
 * One closed-loop start-up snapshot feeds every operating point via
 * ResumeOptions overrides. Each point first runs an unmeasured settle
 * window under its open-loop/admission configuration — long enough for
 * the 128 carried-over closed-loop requests to complete, time out, or
 * be shed — then snapshots (the OVLD section carries the overload
 * config) and resumes that settled artifact with a fresh request
 * tracer for p50/p99/p999. The headline numbers are recorded into
 * BENCH_simspeed.json (argv[1], "-" skips) and the full curve into a
 * standalone JSON for CI artifact upload (argv[2], default
 * "overload-knee.json", "-" skips).
 */

#include "bench_common.h"

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "obs/reqtrace.h"
#include "obs/session.h"

using namespace smtos;
using namespace smtos::bench;

namespace {

constexpr double multiples[] = {0.5, 0.75, 1.0, 1.25, 1.5, 2.0};

/// Unmeasured instructions run under each point's configuration
/// before the measured window: spans the client abort lifetime
/// (2 x retryTimeout ~= 1.2 Mcycles), so the carried-over closed-loop
/// backlog is fully drained, timed out, or shed before measurement.
constexpr std::uint64_t settleInstrs = 6'000'000;

OpenLoopParams
openLoopAt(double ratePerMcycle)
{
    OpenLoopParams p;
    p.enabled = true;
    p.ratePerMcycle = ratePerMcycle;
    // Overload dynamics, scaled to the ~110 kcycle request service
    // time: clients retry once after ~5 service times and give up
    // after the second timeout, so sustained queueing past the
    // timeout turns into duplicated and abandoned service.
    p.retryTimeout = 600'000;
    p.maxRetries = 1;
    return p;
}

AdmitParams
shedPolicy()
{
    AdmitParams p;
    p.policy = AdmitPolicy::OldestFirst;
    p.queueCap = 16;
    // Shed before the client's 600k retry fires: whatever is older
    // than this has no patient client left.
    p.shedDeadline = 400'000;
    p.mbufAccounting = true;
    return p;
}

struct PointResult
{
    double offered = 0;       ///< arrivals per Mcycle (configured)
    bool shed = false;
    double goodputPerMcycle = 0;
    std::uint64_t arrivals = 0;
    std::uint64_t goodput = 0;
    std::uint64_t aborts = 0;
    std::uint64_t sheds = 0;  ///< admit drops + sheds, all policies
    double shedFraction = 0;  ///< shed+dropped / offered
    double p50 = 0, p99 = 0, p999 = 0;
};

PointResult
runPoint(const std::vector<std::uint8_t> &artifact,
         const RunPhases &phases, double rate, bool shed)
{
    // Settle: resume under this point's configuration, run past the
    // start-up transient, and snapshot. The OVLD section carries the
    // open-loop and admission parameters into the settled artifact.
    std::string err;
    std::vector<std::uint8_t> settled;
    {
        Session::ResumeOptions so;
        so.phases = phases;
        so.openLoop = openLoopAt(rate);
        if (shed)
            so.admit = shedPolicy();
        auto s = Session::resume(artifact, so, &err);
        if (!s)
            smtos_fatal("fig_overload_knee: settle resume failed: %s",
                        err.c_str());
        s->system().run(settleInstrs);
        settled = s->snapshot();
    }

    // Measure: a fresh tracer on the settled artifact sees only
    // steady-state spans; runMeasurement() deltas exclude the settle
    // window's counters.
    ObsConfig oc;
    oc.reqtrace = true;
    ObsSession obs(oc);
    Session::ResumeOptions opts;
    opts.phases = phases;
    opts.obs = &obs;
    auto s = Session::resume(settled, opts, &err);
    if (!s)
        smtos_fatal("fig_overload_knee: resume failed: %s",
                    err.c_str());
    const RunResult r = s->runMeasurement();

    PointResult pr;
    pr.offered = rate;
    pr.shed = shed;
    const OverloadStats &o = r.steady.overload;
    pr.arrivals = o.offeredArrivals;
    pr.goodput = o.goodput;
    pr.aborts = o.clientAborts;
    pr.sheds = o.admitShed + o.admitDropTail + o.admitRedDrops;
    pr.shedFraction =
        o.offeredArrivals
            ? static_cast<double>(pr.sheds) /
                  static_cast<double>(o.offeredArrivals)
            : 0.0;
    const double mcycles =
        static_cast<double>(r.steady.core.cycles) / 1e6;
    pr.goodputPerMcycle =
        mcycles > 0 ? static_cast<double>(o.goodput) / mcycles : 0.0;
    const Histogram &e2e = obs.reqtrace()->e2e();
    if (e2e.totalSamples() > 0) {
        pr.p50 = e2e.p50();
        pr.p99 = e2e.p99();
        pr.p999 = e2e.p999();
    }
    return pr;
}

std::string
cyc(double v)
{
    return v > 0 ? TextTable::num(v, 0) : "-";
}

} // namespace

int
main(int argc, char **argv)
{
    banner("Open-loop overload knee (Apache, admission control)",
           "offered load past saturation: goodput collapses "
           "unprotected, stays flat with oldest-first shedding");

    // One closed-loop start-up, shared by every operating point.
    Session::Config base = apacheSmt();
    base.phases.measureInstrs = 20'000'000;
    Session origin(base);
    origin.runStartup();
    const std::vector<std::uint8_t> artifact = origin.snapshot();

    // Stage 1 — measure service capacity: saturating offered load
    // with shedding keeps the server fully busy on fresh requests, so
    // delivered goodput *is* the capacity (the knee).
    const PointResult probe =
        runPoint(artifact, base.phases, 40.0, true);
    const double knee = probe.goodputPerMcycle;
    std::printf("\nmeasured service capacity (knee): %.1f "
                "requests/Mcycle\n\n", knee);
    if (knee <= 0)
        smtos_fatal("fig_overload_knee: capacity probe delivered "
                    "no goodput");

    // Stage 2 — the curve: offered load at fixed multiples of the
    // knee, each arm with and without protection.
    std::vector<PointResult> curve;
    for (const double m : multiples)
        for (const bool shed : {false, true})
            curve.push_back(
                runPoint(artifact, base.phases, m * knee, shed));

    TextTable t("Goodput and tail latency vs offered load");
    t.header({"offered/knee", "policy", "arrivals", "goodput/Mcyc",
              "shed frac", "aborts", "e2e p50", "e2e p99",
              "e2e p999"});
    for (std::size_t i = 0; i < curve.size(); ++i) {
        const PointResult &p = curve[i];
        t.row({TextTable::num(multiples[i / 2], 2),
               p.shed ? "oldest-first" : "none",
               TextTable::num(p.arrivals),
               TextTable::num(p.goodputPerMcycle, 1),
               TextTable::num(p.shedFraction, 3),
               TextTable::num(p.aborts), cyc(p.p50), cyc(p.p99),
               cyc(p.p999)});
    }
    t.print();

    // Headline: past the knee (>= 1.5x), shedding holds goodput near
    // its peak while the unprotected arm degrades.
    double shedPeak = 0, noshedPeak = 0;
    for (const PointResult &p : curve)
        (p.shed ? shedPeak : noshedPeak) =
            std::max(p.shed ? shedPeak : noshedPeak,
                     p.goodputPerMcycle);
    const PointResult &shedHigh = curve[curve.size() - 1];
    const PointResult &noshedHigh = curve[curve.size() - 2];
    const double shedRatio =
        shedPeak > 0 ? shedHigh.goodputPerMcycle / shedPeak : 0.0;
    const double noshedRatio =
        noshedPeak > 0 ? noshedHigh.goodputPerMcycle / noshedPeak
                       : 0.0;
    std::printf("\nat 2.0x knee: shed goodput %.1f%% of peak, "
                "unprotected %.1f%% of peak\n", 100.0 * shedRatio,
                100.0 * noshedRatio);

    // Record the headline into the bench ledger.
    {
        char body[512];
        std::snprintf(
            body, sizeof body,
            "        \"overload_knee\": {\n"
            "          \"knee_per_mcycle\": %.2f,\n"
            "          \"shed_peak_per_mcycle\": %.2f,\n"
            "          \"shed_at_2x_ratio\": %.4f,\n"
            "          \"noshed_at_2x_ratio\": %.4f,\n"
            "          \"shed_p999_at_2x\": %.0f,\n"
            "          \"noshed_p999_at_2x\": %.0f\n"
            "        }\n",
            knee, shedPeak, shedRatio, noshedRatio, shedHigh.p999,
            noshedHigh.p999);
        recordEntry(argc > 1 ? argv[1] : "BENCH_simspeed.json",
                    "overload-knee", body);
    }

    // Full curve as a standalone CI artifact.
    const std::string curvePath =
        argc > 2 ? argv[2] : "overload-knee.json";
    if (curvePath != "-") {
        std::FILE *f = std::fopen(curvePath.c_str(), "w");
        if (f) {
            std::fprintf(f,
                         "{\n  \"knee_per_mcycle\": %.2f,\n"
                         "  \"points\": [\n", knee);
            for (std::size_t i = 0; i < curve.size(); ++i) {
                const PointResult &p = curve[i];
                std::fprintf(
                    f,
                    "    {\"offered_per_mcycle\": %.2f, "
                    "\"multiple\": %.2f, \"policy\": \"%s\", "
                    "\"arrivals\": %llu, \"goodput\": %llu, "
                    "\"goodput_per_mcycle\": %.2f, "
                    "\"shed_fraction\": %.4f, \"aborts\": %llu, "
                    "\"p50\": %.0f, \"p99\": %.0f, \"p999\": %.0f}%s\n",
                    p.offered, multiples[i / 2],
                    p.shed ? "oldest-first" : "none",
                    static_cast<unsigned long long>(p.arrivals),
                    static_cast<unsigned long long>(p.goodput),
                    p.goodputPerMcycle, p.shedFraction,
                    static_cast<unsigned long long>(p.aborts), p.p50,
                    p.p99, p.p999,
                    i + 1 < curve.size() ? "," : "");
            }
            std::fprintf(f, "  ]\n}\n");
            std::fclose(f);
            std::printf("curve written to %s\n", curvePath.c_str());
        }
    }
    return 0;
}
