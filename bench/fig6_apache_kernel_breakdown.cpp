/**
 * @file
 * Figure 6: breakdown of kernel activity in Apache on the SMT,
 * compared with the start-up and steady-state phases of the SPECInt
 * workload — Apache is dominated by explicit syscalls plus
 * interrupt/netisr processing, not TLB handling.
 */

#include "bench_common.h"

using namespace smtos;
using namespace smtos::bench;

int
main()
{
    banner("Figure 6: Apache kernel-activity breakdown vs SPECInt",
           "Apache: 57% of kernel time in syscalls, 34% in "
           "interrupts+netisr, 13% DTLB; SPECInt: TLB handling "
           "dominates");

    RunResult ra = run(apacheSmt());
    RunResult rs = run(specSmt());

    const ModeShares ma = modeShares(ra.steady);
    const double os_a = ma.kernelPct + ma.palPct;

    TextTable t("kernel components, % of ALL execution cycles");
    t.header({"component", "Apache", "SPECInt start-up",
              "SPECInt steady"});
    for (ServiceGroup g :
         {ServiceGroup::Syscall, ServiceGroup::Interrupt,
          ServiceGroup::NetIsr, ServiceGroup::TlbHandling,
          ServiceGroup::Sched, ServiceGroup::Idle}) {
        t.row({serviceGroupName(g),
               TextTable::num(groupSharePct(ra.steady, g), 2),
               TextTable::num(groupSharePct(rs.startup, g), 2),
               TextTable::num(groupSharePct(rs.steady, g), 2)});
    }
    t.print();

    TextTable k("same components, % of KERNEL cycles (Apache)");
    k.header({"component", "% of kernel time"});
    for (ServiceGroup g :
         {ServiceGroup::Syscall, ServiceGroup::Interrupt,
          ServiceGroup::NetIsr, ServiceGroup::TlbHandling,
          ServiceGroup::Sched}) {
        k.row({serviceGroupName(g),
               TextTable::num(
                   100.0 * groupSharePct(ra.steady, g) / os_a, 1)});
    }
    k.print();
    return 0;
}
