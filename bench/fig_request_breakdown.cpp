/**
 * @file
 * Request latency breakdown: where an Apache request's cycles go —
 * queueing (NIC ring, accept queue, run queue) versus service (driver
 * and protocol input, server execution, response transmit) — as the
 * context count sweeps from the superscalar to the full 8-context
 * SMT. The paper argues SMT hides latency by overlapping threads;
 * the per-stage tail quantiles show which queues absorb the load.
 *
 * Built on the snapshot-sweep engine: each context count's start-up
 * runs once untraced, and the measurement point resumes with a
 * request tracer attached, so the spans cover steady state only.
 * Per-stage p50/p99/p999 at 8 contexts is recorded into
 * BENCH_simspeed.json (argv[1], default "BENCH_simspeed.json"; "-"
 * skips the record).
 */

#include "bench_common.h"

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "harness/sweep.h"
#include "obs/reqtrace.h"
#include "obs/session.h"

using namespace smtos;
using namespace smtos::bench;

namespace {

constexpr int counts[] = {1, 2, 4, 8};

Session::Config
baseFor(int n)
{
    Session::Config s = apacheSmt();
    s.system.topology.contextsPerCore = n;
    if (n == 1)
        s.phases.startupInstrs = 1'000'000;
    // End-to-end latency under full load runs north of a million
    // cycles, so the measurement window must be long enough for
    // requests issued (and first traced) inside it to also complete
    // inside it. Scale with the context count to hold the cycle
    // budget roughly constant; the low counts get a floor because
    // their per-request latency is the worst.
    s.phases.measureInstrs =
        n < 4 ? 4'000'000ull : 1'500'000ull * static_cast<unsigned>(n);
    return s;
}

std::string
q3(const Histogram &h)
{
    if (h.totalSamples() == 0)
        return "-";
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.0f/%.0f/%.0f", h.p50(), h.p99(),
                  h.p999());
    return buf;
}

/** Record the 8-context per-stage quantiles. */
void
record(const std::string &path, const RequestTracer &tr)
{
    std::string body;
    char line[160];
    const ReqTraceStats &st = tr.stats();
    std::uint64_t total = st.queueingCycles + st.serviceCycles;
    std::snprintf(line, sizeof line,
                  "        \"request_breakdown\": {\n"
                  "          \"contexts\": 8,\n"
                  "          \"completed_clean\": %llu,\n"
                  "          \"queueing_pct\": %.2f,\n",
                  static_cast<unsigned long long>(st.completedClean),
                  total ? 100.0 * static_cast<double>(st.queueingCycles) /
                              static_cast<double>(total)
                        : 0.0);
    body += line;
    for (int i = 0; i < numReqStages; ++i) {
        const Histogram &h = tr.stageHist(i);
        std::snprintf(line, sizeof line,
                      "          \"%s\": {\"p50\": %.0f, \"p99\": %.0f,"
                      " \"p999\": %.0f},\n",
                      reqStageName(i), h.p50(), h.p99(), h.p999());
        body += line;
    }
    const Histogram &e = tr.e2e();
    std::snprintf(line, sizeof line,
                  "          \"e2e\": {\"p50\": %.0f, \"p99\": %.0f,"
                  " \"p999\": %.0f}\n        }\n",
                  e.p50(), e.p99(), e.p999());
    body += line;
    recordEntry(path, "request-breakdown", body);
}

} // namespace

int
main(int argc, char **argv)
{
    banner("Request latency breakdown (Apache, traced)",
           "queueing-vs-service attribution across context counts; "
           "SMT should convert queueing cycles into overlapped service");

    // One group per context count (structural), one traced
    // measurement point each, resumed from the untraced start-up.
    std::vector<std::unique_ptr<ObsSession>> sessions;
    std::vector<SweepGroup> groups;
    for (int n : counts) {
        ObsConfig oc;
        oc.reqtrace = true;
        sessions.push_back(std::make_unique<ObsSession>(oc));
        SweepGroup g;
        g.base = baseFor(n);
        SweepPoint p;
        p.label = "ctx" + std::to_string(n) + "/traced";
        p.opts.phases = g.base.phases;
        p.opts.obs = sessions.back().get();
        g.points.push_back(p);
        groups.push_back(std::move(g));
    }
    const std::vector<std::vector<RunResult>> swept =
        runSweepGroups(groups);

    TextTable t("Queueing vs service share vs contexts");
    t.header({"contexts", "clean spans", "e2e p50", "queueing %",
              "service %"});
    for (std::size_t i = 0; i < std::size(counts); ++i) {
        const ReqTraceStats &st = sessions[i]->reqtrace()->stats();
        const std::uint64_t total =
            st.queueingCycles + st.serviceCycles;
        t.row({TextTable::num(static_cast<std::uint64_t>(counts[i])),
               TextTable::num(st.completedClean),
               TextTable::num(sessions[i]->reqtrace()->e2e().p50(), 0),
               total ? TextTable::percent(
                           100.0 *
                           static_cast<double>(st.queueingCycles) /
                           static_cast<double>(total))
                     : "-",
               total ? TextTable::percent(
                           100.0 *
                           static_cast<double>(st.serviceCycles) /
                           static_cast<double>(total))
                     : "-"});
    }
    t.print();

    TextTable s("Per-stage latency p50/p99/p999 (cycles)");
    {
        std::vector<std::string> hdr{"stage"};
        for (int n : counts)
            hdr.push_back("ctx" + std::to_string(n));
        s.header(hdr);
    }
    for (int st = 0; st < numReqStages; ++st) {
        std::vector<std::string> row{reqStageName(st)};
        for (std::size_t i = 0; i < std::size(counts); ++i)
            row.push_back(q3(sessions[i]->reqtrace()->stageHist(st)));
        s.row(row);
    }
    {
        std::vector<std::string> row{"e2e"};
        for (std::size_t i = 0; i < std::size(counts); ++i)
            row.push_back(q3(sessions[i]->reqtrace()->e2e()));
        s.row(row);
    }
    s.print();

    for (std::size_t i = 0; i < std::size(counts); ++i) {
        std::printf("ctx%d: served %llu requests, traced %llu, "
                    "clean %llu\n", counts[i],
                    static_cast<unsigned long long>(
                        swept[i][0].requestsServed),
                    static_cast<unsigned long long>(
                        sessions[i]->reqtrace()->stats().tracked),
                    static_cast<unsigned long long>(
                        sessions[i]->reqtrace()->stats().completedClean));
    }

    record(argc > 1 ? argv[1] : "BENCH_simspeed.json",
           *sessions.back()->reqtrace());
    return 0;
}
