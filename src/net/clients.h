/**
 * @file
 * SPECWeb96-like client population.
 *
 * 128 clients issue HTTP-like requests against a file set whose sizes
 * follow the SPECWeb96 class mix (35% under 1KB, 50% 1-10KB, 14%
 * 10-100KB, 1% 100KB-1MB). Clients run "outside" the simulated CPU,
 * exactly as the paper's separately simulated driver machines did:
 * their work costs no server cycles; they only produce and consume
 * packets at NIC-interrupt granularity.
 *
 * When a fault plan perturbs the link, the population runs a recovery
 * layer: each outstanding request carries a timeout; on expiry the
 * request is retransmitted with capped exponential backoff, and after
 * maxRetries the client gives up and returns to thinking. Responses
 * are matched against the client's current request sequence number so
 * a stale (delayed or duplicated) response cannot be credited to a
 * later request. The layer is off by default and enabled explicitly
 * via setRecovery(), so fault-free runs draw no extra RNG and remain
 * bit-identical to builds without it.
 *
 * Open-loop mode (setOpenLoop) replaces the closed-loop think-time
 * issue model with an arrival *process* decoupled from response
 * completion — the production-serving shape where offered load does
 * not politely wait for the server. Arrivals follow a Poisson,
 * bursty (on/off duty cycle), or ramp schedule at a configured rate;
 * each arrival claims an idle client port (arrivals finding none are
 * counted as overflows — the offered load exceeded even the port
 * capacity), may be a slow client that drains its response at a
 * bounded rate after the server finishes sending, and may be a
 * keep-alive (minimal request bytes). The arrival process draws from
 * its own seeded RNG stream, never the closed-loop RNG, and the
 * recovery timeout layer is armed automatically (with optionally
 * overridden timeout/retry knobs) because an open-loop world without
 * give-ups would deadlock every port at saturation. Off by default;
 * disabled runs draw no arrival RNG and stay bit-identical.
 */

#ifndef SMTOS_NET_CLIENTS_H
#define SMTOS_NET_CLIENTS_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "common/types.h"
#include "net/network.h"
#include "snap/fwd.h"

namespace smtos {

class Probes;

/** Client population configuration. */
struct SpecWebParams
{
    int numClients = 128;
    int numFiles = 120;          ///< distinct files in the file set
    Cycle thinkMean = 30000;     ///< mean think time between requests
    std::uint32_t requestBytesMin = 192;
    std::uint32_t requestBytesMax = 512;

    // --- recovery layer (active only when setRecovery(true)) ---
    Cycle retryTimeout = 400000; ///< base response timeout
    int maxRetries = 6;          ///< retransmits before giving up
};

/** Open-loop arrival schedules. */
enum class ArrivalKind { Poisson, Bursty, Ramp };

/** Open-loop load-generation configuration (WorkloadConfig::openLoop). */
struct OpenLoopParams
{
    bool enabled = false;
    ArrivalKind kind = ArrivalKind::Poisson;
    /** Offered load: mean arrivals per million cycles. */
    double ratePerMcycle = 0.0;
    // Bursty: rate multiplier during the on-phase of each period.
    double burstFactor = 4.0;
    double burstDuty = 0.25;       ///< fraction of the period bursting
    Cycle burstPeriod = 200000;
    // Ramp: rate scales from rampStartFactor to 1 over rampCycles.
    double rampStartFactor = 0.25;
    Cycle rampCycles = 1'000'000;
    /** Fraction of requests from slow clients that drain the response
     *  at slowDrainPerKb cycles per KB after the server sends it. */
    double slowPct = 0.0;
    Cycle slowDrainPerKb = 4000;
    /** Fraction of keep-alive requests (minimal request bytes). */
    double keepAlivePct = 0.0;
    /** Override SpecWebParams timeout/retry for overload dynamics;
     *  0 keeps the closed-loop defaults. */
    Cycle retryTimeout = 0;
    int maxRetries = 0;
    /** Seed for the arrival RNG stream (never the closed-loop RNG). */
    std::uint64_t seed = 0x09e41ULL;

    /** Parse "rate=4.0,kind=bursty,slowpct=0.1,..."; fatal on error. */
    static OpenLoopParams fromString(const std::string &s);
};

/** Deterministic size of a file (shared with the server's FS). */
std::uint32_t specWebFileBytes(int file_id);

/** Pick a file id with the SPECWeb96 class mix. */
int specWebPickFile(Rng &rng, int num_files);

/** The client population driving the Apache workload. */
class ClientPopulation
{
  public:
    ClientPopulation(const SpecWebParams &params, std::uint64_t seed);

    /**
     * Advance the population to @p now: emit due requests into the
     * network and consume any completed response bytes.
     */
    void tick(Cycle now, Network &net);

    /** Enable/disable the timeout-retransmit recovery layer. */
    void setRecovery(bool on) { recovery_ = on; }
    bool recoveryEnabled() const { return recovery_; }

    /**
     * Switch to (or reconfigure) open-loop arrival generation. Applies
     * the timeout/retry overrides, reseeds the arrival RNG, and starts
     * the arrival clock at the next tick — safe to call on a freshly
     * resumed population mid-flight.
     */
    void setOpenLoop(const OpenLoopParams &p);
    bool openLoopEnabled() const { return openLoop_.enabled; }
    const OpenLoopParams &openLoop() const { return openLoop_; }

    /** Observability hub (null in normal runs; never mutates us). */
    void setProbes(Probes *p) { probes_ = p; }

    std::uint64_t requestsIssued() const { return requestsIssued_; }
    std::uint64_t responsesCompleted() const { return responses_; }
    std::uint64_t retransmits() const { return retransmits_; }
    std::uint64_t aborts() const { return aborts_; }
    std::uint64_t retriedResponses() const { return retried_; }

    /**
     * Delivered work: completed responses, aborted sequences excluded.
     * Whenever aborts can happen (recovery or open-loop mode) the
     * stale-sequence filter is armed, so a response to an abandoned
     * sequence is never credited — responses_ is already goodput.
     * Overload curves must plot this, not the server's requestsServed,
     * which counts duplicate and abandoned service as delivered.
     */
    std::uint64_t goodput() const { return responses_; }

    // Open-loop accounting (all zero in closed-loop runs).
    std::uint64_t arrivals() const { return arrivals_; }
    std::uint64_t arrivalOverflows() const { return arrivalOverflows_; }
    std::uint64_t slowCompletions() const { return slowCompletions_; }

    /** First-try request completion latency (issue of the only
     *  transmission to final response byte), in cycles. */
    const Histogram &latency() const { return latency_; }

    /** Latency of requests that needed at least one retransmit —
     *  kept apart so backoff cycles don't pollute the tail. */
    const Histogram &retriedLatency() const { return retriedLatency_; }

    const SpecWebParams &params() const { return params_; }

    static constexpr std::uint32_t snapVersion = 2;
    void save(Snapshotter &sp) const;
    void load(Restorer &rs);

    /**
     * Open-loop side state, serialized only into the optional OVLD
     * snapshot section (the main save() bytes are part of the
     * bit-identity contract and never change).
     */
    void saveOpenLoop(Snapshotter &sp) const;
    void loadOpenLoop(Restorer &rs);

  private:
    struct Client
    {
        // Draining: a slow client whose response the server finished
        // sending but which the client consumes at a bounded rate;
        // the request completes (and samples latency) at drainDoneAt.
        // Only reachable in open-loop mode, so closed-loop snapshot
        // bytes never see the new enumerator.
        enum class State { Thinking, Waiting, Draining }
            state = State::Thinking;
        Cycle nextRequestAt = 0;
        std::uint64_t respRemaining = 0;
        // Recovery state.
        Packet lastRequest;
        Cycle issuedAt = 0;
        Cycle timeoutAt = 0;
        int retries = 0;
        std::uint32_t reqSeq = 0;
        // Open-loop state (OVLD section only).
        bool slow = false;
        Cycle drainDoneAt = 0;
    };

    SpecWebParams params_;
    Rng rng_;
    std::vector<Client> clients_;
    bool recovery_ = false;
    Probes *probes_ = nullptr;
    std::uint64_t requestsIssued_ = 0;
    std::uint64_t responses_ = 0;
    std::uint64_t retransmits_ = 0;
    std::uint64_t aborts_ = 0;
    std::uint64_t retried_ = 0;
    Histogram latency_;
    Histogram retriedLatency_;

    // Open-loop generator state (untouched in closed-loop runs).
    OpenLoopParams openLoop_;
    Rng arrivalRng_{0x09e41ULL};
    bool arrivalInit_ = false;
    Cycle nextArrivalAt_ = 0;
    Cycle rampStartAt_ = 0;
    int nextPort_ = 0;
    std::uint64_t arrivals_ = 0;
    std::uint64_t arrivalOverflows_ = 0;
    std::uint64_t slowCompletions_ = 0;

    Cycle drawThink(Cycle now);
    Cycle drawArrivalGap(Cycle at);
    void dispatchArrival(Cycle now, Network &net);
    void completeRequest(Client &c, int clientId, Cycle now);
};

} // namespace smtos

#endif // SMTOS_NET_CLIENTS_H
