/**
 * @file
 * SPECWeb96-like client population.
 *
 * 128 clients issue HTTP-like requests against a file set whose sizes
 * follow the SPECWeb96 class mix (35% under 1KB, 50% 1-10KB, 14%
 * 10-100KB, 1% 100KB-1MB). Clients run "outside" the simulated CPU,
 * exactly as the paper's separately simulated driver machines did:
 * their work costs no server cycles; they only produce and consume
 * packets at NIC-interrupt granularity.
 */

#ifndef SMTOS_NET_CLIENTS_H
#define SMTOS_NET_CLIENTS_H

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "net/network.h"

namespace smtos {

/** Client population configuration. */
struct SpecWebParams
{
    int numClients = 128;
    int numFiles = 120;          ///< distinct files in the file set
    Cycle thinkMean = 30000;     ///< mean think time between requests
    std::uint32_t requestBytesMin = 192;
    std::uint32_t requestBytesMax = 512;
};

/** Deterministic size of a file (shared with the server's FS). */
std::uint32_t specWebFileBytes(int file_id);

/** Pick a file id with the SPECWeb96 class mix. */
int specWebPickFile(Rng &rng, int num_files);

/** The client population driving the Apache workload. */
class ClientPopulation
{
  public:
    ClientPopulation(const SpecWebParams &params, std::uint64_t seed);

    /**
     * Advance the population to @p now: emit due requests into the
     * network and consume any completed response bytes.
     */
    void tick(Cycle now, Network &net);

    std::uint64_t requestsIssued() const { return requestsIssued_; }
    std::uint64_t responsesCompleted() const { return responses_; }

    const SpecWebParams &params() const { return params_; }

  private:
    struct Client
    {
        enum class State { Thinking, Waiting } state = State::Thinking;
        Cycle nextRequestAt = 0;
        std::uint64_t respRemaining = 0;
    };

    SpecWebParams params_;
    Rng rng_;
    std::vector<Client> clients_;
    std::uint64_t requestsIssued_ = 0;
    std::uint64_t responses_ = 0;
};

} // namespace smtos

#endif // SMTOS_NET_CLIENTS_H
