/**
 * @file
 * SPECWeb96-like client population.
 *
 * 128 clients issue HTTP-like requests against a file set whose sizes
 * follow the SPECWeb96 class mix (35% under 1KB, 50% 1-10KB, 14%
 * 10-100KB, 1% 100KB-1MB). Clients run "outside" the simulated CPU,
 * exactly as the paper's separately simulated driver machines did:
 * their work costs no server cycles; they only produce and consume
 * packets at NIC-interrupt granularity.
 *
 * When a fault plan perturbs the link, the population runs a recovery
 * layer: each outstanding request carries a timeout; on expiry the
 * request is retransmitted with capped exponential backoff, and after
 * maxRetries the client gives up and returns to thinking. Responses
 * are matched against the client's current request sequence number so
 * a stale (delayed or duplicated) response cannot be credited to a
 * later request. The layer is off by default and enabled explicitly
 * via setRecovery(), so fault-free runs draw no extra RNG and remain
 * bit-identical to builds without it.
 */

#ifndef SMTOS_NET_CLIENTS_H
#define SMTOS_NET_CLIENTS_H

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "common/types.h"
#include "net/network.h"
#include "snap/fwd.h"

namespace smtos {

class Probes;

/** Client population configuration. */
struct SpecWebParams
{
    int numClients = 128;
    int numFiles = 120;          ///< distinct files in the file set
    Cycle thinkMean = 30000;     ///< mean think time between requests
    std::uint32_t requestBytesMin = 192;
    std::uint32_t requestBytesMax = 512;

    // --- recovery layer (active only when setRecovery(true)) ---
    Cycle retryTimeout = 400000; ///< base response timeout
    int maxRetries = 6;          ///< retransmits before giving up
};

/** Deterministic size of a file (shared with the server's FS). */
std::uint32_t specWebFileBytes(int file_id);

/** Pick a file id with the SPECWeb96 class mix. */
int specWebPickFile(Rng &rng, int num_files);

/** The client population driving the Apache workload. */
class ClientPopulation
{
  public:
    ClientPopulation(const SpecWebParams &params, std::uint64_t seed);

    /**
     * Advance the population to @p now: emit due requests into the
     * network and consume any completed response bytes.
     */
    void tick(Cycle now, Network &net);

    /** Enable/disable the timeout-retransmit recovery layer. */
    void setRecovery(bool on) { recovery_ = on; }
    bool recoveryEnabled() const { return recovery_; }

    /** Observability hub (null in normal runs; never mutates us). */
    void setProbes(Probes *p) { probes_ = p; }

    std::uint64_t requestsIssued() const { return requestsIssued_; }
    std::uint64_t responsesCompleted() const { return responses_; }
    std::uint64_t retransmits() const { return retransmits_; }
    std::uint64_t aborts() const { return aborts_; }
    std::uint64_t retriedResponses() const { return retried_; }

    /** First-try request completion latency (issue of the only
     *  transmission to final response byte), in cycles. */
    const Histogram &latency() const { return latency_; }

    /** Latency of requests that needed at least one retransmit —
     *  kept apart so backoff cycles don't pollute the tail. */
    const Histogram &retriedLatency() const { return retriedLatency_; }

    const SpecWebParams &params() const { return params_; }

    static constexpr std::uint32_t snapVersion = 2;
    void save(Snapshotter &sp) const;
    void load(Restorer &rs);

  private:
    struct Client
    {
        enum class State { Thinking, Waiting } state = State::Thinking;
        Cycle nextRequestAt = 0;
        std::uint64_t respRemaining = 0;
        // Recovery state.
        Packet lastRequest;
        Cycle issuedAt = 0;
        Cycle timeoutAt = 0;
        int retries = 0;
        std::uint32_t reqSeq = 0;
    };

    SpecWebParams params_;
    Rng rng_;
    std::vector<Client> clients_;
    bool recovery_ = false;
    Probes *probes_ = nullptr;
    std::uint64_t requestsIssued_ = 0;
    std::uint64_t responses_ = 0;
    std::uint64_t retransmits_ = 0;
    std::uint64_t aborts_ = 0;
    std::uint64_t retried_ = 0;
    Histogram latency_;
    Histogram retriedLatency_;

    Cycle drawThink(Cycle now);
};

} // namespace smtos

#endif // SMTOS_NET_CLIENTS_H
