#include "net/clients.h"

#include <cmath>

#include "obs/probes.h"

namespace smtos {

std::uint32_t
specWebFileBytes(int file_id)
{
    // SPECWeb96 classes: files within a class step linearly through
    // nine sizes (0.1..0.9KB, 1..9KB, 10..90KB, 100..900KB).
    static const std::uint32_t base[4] = {102, 1024, 10240, 102400};
    const int cls = file_id & 3;
    const int step = 1 + (file_id >> 2) % 9;
    return base[cls] * static_cast<std::uint32_t>(step);
}

int
specWebPickFile(Rng &rng, int num_files)
{
    // Class access mix: 35% / 50% / 14% / 1%.
    const double u = rng.uniform();
    int cls;
    if (u < 0.35)
        cls = 0;
    else if (u < 0.85)
        cls = 1;
    else if (u < 0.99)
        cls = 2;
    else
        cls = 3;
    const int per_class = num_files / 4;
    const int idx = static_cast<int>(rng.below(
        static_cast<std::uint64_t>(per_class > 0 ? per_class : 1)));
    return idx * 4 + cls;
}

ClientPopulation::ClientPopulation(const SpecWebParams &params,
                                   std::uint64_t seed)
    : params_(params), rng_(seed),
      latency_(0, 4 * 1024 * 1024, 256),
      retriedLatency_(0, 4 * 1024 * 1024, 256)
{
    clients_.resize(static_cast<size_t>(params_.numClients));
    // Stagger the first requests so load ramps in smoothly.
    for (size_t i = 0; i < clients_.size(); ++i)
        clients_[i].nextRequestAt = rng_.below(params_.thinkMean + 1);
}

Cycle
ClientPopulation::drawThink(Cycle now)
{
    // Exponential-ish think time.
    const double u = rng_.uniform();
    const auto think = static_cast<Cycle>(
        -static_cast<double>(params_.thinkMean) *
        (u > 0.0001 ? std::log(u) : -9.0));
    return now + 1 + think;
}

void
ClientPopulation::tick(Cycle now, Network &net)
{
    // Consume response packets first.
    while (net.clientHasRx()) {
        Packet p = net.popClientRx();
        if (p.client < 0 ||
            p.client >= static_cast<int>(clients_.size()))
            continue;
        Client &c = clients_[static_cast<size_t>(p.client)];
        if (c.state != Client::State::Waiting)
            continue;
        // A stale response (delayed past a retransmit-then-abandon, or
        // duplicated by a retransmit race) must not be credited to the
        // client's current request.
        if (recovery_ && p.reqSeq != c.reqSeq)
            continue;
        if (c.respRemaining <= p.bytes || p.fin) {
            c.respRemaining = 0;
            c.state = Client::State::Thinking;
            c.nextRequestAt = drawThink(now);
            if (probes_)
                probes_->reqComplete(p.client, c.reqSeq,
                                     c.retries > 0, now);
            if (c.retries > 0) {
                retriedLatency_.sample(
                    static_cast<std::int64_t>(now - c.issuedAt));
                ++retried_;
            } else {
                latency_.sample(
                    static_cast<std::int64_t>(now - c.issuedAt));
            }
            ++responses_;
        } else {
            c.respRemaining -= p.bytes;
            // Forward progress re-arms the response timeout.
            if (recovery_)
                c.timeoutAt = now + params_.retryTimeout;
        }
    }

    // Issue due requests.
    for (size_t i = 0; i < clients_.size(); ++i) {
        Client &c = clients_[i];
        if (c.state != Client::State::Thinking ||
            c.nextRequestAt > now)
            continue;
        const int file = specWebPickFile(rng_, params_.numFiles);
        Packet p;
        p.client = static_cast<int>(i);
        p.open = true;
        p.fileId = file;
        p.bytes = static_cast<std::uint32_t>(
            rng_.range(params_.requestBytesMin, params_.requestBytesMax));
        p.reqSeq = ++c.reqSeq;
        net.clientSend(p);
        if (probes_)
            probes_->reqIssue(p.client, p.reqSeq, now);
        c.state = Client::State::Waiting;
        c.respRemaining = specWebFileBytes(file);
        c.lastRequest = p;
        c.issuedAt = now;
        c.timeoutAt = now + params_.retryTimeout;
        c.retries = 0;
        ++requestsIssued_;
    }

    if (!recovery_)
        return;

    // Timeout scan: retransmit with capped exponential backoff, give
    // up after maxRetries. Retransmits reuse the request verbatim
    // (same reqSeq), so a late original response still counts.
    for (Client &c : clients_) {
        if (c.state != Client::State::Waiting || c.timeoutAt > now)
            continue;
        if (c.retries < params_.maxRetries) {
            ++c.retries;
            const int shift = c.retries < 4 ? c.retries : 4;
            c.timeoutAt = now + (params_.retryTimeout << shift);
            // The server treats the retransmit as a fresh connection
            // open; any half-served prior attempt expects the full
            // file again.
            c.respRemaining = specWebFileBytes(c.lastRequest.fileId);
            net.clientSend(c.lastRequest);
            if (probes_)
                probes_->reqRetransmit(c.lastRequest.client, c.reqSeq,
                                       now);
            ++retransmits_;
        } else {
            c.state = Client::State::Thinking;
            c.respRemaining = 0;
            c.nextRequestAt = drawThink(now);
            if (probes_)
                probes_->reqAbort(c.lastRequest.client, c.reqSeq, now);
            ++aborts_;
        }
    }
}

} // namespace smtos
