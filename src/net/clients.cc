#include "net/clients.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <sstream>

#include "common/logging.h"
#include "obs/probes.h"

namespace smtos {

namespace {

double
parseDouble(const std::string &key, const std::string &v)
{
    char *end = nullptr;
    const double d = std::strtod(v.c_str(), &end);
    if (end == v.c_str() || *end != '\0')
        smtos_fatal("SMTOS_OPENLOOP: bad value '%s' for %s", v.c_str(),
                    key.c_str());
    return d;
}

std::uint64_t
parseU64(const std::string &key, const std::string &v)
{
    char *end = nullptr;
    const std::uint64_t u = std::strtoull(v.c_str(), &end, 0);
    if (end == v.c_str() || *end != '\0')
        smtos_fatal("SMTOS_OPENLOOP: bad value '%s' for %s", v.c_str(),
                    key.c_str());
    return u;
}

} // namespace

OpenLoopParams
OpenLoopParams::fromString(const std::string &spec)
{
    OpenLoopParams p;
    std::stringstream ss(spec);
    std::string item;
    while (std::getline(ss, item, ',')) {
        if (item.empty())
            continue;
        const auto eq = item.find('=');
        if (eq == std::string::npos)
            smtos_fatal("SMTOS_OPENLOOP: expected key=value, got '%s'",
                        item.c_str());
        const std::string key = item.substr(0, eq);
        const std::string val = item.substr(eq + 1);
        if (key == "rate") {
            p.ratePerMcycle = parseDouble(key, val);
        } else if (key == "kind") {
            if (val == "poisson")
                p.kind = ArrivalKind::Poisson;
            else if (val == "bursty")
                p.kind = ArrivalKind::Bursty;
            else if (val == "ramp")
                p.kind = ArrivalKind::Ramp;
            else
                smtos_fatal("SMTOS_OPENLOOP: unknown kind '%s'",
                            val.c_str());
        } else if (key == "burstfactor") {
            p.burstFactor = parseDouble(key, val);
        } else if (key == "burstduty") {
            p.burstDuty = parseDouble(key, val);
        } else if (key == "burstperiod") {
            p.burstPeriod = parseU64(key, val);
        } else if (key == "rampstart") {
            p.rampStartFactor = parseDouble(key, val);
        } else if (key == "rampcycles") {
            p.rampCycles = parseU64(key, val);
        } else if (key == "slowpct") {
            p.slowPct = parseDouble(key, val);
        } else if (key == "slowdrain") {
            p.slowDrainPerKb = parseU64(key, val);
        } else if (key == "keepalive") {
            p.keepAlivePct = parseDouble(key, val);
        } else if (key == "retry") {
            p.retryTimeout = parseU64(key, val);
        } else if (key == "maxretries") {
            p.maxRetries = static_cast<int>(parseU64(key, val));
        } else if (key == "seed") {
            p.seed = parseU64(key, val);
        } else {
            smtos_fatal("SMTOS_OPENLOOP: unknown key '%s'",
                        key.c_str());
        }
    }
    if (p.ratePerMcycle <= 0.0)
        smtos_fatal("SMTOS_OPENLOOP: rate must be > 0");
    p.enabled = true;
    return p;
}

std::uint32_t
specWebFileBytes(int file_id)
{
    // SPECWeb96 classes: files within a class step linearly through
    // nine sizes (0.1..0.9KB, 1..9KB, 10..90KB, 100..900KB).
    static const std::uint32_t base[4] = {102, 1024, 10240, 102400};
    const int cls = file_id & 3;
    const int step = 1 + (file_id >> 2) % 9;
    return base[cls] * static_cast<std::uint32_t>(step);
}

int
specWebPickFile(Rng &rng, int num_files)
{
    // Class access mix: 35% / 50% / 14% / 1%.
    const double u = rng.uniform();
    int cls;
    if (u < 0.35)
        cls = 0;
    else if (u < 0.85)
        cls = 1;
    else if (u < 0.99)
        cls = 2;
    else
        cls = 3;
    const int per_class = num_files / 4;
    const int idx = static_cast<int>(rng.below(
        static_cast<std::uint64_t>(per_class > 0 ? per_class : 1)));
    return idx * 4 + cls;
}

ClientPopulation::ClientPopulation(const SpecWebParams &params,
                                   std::uint64_t seed)
    : params_(params), rng_(seed),
      latency_(0, 4 * 1024 * 1024, 256),
      retriedLatency_(0, 4 * 1024 * 1024, 256)
{
    clients_.resize(static_cast<size_t>(params_.numClients));
    // Stagger the first requests so load ramps in smoothly.
    for (size_t i = 0; i < clients_.size(); ++i)
        clients_[i].nextRequestAt = rng_.below(params_.thinkMean + 1);
}

Cycle
ClientPopulation::drawThink(Cycle now)
{
    // Exponential-ish think time.
    const double u = rng_.uniform();
    const auto think = static_cast<Cycle>(
        -static_cast<double>(params_.thinkMean) *
        (u > 0.0001 ? std::log(u) : -9.0));
    return now + 1 + think;
}

void
ClientPopulation::setOpenLoop(const OpenLoopParams &p)
{
    openLoop_ = p;
    if (!p.enabled)
        return;
    // Overload dynamics knobs: the closed-loop defaults (400k timeout,
    // 6 retries) are tuned for fault recovery, not for short overload
    // measurement windows.
    if (p.retryTimeout > 0)
        params_.retryTimeout = p.retryTimeout;
    if (p.maxRetries > 0)
        params_.maxRetries = p.maxRetries;
    arrivalRng_ = Rng(p.seed);
    arrivalInit_ = false;
    nextArrivalAt_ = 0;
    rampStartAt_ = 0;
}

Cycle
ClientPopulation::drawArrivalGap(Cycle at)
{
    double factor = 1.0;
    switch (openLoop_.kind) {
      case ArrivalKind::Poisson:
        break;
      case ArrivalKind::Bursty: {
        const Cycle period = openLoop_.burstPeriod;
        const Cycle phase = period ? at % period : 0;
        if (static_cast<double>(phase) <
            openLoop_.burstDuty * static_cast<double>(period))
            factor = openLoop_.burstFactor;
        break;
      }
      case ArrivalKind::Ramp: {
        const double t =
            openLoop_.rampCycles
                ? std::min(1.0, static_cast<double>(at - rampStartAt_) /
                                    static_cast<double>(
                                        openLoop_.rampCycles))
                : 1.0;
        factor = openLoop_.rampStartFactor +
                 (1.0 - openLoop_.rampStartFactor) * t;
        break;
      }
    }
    const double rate = openLoop_.ratePerMcycle * factor;
    const double meanGap = 1e6 / (rate > 1e-9 ? rate : 1e-9);
    const double u = arrivalRng_.uniform();
    const auto gap = static_cast<Cycle>(
        -meanGap * (u > 0.0001 ? std::log(u) : -9.0));
    return gap > 0 ? gap : 1;
}

void
ClientPopulation::dispatchArrival(Cycle now, Network &net)
{
    // Claim an idle client port round-robin; an arrival finding none
    // means offered load exceeded even the port capacity.
    const int n = static_cast<int>(clients_.size());
    int port = -1;
    for (int k = 0; k < n; ++k) {
        const int cand = (nextPort_ + k) % n;
        if (clients_[static_cast<size_t>(cand)].state ==
            Client::State::Thinking) {
            port = cand;
            break;
        }
    }
    if (port < 0) {
        ++arrivalOverflows_;
        return;
    }
    nextPort_ = (port + 1) % n;
    Client &c = clients_[static_cast<size_t>(port)];
    const int file = specWebPickFile(arrivalRng_, params_.numFiles);
    // Conditional draws: a zero percentage costs zero RNG, so the
    // arrival schedule for (say) slowPct=0 matches a build without
    // the knob.
    const bool keepAlive =
        openLoop_.keepAlivePct > 0.0 &&
        arrivalRng_.uniform() < openLoop_.keepAlivePct;
    const bool slow = openLoop_.slowPct > 0.0 &&
                      arrivalRng_.uniform() < openLoop_.slowPct;
    Packet p;
    p.client = port;
    p.open = true;
    p.fileId = file;
    p.bytes = keepAlive
                  ? params_.requestBytesMin
                  : static_cast<std::uint32_t>(arrivalRng_.range(
                        params_.requestBytesMin,
                        params_.requestBytesMax));
    p.reqSeq = ++c.reqSeq;
    net.clientSend(p);
    if (probes_)
        probes_->reqIssue(p.client, p.reqSeq, now);
    c.state = Client::State::Waiting;
    c.respRemaining = specWebFileBytes(file);
    c.lastRequest = p;
    c.issuedAt = now;
    c.timeoutAt = now + params_.retryTimeout;
    c.retries = 0;
    c.slow = slow;
    c.drainDoneAt = 0;
    ++requestsIssued_;
}

void
ClientPopulation::completeRequest(Client &c, int clientId, Cycle now)
{
    c.respRemaining = 0;
    c.state = Client::State::Thinking;
    if (!openLoop_.enabled)
        c.nextRequestAt = drawThink(now);
    if (probes_)
        probes_->reqComplete(clientId, c.reqSeq, c.retries > 0, now);
    if (c.retries > 0) {
        retriedLatency_.sample(
            static_cast<std::int64_t>(now - c.issuedAt));
        ++retried_;
    } else {
        latency_.sample(static_cast<std::int64_t>(now - c.issuedAt));
    }
    ++responses_;
}

void
ClientPopulation::tick(Cycle now, Network &net)
{
    // Consume response packets first.
    while (net.clientHasRx()) {
        Packet p = net.popClientRx();
        if (p.client < 0 ||
            p.client >= static_cast<int>(clients_.size()))
            continue;
        Client &c = clients_[static_cast<size_t>(p.client)];
        if (c.state != Client::State::Waiting)
            continue;
        // A stale response (delayed past a retransmit-then-abandon, or
        // duplicated by a retransmit race) must not be credited to the
        // client's current request. Open-loop mode always filters:
        // give-ups are routine there, and goodput() depends on an
        // aborted sequence never completing.
        if ((recovery_ || openLoop_.enabled) && p.reqSeq != c.reqSeq)
            continue;
        if (c.respRemaining <= p.bytes || p.fin) {
            if (openLoop_.enabled && c.slow) {
                // Slow client: the server is done sending, but the
                // client drains the response at a bounded rate; the
                // request completes only when the drain finishes.
                c.respRemaining = 0;
                c.state = Client::State::Draining;
                const std::uint64_t kb =
                    (specWebFileBytes(c.lastRequest.fileId) + 1023) /
                    1024;
                c.drainDoneAt =
                    now + openLoop_.slowDrainPerKb * (kb ? kb : 1);
                c.timeoutAt = c.drainDoneAt;
            } else {
                completeRequest(c, p.client, now);
            }
        } else {
            c.respRemaining -= p.bytes;
            // Forward progress re-arms the response timeout.
            if (recovery_ || openLoop_.enabled)
                c.timeoutAt = now + params_.retryTimeout;
        }
    }

    if (!openLoop_.enabled) {
        // Closed loop: issue due requests after think time.
        for (size_t i = 0; i < clients_.size(); ++i) {
            Client &c = clients_[i];
            if (c.state != Client::State::Thinking ||
                c.nextRequestAt > now)
                continue;
            const int file = specWebPickFile(rng_, params_.numFiles);
            Packet p;
            p.client = static_cast<int>(i);
            p.open = true;
            p.fileId = file;
            p.bytes = static_cast<std::uint32_t>(
                rng_.range(params_.requestBytesMin,
                           params_.requestBytesMax));
            p.reqSeq = ++c.reqSeq;
            net.clientSend(p);
            if (probes_)
                probes_->reqIssue(p.client, p.reqSeq, now);
            c.state = Client::State::Waiting;
            c.respRemaining = specWebFileBytes(file);
            c.lastRequest = p;
            c.issuedAt = now;
            c.timeoutAt = now + params_.retryTimeout;
            c.retries = 0;
            ++requestsIssued_;
        }
    } else {
        // Slow-client drains that finished by now complete here, with
        // latency sampled at the drain end, not the server's fin.
        for (size_t i = 0; i < clients_.size(); ++i) {
            Client &c = clients_[i];
            if (c.state == Client::State::Draining &&
                c.drainDoneAt <= now) {
                completeRequest(c, static_cast<int>(i), now);
                ++slowCompletions_;
            }
        }
        // Open loop: arrivals fire on their own schedule, regardless
        // of how many requests are outstanding.
        if (!arrivalInit_) {
            arrivalInit_ = true;
            rampStartAt_ = now;
            nextArrivalAt_ = now + drawArrivalGap(now);
        }
        while (nextArrivalAt_ <= now) {
            const Cycle at = nextArrivalAt_;
            ++arrivals_;
            dispatchArrival(now, net);
            nextArrivalAt_ = at + drawArrivalGap(at);
        }
    }

    if (!recovery_ && !openLoop_.enabled)
        return;

    // Timeout scan: retransmit with capped exponential backoff, give
    // up after maxRetries. Retransmits reuse the request verbatim
    // (same reqSeq), so a late original response still counts.
    for (Client &c : clients_) {
        if (c.state != Client::State::Waiting || c.timeoutAt > now)
            continue;
        if (c.retries < params_.maxRetries) {
            ++c.retries;
            const int shift = c.retries < 4 ? c.retries : 4;
            c.timeoutAt = now + (params_.retryTimeout << shift);
            // The server treats the retransmit as a fresh connection
            // open; any half-served prior attempt expects the full
            // file again.
            c.respRemaining = specWebFileBytes(c.lastRequest.fileId);
            net.clientSend(c.lastRequest);
            if (probes_)
                probes_->reqRetransmit(c.lastRequest.client, c.reqSeq,
                                       now);
            ++retransmits_;
        } else {
            c.state = Client::State::Thinking;
            c.respRemaining = 0;
            if (!openLoop_.enabled)
                c.nextRequestAt = drawThink(now);
            if (probes_)
                probes_->reqAbort(c.lastRequest.client, c.reqSeq, now);
            ++aborts_;
        }
    }
}

} // namespace smtos
