/**
 * @file
 * The simulated LAN between the SPECWeb-like clients and the server.
 *
 * Mirrors the paper's setup: a direct connection that transmits
 * packets with no loss and no latency, with NIC interrupts delivered
 * to the CPU at a coarse, configurable interval (the paper's 10 ms
 * barrier, scaled to simulation length).
 *
 * A FaultPlan may be attached to perturb the link: per-packet loss,
 * extra latency (packets are staged until their release cycle), and
 * reordering. With no plan attached — or a plan with all link rates at
 * zero — the send path is byte-for-byte the original lossless
 * zero-latency behavior and draws no fault RNG.
 */

#ifndef SMTOS_NET_NETWORK_H
#define SMTOS_NET_NETWORK_H

#include <algorithm>
#include <cstdint>
#include <deque>
#include <vector>

#include "common/types.h"
#include "fault/fault.h"
#include "snap/fwd.h"

namespace smtos {

/** A network packet (request or response). */
struct Packet
{
    int client = -1;        ///< originating/destination client
    int conn = -1;          ///< server connection id (-1 until accepted)
    std::uint32_t bytes = 0;
    bool open = false;      ///< carries a new connection + request
    bool fin = false;       ///< closes the connection
    int fileId = -1;        ///< requested file (request packets)
    Addr mbuf = 0;          ///< physical address of the backing mbuf
    std::uint32_t reqSeq = 0;  ///< request sequence, echoed in responses
};

/** Lossless zero-latency link with per-direction queues. */
class Network
{
  public:
    /** Attach fault injection (nullptr detaches). */
    void attachFaults(FaultPlan *plan) { faults_ = plan; }

    /**
     * Advance link time: release delayed packets whose deliver cycle
     * has arrived. A no-op without delay faults.
     */
    void
    advance(Cycle now)
    {
        now_ = now;
        if (delayed_.empty())
            return;
        // Due packets release in staging order (deterministic; exact
        // deliverAt ordering is irrelevant at NIC-interval granularity).
        std::size_t i = 0;
        while (i < delayed_.size()) {
            if (delayed_[i].at <= now_) {
                Delayed d = delayed_[i];
                delayed_.erase(delayed_.begin() +
                               static_cast<std::ptrdiff_t>(i));
                (d.toServer ? toServer_ : toClient_).push_back(d.pkt);
            } else {
                ++i;
            }
        }
    }

    void
    clientSend(const Packet &p)
    {
        ++reqPackets_;
        reqBytes_ += p.bytes;
        deliver(toServer_, p, true);
    }

    void
    serverSend(const Packet &p)
    {
        ++respPackets_;
        respBytes_ += p.bytes;
        deliver(toClient_, p, false);
    }

    bool serverHasRx() const { return !toServer_.empty(); }
    std::size_t serverRxDepth() const { return toServer_.size(); }

    Packet
    popServerRx()
    {
        Packet p = toServer_.front();
        toServer_.pop_front();
        return p;
    }

    bool clientHasRx() const { return !toClient_.empty(); }

    Packet
    popClientRx()
    {
        Packet p = toClient_.front();
        toClient_.pop_front();
        return p;
    }

    std::uint64_t requestPackets() const { return reqPackets_; }
    std::uint64_t responsePackets() const { return respPackets_; }
    std::uint64_t requestBytes() const { return reqBytes_; }
    std::uint64_t responseBytes() const { return respBytes_; }

    std::size_t delayedDepth() const { return delayed_.size(); }

    static constexpr std::uint32_t snapVersion = 1;
    void save(Snapshotter &sp) const;
    void load(Restorer &rs);

  private:
    struct Delayed
    {
        Cycle at = 0;
        bool toServer = false;
        Packet pkt;
    };

    void
    deliver(std::deque<Packet> &q, const Packet &p, bool toServer)
    {
        // Traffic counters above track offered load; faults below are
        // accounted separately in the plan so a lossy run's drop rate
        // is directly measurable.
        if (faults_ && faults_->linkFaultsOn()) {
            const int dir = toServer ? 0 : 1;
            if (faults_->drawLoss()) {
                faults_->note(now_, FaultKind::PktLoss,
                              static_cast<std::uint64_t>(dir),
                              static_cast<std::uint64_t>(p.client));
                return;
            }
            // Reorder before delay: a configured delay window applies
            // to every surviving packet, so checking it first would
            // starve the explicit swap.
            if (q.size() >= 1 && faults_->drawReorder()) {
                faults_->note(now_, FaultKind::PktReorder,
                              static_cast<std::uint64_t>(dir),
                              static_cast<std::uint64_t>(p.client));
                q.insert(q.end() - 1, p);
                return;
            }
            if (const Cycle extra = faults_->drawDelay(); extra > 0) {
                faults_->note(now_, FaultKind::PktDelay,
                              static_cast<std::uint64_t>(dir), extra);
                delayed_.push_back(Delayed{now_ + extra, toServer, p});
                return;
            }
        }
        q.push_back(p);
    }

    std::deque<Packet> toServer_;
    std::deque<Packet> toClient_;
    std::vector<Delayed> delayed_;
    FaultPlan *faults_ = nullptr;
    Cycle now_ = 0;
    std::uint64_t reqPackets_ = 0;
    std::uint64_t respPackets_ = 0;
    std::uint64_t reqBytes_ = 0;
    std::uint64_t respBytes_ = 0;
};

} // namespace smtos

#endif // SMTOS_NET_NETWORK_H
