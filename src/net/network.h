/**
 * @file
 * The simulated LAN between the SPECWeb-like clients and the server.
 *
 * Mirrors the paper's setup: a direct connection that transmits
 * packets with no loss and no latency, with NIC interrupts delivered
 * to the CPU at a coarse, configurable interval (the paper's 10 ms
 * barrier, scaled to simulation length).
 */

#ifndef SMTOS_NET_NETWORK_H
#define SMTOS_NET_NETWORK_H

#include <cstdint>
#include <deque>

#include "common/types.h"

namespace smtos {

/** A network packet (request or response). */
struct Packet
{
    int client = -1;        ///< originating/destination client
    int conn = -1;          ///< server connection id (-1 until accepted)
    std::uint32_t bytes = 0;
    bool open = false;      ///< carries a new connection + request
    bool fin = false;       ///< closes the connection
    int fileId = -1;        ///< requested file (request packets)
    Addr mbuf = 0;          ///< physical address of the backing mbuf
};

/** Lossless zero-latency link with per-direction queues. */
class Network
{
  public:
    void
    clientSend(const Packet &p)
    {
        toServer_.push_back(p);
        ++reqPackets_;
        reqBytes_ += p.bytes;
    }

    void
    serverSend(const Packet &p)
    {
        toClient_.push_back(p);
        ++respPackets_;
        respBytes_ += p.bytes;
    }

    bool serverHasRx() const { return !toServer_.empty(); }
    std::size_t serverRxDepth() const { return toServer_.size(); }

    Packet
    popServerRx()
    {
        Packet p = toServer_.front();
        toServer_.pop_front();
        return p;
    }

    bool clientHasRx() const { return !toClient_.empty(); }

    Packet
    popClientRx()
    {
        Packet p = toClient_.front();
        toClient_.pop_front();
        return p;
    }

    std::uint64_t requestPackets() const { return reqPackets_; }
    std::uint64_t responsePackets() const { return respPackets_; }
    std::uint64_t requestBytes() const { return reqBytes_; }
    std::uint64_t responseBytes() const { return respBytes_; }

  private:
    std::deque<Packet> toServer_;
    std::deque<Packet> toClient_;
    std::uint64_t reqPackets_ = 0;
    std::uint64_t respPackets_ = 0;
    std::uint64_t reqBytes_ = 0;
    std::uint64_t respBytes_ = 0;
};

} // namespace smtos

#endif // SMTOS_NET_NETWORK_H
