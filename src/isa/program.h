/**
 * @file
 * Program images: synthetic code laid out as functions of basic blocks
 * at concrete virtual addresses, so instruction-cache, BTB and ITLB
 * behavior derives from real code placement.
 */

#ifndef SMTOS_ISA_PROGRAM_H
#define SMTOS_ISA_PROGRAM_H

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/logging.h"
#include "common/types.h"
#include "isa/instr.h"

namespace smtos {

/** Instruction size in bytes. */
constexpr Addr instrBytes = 4;

/** Virtual base of user program text. */
constexpr Addr userTextBase = 0x0000'0010'0000ull;

/** Virtual base of the kernel (its text starts here). */
constexpr Addr kernelBase = 0x0000'8000'0000ull;

/** A basic block: a contiguous run of instructions. */
struct BasicBlock
{
    std::uint32_t firstInstr = 0; ///< global index into the image
    std::uint16_t numInstrs = 0;
};

/** A function: a contiguous run of basic blocks; entry is block 0. */
struct Function
{
    std::uint32_t firstBlock = 0;
    std::uint16_t numBlocks = 0;
    /** Service tag for kernel time accounting (kernel images). */
    std::int16_t tag = -1;
    /** True for PAL routines: fetched with physical addresses. */
    bool pal = false;
    std::string name;
};

/**
 * An immutable-after-build code image. Build with
 * beginFunction()/beginBlock()/emit(), then finalize().
 */
class CodeImage
{
  public:
    CodeImage(std::string name, Addr text_base);

    // --- builder interface ---

    /** Start a function; returns its index. */
    int beginFunction(const std::string &name, int tag = -1,
                      bool pal = false);

    /** Start a basic block in the open function; returns its
     *  function-relative index. */
    int beginBlock();

    /** Append an instruction to the open block. */
    void emit(const Instr &in);

    /** Close the image and validate all control-flow targets. */
    void finalize();

    // --- accessors ---

    const std::string &name() const { return name_; }
    Addr textBase() const { return textBase_; }
    bool finalized() const { return finalized_; }

    int numFunctions() const { return static_cast<int>(funcs_.size()); }
    std::uint32_t numInstrs() const
    {
        return static_cast<std::uint32_t>(instrs_.size());
    }

    const Function &func(int f) const { return funcs_.at(f); }

    /** Service tag of function @p f — a dense copy of func(f).tag
     *  (built by finalize()) so per-instruction accounting does not
     *  stride through the full Function records. */
    std::int16_t
    tagOf(int f) const
    {
        SMTOS_CHECK(f >= 0 && f < static_cast<int>(funcTags_.size()));
        return funcTags_[static_cast<std::size_t>(f)];
    }

    /** PAL flag of function @p f — dense copy of func(f).pal, same
     *  rationale as tagOf(): the mode of every fetched kernel
     *  instruction depends on it. */
    bool
    palOf(int f) const
    {
        SMTOS_CHECK(f >= 0 && f < static_cast<int>(funcPal_.size()));
        return funcPal_[static_cast<std::size_t>(f)] != 0;
    }

    /** Instruction by flat image-wide index, unchecked in release
     *  (hot twin of instrPtr() for the execution engines; the flat
     *  index comes from a validated BasicBlock). */
    const Instr &
    instrAtFlat(std::uint32_t flat) const
    {
        SMTOS_CHECK(flat < instrs_.size());
        return instrs_[flat];
    }

    /** Index of the named function; fatal when missing. */
    int funcByName(const std::string &name) const;

    // block/instrAt/pcOf are defined inline with debug-only bounds
    // checks: they sit under every simulated instruction (fetch,
    // warming, cosim) and must fold into their callers. finalize()
    // validates all static targets, so out-of-range indices here can
    // only come from cursor corruption, which SMTOS_CHECK catches in
    // debug builds.
    const BasicBlock &
    block(int f, int rel_block) const
    {
        SMTOS_CHECK(f >= 0 && f < static_cast<int>(funcs_.size()));
        const Function &fn = funcs_[static_cast<std::size_t>(f)];
        SMTOS_CHECK(rel_block >= 0 && rel_block < fn.numBlocks);
        return blocks_[fn.firstBlock + rel_block];
    }

    int numBlocks(int f) const { return funcs_.at(f).numBlocks; }

    const Instr &
    instrAt(int f, int rel_block, int idx) const
    {
        const BasicBlock &bb = block(f, rel_block);
        SMTOS_CHECK(idx >= 0 && idx < bb.numInstrs);
        return instrs_[bb.firstInstr + idx];
    }

    /** Virtual PC of an instruction. */
    Addr
    pcOf(int f, int rel_block, int idx) const
    {
        const BasicBlock &bb = block(f, rel_block);
        return textBase_ +
               static_cast<Addr>(bb.firstInstr + idx) * instrBytes;
    }

    /** Total image text footprint in bytes. */
    Addr textBytes() const { return numInstrs() * instrBytes; }

    /** Instruction by flat image-wide index (snapshot encoding). */
    const Instr *
    instrPtr(std::uint32_t flat) const
    {
        return &instrs_.at(flat);
    }

    /** Flat index of an instruction belonging to this image, or -1
     *  when @p in does not point into it. */
    std::int64_t
    indexOf(const Instr *in) const
    {
        if (in < instrs_.data() || in >= instrs_.data() + instrs_.size())
            return -1;
        return in - instrs_.data();
    }

  private:
    std::string name_;
    Addr textBase_;
    bool finalized_ = false;
    bool funcOpen_ = false;
    std::vector<Instr> instrs_;
    std::vector<BasicBlock> blocks_;
    std::vector<Function> funcs_;
    std::vector<std::int16_t> funcTags_; ///< funcs_[i].tag, dense
    std::vector<std::uint8_t> funcPal_;  ///< funcs_[i].pal, dense
    std::unordered_map<std::string, int> funcIndex_;
};

} // namespace smtos

#endif // SMTOS_ISA_PROGRAM_H
