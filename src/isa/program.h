/**
 * @file
 * Program images: synthetic code laid out as functions of basic blocks
 * at concrete virtual addresses, so instruction-cache, BTB and ITLB
 * behavior derives from real code placement.
 */

#ifndef SMTOS_ISA_PROGRAM_H
#define SMTOS_ISA_PROGRAM_H

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "isa/instr.h"

namespace smtos {

/** Instruction size in bytes. */
constexpr Addr instrBytes = 4;

/** Virtual base of user program text. */
constexpr Addr userTextBase = 0x0000'0010'0000ull;

/** Virtual base of the kernel (its text starts here). */
constexpr Addr kernelBase = 0x0000'8000'0000ull;

/** A basic block: a contiguous run of instructions. */
struct BasicBlock
{
    std::uint32_t firstInstr = 0; ///< global index into the image
    std::uint16_t numInstrs = 0;
};

/** A function: a contiguous run of basic blocks; entry is block 0. */
struct Function
{
    std::uint32_t firstBlock = 0;
    std::uint16_t numBlocks = 0;
    /** Service tag for kernel time accounting (kernel images). */
    std::int16_t tag = -1;
    /** True for PAL routines: fetched with physical addresses. */
    bool pal = false;
    std::string name;
};

/**
 * An immutable-after-build code image. Build with
 * beginFunction()/beginBlock()/emit(), then finalize().
 */
class CodeImage
{
  public:
    CodeImage(std::string name, Addr text_base);

    // --- builder interface ---

    /** Start a function; returns its index. */
    int beginFunction(const std::string &name, int tag = -1,
                      bool pal = false);

    /** Start a basic block in the open function; returns its
     *  function-relative index. */
    int beginBlock();

    /** Append an instruction to the open block. */
    void emit(const Instr &in);

    /** Close the image and validate all control-flow targets. */
    void finalize();

    // --- accessors ---

    const std::string &name() const { return name_; }
    Addr textBase() const { return textBase_; }
    bool finalized() const { return finalized_; }

    int numFunctions() const { return static_cast<int>(funcs_.size()); }
    std::uint32_t numInstrs() const
    {
        return static_cast<std::uint32_t>(instrs_.size());
    }

    const Function &func(int f) const { return funcs_.at(f); }

    /** Index of the named function; fatal when missing. */
    int funcByName(const std::string &name) const;

    const BasicBlock &block(int f, int rel_block) const;
    int numBlocks(int f) const { return funcs_.at(f).numBlocks; }

    const Instr &instrAt(int f, int rel_block, int idx) const;

    /** Virtual PC of an instruction. */
    Addr pcOf(int f, int rel_block, int idx) const;

    /** Total image text footprint in bytes. */
    Addr textBytes() const { return numInstrs() * instrBytes; }

    /** Instruction by flat image-wide index (snapshot encoding). */
    const Instr *
    instrPtr(std::uint32_t flat) const
    {
        return &instrs_.at(flat);
    }

    /** Flat index of an instruction belonging to this image, or -1
     *  when @p in does not point into it. */
    std::int64_t
    indexOf(const Instr *in) const
    {
        if (in < instrs_.data() || in >= instrs_.data() + instrs_.size())
            return -1;
        return in - instrs_.data();
    }

  private:
    std::string name_;
    Addr textBase_;
    bool finalized_ = false;
    bool funcOpen_ = false;
    std::vector<Instr> instrs_;
    std::vector<BasicBlock> blocks_;
    std::vector<Function> funcs_;
    std::unordered_map<std::string, int> funcIndex_;
};

} // namespace smtos

#endif // SMTOS_ISA_PROGRAM_H
