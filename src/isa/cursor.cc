#include "isa/cursor.h"

#include <cstdio>

#include "common/logging.h"

namespace smtos {

namespace {

// Exact equivalents of x % m and x / m that avoid the hardware divide
// when m is a power of two. Region and segment sizes almost always
// are, and memAddress() runs for every memory instruction at either
// fidelity.
inline Addr
fastMod(Addr x, Addr m)
{
    return (m & (m - 1)) == 0 ? (x & (m - 1)) : x % m;
}

inline Addr
fastDiv(Addr x, Addr m)
{
    if ((m & (m - 1)) != 0)
        return x / m;
    int s = 0;
    while ((m >> s) != 1)
        ++s;
    return x >> s;
}

} // namespace

void
Cursor::reset(int func, bool in_kernel, std::uint64_t seed)
{
    depth_ = 1;
    frames_[0] = CallFrame{};
    frames_[0].func = func;
    frames_[0].inKernel = in_kernel ? 1 : 0;
    wrongPath_ = false;
    stuck_ = false;
    rng_ = Rng(seed);
    for (std::uint32_t &s : stream_)
        s = 0;
    retired = 0;
}

Addr
Cursor::parentPc(const ImageSet &is) const
{
    smtos_assert(depth_ >= 2);
    const CallFrame &p = frames_[depth_ - 2];
    const CodeImage &img = p.inKernel ? *is.kernel : *is.user;
    return img.pcOf(p.func, p.block, p.instrIdx);
}

BranchPreview
Cursor::previewBranch(const ImageSet &is, const ThreadIprs &iprs)
{
    CallFrame &f = frames_[depth_ - 1];
    const CodeImage &img = image(is);
    const Instr &in = img.instrAt(f.func, f.block, f.instrIdx);
    BranchPreview bp;

    switch (in.op) {
      case Op::CondBranch: {
        bp.kind = BranchPreview::Kind::Cond;
        if (in.loopTrip > 0) {
            std::uint32_t trip = in.loopTrip;
            if (in.loopTrip == dynamicTrip) {
                trip = in.payload == 1
                           ? iprs.serviceTrip
                           : (in.payload == 2 ? iprs.intrTrip
                                              : iprs.copyTrip);
            }
            std::uint16_t &ctr = f.loop[in.loopSlot & 3];
            if (static_cast<std::uint32_t>(ctr) + 1 < trip) {
                ++ctr;
                bp.taken = true;
            } else {
                ctr = 0;
                bp.taken = false;
            }
        } else {
            bp.taken = rng_.below(1024) < in.takenChance1024;
        }
        bp.targetFunc = f.func;
        bp.targetBlock = in.targetBlock;
        bp.targetPc = img.pcOf(f.func, in.targetBlock, 0);
        return bp;
      }
      case Op::Jump:
        bp.kind = BranchPreview::Kind::Jump;
        bp.taken = true;
        bp.targetFunc = f.func;
        bp.targetBlock = in.targetBlock;
        bp.targetPc = img.pcOf(f.func, in.targetBlock, 0);
        return bp;
      case Op::IndirectJump: {
        bp.kind = BranchPreview::Kind::Indirect;
        bp.taken = true;
        int k = 0;
        if (in.indirectFan > 1) {
            // Skewed: a favorite target, then a uniform tail.
            if (!rng_.chance(0.6))
                k = static_cast<int>(rng_.below(in.indirectFan));
        }
        bp.targetFunc = f.func;
        bp.targetBlock = in.targetBlock + k;
        bp.targetPc = img.pcOf(f.func, bp.targetBlock, 0);
        return bp;
      }
      case Op::Call: {
        bp.kind = BranchPreview::Kind::Call;
        bp.taken = true;
        bp.targetFunc = in.callee;
        bp.targetBlock = 0;
        bp.targetPc = img.pcOf(in.callee, 0, 0);
        return bp;
      }
      case Op::Return:
      case Op::PalReturn: {
        bp.kind = in.op == Op::Return ? BranchPreview::Kind::Ret
                                      : BranchPreview::Kind::PalRet;
        bp.taken = true;
        if (depth_ >= 2) {
            const CallFrame &parent = frames_[depth_ - 2];
            const CodeImage &pimg =
                parent.inKernel ? *is.kernel : *is.user;
            bp.targetFunc = parent.func;
            bp.targetBlock = parent.block;
            bp.targetPc =
                pimg.pcOf(parent.func, parent.block, parent.instrIdx);
        }
        return bp;
      }
      default:
        smtos_panic("previewBranch on non-branch %s", opName(in.op));
    }
}

void
Cursor::followBranch(const ImageSet &is, const BranchPreview &bp,
                     bool take_it)
{
    CallFrame &f = frames_[depth_ - 1];
    switch (bp.kind) {
      case BranchPreview::Kind::Cond:
        if (take_it) {
            f.block = bp.targetBlock;
            f.instrIdx = 0;
        } else {
            stepSequential(is);
        }
        return;
      case BranchPreview::Kind::Jump:
      case BranchPreview::Kind::Indirect:
        f.block = bp.targetBlock;
        f.instrIdx = 0;
        return;
      case BranchPreview::Kind::Call:
        // Advance the caller past the call, then enter the callee.
        stepSequential(is);
        push(bp.targetFunc, frames_[depth_ - 1].inKernel != 0);
        return;
      case BranchPreview::Kind::Ret:
      case BranchPreview::Kind::PalRet:
        if (depth_ <= 1) {
            // Return from the outermost frame: only legal while
            // speculating down a wrong path.
            stuck_ = true;
            return;
        }
        pop();
        return;
    }
}

void
Cursor::push(int func, bool in_kernel)
{
    if (depth_ >= maxFrames) {
        if (wrongPath_) {
            stuck_ = true;
            return;
        }
        for (int i = 0; i < depth_; ++i) {
            std::fprintf(stderr, "  frame[%d]: func=%d kernel=%d "
                         "block=%d idx=%d\n", i, frames_[i].func,
                         frames_[i].inKernel, frames_[i].block,
                         frames_[i].instrIdx);
        }
        smtos_panic("cursor frame overflow (depth %d)", depth_);
    }
    CallFrame &f = frames_[depth_];
    f = CallFrame{};
    f.func = func;
    f.inKernel = in_kernel ? 1 : 0;
    ++depth_;
}

void
Cursor::pop()
{
    smtos_assert(depth_ >= 1);
    --depth_;
}

void
Cursor::pushFault(const FaultRec &r)
{
    if (faultDepth_ >= maxFaultDepth)
        smtos_panic("fault stack overflow (depth %d)", faultDepth_);
    faults_[faultDepth_++] = r;
}

FaultRec
Cursor::popFault()
{
    smtos_assert(faultDepth_ >= 1);
    return faults_[--faultDepth_];
}

FaultRec &
Cursor::topFault()
{
    smtos_assert(faultDepth_ >= 1);
    return faults_[faultDepth_ - 1];
}

Addr
Cursor::memAddress(const Instr &in, const MemRegion *regions,
                   const ThreadIprs &iprs)
{
    const CallFrame &f = top();
    switch (in.pattern) {
      case MemPattern::SeqStream: {
        // Strided walk over a 32KB segment, re-walked several times
        // before advancing to the next segment: models loop nests
        // re-traversing arrays (spatial locality plus reuse).
        const MemRegion &r = regions[in.region & (maxRegions - 1)];
        std::uint32_t &s = stream_[in.stream & 3];
        s += in.stride;
        const Addr seg = r.bytes < (4ull << 10) ? r.bytes
                                                : (4ull << 10);
        const Addr pos = fastMod(static_cast<Addr>(s), seg);
        const Addr seg_base =
            r.sharedHot
                ? 0
                : fastDiv(static_cast<Addr>(s), seg * 32) * seg;
        return r.base + (fastMod(seg_base + pos, r.bytes) & ~7ull);
      }
      case MemPattern::RandomInRegion: {
        // Random within a slowly drifting hot window, so accesses have
        // the page-level temporal locality real programs exhibit while
        // still spreading over the whole region over time.
        const MemRegion &r = regions[in.region & (maxRegions - 1)];
        std::uint32_t &s = stream_[in.stream & 3];
        s += in.stride;
        const Addr window =
            r.bytes < (4ull << 10) ? r.bytes : (4ull << 10);
        const Addr anchor =
            r.sharedHot
                ? 0
                : fastMod(static_cast<Addr>(s) / 160, r.bytes);
        return r.base +
               (fastMod(anchor + rng_.below(window), r.bytes) & ~7ull);
      }
      case MemPattern::StackFrame: {
        const MemRegion &r = regions[in.region & (maxRegions - 1)];
        const Addr frame_base =
            fastMod(static_cast<Addr>(depth_ - 1) * 256, r.bytes);
        return r.base +
               fastMod(frame_base + rng_.below(32) * 8, r.bytes);
      }
      case MemPattern::PteWalk:
        return faultDepth_ > 0 ? faults_[faultDepth_ - 1].pteAddr
                               : 0;
      case MemPattern::FrameTouch: {
        const Addr base =
            faultDepth_ > 0
                ? (faults_[faultDepth_ - 1].frame << pageShift)
                : 0;
        return base +
               static_cast<Addr>(f.loop[in.loopSlot & 3]) * in.stride;
      }
      case MemPattern::CopySrc:
        return iprs.copySrc +
               static_cast<Addr>(f.loop[in.loopSlot & 3]) * in.stride;
      case MemPattern::CopyDst:
        return iprs.copyDst +
               static_cast<Addr>(f.loop[in.loopSlot & 3]) * in.stride;
      case MemPattern::None:
        break;
    }
    smtos_panic("memAddress: instruction has no pattern");
}

} // namespace smtos
