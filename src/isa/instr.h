/**
 * @file
 * The synthetic RISC instruction model.
 *
 * Instructions carry the attributes the paper's metrics depend on —
 * operation class, register dependences, memory addressing behavior
 * (including Alpha-style physical-address references that bypass the
 * TLB), and control-flow behavior — without committing to a concrete
 * binary encoding. PAL entry/return, `tlbwrite`, cache flushes and
 * kernel-model "magic" operations are first-class instructions so that
 * every privileged operation executes on the simulated pipeline.
 */

#ifndef SMTOS_ISA_INSTR_H
#define SMTOS_ISA_INSTR_H

#include <cstdint>

#include "common/types.h"

namespace smtos {

/** Operation classes. */
enum class Op : std::uint8_t
{
    IntAlu = 0, ///< 1-cycle integer op
    IntMul,     ///< long-latency integer op
    FpAdd,      ///< floating point add/sub
    FpMul,      ///< floating point mul/div
    Load,       ///< load, virtual address (uses DTLB)
    Store,      ///< store, virtual address (uses DTLB)
    LoadPhys,   ///< kernel load with physical address (bypasses DTLB)
    StorePhys,  ///< kernel store with physical address (bypasses DTLB)
    CondBranch, ///< conditional branch
    Jump,       ///< unconditional direct branch
    IndirectJump, ///< register-indirect jump (switch/fn pointer)
    Call,       ///< direct subroutine call (pushes RAS)
    Return,     ///< subroutine return (pops RAS)
    Syscall,    ///< PAL call entering the kernel (serializing)
    PalReturn,  ///< return from PAL/kernel to interrupted stream
    TlbWrite,   ///< PAL op: install the pending TLB entry
    Magic,      ///< kernel-model operation (serializing; see MagicOp)
    Nop,
    Halt,       ///< thread termination
};

/** Number of Op values. */
constexpr int numOps = static_cast<int>(Op::Halt) + 1;

/** Coarse class used by the paper's instruction-mix tables. */
enum class MixClass : std::uint8_t
{
    Load = 0,
    Store,
    CondBranch,
    UncondBranch,
    IndirectJump,
    PalCallReturn,
    OtherInt,
    Fp,
};

constexpr int numMixClasses = 8;

/** Kernel-model operations attached to Op::Magic instructions. */
enum class MagicOp : std::uint8_t
{
    None = 0,
    KernelDispatch,  ///< run the kernel model's service dispatcher
    MaybeBlock,      ///< service point that may block the thread
    AllocPage,       ///< page-allocation decision point
    NetDeliver,      ///< netisr: consume one packet from the queue
    NetSend,         ///< enqueue an outbound packet
    SpinAcquire,     ///< kernel spin lock acquire
    SpinRelease,
    Reschedule,      ///< scheduler: pick the next thread
    IcacheFlush,     ///< flush the shared instruction cache
    TlbFlushAsn,     ///< invalidate TLB entries of a dying ASN
    ServiceBody,     ///< generic parameterized service-work marker
    UserStage,       ///< user-model stage marker (e.g. Apache parse)
};

/** Memory address generation pattern for loads/stores. */
enum class MemPattern : std::uint8_t
{
    None = 0,
    SeqStream,   ///< sequential stream k (stride walks a region)
    RandomInRegion, ///< hashed-uniform within a region
    StackFrame,  ///< within the current stack frame
    PteWalk,     ///< address = pending-fault PTE physical address (IPR)
    FrameTouch,  ///< address walks the pending frame (page zeroing)
    CopySrc,     ///< address walks the pending copy source buffer
    CopyDst,     ///< address walks the pending copy destination
};

/** Register name space: 0-31 integer, 32-63 floating point. */
constexpr std::uint8_t regNone = 255;
constexpr int numIntRegs = 32;
constexpr int numFpRegs = 32;

inline bool
isFpReg(std::uint8_t r)
{
    return r != regNone && r >= numIntRegs;
}

/** Loop trip count sentinel: take trip count from the pending op IPR. */
constexpr std::uint16_t dynamicTrip = 0xffff;

/** A static instruction. */
struct Instr
{
    Op op = Op::Nop;
    MagicOp magic = MagicOp::None;

    std::uint8_t srcA = regNone;
    std::uint8_t srcB = regNone;
    std::uint8_t dest = regNone;

    // -- memory behavior --
    MemPattern pattern = MemPattern::None;
    std::uint8_t region = 0;    ///< region table index
    std::uint8_t stream = 0;    ///< sequential stream id (0-3)
    std::uint32_t stride = 8;

    // -- control-flow behavior --
    /** Taken probability in 1/1024 units for conditional branches. */
    std::uint16_t takenChance1024 = 0;
    /** Loop-back trip count; 0 = not a loop, dynamicTrip = from IPR. */
    std::uint16_t loopTrip = 0;
    /** Loop nesting slot (0-3) used for the per-frame trip counter. */
    std::uint8_t loopSlot = 0;
    /** Relative target: block index within the current function. */
    std::int32_t targetBlock = -1;
    /** Number of alternative targets for indirect jumps (>= 1). */
    std::uint8_t indirectFan = 1;
    /** Callee function index for Call. */
    std::int32_t callee = -1;

    /** Syscall number / magic argument. */
    std::uint16_t payload = 0;

    /** True for ops that classify as control transfers. */
    bool
    isBranch() const
    {
        switch (op) {
          case Op::CondBranch:
          case Op::Jump:
          case Op::IndirectJump:
          case Op::Call:
          case Op::Return:
          case Op::Syscall:
          case Op::PalReturn:
            return true;
          default:
            return false;
        }
    }

    /** True for memory references. */
    bool
    isMem() const
    {
        switch (op) {
          case Op::Load:
          case Op::Store:
          case Op::LoadPhys:
          case Op::StorePhys:
            return true;
          default:
            return false;
        }
    }
    /** True for memory references that bypass the TLB. */
    bool isPhysMem() const
    {
        return op == Op::LoadPhys || op == Op::StorePhys;
    }
    bool isLoad() const { return op == Op::Load || op == Op::LoadPhys; }
    bool isStore() const
    {
        return op == Op::Store || op == Op::StorePhys;
    }
    /** Instructions that must reach the head of the window and execute
     *  non-speculatively before fetch may proceed. */
    bool isSerializing() const
    {
        return op == Op::Syscall || op == Op::Magic ||
               op == Op::TlbWrite || op == Op::Halt;
    }

    /** Paper Table 2/5 mix class of this instruction. Inline: tallied
     *  for every retired instruction at either fidelity. */
    MixClass
    mixClass() const
    {
        switch (op) {
          case Op::Load:
          case Op::LoadPhys:
            return MixClass::Load;
          case Op::Store:
          case Op::StorePhys:
            return MixClass::Store;
          case Op::CondBranch:
            return MixClass::CondBranch;
          case Op::Jump:
          case Op::Call:
          case Op::Return:
            return MixClass::UncondBranch;
          case Op::IndirectJump:
            return MixClass::IndirectJump;
          case Op::Syscall:
          case Op::PalReturn:
            return MixClass::PalCallReturn;
          case Op::FpAdd:
          case Op::FpMul:
            return MixClass::Fp;
          default:
            return MixClass::OtherInt;
        }
    }
};

/** Human-readable op name (disassembly, tests). */
const char *opName(Op op);

} // namespace smtos

#endif // SMTOS_ISA_INSTR_H
