#include "isa/disasm.h"

#include <ostream>
#include <sstream>

namespace smtos {

namespace {

const char *
patternName(MemPattern p)
{
    switch (p) {
      case MemPattern::None: return "";
      case MemPattern::SeqStream: return "seq";
      case MemPattern::RandomInRegion: return "rand";
      case MemPattern::StackFrame: return "stack";
      case MemPattern::PteWalk: return "pte";
      case MemPattern::FrameTouch: return "frame";
      case MemPattern::CopySrc: return "csrc";
      case MemPattern::CopyDst: return "cdst";
    }
    return "?";
}

std::string
regName(std::uint8_t r)
{
    if (r == regNone)
        return "-";
    std::ostringstream os;
    if (isFpReg(r))
        os << "f" << static_cast<int>(r - numIntRegs);
    else
        os << "r" << static_cast<int>(r);
    return os.str();
}

} // namespace

std::string
disasm(const Instr &in)
{
    std::ostringstream os;
    os << opName(in.op);
    if (in.isMem()) {
        os << " " << regName(in.dest) << ", ["
           << patternName(in.pattern) << ":" << int(in.region)
           << " s" << int(in.stream) << " +" << in.stride << "]";
    } else if (in.op == Op::CondBranch) {
        if (in.loopTrip > 0) {
            os << " ->b" << in.targetBlock << " loop(";
            if (in.loopTrip == dynamicTrip)
                os << "dyn:" << in.payload;
            else
                os << in.loopTrip;
            os << ", slot " << int(in.loopSlot) << ")";
        } else {
            os << " ->b" << in.targetBlock << " p="
               << in.takenChance1024 << "/1024";
        }
    } else if (in.op == Op::Jump) {
        os << " ->b" << in.targetBlock;
    } else if (in.op == Op::IndirectJump) {
        os << " ->b" << in.targetBlock << "..b"
           << in.targetBlock + in.indirectFan - 1;
    } else if (in.op == Op::Call) {
        os << " f" << in.callee;
    } else if (in.op == Op::Syscall) {
        os << " #" << in.payload;
    } else if (in.op == Op::Magic) {
        os << " op=" << static_cast<int>(in.magic) << " arg="
           << in.payload;
    } else if (in.dest != regNone) {
        os << " " << regName(in.dest) << ", " << regName(in.srcA)
           << ", " << regName(in.srcB);
    }
    return os.str();
}

void
listFunction(std::ostream &os, const CodeImage &img, int func)
{
    const Function &f = img.func(func);
    os << "function " << func << " '" << f.name << "' tag=" << f.tag
       << (f.pal ? " [pal]" : "") << "\n";
    for (int b = 0; b < f.numBlocks; ++b) {
        const BasicBlock &bb = img.block(func, b);
        os << "  block " << b << ":\n";
        for (int i = 0; i < bb.numInstrs; ++i) {
            os << "    0x" << std::hex << img.pcOf(func, b, i)
               << std::dec << "  "
               << disasm(img.instrAt(func, b, i)) << "\n";
        }
    }
}

void
imageSummary(std::ostream &os, const CodeImage &img)
{
    os << "image '" << img.name() << "': " << img.numFunctions()
       << " functions, " << img.numInstrs() << " instructions, "
       << img.textBytes() / 1024 << " KiB text @0x" << std::hex
       << img.textBase() << std::dec << "\n";
    std::uint32_t pad_instrs = 0;
    for (int f = 0; f < img.numFunctions(); ++f) {
        const Function &fn = img.func(f);
        const BasicBlock &first = img.block(f, 0);
        std::uint32_t n = 0;
        for (int b = 0; b < fn.numBlocks; ++b)
            n += img.block(f, b).numInstrs;
        if (fn.name.rfind("pad", 0) == 0) {
            pad_instrs += n;
            continue;
        }
        os << "  f" << f << " " << fn.name << ": " << fn.numBlocks
           << " blocks, " << n << " instrs, tag " << fn.tag
           << ", entry 0x" << std::hex
           << img.textBase() + first.firstInstr * instrBytes
           << std::dec << "\n";
    }
    os << "  (padding: " << pad_instrs << " unreachable instrs)\n";
}

} // namespace smtos
