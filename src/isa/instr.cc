#include "isa/instr.h"

namespace smtos {

bool
Instr::isBranch() const
{
    switch (op) {
      case Op::CondBranch:
      case Op::Jump:
      case Op::IndirectJump:
      case Op::Call:
      case Op::Return:
      case Op::Syscall:
      case Op::PalReturn:
        return true;
      default:
        return false;
    }
}

bool
Instr::isMem() const
{
    switch (op) {
      case Op::Load:
      case Op::Store:
      case Op::LoadPhys:
      case Op::StorePhys:
        return true;
      default:
        return false;
    }
}

MixClass
Instr::mixClass() const
{
    switch (op) {
      case Op::Load:
      case Op::LoadPhys:
        return MixClass::Load;
      case Op::Store:
      case Op::StorePhys:
        return MixClass::Store;
      case Op::CondBranch:
        return MixClass::CondBranch;
      case Op::Jump:
      case Op::Call:
      case Op::Return:
        return MixClass::UncondBranch;
      case Op::IndirectJump:
        return MixClass::IndirectJump;
      case Op::Syscall:
      case Op::PalReturn:
        return MixClass::PalCallReturn;
      case Op::FpAdd:
      case Op::FpMul:
        return MixClass::Fp;
      default:
        return MixClass::OtherInt;
    }
}

const char *
opName(Op op)
{
    switch (op) {
      case Op::IntAlu: return "intalu";
      case Op::IntMul: return "intmul";
      case Op::FpAdd: return "fpadd";
      case Op::FpMul: return "fpmul";
      case Op::Load: return "load";
      case Op::Store: return "store";
      case Op::LoadPhys: return "ldphys";
      case Op::StorePhys: return "stphys";
      case Op::CondBranch: return "br";
      case Op::Jump: return "jmp";
      case Op::IndirectJump: return "ijmp";
      case Op::Call: return "call";
      case Op::Return: return "ret";
      case Op::Syscall: return "syscall";
      case Op::PalReturn: return "palret";
      case Op::TlbWrite: return "tlbwrite";
      case Op::Magic: return "magic";
      case Op::Nop: return "nop";
      case Op::Halt: return "halt";
    }
    return "?";
}

} // namespace smtos
