#include "isa/instr.h"

namespace smtos {

const char *
opName(Op op)
{
    switch (op) {
      case Op::IntAlu: return "intalu";
      case Op::IntMul: return "intmul";
      case Op::FpAdd: return "fpadd";
      case Op::FpMul: return "fpmul";
      case Op::Load: return "load";
      case Op::Store: return "store";
      case Op::LoadPhys: return "ldphys";
      case Op::StorePhys: return "stphys";
      case Op::CondBranch: return "br";
      case Op::Jump: return "jmp";
      case Op::IndirectJump: return "ijmp";
      case Op::Call: return "call";
      case Op::Return: return "ret";
      case Op::Syscall: return "syscall";
      case Op::PalReturn: return "palret";
      case Op::TlbWrite: return "tlbwrite";
      case Op::Magic: return "magic";
      case Op::Nop: return "nop";
      case Op::Halt: return "halt";
    }
    return "?";
}

} // namespace smtos
