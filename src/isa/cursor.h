/**
 * @file
 * The execution cursor: functional state of one software thread.
 *
 * A cursor walks a program image's control-flow graph, producing the
 * instruction stream the pipeline fetches. It is trivially copyable so
 * the fetch engine can checkpoint it at every predictable-miss point
 * (branches, TLB-using memory ops) and restore it on a squash; a
 * cursor in wrong-path mode keeps producing real instructions from the
 * mispredicted direction, which is how wrong-path cache and BTB
 * pollution arises, exactly as in the paper's simulator.
 */

#ifndef SMTOS_ISA_CURSOR_H
#define SMTOS_ISA_CURSOR_H

#include <cstdint>
#include <type_traits>

#include "common/rng.h"
#include "common/types.h"
#include "isa/program.h"

namespace smtos {

/** A virtual memory region used by address generation. */
struct MemRegion
{
    Addr base = 0;
    Addr bytes = 0;
    /**
     * Fixed hot window at the region base shared by every thread
     * (kernel data structures: proc/socket/vm tables) instead of a
     * per-thread drifting window (private user working sets).
     */
    bool sharedHot = false;
};

/** Maximum regions per thread. */
constexpr int maxRegions = 8;

/**
 * Per-thread "internal processor registers": the bridge between the
 * kernel model and magic address/trip generation in kernel code
 * (pending-fault PTE address, allocated frame, copy buffers, dynamic
 * loop trip counts).
 */
struct ThreadIprs
{
    Addr copySrc = 0;
    Addr copyDst = 0;
    std::uint32_t copyTrip = 0;
    std::uint32_t serviceTrip = 0;
    std::uint32_t intrTrip = 0;  ///< interrupt batch size (separate so
                                 ///< interrupts don't clobber a loop
                                 ///< in progress on the same thread)
    bool copySrcPhysical = false;
    bool copyDstPhysical = false;
};

/** Which image a frame executes from. */
struct ImageSet
{
    const CodeImage *user = nullptr;
    const CodeImage *kernel = nullptr;
};

/**
 * A pending TLB fault. Fault records live on a small stack inside the
 * cursor (not in the thread IPRs) because faults nest — a kernel
 * access inside a fault handler can itself fault — and because
 * speculatively entered handlers must unwind their record when the
 * speculation squashes; checkpoint/restore of the cursor gives both
 * for free.
 */
struct FaultRec
{
    Addr vpn = 0;
    std::uint64_t frame = 0;
    Addr pteAddr = 0;      ///< physical address of the PTE
    std::uint8_t itlb = 0;
    std::uint8_t global = 0;
    std::uint8_t isText = 0;
};

/** Maximum nested faults. */
constexpr int maxFaultDepth = 6;

/** One call frame of the cursor. */
struct CallFrame
{
    std::int32_t func = 0;
    std::int32_t block = 0;
    std::uint16_t instrIdx = 0;
    std::uint8_t inKernel = 0;
    std::uint8_t pad = 0;
    std::uint16_t loop[4] = {0, 0, 0, 0};
};

/** Maximum call depth (generator keeps real programs well below). */
constexpr int maxFrames = 24;

/** Resolved control transfer, produced by Cursor::previewBranch(). */
struct BranchPreview
{
    enum class Kind : std::uint8_t
    {
        Cond, Jump, Indirect, Call, Ret, PalRet
    };

    Kind kind = Kind::Cond;
    bool taken = false;
    Addr targetPc = 0;       ///< actual target PC when taken
    std::int32_t targetFunc = -1;
    std::int32_t targetBlock = -1; ///< function-relative
};

/**
 * The functional execution state of one software thread, including the
 * stochastic state that decides branch directions and data addresses.
 * Trivially copyable: checkpoints are plain struct copies.
 */
class Cursor
{
  public:
    Cursor() = default;

    /** Reset to the entry of @p func. */
    void reset(int func, bool in_kernel, std::uint64_t seed);

    bool valid() const { return depth_ > 0; }
    int depth() const { return depth_; }
    bool wrongPath() const { return wrongPath_; }
    void setWrongPath(bool wp) { wrongPath_ = wp; }
    bool stuck() const { return stuck_; }
    void setStuck(bool s) { stuck_ = s; }

    const CallFrame &top() const { return frames_[depth_ - 1]; }

    /** Image of the top frame. */
    const CodeImage &image(const ImageSet &is) const
    {
        return top().inKernel ? *is.kernel : *is.user;
    }

    /** Privilege mode implied by the top frame. Inline: queried for
     *  every fetched and every warmed instruction. */
    Mode
    mode(const ImageSet &is) const
    {
        const CallFrame &f = top();
        if (!f.inKernel)
            return Mode::User;
        return is.kernel->func(f.func).pal ? Mode::Pal : Mode::Kernel;
    }

    /** Current (next-to-fetch) instruction and its PC. */
    const Instr &
    currentInstr(const ImageSet &is) const
    {
        const CallFrame &f = top();
        return image(is).instrAt(f.func, f.block, f.instrIdx);
    }

    Addr
    currentPc(const ImageSet &is) const
    {
        const CallFrame &f = top();
        return image(is).pcOf(f.func, f.block, f.instrIdx);
    }

    /** PC of the frame below the top (return address after a call). */
    Addr parentPc(const ImageSet &is) const;

    /** Advance past a non-control-transfer instruction. Inline: runs
     *  for every sequential instruction at either fidelity. */
    void
    stepSequential(const ImageSet &is)
    {
        CallFrame &f = frames_[depth_ - 1];
        const CodeImage &img = image(is);
        const BasicBlock &bb = img.block(f.func, f.block);
        ++f.instrIdx;
        if (f.instrIdx >= bb.numInstrs) {
            // Fall through to the next block of the function.
            if (f.block + 1 >= img.numBlocks(f.func)) {
                // Ran off the function end: only legal on the wrong
                // path.
                if (wrongPath_) {
                    stuck_ = true;
                    f.instrIdx =
                        static_cast<std::uint16_t>(bb.numInstrs - 1);
                    return;
                }
                smtos_panic("cursor fell off end of %s",
                            img.func(f.func).name.c_str());
            }
            ++f.block;
            f.instrIdx = 0;
        }
    }

    /**
     * Resolve the current control-transfer instruction: direction,
     * target, and loop/rng state mutations. Does not move the cursor.
     */
    BranchPreview previewBranch(const ImageSet &is,
                                const ThreadIprs &iprs);

    /**
     * Move the cursor. @p take_it selects taken vs fall-through for
     * conditional branches (fetch may deliberately follow the wrong
     * direction while speculating); non-conditional kinds always take.
     */
    void followBranch(const ImageSet &is, const BranchPreview &bp,
                      bool take_it);

    /** Push a call frame (used by the kernel model for dispatch). */
    void push(int func, bool in_kernel);

    /** Pop the top frame (kernel model; PalReturn path). */
    void pop();

    /**
     * Generate the data address for the current memory instruction.
     * Mutates stream counters / rng (restored by checkpointing).
     *
     * @param regions the owning thread's region table
     * @param iprs the owning thread's magic registers
     */
    Addr memAddress(const Instr &in, const MemRegion *regions,
                    const ThreadIprs &iprs);

    /** Dynamic instruction count advanced by the pipeline at commit. */
    std::uint64_t retired = 0;

    // --- pending-fault stack ---
    void pushFault(const FaultRec &r);
    FaultRec popFault();
    bool hasFault() const { return faultDepth_ > 0; }
    FaultRec &topFault();

    // --- faulting-access replay ---
    /**
     * Record that the instruction at the current position must replay
     * with @p vaddr (instead of drawing a fresh address) when it is
     * next fetched at this call depth. Set on the checkpoint taken at
     * fetch so a DTLB trap re-executes the exact same access.
     */
    void
    setRetryVaddr(Addr vaddr)
    {
        retryVaddr_ = vaddr;
        retryDepth_ = depth_;
    }

    /** Consume the replay address if armed for this depth. */
    bool
    takeRetryVaddr(Addr &vaddr)
    {
        if (retryDepth_ != depth_)
            return false;
        vaddr = retryVaddr_;
        retryDepth_ = -1;
        return true;
    }

  private:
    CallFrame frames_[maxFrames];
    std::int8_t depth_ = 0;
    bool wrongPath_ = false;
    bool stuck_ = false;
    Rng rng_{1};
    std::uint32_t stream_[4] = {0, 0, 0, 0};
    FaultRec faults_[maxFaultDepth];
    std::int8_t faultDepth_ = 0;
    Addr retryVaddr_ = 0;
    std::int8_t retryDepth_ = -1;
};

static_assert(std::is_trivially_copyable_v<Cursor>,
              "cursor checkpoints must be plain copies");

} // namespace smtos

#endif // SMTOS_ISA_CURSOR_H
