/**
 * @file
 * Synthetic code generation.
 *
 * Generates program images whose instruction mix, locality, and
 * control-flow behavior are driven by a profile, so workloads can be
 * matched to the paper's measured mixes (Tables 2 and 5). The kernel
 * image builder also uses the low-level emit helpers to hand-craft
 * individual OS routines.
 */

#ifndef SMTOS_ISA_CODEGEN_H
#define SMTOS_ISA_CODEGEN_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "isa/program.h"

namespace smtos {

/** Statistical shape of generated code. */
struct CodeProfile
{
    // Instruction mix (fractions of non-terminator instructions).
    double loadFrac = 0.20;
    double storeFrac = 0.11;
    double fpFrac = 0.025;
    double mulFrac = 0.05;      ///< of remaining integer ops

    // Memory behavior.
    double physMemFrac = 0.0;   ///< memory ops using physical addresses
    double seqFrac = 0.35;      ///< sequential-stream accesses
    double stackFrac = 0.25;    ///< stack-frame accesses
    /** Weighted region choices for virtual and physical accesses. */
    struct RegionChoice
    {
        int region;
        double weight;
    };
    std::vector<RegionChoice> virtRegions = {{0, 1.0}, {1, 2.0}};
    std::vector<RegionChoice> physRegions = {};
    int stackRegion = 2;
    int strideMin = 8;
    int strideMax = 64;

    // Control flow (fractions over block terminators).
    double loopFrac = 0.25;     ///< single-block loops
    double diamondFrac = 0.45;  ///< forward conditional skips
    double indirectFrac = 0.04; ///< indirect jumps (switches)
    double takenBias = 0.56;    ///< cond taken rate target
    int loopTripMin = 3;
    int loopTripMax = 24;
    int indirectFanMin = 2;
    int indirectFanMax = 6;

    /**
     * Fraction of straight-line work instructions that are
     * never-taken conditional branches (error/assert checks). They
     * fall through on the correct path, so they may sit mid-block;
     * they give generated code realistic branch density and the
     * fall-through-biased kernel conditionals the paper observes.
     */
    double midBranchFrac = 0.10;

    // Shape.
    int instrsPerBlockMin = 4;
    int instrsPerBlockMax = 12;
};

/**
 * Generator of functions within a CodeImage. One CodeGen is created
 * per image being built and shares its rng across functions so layout
 * is deterministic per seed.
 */
class CodeGen
{
  public:
    CodeGen(CodeImage &image, const CodeProfile &profile,
            std::uint64_t seed);

    /** Access the profile (mutable: workloads tweak between phases). */
    CodeProfile &profile() { return profile_; }

    /**
     * Generate a whole function of @p num_blocks blocks. Block
     * terminators follow the profile; call sites target @p callees
     * uniformly. The final block ends with Return (or an infinite
     * jump back to block 0 when @p infinite_loop).
     */
    int genFunction(const std::string &name, int num_blocks,
                    const std::vector<int> &callees, int tag = -1,
                    bool infinite_loop = false, bool pal = false);

    /**
     * Emit an unreachable padding function of @p n instructions.
     * Spreads subsequent functions across the address space so hot
     * code occupies sparse cache lines, as large real binaries do.
     */
    void genPadding(int n);

    // --- low-level emit helpers (used by the kernel image builder) ---

    /** Emit @p n mix-driven straight-line instructions. */
    void emitWork(int n);

    /** Emit straight-line instructions with an override of the
     *  physical-memory fraction (kernel paths). */
    void emitWork(int n, double phys_frac);

    /** A single mix-driven instruction (no control transfers). */
    Instr makeWorkInstr(double phys_frac);

    Instr makeAlu();
    Instr makeLoad(MemPattern p, int region, int stream,
                   std::uint32_t stride, bool physical);
    Instr makeStore(MemPattern p, int region, int stream,
                    std::uint32_t stride, bool physical);

    /** Conditional branch with explicit bias and target. */
    Instr makeCond(int target_block, double taken_chance);

    /** Loop-back conditional branch. */
    Instr makeLoop(int target_block, std::uint16_t trip, int slot,
                   std::uint16_t dyn_payload = 0);

    Instr makeJump(int target_block);
    Instr makeCall(int callee);
    Instr makeReturn();
    Instr makePalReturn();
    Instr makeSyscall(std::uint16_t number);
    Instr makeMagic(MagicOp op, std::uint16_t payload = 0);
    Instr makeTlbWrite();

    Rng &rng() { return rng_; }

  private:
    std::uint8_t pickDest(bool fp);
    std::uint8_t pickSrc(bool fp);

    CodeImage &image_;
    CodeProfile profile_;
    Rng rng_;
    std::uint8_t recentInt_[4] = {1, 2, 3, 4};
    std::uint8_t recentFp_[4] = {33, 34, 35, 36};
    int recentIntPtr_ = 0;
    int recentFpPtr_ = 0;
    int padCounter_ = 0;
};

} // namespace smtos

#endif // SMTOS_ISA_CODEGEN_H
