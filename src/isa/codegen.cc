#include "isa/codegen.h"

#include <algorithm>

#include "common/logging.h"

namespace smtos {

CodeGen::CodeGen(CodeImage &image, const CodeProfile &profile,
                 std::uint64_t seed)
    : image_(image), profile_(profile), rng_(seed)
{
}

std::uint8_t
CodeGen::pickDest(bool fp)
{
    std::uint8_t r;
    if (fp) {
        r = static_cast<std::uint8_t>(numIntRegs + rng_.below(numFpRegs));
        recentFp_[recentFpPtr_] = r;
        recentFpPtr_ = (recentFpPtr_ + 1) & 3;
    } else {
        // r0 reserved as "zero"-ish: skip it for dests.
        r = static_cast<std::uint8_t>(1 + rng_.below(numIntRegs - 1));
        recentInt_[recentIntPtr_] = r;
        recentIntPtr_ = (recentIntPtr_ + 1) & 3;
    }
    return r;
}

std::uint8_t
CodeGen::pickSrc(bool fp)
{
    // Bias toward recently written registers to create dependence
    // chains of realistic length.
    if (rng_.chance(0.40))
        return fp ? recentFp_[rng_.below(4)] : recentInt_[rng_.below(4)];
    if (fp)
        return static_cast<std::uint8_t>(numIntRegs +
                                         rng_.below(numFpRegs));
    return static_cast<std::uint8_t>(rng_.below(numIntRegs));
}

Instr
CodeGen::makeAlu()
{
    Instr in;
    const bool mul = rng_.chance(profile_.mulFrac);
    in.op = mul ? Op::IntMul : Op::IntAlu;
    in.srcA = pickSrc(false);
    in.srcB = pickSrc(false);
    in.dest = pickDest(false);
    return in;
}

Instr
CodeGen::makeLoad(MemPattern p, int region, int stream,
                  std::uint32_t stride, bool physical)
{
    Instr in;
    in.op = physical ? Op::LoadPhys : Op::Load;
    in.pattern = p;
    in.region = static_cast<std::uint8_t>(region);
    in.stream = static_cast<std::uint8_t>(stream);
    in.stride = stride;
    in.srcA = pickSrc(false);
    in.dest = pickDest(false);
    return in;
}

Instr
CodeGen::makeStore(MemPattern p, int region, int stream,
                   std::uint32_t stride, bool physical)
{
    Instr in;
    in.op = physical ? Op::StorePhys : Op::Store;
    in.pattern = p;
    in.region = static_cast<std::uint8_t>(region);
    in.stream = static_cast<std::uint8_t>(stream);
    in.stride = stride;
    in.srcA = pickSrc(false);
    in.srcB = pickSrc(false);
    return in;
}

Instr
CodeGen::makeWorkInstr(double phys_frac)
{
    if (rng_.chance(profile_.midBranchFrac)) {
        // Never-taken error-check branch: falls through on the
        // correct path (target only reachable by wrong-path fetch).
        return makeCond(0, 0.0);
    }
    const double u = rng_.uniform();
    const bool is_load = u < profile_.loadFrac;
    const bool is_store = !is_load &&
        u < profile_.loadFrac + profile_.storeFrac;
    if (is_load || is_store) {
        bool physical =
            rng_.chance(phys_frac) && !profile_.physRegions.empty();
        MemPattern p;
        int region = 0;
        const double m = rng_.uniform();
        if (physical || m >= profile_.seqFrac + profile_.stackFrac) {
            p = MemPattern::RandomInRegion;
        } else if (m < profile_.seqFrac) {
            p = MemPattern::SeqStream;
        } else {
            p = MemPattern::StackFrame;
        }
        if (p == MemPattern::StackFrame) {
            region = profile_.stackRegion;
        } else {
            const auto &choices =
                physical ? profile_.physRegions : profile_.virtRegions;
            double total = 0.0;
            for (const auto &rc : choices)
                total += rc.weight;
            double pick = rng_.uniform() * total;
            region = choices.front().region;
            for (const auto &rc : choices) {
                pick -= rc.weight;
                if (pick <= 0.0) {
                    region = rc.region;
                    break;
                }
            }
        }
        const auto stride = static_cast<std::uint32_t>(
            rng_.range(profile_.strideMin, profile_.strideMax) & ~7);
        // One stream per region keeps each thread's hot footprint at
        // one window/segment per region (realistic TLB/cache reach).
        const int stream = region & 3;
        return is_load
            ? makeLoad(p, region, stream, std::max(8u, stride), physical)
            : makeStore(p, region, stream, std::max(8u, stride),
                        physical);
    }
    if (u < profile_.loadFrac + profile_.storeFrac + profile_.fpFrac) {
        Instr in;
        in.op = rng_.chance(0.5) ? Op::FpAdd : Op::FpMul;
        in.srcA = pickSrc(true);
        in.srcB = pickSrc(true);
        in.dest = pickDest(true);
        return in;
    }
    return makeAlu();
}

void
CodeGen::emitWork(int n)
{
    emitWork(n, profile_.physMemFrac);
}

void
CodeGen::emitWork(int n, double phys_frac)
{
    for (int i = 0; i < n; ++i)
        image_.emit(makeWorkInstr(phys_frac));
}

Instr
CodeGen::makeCond(int target_block, double taken_chance)
{
    Instr in;
    in.op = Op::CondBranch;
    in.srcA = pickSrc(false);
    in.targetBlock = target_block;
    in.takenChance1024 = static_cast<std::uint16_t>(
        std::clamp(taken_chance, 0.0, 1.0) * 1024.0);
    return in;
}

Instr
CodeGen::makeLoop(int target_block, std::uint16_t trip, int slot,
                  std::uint16_t dyn_payload)
{
    Instr in;
    in.op = Op::CondBranch;
    in.srcA = pickSrc(false);
    in.targetBlock = target_block;
    in.loopTrip = trip;
    in.loopSlot = static_cast<std::uint8_t>(slot & 3);
    in.payload = dyn_payload;
    return in;
}

Instr
CodeGen::makeJump(int target_block)
{
    Instr in;
    in.op = Op::Jump;
    in.targetBlock = target_block;
    return in;
}

Instr
CodeGen::makeCall(int callee)
{
    Instr in;
    in.op = Op::Call;
    in.callee = callee;
    return in;
}

Instr
CodeGen::makeReturn()
{
    Instr in;
    in.op = Op::Return;
    return in;
}

Instr
CodeGen::makePalReturn()
{
    Instr in;
    in.op = Op::PalReturn;
    return in;
}

Instr
CodeGen::makeSyscall(std::uint16_t number)
{
    Instr in;
    in.op = Op::Syscall;
    in.payload = number;
    return in;
}

Instr
CodeGen::makeMagic(MagicOp op, std::uint16_t payload)
{
    Instr in;
    in.op = Op::Magic;
    in.magic = op;
    in.payload = payload;
    return in;
}

Instr
CodeGen::makeTlbWrite()
{
    Instr in;
    in.op = Op::TlbWrite;
    return in;
}

void
CodeGen::genPadding(int n)
{
    // Per-generator counter: pad names are deterministic per image
    // and generators on different runner threads don't contend.
    image_.beginFunction("pad" + std::to_string(padCounter_++), -1);
    image_.beginBlock();
    for (int i = 0; i < n; ++i) {
        Instr nop;
        nop.op = Op::Nop;
        image_.emit(nop);
    }
    image_.emit(makeReturn());
}

int
CodeGen::genFunction(const std::string &name, int num_blocks,
                     const std::vector<int> &callees, int tag,
                     bool infinite_loop, bool pal)
{
    smtos_assert(num_blocks >= 1);
    const int f = image_.beginFunction(name, tag, pal);

    // Plan terminators first so forward targets stay in range.
    for (int b = 0; b < num_blocks; ++b) {
        image_.beginBlock();
        const int body = static_cast<int>(
            rng_.range(profile_.instrsPerBlockMin,
                       profile_.instrsPerBlockMax));
        emitWork(body);

        const bool last = (b == num_blocks - 1);
        if (last) {
            if (infinite_loop)
                image_.emit(makeJump(0));
            else
                image_.emit(makeReturn());
            break;
        }

        const double u = rng_.uniform();
        double acc = profile_.loopFrac;
        if (u < acc) {
            // Self-loop: re-executes this block trip times.
            const auto trip = static_cast<std::uint16_t>(
                rng_.range(profile_.loopTripMin, profile_.loopTripMax));
            image_.emit(makeLoop(b, trip, static_cast<int>(b) & 3));
            continue;
        }
        acc += profile_.diamondFrac;
        if (u < acc && b + 2 < num_blocks) {
            // Forward skip over the next block. Real branches are
            // mostly strongly biased (and thus predictable); mix
            // strong-taken / strong-not-taken / moderate so the
            // aggregate taken rate matches the profile while the
            // misprediction rate stays realistic.
            const int span = static_cast<int>(
                1 + rng_.below(std::min(3, num_blocks - 1 - (b + 1))));
            const double t_frac = std::clamp(
                (profile_.takenBias - 0.1175) / 0.9, 0.05, 0.9);
            const double d = rng_.uniform();
            double chance;
            if (d < t_frac)
                chance = 0.95;
            else if (d < 0.85)
                chance = 0.05;
            else
                chance = 0.5;
            image_.emit(makeCond(b + 1 + span, chance));
            continue;
        }
        acc += profile_.indirectFrac;
        if (u < acc && b + 2 < num_blocks) {
            const int max_fan =
                std::min<int>(profile_.indirectFanMax,
                              num_blocks - 1 - b);
            const int fan = std::max(
                1, static_cast<int>(rng_.range(
                       std::min(profile_.indirectFanMin, max_fan),
                       max_fan)));
            Instr in;
            in.op = Op::IndirectJump;
            in.srcA = pickSrc(false);
            in.targetBlock = b + 1;
            in.indirectFan = static_cast<std::uint8_t>(fan);
            image_.emit(in);
            continue;
        }
        if (!callees.empty() && rng_.chance(0.5)) {
            image_.emit(
                makeCall(callees[rng_.below(callees.size())]));
            continue;
        }
        // Plain fall-through into the next block.
    }
    return f;
}

} // namespace smtos
