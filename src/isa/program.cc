#include "isa/program.h"

#include "common/logging.h"

namespace smtos {

CodeImage::CodeImage(std::string name, Addr text_base)
    : name_(std::move(name)), textBase_(text_base)
{
}

int
CodeImage::beginFunction(const std::string &name, int tag, bool pal)
{
    smtos_assert(!finalized_);
    Function f;
    f.firstBlock = static_cast<std::uint32_t>(blocks_.size());
    f.numBlocks = 0;
    f.tag = static_cast<std::int16_t>(tag);
    f.pal = pal;
    f.name = name;
    funcs_.push_back(std::move(f));
    const int idx = static_cast<int>(funcs_.size()) - 1;
    if (!name.empty()) {
        smtos_assert(funcIndex_.count(name) == 0);
        funcIndex_.emplace(name, idx);
    }
    funcOpen_ = true;
    return idx;
}

int
CodeImage::beginBlock()
{
    smtos_assert(!finalized_ && funcOpen_);
    BasicBlock b;
    b.firstInstr = static_cast<std::uint32_t>(instrs_.size());
    b.numInstrs = 0;
    blocks_.push_back(b);
    Function &f = funcs_.back();
    ++f.numBlocks;
    return f.numBlocks - 1;
}

void
CodeImage::emit(const Instr &in)
{
    smtos_assert(!finalized_ && !blocks_.empty());
    instrs_.push_back(in);
    ++blocks_.back().numInstrs;
}

void
CodeImage::finalize()
{
    smtos_assert(!finalized_);
    finalized_ = true;
    funcTags_.clear();
    funcTags_.reserve(funcs_.size());
    funcPal_.clear();
    funcPal_.reserve(funcs_.size());
    for (const Function &f : funcs_) {
        funcTags_.push_back(f.tag);
        funcPal_.push_back(f.pal ? 1 : 0);
    }
    // Validate: blocks non-empty, targets and callees within range.
    for (const Function &f : funcs_) {
        smtos_assert(f.numBlocks > 0);
        for (int b = 0; b < f.numBlocks; ++b) {
            const BasicBlock &bb = blocks_[f.firstBlock + b];
            if (bb.numInstrs == 0)
                smtos_panic("image %s: empty block in %s",
                            name_.c_str(), f.name.c_str());
            for (int i = 0; i < bb.numInstrs; ++i) {
                const Instr &in = instrs_[bb.firstInstr + i];
                if (in.op == Op::CondBranch || in.op == Op::Jump ||
                    in.op == Op::IndirectJump) {
                    smtos_assert(in.targetBlock >= 0);
                    smtos_assert(in.targetBlock +
                                 (in.op == Op::IndirectJump
                                  ? in.indirectFan - 1 : 0)
                                 < f.numBlocks);
                }
                if (in.op == Op::Call) {
                    smtos_assert(in.callee >= 0 &&
                                 in.callee <
                                 static_cast<int>(funcs_.size()));
                }
                const bool is_terminator = (i == bb.numInstrs - 1);
                const bool never_taken =
                    in.op == Op::CondBranch &&
                    in.takenChance1024 == 0 && in.loopTrip == 0;
                if (in.isBranch() && !in.isSerializing() &&
                    !never_taken && !is_terminator) {
                    smtos_panic("image %s: branch mid-block in %s",
                                name_.c_str(), f.name.c_str());
                }
            }
        }
    }
}

int
CodeImage::funcByName(const std::string &name) const
{
    auto it = funcIndex_.find(name);
    if (it == funcIndex_.end())
        smtos_fatal("image %s: no function named %s", name_.c_str(),
                    name.c_str());
    return it->second;
}

} // namespace smtos
