/**
 * @file
 * Disassembly of synthetic instructions and image listings, for
 * debugging workloads and the kernel image.
 */

#ifndef SMTOS_ISA_DISASM_H
#define SMTOS_ISA_DISASM_H

#include <iosfwd>
#include <string>

#include "isa/program.h"

namespace smtos {

/** One-line rendering of a static instruction. */
std::string disasm(const Instr &in);

/** Listing of one function: blocks, PCs, instructions. */
void listFunction(std::ostream &os, const CodeImage &img, int func);

/** Summary of a whole image: functions, sizes, tags, footprint. */
void imageSummary(std::ostream &os, const CodeImage &img);

} // namespace smtos

#endif // SMTOS_ISA_DISASM_H
