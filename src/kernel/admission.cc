/**
 * @file
 * AdmitParams string parsing (the SMTOS_ADMIT grammar). The decision
 * logic itself lives header-side in AdmissionControl so the kernel's
 * hot path inlines it.
 */

#include "kernel/admission.h"

#include <cstdlib>
#include <sstream>

#include "common/logging.h"

namespace smtos {

namespace {

double
parseDouble(const std::string &key, const std::string &v)
{
    char *end = nullptr;
    const double d = std::strtod(v.c_str(), &end);
    if (end == v.c_str() || *end != '\0')
        smtos_fatal("SMTOS_ADMIT: bad value '%s' for %s", v.c_str(),
                    key.c_str());
    return d;
}

std::uint64_t
parseU64(const std::string &key, const std::string &v)
{
    char *end = nullptr;
    const std::uint64_t u = std::strtoull(v.c_str(), &end, 0);
    if (end == v.c_str() || *end != '\0')
        smtos_fatal("SMTOS_ADMIT: bad value '%s' for %s", v.c_str(),
                    key.c_str());
    return u;
}

} // namespace

AdmitParams
AdmitParams::fromString(const std::string &spec)
{
    AdmitParams p;
    std::stringstream ss(spec);
    std::string item;
    while (std::getline(ss, item, ',')) {
        if (item.empty())
            continue;
        const auto eq = item.find('=');
        if (eq == std::string::npos)
            smtos_fatal("SMTOS_ADMIT: expected key=value, got '%s'",
                        item.c_str());
        const std::string key = item.substr(0, eq);
        const std::string val = item.substr(eq + 1);
        if (key == "policy") {
            if (val == "none")
                p.policy = AdmitPolicy::None;
            else if (val == "droptail")
                p.policy = AdmitPolicy::DropTail;
            else if (val == "red")
                p.policy = AdmitPolicy::RandomEarlyDrop;
            else if (val == "oldest")
                p.policy = AdmitPolicy::OldestFirst;
            else
                smtos_fatal("SMTOS_ADMIT: unknown policy '%s'",
                            val.c_str());
        } else if (key == "cap") {
            p.queueCap = static_cast<int>(parseU64(key, val));
        } else if (key == "redmin") {
            p.redMinDepth = static_cast<int>(parseU64(key, val));
        } else if (key == "redmaxp") {
            p.redMaxProb = parseDouble(key, val);
        } else if (key == "deadline") {
            p.shedDeadline = parseU64(key, val);
        } else if (key == "seed") {
            p.seed = parseU64(key, val);
        } else if (key == "mbufacct") {
            p.mbufAccounting = parseU64(key, val) != 0;
        } else {
            smtos_fatal("SMTOS_ADMIT: unknown key '%s'", key.c_str());
        }
    }
    if (p.policy != AdmitPolicy::None && p.queueCap <= 0)
        smtos_fatal("SMTOS_ADMIT: policy without cap>0");
    if (p.redMaxProb < 0.0 || p.redMaxProb > 1.0)
        smtos_fatal("SMTOS_ADMIT: redmaxp outside [0,1]");
    return p;
}

} // namespace smtos
