/**
 * @file
 * The MiniOS kernel code image.
 *
 * Every OS service the paper observes is a generated routine that the
 * simulated core actually fetches and executes: PAL TLB refill
 * handlers (physically fetched), the page-fault/allocation/zeroing
 * path, the syscall preamble and one routine per service, the network
 * driver and netisr protocol threads, the scheduler, and the idle
 * loop. "Magic" instructions inside the routines hand control to the
 * kernel model at the semantically meaningful points.
 */

#ifndef SMTOS_KERNEL_IMAGE_H
#define SMTOS_KERNEL_IMAGE_H

#include <cstdint>
#include <memory>

#include "isa/codegen.h"
#include "isa/program.h"

namespace smtos {

/** Syscall numbers used by generated user code. */
enum Sysno : std::uint16_t
{
    SysRead = 0,
    SysWrite,
    SysWritev,
    SysStat,
    SysOpen,
    SysClose,
    SysAccept,
    SysSelect,
    SysMmap,
    SysMunmap,
    SysBrk,
    SysGetPid,
    NumSysnos
};

/** Display name matching the paper's Figure 7 labels. */
const char *sysnoName(std::uint16_t n);

/** Resources a service may block on (MaybeBlock payloads). */
enum WaitChan : std::uint16_t
{
    WaitNone = 0,
    WaitAccept,   ///< pending-connection queue
    WaitRecv,     ///< socket receive data
    WaitProtoQ,   ///< netisr input queue
};

/** ServiceBody payloads: kernel-model actions inside services. */
enum SvcAction : std::uint16_t
{
    ActReadFileChunk = 0, ///< set copy IPRs for the next file chunk
    ActReadSockData,      ///< set copy IPRs for received request data
    ActStatCopyout,       ///< set copy IPRs for the stat buffer
    ActOpenFile,          ///< resolve file, set response chunk count
    ActWritevChunk,       ///< set copy IPRs user buffer -> mbuf
    ActDriverRx,          ///< move NIC ring packets to the proto queue
    ActLogWrite,          ///< small log write copy setup
    ActSpecRead,          ///< SPECInt input-file chunk read setup
};

/** Interrupt vectors. */
enum IntrVector : std::uint16_t
{
    VecNic = 0,
    VecTimer,
    VecResched,
    VecMce,       ///< machine check (injected transient fault)
    /** Cross-core TLB shootdown IPI (CMP only). The handler runs the
     *  resched interrupt code path, so the kernel image is unchanged;
     *  the kernel model counts deliveries separately. */
    VecShootdown,
};

/**
 * Hot services are generated in several variants (distinct
 * vnode/socket-type code paths, selected per process), so concurrent
 * contexts execute different kernel text, as on a real server.
 */
constexpr int serviceVariants = 4;

/** One netisr code path per protocol thread. */
constexpr int netisrVariants = 2;

/** Function indices of every kernel entry point. */
struct KernelCode
{
    CodeImage image{"kernel", kernelBase};

    int palDtlbRefill = -1;
    int palItlbRefill = -1;
    int vmPageFault = -1;
    int pageAlloc = -1;
    int pageZero = -1;

    int sysEntry[serviceVariants] = {-1, -1, -1, -1};
    int svcReadFile[serviceVariants] = {-1, -1, -1, -1};
    int svcReadSock[serviceVariants] = {-1, -1, -1, -1};
    int svcWritev[serviceVariants] = {-1, -1, -1, -1};
    int svcStat[serviceVariants] = {-1, -1, -1, -1};
    int svcOpen[serviceVariants] = {-1, -1, -1, -1};
    int svcClose[serviceVariants] = {-1, -1, -1, -1};
    int svcAccept[serviceVariants] = {-1, -1, -1, -1};
    int netOutput[serviceVariants] = {-1, -1, -1, -1};
    int svcWrite = -1;
    int svcSelect = -1;
    int svcMmap = -1;
    int svcMunmap = -1;
    int svcBrk = -1;
    int svcGetPid = -1;

    int spinWait = -1;

    int intrNet = -1;
    int intrTimer = -1;
    int intrResched = -1;
    int intrMce = -1;
    int netisrLoop[netisrVariants] = {-1, -1};
    int schedSwitch = -1;
    int idleLoop = -1;
};

/**
 * Build the kernel image. Deterministic per seed; the generated code's
 * instruction mix follows the paper's kernel columns (about half of
 * memory references physical, diamond-shaped branches with a low taken
 * rate, few loops).
 */
std::unique_ptr<KernelCode> buildKernelImage(std::uint64_t seed);

} // namespace smtos

#endif // SMTOS_KERNEL_IMAGE_H
