/**
 * @file
 * TLB fault vectoring: decide between the PAL fast-refill path and the
 * kernel page-fault/allocation path, and implement the magic
 * translation used by the application-only simulator mode.
 */

#include "common/logging.h"
#include "kernel/kernel.h"

namespace smtos {

AddrSpace &
Kernel::spaceFor(Process &p, Addr vaddr, bool &global)
{
    if (vaddr >= kernelBase) {
        global = true;
        return *kernelSpace_;
    }
    global = false;
    SMTOS_CHECK(p.isUser());
    return *p.space;
}

void
Kernel::handleTlbFault(Process &p, Addr vaddr, bool itlb)
{
    bool global = false;
    AddrSpace &sp = spaceFor(p, vaddr, global);
    const Addr vpn = pageOf(vaddr);

    FaultRec r;
    r.vpn = vpn;
    r.itlb = itlb ? 1 : 0;
    r.global = global ? 1 : 0;
    r.isText = itlb ? 1 : 0;
    r.pteAddr = sp.ptePhysAddr(vpn);

    const std::int64_t frame = sp.translate(vpn);
    if (frame >= 0) {
        r.frame = static_cast<Frame>(frame);
        p.ts.cursor.pushFault(r);
        p.ts.cursor.push(itlb ? kc_.palItlbRefill : kc_.palDtlbRefill,
                         true);
        mmEntries_.add(itlb ? "itlb_refill" : "dtlb_refill");
    } else {
        // First touch: the long path through the allocator.
        SMTOS_CHECK(!global); // kernel mappings are always present
        p.ts.cursor.pushFault(r);
        p.ts.cursor.push(kc_.vmPageFault, true);
        mmEntries_.add("page_fault");
    }

    if (params_.sharedTlbIpr) {
        // Unmodified-SMP-OS ablation: handlers serialize on the
        // shared TLB-miss IPRs. Acquire the virtual lock and spin for
        // the time the current holder still needs.
        const Cycle handler_cost = 140;
        const Cycle wait = tlbLockFreeAt_ > nowCycle_
                               ? tlbLockFreeAt_ - nowCycle_
                               : 0;
        tlbLockFreeAt_ =
            (tlbLockFreeAt_ > nowCycle_ ? tlbLockFreeAt_ : nowCycle_) +
            handler_cost;
        if (wait > 0) {
            p.ts.iprs.intrTrip =
                static_cast<std::uint32_t>(wait / 4 + 1);
            p.ts.cursor.push(kc_.spinWait, true);
            mmEntries_.add("tlb_lock_spin");
        }
    }
}

void
Kernel::dtlbMiss(ThreadState &t, Addr vaddr)
{
    SMTOS_CHECK(!params_.appOnly);
    handleTlbFault(*procOf(t), vaddr, false);
}

void
Kernel::itlbMiss(ThreadState &t, Addr pc)
{
    SMTOS_CHECK(!params_.appOnly);
    handleTlbFault(*procOf(t), pc, true);
}

Addr
Kernel::magicTranslate(ThreadState &t, Addr vaddr, bool itlb)
{
    (void)itlb;
    Process &p = *procOf(t);
    bool global = false;
    AddrSpace &sp = spaceFor(p, vaddr, global);
    const Addr vpn = pageOf(vaddr);
    std::int64_t frame = sp.translate(vpn);
    if (frame < 0)
        frame = static_cast<std::int64_t>(sp.mapNew(vpn));
    return PhysMem::frameAddr(static_cast<Frame>(frame)) +
           pageOffset(vaddr);
}

} // namespace smtos
