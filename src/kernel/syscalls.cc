/**
 * @file
 * System call dispatch and magic-operation semantics: the kernel-model
 * side effects behind the code paths in the kernel image.
 */

#include <algorithm>

#include "common/logging.h"
#include "kernel/kernel.h"
#include "kernel/tags.h"

namespace smtos {

void
Kernel::dispatchSyscall(Context &ctx, Process &p)
{
    (void)ctx;
    // A completed trap/dispatch is forward progress: only consecutive
    // machine checks with none in between count toward the kill limit.
    p.mceHits = 0;
    const int v = p.pid % serviceVariants;
    int func = -1;
    switch (p.pendingSyscall) {
      case SysRead:
        func = (p.cfg.kind == ProcKind::ApacheServer && !p.reqConsumed)
                   ? kc_.svcReadSock[v]
                   : kc_.svcReadFile[v];
        break;
      case SysWrite:
        func = kc_.svcWrite;
        break;
      case SysWritev:
        func = kc_.svcWritev[v];
        break;
      case SysStat:
        func = kc_.svcStat[v];
        break;
      case SysOpen:
        func = kc_.svcOpen[v];
        break;
      case SysClose:
        func = kc_.svcClose[v];
        // Model effect: tear down the connection.
        if (p.conn >= 0) {
            lockAcquire(connLock_, "conn", &p, connLockHold);
            Connection &cn = conns_[static_cast<size_t>(p.conn)];
            if (params_.admit.mbufAccounting)
                freeRxMbuf(cn.mbuf, cn.reqBytes);
            cn.inUse = false;
            p.conn = -1;
            ++requestsServed_;
            ++p.requestsServed;
        }
        break;
      case SysAccept:
        func = kc_.svcAccept[v];
        break;
      case SysSelect:
        func = kc_.svcSelect;
        break;
      case SysMmap:
        func = kc_.svcMmap;
        mmEntries_.add("smmap");
        break;
      case SysMunmap:
        func = kc_.svcMunmap;
        break;
      case SysBrk:
        func = kc_.svcBrk;
        mmEntries_.add("obreak");
        break;
      case SysGetPid:
        func = kc_.svcGetPid;
        break;
      default:
        smtos_panic("unknown syscall %u", p.pendingSyscall);
    }
    p.ts.cursor.push(func, true);
}

void
Kernel::doMagic(Context &ctx, Process &p, const Instr &in)
{
    ThreadIprs &iprs = p.ts.iprs;
    switch (in.magic) {
      case MagicOp::KernelDispatch:
        dispatchSyscall(ctx, p);
        return;

      case MagicOp::MaybeBlock:
        if (wouldBlock(p, in.payload))
            blockCurrent(ctx, p, in.payload);
        else
            deliverWait(p, in.payload);
        return;

      case MagicOp::ServiceBody:
        switch (in.payload) {
          case ActReadFileChunk: {
            int file;
            std::uint32_t chunk;
            if (p.cfg.kind == ProcKind::SpecIntApp) {
                file = p.cfg.inputFileId;
                chunk = 1024; // stdio-sized input reads
                iprs.copySrc = bufcachePagePhys(file, p.filePage);
                ++p.filePage;
            } else {
                SMTOS_CHECK(p.conn >= 0);
                file = conns_[static_cast<size_t>(p.conn)].fileId;
                chunk = std::min<std::uint32_t>(
                    static_cast<std::uint32_t>(pageBytes),
                    std::max<std::uint32_t>(p.fileBytesLeft, 64));
                iprs.copySrc = bufcachePagePhys(file, p.filePage);
                ++p.filePage;
                p.fileBytesLeft -= std::min(p.fileBytesLeft, chunk);
            }
            p.lastChunk = chunk;
            iprs.copyDst = userAuxBase;
            iprs.copyTrip = std::max<std::uint32_t>(1, chunk / 64);
            return;
          }
          case ActReadSockData: {
            SMTOS_CHECK(p.conn >= 0);
            Connection &cn = conns_[static_cast<size_t>(p.conn)];
            iprs.copySrc = cn.mbuf;
            iprs.copyDst = userAuxBase;
            iprs.copyTrip =
                std::max<std::uint32_t>(1, cn.recvAvail / 64);
            cn.recvAvail = 0;
            p.reqConsumed = true;
            return;
          }
          case ActStatCopyout:
            iprs.copySrc = kernelPhysHeapBase +
                           (mixHash(static_cast<std::uint64_t>(
                                p.conn >= 0
                                    ? conns_[static_cast<size_t>(
                                          p.conn)].fileId
                                    : p.pid)) %
                            (kernelPhysHeapBytes - 64) &
                            ~7ull);
            iprs.copyDst = userStackBase;
            return;
          case ActOpenFile: {
            int file = p.cfg.inputFileId;
            if (p.cfg.kind == ProcKind::ApacheServer) {
                SMTOS_CHECK(p.conn >= 0);
                file = conns_[static_cast<size_t>(p.conn)].fileId;
            }
            const std::uint32_t size = specWebFileBytes(file);
            p.fileBytesLeft = size;
            p.filePage = 0;
            iprs.serviceTrip = std::max<std::uint32_t>(
                1, (size + pageBytes - 1) / pageBytes);
            return;
          }
          case ActWritevChunk: {
            const std::uint32_t chunk =
                std::max<std::uint32_t>(64, p.lastChunk);
            iprs.copySrc = userAuxBase;
            lockAcquire(mbufLock_, "mbuf", &p, mbufLockHold);
            iprs.copyDst = params_.admit.mbufAccounting
                               ? allocTxMbuf(chunk)
                               : allocMbuf(chunk);
            iprs.copyTrip = std::max<std::uint32_t>(1, chunk / 64);
            Packet &tx = p.txPacket;
            tx = Packet{};
            if (p.conn >= 0) {
                const Connection &cn =
                    conns_[static_cast<size_t>(p.conn)];
                tx.client = cn.client;
                tx.conn = p.conn;
                tx.reqSeq = cn.reqSeq;
            }
            tx.bytes = chunk;
            tx.mbuf = iprs.copyDst;
            tx.fin = (p.fileBytesLeft == 0);
            return;
          }
          case ActDriverRx:
            driverRx(p);
            return;
          case ActLogWrite:
            iprs.copySrc = userGlobalsBase;
            iprs.copyDst = kernelPhysHeapBase + kernelPhysHeapBytes -
                           (64 << 10);
            iprs.copyTrip = 2;
            return;
          default:
            smtos_panic("unknown service action %u", in.payload);
        }

      case MagicOp::NetDeliver:
        netisrDeliver(p);
        return;

      case MagicOp::NetSend:
        netSend(p);
        return;

      case MagicOp::AllocPage: {
        SMTOS_CHECK(p.ts.cursor.hasFault());
        FaultRec &r = p.ts.cursor.topFault();
        AddrSpace &sp = r.global ? *kernelSpace_ : *p.space;
        // Re-check under the "VM lock": a racing fault may have
        // mapped the page already.
        const std::int64_t frame = sp.translate(r.vpn);
        if (frame >= 0) {
            r.frame = static_cast<Frame>(frame);
        } else {
            r.frame = sp.mapNew(r.vpn);
            mmEntries_.add("page_alloc");
        }
        if (r.isText)
            for (Pipeline *pl : pipes_)
                pl->hierarchy().flushIcache();
        return;
      }

      case MagicOp::Reschedule:
        if (in.payload == 1) {
            // Timer preemption: round-robin if someone is waiting.
            if (runnableFor(ctx.core))
                switchTo(ctx, pickNext(ctx.gid));
        } else {
            // Voluntary / idle poll: only leave idle or yield to a
            // waiting thread.
            if (runnableFor(ctx.core) &&
                (p.cfg.kind == ProcKind::IdleThread ||
                 in.payload == 0))
                switchTo(ctx, pickNext(ctx.gid));
        }
        return;

      case MagicOp::TlbFlushAsn: {
        // munmap model: drop one mapped heap page and its TLB entry.
        // On a CMP the page's translation may be cached by any core's
        // DTLB, so every core flushes and the others take the
        // shootdown IPI.
        if (p.isUser()) {
            const Addr heap_pages = p.cfg.heapBytes / pageBytes;
            const Addr vpn = pageOf(userHeapBase) +
                             rng_.below(heap_pages ? heap_pages : 1);
            if (p.space->mapped(vpn)) {
                p.space->unmap(vpn, true);
                for (Pipeline *pl : pipes_)
                    pl->dtlb().flushPage(vpn, p.space->asn());
                mmEntries_.add("munmap");
                tlbShootdown(ctx.core);
            }
        }
        return;
      }

      case MagicOp::IcacheFlush:
        for (Pipeline *pl : pipes_)
            pl->hierarchy().flushIcache();
        return;

      case MagicOp::SpinAcquire:
      case MagicOp::SpinRelease:
      case MagicOp::UserStage:
      case MagicOp::None:
        return;
    }
}

void
Kernel::appOnlySyscall(Process &p)
{
    // Application-only simulator: the syscall's semantic effect
    // happens with no kernel code and no hardware-state impact.
    ThreadIprs &iprs = p.ts.iprs;
    switch (p.pendingSyscall) {
      case SysRead:
        if (p.cfg.kind == ProcKind::SpecIntApp) {
            ++p.filePage;
            iprs.copyTrip = 64;
        }
        return;
      case SysOpen:
        if (p.cfg.kind == ProcKind::SpecIntApp && p.cfg.inputFileId >= 0)
            iprs.serviceTrip = std::max<std::uint32_t>(
                1, (specWebFileBytes(p.cfg.inputFileId) + pageBytes - 1)
                       / pageBytes);
        return;
      default:
        return;
    }
}

} // namespace smtos
