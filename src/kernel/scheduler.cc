/**
 * @file
 * Scheduling: run queue, context binding, ASN management.
 */

#include "common/logging.h"
#include "common/trace.h"
#include "kernel/kernel.h"
#include "obs/probes.h"

namespace smtos {

void
Kernel::lockAcquire(KLock &lk, const char *name, Process *p,
                    Cycle hold)
{
    if (numCores() <= 1)
        return;
    ++lk.acquisitions;
    const Cycle wait =
        lk.freeAt > nowCycle_ ? lk.freeAt - nowCycle_ : 0;
    lk.freeAt =
        (lk.freeAt > nowCycle_ ? lk.freeAt : nowCycle_) + hold;
    lk.holdCycles += hold;
    if (wait == 0)
        return;
    ++lk.contended;
    lk.spinCycles += wait;
    if (p && p->runningOn != invalidCtx) {
        // Same idiom as the shared-TLB-IPR spin (pal.cc): the holder
        // of the context executes spin-wait kernel code for the
        // remaining hold time.
        lockSpinByCore_[static_cast<std::size_t>(
            coreOf(p->runningOn))] += wait;
        p->ts.iprs.intrTrip =
            static_cast<std::uint32_t>(wait / 4 + 1);
        p->ts.cursor.push(kc_.spinWait, true);
    }
    if (probes_)
        probes_->lockEvent(name, wait, hold, nowCycle_);
}

void
Kernel::raiseOn(Context &ctx, std::uint16_t vector)
{
    if (numCores() > 1 && ctx.interruptPending &&
        ctx.interruptVector == VecShootdown &&
        vector != VecShootdown && pendingShootdowns_ > 0) {
        // The overwritten IPI will never deliver as a shootdown; its
        // flush already happened synchronously, so only the ledger
        // needs the correction.
        --pendingShootdowns_;
        ++shootdownsDelivered_;
    }
    pipeOfCtx(ctx).raiseInterrupt(ctx.id, vector);
}

void
Kernel::tlbShootdown(int initiator_core)
{
    if (numCores() <= 1)
        return;
    for (int gid = 0; gid < totalContexts(); ++gid) {
        if (coreOf(static_cast<CtxId>(gid)) == initiator_core)
            continue;
        Context &c = ctxAt(static_cast<CtxId>(gid));
        // The TLBs were flushed synchronously; the IPI models only
        // handler cost. Contexts already servicing an interrupt keep
        // theirs (the vector must not be overwritten).
        if (!c.hasThread() || c.interruptPending)
            continue;
        raiseOn(c, VecShootdown);
        ++shootdownIpis_;
        ++pendingShootdowns_;
    }
}

bool
Kernel::runnableFor(int core) const
{
    if (!runqFor(core).empty())
        return true;
    for (int k = 1; k < numCores(); ++k) {
        for (const Process *q : runqFor((core + k) % numCores()))
            if (q->state == Process::State::Ready && q->isUser())
                return true;
    }
    return false;
}

void
Kernel::enqueue(Process *p, bool front)
{
    smtos_assert(p->state == Process::State::Ready);
    auto &rq = runqFor(p->homeCore);
    if (numCores() > 1)
        lockAcquire(schedLocks_[static_cast<std::size_t>(p->homeCore)],
                    "sched", nullptr, schedLockHold);
    if (front)
        rq.push_front(p);
    else
        rq.push_back(p);
    if (probes_)
        probes_->queueDepth(0, rq.size(), nowCycle_);
}

Process *
Kernel::pickFromQueue(std::deque<Process *> &rq, CtxId preferred)
{
    const bool kthread_first =
        !rq.empty() && rq.front()->state == Process::State::Ready &&
        rq.front()->cfg.kind == ProcKind::KernelThread;
    if (params_.schedPolicy == SchedPolicy::Affinity &&
        preferred != invalidCtx && !kthread_first) {
        // Kernel (netisr) threads keep strict priority; affinity
        // only reorders user processes.
        // Prefer a ready process that last ran here (warm caches);
        // bounded scan so the policy stays O(1)-ish.
        int scanned = 0;
        for (auto it = rq.begin(); it != rq.end() && scanned < 8;
             ++it, ++scanned) {
            Process *p = *it;
            if (p->state == Process::State::Ready &&
                p->lastCtx == preferred) {
                rq.erase(it);
                if (probes_)
                    probes_->queueDepth(0, rq.size(), nowCycle_);
                return p;
            }
        }
    }
    while (!rq.empty()) {
        Process *p = rq.front();
        rq.pop_front();
        if (p->state == Process::State::Ready) {
            if (probes_)
                probes_->queueDepth(0, rq.size(), nowCycle_);
            return p;
        }
    }
    return nullptr;
}

Process *
Kernel::pickNext(CtxId preferred)
{
    const int core = preferred == invalidCtx ? 0 : coreOf(preferred);
    if (numCores() > 1)
        lockAcquire(schedLocks_[static_cast<std::size_t>(core)],
                    "sched", nullptr, schedLockHold);
    Process *p = pickFromQueue(runqFor(core), preferred);
    if (p || numCores() == 1)
        return p;
    // Work stealing: deterministic scan of the other cores' queues
    // for a ready user process (netisrs stay pinned to their home
    // core's protocol queue).
    for (int k = 1; k < numCores(); ++k) {
        const int victim = (core + k) % numCores();
        lockAcquire(schedLocks_[static_cast<std::size_t>(victim)],
                    "sched", nullptr, schedLockHold);
        auto &vq = runqFor(victim);
        for (auto it = vq.begin(); it != vq.end(); ++it) {
            Process *q = *it;
            if (q->state == Process::State::Ready && q->isUser()) {
                vq.erase(it);
                q->homeCore = core;
                ++steals_;
                if (probes_)
                    probes_->queueDepth(0, vq.size(), nowCycle_);
                return q;
            }
        }
    }
    return nullptr;
}

void
Kernel::assignAsn(AddrSpace &space, int initiator_core)
{
    if (nextAsn_ > params_.maxAsn) {
        // ASN wraparound: flush both shared TLBs on every core and
        // restart the numbering; remote cores get shootdown IPIs.
        // Running processes get fresh ASNs immediately.
        ++wraparounds_;
        for (Pipeline *pl : pipes_) {
            pl->itlb().flushAll();
            pl->dtlb().flushAll();
        }
        tlbShootdown(initiator_core);
        nextAsn_ = 1;
        for (auto &pp : procs_) {
            if (pp->isUser())
                pp->space->setAsn(-1);
        }
        kernelSpace_->setAsn(0);
        for (Process *cur : curProc_) {
            if (cur && cur->isUser() && cur->space->asn() < 0)
                cur->space->setAsn(nextAsn_++);
        }
        if (space.asn() >= 0)
            return; // got one as a running process
    }
    space.setAsn(nextAsn_++);
}

void
Kernel::switchTo(Context &ctx, Process *next)
{
    Process *old = curProc_[static_cast<size_t>(ctx.gid)];
    if (!next)
        next = idleForCtx_[static_cast<size_t>(ctx.gid)];
    smtos_assert(next != nullptr);
    if (next == old)
        return;

    if (old && old->state == Process::State::Running) {
        old->state = Process::State::Ready;
        old->lastCtx = ctx.gid;
        old->runningOn = invalidCtx;
        if (old->cfg.kind != ProcKind::IdleThread)
            enqueue(old, old->cfg.kind == ProcKind::KernelThread);
    } else if (old) {
        old->lastCtx = ctx.gid;
        old->runningOn = invalidCtx;
    }

    next->state = Process::State::Running;
    next->runningOn = ctx.gid;
    if (next->isUser() && next->space->asn() < 0)
        assignAsn(*next->space, ctx.core);
    pipeOfCtx(ctx).bindThread(ctx.id, &next->ts);
    curProc_[static_cast<size_t>(ctx.gid)] = next;
    ++switches_;
    smtos_trace(TraceCat::Sched, "ctx%d: pid%d -> pid%d", ctx.gid,
                old ? old->pid : -1, next->pid);
    if (probes_) {
        const bool idle = next->cfg.kind == ProcKind::IdleThread;
        const std::string label =
            next->cfg.kind == ProcKind::KernelThread
                ? "netisr" + std::to_string(next->pid)
                : "pid" + std::to_string(next->pid);
        probes_->threadSwitch(ctx.gid, next->pid, idle, label);
        // A process dispatched while serving a connection closes that
        // request's scheduler-wait stage (the tracer ignores repeat
        // dispatches after preemption).
        if (next->conn >= 0 &&
            conns_[static_cast<size_t>(next->conn)].inUse) {
            const Connection &cn =
                conns_[static_cast<size_t>(next->conn)];
            probes_->reqDispatched(cn.client, cn.reqSeq, ctx.gid,
                                   next->pid, nowCycle_);
        }
    }

    // The incoming thread pays the context-switch cost.
    if (!params_.appOnly)
        next->ts.cursor.push(kc_.schedSwitch, true);
    // bindThread synced the observer before the frame push above; the
    // post-push state is the one the incoming thread retires from.
    pipeOfCtx(ctx).noteOsStateSync(next->ts);
}

void
Kernel::blockCurrent(Context &ctx, Process &p, std::uint16_t chan)
{
    p.state = Process::State::Blocked;
    p.waitChan = chan;
    waiters_[chan].push_back(&p);
    switchTo(ctx, pickNext(ctx.gid));
}

void
Kernel::deliverWait(Process &p, std::uint16_t chan)
{
    if (chan == WaitAccept) {
        // Claiming a connection mutates the shared table.
        lockAcquire(connLock_, "conn", &p, connLockHold);
        smtos_assert(!acceptQ_.empty());
        const int conn = acceptQ_.front();
        acceptQ_.pop_front();
        p.conn = conn;
        p.reqConsumed = false;
        conns_[static_cast<size_t>(conn)].owner = p.pid;
        if (probes_) {
            const Connection &cn = conns_[static_cast<size_t>(conn)];
            probes_->reqClaimed(cn.client, cn.reqSeq, p.pid,
                                nowCycle_);
            probes_->queueDepth(1, acceptQ_.size(), nowCycle_);
            // An already-running process claimed the connection on a
            // non-blocking accept: there is no scheduler wait, so the
            // dispatch boundary coincides with the claim.
            if (p.state == Process::State::Running)
                probes_->reqDispatched(cn.client, cn.reqSeq,
                                       p.runningOn, p.pid, nowCycle_);
        }
    }
}

bool
Kernel::wouldBlock(Process &p, std::uint16_t chan) const
{
    switch (chan) {
      case WaitAccept:
        return acceptQ_.empty();
      case WaitRecv:
        return p.conn < 0 ||
               conns_[static_cast<size_t>(p.conn)].recvAvail == 0;
      case WaitProtoQ:
        // Netisrs drain their own core's protocol queue.
        return protoQFor(p.homeCore).empty();
      default:
        return false;
    }
}

void
Kernel::wakeWaiters(std::uint16_t chan)
{
    auto &ws = waiters_[chan];
    if (chan == WaitRecv) {
        for (auto it = ws.begin(); it != ws.end();) {
            Process *p = *it;
            if (p->conn >= 0 &&
                conns_[static_cast<size_t>(p->conn)].recvAvail > 0) {
                it = ws.erase(it);
                p->state = Process::State::Ready;
                p->waitChan = WaitNone;
                enqueue(p);
                nudgeIdleContext();
            } else {
                ++it;
            }
        }
        return;
    }

    // Front-to-back: wake each waiter whose resource is available.
    // The accept queue is chip-global; protocol queues are per-core,
    // so a netisr only wakes when its own core's queue has packets.
    auto available = [&](const Process *p) {
        return chan == WaitAccept
                   ? !acceptQ_.empty()
                   : !protoQFor(p->homeCore).empty();
    };
    for (auto it = ws.begin(); it != ws.end();) {
        Process *p = *it;
        if (!available(p)) {
            ++it;
            continue;
        }
        it = ws.erase(it);
        deliverWait(*p, chan);
        p->state = Process::State::Ready;
        p->waitChan = WaitNone;
        enqueue(p, p->cfg.kind == ProcKind::KernelThread);
        nudgeIdleContext();
    }
}

void
Kernel::nudgeIdleContext()
{
    for (int c = 0; c < totalContexts(); ++c) {
        Process *cur = curProc_[static_cast<size_t>(c)];
        Context &ctx = ctxAt(static_cast<CtxId>(c));
        if (cur && cur->cfg.kind == ProcKind::IdleThread &&
            !ctx.interruptPending) {
            raiseOn(ctx, VecResched);
            return;
        }
    }
}

} // namespace smtos
