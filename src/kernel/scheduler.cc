/**
 * @file
 * Scheduling: run queue, context binding, ASN management.
 */

#include "common/logging.h"
#include "common/trace.h"
#include "kernel/kernel.h"
#include "obs/probes.h"

namespace smtos {

void
Kernel::enqueue(Process *p, bool front)
{
    smtos_assert(p->state == Process::State::Ready);
    if (front)
        runq_.push_front(p);
    else
        runq_.push_back(p);
    if (probes_)
        probes_->queueDepth(0, runq_.size(), nowCycle_);
}

Process *
Kernel::pickNext(CtxId preferred)
{
    const bool kthread_first =
        !runq_.empty() &&
        runq_.front()->state == Process::State::Ready &&
        runq_.front()->cfg.kind == ProcKind::KernelThread;
    if (params_.schedPolicy == SchedPolicy::Affinity &&
        preferred != invalidCtx && !kthread_first) {
        // Kernel (netisr) threads keep strict priority; affinity
        // only reorders user processes.
        // Prefer a ready process that last ran here (warm caches);
        // bounded scan so the policy stays O(1)-ish.
        int scanned = 0;
        for (auto it = runq_.begin();
             it != runq_.end() && scanned < 8; ++it, ++scanned) {
            Process *p = *it;
            if (p->state == Process::State::Ready &&
                p->lastCtx == preferred) {
                runq_.erase(it);
                if (probes_)
                    probes_->queueDepth(0, runq_.size(), nowCycle_);
                return p;
            }
        }
    }
    while (!runq_.empty()) {
        Process *p = runq_.front();
        runq_.pop_front();
        if (p->state == Process::State::Ready) {
            if (probes_)
                probes_->queueDepth(0, runq_.size(), nowCycle_);
            return p;
        }
    }
    return nullptr;
}

void
Kernel::assignAsn(AddrSpace &space)
{
    if (nextAsn_ > params_.maxAsn) {
        // ASN wraparound: flush both shared TLBs and restart the
        // numbering. Running processes get fresh ASNs immediately.
        ++wraparounds_;
        pipe_.itlb().flushAll();
        pipe_.dtlb().flushAll();
        nextAsn_ = 1;
        for (auto &pp : procs_) {
            if (pp->isUser())
                pp->space->setAsn(-1);
        }
        kernelSpace_->setAsn(0);
        for (Process *cur : curProc_) {
            if (cur && cur->isUser() && cur->space->asn() < 0)
                cur->space->setAsn(nextAsn_++);
        }
        if (space.asn() >= 0)
            return; // got one as a running process
    }
    space.setAsn(nextAsn_++);
}

void
Kernel::switchTo(Context &ctx, Process *next)
{
    Process *old = curProc_[static_cast<size_t>(ctx.id)];
    if (!next)
        next = idleForCtx_[static_cast<size_t>(ctx.id)];
    smtos_assert(next != nullptr);
    if (next == old)
        return;

    if (old && old->state == Process::State::Running) {
        old->state = Process::State::Ready;
        old->lastCtx = ctx.id;
        old->runningOn = invalidCtx;
        if (old->cfg.kind != ProcKind::IdleThread)
            enqueue(old, old->cfg.kind == ProcKind::KernelThread);
    } else if (old) {
        old->lastCtx = ctx.id;
        old->runningOn = invalidCtx;
    }

    next->state = Process::State::Running;
    next->runningOn = ctx.id;
    if (next->isUser() && next->space->asn() < 0)
        assignAsn(*next->space);
    pipe_.bindThread(ctx.id, &next->ts);
    curProc_[static_cast<size_t>(ctx.id)] = next;
    ++switches_;
    smtos_trace(TraceCat::Sched, "ctx%d: pid%d -> pid%d", ctx.id,
                old ? old->pid : -1, next->pid);
    if (probes_) {
        const bool idle = next->cfg.kind == ProcKind::IdleThread;
        const std::string label =
            next->cfg.kind == ProcKind::KernelThread
                ? "netisr" + std::to_string(next->pid)
                : "pid" + std::to_string(next->pid);
        probes_->threadSwitch(ctx.id, next->pid, idle, label);
        // A process dispatched while serving a connection closes that
        // request's scheduler-wait stage (the tracer ignores repeat
        // dispatches after preemption).
        if (next->conn >= 0 &&
            conns_[static_cast<size_t>(next->conn)].inUse) {
            const Connection &cn =
                conns_[static_cast<size_t>(next->conn)];
            probes_->reqDispatched(cn.client, cn.reqSeq, ctx.id,
                                   next->pid, nowCycle_);
        }
    }

    // The incoming thread pays the context-switch cost.
    if (!params_.appOnly)
        next->ts.cursor.push(kc_.schedSwitch, true);
    // bindThread synced the observer before the frame push above; the
    // post-push state is the one the incoming thread retires from.
    pipe_.noteOsStateSync(next->ts);
}

void
Kernel::blockCurrent(Context &ctx, Process &p, std::uint16_t chan)
{
    p.state = Process::State::Blocked;
    p.waitChan = chan;
    waiters_[chan].push_back(&p);
    switchTo(ctx, pickNext(ctx.id));
}

void
Kernel::deliverWait(Process &p, std::uint16_t chan)
{
    if (chan == WaitAccept) {
        smtos_assert(!acceptQ_.empty());
        const int conn = acceptQ_.front();
        acceptQ_.pop_front();
        p.conn = conn;
        p.reqConsumed = false;
        conns_[static_cast<size_t>(conn)].owner = p.pid;
        if (probes_) {
            const Connection &cn = conns_[static_cast<size_t>(conn)];
            probes_->reqClaimed(cn.client, cn.reqSeq, p.pid,
                                nowCycle_);
            probes_->queueDepth(1, acceptQ_.size(), nowCycle_);
            // An already-running process claimed the connection on a
            // non-blocking accept: there is no scheduler wait, so the
            // dispatch boundary coincides with the claim.
            if (p.state == Process::State::Running)
                probes_->reqDispatched(cn.client, cn.reqSeq,
                                       p.runningOn, p.pid, nowCycle_);
        }
    }
}

bool
Kernel::wouldBlock(Process &p, std::uint16_t chan) const
{
    switch (chan) {
      case WaitAccept:
        return acceptQ_.empty();
      case WaitRecv:
        return p.conn < 0 ||
               conns_[static_cast<size_t>(p.conn)].recvAvail == 0;
      case WaitProtoQ:
        return protoQ_.empty();
      default:
        return false;
    }
}

void
Kernel::wakeWaiters(std::uint16_t chan)
{
    auto &ws = waiters_[chan];
    if (chan == WaitRecv) {
        for (auto it = ws.begin(); it != ws.end();) {
            Process *p = *it;
            if (p->conn >= 0 &&
                conns_[static_cast<size_t>(p->conn)].recvAvail > 0) {
                it = ws.erase(it);
                p->state = Process::State::Ready;
                p->waitChan = WaitNone;
                enqueue(p);
                nudgeIdleContext();
            } else {
                ++it;
            }
        }
        return;
    }

    auto available = [&]() {
        return chan == WaitAccept ? !acceptQ_.empty()
                                  : !protoQ_.empty();
    };
    while (!ws.empty() && available()) {
        Process *p = ws.front();
        ws.pop_front();
        deliverWait(*p, chan);
        p->state = Process::State::Ready;
        p->waitChan = WaitNone;
        enqueue(p, p->cfg.kind == ProcKind::KernelThread);
        nudgeIdleContext();
    }
}

void
Kernel::nudgeIdleContext()
{
    for (int c = 0; c < pipe_.numContexts(); ++c) {
        Process *cur = curProc_[static_cast<size_t>(c)];
        Context &ctx = pipe_.ctx(c);
        if (cur && cur->cfg.kind == ProcKind::IdleThread &&
            !ctx.interruptPending) {
            pipe_.raiseInterrupt(c, VecResched);
            return;
        }
    }
}

} // namespace smtos
