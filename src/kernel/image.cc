#include "kernel/image.h"

#include "common/logging.h"
#include "common/rng.h"
#include "kernel/layout.h"
#include "kernel/tags.h"

namespace smtos {

const char *
serviceTagName(int tag)
{
    switch (tag) {
      case TagIdle: return "idle";
      case TagPalDtlb: return "pal_dtlb";
      case TagPalItlb: return "pal_itlb";
      case TagVmFault: return "vm_fault";
      case TagPageAlloc: return "page_alloc";
      case TagPageZero: return "page_zero";
      case TagSysPreamble: return "sys_preamble";
      case TagRead: return "read";
      case TagReadSock: return "read_sock";
      case TagWrite: return "write";
      case TagWritev: return "writev";
      case TagStat: return "stat";
      case TagOpen: return "open";
      case TagClose: return "close";
      case TagAccept: return "accept";
      case TagSelect: return "select";
      case TagMmap: return "smmap";
      case TagMunmap: return "munmap";
      case TagProcCtl: return "proc_ctl";
      case TagNetProto: return "net_proto";
      case TagInterrupt: return "interrupt";
      case TagNetIsr: return "netisr";
      case TagSched: return "sched";
      case TagSpin: return "spin";
      default: return "?";
    }
}

ServiceGroup
serviceGroupOf(int tag)
{
    switch (tag) {
      case TagIdle:
        return ServiceGroup::Idle;
      case TagPalDtlb:
      case TagPalItlb:
      case TagVmFault:
      case TagPageAlloc:
      case TagPageZero:
        return ServiceGroup::TlbHandling;
      case TagInterrupt:
        return ServiceGroup::Interrupt;
      case TagNetIsr:
        return ServiceGroup::NetIsr;
      case TagSched:
      case TagSpin:
        return ServiceGroup::Sched;
      default:
        return ServiceGroup::Syscall;
    }
}

const char *
serviceGroupName(ServiceGroup g)
{
    switch (g) {
      case ServiceGroup::Idle: return "idle";
      case ServiceGroup::TlbHandling: return "tlb+vm";
      case ServiceGroup::Syscall: return "syscalls";
      case ServiceGroup::Interrupt: return "interrupts";
      case ServiceGroup::NetIsr: return "netisr";
      case ServiceGroup::Sched: return "sched";
      default: return "?";
    }
}

const char *
sysnoName(std::uint16_t n)
{
    switch (n) {
      case SysRead: return "read";
      case SysWrite: return "write";
      case SysWritev: return "writev";
      case SysStat: return "stat";
      case SysOpen: return "open";
      case SysClose: return "close";
      case SysAccept: return "naccept";
      case SysSelect: return "select";
      case SysMmap: return "smmap";
      case SysMunmap: return "munmap";
      case SysBrk: return "obreak";
      case SysGetPid: return "getpid";
      default: return "?";
    }
}

namespace {

/** Kernel-code generation profile (Table 2/5 kernel columns). */
CodeProfile
kernelProfile()
{
    CodeProfile p;
    p.loadFrac = 0.19;
    p.storeFrac = 0.13;
    p.fpFrac = 0.0;
    p.mulFrac = 0.02;
    p.physMemFrac = 0.52;
    p.seqFrac = 0.15;
    p.stackFrac = 0.30;
    p.virtRegions = {{regKVirt, 1.0}};
    p.physRegions = {{regKPhys, 2.0}, {regMbuf, 1.0}};
    p.stackRegion = regKStack;
    p.takenBias = 0.30; // diamond exceptional-condition branches
    p.loopFrac = 0.06;
    p.diamondFrac = 0.55;
    p.indirectFrac = 0.05;
    p.loopTripMin = 2;
    p.loopTripMax = 6;
    p.midBranchFrac = 0.07;
    p.instrsPerBlockMin = 5;
    p.instrsPerBlockMax = 14;
    return p;
}

} // namespace

std::unique_ptr<KernelCode>
buildKernelImage(std::uint64_t seed)
{
    auto kc = std::make_unique<KernelCode>();
    CodeImage &img = kc->image;
    CodeGen g(img, kernelProfile(), seed);

    // Real kernel services run through layers of helpers spread over
    // megabytes of text; helper pools and inter-function padding
    // reproduce that I-cache/BTB pressure. Hot services come in
    // serviceVariants flavors (distinct vnode/socket-type paths)
    // selected per process, so concurrently running contexts execute
    // different code paths, as on a real server.
    Rng prng(seed ^ 0x7171u);
    auto pad = [&] {
        g.genPadding(200 + static_cast<int>(prng.below(1200)));
    };
    auto utilPool = [&](const std::string &base, int tag, int count) {
        std::vector<int> v;
        for (int i = 0; i < count; ++i) {
            pad();
            v.push_back(g.genFunction(
                base + std::to_string(i),
                8 + static_cast<int>(prng.below(10)), {}, tag));
        }
        return v;
    };
    auto tail_calls = [&](const std::vector<int> &utils, int k) {
        for (int i = 0; i < k; ++i) {
            img.emit(g.makeCall(utils[prng.below(utils.size())]));
            img.beginBlock();
            g.emitWork(6 + static_cast<int>(prng.below(10)), 0.6);
        }
    };

    // ---- PAL TLB refill handlers (physically fetched) ----
    kc->palDtlbRefill =
        img.beginFunction("pal_dtlb_refill", TagPalDtlb, true);
    img.beginBlock();
    g.emitWork(100, 1.0);
    img.emit(g.makeLoad(MemPattern::PteWalk, 0, 0, 8, true));
    g.emitWork(80, 1.0);
    img.emit(g.makeTlbWrite());
    g.emitWork(60, 1.0);
    img.emit(g.makePalReturn());

    kc->palItlbRefill =
        img.beginFunction("pal_itlb_refill", TagPalItlb, true);
    img.beginBlock();
    g.emitWork(100, 1.0);
    img.emit(g.makeLoad(MemPattern::PteWalk, 0, 0, 8, true));
    g.emitWork(80, 1.0);
    img.emit(g.makeTlbWrite());
    g.emitWork(60, 1.0);
    img.emit(g.makePalReturn());

    // ---- page allocator and page zeroing ----
    const auto u_vm = utilPool("u_vm", TagVmFault, 3);
    pad();
    kc->pageAlloc = img.beginFunction("page_alloc", TagPageAlloc);
    img.beginBlock();
    g.emitWork(360, 0.9);
    img.emit(g.makeMagic(MagicOp::AllocPage));
    g.emitWork(200, 0.9);
    img.emit(g.makeReturn());

    pad();
    kc->pageZero = img.beginFunction("page_zero", TagPageZero);
    img.beginBlock();
    g.emitWork(60, 0.0);
    img.beginBlock(); // the zeroing loop (64 x 64B lines)
    img.emit(g.makeStore(MemPattern::FrameTouch, 0, 0, 64, true));
    img.emit(g.makeAlu());
    img.emit(g.makeLoop(1, 64, 0));
    img.beginBlock();
    g.emitWork(40, 0.0);
    img.emit(g.makeReturn());

    pad();
    kc->vmPageFault = img.beginFunction("vm_page_fault", TagVmFault);
    img.beginBlock();
    g.emitWork(440, 0.5);
    img.emit(g.makeCond(1, 0.0));
    img.beginBlock();
    g.emitWork(180, 0.5);
    img.emit(g.makeCall(kc->pageAlloc));
    img.beginBlock();
    g.emitWork(120, 0.5);
    img.emit(g.makeCall(kc->pageZero));
    img.beginBlock();
    g.emitWork(100, 0.5);
    img.emit(g.makeTlbWrite());
    g.emitWork(80, 0.5);
    tail_calls(u_vm, 1);
    img.emit(g.makePalReturn());

    // ---- per-variant hot service paths ----
    for (int v = 0; v < serviceVariants; ++v) {
        const std::string sv = "v" + std::to_string(v) + "_";

        const auto u_read = utilPool(sv + "u_read", TagRead, 3);
        const auto u_rsock = utilPool(sv + "u_rsock", TagReadSock, 2);
        const auto u_wv = utilPool(sv + "u_writev", TagWritev, 2);
        const auto u_proto = utilPool(sv + "u_proto", TagNetProto, 3);
        const auto u_stat = utilPool(sv + "u_stat", TagStat, 2);
        const auto u_open = utilPool(sv + "u_open", TagOpen, 2);
        const auto u_close = utilPool(sv + "u_close", TagClose, 2);
        const auto u_acc = utilPool(sv + "u_accept", TagAccept, 2);
        const auto u_pre = utilPool(sv + "u_pre", TagSysPreamble, 2);

        auto gen_lookup = [&](const std::string &name, int tag) {
            pad();
            const int f = img.beginFunction(name, tag);
            img.beginBlock();
            g.emitWork(160, 0.6);
            img.beginBlock(); // per-component loop
            g.emitWork(480, 0.75);
            img.emit(g.makeLoop(1, 3, 1));
            img.beginBlock();
            g.emitWork(120, 0.6);
            img.emit(g.makeReturn());
            return f;
        };
        const int lk_stat = gen_lookup(sv + "fs_lookup_stat", TagStat);
        const int lk_open = gen_lookup(sv + "fs_lookup_open", TagOpen);

        pad();
        kc->netOutput[v] =
            img.beginFunction(sv + "net_output", TagNetProto);
        img.beginBlock();
        g.emitWork(600, 0.8);
        img.beginBlock(); // checksum loop over the mbuf chunk
        img.emit(g.makeLoad(MemPattern::CopyDst, 0, 0, 64, true));
        img.emit(g.makeAlu());
        img.emit(g.makeLoop(1, dynamicTrip, 0, 0));
        img.beginBlock();
        g.emitWork(440, 0.8);
        img.emit(g.makeMagic(MagicOp::NetSend));
        g.emitWork(280, 0.8);
        tail_calls(u_proto, 2);
        img.emit(g.makeReturn());

        pad();
        kc->svcReadFile[v] =
            img.beginFunction(sv + "svc_read_file", TagRead);
        img.beginBlock();
        g.emitWork(480, 0.5);
        img.emit(g.makeMagic(MagicOp::ServiceBody, ActReadFileChunk));
        img.beginBlock(); // copy: buffer cache -> user buffer
        img.emit(g.makeLoad(MemPattern::CopySrc, 0, 0, 64, true));
        img.emit(g.makeStore(MemPattern::CopyDst, 0, 0, 64, false));
        img.emit(g.makeAlu());
        img.emit(g.makeLoop(1, dynamicTrip, 0, 0));
        img.beginBlock();
        g.emitWork(220, 0.5);
        tail_calls(u_read, 2);
        img.emit(g.makeReturn());

        pad();
        kc->svcReadSock[v] =
            img.beginFunction(sv + "svc_read_sock", TagReadSock);
        img.beginBlock();
        g.emitWork(320, 0.6);
        img.emit(g.makeMagic(MagicOp::MaybeBlock, WaitRecv));
        g.emitWork(120, 0.6);
        img.emit(g.makeMagic(MagicOp::ServiceBody, ActReadSockData));
        img.beginBlock(); // copy: mbuf -> user buffer
        img.emit(g.makeLoad(MemPattern::CopySrc, 0, 0, 64, true));
        img.emit(g.makeStore(MemPattern::CopyDst, 0, 0, 64, false));
        img.emit(g.makeAlu());
        img.emit(g.makeLoop(1, dynamicTrip, 0, 0));
        img.beginBlock();
        g.emitWork(560, 0.7);
        tail_calls(u_rsock, 2);
        img.emit(g.makeReturn());

        pad();
        kc->svcWritev[v] =
            img.beginFunction(sv + "svc_writev", TagWritev);
        img.beginBlock();
        g.emitWork(360, 0.5);
        img.emit(g.makeMagic(MagicOp::ServiceBody, ActWritevChunk));
        img.beginBlock(); // copy: user buffer -> mbuf
        img.emit(g.makeLoad(MemPattern::CopySrc, 0, 0, 64, false));
        img.emit(g.makeStore(MemPattern::CopyDst, 0, 0, 64, true));
        img.emit(g.makeAlu());
        img.emit(g.makeLoop(1, dynamicTrip, 0, 0));
        img.beginBlock();
        g.emitWork(160, 0.5);
        img.emit(g.makeCall(kc->netOutput[v]));
        img.beginBlock();
        g.emitWork(140, 0.5);
        tail_calls(u_wv, 1);
        img.emit(g.makeReturn());

        pad();
        kc->svcStat[v] = img.beginFunction(sv + "svc_stat", TagStat);
        img.beginBlock();
        g.emitWork(260, 0.5);
        img.emit(g.makeCall(lk_stat));
        img.beginBlock();
        g.emitWork(180, 0.6);
        img.emit(g.makeMagic(MagicOp::ServiceBody, ActStatCopyout));
        img.beginBlock(); // copy out the stat buffer
        img.emit(g.makeLoad(MemPattern::CopySrc, 0, 0, 8, true));
        img.emit(g.makeStore(MemPattern::CopyDst, 0, 0, 8, false));
        img.emit(g.makeLoop(1, 8, 0));
        img.beginBlock();
        g.emitWork(140, 0.5);
        tail_calls(u_stat, 2);
        img.emit(g.makeReturn());

        pad();
        kc->svcOpen[v] = img.beginFunction(sv + "svc_open", TagOpen);
        img.beginBlock();
        g.emitWork(220, 0.5);
        img.emit(g.makeCall(lk_open));
        img.beginBlock();
        g.emitWork(680, 0.6);
        img.emit(g.makeMagic(MagicOp::ServiceBody, ActOpenFile));
        g.emitWork(180, 0.5);
        tail_calls(u_open, 2);
        img.emit(g.makeReturn());

        pad();
        kc->svcClose[v] =
            img.beginFunction(sv + "svc_close", TagClose);
        img.beginBlock();
        g.emitWork(720, 0.6);
        img.emit(g.makeCond(2, 0.3));
        img.beginBlock();
        g.emitWork(400, 0.7);
        img.beginBlock();
        g.emitWork(240, 0.5);
        tail_calls(u_close, 1);
        img.emit(g.makeReturn());

        pad();
        kc->svcAccept[v] =
            img.beginFunction(sv + "svc_accept", TagAccept);
        img.beginBlock();
        g.emitWork(340, 0.6);
        img.emit(g.makeMagic(MagicOp::MaybeBlock, WaitAccept));
        g.emitWork(80, 0.5);
        img.beginBlock();
        g.emitWork(1040, 0.7);
        img.emit(g.makeCond(3, 0.25));
        img.beginBlock();
        g.emitWork(360, 0.7);
        img.beginBlock();
        g.emitWork(280, 0.5);
        tail_calls(u_acc, 2);
        img.emit(g.makeReturn());

        pad();
        kc->sysEntry[v] =
            img.beginFunction(sv + "sys_entry", TagSysPreamble);
        img.beginBlock();
        g.emitWork(380, 0.6);
        img.emit(g.makeMagic(MagicOp::KernelDispatch));
        g.emitWork(140, 0.6);
        img.beginBlock();
        g.emitWork(160, 0.6);
        tail_calls(u_pre, 1);
        img.emit(g.makePalReturn());
    }

    // ---- single-path services ----
    pad();
    kc->svcWrite = img.beginFunction("svc_write", TagWrite);
    img.beginBlock();
    g.emitWork(280, 0.5);
    img.emit(g.makeMagic(MagicOp::ServiceBody, ActLogWrite));
    img.beginBlock();
    img.emit(g.makeLoad(MemPattern::CopySrc, 0, 0, 64, false));
    img.emit(g.makeStore(MemPattern::CopyDst, 0, 0, 64, true));
    img.emit(g.makeLoop(1, dynamicTrip, 0, 0));
    img.beginBlock();
    g.emitWork(180, 0.5);
    img.emit(g.makeReturn());

    pad();
    kc->svcSelect = img.beginFunction("svc_select", TagSelect);
    img.beginBlock();
    g.emitWork(240, 0.5);
    img.beginBlock(); // fd scan loop
    g.emitWork(180, 0.6);
    img.emit(g.makeLoop(1, 8, 1));
    img.beginBlock();
    g.emitWork(200, 0.5);
    img.emit(g.makeReturn());

    pad();
    kc->svcMmap = img.beginFunction("svc_smmap", TagMmap);
    img.beginBlock();
    g.emitWork(760, 0.5);
    img.emit(g.makeCond(1, 0.2));
    img.beginBlock();
    g.emitWork(520, 0.6);
    img.beginBlock();
    g.emitWork(440, 0.5);
    img.emit(g.makeReturn());

    pad();
    kc->svcMunmap = img.beginFunction("svc_munmap", TagMunmap);
    img.beginBlock();
    g.emitWork(600, 0.5);
    img.emit(g.makeMagic(MagicOp::TlbFlushAsn, 0)); // page flush
    g.emitWork(360, 0.5);
    img.emit(g.makeReturn());

    pad();
    kc->svcBrk = img.beginFunction("svc_obreak", TagProcCtl);
    img.beginBlock();
    g.emitWork(560, 0.5);
    img.emit(g.makeReturn());

    pad();
    kc->svcGetPid = img.beginFunction("svc_getpid", TagProcCtl);
    img.beginBlock();
    g.emitWork(180, 0.4);
    img.emit(g.makeReturn());

    // ---- spin-wait (lock contention, e.g. shared TLB IPRs) ----
    pad();
    kc->spinWait = img.beginFunction("spin_wait", TagSpin);
    img.beginBlock(); // busy-wait loop; trips set by the kernel model
    g.emitWork(3, 1.0);
    img.emit(g.makeLoop(0, dynamicTrip, 0, 2)); // trips from intrTrip
    img.beginBlock();
    img.emit(g.makeReturn());

    // ---- interrupt handlers ----
    const auto u_intr = utilPool("u_intr", TagInterrupt, 3);
    pad();
    kc->intrNet = img.beginFunction("intr_net", TagInterrupt);
    img.beginBlock();
    g.emitWork(420, 0.8);
    img.emit(g.makeMagic(MagicOp::ServiceBody, ActDriverRx));
    g.emitWork(80, 0.8);
    img.beginBlock(); // per-received-packet driver loop
    g.emitWork(260, 0.85);
    img.emit(g.makeLoop(1, dynamicTrip, 1, 2)); // trips from intrTrip
    img.beginBlock();
    g.emitWork(180, 0.7);
    tail_calls(u_intr, 1);
    img.emit(g.makePalReturn());

    pad();
    kc->intrTimer = img.beginFunction("intr_timer", TagInterrupt);
    img.beginBlock();
    g.emitWork(480, 0.7);
    img.emit(g.makeMagic(MagicOp::Reschedule, 1)); // preempt
    g.emitWork(160, 0.7);
    img.emit(g.makePalReturn());

    pad();
    kc->intrResched = img.beginFunction("intr_resched", TagInterrupt);
    img.beginBlock();
    g.emitWork(260, 0.7);
    img.emit(g.makeMagic(MagicOp::Reschedule, 0));
    g.emitWork(100, 0.7);
    img.emit(g.makePalReturn());

    // ---- netisr kernel threads (one code path per thread) ----
    for (int v = 0; v < netisrVariants; ++v) {
        const std::string sv = "isr" + std::to_string(v) + "_";
        const auto u_isr = utilPool(sv + "u", TagNetIsr, 3);
        pad();
        kc->netisrLoop[v] =
            img.beginFunction(sv + "netisr_loop", TagNetIsr);
        img.beginBlock();
        img.emit(g.makeMagic(MagicOp::MaybeBlock, WaitProtoQ));
        g.emitWork(100, 0.8);
        img.emit(g.makeMagic(MagicOp::NetDeliver));
        g.emitWork(240, 0.85);
        img.beginBlock(); // checksum/copy walk over the packet
        img.emit(g.makeLoad(MemPattern::CopySrc, 0, 0, 64, true));
        img.emit(g.makeAlu());
        img.emit(g.makeLoop(1, dynamicTrip, 0, 0));
        img.beginBlock(); // socket insert + wakeups
        g.emitWork(680, 0.8);
        img.emit(g.makeCond(4, 0.2));
        img.beginBlock();
        g.emitWork(300, 0.8);
        img.beginBlock();
        g.emitWork(120, 0.8);
        tail_calls(u_isr, 2);
        img.emit(g.makeJump(0));
    }

    // ---- scheduler ----
    const auto u_sched = utilPool("u_sched", TagSched, 2);
    pad();
    kc->schedSwitch = img.beginFunction("sched_switch", TagSched);
    img.beginBlock();
    g.emitWork(520, 0.8);
    img.emit(g.makeCond(2, 0.15)); // ASN reassignment path
    img.beginBlock();
    g.emitWork(220, 0.8);
    img.beginBlock();
    g.emitWork(260, 0.8);
    tail_calls(u_sched, 1);
    img.emit(g.makeReturn());

    // ---- idle loop ----
    pad();
    kc->idleLoop = img.beginFunction("idle_loop", TagIdle);
    img.beginBlock();
    g.emitWork(140, 0.6);
    img.emit(g.makeMagic(MagicOp::Reschedule, 2)); // idle poll
    img.emit(g.makeJump(0));

    // ---- machine-check handler ----
    // Generated after every pre-existing function so that attaching
    // the fault subsystem shifts no earlier code address and perturbs
    // no earlier generator RNG draw: fault-free runs on this image are
    // bit-identical to runs on the image without it.
    pad();
    kc->intrMce = img.beginFunction("intr_mce", TagInterrupt);
    img.beginBlock();
    g.emitWork(520, 0.8); // log + scrub the reported structure
    img.emit(g.makeCond(1, 0.15));
    img.beginBlock();
    g.emitWork(260, 0.75); // slow path: walk the error bank
    img.beginBlock();
    g.emitWork(160, 0.75);
    img.emit(g.makePalReturn());

    img.finalize();
    return kc;
}

} // namespace smtos
