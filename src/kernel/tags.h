/**
 * @file
 * Kernel service tags: every kernel/PAL function is tagged so retired
 * instructions can be attributed to the OS services the paper's
 * figures break out (TLB handling, system calls by name, interrupts,
 * netisr threads, scheduling, idle).
 */

#ifndef SMTOS_KERNEL_TAGS_H
#define SMTOS_KERNEL_TAGS_H

namespace smtos {

/** Attribution tags for kernel time (Function::tag). */
enum ServiceTag : int
{
    TagIdle = 0,
    TagPalDtlb,        ///< PAL DTLB refill handler
    TagPalItlb,        ///< PAL ITLB refill handler
    TagVmFault,        ///< page-fault path (needs allocation)
    TagPageAlloc,      ///< page allocator proper
    TagPageZero,       ///< new-frame zeroing loop
    TagSysPreamble,    ///< syscall entry/dispatch/exit
    TagRead,
    TagReadSock,
    TagWrite,
    TagWritev,
    TagStat,
    TagOpen,
    TagClose,
    TagAccept,
    TagSelect,
    TagMmap,
    TagMunmap,
    TagProcCtl,        ///< brk/getpid/misc process control
    TagNetProto,       ///< protocol output path (within writev)
    TagInterrupt,      ///< device/timer interrupt processing
    TagNetIsr,         ///< netisr protocol threads
    TagSched,          ///< context switch / scheduler
    TagSpin,           ///< spin lock acquire/release paths
    NumServiceTags
};

/** Human-readable tag name. */
const char *serviceTagName(int tag);

/** Coarse groups used by Figures 2 and 6. */
enum class ServiceGroup : int
{
    Idle = 0,
    TlbHandling,   ///< PAL refills + fault path + allocation + zeroing
    Syscall,       ///< preamble and all service routines
    Interrupt,
    NetIsr,
    Sched,
    NumGroups
};

/** Map a ServiceTag to its Figure-2/6 group. */
ServiceGroup serviceGroupOf(int tag);

/** Group display name. */
const char *serviceGroupName(ServiceGroup g);

} // namespace smtos

#endif // SMTOS_KERNEL_TAGS_H
