/**
 * @file
 * Address-space and region-table layout conventions shared by the
 * kernel image, the kernel model, and the workload builders.
 *
 * Every thread's region table uses the same slot assignment so kernel
 * code (which executes on whatever thread entered the kernel) always
 * finds kernel data in the upper slots.
 */

#ifndef SMTOS_KERNEL_LAYOUT_H
#define SMTOS_KERNEL_LAYOUT_H

#include "common/types.h"
#include "isa/program.h"

namespace smtos {

// Region-table slots.
constexpr int regUserGlobals = 0;
constexpr int regUserHeap = 1;
constexpr int regUserStack = 2;
constexpr int regUserAux = 3;   ///< request/response buffers
constexpr int regKVirt = 4;     ///< kernel virtual heap (mapped global)
constexpr int regKPhys = 5;     ///< kernel physical heap
constexpr int regKStack = 6;    ///< per-thread kernel stack (virtual)
constexpr int regMbuf = 7;      ///< mbuf pool (physical)

// User virtual layout (identical across processes; ASNs distinguish).
constexpr Addr userGlobalsBase = 0x2000'0000ull;
constexpr Addr userGlobalsBytes = 1ull << 20;
constexpr Addr userHeapBase = 0x3000'0000ull;
constexpr Addr userAuxBase = 0x4000'0000ull;
constexpr Addr userAuxBytes = 64ull << 10;
constexpr Addr userStackBase = 0x7000'0000ull;
constexpr Addr userStackBytes = 64ull << 10;

// Kernel virtual layout (kernelBase is the text base; see program.h).
constexpr Addr kernelVirtHeapBase = 0x9000'0000ull;
constexpr Addr kernelVirtHeapBytes = 2ull << 20;
constexpr Addr kernelStackArea = 0xa000'0000ull;
constexpr Addr kernelStackBytes = 16ull << 10;

// Physical layout. The low reservedPhysBytes are the kernel's.
constexpr Addr kernelPhysHeapBase = 2ull << 20;
constexpr Addr kernelPhysHeapBytes = 512ull << 10;
constexpr Addr mbufPoolBase = 6ull << 20;
constexpr Addr mbufPoolBytes = 256ull << 10;
constexpr Addr reservedPhysBytes = 16ull << 20;

/** Kernel stack virtual base for a thread. */
inline Addr
kernelStackBase(int thread_id)
{
    return kernelStackArea +
           static_cast<Addr>(thread_id) * kernelStackBytes;
}

} // namespace smtos

#endif // SMTOS_KERNEL_LAYOUT_H
