/**
 * @file
 * File system model: a buffer cache over a zero-latency disk (the
 * paper's configuration). First access to a (file, page) allocates a
 * real frame and performs the "disk DMA" (invalidating stale cached
 * copies); later accesses hit the buffer cache, so kernel file reads
 * copy from stable physical pages that multiple server processes
 * share.
 */

#include "kernel/kernel.h"

namespace smtos {

Addr
Kernel::bufcachePagePhys(int file_id, std::uint32_t page)
{
    const std::uint64_t key =
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(file_id))
         << 20) |
        page;
    auto it = bufcache_.find(key);
    if (it == bufcache_.end()) {
        const Frame f = mem_.allocFrame();
        bufcache_.emplace(key, f);
        ++diskReads_;
        // Disk DMA into the new page: stale cache lines die.
        pipe_.hierarchy().dmaWrite(PhysMem::frameAddr(f),
                                   static_cast<int>(pageBytes));
        return PhysMem::frameAddr(f);
    }
    return PhysMem::frameAddr(it->second);
}

} // namespace smtos
