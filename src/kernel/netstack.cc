/**
 * @file
 * Network stack model: NIC interrupt generation, the driver receive
 * path, netisr delivery into sockets, and transmit.
 */

#include <algorithm>

#include "common/logging.h"
#include "common/trace.h"
#include "kernel/kernel.h"
#include "obs/probes.h"

namespace smtos {

namespace {

// Accounted-mode mbuf pool split (see DESIGN.md §14). RX units back
// received requests whose lifetime is unbounded (they live until the
// owning connection closes), so they are bitmap-accounted and their
// exhaustion backpressures the NIC. TX buffers are written and sent
// within one writev/NetSend pair and never read back, so a bump
// cursor whose wrap is counted (but harmless by construction) keeps
// the transmit path allocation-failure-free.
constexpr Addr mbufUnit = 2048;
constexpr Addr mbufRxUnits = 96;
constexpr Addr mbufTxBase = mbufRxUnits * mbufUnit;
constexpr Addr mbufTxBytes = mbufPoolBytes - mbufTxBase;

} // namespace

Addr
Kernel::allocMbuf(std::uint32_t bytes)
{
    // Legacy bump-and-wrap allocator: wrapping silently recycles
    // buffers that may still back in-flight packets. Kept verbatim as
    // the default because its addresses are part of the bit-identity
    // contract; admit.mbufAccounting replaces it with the accounted
    // split pool above.
    const Addr need =
        (static_cast<Addr>(bytes) + 2047ull) & ~2047ull; // 2KB mbufs
    if (mbufCursor_ + need > mbufPoolBytes)
        mbufCursor_ = 0;
    const Addr a = mbufPoolBase + mbufCursor_;
    mbufCursor_ += need;
    return a;
}

Addr
Kernel::allocRxMbuf(std::uint32_t bytes)
{
    Addr need = (static_cast<Addr>(bytes) + mbufUnit - 1) / mbufUnit;
    if (need == 0)
        need = 1;
    // First-fit contiguous scan; 96 bits, so brute force is fine.
    for (Addr u = 0; u + need <= mbufRxUnits; ++u) {
        Addr run = 0;
        while (run < need &&
               !(mbufRxMap_[(u + run) >> 6] &
                 (1ull << ((u + run) & 63))))
            ++run;
        if (run < need) {
            u += run; // next iteration starts past the used unit
            continue;
        }
        for (Addr k = 0; k < need; ++k)
            mbufRxMap_[(u + k) >> 6] |= 1ull << ((u + k) & 63);
        return mbufPoolBase + u * mbufUnit;
    }
    return 0; // exhausted: caller backpressures the NIC ring
}

void
Kernel::freeRxMbuf(Addr mbuf, std::uint32_t bytes)
{
    // Addresses outside the RX region (TX buffers, or legacy bump
    // addresses carried across a mid-flight accounting switch) are
    // not tracked; clearing an already-clear bit is harmless.
    if (mbuf < mbufPoolBase || mbuf >= mbufPoolBase + mbufTxBase)
        return;
    const Addr u0 = (mbuf - mbufPoolBase) / mbufUnit;
    Addr units = (static_cast<Addr>(bytes) + mbufUnit - 1) / mbufUnit;
    if (units == 0)
        units = 1;
    for (Addr k = 0; k < units && u0 + k < mbufRxUnits; ++k)
        mbufRxMap_[(u0 + k) >> 6] &= ~(1ull << ((u0 + k) & 63));
}

Addr
Kernel::allocTxMbuf(std::uint32_t bytes)
{
    const Addr need =
        (static_cast<Addr>(bytes) + mbufUnit - 1) & ~(mbufUnit - 1);
    if (mbufTxCursor_ + need > mbufTxBytes) {
        mbufTxCursor_ = 0;
        ++mbufTxWraps_;
    }
    const Addr a = mbufPoolBase + mbufTxBase + mbufTxCursor_;
    mbufTxCursor_ += need;
    return a;
}

void
Kernel::rebuildRxMap()
{
    // Reconstruct the RX unit map from everything still referencing an
    // RX buffer: in-use connections (buffer lives until close) and
    // packets parked in the protocol queue. Equals the incremental
    // alloc/free bookkeeping in steady state, and makes switching
    // accounting on over a restored or mid-flight kernel safe.
    mbufRxMap_ = {};
    auto mark = [this](Addr mbuf, std::uint32_t bytes) {
        if (mbuf < mbufPoolBase || mbuf >= mbufPoolBase + mbufTxBase)
            return;
        const Addr u0 = (mbuf - mbufPoolBase) / mbufUnit;
        Addr units =
            (static_cast<Addr>(bytes) + mbufUnit - 1) / mbufUnit;
        if (units == 0)
            units = 1;
        for (Addr k = 0; k < units && u0 + k < mbufRxUnits; ++k)
            mbufRxMap_[(u0 + k) >> 6] |= 1ull << ((u0 + k) & 63);
    };
    for (const Connection &cn : conns_)
        if (cn.inUse)
            mark(cn.mbuf, cn.reqBytes);
    for (int core = 0; core < numCores(); ++core)
        for (const Packet &pkt : protoQFor(core))
            mark(pkt.mbuf, pkt.bytes);
}

void
Kernel::shedStaleAccepts()
{
    // Oldest-first shedding: the accept queue is FIFO, so accept
    // stamps increase front to back and the scan stops at the first
    // still-fresh entry. Shedding a connection whose client has
    // already (or will imminently) retransmit or give up costs no
    // goodput — serving it would.
    const AdmitParams &ap = admit_->params();
    while (static_cast<int>(acceptQ_.size()) >= ap.queueCap &&
           !acceptQ_.empty()) {
        const int id = acceptQ_.front();
        Connection &cn = conns_[static_cast<size_t>(id)];
        if (cn.acceptedAt + ap.shedDeadline > nowCycle_)
            break;
        acceptQ_.pop_front();
        ++admitShed_;
        if (probes_) {
            probes_->reqDrop("admit-shed", cn.client, cn.reqSeq,
                             nowCycle_);
            probes_->queueDepth(1, acceptQ_.size(), nowCycle_);
        }
        smtos_trace(TraceCat::Net,
                    "shed stale accept conn %d (client %d)", id,
                    cn.client);
        if (params_.admit.mbufAccounting)
            freeRxMbuf(cn.mbuf, cn.reqBytes);
        cn = Connection{};
    }
}

void
Kernel::nicTick(Cycle now)
{
    if (faults_)
        net_.advance(now); // release link-delayed packets first
    clients_->tick(now, net_);
    int moved = 0;
    while (net_.serverHasRx() && moved < 64) {
        nicRing_.push_back(net_.popServerRx());
        ++moved;
    }
    if (!nicRing_.empty()) {
        if (faults_ && faults_->drawNicDrop()) {
            // Suppressed NIC interrupt: the ring keeps its packets and
            // the next tick's (coalescing) interrupt recovers them.
            faults_->note(now, FaultKind::NicIntrDrop, nicRing_.size());
            smtos_trace(TraceCat::Fault,
                        "nic interrupt dropped; ring depth %zu",
                        nicRing_.size());
            return;
        }
        const CtxId target =
            static_cast<CtxId>(nextIntrCtx_ % totalContexts());
        nextIntrCtx_ = (nextIntrCtx_ + 1) % totalContexts();
        raiseOn(ctxAt(target), VecNic);
    }
}

void
Kernel::driverRx(Process &p)
{
    // Packets land on the protocol queue of the core that took the
    // NIC interrupt; that core's pinned netisr drains them.
    const int core =
        p.runningOn != invalidCtx ? coreOf(p.runningOn) : 0;
    std::deque<Packet> &pq = protoQFor(core);
    const std::uint32_t batch =
        static_cast<std::uint32_t>(nicRing_.size());
    p.ts.iprs.intrTrip = std::max<std::uint32_t>(1, batch);
    const bool acct = params_.admit.mbufAccounting;
    if (!nicRing_.empty())
        lockAcquire(mbufLock_, "mbuf", &p, mbufLockHold);
    while (!nicRing_.empty()) {
        Packet pkt = nicRing_.front();
        if (acct) {
            const Addr a = allocRxMbuf(pkt.bytes);
            if (a == 0) {
                // RX pool exhausted: leave the remaining packets in
                // the NIC ring — explicit backpressure instead of the
                // legacy silent recycle. The next NIC tick re-raises
                // the interrupt while the ring is non-empty, so the
                // held packets drain as connections close.
                ++mbufExhausted_;
                if (probes_)
                    probes_->reqDrop("mbuf-backpressure", pkt.client,
                                     pkt.reqSeq, nowCycle_);
                smtos_trace(TraceCat::Net,
                            "mbuf RX pool exhausted; %zu packets held",
                            nicRing_.size());
                break;
            }
            pkt.mbuf = a;
        } else {
            pkt.mbuf = allocMbuf(pkt.bytes);
        }
        nicRing_.pop_front();
        if (probes_ && pkt.open)
            probes_->reqDriverRx(pkt.client, pkt.reqSeq, nowCycle_);
        pq.push_back(pkt);
    }
    wakeWaiters(WaitProtoQ);
}

void
Kernel::netisrDeliver(Process &p)
{
    ThreadIprs &iprs = p.ts.iprs;
    std::deque<Packet> &pq = protoQFor(p.homeCore);
    if (pq.empty()) {
        iprs.copyTrip = 1;
        return;
    }
    Packet pkt = pq.front();
    pq.pop_front();
    iprs.copySrc = pkt.mbuf;
    iprs.copyTrip = std::max<std::uint32_t>(1, pkt.bytes / 64);

    if (pkt.open) {
        // Connection setup mutates the shared conn table/accept queue.
        lockAcquire(connLock_, "conn", &p, connLockHold);
        // Listen-queue backpressure: past the configured backlog the
        // SYN is refused outright (the client's timeout retransmits).
        const int backlog =
            faults_ ? faults_->params().listenBacklog : 0;
        if (backlog > 0 &&
            acceptQ_.size() >= static_cast<size_t>(backlog)) {
            ++backlogDrops_;
            faults_->note(nowCycle_, FaultKind::BacklogDrop,
                          static_cast<std::uint64_t>(pkt.client));
            if (probes_)
                probes_->reqDrop("backlog-drop", pkt.client,
                                 pkt.reqSeq, nowCycle_);
            smtos_trace(TraceCat::Fault,
                        "listen backlog full; client %d refused",
                        pkt.client);
            if (params_.admit.mbufAccounting)
                freeRxMbuf(pkt.mbuf, pkt.bytes);
            return;
        }
        // Admission control: bound the accept queue before queueing
        // delay exceeds the client retry timeout and service turns
        // into waste (the client's timeout retransmits any refusal).
        if (admit_) {
            const AdmitParams &ap = admit_->params();
            const int depth = static_cast<int>(acceptQ_.size());
            if (ap.policy == AdmitPolicy::OldestFirst) {
                if (depth >= ap.queueCap)
                    shedStaleAccepts();
                if (static_cast<int>(acceptQ_.size()) >=
                    ap.queueCap) {
                    ++admitDropTail_;
                    if (probes_)
                        probes_->reqDrop("admit-drop-tail",
                                         pkt.client, pkt.reqSeq,
                                         nowCycle_);
                    smtos_trace(TraceCat::Net,
                                "admission: queue full, client %d "
                                "refused", pkt.client);
                    if (params_.admit.mbufAccounting)
                        freeRxMbuf(pkt.mbuf, pkt.bytes);
                    return;
                }
            } else if (admit_->shouldDrop(depth)) {
                const bool tail = depth >= ap.queueCap;
                if (tail)
                    ++admitDropTail_;
                else
                    ++admitRedDrops_;
                if (probes_)
                    probes_->reqDrop(tail ? "admit-drop-tail"
                                          : "admit-red",
                                     pkt.client, pkt.reqSeq,
                                     nowCycle_);
                smtos_trace(TraceCat::Net,
                            "admission: %s, client %d refused",
                            tail ? "queue full" : "early drop",
                            pkt.client);
                if (params_.admit.mbufAccounting)
                    freeRxMbuf(pkt.mbuf, pkt.bytes);
                return;
            }
        }
        // New connection carrying the request.
        int id = -1;
        for (size_t i = 0; i < conns_.size(); ++i) {
            if (!conns_[i].inUse) {
                id = static_cast<int>(i);
                break;
            }
        }
        if (id < 0) {
            // Connection-table exhaustion is measurable backpressure,
            // not a mere log line: count the drop so overload shows up
            // in MetricsSnapshot / the JSON export.
            ++synDrops_;
            if (faults_)
                faults_->note(nowCycle_, FaultKind::SynDrop,
                              static_cast<std::uint64_t>(pkt.client));
            if (probes_)
                probes_->reqDrop("syn-drop", pkt.client, pkt.reqSeq,
                                 nowCycle_);
            smtos_trace(TraceCat::Fault,
                        "conn table full; SYN from client %d dropped",
                        pkt.client);
            if (params_.admit.mbufAccounting)
                freeRxMbuf(pkt.mbuf, pkt.bytes);
            return;
        }
        Connection &cn = conns_[static_cast<size_t>(id)];
        cn = Connection{};
        cn.inUse = true;
        cn.client = pkt.client;
        cn.fileId = pkt.fileId;
        cn.reqBytes = pkt.bytes;
        cn.recvAvail = pkt.bytes;
        cn.mbuf = pkt.mbuf;
        cn.reqSeq = pkt.reqSeq;
        cn.acceptedAt = nowCycle_;
        acceptQ_.push_back(id);
        if (probes_) {
            probes_->reqAccepted(pkt.client, pkt.reqSeq, nowCycle_);
            probes_->queueDepth(1, acceptQ_.size(), nowCycle_);
        }
        wakeWaiters(WaitAccept);
        wakeWaiters(WaitRecv);
    } else if (params_.admit.mbufAccounting) {
        // Non-open packets end their life here; release the unit.
        freeRxMbuf(pkt.mbuf, pkt.bytes);
    }
}

void
Kernel::netSend(Process &p)
{
    if (p.txPacket.bytes == 0)
        return;
    smtos_trace(TraceCat::Net, "pid%d tx %u bytes conn %d", p.pid,
                p.txPacket.bytes, p.txPacket.conn);
    if (probes_ && p.txPacket.fin)
        probes_->reqTxDone(p.txPacket.client, p.txPacket.reqSeq,
                           p.pid, nowCycle_);
    net_.serverSend(p.txPacket);
    p.txPacket = Packet{};
}

} // namespace smtos
