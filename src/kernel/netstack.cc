/**
 * @file
 * Network stack model: NIC interrupt generation, the driver receive
 * path, netisr delivery into sockets, and transmit.
 */

#include <algorithm>

#include "common/logging.h"
#include "common/trace.h"
#include "kernel/kernel.h"

namespace smtos {

Addr
Kernel::allocMbuf(std::uint32_t bytes)
{
    const Addr need =
        (static_cast<Addr>(bytes) + 2047ull) & ~2047ull; // 2KB mbufs
    if (mbufCursor_ + need > mbufPoolBytes)
        mbufCursor_ = 0;
    const Addr a = mbufPoolBase + mbufCursor_;
    mbufCursor_ += need;
    return a;
}

void
Kernel::nicTick(Cycle now)
{
    clients_->tick(now, net_);
    int moved = 0;
    while (net_.serverHasRx() && moved < 64) {
        nicRing_.push_back(net_.popServerRx());
        ++moved;
    }
    if (!nicRing_.empty()) {
        const CtxId target =
            static_cast<CtxId>(nextIntrCtx_ % pipe_.numContexts());
        nextIntrCtx_ = (nextIntrCtx_ + 1) % pipe_.numContexts();
        pipe_.raiseInterrupt(target, VecNic);
    }
}

void
Kernel::driverRx(Process &p)
{
    const std::uint32_t batch =
        static_cast<std::uint32_t>(nicRing_.size());
    p.ts.iprs.intrTrip = std::max<std::uint32_t>(1, batch);
    while (!nicRing_.empty()) {
        Packet pkt = nicRing_.front();
        nicRing_.pop_front();
        pkt.mbuf = allocMbuf(pkt.bytes);
        protoQ_.push_back(pkt);
    }
    wakeWaiters(WaitProtoQ);
}

void
Kernel::netisrDeliver(Process &p)
{
    ThreadIprs &iprs = p.ts.iprs;
    if (protoQ_.empty()) {
        iprs.copyTrip = 1;
        return;
    }
    Packet pkt = protoQ_.front();
    protoQ_.pop_front();
    iprs.copySrc = pkt.mbuf;
    iprs.copyTrip = std::max<std::uint32_t>(1, pkt.bytes / 64);

    if (pkt.open) {
        // New connection carrying the request.
        int id = -1;
        for (size_t i = 0; i < conns_.size(); ++i) {
            if (!conns_[i].inUse) {
                id = static_cast<int>(i);
                break;
            }
        }
        if (id < 0) {
            smtos_warn("connection table full; dropping request");
            return;
        }
        Connection &cn = conns_[static_cast<size_t>(id)];
        cn = Connection{};
        cn.inUse = true;
        cn.client = pkt.client;
        cn.fileId = pkt.fileId;
        cn.reqBytes = pkt.bytes;
        cn.recvAvail = pkt.bytes;
        cn.mbuf = pkt.mbuf;
        acceptQ_.push_back(id);
        wakeWaiters(WaitAccept);
        wakeWaiters(WaitRecv);
    }
}

void
Kernel::netSend(Process &p)
{
    if (p.txPacket.bytes == 0)
        return;
    smtos_trace(TraceCat::Net, "pid%d tx %u bytes conn %d", p.pid,
                p.txPacket.bytes, p.txPacket.conn);
    net_.serverSend(p.txPacket);
    p.txPacket = Packet{};
}

} // namespace smtos
