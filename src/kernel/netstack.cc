/**
 * @file
 * Network stack model: NIC interrupt generation, the driver receive
 * path, netisr delivery into sockets, and transmit.
 */

#include <algorithm>

#include "common/logging.h"
#include "common/trace.h"
#include "kernel/kernel.h"
#include "obs/probes.h"

namespace smtos {

Addr
Kernel::allocMbuf(std::uint32_t bytes)
{
    const Addr need =
        (static_cast<Addr>(bytes) + 2047ull) & ~2047ull; // 2KB mbufs
    if (mbufCursor_ + need > mbufPoolBytes)
        mbufCursor_ = 0;
    const Addr a = mbufPoolBase + mbufCursor_;
    mbufCursor_ += need;
    return a;
}

void
Kernel::nicTick(Cycle now)
{
    if (faults_)
        net_.advance(now); // release link-delayed packets first
    clients_->tick(now, net_);
    int moved = 0;
    while (net_.serverHasRx() && moved < 64) {
        nicRing_.push_back(net_.popServerRx());
        ++moved;
    }
    if (!nicRing_.empty()) {
        if (faults_ && faults_->drawNicDrop()) {
            // Suppressed NIC interrupt: the ring keeps its packets and
            // the next tick's (coalescing) interrupt recovers them.
            faults_->note(now, FaultKind::NicIntrDrop, nicRing_.size());
            smtos_trace(TraceCat::Fault,
                        "nic interrupt dropped; ring depth %zu",
                        nicRing_.size());
            return;
        }
        const CtxId target =
            static_cast<CtxId>(nextIntrCtx_ % pipe_.numContexts());
        nextIntrCtx_ = (nextIntrCtx_ + 1) % pipe_.numContexts();
        pipe_.raiseInterrupt(target, VecNic);
    }
}

void
Kernel::driverRx(Process &p)
{
    const std::uint32_t batch =
        static_cast<std::uint32_t>(nicRing_.size());
    p.ts.iprs.intrTrip = std::max<std::uint32_t>(1, batch);
    while (!nicRing_.empty()) {
        Packet pkt = nicRing_.front();
        nicRing_.pop_front();
        pkt.mbuf = allocMbuf(pkt.bytes);
        if (probes_ && pkt.open)
            probes_->reqDriverRx(pkt.client, pkt.reqSeq, nowCycle_);
        protoQ_.push_back(pkt);
    }
    wakeWaiters(WaitProtoQ);
}

void
Kernel::netisrDeliver(Process &p)
{
    ThreadIprs &iprs = p.ts.iprs;
    if (protoQ_.empty()) {
        iprs.copyTrip = 1;
        return;
    }
    Packet pkt = protoQ_.front();
    protoQ_.pop_front();
    iprs.copySrc = pkt.mbuf;
    iprs.copyTrip = std::max<std::uint32_t>(1, pkt.bytes / 64);

    if (pkt.open) {
        // Listen-queue backpressure: past the configured backlog the
        // SYN is refused outright (the client's timeout retransmits).
        const int backlog =
            faults_ ? faults_->params().listenBacklog : 0;
        if (backlog > 0 &&
            acceptQ_.size() >= static_cast<size_t>(backlog)) {
            ++backlogDrops_;
            faults_->note(nowCycle_, FaultKind::BacklogDrop,
                          static_cast<std::uint64_t>(pkt.client));
            if (probes_)
                probes_->reqDrop("backlog-drop", pkt.client,
                                 pkt.reqSeq, nowCycle_);
            smtos_trace(TraceCat::Fault,
                        "listen backlog full; client %d refused",
                        pkt.client);
            return;
        }
        // New connection carrying the request.
        int id = -1;
        for (size_t i = 0; i < conns_.size(); ++i) {
            if (!conns_[i].inUse) {
                id = static_cast<int>(i);
                break;
            }
        }
        if (id < 0) {
            // Connection-table exhaustion is measurable backpressure,
            // not a mere log line: count the drop so overload shows up
            // in MetricsSnapshot / the JSON export.
            ++synDrops_;
            if (faults_)
                faults_->note(nowCycle_, FaultKind::SynDrop,
                              static_cast<std::uint64_t>(pkt.client));
            if (probes_)
                probes_->reqDrop("syn-drop", pkt.client, pkt.reqSeq,
                                 nowCycle_);
            smtos_trace(TraceCat::Fault,
                        "conn table full; SYN from client %d dropped",
                        pkt.client);
            return;
        }
        Connection &cn = conns_[static_cast<size_t>(id)];
        cn = Connection{};
        cn.inUse = true;
        cn.client = pkt.client;
        cn.fileId = pkt.fileId;
        cn.reqBytes = pkt.bytes;
        cn.recvAvail = pkt.bytes;
        cn.mbuf = pkt.mbuf;
        cn.reqSeq = pkt.reqSeq;
        acceptQ_.push_back(id);
        if (probes_) {
            probes_->reqAccepted(pkt.client, pkt.reqSeq, nowCycle_);
            probes_->queueDepth(1, acceptQ_.size(), nowCycle_);
        }
        wakeWaiters(WaitAccept);
        wakeWaiters(WaitRecv);
    }
}

void
Kernel::netSend(Process &p)
{
    if (p.txPacket.bytes == 0)
        return;
    smtos_trace(TraceCat::Net, "pid%d tx %u bytes conn %d", p.pid,
                p.txPacket.bytes, p.txPacket.conn);
    if (probes_ && p.txPacket.fin)
        probes_->reqTxDone(p.txPacket.client, p.txPacket.reqSeq,
                           p.pid, nowCycle_);
    net_.serverSend(p.txPacket);
    p.txPacket = Packet{};
}

} // namespace smtos
