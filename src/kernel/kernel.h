/**
 * @file
 * The MiniOS kernel model.
 *
 * Plays the role Digital Unix 4.0d plays in the paper: it owns
 * processes, address spaces and ASNs, the run queue, sockets and the
 * protocol queue, the buffer-cache file system (zero-latency disk, as
 * the paper configures), and the NIC/timer devices. All of its *code*
 * executes on the simulated pipeline via the kernel image; this class
 * supplies the semantics at the magic/serializing points and decides
 * which handler the hardware vectors to on TLB misses and interrupts.
 */

#ifndef SMTOS_KERNEL_KERNEL_H
#define SMTOS_KERNEL_KERNEL_H

#include <array>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/stats.h"
#include "core/pipeline.h"
#include "fault/fault.h"
#include "kernel/admission.h"
#include "kernel/image.h"
#include "kernel/layout.h"
#include "net/clients.h"
#include "net/network.h"
#include "vm/physmem.h"

namespace smtos {

class InvariantAuditor;

/** What kind of software thread a Process is. */
enum class ProcKind
{
    SpecIntApp,
    ApacheServer,
    KernelThread,
    IdleThread,
};

/** Per-process configuration installed by the workload builders. */
struct ProcParams
{
    ProcKind kind = ProcKind::SpecIntApp;
    const CodeImage *image = nullptr; ///< user image (kernel: null)
    int entryFunc = 0;
    std::uint64_t seed = 1;
    Addr heapBytes = 6ull << 20;
    std::uint32_t inputChunks = 256;  ///< SPECInt start-up read loop
    int inputFileId = -1;             ///< SPECInt input file
    /** Share text frames with other processes of the same image. */
    bool shareText = false;
};

/** A software thread (process, kernel thread, or idle thread). */
struct Process
{
    int pid = -1;
    ProcParams cfg;
    ThreadState ts;
    std::unique_ptr<AddrSpace> space;

    enum class State { Ready, Running, Blocked, Exited };
    State state = State::Ready;
    /** Last context this process ran on (scheduler affinity). */
    CtxId lastCtx = invalidCtx;
    std::uint16_t waitChan = WaitNone;
    CtxId runningOn = invalidCtx;

    std::uint16_t pendingSyscall = 0;

    /** Consecutive machine checks without forward progress; the
     *  kernel kills the process past the plan's retry limit. */
    std::uint32_t mceHits = 0;

    // Apache per-request state.
    int conn = -1;
    bool reqConsumed = false;
    std::uint32_t fileBytesLeft = 0;
    std::uint32_t filePage = 0;
    std::uint32_t lastChunk = 0;
    std::uint64_t requestsServed = 0;

    // Pending TX packet (prepared at writev, sent at NetSend).
    Packet txPacket;

    bool isUser() const
    {
        return cfg.kind == ProcKind::SpecIntApp ||
               cfg.kind == ProcKind::ApacheServer;
    }
};

/** A server-side connection/socket. */
struct Connection
{
    bool inUse = false;
    int client = -1;
    int fileId = -1;
    std::uint32_t reqBytes = 0;
    std::uint32_t recvAvail = 0;
    Addr mbuf = 0;
    int owner = -1; ///< pid after accept
    std::uint32_t reqSeq = 0; ///< echoed into response packets
    /** Cycle the netisr queued this connection for accept; read by
     *  the oldest-first shedding policy. Not part of the KERN
     *  snapshot bytes — it rides the optional OVLD section. */
    Cycle acceptedAt = 0;
};

/** The OS model. */
class Kernel : public OsCallbacks
{
  public:
    /**
     * Run-queue policies: plain FIFO (Digital Unix-like round robin)
     * or cache-affinity preference — the SMT-aware scheduling
     * direction the paper cites as future work [30, 36].
     */
    enum class SchedPolicy { Fifo, Affinity };

    struct Params
    {
        int numNetisr = 2;
        SchedPolicy schedPolicy = SchedPolicy::Fifo;
        bool enableNetwork = false;
        Cycle nicInterval = 8000;   ///< NIC interrupt coalescing
        Cycle timerQuantum = 150000; ///< scheduling quantum per context
        int maxAsn = 127;
        std::uint64_t seed = 1234;
        /**
         * Table 4 application-only mode: system calls and TLB misses
         * complete instantly with no effect on hardware state.
         */
        bool appOnly = false;
        /**
         * Ablation of the paper's OS modification #2: when true, the
         * TLB-miss IPRs are shared (unmodified SMP OS), so concurrent
         * TLB-miss handlers serialize behind a spin lock. When false
         * (default, the paper's modified OS), per-context IPRs let
         * handlers run in parallel.
         */
        bool sharedTlbIpr = false;
        SpecWebParams web;
        /** Open-loop client arrivals (default off: closed loop). */
        OpenLoopParams openLoop;
        /** Accept-queue admission control + mbuf accounting. */
        AdmitParams admit;
    };

    Kernel(const Params &params, Pipeline &pipe, PhysMem &mem,
           const KernelCode &kc);

    /** Attach (or detach, with nullptr) the observability hub; the
     *  client population shares it for request-trace stamping. */
    void
    setProbes(Probes *p)
    {
        probes_ = p;
        if (clients_)
            clients_->setProbes(p);
    }

    /**
     * Attach a fault plan. Must be called before start(): it threads
     * the plan into the network link, sizes the connection table when
     * the plan overrides it, and arms the client recovery layer when
     * the plan can perturb delivery.
     */
    void attachFaults(FaultPlan *plan);

    /** Attach (or detach) the periodic structural invariant auditor. */
    void setAuditor(InvariantAuditor *a) { auditor_ = a; }

    FaultPlan *faults() { return faults_; }

    /** Injection counters merged with kernel backpressure and client
     *  recovery counters — what MetricsSnapshot captures. */
    FaultCounters faultCounters() const;

    /**
     * Install (or replace) the admission-control policy and mbuf
     * accounting mode. Also used by snapshot resume to apply a
     * policy-only override mid-flight: the RX-unit map is rebuilt
     * from the live connections and protocol queue, so switching
     * accounting on over in-flight state is safe.
     */
    void setAdmission(const AdmitParams &p);

    /** Reconfigure the client population's open-loop generator. */
    void setOpenLoop(const OpenLoopParams &p);

    /** Merged client+kernel overload accounting (the gated
     *  "overload" JSON object); enabled=false in closed-loop runs. */
    OverloadStats overloadStats() const;

    /**
     * Check kernel structural invariants (connection-table/accept-
     * queue consistency, run-queue sanity). Returns an empty string
     * when everything holds, else a description of the violation.
     */
    std::string auditInvariants() const;

    /** Dump scheduler/process/net-stack state for the crash bundle. */
    void dumpState(std::ostream &os) const;

    /** Create a user process (workload API). */
    Process &createProcess(const ProcParams &cfg);

    /** Create idle/netisr threads and bind initial threads. */
    void start();

    // --- OsCallbacks ---
    void dtlbMiss(ThreadState &t, Addr vaddr) override;
    void itlbMiss(ThreadState &t, Addr pc) override;
    void serializing(Context &ctx, ThreadState &t,
                     const Instr &in) override;
    void interrupt(Context &ctx, ThreadState &t,
                   std::uint16_t vector) override;
    void cycleHook(Cycle now) override;
    Cycle nextEventAt() const override;

    // --- introspection for metrics/benches ---
    const CounterMap &mmEntries() const { return mmEntries_; }
    const CounterMap &syscallEntries() const { return syscalls_; }
    Network &network() { return net_; }
    ClientPopulation &clients() { return *clients_; }
    std::uint64_t requestsServed() const { return requestsServed_; }
    std::uint64_t diskReads() const { return diskReads_; }
    std::uint64_t contextSwitches() const { return switches_; }
    std::uint64_t tlbWraparounds() const { return wraparounds_; }
    const Params &params() const { return params_; }
    Process &proc(int pid) { return *procs_.at(pid); }
    int numProcs() const { return static_cast<int>(procs_.size()); }

    /** All SPECInt processes finished their start-up read loop. */
    bool startupComplete() const;

    // --- snapshot/restore (src/snap) ---
    static constexpr std::uint32_t snapVersion = 1;
    void save(Snapshotter &sp, const SnapImages &images) const;
    /**
     * Overwrite all mutable kernel state from a snapshot. The kernel
     * must be freshly booted (createProcess + start() already called
     * with the identical deterministic configuration); every field the
     * boot path initialized is overwritten, including per-process
     * thread state and address spaces.
     */
    void load(Restorer &rs, const SnapImages &images);

    /**
     * Mutable overload state (admission RNG, TX cursor, counters,
     * per-conn accept stamps, open-loop generator). Rides only the
     * optional OVLD snapshot section so default artifacts never
     * change; the caller applies setOpenLoop/setAdmission with the
     * section's params *before* loadOverload.
     */
    void saveOverload(Snapshotter &sp) const;
    void loadOverload(Restorer &rs);

  private:
    // boot
    void bootKernelSpace();
    void setupRegions(Process &p);
    Process &createInternal(const ProcParams &cfg, bool idle);

    // scheduling (scheduler.cc)
    void enqueue(Process *p, bool front = false);
    Process *pickNext(CtxId preferred = invalidCtx);
    void switchTo(Context &ctx, Process *next);
    void assignAsn(AddrSpace &space);
    void wakeWaiters(std::uint16_t chan);
    void blockCurrent(Context &ctx, Process &p, std::uint16_t chan);
    void nudgeIdleContext();

    // faults (pal.cc)
    void handleTlbFault(Process &p, Addr vaddr, bool itlb);
    AddrSpace &spaceFor(Process &p, Addr vaddr, bool &global);
    Addr magicTranslate(ThreadState &t, Addr vaddr, bool itlb);

    // syscall dispatch and magic ops (syscalls.cc)
    void dispatchSyscall(Context &ctx, Process &p);
    void doMagic(Context &ctx, Process &p, const Instr &in);
    void appOnlySyscall(Process &p);
    bool wouldBlock(Process &p, std::uint16_t chan) const;
    void deliverWait(Process &p, std::uint16_t chan);

    // fs (fs.cc)
    Addr bufcachePagePhys(int file_id, std::uint32_t page);

    // net stack (netstack.cc)
    Addr allocMbuf(std::uint32_t bytes);
    Addr allocRxMbuf(std::uint32_t bytes);
    void freeRxMbuf(Addr mbuf, std::uint32_t bytes);
    Addr allocTxMbuf(std::uint32_t bytes);
    void rebuildRxMap();
    void shedStaleAccepts();
    void driverRx(Process &p);
    void netisrDeliver(Process &p);
    void netSend(Process &p);
    void nicTick(Cycle now);

    // fault injection
    void injectMce(Cycle now);

    Process *procOf(ThreadState &t);

    friend class KernelTestPeer;

    Params params_;
    Pipeline &pipe_;
    Probes *probes_ = nullptr;
    FaultPlan *faults_ = nullptr;
    InvariantAuditor *auditor_ = nullptr;
    PhysMem &mem_;
    const KernelCode &kc_;
    ImageSet kernelIs_; ///< image set for kernel-only threads

    std::unique_ptr<AddrSpace> kernelSpace_;
    std::vector<std::unique_ptr<Process>> procs_;
    std::deque<Process *> runq_;
    std::vector<Process *> idleForCtx_;
    std::vector<Process *> curProc_;
    std::vector<std::deque<Process *>> waiters_; // by WaitChan

    Network net_;
    std::unique_ptr<ClientPopulation> clients_;
    std::vector<Connection> conns_;
    std::deque<int> acceptQ_;
    std::deque<Packet> nicRing_;
    std::deque<Packet> protoQ_;
    std::unordered_map<std::uint64_t, Frame> bufcache_;
    /** Shared text frames per image (for shareText processes). */
    std::unordered_map<const CodeImage *, std::vector<Frame>>
        sharedText_;

    Asn nextAsn_ = 1;
    Addr mbufCursor_ = 0;
    Cycle nextNicAt_ = 0;
    Cycle nowCycle_ = 0;
    Cycle tlbLockFreeAt_ = 0;
    std::vector<Cycle> nextTimerAt_;
    int nextIntrCtx_ = 0;
    Rng rng_;

    CounterMap mmEntries_;
    CounterMap syscalls_;
    std::uint64_t requestsServed_ = 0;
    std::uint64_t diskReads_ = 0;
    std::uint64_t switches_ = 0;
    std::uint64_t wraparounds_ = 0;
    std::uint64_t synDrops_ = 0;
    std::uint64_t backlogDrops_ = 0;
    std::uint64_t mceKills_ = 0;
    std::size_t faultLogEmitted_ = 0;

    // Overload protection (inert in default runs: admit_ is null and
    // the accounted allocators are never called).
    std::unique_ptr<AdmissionControl> admit_;
    /** RX-region unit bitmap (96 x 2KB units; see netstack.cc). */
    std::array<std::uint64_t, 2> mbufRxMap_{};
    Addr mbufTxCursor_ = 0;
    std::uint64_t admitDropTail_ = 0;
    std::uint64_t admitRedDrops_ = 0;
    std::uint64_t admitShed_ = 0;
    std::uint64_t mbufExhausted_ = 0;
    std::uint64_t mbufTxWraps_ = 0;
};

} // namespace smtos

#endif // SMTOS_KERNEL_KERNEL_H
