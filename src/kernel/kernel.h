/**
 * @file
 * The MiniOS kernel model.
 *
 * Plays the role Digital Unix 4.0d plays in the paper: it owns
 * processes, address spaces and ASNs, the run queue, sockets and the
 * protocol queue, the buffer-cache file system (zero-latency disk, as
 * the paper configures), and the NIC/timer devices. All of its *code*
 * executes on the simulated pipeline via the kernel image; this class
 * supplies the semantics at the magic/serializing points and decides
 * which handler the hardware vectors to on TLB misses and interrupts.
 */

#ifndef SMTOS_KERNEL_KERNEL_H
#define SMTOS_KERNEL_KERNEL_H

#include <array>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/stats.h"
#include "core/pipeline.h"
#include "fault/fault.h"
#include "kernel/admission.h"
#include "kernel/image.h"
#include "kernel/layout.h"
#include "net/clients.h"
#include "net/network.h"
#include "vm/physmem.h"

namespace smtos {

class InvariantAuditor;

/** What kind of software thread a Process is. */
enum class ProcKind
{
    SpecIntApp,
    ApacheServer,
    KernelThread,
    IdleThread,
};

/** Per-process configuration installed by the workload builders. */
struct ProcParams
{
    ProcKind kind = ProcKind::SpecIntApp;
    const CodeImage *image = nullptr; ///< user image (kernel: null)
    int entryFunc = 0;
    std::uint64_t seed = 1;
    Addr heapBytes = 6ull << 20;
    std::uint32_t inputChunks = 256;  ///< SPECInt start-up read loop
    int inputFileId = -1;             ///< SPECInt input file
    /** Share text frames with other processes of the same image. */
    bool shareText = false;
};

/** A software thread (process, kernel thread, or idle thread). */
struct Process
{
    int pid = -1;
    ProcParams cfg;
    ThreadState ts;
    std::unique_ptr<AddrSpace> space;

    enum class State { Ready, Running, Blocked, Exited };
    State state = State::Ready;
    /** Core whose run queue holds this process when Ready. Work
     *  stealing migrates user processes; netisrs stay pinned. */
    int homeCore = 0;
    /** Last context this process ran on (scheduler affinity). */
    CtxId lastCtx = invalidCtx;
    std::uint16_t waitChan = WaitNone;
    CtxId runningOn = invalidCtx;

    std::uint16_t pendingSyscall = 0;

    /** Consecutive machine checks without forward progress; the
     *  kernel kills the process past the plan's retry limit. */
    std::uint32_t mceHits = 0;

    // Apache per-request state.
    int conn = -1;
    bool reqConsumed = false;
    std::uint32_t fileBytesLeft = 0;
    std::uint32_t filePage = 0;
    std::uint32_t lastChunk = 0;
    std::uint64_t requestsServed = 0;

    // Pending TX packet (prepared at writev, sent at NetSend).
    Packet txPacket;

    bool isUser() const
    {
        return cfg.kind == ProcKind::SpecIntApp ||
               cfg.kind == ProcKind::ApacheServer;
    }
};

/**
 * A measured kernel lock. Locks are modeled in virtual time, like the
 * shared-TLB-IPR spin in pal.cc: each acquisition advances freeAt by
 * the hold time; an acquisition arriving while the lock is held spins
 * for the remainder, charged to the acquiring process as kernel
 * spin-wait code. Only instrumented on a multicore machine.
 */
struct KLock
{
    Cycle freeAt = 0;
    std::uint64_t acquisitions = 0;
    std::uint64_t contended = 0;
    std::uint64_t spinCycles = 0;
    std::uint64_t holdCycles = 0;
};

/** Measured lock hold times (virtual cycles), calibrated to the
 *  relative critical-section lengths of the guarded structures. */
constexpr Cycle connLockHold = 60;
constexpr Cycle mbufLockHold = 40;
constexpr Cycle schedLockHold = 20;

/** A server-side connection/socket. */
struct Connection
{
    bool inUse = false;
    int client = -1;
    int fileId = -1;
    std::uint32_t reqBytes = 0;
    std::uint32_t recvAvail = 0;
    Addr mbuf = 0;
    int owner = -1; ///< pid after accept
    std::uint32_t reqSeq = 0; ///< echoed into response packets
    /** Cycle the netisr queued this connection for accept; read by
     *  the oldest-first shedding policy. Not part of the KERN
     *  snapshot bytes — it rides the optional OVLD section. */
    Cycle acceptedAt = 0;
};

/** The OS model. */
class Kernel : public OsCallbacks
{
  public:
    /**
     * Run-queue policies: plain FIFO (Digital Unix-like round robin)
     * or cache-affinity preference — the SMT-aware scheduling
     * direction the paper cites as future work [30, 36].
     */
    enum class SchedPolicy { Fifo, Affinity };

    struct Params
    {
        int numNetisr = 2;
        SchedPolicy schedPolicy = SchedPolicy::Fifo;
        bool enableNetwork = false;
        Cycle nicInterval = 8000;   ///< NIC interrupt coalescing
        Cycle timerQuantum = 150000; ///< scheduling quantum per context
        int maxAsn = 127;
        std::uint64_t seed = 1234;
        /**
         * Table 4 application-only mode: system calls and TLB misses
         * complete instantly with no effect on hardware state.
         */
        bool appOnly = false;
        /**
         * Ablation of the paper's OS modification #2: when true, the
         * TLB-miss IPRs are shared (unmodified SMP OS), so concurrent
         * TLB-miss handlers serialize behind a spin lock. When false
         * (default, the paper's modified OS), per-context IPRs let
         * handlers run in parallel.
         */
        bool sharedTlbIpr = false;
        SpecWebParams web;
        /** Open-loop client arrivals (default off: closed loop). */
        OpenLoopParams openLoop;
        /** Accept-queue admission control + mbuf accounting. */
        AdmitParams admit;
    };

    Kernel(const Params &params, Pipeline &pipe, PhysMem &mem,
           const KernelCode &kc);

    /**
     * CMP wiring: hand the kernel every core's pipeline (in core
     * order; pipes[0] must be the constructor's pipe). Re-sizes the
     * per-context scheduler state to the chip total and becomes the
     * OS callback of every pipe. Contexts are addressed by their
     * global id (gid = core * contextsPerCore + local id) everywhere
     * in the kernel; on one core gid == local id and nothing changes.
     */
    void attachPipes(const std::vector<Pipeline *> &pipes);

    /** Attach (or detach, with nullptr) the observability hub; the
     *  client population shares it for request-trace stamping. */
    void
    setProbes(Probes *p)
    {
        probes_ = p;
        if (clients_)
            clients_->setProbes(p);
    }

    /**
     * Attach a fault plan. Must be called before start(): it threads
     * the plan into the network link, sizes the connection table when
     * the plan overrides it, and arms the client recovery layer when
     * the plan can perturb delivery.
     */
    void attachFaults(FaultPlan *plan);

    /** Attach (or detach) the periodic structural invariant auditor. */
    void setAuditor(InvariantAuditor *a) { auditor_ = a; }

    FaultPlan *faults() { return faults_; }

    /** Injection counters merged with kernel backpressure and client
     *  recovery counters — what MetricsSnapshot captures. */
    FaultCounters faultCounters() const;

    /**
     * Install (or replace) the admission-control policy and mbuf
     * accounting mode. Also used by snapshot resume to apply a
     * policy-only override mid-flight: the RX-unit map is rebuilt
     * from the live connections and protocol queue, so switching
     * accounting on over in-flight state is safe.
     */
    void setAdmission(const AdmitParams &p);

    /** Reconfigure the client population's open-loop generator. */
    void setOpenLoop(const OpenLoopParams &p);

    /** Merged client+kernel overload accounting (the gated
     *  "overload" JSON object); enabled=false in closed-loop runs. */
    OverloadStats overloadStats() const;

    /**
     * Check kernel structural invariants (connection-table/accept-
     * queue consistency, run-queue sanity). Returns an empty string
     * when everything holds, else a description of the violation.
     */
    std::string auditInvariants() const;

    /** Dump scheduler/process/net-stack state for the crash bundle. */
    void dumpState(std::ostream &os) const;

    /** Create a user process (workload API). */
    Process &createProcess(const ProcParams &cfg);

    /** Create idle/netisr threads and bind initial threads. */
    void start();

    // --- OsCallbacks ---
    void dtlbMiss(ThreadState &t, Addr vaddr) override;
    void itlbMiss(ThreadState &t, Addr pc) override;
    void serializing(Context &ctx, ThreadState &t,
                     const Instr &in) override;
    void interrupt(Context &ctx, ThreadState &t,
                   std::uint16_t vector) override;
    void cycleHook(Cycle now) override;
    Cycle nextEventAt() const override;

    // --- introspection for metrics/benches ---
    const CounterMap &mmEntries() const { return mmEntries_; }
    const CounterMap &syscallEntries() const { return syscalls_; }
    Network &network() { return net_; }
    ClientPopulation &clients() { return *clients_; }
    std::uint64_t requestsServed() const { return requestsServed_; }
    std::uint64_t diskReads() const { return diskReads_; }
    std::uint64_t contextSwitches() const { return switches_; }
    std::uint64_t tlbWraparounds() const { return wraparounds_; }

    // --- SMP introspection (all zero on a single-core machine) ---
    int numCores() const { return static_cast<int>(pipes_.size()); }
    const KLock &connLock() const { return connLock_; }
    const KLock &mbufLock() const { return mbufLock_; }
    const std::vector<KLock> &schedLocks() const { return schedLocks_; }
    std::uint64_t workSteals() const { return steals_; }
    std::uint64_t shootdownIpis() const { return shootdownIpis_; }
    std::uint64_t shootdownsDelivered() const
    {
        return shootdownsDelivered_;
    }
    /** Spin cycles charged to processes running on @p core. */
    std::uint64_t lockSpinCycles(int core) const
    {
        return core < static_cast<int>(lockSpinByCore_.size())
                   ? lockSpinByCore_[static_cast<std::size_t>(core)]
                   : 0;
    }
    const Params &params() const { return params_; }
    Process &proc(int pid) { return *procs_.at(pid); }
    int numProcs() const { return static_cast<int>(procs_.size()); }

    /** All SPECInt processes finished their start-up read loop. */
    bool startupComplete() const;

    // --- snapshot/restore (src/snap) ---
    static constexpr std::uint32_t snapVersion = 1;
    void save(Snapshotter &sp, const SnapImages &images) const;
    /**
     * Overwrite all mutable kernel state from a snapshot. The kernel
     * must be freshly booted (createProcess + start() already called
     * with the identical deterministic configuration); every field the
     * boot path initialized is overwritten, including per-process
     * thread state and address spaces.
     */
    void load(Restorer &rs, const SnapImages &images);

    /**
     * Mutable overload state (admission RNG, TX cursor, counters,
     * per-conn accept stamps, open-loop generator). Rides only the
     * optional OVLD snapshot section so default artifacts never
     * change; the caller applies setOpenLoop/setAdmission with the
     * section's params *before* loadOverload.
     */
    void saveOverload(Snapshotter &sp) const;
    void loadOverload(Restorer &rs);

  private:
    // boot
    void bootKernelSpace();
    void setupRegions(Process &p);
    Process &createInternal(const ProcParams &cfg, bool idle);

    // scheduling (scheduler.cc)
    void enqueue(Process *p, bool front = false);
    Process *pickNext(CtxId preferred = invalidCtx);
    Process *pickFromQueue(std::deque<Process *> &rq,
                           CtxId preferred);
    void switchTo(Context &ctx, Process *next);
    void assignAsn(AddrSpace &space, int initiator_core = 0);
    void wakeWaiters(std::uint16_t chan);
    void blockCurrent(Context &ctx, Process &p, std::uint16_t chan);
    void nudgeIdleContext();

    // SMP plumbing (gid addressing, IPIs, measured locks)
    int totalContexts() const
    {
        return numCores() * pipe_.numContexts();
    }
    int coreOf(CtxId gid) const
    {
        return static_cast<int>(gid) / pipe_.numContexts();
    }
    Context &ctxAt(CtxId gid)
    {
        return pipes_[static_cast<std::size_t>(coreOf(gid))]->ctx(
            static_cast<int>(gid) % pipe_.numContexts());
    }
    Pipeline &pipeOfCtx(const Context &ctx)
    {
        return *pipes_[static_cast<std::size_t>(ctx.core)];
    }
    std::deque<Process *> &runqFor(int core)
    {
        return core == 0 ? runq_
                         : runqsN_[static_cast<std::size_t>(core - 1)];
    }
    const std::deque<Process *> &runqFor(int core) const
    {
        return core == 0 ? runq_
                         : runqsN_[static_cast<std::size_t>(core - 1)];
    }
    std::deque<Packet> &protoQFor(int core)
    {
        return core == 0
                   ? protoQ_
                   : protoQsN_[static_cast<std::size_t>(core - 1)];
    }
    const std::deque<Packet> &protoQFor(int core) const
    {
        return core == 0
                   ? protoQ_
                   : protoQsN_[static_cast<std::size_t>(core - 1)];
    }
    /** Ready work reachable from @p core (own queue or stealable). */
    bool runnableFor(int core) const;
    /** Raise an interrupt, keeping the shootdown ledger exact when a
     *  pending (undelivered) shootdown IPI is overwritten. */
    void raiseOn(Context &ctx, std::uint16_t vector);
    /** IPI every other core's bindable contexts after a chip-visible
     *  TLB invalidation (unmap / ASN wraparound). */
    void tlbShootdown(int initiator_core);
    /** Acquire a measured lock; spins the acquiring process for the
     *  remaining hold time when contended (see KLock). */
    void lockAcquire(KLock &lk, const char *name, Process *p,
                     Cycle hold);

    // faults (pal.cc)
    void handleTlbFault(Process &p, Addr vaddr, bool itlb);
    AddrSpace &spaceFor(Process &p, Addr vaddr, bool &global);
    Addr magicTranslate(ThreadState &t, Addr vaddr, bool itlb);

    // syscall dispatch and magic ops (syscalls.cc)
    void dispatchSyscall(Context &ctx, Process &p);
    void doMagic(Context &ctx, Process &p, const Instr &in);
    void appOnlySyscall(Process &p);
    bool wouldBlock(Process &p, std::uint16_t chan) const;
    void deliverWait(Process &p, std::uint16_t chan);

    // fs (fs.cc)
    Addr bufcachePagePhys(int file_id, std::uint32_t page);

    // net stack (netstack.cc)
    Addr allocMbuf(std::uint32_t bytes);
    Addr allocRxMbuf(std::uint32_t bytes);
    void freeRxMbuf(Addr mbuf, std::uint32_t bytes);
    Addr allocTxMbuf(std::uint32_t bytes);
    void rebuildRxMap();
    void shedStaleAccepts();
    void driverRx(Process &p);
    void netisrDeliver(Process &p);
    void netSend(Process &p);
    void nicTick(Cycle now);

    // fault injection
    void injectMce(Cycle now);

    Process *procOf(ThreadState &t);

    friend class KernelTestPeer;

    Params params_;
    Pipeline &pipe_;
    /** All cores' pipelines in core order; pipes_[0] == &pipe_. */
    std::vector<Pipeline *> pipes_;
    Probes *probes_ = nullptr;
    FaultPlan *faults_ = nullptr;
    InvariantAuditor *auditor_ = nullptr;
    PhysMem &mem_;
    const KernelCode &kc_;
    ImageSet kernelIs_; ///< image set for kernel-only threads

    std::unique_ptr<AddrSpace> kernelSpace_;
    std::vector<std::unique_ptr<Process>> procs_;
    std::deque<Process *> runq_;
    /** Cores 1..N-1's run queues (core 0 keeps runq_). */
    std::vector<std::deque<Process *>> runqsN_;
    std::vector<Process *> idleForCtx_;
    std::vector<Process *> curProc_;
    std::vector<std::deque<Process *>> waiters_; // by WaitChan

    Network net_;
    std::unique_ptr<ClientPopulation> clients_;
    std::vector<Connection> conns_;
    std::deque<int> acceptQ_;
    std::deque<Packet> nicRing_;
    std::deque<Packet> protoQ_;
    /** Cores 1..N-1's protocol queues (per-core netisr delivery). */
    std::vector<std::deque<Packet>> protoQsN_;
    std::unordered_map<std::uint64_t, Frame> bufcache_;
    /** Shared text frames per image (for shareText processes). */
    std::unordered_map<const CodeImage *, std::vector<Frame>>
        sharedText_;

    Asn nextAsn_ = 1;
    Addr mbufCursor_ = 0;
    Cycle nextNicAt_ = 0;
    Cycle nowCycle_ = 0;
    Cycle tlbLockFreeAt_ = 0;
    std::vector<Cycle> nextTimerAt_;
    int nextIntrCtx_ = 0;
    Rng rng_;

    // SMP state (inert on one core: every path is gated on
    // pipes_.size() > 1, so single-core artifacts are byte-identical).
    Cycle lastHookCycle_ = 0;
    KLock connLock_;
    KLock mbufLock_;
    std::vector<KLock> schedLocks_;
    std::vector<std::uint64_t> lockSpinByCore_;
    std::uint64_t steals_ = 0;
    std::uint64_t shootdownIpis_ = 0;
    std::uint64_t shootdownsDelivered_ = 0;
    /** IPIs raised but not yet delivered (audit invariant). */
    std::uint64_t pendingShootdowns_ = 0;

    CounterMap mmEntries_;
    CounterMap syscalls_;
    std::uint64_t requestsServed_ = 0;
    std::uint64_t diskReads_ = 0;
    std::uint64_t switches_ = 0;
    std::uint64_t wraparounds_ = 0;
    std::uint64_t synDrops_ = 0;
    std::uint64_t backlogDrops_ = 0;
    std::uint64_t mceKills_ = 0;
    std::size_t faultLogEmitted_ = 0;

    // Overload protection (inert in default runs: admit_ is null and
    // the accounted allocators are never called).
    std::unique_ptr<AdmissionControl> admit_;
    /** RX-region unit bitmap (96 x 2KB units; see netstack.cc). */
    std::array<std::uint64_t, 2> mbufRxMap_{};
    Addr mbufTxCursor_ = 0;
    std::uint64_t admitDropTail_ = 0;
    std::uint64_t admitRedDrops_ = 0;
    std::uint64_t admitShed_ = 0;
    std::uint64_t mbufExhausted_ = 0;
    std::uint64_t mbufTxWraps_ = 0;
};

} // namespace smtos

#endif // SMTOS_KERNEL_KERNEL_H
