/**
 * @file
 * Accept-queue admission control and overload accounting.
 *
 * Under open-loop load the accept queue is the kernel's last line of
 * defense: once queueing delay exceeds the client retry timeout,
 * every queued request will be retransmitted and its eventual
 * response discarded as stale, so service capacity is burned on work
 * nobody consumes and goodput collapses. The admission policies here
 * bound that queue *before* service is wasted:
 *
 *  - DropTail: refuse new connections once the queue holds queueCap
 *    entries. Simple, but sheds the freshest requests — the ones most
 *    likely to still have a waiting client.
 *  - RandomEarlyDrop: above redMinDepth, drop an arriving connection
 *    with probability ramping linearly to redMaxProb at queueCap
 *    (then drop-tail). Draws from its own seeded RNG stream so the
 *    drop schedule is bit-reproducible and independent of workload
 *    randomness.
 *  - OldestFirst: when the queue is full, shed entries from the front
 *    whose time-in-queue exceeds shedDeadline — those are the
 *    requests whose clients have already (or will imminently) give
 *    up. Keeping the deadline below the client retry timeout is what
 *    makes goodput stay flat past the knee.
 *
 * AdmissionControl is a pure decision helper (no kernel state) so the
 * unit tests can verify closed-form drop counts; the kernel owns the
 * queue and the counters. With policy None and mbufAccounting off,
 * no RNG is drawn and no behavior changes: runs are bit-identical to
 * a build without the subsystem.
 */

#ifndef SMTOS_KERNEL_ADMISSION_H
#define SMTOS_KERNEL_ADMISSION_H

#include <cstdint>
#include <string>

#include "common/rng.h"
#include "common/types.h"

namespace smtos {

enum class AdmitPolicy { None, DropTail, RandomEarlyDrop, OldestFirst };

/** Admission-control configuration (SystemConfig::admit). */
struct AdmitParams {
    AdmitPolicy policy = AdmitPolicy::None;
    /** Accept-queue bound; 0 with a non-None policy is rejected. */
    int queueCap = 0;
    /** RED: depth at which early drop starts (below: always admit). */
    int redMinDepth = 0;
    /** RED: drop probability as the depth reaches queueCap. */
    double redMaxProb = 1.0;
    /** OldestFirst: shed entries queued longer than this (cycles). */
    Cycle shedDeadline = 0;
    /** Seed for the RED drop stream (never the workload's RNG). */
    std::uint64_t seed = 0xad317b5eULL;
    /**
     * Replace the bump-and-wrap mbuf allocator with an accounted
     * split pool: bitmap-allocated RX units whose exhaustion
     * backpressures the NIC ring, and a separate TX bump region
     * (see DESIGN.md §14). Off by default — the legacy allocator's
     * bytes and behavior are part of the bit-identity contract.
     */
    bool mbufAccounting = false;

    bool enabled() const
    {
        return policy != AdmitPolicy::None || mbufAccounting;
    }

    /** Parse "policy=oldest,cap=64,deadline=120000,..."; fatal on error. */
    static AdmitParams fromString(const std::string &s);
};

/**
 * Pure admission decision: given the instantaneous accept-queue depth,
 * should this arriving connection be admitted? Owns only the RED RNG
 * stream. OldestFirst shedding itself happens in the kernel (it
 * mutates the queue); this helper only answers "is the queue full"
 * for that policy.
 */
class AdmissionControl {
public:
    explicit AdmissionControl(const AdmitParams &p)
        : params_(p), rng_(p.seed)
    {
    }

    const AdmitParams &params() const { return params_; }

    /** True if an arrival at @p depth should be dropped. */
    bool shouldDrop(int depth)
    {
        const AdmitParams &p = params_;
        if (p.policy == AdmitPolicy::None || p.queueCap <= 0)
            return false;
        if (depth >= p.queueCap)
            return true;
        if (p.policy == AdmitPolicy::RandomEarlyDrop &&
            depth >= p.redMinDepth) {
            const double span =
                static_cast<double>(p.queueCap - p.redMinDepth);
            const double prob =
                span > 0.0 ? p.redMaxProb *
                                 static_cast<double>(depth - p.redMinDepth) /
                                 span
                           : p.redMaxProb;
            return rng_.uniform() < prob;
        }
        return false;
    }

    std::uint64_t rngRawState() const { return rng_.rawState(); }
    void setRngRawState(std::uint64_t s) { rng_.setRawState(s); }

private:
    AdmitParams params_;
    Rng rng_;
};

/**
 * Overload accounting, captured into MetricsSnapshot and exported as
 * the gated "overload" JSON object. Merges client-side open-loop
 * counters with kernel-side admission/mbuf counters so one object
 * tells the whole degradation story: offered vs delivered vs shed.
 */
struct OverloadStats {
    bool enabled = false;
    // Client side (open-loop generator).
    std::uint64_t offeredArrivals = 0;  ///< open-loop arrival events
    std::uint64_t arrivalOverflows = 0; ///< arrivals with no idle port
    std::uint64_t goodput = 0;          ///< completions, aborts excluded
    std::uint64_t clientAborts = 0;     ///< sequences given up on
    std::uint64_t slowCompletions = 0;  ///< slow-client drained responses
    // Kernel side (admission + mbuf accounting).
    std::uint64_t admitDropTail = 0;  ///< arrivals refused at queueCap
    std::uint64_t admitRedDrops = 0;  ///< RED early drops
    std::uint64_t admitShed = 0;      ///< oldest-first shed entries
    std::uint64_t mbufExhausted = 0;  ///< RX allocs backpressured to NIC
    std::uint64_t mbufTxWraps = 0;    ///< TX bump-region wraps (benign)

    OverloadStats delta(const OverloadStats &e) const
    {
        OverloadStats d = *this;
        d.offeredArrivals -= e.offeredArrivals;
        d.arrivalOverflows -= e.arrivalOverflows;
        d.goodput -= e.goodput;
        d.clientAborts -= e.clientAborts;
        d.slowCompletions -= e.slowCompletions;
        d.admitDropTail -= e.admitDropTail;
        d.admitRedDrops -= e.admitRedDrops;
        d.admitShed -= e.admitShed;
        d.mbufExhausted -= e.mbufExhausted;
        d.mbufTxWraps -= e.mbufTxWraps;
        return d;
    }
};

} // namespace smtos

#endif // SMTOS_KERNEL_ADMISSION_H
