#include "kernel/kernel.h"

#include <ostream>
#include <sstream>

#include "common/logging.h"
#include "common/trace.h"
#include "fault/auditor.h"
#include "kernel/tags.h"
#include "obs/probes.h"

namespace smtos {

Kernel::Kernel(const Params &params, Pipeline &pipe, PhysMem &mem,
               const KernelCode &kc)
    : params_(params), pipe_(pipe), pipes_{&pipe}, mem_(mem), kc_(kc),
      kernelIs_{nullptr, &kc.image}, rng_(params.seed)
{
    schedLocks_.resize(1);
    lockSpinByCore_.resize(1, 0);
    waiters_.resize(4);
    conns_.resize(512);
    idleForCtx_.assign(static_cast<size_t>(pipe_.numContexts()),
                       nullptr);
    curProc_.assign(static_cast<size_t>(pipe_.numContexts()), nullptr);
    nextTimerAt_.assign(static_cast<size_t>(pipe_.numContexts()), 0);
    bootKernelSpace();
    if (params_.enableNetwork)
        clients_ = std::make_unique<ClientPopulation>(
            params_.web, params_.seed ^ 0xc11e47ull);
    if (clients_ && params_.openLoop.enabled)
        clients_->setOpenLoop(params_.openLoop);
    if (params_.admit.enabled())
        setAdmission(params_.admit);
    pipe_.setOs(this);
}

void
Kernel::attachPipes(const std::vector<Pipeline *> &pipes)
{
    smtos_assert(!pipes.empty() && pipes.front() == &pipe_);
    pipes_ = pipes;
    const auto total = static_cast<std::size_t>(totalContexts());
    idleForCtx_.assign(total, nullptr);
    curProc_.assign(total, nullptr);
    nextTimerAt_.assign(total, 0);
    runqsN_.resize(pipes_.size() - 1);
    protoQsN_.resize(pipes_.size() - 1);
    schedLocks_.assign(pipes_.size(), KLock{});
    lockSpinByCore_.assign(pipes_.size(), 0);
    for (Pipeline *p : pipes_)
        p->setOs(this);
}

void
Kernel::setAdmission(const AdmitParams &p)
{
    params_.admit = p;
    admit_ = p.policy != AdmitPolicy::None
                 ? std::make_unique<AdmissionControl>(p)
                 : nullptr;
    if (p.mbufAccounting)
        rebuildRxMap();
}

void
Kernel::setOpenLoop(const OpenLoopParams &p)
{
    params_.openLoop = p;
    if (clients_)
        clients_->setOpenLoop(p);
}

OverloadStats
Kernel::overloadStats() const
{
    OverloadStats o;
    o.enabled = params_.admit.enabled() ||
                (clients_ && clients_->openLoopEnabled());
    if (!o.enabled)
        return o;
    if (clients_) {
        o.offeredArrivals = clients_->arrivals();
        o.arrivalOverflows = clients_->arrivalOverflows();
        o.goodput = clients_->goodput();
        o.clientAborts = clients_->aborts();
        o.slowCompletions = clients_->slowCompletions();
    }
    o.admitDropTail = admitDropTail_;
    o.admitRedDrops = admitRedDrops_;
    o.admitShed = admitShed_;
    o.mbufExhausted = mbufExhausted_;
    o.mbufTxWraps = mbufTxWraps_;
    return o;
}

void
Kernel::bootKernelSpace()
{
    kernelSpace_ = std::make_unique<AddrSpace>(0, mem_);
    kernelSpace_->setAsn(0);

    // Kernel text: identity-mapped global pages over the low reserved
    // physical region.
    const Addr text_pages =
        (kc_.image.textBytes() + pageBytes - 1) / pageBytes;
    for (Addr i = 0; i < text_pages; ++i)
        kernelSpace_->mapShared(pageOf(kernelBase) + i, i);

    // Kernel virtual heap: allocate real frames.
    for (Addr i = 0; i < kernelVirtHeapBytes / pageBytes; ++i)
        kernelSpace_->mapNew(pageOf(kernelVirtHeapBase) + i);
}

void
Kernel::setupRegions(Process &p)
{
    ThreadState &ts = p.ts;
    if (p.isUser()) {
        ts.regions[regUserGlobals] =
            MemRegion{userGlobalsBase, userGlobalsBytes};
        ts.regions[regUserHeap] = MemRegion{userHeapBase,
                                            p.cfg.heapBytes};
        ts.regions[regUserStack] =
            MemRegion{userStackBase, userStackBytes};
        ts.regions[regUserAux] = MemRegion{userAuxBase, userAuxBytes};
    }
    // Kernel data structures are shared-hot: every thread touches
    // the same proc/socket/vm tables, so their windows overlap.
    ts.regions[regKVirt] =
        MemRegion{kernelVirtHeapBase, kernelVirtHeapBytes, true};
    ts.regions[regKPhys] =
        MemRegion{kernelPhysHeapBase, kernelPhysHeapBytes, true};
    ts.regions[regKStack] =
        MemRegion{kernelStackBase(p.pid), kernelStackBytes, false};
    ts.regions[regMbuf] = MemRegion{mbufPoolBase, mbufPoolBytes, true};

    // Map this thread's kernel stack (global, present).
    for (Addr i = 0; i < kernelStackBytes / pageBytes; ++i) {
        const Addr vpn = pageOf(kernelStackBase(p.pid)) + i;
        if (!kernelSpace_->mapped(vpn))
            kernelSpace_->mapNew(vpn);
    }
}

Process &
Kernel::createInternal(const ProcParams &cfg, bool idle)
{
    auto up = std::make_unique<Process>();
    Process &p = *up;
    p.pid = static_cast<int>(procs_.size());
    p.cfg = cfg;
    p.ts.id = p.pid;
    p.ts.seed = cfg.seed;
    p.ts.isIdleThread = idle;
    if (cfg.kind == ProcKind::SpecIntApp ||
        cfg.kind == ProcKind::ApacheServer) {
        p.space = std::make_unique<AddrSpace>(p.pid + 1, mem_);
        p.ts.space = p.space.get();
        p.ts.userImage = cfg.image;
        p.ts.cursor.reset(cfg.entryFunc, false, cfg.seed);
    } else {
        p.ts.space = kernelSpace_.get();
        p.ts.userImage = nullptr;
        p.ts.cursor.reset(cfg.entryFunc, true, cfg.seed);
    }
    p.ts.iprs.serviceTrip = cfg.inputChunks;
    setupRegions(p);

    // Text mapping: shared (Apache) processes map the image's shared
    // frames eagerly; private (SPECInt) text pages fault in lazily.
    if (p.isUser() && cfg.shareText) {
        auto &frames = sharedText_[cfg.image];
        const Addr text_pages =
            (cfg.image->textBytes() + pageBytes - 1) / pageBytes;
        if (frames.empty()) {
            for (Addr i = 0; i < text_pages; ++i)
                frames.push_back(mem_.allocFrame());
        }
        for (Addr i = 0; i < text_pages; ++i)
            p.space->mapShared(pageOf(cfg.image->textBase()) + i,
                               frames[i]);
    }

    procs_.push_back(std::move(up));
    return p;
}

Process &
Kernel::createProcess(const ProcParams &cfg)
{
    Process &p = createInternal(cfg, false);
    // Spread user processes across the cores' run queues; work
    // stealing rebalances from there.
    if (numCores() > 1 && p.isUser())
        p.homeCore = p.pid % numCores();
    if (p.isUser() || cfg.kind == ProcKind::KernelThread) {
        p.state = Process::State::Ready;
        enqueue(&p, cfg.kind == ProcKind::KernelThread);
    }
    return p;
}

void
Kernel::start()
{
    // Netisr protocol threads (kernel threads, scheduled first).
    // On a CMP they are pinned round-robin across the cores so every
    // core drains its own protocol queue.
    if (params_.enableNetwork) {
        for (int i = 0; i < params_.numNetisr; ++i) {
            ProcParams cfg;
            cfg.kind = ProcKind::KernelThread;
            cfg.entryFunc = kc_.netisrLoop[i % netisrVariants];
            cfg.seed = params_.seed ^ (0x9e37ull + i);
            Process &p = createInternal(cfg, false);
            p.homeCore = i % numCores();
            p.state = Process::State::Ready;
            enqueue(&p, true);
        }
    }
    // Per-context idle threads.
    for (int c = 0; c < totalContexts(); ++c) {
        ProcParams cfg;
        cfg.kind = ProcKind::IdleThread;
        cfg.entryFunc = kc_.idleLoop;
        cfg.seed = params_.seed ^ (0x1d1eull + c);
        Process &p = createInternal(cfg, true);
        p.homeCore = coreOf(static_cast<CtxId>(c));
        idleForCtx_[static_cast<size_t>(c)] = &p;
    }
    // Bind initial threads.
    for (int c = 0; c < totalContexts(); ++c) {
        const CtxId gid = static_cast<CtxId>(c);
        switchTo(ctxAt(gid),
                 pickNext(numCores() > 1 ? gid : invalidCtx));
        nextTimerAt_[static_cast<size_t>(c)] =
            params_.timerQuantum + static_cast<Cycle>(c) * 1013;
    }
    nextNicAt_ = params_.nicInterval;
}

Process *
Kernel::procOf(ThreadState &t)
{
    smtos_assert(t.id >= 0 &&
                 t.id < static_cast<int>(procs_.size()));
    return procs_[static_cast<size_t>(t.id)].get();
}

bool
Kernel::startupComplete() const
{
    for (const auto &p : procs_) {
        if (p->cfg.kind == ProcKind::SpecIntApp &&
            p->filePage < p->cfg.inputChunks)
            return false;
    }
    return true;
}

void
Kernel::serializing(Context &ctx, ThreadState &t, const Instr &in)
{
    Process &p = *procOf(t);
    const ImageSet is{t.userImage, &kc_.image};
    t.cursor.setStuck(false);
    t.cursor.stepSequential(is);

    switch (in.op) {
      case Op::Syscall:
        p.pendingSyscall = in.payload;
        syscalls_.add(sysnoName(in.payload));
        smtos_trace(TraceCat::Syscall, "pid%d %s", p.pid,
                    sysnoName(in.payload));
        if (probes_)
            probes_->syscallEnter(ctx.id, p.pid,
                                  sysnoName(in.payload));
        if (params_.appOnly)
            appOnlySyscall(p);
        else
            t.cursor.push(kc_.sysEntry[p.pid % serviceVariants],
                          true);
        return;
      case Op::Magic:
        doMagic(ctx, p, in);
        return;
      case Op::TlbWrite: {
        if (!t.cursor.hasFault())
            return; // stale handler re-entry; nothing to install
        const FaultRec r = t.cursor.popFault();
        Pipeline &pl = pipeOfCtx(ctx);
        Tlb &tlb = r.itlb ? pl.itlb() : pl.dtlb();
        AddrSpace &sp = r.global ? *kernelSpace_ : *p.space;
        AccessInfo who{p.pid, Mode::Pal, ctx.id};
        tlb.insert(r.vpn, sp.asn(), r.frame, who, r.global != 0);
        return;
      }
      case Op::Halt:
        p.state = Process::State::Exited;
        switchTo(ctx, pickNext(ctx.gid));
        return;
      default:
        smtos_panic("unexpected serializing op %s", opName(in.op));
    }
}

void
Kernel::interrupt(Context &ctx, ThreadState &t, std::uint16_t vector)
{
    Process &p = *procOf(t);
    if (params_.appOnly) {
        // Application-only mode: interrupts have no code cost; timer
        // interrupts still rotate threads so multiprogramming works.
        if (vector == VecTimer || vector == VecResched) {
            if (runnableFor(ctx.core))
                switchTo(ctx, pickNext(ctx.gid));
        }
        return;
    }
    if (vector == VecShootdown) {
        // The TLB was already invalidated synchronously at the unmap;
        // this IPI's handler (the resched path) models only the cost.
        ++shootdownsDelivered_;
        if (pendingShootdowns_ > 0)
            --pendingShootdowns_;
    }
    if (vector == VecMce) {
        // Retry-then-kill recovery: the handler scrubs the reported
        // structure and the victim re-executes; a process that takes
        // machine checks with no forward progress in between (no
        // completed syscall) is killed past the retry limit.
        ++p.mceHits;
        const int limit =
            faults_ ? faults_->params().mceRetryLimit : 3;
        if (p.isUser() &&
            p.mceHits > static_cast<std::uint32_t>(limit)) {
            if (p.conn >= 0) {
                const Connection &cn =
                    conns_[static_cast<size_t>(p.conn)];
                if (probes_ && cn.inUse)
                    probes_->reqDrop("mce-kill", cn.client, cn.reqSeq,
                                     nowCycle_);
                if (params_.admit.mbufAccounting && cn.inUse)
                    freeRxMbuf(cn.mbuf, cn.reqBytes);
                conns_[static_cast<size_t>(p.conn)] = Connection{};
                p.conn = -1;
            }
            ++mceKills_;
            if (faults_)
                faults_->note(nowCycle_, FaultKind::MceKill,
                              static_cast<std::uint64_t>(p.pid));
            smtos_trace(TraceCat::Fault,
                        "pid%d killed after %u machine checks", p.pid,
                        p.mceHits);
            p.state = Process::State::Exited;
            switchTo(ctx, pickNext(ctx.gid));
            return;
        }
        t.cursor.push(kc_.intrMce, true);
        return;
    }
    (void)p;
    int func = kc_.intrResched;
    if (vector == VecNic)
        func = kc_.intrNet;
    else if (vector == VecTimer)
        func = kc_.intrTimer;
    t.cursor.push(func, true);
}

void
Kernel::cycleHook(Cycle now)
{
    // On a CMP every core's pipeline invokes the hook each chip
    // cycle; device/timer work must run exactly once per cycle.
    if (pipes_.size() > 1) {
        if (now == lastHookCycle_)
            return;
        lastHookCycle_ = now;
    }
    nowCycle_ = now;
    if (faults_ && faults_->mceDue(now))
        injectMce(now);
    if (params_.enableNetwork && now >= nextNicAt_) {
        nicTick(now);
        nextNicAt_ = now + params_.nicInterval;
    }
    for (int c = 0; c < totalContexts(); ++c) {
        auto &next_at = nextTimerAt_[static_cast<size_t>(c)];
        if (next_at != 0 && now >= next_at) {
            next_at = now + params_.timerQuantum;
            if (!params_.appOnly ||
                runnableFor(coreOf(static_cast<CtxId>(c))))
                raiseOn(ctxAt(static_cast<CtxId>(c)), VecTimer);
        }
    }
    if (faults_ && probes_) {
        // Forward freshly logged fault events to the timeline.
        const auto &lg = faults_->log();
        while (faultLogEmitted_ < lg.size()) {
            const FaultEvent &e = lg[faultLogEmitted_++];
            probes_->faultEvent(faultKindName(e.kind), e.cycle, e.a,
                                e.b);
        }
    }
    if (auditor_)
        auditor_->maybeCheck(now);
}

Cycle
Kernel::nextEventAt() const
{
    // Every cycleHook event above polls "now >= at", so returning the
    // exact scheduled cycles lets quiescence fast-forward jump right
    // up to (never past) the next one. Fault-log forwarding needs no
    // horizon: new entries only appear as a side effect of the events
    // already accounted here or of pipeline activity.
    Cycle h = ~Cycle{0};
    if (params_.enableNetwork && nextNicAt_ < h)
        h = nextNicAt_;
    for (const Cycle t : nextTimerAt_)
        if (t != 0 && t < h)
            h = t;
    if (faults_ && faults_->nextMceAt() != 0 &&
        faults_->nextMceAt() < h)
        h = faults_->nextMceAt();
    if (auditor_ && auditor_->nextCheckAt() < h)
        h = auditor_->nextCheckAt();
    return h;
}

void
Kernel::attachFaults(FaultPlan *plan)
{
    faults_ = plan;
    net_.attachFaults(plan);
    if (!plan)
        return;
    if (plan->params().connTableSize > 0)
        conns_.assign(
            static_cast<size_t>(plan->params().connTableSize),
            Connection{});
    if (clients_ && plan->recoveryNeeded())
        clients_->setRecovery(true);
}

void
Kernel::injectMce(Cycle now)
{
    const std::uint64_t pick = faults_->takeMce(now);
    const auto nctx = static_cast<std::uint64_t>(totalContexts());
    const CtxId victim = static_cast<CtxId>(pick % nctx);
    Context &c = ctxAt(victim);
    Pipeline &pl = pipeOfCtx(c);

    // Model the transient fault itself: scrub one translation or one
    // data-cache line; the correct state is re-derived on the next
    // miss, at a performance (never correctness) cost.
    if (((pick >> 8) & 1) != 0) {
        const std::uint64_t idx = pl.dtlb().invalidateIndex(pick >> 16);
        faults_->note(now, FaultKind::MceTlb,
                      static_cast<std::uint64_t>(victim), idx);
    } else {
        const std::uint64_t idx =
            pl.hierarchy().l1d().invalidateIndex(pick >> 16);
        faults_->note(now, FaultKind::MceCache,
                      static_cast<std::uint64_t>(victim), idx);
    }

    if (faults_->params().mceBreakRecovery) {
        // Deliberately broken recovery (test-only): corrupt committed
        // register state and raise no trap. The co-simulation oracle
        // must flag the divergence.
        if (c.hasThread() && !c.thread->isIdleThread) {
            for (int r = 1; r <= 8; ++r)
                c.thread->archRegs[static_cast<size_t>(r)] ^=
                    mixHash(pick, static_cast<std::uint64_t>(r));
            faults_->note(now, FaultKind::MceSilent,
                          static_cast<std::uint64_t>(victim));
        }
        return;
    }
    if (params_.appOnly)
        return; // no handler code to run in application-only mode
    raiseOn(c, VecMce);
}

FaultCounters
Kernel::faultCounters() const
{
    FaultCounters c;
    if (faults_)
        c = faults_->injected();
    // The kernel's own counters are authoritative (they also exist
    // without a plan attached, e.g. conn-table drops under overload).
    c.synDrops = synDrops_;
    c.backlogDrops = backlogDrops_;
    c.mceKills = mceKills_;
    if (clients_) {
        c.retransmits = clients_->retransmits();
        c.clientAborts = clients_->aborts();
    }
    return c;
}

std::string
Kernel::auditInvariants() const
{
    std::ostringstream os;
    if (acceptQ_.size() > conns_.size())
        os << "accept queue (" << acceptQ_.size()
           << ") deeper than connection table (" << conns_.size()
           << ")\n";
    for (int id : acceptQ_) {
        if (id < 0 || id >= static_cast<int>(conns_.size()))
            os << "accept queue holds out-of-range conn " << id
               << "\n";
        else if (!conns_[static_cast<size_t>(id)].inUse)
            os << "accept queue holds free conn " << id << "\n";
    }
    for (int core = 0; core < numCores(); ++core) {
        for (Process *p : runqFor(core)) {
            // pickNext tolerates stale entries; a Running process in
            // the queue is outright corruption (bound twice).
            if (p->state == Process::State::Running)
                os << "core " << core << " run queue holds Running pid "
                   << p->pid << "\n";
        }
    }
    if (numCores() > 1) {
        // Shootdown ledger: pendingShootdowns_ must equal the number
        // of contexts holding an undelivered shootdown IPI.
        std::uint64_t pending = 0;
        for (Pipeline *pl : pipes_) {
            for (int c = 0; c < pl->numContexts(); ++c) {
                const Context &cx = pl->ctx(c);
                if (cx.interruptPending &&
                    cx.interruptVector == VecShootdown)
                    ++pending;
            }
        }
        if (pending != pendingShootdowns_)
            os << "shootdown ledger " << pendingShootdowns_
               << " != pending IPIs " << pending << "\n";
        if (shootdownsDelivered_ + pendingShootdowns_ >
            shootdownIpis_)
            os << "delivered+pending shootdowns exceed raised ("
               << shootdownsDelivered_ << "+" << pendingShootdowns_
               << " > " << shootdownIpis_ << ")\n";
    }
    for (size_t cx = 0; cx < curProc_.size(); ++cx) {
        const Process *p = curProc_[cx];
        if (!p)
            continue;
        if (p->runningOn != static_cast<CtxId>(cx))
            os << "ctx" << cx << " runs pid " << p->pid
               << " but runningOn=" << p->runningOn << "\n";
        if (p->state != Process::State::Running)
            os << "ctx" << cx << " runs pid " << p->pid
               << " in a non-Running state\n";
    }
    for (size_t ch = 0; ch < waiters_.size(); ++ch) {
        for (const Process *p : waiters_[ch]) {
            if (p->state != Process::State::Blocked)
                os << "wait channel " << ch << " holds pid " << p->pid
                   << " in a non-Blocked state\n";
        }
    }
    if (params_.admit.mbufAccounting) {
        // Every live RX reference must have its units marked in the
        // map — a clear bit under a live connection means the unit
        // could be handed out again (the exact aliasing the accounted
        // allocator exists to prevent).
        auto marked = [this](Addr mbuf, std::uint32_t bytes) {
            constexpr Addr unit = 2048, rxUnits = 96;
            if (mbuf < mbufPoolBase ||
                mbuf >= mbufPoolBase + rxUnits * unit)
                return true; // legacy/TX address: not tracked
            const Addr u0 = (mbuf - mbufPoolBase) / unit;
            Addr units = (static_cast<Addr>(bytes) + unit - 1) / unit;
            if (units == 0)
                units = 1;
            for (Addr k = 0; k < units && u0 + k < rxUnits; ++k)
                if (!(mbufRxMap_[(u0 + k) >> 6] &
                      (1ull << ((u0 + k) & 63))))
                    return false;
            return true;
        };
        for (size_t i = 0; i < conns_.size(); ++i) {
            const Connection &cn = conns_[i];
            if (cn.inUse && !marked(cn.mbuf, cn.reqBytes))
                os << "conn " << i << " holds unaccounted RX mbuf\n";
        }
        for (int core = 0; core < numCores(); ++core) {
            for (const Packet &pkt : protoQFor(core)) {
                if (!marked(pkt.mbuf, pkt.bytes))
                    os << "protoQ packet holds unaccounted RX mbuf\n";
            }
        }
    }
    return os.str();
}

void
Kernel::dumpState(std::ostream &os) const
{
    os << "cycle " << nowCycle_ << "\n";
    os << "runq depth " << runq_.size() << ", acceptQ "
       << acceptQ_.size() << ", protoQ " << protoQ_.size()
       << ", nicRing " << nicRing_.size() << "\n";
    for (size_t cx = 0; cx < curProc_.size(); ++cx) {
        const Process *p = curProc_[cx];
        os << "ctx" << cx << ": ";
        if (p)
            os << "pid " << p->pid << "\n";
        else
            os << "(unbound)\n";
    }
    std::size_t connsInUse = 0;
    for (const Connection &cn : conns_)
        if (cn.inUse)
            ++connsInUse;
    os << "connections in use " << connsInUse << "/" << conns_.size()
       << "\n";
    static const char *stateName[] = {"Ready", "Running", "Blocked",
                                      "Exited"};
    for (const auto &up : procs_) {
        const Process &p = *up;
        os << "pid " << p.pid << ": state "
           << stateName[static_cast<int>(p.state)] << ", conn "
           << p.conn << ", waitChan " << p.waitChan << ", mceHits "
           << p.mceHits << ", served " << p.requestsServed << "\n";
    }
}

} // namespace smtos
