#include "bp/btb.h"

#include "common/logging.h"
#include "common/stats.h"

namespace smtos {

Btb::Btb(int entries, int assoc) : assoc_(assoc)
{
    smtos_assert(entries > 0 && assoc > 0 && entries % assoc == 0);
    numSets_ = entries / assoc;
    if ((numSets_ & (numSets_ - 1)) == 0)
        setMask_ = static_cast<Addr>(numSets_) - 1;
    entries_.assign(static_cast<size_t>(entries), Entry{});
}

BtbResult
Btb::lookup(Addr pc, const AccessInfo &who)
{
    const int cls = who.isKernel() ? 1 : 0;
    ++stats_.accesses[cls];
    ++tick_;

    Entry *base = &entries_[static_cast<size_t>(setOf(pc)) *
                            static_cast<size_t>(assoc_)];
    for (int w = 0; w < assoc_; ++w) {
        if (base[w].valid && base[w].pc == pc) {
            base[w].lruStamp = tick_;
            return BtbResult{true, base[w].target};
        }
    }
    ++stats_.misses[cls];
    MissCause cause = classifier_.classify(pc, who);
    stats_.cause[cls][static_cast<int>(cause)]++;
    return BtbResult{};
}

bool
Btb::present(Addr pc) const
{
    const Entry *base = &entries_[static_cast<size_t>(setOf(pc)) *
                                  static_cast<size_t>(assoc_)];
    for (int w = 0; w < assoc_; ++w)
        if (base[w].valid && base[w].pc == pc)
            return true;
    return false;
}

void
Btb::update(Addr pc, Addr target, const AccessInfo &who)
{
    ++tick_;
    Entry *base = &entries_[static_cast<size_t>(setOf(pc)) *
                            static_cast<size_t>(assoc_)];
    // Refresh an existing entry.
    for (int w = 0; w < assoc_; ++w) {
        if (base[w].valid && base[w].pc == pc) {
            base[w].target = target;
            base[w].lruStamp = tick_;
            return;
        }
    }
    // Allocate: first invalid way, else LRU.
    Entry *victim = &base[0];
    for (int w = 0; w < assoc_; ++w) {
        if (!base[w].valid) {
            victim = &base[w];
            break;
        }
        if (base[w].lruStamp < victim->lruStamp)
            victim = &base[w];
    }
    if (victim->valid)
        classifier_.recordEviction(victim->pc, who);
    victim->valid = true;
    victim->pc = pc;
    victim->target = target;
    victim->lruStamp = tick_;
}

double
Btb::missRatePct() const
{
    return pct(static_cast<double>(stats_.totalMisses()),
               static_cast<double>(stats_.totalAccesses()));
}

double
Btb::missRatePct(bool kernel) const
{
    const int cls = kernel ? 1 : 0;
    return pct(static_cast<double>(stats_.misses[cls]),
               static_cast<double>(stats_.accesses[cls]));
}

} // namespace smtos
