#include "bp/ras.h"

#include "common/logging.h"

namespace smtos {

Ras::Ras(int depth)
{
    smtos_assert(depth > 0);
    stack_.assign(static_cast<size_t>(depth), 0);
}

void
Ras::push(Addr ret_addr)
{
    stack_[static_cast<size_t>(sp_)] = ret_addr;
    sp_ = (sp_ + 1) % depth();
}

Addr
Ras::pop()
{
    sp_ = (sp_ + depth() - 1) % depth();
    return stack_[static_cast<size_t>(sp_)];
}

Ras::Checkpoint
Ras::save() const
{
    const int top = (sp_ + depth() - 1) % depth();
    return Checkpoint{sp_, stack_[static_cast<size_t>(top)]};
}

void
Ras::restore(const Checkpoint &cp)
{
    sp_ = cp.sp;
    const int top = (sp_ + depth() - 1) % depth();
    stack_[static_cast<size_t>(top)] = cp.top;
}

} // namespace smtos
