#include "bp/mcfarling.h"

#include "common/logging.h"

namespace smtos {

namespace {

/** Saturating 2-bit counter update. */
inline void
bump(std::uint8_t &ctr, bool up)
{
    if (up) {
        if (ctr < 3) ++ctr;
    } else {
        if (ctr > 0) --ctr;
    }
}

inline bool
isPow2(int v)
{
    return v > 0 && (v & (v - 1)) == 0;
}

inline int
log2i(int v)
{
    int b = 0;
    while ((1 << b) < v)
        ++b;
    return b;
}

} // namespace

McFarling::McFarling(const McFarlingParams &params) : params_(params)
{
    smtos_assert(isPow2(params_.localHistEntries));
    smtos_assert(isPow2(params_.localPredEntries));
    smtos_assert(isPow2(params_.globalEntries));
    smtos_assert(isPow2(params_.chooserEntries));
    localHistBits_ = log2i(params_.localPredEntries);
    localHist_.assign(static_cast<size_t>(params_.localHistEntries), 0);
    // Weakly not-taken start; kernel diamond branches default to
    // fall-through, matching the paper's observation.
    localPred_.assign(static_cast<size_t>(params_.localPredEntries), 1);
    global_.assign(static_cast<size_t>(params_.globalEntries), 1);
    chooser_.assign(static_cast<size_t>(params_.chooserEntries), 2);
}

int
McFarling::localHistIndex(Addr pc) const
{
    return static_cast<int>((pc >> 2) &
                            (params_.localHistEntries - 1));
}

int
McFarling::localPredIndex(Addr pc) const
{
    const std::uint16_t hist = localHist_[localHistIndex(pc)];
    return hist & (params_.localPredEntries - 1);
}

int
McFarling::globalIndex(Addr pc) const
{
    return static_cast<int>((ghr_ ^ (pc >> 2)) &
                            static_cast<Addr>(params_.globalEntries - 1));
}

int
McFarling::chooserIndex() const
{
    return static_cast<int>(ghr_ &
                            static_cast<Addr>(params_.chooserEntries - 1));
}

bool
McFarling::predict(Addr pc) const
{
    const bool local_taken = localPred_[localPredIndex(pc)] >= 2;
    const bool global_taken = global_[globalIndex(pc)] >= 2;
    const bool use_global = chooser_[chooserIndex()] >= 2;
    if (use_global) {
        ++globalPicks_;
        return global_taken;
    }
    ++localPicks_;
    return local_taken;
}

void
McFarling::train(Addr pc, bool taken)
{
    const int lp = localPredIndex(pc);
    const int gi = globalIndex(pc);
    const int ci = chooserIndex();
    const bool local_correct = (localPred_[lp] >= 2) == taken;
    const bool global_correct = (global_[gi] >= 2) == taken;

    if (local_correct != global_correct)
        bump(chooser_[ci], global_correct);
    bump(localPred_[lp], taken);
    bump(global_[gi], taken);

    std::uint16_t &h = localHist_[localHistIndex(pc)];
    h = static_cast<std::uint16_t>(((h << 1) | (taken ? 1 : 0)) &
                                   ((1 << localHistBits_) - 1));
    pushHistory(taken);
}

void
McFarling::pushHistory(bool taken)
{
    ghr_ = (ghr_ << 1) | (taken ? 1 : 0);
}

} // namespace smtos
