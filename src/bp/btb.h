/**
 * @file
 * Branch target buffer: 1K entries, 4-way set associative (Table 1),
 * with the same interference classification as the caches so Tables 3
 * and 7's BTB columns can be reproduced.
 */

#ifndef SMTOS_BP_BTB_H
#define SMTOS_BP_BTB_H

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "mem/missclass.h"
#include "snap/fwd.h"

namespace smtos {

/** Result of a BTB lookup. */
struct BtbResult
{
    bool hit = false;
    Addr target = 0;
};

/** Set-associative branch target buffer. */
class Btb
{
  public:
    Btb(int entries = 1024, int assoc = 4);

    /**
     * Look up the target for the control transfer at @p pc; updates
     * miss statistics and classification on behalf of @p who.
     */
    BtbResult lookup(Addr pc, const AccessInfo &who);

    /** Probe without statistics. */
    bool present(Addr pc) const;

    /** Install/refresh the target after a taken control transfer. */
    void update(Addr pc, Addr target, const AccessInfo &who);

    const InterferenceStats &stats() const { return stats_; }
    double missRatePct() const;
    double missRatePct(bool kernel) const;

    /** Hits whose stored target was stale (indirect-jump churn). */
    std::uint64_t wrongTargetHits() const { return wrongTarget_; }
    void noteWrongTarget() { ++wrongTarget_; }

    void resetStats()
    {
        stats_.reset();
        wrongTarget_ = 0;
    }

    static constexpr std::uint32_t snapVersion = 1;
    void save(Snapshotter &sp) const;
    void load(Restorer &rs);

  private:
    struct Entry
    {
        bool valid = false;
        Addr pc = 0;
        Addr target = 0;
        std::uint64_t lruStamp = 0;
    };

    int setOf(Addr pc) const
    {
        // numSets_ is a power of two for every supported geometry;
        // the ctor falls back to modulo otherwise.
        return static_cast<int>(
            setMask_ ? (pc >> 2) & setMask_
                     : (pc >> 2) % static_cast<Addr>(numSets_));
    }

    int assoc_;
    Addr setMask_ = 0; ///< numSets_ - 1 when numSets_ is a power of two
    int numSets_;
    std::vector<Entry> entries_;
    std::uint64_t tick_ = 0;
    MissClassifier classifier_;
    InterferenceStats stats_;
    std::uint64_t wrongTarget_ = 0;
};

} // namespace smtos

#endif // SMTOS_BP_BTB_H
