/**
 * @file
 * McFarling-style hybrid conditional branch predictor (Table 1):
 * a 4K-entry local prediction table indexed through a 2K-entry local
 * history table, an 8K-entry global (gshare) table, and an 8K-entry
 * chooser indexed by global history. The global history register is a
 * single shared register, as on a real SMT, so threads perturb one
 * another's history — one of the interference effects the paper
 * measures.
 */

#ifndef SMTOS_BP_MCFARLING_H
#define SMTOS_BP_MCFARLING_H

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "snap/fwd.h"

namespace smtos {

/** Configuration for the hybrid predictor. */
struct McFarlingParams
{
    int localHistEntries = 2048;  ///< per-branch history registers
    int localPredEntries = 4096;  ///< 2-bit counters, hist-indexed
    int globalEntries = 8192;     ///< 2-bit counters, gshare-indexed
    int chooserEntries = 8192;    ///< 2-bit chooser counters
};

/** The hybrid direction predictor. */
class McFarling
{
  public:
    explicit McFarling(const McFarlingParams &params = {});

    /** Predict the direction of the conditional branch at @p pc. */
    bool predict(Addr pc) const;

    /**
     * Train all component tables with the resolved direction and
     * advance the shared global history.
     */
    void train(Addr pc, bool taken);

    /** Advance global history only (unconditional transfers). */
    void pushHistory(bool taken);

    /** Shared global history register (for checkpoint/restore). */
    std::uint64_t ghr() const { return ghr_; }
    void setGhr(std::uint64_t g) { ghr_ = g; }

    /** Counts of predictions served by the chooser's pick (tests). */
    std::uint64_t localPicks() const { return localPicks_; }
    std::uint64_t globalPicks() const { return globalPicks_; }

    static constexpr std::uint32_t snapVersion = 1;
    void save(Snapshotter &sp) const;
    void load(Restorer &rs);

  private:
    int localHistIndex(Addr pc) const;
    int localPredIndex(Addr pc) const;
    int globalIndex(Addr pc) const;
    int chooserIndex() const;

    McFarlingParams params_;
    int localHistBits_;
    std::vector<std::uint16_t> localHist_;
    std::vector<std::uint8_t> localPred_;
    std::vector<std::uint8_t> global_;
    std::vector<std::uint8_t> chooser_;
    std::uint64_t ghr_ = 0;
    mutable std::uint64_t localPicks_ = 0;
    mutable std::uint64_t globalPicks_ = 0;
};

} // namespace smtos

#endif // SMTOS_BP_MCFARLING_H
