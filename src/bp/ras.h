/**
 * @file
 * Per-context return address stack. The SMT duplicates subroutine
 * return prediction per hardware context (Section 2.1 of the paper).
 */

#ifndef SMTOS_BP_RAS_H
#define SMTOS_BP_RAS_H

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "snap/fwd.h"

namespace smtos {

/** A single context's return address stack. */
class Ras
{
  public:
    explicit Ras(int depth = 16);

    /** Push a return address (on fetching a call). */
    void push(Addr ret_addr);

    /** Pop the predicted return address (on fetching a return). */
    Addr pop();

    /** Checkpoint for speculation repair: stack pointer and top. */
    struct Checkpoint
    {
        int sp;
        Addr top;
    };

    Checkpoint save() const;
    void restore(const Checkpoint &cp);

    int depth() const { return static_cast<int>(stack_.size()); }
    int sp() const { return sp_; }

    static constexpr std::uint32_t snapVersion = 1;
    /** Full-state serialization (overloads the checkpoint save()). */
    void save(Snapshotter &sp) const;
    void load(Restorer &rs);

  private:
    std::vector<Addr> stack_;
    int sp_ = 0; // next free slot (wraps)
};

} // namespace smtos

#endif // SMTOS_BP_RAS_H
