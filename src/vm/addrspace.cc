#include "vm/addrspace.h"

#include "common/logging.h"

namespace smtos {

std::atomic<bool> AddrSpace::hostCacheEnabled_{true};

std::int64_t
AddrSpace::translate(Addr vpn) const
{
    if (hostCacheEnabled()) {
        Way &w = pageCache_[slotOf(vpn)];
        if (w.vpn == vpn)
            return static_cast<std::int64_t>(w.frame);
        auto it = pages_.find(vpn);
        if (it == pages_.end())
            return -1; // never cache negatives: a map would go stale
        w.vpn = vpn;
        w.frame = it->second;
        return static_cast<std::int64_t>(it->second);
    }
    auto it = pages_.find(vpn);
    if (it == pages_.end())
        return -1;
    return static_cast<std::int64_t>(it->second);
}

Frame
AddrSpace::frameOf(Addr vpn) const
{
    const std::int64_t f = translate(vpn);
    if (f < 0)
        smtos_panic("addrspace %d: unmapped vpn 0x%llx", id_,
                    static_cast<unsigned long long>(vpn));
    return static_cast<Frame>(f);
}

Frame
AddrSpace::mapNew(Addr vpn)
{
    SMTOS_CHECK(!mapped(vpn));
    Frame f = mem_->allocFrame();
    pages_.emplace(vpn, f);
    return f;
}

void
AddrSpace::mapShared(Addr vpn, Frame f)
{
    SMTOS_CHECK(!mapped(vpn));
    pages_.emplace(vpn, f);
}

void
AddrSpace::unmap(Addr vpn, bool free_frame)
{
    auto it = pages_.find(vpn);
    SMTOS_CHECK(it != pages_.end());
    if (free_frame)
        mem_->freeFrame(it->second);
    pages_.erase(it);
    Way &w = pageCache_[slotOf(vpn)];
    if (w.vpn == vpn)
        w.vpn = invalidVpn;
}

Addr
AddrSpace::ptePhysAddr(Addr vpn)
{
    const Addr pt_index = vpn / ptesPerPage;
    Frame f;
    Way &w = ptCache_[slotOf(pt_index)];
    if (hostCacheEnabled() && w.vpn == pt_index) {
        f = w.frame;
    } else {
        auto it = ptPages_.find(pt_index);
        if (it == ptPages_.end()) {
            f = mem_->allocFrame();
            ptPages_.emplace(pt_index, f);
        } else {
            f = it->second;
        }
        // PT pages are never freed, so this entry can't go stale.
        w.vpn = pt_index;
        w.frame = f;
    }
    return PhysMem::frameAddr(f) + (vpn % ptesPerPage) * 8;
}

} // namespace smtos
