#include "vm/addrspace.h"

#include "common/logging.h"

namespace smtos {

Frame
AddrSpace::frameOf(Addr vpn) const
{
    auto it = pages_.find(vpn);
    if (it == pages_.end())
        smtos_panic("addrspace %d: unmapped vpn 0x%llx", id_,
                    static_cast<unsigned long long>(vpn));
    return it->second;
}

Frame
AddrSpace::mapNew(Addr vpn)
{
    SMTOS_CHECK(!mapped(vpn));
    Frame f = mem_->allocFrame();
    pages_.emplace(vpn, f);
    return f;
}

void
AddrSpace::mapShared(Addr vpn, Frame f)
{
    SMTOS_CHECK(!mapped(vpn));
    pages_.emplace(vpn, f);
}

void
AddrSpace::unmap(Addr vpn, bool free_frame)
{
    auto it = pages_.find(vpn);
    SMTOS_CHECK(it != pages_.end());
    if (free_frame)
        mem_->freeFrame(it->second);
    pages_.erase(it);
}

Addr
AddrSpace::ptePhysAddr(Addr vpn)
{
    const Addr pt_index = vpn / ptesPerPage;
    auto it = ptPages_.find(pt_index);
    Frame f;
    if (it == ptPages_.end()) {
        f = mem_->allocFrame();
        ptPages_.emplace(pt_index, f);
    } else {
        f = it->second;
    }
    return PhysMem::frameAddr(f) + (vpn % ptesPerPage) * 8;
}

} // namespace smtos
