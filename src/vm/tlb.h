/**
 * @file
 * Software-managed, ASN-tagged TLB (Alpha-style).
 *
 * The TLB is shared by all hardware contexts of the SMT (the paper's
 * key SMT-vs-SMP difference); entries carry an address space number so
 * multiple address spaces coexist without flushes. Misses are serviced
 * in software by the PAL/kernel handler, which installs entries via
 * insert() — the hardware never walks page tables itself.
 */

#ifndef SMTOS_VM_TLB_H
#define SMTOS_VM_TLB_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "mem/missclass.h"
#include "snap/fwd.h"
#include "vm/physmem.h"

namespace smtos {

class Probes;

/** A fully associative, round-robin-replacement, ASN-tagged TLB. */
class Tlb
{
  public:
    Tlb(std::string name, int entries);

    /** Attach (or detach, with nullptr) the observability hub. */
    void setProbes(Probes *p) { probes_ = p; }

    /**
     * Look up @p vpn under @p asn for @p who.
     * @return the mapped frame, or a negative value on miss.
     * Statistics (including the paper's conflict classification) are
     * updated as a side effect.
     */
    std::int64_t lookup(Addr vpn, Asn asn, const AccessInfo &who);

    /** Probe without statistics side effects. */
    bool present(Addr vpn, Asn asn) const;

    /**
     * Install a translation (the `tlbwrite` PAL operation). The
     * displaced entry, if any, is recorded for miss classification
     * against @p who.
     */
    void insert(Addr vpn, Asn asn, Frame frame, const AccessInfo &who,
                bool global = false);

    /** Invalidate every entry with the given ASN (OS operation). */
    void flushAsn(Asn asn);

    /** Invalidate everything (OS operation, e.g. ASN wraparound). */
    void flushAll();

    /** Invalidate one translation (OS unmap). */
    void flushPage(Addr vpn, Asn asn);

    /**
     * Invalidate the entry at @p idx (mod size) — fault injection's
     * model of a transient TLB parity error. Returns the normalized
     * index; the entry may already have been invalid.
     */
    std::uint64_t invalidateIndex(std::uint64_t idx);

    const InterferenceStats &stats() const { return stats_; }
    InterferenceStats &stats() { return stats_; }
    double missRatePct() const;

    int size() const { return static_cast<int>(entries_.size()); }
    int validEntries() const;

    const std::string &name() const { return name_; }

    void resetStats() { stats_.reset(); }

    static constexpr std::uint32_t snapVersion = 1;
    void save(Snapshotter &sp) const;
    void load(Restorer &rs);

  private:
    struct Entry
    {
        bool valid = false;
        bool global = false; // matches any ASN (kernel mappings)
        Asn asn = -1;
        Addr vpn = 0;
        Frame frame = 0;
        ThreadId filler = invalidThread;
        bool fillerKernel = false;
        std::uint64_t touchedMask = 0;
    };

    /** Classification key folds the ASN with the VPN. */
    static Addr key(Addr vpn, Asn asn)
    {
        return (static_cast<Addr>(static_cast<std::uint32_t>(asn))
                << 44) | vpn;
    }

    /**
     * Host-side lookup accelerator: remembers which entry index last
     * held a given (vpn, asn) so lookup() can skip the linear scan.
     * Hints are validated against the entry before use, so a stale
     * hint only costs the scan it would have cost anyway — no
     * invalidation protocol is needed, and hit/miss results and all
     * statistics are identical with or without it.
     */
    static constexpr std::size_t hintSlots = 8192; // power of two

    static std::size_t hintSlot(Addr vpn, Asn asn)
    {
        const Addr k = key(vpn, asn);
        return static_cast<std::size_t>((k ^ (k >> 17)) &
                                        (hintSlots - 1));
    }

    /** tag_[i] mirrors entries_[i].vpn while valid (noTag when not):
     *  the associative scan compares one dense 8-byte array instead
     *  of walking the fat Entry structs, which also makes the
     *  guaranteed-full scan of every miss cheap. VPNs are at most 51
     *  bits, so noTag collides with nothing. */
    static constexpr Addr noTag = ~0ull;

    void rebuildTags()
    {
        tag_.assign(entries_.size(), noTag);
        for (std::size_t i = 0; i < entries_.size(); ++i)
            if (entries_[i].valid)
                tag_[i] = entries_[i].vpn;
    }

    std::string name_;
    Probes *probes_ = nullptr;
    std::vector<Entry> entries_;
    std::vector<Addr> tag_;
    std::vector<std::uint32_t> hint_; // entry index + 1; 0 = none
    int replacePtr_ = 0;
    MissClassifier classifier_;
    InterferenceStats stats_;
};

} // namespace smtos

#endif // SMTOS_VM_TLB_H
