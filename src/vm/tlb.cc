#include "vm/tlb.h"

#include <algorithm>

#include "common/logging.h"
#include "common/stats.h"
#include "obs/probes.h"

namespace smtos {

Tlb::Tlb(std::string name, int entries) : name_(std::move(name))
{
    smtos_assert(entries > 0);
    entries_.assign(static_cast<size_t>(entries), Entry{});
    tag_.assign(static_cast<size_t>(entries), noTag);
    hint_.assign(hintSlots, 0);
}

std::int64_t
Tlb::lookup(Addr vpn, Asn asn, const AccessInfo &who)
{
    const int cls = who.isKernel() ? 1 : 0;
    ++stats_.accesses[cls];
    auto hit = [&](Entry &e) {
        // Constructive sharing: first use by a thread of an entry
        // another thread installed (Table 8's TLB columns).
        const std::uint64_t bit =
            1ull << (static_cast<std::uint64_t>(who.thread) & 63);
        if (e.filler != who.thread && !(e.touchedMask & bit))
            ++stats_.avoided[cls][e.fillerKernel ? 1 : 0];
        e.touchedMask |= bit;
        return static_cast<std::int64_t>(e.frame);
    };
    std::uint32_t &hint = hint_[hintSlot(vpn, asn)];
    if (hint != 0) {
        Entry &e = entries_[hint - 1];
        if (e.valid && e.vpn == vpn && (e.global || e.asn == asn))
            return hit(e);
    }
    for (std::size_t i = 0; i < tag_.size(); ++i) {
        if (tag_[i] != vpn)
            continue;
        Entry &e = entries_[i];
        if (e.global || e.asn == asn) {
            hint = static_cast<std::uint32_t>(i) + 1;
            return hit(e);
        }
    }
    ++stats_.misses[cls];
    MissCause cause = classifier_.classify(key(vpn, asn), who);
    stats_.cause[cls][static_cast<int>(cause)]++;
    if (probes_)
        probes_->tlbMiss(name_.c_str(), who.thread, vpn << pageShift);
    return -1;
}

bool
Tlb::present(Addr vpn, Asn asn) const
{
    for (const Entry &e : entries_)
        if (e.valid && e.vpn == vpn && (e.global || e.asn == asn))
            return true;
    return false;
}

void
Tlb::insert(Addr vpn, Asn asn, Frame frame, const AccessInfo &who,
            bool global)
{
    // Refuse duplicate installs (can happen when two contexts miss on
    // the same page concurrently; the second install is a no-op).
    if (present(vpn, asn))
        return;

    Entry &victim = entries_[static_cast<size_t>(replacePtr_)];
    hint_[hintSlot(vpn, asn)] =
        static_cast<std::uint32_t>(replacePtr_) + 1;
    replacePtr_ = (replacePtr_ + 1) % static_cast<int>(entries_.size());
    if (victim.valid)
        classifier_.recordEviction(key(victim.vpn, victim.asn), who);
    tag_[static_cast<size_t>(&victim - entries_.data())] = vpn;
    victim.valid = true;
    victim.global = global;
    victim.asn = asn;
    victim.vpn = vpn;
    victim.frame = frame;
    victim.filler = who.thread;
    victim.fillerKernel = who.isKernel();
    victim.touchedMask =
        1ull << (static_cast<std::uint64_t>(who.thread) & 63);
}

void
Tlb::flushAsn(Asn asn)
{
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        Entry &e = entries_[i];
        if (e.valid && !e.global && e.asn == asn) {
            classifier_.recordInvalidation(key(e.vpn, e.asn));
            e.valid = false;
            tag_[i] = noTag;
        }
    }
}

void
Tlb::flushAll()
{
    for (Entry &e : entries_) {
        if (e.valid) {
            classifier_.recordInvalidation(key(e.vpn, e.asn));
            e.valid = false;
        }
    }
    std::fill(tag_.begin(), tag_.end(), noTag);
}

std::uint64_t
Tlb::invalidateIndex(std::uint64_t idx)
{
    idx %= entries_.size();
    Entry &e = entries_[idx];
    if (e.valid) {
        classifier_.recordInvalidation(key(e.vpn, e.asn));
        e.valid = false;
        tag_[idx] = noTag;
    }
    return idx;
}

void
Tlb::flushPage(Addr vpn, Asn asn)
{
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        Entry &e = entries_[i];
        if (e.valid && e.vpn == vpn && (e.global || e.asn == asn)) {
            classifier_.recordInvalidation(key(e.vpn, e.asn));
            e.valid = false;
            tag_[i] = noTag;
        }
    }
}

double
Tlb::missRatePct() const
{
    return pct(static_cast<double>(stats_.totalMisses()),
               static_cast<double>(stats_.totalAccesses()));
}

int
Tlb::validEntries() const
{
    int n = 0;
    for (const Entry &e : entries_)
        if (e.valid)
            ++n;
    return n;
}

} // namespace smtos
