/**
 * @file
 * Per-process address spaces with real (frame-backed) page tables.
 *
 * Translations are stored in page-table pages whose physical addresses
 * are visible, so the software TLB-miss handler's PTE loads hit the
 * actual memory hierarchy at the actual PTE locations.
 *
 * A small direct-mapped host-side cache sits in front of the hash
 * maps: positive translations (vpn -> frame) and page-table frames
 * are remembered per slot and invalidated exactly on unmap. The cache
 * is a pure host optimization — hits return the same values the maps
 * would, so simulation results are bit-identical with it on or off
 * (setHostCacheEnabled, used by the perf bit-identity tests).
 */

#ifndef SMTOS_VM_ADDRSPACE_H
#define SMTOS_VM_ADDRSPACE_H

#include <array>
#include <atomic>
#include <cstdint>
#include <unordered_map>

#include "common/types.h"
#include "snap/fwd.h"
#include "vm/physmem.h"

namespace smtos {

/** PTEs per page-table page (4KB / 8B). */
constexpr Addr ptesPerPage = pageBytes / 8;

/** One virtual address space (a process, or the kernel). */
class AddrSpace
{
  public:
    /**
     * @param id stable address-space identifier
     * @param mem backing frame allocator (must outlive this object)
     */
    AddrSpace(int id, PhysMem &mem) : id_(id), mem_(&mem)
    {
        for (auto &w : pageCache_)
            w.vpn = invalidVpn;
        for (auto &w : ptCache_)
            w.vpn = invalidVpn;
    }

    /** Stable identity (not the ASN; ASNs are assigned by the OS). */
    int id() const { return id_; }

    /** Currently assigned ASN (set by the scheduler). */
    Asn asn() const { return asn_; }
    void setAsn(Asn a) { asn_ = a; }

    /** True when @p vpn has a valid translation. */
    bool mapped(Addr vpn) const { return translate(vpn) >= 0; }

    /** Translate; panics when unmapped (callers must check/fault). */
    Frame frameOf(Addr vpn) const;

    /**
     * Combined lookup: the mapped frame, or a negative value when
     * @p vpn has no translation. One probe where callers previously
     * paid a mapped() + frameOf() pair.
     */
    std::int64_t translate(Addr vpn) const;

    /** Map @p vpn to a freshly allocated frame; returns the frame. */
    Frame mapNew(Addr vpn);

    /** Map @p vpn to an existing frame (shared mappings). */
    void mapShared(Addr vpn, Frame f);

    /** Remove a translation; frees the frame when @p free_frame. */
    void unmap(Addr vpn, bool free_frame);

    /**
     * Physical address of the PTE for @p vpn. Allocates the backing
     * page-table page on first use (counted as kernel metadata).
     */
    Addr ptePhysAddr(Addr vpn);

    /** Number of mapped pages. */
    std::size_t residentPages() const { return pages_.size(); }

    /**
     * Globally enable/disable the host translation cache (on by
     * default). Read-only during simulation; the perf suite flips it
     * between runs to prove bit-identity.
     */
    static void setHostCacheEnabled(bool on)
    {
        hostCacheEnabled_.store(on, std::memory_order_relaxed);
    }
    static bool hostCacheEnabled()
    {
        return hostCacheEnabled_.load(std::memory_order_relaxed);
    }

    static constexpr std::uint32_t snapVersion = 1;
    void save(Snapshotter &sp) const;
    /** Overwrites the page maps and resets the host caches cold. */
    void load(Restorer &rs);

  private:
    static constexpr Addr invalidVpn = ~Addr{0};
    static constexpr std::size_t cacheWays = 64; // power of two

    struct Way
    {
        Addr vpn = ~Addr{0};
        Frame frame = 0;
    };

    static std::size_t slotOf(Addr vpn)
    {
        return static_cast<std::size_t>(vpn) & (cacheWays - 1);
    }

    static std::atomic<bool> hostCacheEnabled_;

    int id_;
    PhysMem *mem_;
    Asn asn_ = -1;
    std::unordered_map<Addr, Frame> pages_;
    std::unordered_map<Addr, Frame> ptPages_; // vpn>>9 -> PT frame
    /** Positive vpn->frame cache (cleared per-slot on unmap). */
    mutable std::array<Way, cacheWays> pageCache_;
    /** pt_index->frame cache (PT pages are never unmapped). */
    mutable std::array<Way, cacheWays> ptCache_;
};

} // namespace smtos

#endif // SMTOS_VM_ADDRSPACE_H
