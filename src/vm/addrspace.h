/**
 * @file
 * Per-process address spaces with real (frame-backed) page tables.
 *
 * Translations are stored in page-table pages whose physical addresses
 * are visible, so the software TLB-miss handler's PTE loads hit the
 * actual memory hierarchy at the actual PTE locations.
 */

#ifndef SMTOS_VM_ADDRSPACE_H
#define SMTOS_VM_ADDRSPACE_H

#include <cstdint>
#include <unordered_map>

#include "common/types.h"
#include "vm/physmem.h"

namespace smtos {

/** PTEs per page-table page (4KB / 8B). */
constexpr Addr ptesPerPage = pageBytes / 8;

/** One virtual address space (a process, or the kernel). */
class AddrSpace
{
  public:
    /**
     * @param id stable address-space identifier
     * @param mem backing frame allocator (must outlive this object)
     */
    AddrSpace(int id, PhysMem &mem) : id_(id), mem_(&mem) {}

    /** Stable identity (not the ASN; ASNs are assigned by the OS). */
    int id() const { return id_; }

    /** Currently assigned ASN (set by the scheduler). */
    Asn asn() const { return asn_; }
    void setAsn(Asn a) { asn_ = a; }

    /** True when @p vpn has a valid translation. */
    bool mapped(Addr vpn) const { return pages_.count(vpn) != 0; }

    /** Translate; panics when unmapped (callers must check/fault). */
    Frame frameOf(Addr vpn) const;

    /** Map @p vpn to a freshly allocated frame; returns the frame. */
    Frame mapNew(Addr vpn);

    /** Map @p vpn to an existing frame (shared mappings). */
    void mapShared(Addr vpn, Frame f);

    /** Remove a translation; frees the frame when @p free_frame. */
    void unmap(Addr vpn, bool free_frame);

    /**
     * Physical address of the PTE for @p vpn. Allocates the backing
     * page-table page on first use (counted as kernel metadata).
     */
    Addr ptePhysAddr(Addr vpn);

    /** Number of mapped pages. */
    std::size_t residentPages() const { return pages_.size(); }

  private:
    int id_;
    PhysMem *mem_;
    Asn asn_ = -1;
    std::unordered_map<Addr, Frame> pages_;
    std::unordered_map<Addr, Frame> ptPages_; // vpn>>9 -> PT frame
};

} // namespace smtos

#endif // SMTOS_VM_ADDRSPACE_H
