/**
 * @file
 * Physical frame allocator for the simulated 128MB of memory.
 *
 * The kernel's page-allocation path allocates real frames from this
 * pool, and the PAL TLB-miss handler walks page tables that live in
 * frames allocated here, so kernel memory-management activity creates
 * genuine cache traffic.
 */

#ifndef SMTOS_VM_PHYSMEM_H
#define SMTOS_VM_PHYSMEM_H

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "snap/fwd.h"

namespace smtos {

/** Physical frame number. */
using Frame = std::uint64_t;

/** Bump-then-freelist physical frame allocator. */
class PhysMem
{
  public:
    /**
     * @param bytes total physical memory (Table 1: 128MB)
     * @param reserved_bytes low region reserved for kernel text/data
     */
    explicit PhysMem(std::uint64_t bytes = 128ull * 1024 * 1024,
                     std::uint64_t reserved_bytes = 16ull * 1024 * 1024);

    /** Allocate one frame; fatal when memory is exhausted. */
    Frame allocFrame();

    /** Return a frame to the pool. */
    void freeFrame(Frame f);

    /** Frames still allocatable. */
    std::uint64_t freeFrames() const;

    /** Total frames (including reserved). */
    std::uint64_t totalFrames() const { return totalFrames_; }

    /** First allocatable frame (above the kernel reservation). */
    Frame firstAllocatable() const { return firstAlloc_; }

    /** Physical byte address of the start of frame @p f. */
    static Addr frameAddr(Frame f) { return f << pageShift; }

    /** Frames handed out and not yet freed. */
    std::uint64_t allocated() const { return allocated_; }

    static constexpr std::uint32_t snapVersion = 1;
    void save(Snapshotter &sp) const;
    void load(Restorer &rs);

  private:
    std::uint64_t totalFrames_;
    Frame firstAlloc_;
    Frame bump_;
    std::vector<Frame> freeList_;
    std::uint64_t allocated_ = 0;
};

} // namespace smtos

#endif // SMTOS_VM_PHYSMEM_H
