#include "vm/physmem.h"

#include "common/logging.h"

namespace smtos {

PhysMem::PhysMem(std::uint64_t bytes, std::uint64_t reserved_bytes)
    : totalFrames_(bytes >> pageShift),
      firstAlloc_(reserved_bytes >> pageShift),
      bump_(firstAlloc_)
{
    SMTOS_CHECK(reserved_bytes < bytes);
}

Frame
PhysMem::allocFrame()
{
    ++allocated_;
    if (!freeList_.empty()) {
        Frame f = freeList_.back();
        freeList_.pop_back();
        return f;
    }
    if (bump_ >= totalFrames_)
        smtos_fatal("physical memory exhausted (%llu frames)",
                    static_cast<unsigned long long>(totalFrames_));
    return bump_++;
}

void
PhysMem::freeFrame(Frame f)
{
    SMTOS_CHECK(f >= firstAlloc_ && f < totalFrames_);
    SMTOS_CHECK(allocated_ > 0);
    --allocated_;
    freeList_.push_back(f);
}

std::uint64_t
PhysMem::freeFrames() const
{
    return (totalFrames_ - bump_) + freeList_.size();
}

} // namespace smtos
