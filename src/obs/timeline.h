/**
 * @file
 * Perfetto / Chrome trace-event timeline exporter.
 *
 * Streams a `trace.json` in the Trace Event Format (JSON object with
 * a `traceEvents` array) loadable in ui.perfetto.dev or
 * chrome://tracing. One simulated cycle maps to one microsecond of
 * trace time. Three synthetic processes organize the tracks:
 *
 *   pid 0 "core modes"  — per-hardware-context tracks of retired-mode
 *                         spans (user/kernel/pal/idle) plus squash and
 *                         optional TLB/cache-miss instants
 *   pid 1 "syscalls"    — per-software-thread tracks of syscall spans
 *                         (entry at the serializing commit, exit at
 *                         the thread's next return to user mode)
 *   pid 2 "scheduler"   — per-context tracks showing which software
 *                         thread is bound (gaps = idle thread)
 *   pid 3 "faults"      — instants for every injected fault (packet
 *                         loss/delay/reorder, machine checks, SYN and
 *                         backlog drops)
 *   pid 4 "dram"        — per-channel queue-occupancy counters and
 *                         row-conflict instants (banked model with
 *                         detail on; metadata emitted lazily so flat
 *                         traces are unchanged)
 *   pid 5 "queues"      — run-queue and accept-queue depth counters
 *                         (request tracer attached; metadata lazy)
 *   pid 6 "requests"    — per-client request-journey instants plus
 *                         flow events chaining issue → driver →
 *                         accept → dispatch → transmit → complete
 *                         across the scheduler and syscall tracks
 *
 * The writer emits events in simulation order (timestamps are
 * monotone non-decreasing) with alphabetically sorted keys in every
 * event object, so the output is deterministic and easy to diff.
 */

#ifndef SMTOS_OBS_TIMELINE_H
#define SMTOS_OBS_TIMELINE_H

#include <cstdint>
#include <iosfwd>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace smtos {

class TimelineExporter
{
  public:
    /**
     * @param os destination stream (kept open; finish() writes the
     *           JSON footer but does not close the stream)
     * @param detail also emit per-miss TLB/cache instants (verbose)
     */
    explicit TimelineExporter(std::ostream &os, bool detail = false);

    bool detail() const { return detail_; }

    /** Write the header and track metadata. */
    void begin(int num_contexts);

    /** The context's retired stream changed mode or thread. */
    void modeSpan(CtxId ctx, ThreadId thread, Mode mode, Cycle now);

    /** A syscall entered kernel dispatch on @p thread. */
    void syscallBegin(CtxId ctx, ThreadId thread, const char *name,
                      Cycle now);

    /** Squash (mispredict recovery or DTLB trap) on @p ctx. */
    void squash(CtxId ctx, ThreadId thread, Addr pc, const char *why,
                Cycle now);

    /** Scheduler bound @p thread to @p ctx ("idle" closes the span). */
    void schedSpan(CtxId ctx, ThreadId thread, bool idle,
                   const std::string &label, Cycle now);

    /** Detail instant: a TLB or cache miss. */
    void memInstant(const char *structure, ThreadId thread, Addr addr,
                    Cycle now);

    /** Instant: one injected fault (kind from faultKindName). */
    void faultInstant(const char *kind, Cycle now, std::uint64_t a,
                      std::uint64_t b);

    /**
     * Detail event from the banked DRAM controller: a queue-occupancy
     * counter sample on the channel's track, plus an instant for row
     * conflicts. The pid-4 "dram" process metadata is emitted lazily
     * on the first event so flat-mode traces are byte-identical to
     * the pre-banked format.
     */
    void dramEvent(ThreadId thread, Addr paddr, int channel, int bank,
                   int kind, int queueOcc, Cycle now);

    /**
     * Request-journey instant on the per-client track (pid 6). The
     * process/track metadata is emitted lazily on first use so traces
     * without the request tracer are byte-identical to older output.
     */
    void requestInstant(const char *name, int client, Cycle now,
                        const std::string &args = std::string());

    /**
     * Flow-event step linking one request's journey across tracks:
     * @p ph is 's' (start), 't' (step) or 'f' (end, which carries
     * `"bp":"e"` so it binds to the enclosing slice). All steps of a
     * request share @p id, so the viewer draws one arrow chain.
     */
    void requestFlow(char ph, std::uint64_t id, int pid, int tid,
                     Cycle now);

    /** Queue-depth counter sample on pid 5 (@p queue: 0 = run queue,
     *  1 = accept queue); metadata lazy like the dram tracks. */
    void queueCounter(int queue, std::size_t depth, Cycle now);

    /** Close every open span at @p now and write the footer. */
    void finish(Cycle now);

    std::uint64_t eventCount() const { return events_; }

  private:
    /** Emit one event object; @p args is pre-rendered JSON or empty. */
    void event(const char *cat, const std::string &name, char ph,
               int pid, int tid, Cycle ts,
               const std::string &args = std::string(),
               bool thread_scope = false);
    void threadName(int pid, int tid, const std::string &name,
                    Cycle ts);

    std::ostream &os_;
    bool detail_;
    bool open_ = false;
    std::uint64_t events_ = 0;

    /** Open retired-mode span per context (-1: none). */
    std::vector<int> openMode_;
    std::vector<ThreadId> openModeThread_;
    /** Open scheduler span per context (invalidThread: none). */
    std::vector<ThreadId> openSched_;
    /** Threads with an open syscall span. */
    std::unordered_map<ThreadId, bool> openSyscall_;
    /** Threads already given a syscall-track name. */
    std::unordered_map<ThreadId, bool> namedThread_;
    /** pid-4 "dram" process/track metadata already written. */
    bool namedDram_ = false;
    std::vector<bool> namedDramCh_;
    /** pid-5 "queues" / pid-6 "requests" metadata already written. */
    bool namedQueues_ = false;
    bool namedRequests_ = false;
    std::unordered_map<int, bool> namedClient_;
};

} // namespace smtos

#endif // SMTOS_OBS_TIMELINE_H
