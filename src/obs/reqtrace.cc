#include "obs/reqtrace.h"

#include <ostream>

#include "common/logging.h"
#include "obs/timeline.h"
#include "snap/snapshot.h"

namespace smtos {

namespace {

/** Histogram geometry shared with ClientPopulation::latency_ so the
 *  per-stage and end-to-end quantiles are directly comparable. */
constexpr std::int64_t histLo = 0;
constexpr std::int64_t histHi = 4 * 1024 * 1024;
constexpr int histBuckets = 256;

constexpr int pidScheduler = 2; ///< timeline pid of the sched tracks
constexpr int pidSyscalls = 1;  ///< timeline pid of the syscall tracks
constexpr int pidRequests = 6;  ///< timeline pid of the request tracks

std::string
reqArgs(int client, std::uint32_t seq)
{
    return "{\"client\":" + std::to_string(client) +
           ",\"seq\":" + std::to_string(seq) + "}";
}

} // namespace

const char *
reqStageName(int stage)
{
    switch (stage) {
      case 0: return "nic_wait";
      case 1: return "netstack";
      case 2: return "accept_wait";
      case 3: return "sched_wait";
      case 4: return "service";
      case 5: return "transmit";
    }
    return "?";
}

bool
reqStageIsQueueing(int stage)
{
    return stage == 0 || stage == 2 || stage == 3;
}

ReqTraceStats
ReqTraceStats::delta(const ReqTraceStats &earlier) const
{
    ReqTraceStats d = *this; // keeps `enabled` from the later capture
    d.tracked -= earlier.tracked;
    d.completedClean -= earlier.completedClean;
    d.completedRetried -= earlier.completedRetried;
    d.completedIrregular -= earlier.completedIrregular;
    d.aborted -= earlier.aborted;
    d.retransmitAnnotations -= earlier.retransmitAnnotations;
    d.dropAnnotations -= earlier.dropAnnotations;
    for (int i = 0; i < numReqStages; ++i)
        d.stageCycles[i] -= earlier.stageCycles[i];
    d.queueingCycles -= earlier.queueingCycles;
    d.serviceCycles -= earlier.serviceCycles;
    return d;
}

RequestTracer::RequestTracer()
    : stage_{Histogram(histLo, histHi, histBuckets),
             Histogram(histLo, histHi, histBuckets),
             Histogram(histLo, histHi, histBuckets),
             Histogram(histLo, histHi, histBuckets),
             Histogram(histLo, histHi, histBuckets),
             Histogram(histLo, histHi, histBuckets)},
      e2e_(histLo, histHi, histBuckets)
{
}

const Histogram &
RequestTracer::stageHist(int stage) const
{
    smtos_assert(stage >= 0 && stage < numReqStages);
    return stage_[stage];
}

std::uint64_t
RequestTracer::key(int client, std::uint32_t seq)
{
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(
                client))
            << 32) |
           seq;
}

RequestTracer::Inflight *
RequestTracer::advance(int client, std::uint32_t seq, ReqBoundary b,
                       Cycle now)
{
    auto it = live_.find(key(client, seq));
    if (it == live_.end())
        return nullptr;
    // Only the expected next boundary advances the span; anything
    // else (a duplicate delivery from a retransmit race, a repeated
    // dispatch after preemption) is ignored.
    if (it->second.next != static_cast<std::uint8_t>(b))
        return nullptr;
    it->second.t[it->second.next++] = now;
    return &it->second;
}

void
RequestTracer::issue(int client, std::uint32_t seq, Cycle now)
{
    Inflight &f = live_[key(client, seq)];
    f = Inflight{};
    f.t[0] = now;
    f.next = 1;
    ++stats_.tracked;
    if (timeline_) {
        timeline_->requestInstant("issue", client, now,
                                  reqArgs(client, seq));
        timeline_->requestFlow('s', key(client, seq), pidRequests,
                               client, now);
    }
}

void
RequestTracer::retransmit(int client, std::uint32_t seq, Cycle now)
{
    ++stats_.retransmitAnnotations;
    auto it = live_.find(key(client, seq));
    if (it != live_.end())
        it->second.retried = true;
    if (timeline_)
        timeline_->requestInstant("retransmit", client, now,
                                  reqArgs(client, seq));
}

void
RequestTracer::abortReq(int client, std::uint32_t seq, Cycle now)
{
    ++stats_.aborted;
    auto it = live_.find(key(client, seq));
    if (it != live_.end()) {
        Span s;
        s.client = client;
        s.seq = seq;
        for (int i = 0; i < numReqBoundaries; ++i)
            s.t[i] = it->second.t[i];
        s.retried = it->second.retried;
        emitSpanLine(s, /*aborted=*/true);
        live_.erase(it);
    }
    if (timeline_)
        timeline_->requestInstant("abort", client, now,
                                  reqArgs(client, seq));
}

void
RequestTracer::driverRx(int client, std::uint32_t seq, Cycle now)
{
    if (advance(client, seq, ReqBoundary::DriverRx, now) &&
        timeline_) {
        timeline_->requestInstant("driver-rx", client, now);
        timeline_->requestFlow('t', key(client, seq), pidRequests,
                               client, now);
    }
}

void
RequestTracer::accepted(int client, std::uint32_t seq, Cycle now)
{
    if (advance(client, seq, ReqBoundary::Accepted, now) && timeline_)
        timeline_->requestInstant("accepted", client, now);
}

void
RequestTracer::claimed(int client, std::uint32_t seq, int pid,
                       Cycle now)
{
    if (advance(client, seq, ReqBoundary::Claimed, now) && timeline_)
        timeline_->requestInstant("claimed", client, now,
                                  "{\"pid\":" + std::to_string(pid) +
                                      "}");
}

void
RequestTracer::dispatched(int client, std::uint32_t seq, int ctx,
                          int pid, Cycle now)
{
    (void)pid;
    if (advance(client, seq, ReqBoundary::Dispatched, now) &&
        timeline_) {
        // Step on the scheduler track so the arrow chain passes
        // through the span of the serving context.
        timeline_->requestFlow('t', key(client, seq), pidScheduler,
                               ctx, now);
        timeline_->requestInstant("dispatched", client, now);
    }
}

void
RequestTracer::txDone(int client, std::uint32_t seq, int pid,
                      Cycle now)
{
    if (advance(client, seq, ReqBoundary::TxDone, now) && timeline_) {
        // Step on the serving thread's syscall track.
        timeline_->requestFlow('t', key(client, seq), pidSyscalls,
                               pid, now);
        timeline_->requestInstant("tx-done", client, now);
    }
}

void
RequestTracer::complete(int client, std::uint32_t seq, bool retried,
                        Cycle now)
{
    auto it = live_.find(key(client, seq));
    if (it == live_.end()) {
        // Completion for a request issued before the tracer attached.
        ++stats_.completedIrregular;
        return;
    }
    Inflight &f = it->second;
    Span s;
    s.client = client;
    s.seq = seq;
    for (int i = 0; i < numReqBoundaries; ++i)
        s.t[i] = f.t[i];
    s.t[numReqBoundaries - 1] = now;
    s.retried = retried || f.retried;
    s.clean = !s.retried &&
              f.next == static_cast<std::uint8_t>(numReqBoundaries - 1);
    if (s.clean) {
        ++stats_.completedClean;
        for (int i = 0; i < numReqStages; ++i) {
            const std::uint64_t d = s.t[i + 1] - s.t[i];
            stage_[i].sample(static_cast<std::int64_t>(d));
            stats_.stageCycles[i] += d;
            if (reqStageIsQueueing(i))
                stats_.queueingCycles += d;
            else
                stats_.serviceCycles += d;
        }
        e2e_.sample(static_cast<std::int64_t>(s.t[numReqBoundaries - 1] -
                                              s.t[0]));
    } else if (s.retried) {
        ++stats_.completedRetried;
    } else {
        ++stats_.completedIrregular;
    }
    completed_.push_back(s);
    emitSpanLine(s, /*aborted=*/false);
    if (timeline_) {
        timeline_->requestFlow('f', key(client, seq), pidRequests,
                               client, now);
        timeline_->requestInstant("complete", client, now,
                                  reqArgs(client, seq));
    }
    live_.erase(it);
}

void
RequestTracer::drop(const char *kind, int client, std::uint32_t seq,
                    Cycle now)
{
    ++stats_.dropAnnotations;
    if (timeline_)
        timeline_->requestInstant(kind, client, now,
                                  reqArgs(client, seq));
}

void
RequestTracer::emitSpanLine(const Span &s, bool aborted)
{
    if (!spans_)
        return;
    std::ostream &os = *spans_;
    os << "{";
    if (aborted)
        os << "\"aborted\":true,";
    os << "\"clean\":" << (s.clean ? "true" : "false")
       << ",\"client\":" << s.client
       << ",\"retried\":" << (s.retried ? "true" : "false")
       << ",\"seq\":" << s.seq;
    if (s.clean) {
        os << ",\"e2e\":" << (s.t[numReqBoundaries - 1] - s.t[0])
           << ",\"stages\":{";
        for (int i = 0; i < numReqStages; ++i) {
            if (i > 0)
                os << ",";
            os << "\"" << reqStageName(i)
               << "\":" << (s.t[i + 1] - s.t[i]);
        }
        os << "}";
    }
    os << ",\"t\":[";
    for (int i = 0; i < numReqBoundaries; ++i) {
        if (i > 0)
            os << ",";
        os << s.t[i];
    }
    os << "]}\n";
}

void
RequestTracer::save(Snapshotter &sp) const
{
    sp.u32(snapVersion);
    sp.u64(stats_.tracked);
    sp.u64(stats_.completedClean);
    sp.u64(stats_.completedRetried);
    sp.u64(stats_.completedIrregular);
    sp.u64(stats_.aborted);
    sp.u64(stats_.retransmitAnnotations);
    sp.u64(stats_.dropAnnotations);
    for (int i = 0; i < numReqStages; ++i)
        sp.u64(stats_.stageCycles[i]);
    sp.u64(stats_.queueingCycles);
    sp.u64(stats_.serviceCycles);
    for (int i = 0; i < numReqStages; ++i)
        stage_[i].save(sp);
    e2e_.save(sp);
    sp.u64(live_.size());
    for (const auto &kv : live_) {
        sp.u64(kv.first);
        for (int i = 0; i < numReqBoundaries; ++i)
            sp.u64(kv.second.t[i]);
        sp.u8(kv.second.next);
        sp.b(kv.second.retried);
    }
}

void
RequestTracer::load(Restorer &rs)
{
    const std::uint32_t v = rs.u32();
    smtos_assert(v == snapVersion);
    stats_.tracked = rs.u64();
    stats_.completedClean = rs.u64();
    stats_.completedRetried = rs.u64();
    stats_.completedIrregular = rs.u64();
    stats_.aborted = rs.u64();
    stats_.retransmitAnnotations = rs.u64();
    stats_.dropAnnotations = rs.u64();
    for (int i = 0; i < numReqStages; ++i)
        stats_.stageCycles[i] = rs.u64();
    stats_.queueingCycles = rs.u64();
    stats_.serviceCycles = rs.u64();
    for (int i = 0; i < numReqStages; ++i)
        stage_[i].load(rs);
    e2e_.load(rs);
    live_.clear();
    const std::uint64_t n = rs.u64();
    for (std::uint64_t i = 0; i < n; ++i) {
        const std::uint64_t k = rs.u64();
        Inflight f;
        for (int j = 0; j < numReqBoundaries; ++j)
            f.t[j] = rs.u64();
        f.next = rs.u8();
        f.retried = rs.b();
        live_.emplace(k, f);
    }
}

} // namespace smtos
