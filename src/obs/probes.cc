#include "obs/probes.h"

#include "obs/profiler.h"
#include "obs/reqtrace.h"
#include "obs/timeline.h"

namespace smtos {

const char *
slotCauseName(SlotCause c)
{
    switch (c) {
      case SlotCause::IcacheMiss: return "icache-miss";
      case SlotCause::TlbRefill: return "tlb-refill";
      case SlotCause::IntrDrain: return "intr-drain";
      case SlotCause::SquashRecovery: return "squash-recovery";
      case SlotCause::Serialize: return "serialize";
      case SlotCause::BranchHold: return "branch-hold";
      case SlotCause::IqFull: return "iq-full";
      case SlotCause::RenameFull: return "rename-full";
      case SlotCause::DcacheStall: return "dcache-stall";
      case SlotCause::WindowFull: return "window-full";
      case SlotCause::FetchPortLimit: return "fetch-port-limit";
      case SlotCause::Fragmentation: return "fragmentation";
      case SlotCause::KernelSync: return "kernel-sync";
      case SlotCause::Idle: return "idle";
      case SlotCause::NoThread: return "no-thread";
    }
    return "?";
}

const char *
issueLossName(IssueLoss c)
{
    switch (c) {
      case IssueLoss::FuBusy: return "fu-busy";
      case IssueLoss::MemStall: return "mem-stall";
      case IssueLoss::DepWait: return "dep-wait";
      case IssueLoss::FrontEnd: return "front-end";
    }
    return "?";
}

void
Probes::begin(int num_contexts)
{
    lastMode_.assign(static_cast<size_t>(num_contexts), -1);
    lastThread_.assign(static_cast<size_t>(num_contexts),
                       invalidThread);
    if (timeline_)
        timeline_->begin(num_contexts);
}

void
Probes::onCycle(Cycle now)
{
    now_ = now;
    if (profiler_)
        profiler_->tick();
}

void
Probes::onFunctionalCycle(Cycle now)
{
    now_ = now;
}

void
Probes::onIdleCycles(Cycle now, Cycle k)
{
    now_ = now;
    if (profiler_)
        profiler_->tickN(k);
}

void
Probes::retire(CtxId ctx, ThreadId thread, Mode mode)
{
    const size_t i = static_cast<size_t>(ctx);
    if (lastMode_[i] == static_cast<int>(mode) &&
        lastThread_[i] == thread)
        return;
    lastMode_[i] = static_cast<int>(mode);
    lastThread_[i] = thread;
    if (timeline_)
        timeline_->modeSpan(ctx, thread, mode, now_);
    if (profiler_)
        profiler_->modeChange(thread, mode, now_);
}

void
Probes::squash(CtxId ctx, ThreadId thread, Addr pc, const char *why)
{
    if (timeline_)
        timeline_->squash(ctx, thread, pc, why, now_);
}

void
Probes::syscallEnter(CtxId ctx, ThreadId thread, const char *name)
{
    if (timeline_)
        timeline_->syscallBegin(ctx, thread, name, now_);
    if (profiler_)
        profiler_->syscallEnter(thread, now_);
}

void
Probes::threadSwitch(CtxId ctx, ThreadId thread, bool idle,
                     const std::string &label)
{
    if (timeline_)
        timeline_->schedSpan(ctx, thread, idle, label, now_);
}

void
Probes::tlbMiss(const char *tlb, ThreadId thread, Addr vaddr)
{
    if (timeline_ && timeline_->detail())
        timeline_->memInstant(tlb, thread, vaddr, now_);
}

void
Probes::cacheMiss(const char *cache, ThreadId thread, Addr paddr)
{
    if (timeline_ && timeline_->detail())
        timeline_->memInstant(cache, thread, paddr, now_);
}

void
Probes::dramAccess(ThreadId thread, Addr paddr, int channel, int bank,
                   int kind, int queueOcc)
{
    if (timeline_ && timeline_->detail())
        timeline_->dramEvent(thread, paddr, channel, bank, kind,
                             queueOcc, now_);
}

void
Probes::faultEvent(const char *kind, Cycle now, std::uint64_t a,
                   std::uint64_t b)
{
    if (timeline_)
        timeline_->faultInstant(kind, now, a, b);
}

void
Probes::lockEvent(const char *name, Cycle spin, Cycle hold, Cycle now)
{
    LockTally *t = nullptr;
    for (LockTally &cand : locks_)
        if (cand.name == name) {
            t = &cand;
            break;
        }
    if (!t) {
        locks_.push_back(LockTally{});
        t = &locks_.back();
        t->name = name;
    }
    ++t->acquisitions;
    if (spin > 0) {
        ++t->contended;
        t->spinCycles += spin;
    }
    t->holdCycles += hold;
    if (timeline_ && timeline_->detail() && spin > 0)
        timeline_->memInstant(name, invalidThread, spin, now);
}

void
Probes::reqIssue(int client, std::uint32_t seq, Cycle now)
{
    if (reqtrace_)
        reqtrace_->issue(client, seq, now);
}

void
Probes::reqRetransmit(int client, std::uint32_t seq, Cycle now)
{
    if (reqtrace_)
        reqtrace_->retransmit(client, seq, now);
}

void
Probes::reqAbort(int client, std::uint32_t seq, Cycle now)
{
    if (reqtrace_)
        reqtrace_->abortReq(client, seq, now);
}

void
Probes::reqDriverRx(int client, std::uint32_t seq, Cycle now)
{
    if (reqtrace_)
        reqtrace_->driverRx(client, seq, now);
}

void
Probes::reqAccepted(int client, std::uint32_t seq, Cycle now)
{
    if (reqtrace_)
        reqtrace_->accepted(client, seq, now);
}

void
Probes::reqClaimed(int client, std::uint32_t seq, int pid, Cycle now)
{
    if (reqtrace_)
        reqtrace_->claimed(client, seq, pid, now);
}

void
Probes::reqDispatched(int client, std::uint32_t seq, int ctx, int pid,
                      Cycle now)
{
    if (reqtrace_)
        reqtrace_->dispatched(client, seq, ctx, pid, now);
}

void
Probes::reqTxDone(int client, std::uint32_t seq, int pid, Cycle now)
{
    if (reqtrace_)
        reqtrace_->txDone(client, seq, pid, now);
}

void
Probes::reqComplete(int client, std::uint32_t seq, bool retried,
                    Cycle now)
{
    if (reqtrace_)
        reqtrace_->complete(client, seq, retried, now);
}

void
Probes::reqDrop(const char *kind, int client, std::uint32_t seq,
                Cycle now)
{
    if (reqtrace_)
        reqtrace_->drop(kind, client, seq, now);
}

void
Probes::queueDepth(int queue, std::size_t depth, Cycle now)
{
    if (reqtrace_ && timeline_)
        timeline_->queueCounter(queue, depth, now);
}

void
Probes::finish()
{
    if (timeline_)
        timeline_->finish(now_);
}

} // namespace smtos
