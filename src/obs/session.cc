#include "obs/session.h"

#include <iostream>

#include "common/logging.h"
#include "obs/profiler.h"
#include "obs/reqtrace.h"
#include "obs/timeline.h"
#include "sim/export.h"
#include "sim/system.h"

namespace smtos {

ObsSession::ObsSession(const ObsConfig &cfg) : cfg_(cfg)
{
    if (cfg_.profile)
        profiler_ = std::make_unique<CycleProfiler>();
    if (!cfg_.timelinePath.empty()) {
        std::ostream *os = openSink(cfg_.timelinePath, timelineFile_);
        timeline_ = std::make_unique<TimelineExporter>(
            *os, cfg_.timelineDetail);
    }
    if (cfg_.intervalCycles > 0) {
        if (!cfg_.intervalJsonlPath.empty())
            jsonlOs_ = openSink(cfg_.intervalJsonlPath, jsonlFile_);
        if (!cfg_.intervalCsvPath.empty())
            csvOs_ = openSink(cfg_.intervalCsvPath, csvFile_);
        if (!jsonlOs_ && !csvOs_)
            jsonlOs_ = &std::cout;
    }
    if (cfg_.reqtrace || !cfg_.reqtraceFilePath.empty()) {
        cfg_.reqtrace = true;
        reqtrace_ = std::make_unique<RequestTracer>();
        reqtrace_->bindTimeline(timeline_.get());
        if (!cfg_.reqtraceFilePath.empty()) {
            spanOs_ = openSink(cfg_.reqtraceFilePath, spanFile_);
            reqtrace_->setSpanSink(spanOs_);
        }
    }
    probes_.bind(profiler_.get(), timeline_.get(), reqtrace_.get());
}

ObsSession::~ObsSession()
{
    finish();
}

std::ostream *
ObsSession::openSink(const std::string &path, std::ofstream &file)
{
    if (path == "-")
        return &std::cout;
    file.open(path);
    if (!file)
        smtos_panic("obs: cannot open output file '%s'", path.c_str());
    return &file;
}

bool
ObsSession::wantsIntervals() const
{
    return cfg_.intervalCycles > 0 && (jsonlOs_ || csvOs_);
}

void
ObsSession::attach(System &sys)
{
    smtos_assert(!attached_);
    attached_ = true;
    const CoreParams &p = sys.config().core;
    // Per-context sink state is indexed by global context id, so a
    // CMP sizes it chip-wide (cores = 1 keeps today's extent).
    const int nctx = p.numContexts * sys.config().cores;
    if (profiler_)
        profiler_->configure(p.fetchWidth, p.intUnits + p.fpUnits,
                             nctx);
    probes_.begin(nctx);
    sys.attachProbes(&probes_);
}

void
ObsSession::interval(int index, Cycle c0, Cycle c1,
                     const MetricsSnapshot &delta)
{
    if (jsonlOs_) {
        *jsonlOs_ << "{\"interval\":" << index
                  << ",\"cycle_start\":" << c0
                  << ",\"cycle_end\":" << c1 << ",";
        writeJsonFields(*jsonlOs_, delta);
        *jsonlOs_ << "}\n";
    }
    if (csvOs_)
        writeCsvRow(*csvOs_, std::to_string(index), delta,
                    index == 0);
}

void
ObsSession::finish()
{
    if (finished_)
        return;
    finished_ = true;
    probes_.finish();
    if (jsonlOs_)
        jsonlOs_->flush();
    if (csvOs_)
        csvOs_->flush();
    if (spanOs_)
        spanOs_->flush();
    if (profiler_) {
        if (cfg_.reportPath.empty()) {
            profiler_->writeReport(std::cerr);
        } else if (cfg_.reportPath == "-") {
            profiler_->writeReport(std::cout);
        } else {
            std::ofstream rf(cfg_.reportPath);
            if (!rf)
                smtos_panic("obs: cannot open report file '%s'",
                            cfg_.reportPath.c_str());
            profiler_->writeReport(rf);
        }
    }
}

} // namespace smtos
