/**
 * @file
 * Cycle-attribution profiler: the top-down "where did the cycles go"
 * report that generalizes the paper's Tables 4 and 6.
 *
 * Every cycle the pipeline owns `fetchWidth` fetch slots and
 * `intUnits + fpUnits` issue slots. The pipeline reports, per cycle,
 * how many of each were used and charges every unused slot to exactly
 * one taxonomy cause (see SlotCause/IssueLoss in probes.h), so
 *
 *     slots used + sum over causes of slots lost == cycles x width
 *
 * holds exactly — the report's percentages are a partition, not an
 * estimate. Fetch losses carry two secondary dimensions: the hardware
 * context charged, and the kernel service tag the charged context was
 * executing (user code charges tag -1), which ties front-end losses
 * back to the OS services of Figures 2/6.
 */

#ifndef SMTOS_OBS_PROFILER_H
#define SMTOS_OBS_PROFILER_H

#include <array>
#include <cstdint>
#include <iosfwd>
#include <unordered_map>
#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "kernel/tags.h"
#include "obs/probes.h"

namespace smtos {

class CycleProfiler
{
  public:
    CycleProfiler();

    /** Geometry, captured at attach time. */
    void configure(int fetch_width, int issue_width, int num_contexts);

    /** One simulated cycle elapsed. */
    void tick() { ++cycles_; }
    /** @p k quiesced cycles elapsed at once (fast-forward). */
    void tickN(Cycle k) { cycles_ += k; }

    // --- fetch-slot attribution (pipeline fetch stage) ---
    void fetchUsed(int n) { fetchUsed_ += static_cast<unsigned>(n); }
    /** Wide count: fast-forward charges whole windows in one call. */
    void fetchLost(SlotCause cause, std::uint64_t n, CtxId ctx,
                   int tag);

    // --- issue-slot attribution (pipeline issue stage) ---
    void issueUsed(int n) { issueUsed_ += static_cast<unsigned>(n); }
    void issueLost(IssueLoss cause, std::uint64_t n);

    // --- latency distributions ---
    void loadLatency(Cycle lat)
    {
        loadToUse_.sample(static_cast<std::int64_t>(lat));
    }
    void syscallEnter(ThreadId t, Cycle now);
    /** Mode-change notification; closes a pending syscall on return
     *  to user mode and samples its latency. */
    void modeChange(ThreadId t, Mode to, Cycle now);

    // --- accessors (tests, report) ---
    Cycle cycles() const { return cycles_; }
    std::uint64_t fetchSlotsTotal() const
    {
        return cycles_ * static_cast<std::uint64_t>(fetchWidth_);
    }
    std::uint64_t fetchSlotsUsed() const { return fetchUsed_; }
    std::uint64_t fetchSlotsLost() const { return fetchLostTotal_; }
    std::uint64_t fetchSlotsLost(SlotCause c) const
    {
        return lost_[static_cast<size_t>(c)];
    }
    std::uint64_t fetchSlotsLostByCtx(CtxId ctx) const;
    std::uint64_t fetchSlotsLostByTag(int tag) const;
    std::uint64_t issueSlotsTotal() const
    {
        return cycles_ * static_cast<std::uint64_t>(issueWidth_);
    }
    std::uint64_t issueSlotsUsed() const { return issueUsed_; }
    std::uint64_t issueSlotsLost() const { return issueLostTotal_; }
    std::uint64_t issueSlotsLost(IssueLoss c) const
    {
        return issueLost_[static_cast<size_t>(c)];
    }
    const Histogram &syscallLatency() const { return syscallLatency_; }
    const Histogram &loadToUse() const { return loadToUse_; }

    /** The top-down report (deterministic, plain text). */
    void writeReport(std::ostream &os) const;

  private:
    int fetchWidth_ = 0;
    int issueWidth_ = 0;
    Cycle cycles_ = 0;

    std::uint64_t fetchUsed_ = 0;
    std::uint64_t fetchLostTotal_ = 0;
    std::array<std::uint64_t, numSlotCauses> lost_{};
    /** [ctx][cause] */
    std::vector<std::array<std::uint64_t, numSlotCauses>> lostByCtx_;
    /** [tag + 1][cause]; index 0 is user/none. */
    std::array<std::array<std::uint64_t, numSlotCauses>,
               NumServiceTags + 1>
        lostByTag_{};

    std::uint64_t issueUsed_ = 0;
    std::uint64_t issueLostTotal_ = 0;
    std::array<std::uint64_t, numIssueLosses> issueLost_{};

    Histogram syscallLatency_;
    Histogram loadToUse_;
    std::unordered_map<ThreadId, Cycle> syscallStart_;
};

} // namespace smtos

#endif // SMTOS_OBS_PROFILER_H
