/**
 * @file
 * Probe hub: the single indirection point between the simulated
 * machine and the observability sinks (cycle-attribution profiler,
 * Perfetto timeline exporter).
 *
 * Producers (pipeline, kernel, TLBs, caches) hold one `Probes *`
 * which is null in normal runs, so every probe site costs exactly one
 * predictable branch when observability is off — the same discipline
 * as `smtos_trace`. When attached, the hub timestamps events with the
 * current simulated cycle and fans them out to whichever sinks are
 * bound. Probes never mutate simulation state: metrics with probes on
 * are bit-identical to metrics with probes off.
 */

#ifndef SMTOS_OBS_PROBES_H
#define SMTOS_OBS_PROBES_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace smtos {

class CycleProfiler;
class RequestTracer;
class TimelineExporter;

/**
 * Where a lost fetch slot went: the top-down taxonomy of the
 * cycle-attribution profiler. Every fetch slot of every cycle is
 * either used or charged to exactly one of these causes, so the
 * per-category totals sum to cycles x fetch width by construction.
 */
enum class SlotCause : std::uint8_t
{
    IcacheMiss = 0, ///< fetch blocked on an L1I fill
    TlbRefill,      ///< fetch stalled while a TLB trap vectors/refills
    IntrDrain,      ///< draining in-flight work for interrupt delivery
    SquashRecovery, ///< front-end refill after squash / wrong-path stall
    Serialize,      ///< serializing instruction waiting to commit
    BranchHold,     ///< fetch held for indirect/return target resolve
    IqFull,         ///< shared issue queues full
    RenameFull,     ///< shared rename registers exhausted
    DcacheStall,    ///< per-context window full behind an in-flight load
    WindowFull,     ///< per-context window full, non-load head
    FetchPortLimit, ///< more fetchable contexts than fetch ports
    Fragmentation,  ///< taken-branch fetch-run break left slots unused
    KernelSync,     ///< context spinning in kernel lock code (TagSpin)
    Idle,           ///< context running the idle loop
    NoThread,       ///< no software thread bound
};

constexpr int numSlotCauses = static_cast<int>(SlotCause::NoThread) + 1;

/** Human-readable slot-cause name. */
const char *slotCauseName(SlotCause c);

/** Why an issue slot went unused this cycle (coarser taxonomy). */
enum class IssueLoss : std::uint8_t
{
    FuBusy = 0, ///< ready instructions blocked on FU/port limits
    MemStall,   ///< operands waiting on a long-latency (memory) producer
    DepWait,    ///< operands waiting on a short-latency producer
    FrontEnd,   ///< nothing issueable in any queue
};

constexpr int numIssueLosses = static_cast<int>(IssueLoss::FrontEnd) + 1;

/** Human-readable issue-loss name. */
const char *issueLossName(IssueLoss c);

/**
 * The hub. Owns no sinks; the ObsSession binds them and wires this
 * object into the machine via System::attachProbes().
 */
class Probes
{
  public:
    /** Bind sinks (any may be null). */
    void
    bind(CycleProfiler *profiler, TimelineExporter *timeline,
         RequestTracer *reqtrace = nullptr)
    {
        profiler_ = profiler;
        timeline_ = timeline;
        reqtrace_ = reqtrace;
    }

    /** Size per-context state; forwards track metadata to the sinks. */
    void begin(int num_contexts);

    CycleProfiler *profiler() const { return profiler_; }
    TimelineExporter *timeline() const { return timeline_; }
    RequestTracer *reqtrace() const { return reqtrace_; }

    /** Current simulated cycle (updated by the pipeline each tick). */
    Cycle now() const { return now_; }

    // --- pipeline-side hooks ---
    void onCycle(Cycle now);
    /** Functional-fidelity cycle: advances the timestamp only. The
     *  profiler does not tick — its used+lost == cycles x width
     *  invariant holds over detailed cycles, and functional cycles
     *  carry no slot accounting to attribute. */
    void onFunctionalCycle(Cycle now);
    /** @p k quiesced cycles elapsed at once (fast-forward), ending at
     *  @p now. Equivalent to k onCycle calls on an idle machine. */
    void onIdleCycles(Cycle now, Cycle k);
    /** Per retired instruction; detects mode/thread span changes. */
    void retire(CtxId ctx, ThreadId thread, Mode mode);
    void squash(CtxId ctx, ThreadId thread, Addr pc, const char *why);

    // --- kernel-side hooks ---
    void syscallEnter(CtxId ctx, ThreadId thread, const char *name);
    /** @p label names the incoming thread ("pid3", "netisr0", "idle"). */
    void threadSwitch(CtxId ctx, ThreadId thread, bool idle,
                      const std::string &label);

    // --- memory-system hooks (timeline detail events) ---
    void tlbMiss(const char *tlb, ThreadId thread, Addr vaddr);
    void cacheMiss(const char *cache, ThreadId thread, Addr paddr);
    /** Banked-DRAM access: @p kind is a DramRowOutcome value. */
    void dramAccess(ThreadId thread, Addr paddr, int channel, int bank,
                    int kind, int queueOcc);

    // --- fault-injection hook (kernel drains the fault log) ---
    void faultEvent(const char *kind, Cycle now, std::uint64_t a,
                    std::uint64_t b);

    // --- kernel lock hook (SMP contention accounting) ---
    /** Per-named-lock acquisition tally, accumulated in the hub so
     *  sinks stay optional. @p spin is 0 on an uncontended acquire. */
    struct LockTally
    {
        std::string name;
        std::uint64_t acquisitions = 0;
        std::uint64_t contended = 0;
        Cycle spinCycles = 0;
        Cycle holdCycles = 0;
    };
    void lockEvent(const char *name, Cycle spin, Cycle hold, Cycle now);
    const std::vector<LockTally> &lockTallies() const { return locks_; }

    // --- request-tracing hooks (see obs/reqtrace.h). Producers pass
    // --- their own cycle clock so span stamps match the simulation's
    // --- latency arithmetic bit for bit ---
    void reqIssue(int client, std::uint32_t seq, Cycle now);
    void reqRetransmit(int client, std::uint32_t seq, Cycle now);
    void reqAbort(int client, std::uint32_t seq, Cycle now);
    void reqDriverRx(int client, std::uint32_t seq, Cycle now);
    void reqAccepted(int client, std::uint32_t seq, Cycle now);
    void reqClaimed(int client, std::uint32_t seq, int pid, Cycle now);
    void reqDispatched(int client, std::uint32_t seq, int ctx, int pid,
                       Cycle now);
    void reqTxDone(int client, std::uint32_t seq, int pid, Cycle now);
    void reqComplete(int client, std::uint32_t seq, bool retried,
                     Cycle now);
    /** Fault annotation on a request ("syn-drop", "backlog-drop",
     *  "mce-kill"). */
    void reqDrop(const char *kind, int client, std::uint32_t seq,
                 Cycle now);
    /** Queue-depth counter sample (@p queue: 0 run queue, 1 accept
     *  queue); emitted only while a tracer and a timeline are bound
     *  so untraced timelines stay byte-identical. */
    void queueDepth(int queue, std::size_t depth, Cycle now);

    /** Flush the sinks (close open spans at the final cycle). */
    void finish();

  private:
    CycleProfiler *profiler_ = nullptr;
    TimelineExporter *timeline_ = nullptr;
    RequestTracer *reqtrace_ = nullptr;
    Cycle now_ = 0;
    std::vector<LockTally> locks_;
    /** Last retired mode/thread per context (-1: none yet). */
    std::vector<int> lastMode_;
    std::vector<ThreadId> lastThread_;
};

} // namespace smtos

#endif // SMTOS_OBS_PROBES_H
