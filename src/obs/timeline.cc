#include "obs/timeline.h"

#include <cstdio>
#include <ostream>

#include "common/logging.h"

namespace smtos {

namespace {

const char *
modeSpanName(Mode m)
{
    switch (m) {
      case Mode::User: return "user";
      case Mode::Kernel: return "kernel";
      case Mode::Pal: return "pal";
      case Mode::Idle: return "idle";
    }
    return "?";
}

std::string
hexArg(const char *key, Addr a)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "{\"%s\":\"0x%llx\"}", key,
                  static_cast<unsigned long long>(a));
    return buf;
}

} // namespace

TimelineExporter::TimelineExporter(std::ostream &os, bool detail)
    : os_(os), detail_(detail)
{
}

void
TimelineExporter::event(const char *cat, const std::string &name,
                        char ph, int pid, int tid, Cycle ts,
                        const std::string &args, bool thread_scope)
{
    smtos_assert(open_);
    if (events_ > 0)
        os_ << ",\n";
    ++events_;
    // Keys in strict alphabetical order so the output is schema-stable:
    // args, cat, name, ph, pid, s, tid, ts.
    os_ << "{";
    if (!args.empty())
        os_ << "\"args\":" << args << ",";
    os_ << "\"cat\":\"" << cat << "\",\"name\":\"" << name
        << "\",\"ph\":\"" << ph << "\",\"pid\":" << pid;
    if (thread_scope)
        os_ << ",\"s\":\"t\"";
    os_ << ",\"tid\":" << tid << ",\"ts\":" << ts << "}";
}

void
TimelineExporter::threadName(int pid, int tid, const std::string &name,
                             Cycle ts)
{
    event("__metadata", "thread_name", 'M', pid, tid, ts,
          "{\"name\":\"" + name + "\"}");
}

void
TimelineExporter::begin(int num_contexts)
{
    smtos_assert(!open_);
    open_ = true;
    openMode_.assign(static_cast<size_t>(num_contexts), -1);
    openModeThread_.assign(static_cast<size_t>(num_contexts),
                           invalidThread);
    openSched_.assign(static_cast<size_t>(num_contexts),
                      invalidThread);
    os_ << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n";
    event("__metadata", "process_name", 'M', 0, 0, 0,
          "{\"name\":\"core modes\"}");
    event("__metadata", "process_name", 'M', 1, 0, 0,
          "{\"name\":\"syscalls\"}");
    event("__metadata", "process_name", 'M', 2, 0, 0,
          "{\"name\":\"scheduler\"}");
    event("__metadata", "process_name", 'M', 3, 0, 0,
          "{\"name\":\"faults\"}");
    threadName(3, 0, "injected", 0);
    for (int c = 0; c < num_contexts; ++c) {
        const std::string ctx = "ctx" + std::to_string(c);
        threadName(0, c, ctx, 0);
        threadName(2, c, ctx, 0);
    }
}

void
TimelineExporter::modeSpan(CtxId ctx, ThreadId thread, Mode mode,
                           Cycle now)
{
    const size_t i = static_cast<size_t>(ctx);
    if (openMode_[i] >= 0)
        event("mode", modeSpanName(static_cast<Mode>(openMode_[i])),
              'E', 0, ctx, now);
    openMode_[i] = static_cast<int>(mode);
    openModeThread_[i] = thread;
    event("mode", modeSpanName(mode), 'B', 0, ctx, now,
          "{\"thread\":" + std::to_string(thread) + "}");
}

void
TimelineExporter::syscallBegin(CtxId ctx, ThreadId thread,
                               const char *name, Cycle now)
{
    (void)ctx;
    if (!namedThread_[thread]) {
        namedThread_[thread] = true;
        threadName(1, thread, "pid" + std::to_string(thread), now);
    }
    // A thread never nests syscalls; a still-open span means the
    // previous one never returned to user (shouldn't happen, but be
    // robust when attaching mid-run).
    if (openSyscall_[thread])
        event("syscall", "syscall", 'E', 1, thread, now);
    openSyscall_[thread] = true;
    event("syscall", name, 'B', 1, thread, now);
}

void
TimelineExporter::squash(CtxId ctx, ThreadId thread, Addr pc,
                         const char *why, Cycle now)
{
    (void)thread;
    event("squash", why, 'i', 0, ctx, now, hexArg("pc", pc), true);
}

void
TimelineExporter::schedSpan(CtxId ctx, ThreadId thread, bool idle,
                            const std::string &label, Cycle now)
{
    const size_t i = static_cast<size_t>(ctx);
    if (openSched_[i] != invalidThread)
        event("sched", "run", 'E', 2, ctx, now);
    openSched_[i] = invalidThread;
    if (idle)
        return; // idle = gap in the track
    openSched_[i] = thread;
    event("sched", label, 'B', 2, ctx, now);
}

void
TimelineExporter::memInstant(const char *structure, ThreadId thread,
                             Addr addr, Cycle now)
{
    (void)thread;
    event("mem", structure, 'i', 0, 0, now, hexArg("addr", addr),
          true);
}

void
TimelineExporter::dramEvent(ThreadId thread, Addr paddr, int channel,
                            int bank, int kind, int queueOcc,
                            Cycle now)
{
    if (!namedDram_) {
        namedDram_ = true;
        event("__metadata", "process_name", 'M', 4, 0, now,
              "{\"name\":\"dram\"}");
    }
    if (static_cast<size_t>(channel) >= namedDramCh_.size())
        namedDramCh_.resize(static_cast<size_t>(channel) + 1, false);
    if (!namedDramCh_[static_cast<size_t>(channel)]) {
        namedDramCh_[static_cast<size_t>(channel)] = true;
        threadName(4, channel, "ch" + std::to_string(channel), now);
    }
    event("dram", "queue", 'C', 4, channel, now,
          "{\"occupancy\":" + std::to_string(queueOcc) + "}");
    if (kind == 2) { // DramRowOutcome::Conflict
        char buf[96];
        std::snprintf(buf, sizeof(buf),
                      "{\"bank\":%d,\"paddr\":\"0x%llx\",\"thread\":%d}",
                      bank, static_cast<unsigned long long>(paddr),
                      static_cast<int>(thread));
        event("dram", "row-conflict", 'i', 4, channel, now, buf, true);
    }
}

void
TimelineExporter::requestInstant(const char *name, int client,
                                 Cycle now, const std::string &args)
{
    if (!namedRequests_) {
        namedRequests_ = true;
        event("__metadata", "process_name", 'M', 6, 0, now,
              "{\"name\":\"requests\"}");
    }
    if (!namedClient_[client]) {
        namedClient_[client] = true;
        threadName(6, client, "client" + std::to_string(client), now);
    }
    event("req", name, 'i', 6, client, now, args, true);
}

void
TimelineExporter::requestFlow(char ph, std::uint64_t id, int pid,
                              int tid, Cycle now)
{
    smtos_assert(open_);
    if (events_ > 0)
        os_ << ",\n";
    ++events_;
    // Keys in strict alphabetical order, like event():
    // bp, cat, id, name, ph, pid, tid, ts.
    os_ << "{";
    if (ph == 'f')
        os_ << "\"bp\":\"e\",";
    os_ << "\"cat\":\"req\",\"id\":" << id
        << ",\"name\":\"req\",\"ph\":\"" << ph << "\",\"pid\":" << pid
        << ",\"tid\":" << tid << ",\"ts\":" << now << "}";
}

void
TimelineExporter::queueCounter(int queue, std::size_t depth,
                               Cycle now)
{
    if (!namedQueues_) {
        namedQueues_ = true;
        event("__metadata", "process_name", 'M', 5, 0, now,
              "{\"name\":\"queues\"}");
        threadName(5, 0, "runq", now);
        threadName(5, 1, "acceptq", now);
    }
    event("queue", queue == 0 ? "runq" : "acceptq", 'C', 5, queue,
          now, "{\"depth\":" + std::to_string(depth) + "}");
}

void
TimelineExporter::faultInstant(const char *kind, Cycle now,
                               std::uint64_t a, std::uint64_t b)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "{\"a\":%llu,\"b\":%llu}",
                  static_cast<unsigned long long>(a),
                  static_cast<unsigned long long>(b));
    event("fault", kind, 'i', 3, 0, now, buf, true);
}

void
TimelineExporter::finish(Cycle now)
{
    if (!open_)
        return;
    for (size_t i = 0; i < openMode_.size(); ++i) {
        if (openMode_[i] >= 0)
            event("mode",
                  modeSpanName(static_cast<Mode>(openMode_[i])), 'E',
                  0, static_cast<int>(i), now);
        openMode_[i] = -1;
    }
    for (auto &kv : openSyscall_) {
        if (kv.second)
            event("syscall", "syscall", 'E', 1, kv.first, now);
        kv.second = false;
    }
    for (size_t i = 0; i < openSched_.size(); ++i) {
        if (openSched_[i] != invalidThread)
            event("sched", "run", 'E', 2, static_cast<int>(i), now);
        openSched_[i] = invalidThread;
    }
    os_ << "\n]}\n";
    open_ = false;
    os_.flush();
}

} // namespace smtos
