/**
 * @file
 * ObsSession: configuration and lifetime of one run's observability.
 *
 * The session owns the sinks (cycle-attribution profiler, timeline
 * exporter, interval time-series writers), their output files, and the
 * Probes hub that wires them into a System. The harness either
 * receives a session explicitly (Session::Config::obs) or builds one from the
 * environment:
 *
 *   SMTOS_PROFILE=1|<path>     cycle-attribution report (stderr/file)
 *   SMTOS_INTERVAL=<cycles>    sample MetricsSnapshot deltas every N
 *                              cycles during the measurement phase
 *   SMTOS_INTERVAL_JSONL=<path>  interval rows as JSON lines
 *   SMTOS_INTERVAL_CSV=<path>    interval rows as CSV
 *   SMTOS_TIMELINE=<path>      Perfetto/Chrome trace.json
 *   SMTOS_TIMELINE_DETAIL=1    also emit per-miss TLB/cache instants
 *   SMTOS_REQTRACE=1           per-request span tracing (reqtrace.h)
 *   SMTOS_REQTRACE_FILE=<path> span JSONL (implies SMTOS_REQTRACE)
 *
 * A path of "-" means stdout. A session covers exactly one run:
 * attach() once, then finish() (idempotent) closes the sinks.
 */

#ifndef SMTOS_OBS_SESSION_H
#define SMTOS_OBS_SESSION_H

#include <fstream>
#include <memory>
#include <string>

#include "common/types.h"
#include "obs/probes.h"

namespace smtos {

class CycleProfiler;
class RequestTracer;
class TimelineExporter;
class System;
struct MetricsSnapshot;

/** Which sinks to enable and where they write. */
struct ObsConfig
{
    bool profile = false;       ///< enable the cycle profiler
    std::string reportPath;     ///< profiler report ("": stderr)
    Cycle intervalCycles = 0;   ///< 0: no interval sampling
    std::string intervalJsonlPath;
    std::string intervalCsvPath;
    std::string timelinePath;   ///< "": no timeline export
    bool timelineDetail = false;
    bool reqtrace = false;      ///< enable per-request span tracing
    std::string reqtraceFilePath; ///< span JSONL (implies reqtrace)

    bool
    any() const
    {
        return profile || intervalCycles > 0 ||
               !timelinePath.empty() || reqtrace ||
               !reqtraceFilePath.empty();
    }
};

/** One run's observability sinks, wired through a Probes hub. */
class ObsSession
{
  public:
    explicit ObsSession(const ObsConfig &cfg);
    ~ObsSession();

    const ObsConfig &config() const { return cfg_; }
    Cycle intervalCycles() const { return cfg_.intervalCycles; }
    bool wantsIntervals() const;

    /** Wire the probes into @p sys. Call once, before the run. */
    void attach(System &sys);

    /** Emit one interval sample row ([c0, c1), delta of that span). */
    void interval(int index, Cycle c0, Cycle c1,
                  const MetricsSnapshot &delta);

    /** Close spans, write the report, flush files. Idempotent. */
    void finish();

    Probes &probes() { return probes_; }
    CycleProfiler *profiler() { return profiler_.get(); }
    TimelineExporter *timeline() { return timeline_.get(); }
    RequestTracer *reqtrace() { return reqtrace_.get(); }
    const RequestTracer *reqtrace() const { return reqtrace_.get(); }

  private:
    std::ostream *openSink(const std::string &path,
                           std::ofstream &file);

    ObsConfig cfg_;
    std::ofstream timelineFile_;
    std::ofstream jsonlFile_;
    std::ofstream csvFile_;
    std::ofstream spanFile_;
    std::ostream *jsonlOs_ = nullptr;
    std::ostream *csvOs_ = nullptr;
    std::ostream *spanOs_ = nullptr;
    std::unique_ptr<CycleProfiler> profiler_;
    std::unique_ptr<TimelineExporter> timeline_;
    std::unique_ptr<RequestTracer> reqtrace_;
    Probes probes_;
    bool attached_ = false;
    bool finished_ = false;
};

} // namespace smtos

#endif // SMTOS_OBS_SESSION_H
