#include "obs/profiler.h"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "common/logging.h"

namespace smtos {

CycleProfiler::CycleProfiler()
    : syscallLatency_(0, 50000, 50), loadToUse_(0, 256, 64)
{
}

void
CycleProfiler::configure(int fetch_width, int issue_width,
                         int num_contexts)
{
    fetchWidth_ = fetch_width;
    issueWidth_ = issue_width;
    lostByCtx_.assign(static_cast<size_t>(num_contexts), {});
}

void
CycleProfiler::fetchLost(SlotCause cause, std::uint64_t n, CtxId ctx,
                         int tag)
{
    const std::uint64_t u = n;
    fetchLostTotal_ += u;
    lost_[static_cast<size_t>(cause)] += u;
    if (ctx >= 0 && ctx < static_cast<int>(lostByCtx_.size()))
        lostByCtx_[static_cast<size_t>(ctx)]
                  [static_cast<size_t>(cause)] += u;
    const int ti = (tag >= 0 && tag < NumServiceTags) ? tag + 1 : 0;
    lostByTag_[static_cast<size_t>(ti)][static_cast<size_t>(cause)] +=
        u;
}

void
CycleProfiler::issueLost(IssueLoss cause, std::uint64_t n)
{
    const std::uint64_t u = n;
    issueLostTotal_ += u;
    issueLost_[static_cast<size_t>(cause)] += u;
}

void
CycleProfiler::syscallEnter(ThreadId t, Cycle now)
{
    syscallStart_[t] = now;
}

void
CycleProfiler::modeChange(ThreadId t, Mode to, Cycle now)
{
    if (to != Mode::User || syscallStart_.empty())
        return;
    auto it = syscallStart_.find(t);
    if (it == syscallStart_.end())
        return;
    syscallLatency_.sample(static_cast<std::int64_t>(now - it->second));
    syscallStart_.erase(it);
}

std::uint64_t
CycleProfiler::fetchSlotsLostByCtx(CtxId ctx) const
{
    std::uint64_t sum = 0;
    if (ctx >= 0 && ctx < static_cast<int>(lostByCtx_.size()))
        for (std::uint64_t v : lostByCtx_[static_cast<size_t>(ctx)])
            sum += v;
    return sum;
}

std::uint64_t
CycleProfiler::fetchSlotsLostByTag(int tag) const
{
    const int ti = (tag >= 0 && tag < NumServiceTags) ? tag + 1 : 0;
    std::uint64_t sum = 0;
    for (std::uint64_t v : lostByTag_[static_cast<size_t>(ti)])
        sum += v;
    return sum;
}

namespace {

double
pctOf(std::uint64_t part, std::uint64_t whole)
{
    return whole
               ? 100.0 * static_cast<double>(part) /
                     static_cast<double>(whole)
               : 0.0;
}

void
writeHistLine(std::ostream &os, const char *name, const Histogram &h)
{
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "%-16s n=%llu mean=%.1f p50=%.1f p95=%.1f p99=%.1f\n",
                  name,
                  static_cast<unsigned long long>(h.totalSamples()),
                  h.mean(), h.p50(), h.p95(), h.p99());
    os << buf;
}

} // namespace

void
CycleProfiler::writeReport(std::ostream &os) const
{
    char buf[200];
    const std::uint64_t total = fetchSlotsTotal();
    os << "== cycle attribution: fetch slots ==\n";
    std::snprintf(buf, sizeof(buf),
                  "cycles %llu, width %d, total slots %llu\n",
                  static_cast<unsigned long long>(cycles_), fetchWidth_,
                  static_cast<unsigned long long>(total));
    os << buf;
    std::snprintf(buf, sizeof(buf), "%-18s %14llu %6.2f%%\n", "used",
                  static_cast<unsigned long long>(fetchUsed_),
                  pctOf(fetchUsed_, total));
    os << buf;

    // Causes, largest first (ties broken by taxonomy order).
    std::array<int, numSlotCauses> order;
    for (int i = 0; i < numSlotCauses; ++i)
        order[static_cast<size_t>(i)] = i;
    std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
        return lost_[static_cast<size_t>(a)] >
               lost_[static_cast<size_t>(b)];
    });
    for (int i : order) {
        const std::uint64_t v = lost_[static_cast<size_t>(i)];
        if (v == 0)
            continue;
        std::snprintf(buf, sizeof(buf), "%-18s %14llu %6.2f%%\n",
                      slotCauseName(static_cast<SlotCause>(i)),
                      static_cast<unsigned long long>(v),
                      pctOf(v, total));
        os << buf;
    }
    std::snprintf(buf, sizeof(buf),
                  "sum check: used + lost = %llu (of %llu)\n",
                  static_cast<unsigned long long>(fetchUsed_ +
                                                  fetchLostTotal_),
                  static_cast<unsigned long long>(total));
    os << buf;

    os << "-- lost fetch slots by hardware context --\n";
    for (size_t c = 0; c < lostByCtx_.size(); ++c) {
        const std::uint64_t csum =
            fetchSlotsLostByCtx(static_cast<CtxId>(c));
        std::snprintf(buf, sizeof(buf), "ctx%-2zu %14llu %6.2f%%", c,
                      static_cast<unsigned long long>(csum),
                      pctOf(csum, total));
        os << buf;
        // Top contributor for the context.
        int top = 0;
        for (int i = 1; i < numSlotCauses; ++i)
            if (lostByCtx_[c][static_cast<size_t>(i)] >
                lostByCtx_[c][static_cast<size_t>(top)])
                top = i;
        if (csum) {
            std::snprintf(buf, sizeof(buf), "  (top: %s %.1f%%)",
                          slotCauseName(static_cast<SlotCause>(top)),
                          pctOf(lostByCtx_[c][static_cast<size_t>(top)],
                                csum));
            os << buf;
        }
        os << "\n";
    }

    os << "-- lost fetch slots by kernel service tag --\n";
    for (int t = -1; t < NumServiceTags; ++t) {
        const std::uint64_t tsum = fetchSlotsLostByTag(t);
        if (tsum == 0)
            continue;
        std::snprintf(buf, sizeof(buf), "%-14s %14llu %6.2f%%\n",
                      t < 0 ? "user" : serviceTagName(t),
                      static_cast<unsigned long long>(tsum),
                      pctOf(tsum, total));
        os << buf;
    }

    const std::uint64_t itotal = issueSlotsTotal();
    os << "== cycle attribution: issue slots ==\n";
    std::snprintf(buf, sizeof(buf),
                  "cycles %llu, width %d, total slots %llu\n",
                  static_cast<unsigned long long>(cycles_), issueWidth_,
                  static_cast<unsigned long long>(itotal));
    os << buf;
    std::snprintf(buf, sizeof(buf), "%-18s %14llu %6.2f%%\n", "used",
                  static_cast<unsigned long long>(issueUsed_),
                  pctOf(issueUsed_, itotal));
    os << buf;
    for (int i = 0; i < numIssueLosses; ++i) {
        const std::uint64_t v = issueLost_[static_cast<size_t>(i)];
        if (v == 0)
            continue;
        std::snprintf(buf, sizeof(buf), "%-18s %14llu %6.2f%%\n",
                      issueLossName(static_cast<IssueLoss>(i)),
                      static_cast<unsigned long long>(v),
                      pctOf(v, itotal));
        os << buf;
    }

    os << "== latency distributions (cycles) ==\n";
    writeHistLine(os, "syscall", syscallLatency_);
    writeHistLine(os, "load-to-use", loadToUse_);
}

} // namespace smtos
