/**
 * @file
 * End-to-end request tracing: per-request span pipeline with
 * queueing-vs-service latency attribution.
 *
 * Every client request already carries a stable identity — the
 * (client, reqSeq) pair threaded through Packet — from issue to the
 * final response byte. The tracer turns that identity into a span:
 * seven cycle-stamped boundaries delimiting six stages,
 *
 *   t0 Issue      client emits the request packet
 *   t1 DriverRx   driver pops the packet off the NIC ring
 *   t2 Accepted   netstack sets up the connection, accept queue push
 *   t3 Claimed    a server process claims the connection (accept)
 *   t4 Dispatched the claiming process is running on a context
 *   t5 TxDone     final (fin) response packet handed to the NIC
 *   t6 Complete   client consumes the last response byte
 *
 *   stage 0 nic_wait    t1-t0   queueing (NIC ring + interrupt wait)
 *   stage 1 netstack    t2-t1   service  (driver + protocol input)
 *   stage 2 accept_wait t3-t2   queueing (accept-queue backlog)
 *   stage 3 sched_wait  t4-t3   queueing (run-queue wait)
 *   stage 4 service     t5-t4   service  (server user/kernel work)
 *   stage 5 transmit    t6-t5   service  (response in flight)
 *
 * Boundaries telescope, so for every non-retransmitted request the
 * stage cycles sum EXACTLY to the client-observed end-to-end latency
 * (t6 - t0), the same value the client samples into its latency
 * histogram. Retransmitted requests revisit stages, so they are
 * counted and timed separately and excluded from the invariant.
 *
 * Producers reach the tracer only through the Probes hub: one
 * predictable branch per site when tracing is off, and the tracer
 * never mutates simulation state, so traced runs are bit-identical
 * to untraced ones. Tracer state round-trips through SMTOSNP1 (an
 * optional trailing RQTR section) so resumed sweeps trace cleanly
 * across the snapshot boundary.
 */

#ifndef SMTOS_OBS_REQTRACE_H
#define SMTOS_OBS_REQTRACE_H

#include <cstdint>
#include <iosfwd>
#include <map>
#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "snap/fwd.h"

namespace smtos {

class TimelineExporter;

/** Span boundaries (see file comment). */
enum class ReqBoundary : std::uint8_t
{
    Issue = 0,
    DriverRx,
    Accepted,
    Claimed,
    Dispatched,
    TxDone,
    Complete,
};

constexpr int numReqBoundaries =
    static_cast<int>(ReqBoundary::Complete) + 1;
constexpr int numReqStages = numReqBoundaries - 1;

/** Human-readable stage name ("nic_wait", ..., "transmit"). */
const char *reqStageName(int stage);

/** True for the queueing stages (nic_wait, accept_wait, sched_wait). */
bool reqStageIsQueueing(int stage);

/**
 * Aggregate tracing counters, all u64 so MetricsSnapshot::delta can
 * subtract field-wise. `enabled` marks whether a tracer was attached
 * when the snapshot was captured (kept, not subtracted, in deltas).
 */
struct ReqTraceStats
{
    std::uint64_t enabled = 0;
    std::uint64_t tracked = 0;        ///< spans opened at Issue
    std::uint64_t completedClean = 0; ///< invariant-bearing completions
    std::uint64_t completedRetried = 0;
    std::uint64_t completedIrregular = 0; ///< missing boundaries
    std::uint64_t aborted = 0;            ///< client gave up
    std::uint64_t retransmitAnnotations = 0;
    std::uint64_t dropAnnotations = 0; ///< SYN/backlog/MCE annotations
    std::uint64_t stageCycles[numReqStages] = {};
    std::uint64_t queueingCycles = 0; ///< nic+accept+sched wait
    std::uint64_t serviceCycles = 0;  ///< netstack+service+transmit

    ReqTraceStats delta(const ReqTraceStats &earlier) const;
};

/**
 * The tracer. Owned by ObsSession, reached by producers through the
 * Probes hub. Spans advance through the boundaries strictly in order;
 * an event that is not the expected next boundary is ignored, which
 * makes duplicate deliveries from retransmit races and repeated
 * dispatches after preemption harmless.
 */
class RequestTracer
{
  public:
    RequestTracer();

    /** Perfetto sink for flow/instant/counter events (may be null). */
    void bindTimeline(TimelineExporter *timeline)
    {
        timeline_ = timeline;
    }

    /** JSONL sink; one line per finished span (may be null). Lines
     *  are written only when a span finishes, never for in-flight
     *  spans, so a straight run's file equals the concatenation of a
     *  snapshotted run's file and its resumption's file. */
    void setSpanSink(std::ostream *os) { spans_ = os; }

    // --- producer hooks (via Probes); @p now is the producer's own
    // --- cycle clock so stamps match the simulation bit-for-bit ---
    void issue(int client, std::uint32_t seq, Cycle now);
    void retransmit(int client, std::uint32_t seq, Cycle now);
    void abortReq(int client, std::uint32_t seq, Cycle now);
    void driverRx(int client, std::uint32_t seq, Cycle now);
    void accepted(int client, std::uint32_t seq, Cycle now);
    void claimed(int client, std::uint32_t seq, int pid, Cycle now);
    void dispatched(int client, std::uint32_t seq, int ctx, int pid,
                    Cycle now);
    void txDone(int client, std::uint32_t seq, int pid, Cycle now);
    void complete(int client, std::uint32_t seq, bool retried,
                  Cycle now);
    /** Fault annotation (@p kind: "syn-drop", "backlog-drop",
     *  "mce-kill"); the span keeps advancing if a retransmit lands. */
    void drop(const char *kind, int client, std::uint32_t seq,
              Cycle now);

    const ReqTraceStats &stats() const { return stats_; }
    const Histogram &stageHist(int stage) const;
    const Histogram &e2e() const { return e2e_; }
    std::size_t inflight() const { return live_.size(); }

    /** One finished span (in completion order). Kept in memory for
     *  tests and benches; not serialized — a resumed tracer reports
     *  only post-resume completions here (aggregates do round-trip). */
    struct Span
    {
        int client = 0;
        std::uint32_t seq = 0;
        Cycle t[numReqBoundaries] = {};
        bool retried = false;
        bool clean = false; ///< all boundaries stamped, not retried
    };
    const std::vector<Span> &completed() const { return completed_; }

    static constexpr std::uint32_t snapVersion = 1;
    void save(Snapshotter &sp) const;
    void load(Restorer &rs);

  private:
    struct Inflight
    {
        Cycle t[numReqBoundaries] = {};
        std::uint8_t next = 0; ///< index of the next expected boundary
        bool retried = false;
    };

    static std::uint64_t key(int client, std::uint32_t seq);
    /** Stamp @p b if it is the span's next boundary; else ignore. */
    Inflight *advance(int client, std::uint32_t seq, ReqBoundary b,
                      Cycle now);
    void emitSpanLine(const Span &s, bool aborted);

    TimelineExporter *timeline_ = nullptr;
    std::ostream *spans_ = nullptr;
    /** In-flight spans, keyed (client << 32 | seq); std::map so
     *  serialization order is deterministic. */
    std::map<std::uint64_t, Inflight> live_;
    std::vector<Span> completed_;
    ReqTraceStats stats_;
    Histogram stage_[numReqStages];
    Histogram e2e_;
};

} // namespace smtos

#endif // SMTOS_OBS_REQTRACE_H
