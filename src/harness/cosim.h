/**
 * @file
 * Lockstep co-simulation of the timing pipeline against the
 * functional reference model.
 *
 * Cosim attaches to a Pipeline as its RetireObserver and replays every
 * architecturally committed instruction on a per-thread RefCore,
 * diffing (pc, instruction, mode, kernel tag, memory address, branch
 * direction, written-register value) at each retirement. The first
 * mismatch freezes a divergence report naming the context, thread,
 * cycle, and disassembled instruction, with a window of the most
 * recently retired instructions for that thread.
 *
 * OS interventions arrive as state syncs (see RetireObserver): each
 * carries the first sequence number fetched under the new state.
 * Syncs are queued per thread and applied FIFO once the retired
 * stream reaches them; a snapshot superseded before any instruction
 * retired under it is applied transiently and then replaced, which is
 * harmless because application is pure state replacement.
 */

#ifndef SMTOS_HARNESS_COSIM_H
#define SMTOS_HARNESS_COSIM_H

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "ref/refcore.h"
#include "snap/fwd.h"

namespace smtos {

/** The retired-stream vs reference-model checker. */
class Cosim : public RetireObserver
{
  public:
    /**
     * Attach to @p pipe. Attach before System::start() so the
     * observer sees the initial thread binds (and both value models
     * start from all-zero register files).
     */
    explicit Cosim(Pipeline &pipe);
    ~Cosim() override;

    /**
     * Observe an additional pipeline (CMP cores 1..N-1). The checkers
     * are per thread, and the chip-shared sequence counter keeps each
     * thread's seqs monotone across migration, so one oracle covers
     * every core's retired stream.
     */
    void observe(Pipeline &pipe);

    Cosim(const Cosim &) = delete;
    Cosim &operator=(const Cosim &) = delete;

    void onRetire(const RetireEvent &e) override;
    void onThreadStateSync(const ThreadState &t,
                           std::uint64_t firstSeq) override;

    /** True once a divergence was found; checking stops there. */
    bool diverged() const { return diverged_; }

    /** First-divergence report (empty while !diverged()). */
    const std::string &report() const { return report_; }

    /** Retired instructions verified against the reference. */
    std::uint64_t checked() const { return checked_; }

    /** State syncs received (OS interventions observed). */
    std::uint64_t syncs() const { return syncs_; }

    /**
     * Serialize the oracle: per-thread reference cores and their
     * unapplied sync queues. Asserts !diverged() — a diverged run
     * must not be snapshotted. The recent-retirement report windows
     * are not saved (cosmetic only).
     */
    void save(Snapshotter &sp, const SnapImages &images) const;

    /**
     * Mirror of save(). Discards everything observed so far (boot
     * binds, the restore-time resync) — the artifact's oracle state
     * supersedes it wholesale.
     */
    void load(Restorer &rs, const SnapImages &images);

  private:
    struct PendingSync
    {
        std::uint64_t firstSeq = 0;
        RefSyncState state;
    };

    /** Per-thread reference core plus its sync queue and history. */
    struct ThreadChecker
    {
        RefCore ref;
        std::deque<PendingSync> pending;
        std::deque<RetireEvent> recent; ///< report window
    };

    void diverge(const RetireEvent &e, const RefRetire *expect,
                 const std::string &what);

    Pipeline *pipe_;
    std::vector<Pipeline *> extraPipes_;
    const CodeImage *kernelImage_;
    std::map<ThreadId, ThreadChecker> threads_;
    bool diverged_ = false;
    std::string report_;
    std::uint64_t checked_ = 0;
    std::uint64_t syncs_ = 0;
};

} // namespace smtos

#endif // SMTOS_HARNESS_COSIM_H
