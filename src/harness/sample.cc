#include "harness/sample.h"

#include <cmath>
#include <cstdlib>
#include <sstream>

#include "common/logging.h"
#include "core/pipeline.h"
#include "sim/metrics.h"
#include "sim/system.h"

namespace smtos {

namespace {

double
parseDouble(const std::string &key, const std::string &val)
{
    char *end = nullptr;
    const double v = std::strtod(val.c_str(), &end);
    if (end == val.c_str() || *end != '\0')
        smtos_fatal("SMTOS_SAMPLE: bad number for '%s': '%s'",
                    key.c_str(), val.c_str());
    return v;
}

std::uint64_t
parseU64(const std::string &key, const std::string &val)
{
    char *end = nullptr;
    const unsigned long long v =
        std::strtoull(val.c_str(), &end, 10);
    if (end == val.c_str() || *end != '\0')
        smtos_fatal("SMTOS_SAMPLE: bad integer for '%s': '%s'",
                    key.c_str(), val.c_str());
    return static_cast<std::uint64_t>(v);
}

/** Mean ± z·s/√n over @p xs (sample std-dev; half-width 0 for n<2). */
SampleEstimate
estimate(const std::vector<double> &xs, double z)
{
    SampleEstimate e;
    const std::size_t n = xs.size();
    if (n == 0)
        return e;
    double sum = 0.0;
    for (double x : xs)
        sum += x;
    e.mean = sum / static_cast<double>(n);
    if (n < 2)
        return e;
    double ss = 0.0;
    for (double x : xs)
        ss += (x - e.mean) * (x - e.mean);
    const double var = ss / static_cast<double>(n - 1);
    e.halfWidth = z * std::sqrt(var / static_cast<double>(n));
    return e;
}

} // namespace

SampleParams
SampleParams::fromString(const std::string &spec)
{
    SampleParams p;
    std::stringstream ss(spec);
    std::string item;
    while (std::getline(ss, item, ',')) {
        if (item.empty())
            continue;
        const auto eq = item.find('=');
        if (eq == std::string::npos)
            smtos_fatal("SMTOS_SAMPLE: expected key=value, got '%s'",
                        item.c_str());
        const std::string key = item.substr(0, eq);
        const std::string val = item.substr(eq + 1);
        if (key == "period") {
            p.periodInstrs = parseU64(key, val);
        } else if (key == "warm") {
            p.warmInstrs = parseU64(key, val);
        } else if (key == "interval") {
            p.intervalInstrs = parseU64(key, val);
        } else if (key == "conf") {
            p.confidence = parseDouble(key, val);
        } else {
            smtos_fatal("SMTOS_SAMPLE: unknown key '%s'", key.c_str());
        }
    }
    if (p.intervalInstrs == 0)
        smtos_fatal("SMTOS_SAMPLE: interval must be > 0");
    if (p.periodInstrs < p.warmInstrs + p.intervalInstrs)
        smtos_fatal("SMTOS_SAMPLE: period (%llu) must cover "
                    "warm + interval (%llu)",
                    static_cast<unsigned long long>(p.periodInstrs),
                    static_cast<unsigned long long>(p.warmInstrs +
                                                    p.intervalInstrs));
    if (p.confidence < 0.5 || p.confidence >= 1.0)
        smtos_fatal("SMTOS_SAMPLE: conf must be in [0.5, 1)");
    p.enabled = true;
    return p;
}

double
confidenceZ(double confidence)
{
    if (confidence >= 0.985)
        return 2.576; // 99%
    if (confidence >= 0.925)
        return 1.96;  // 95%
    return 1.645;     // 90%
}

SampleReport
runSampledMeasurement(System &sys, const SampleParams &p,
                      std::uint64_t totalInstrs)
{
    Pipeline &pipe = sys.pipeline();
    smtos_assert(p.intervalInstrs > 0);
    smtos_assert(p.periodInstrs >= p.warmInstrs + p.intervalInstrs);
    const std::uint64_t ffInstrs =
        p.periodInstrs - p.warmInstrs - p.intervalInstrs;

    SampleReport rep;
    rep.enabled = true;
    rep.confidence = p.confidence;
    const std::uint64_t func0 = pipe.funcInstrs();
    const Cycle fcyc0 = pipe.funcCycles();
    const std::uint64_t ret0 = pipe.stats().totalRetired();
    const Cycle cyc0 = pipe.now();

    std::vector<double> cpi, ipc, user, kernel, pal, idle;
    std::uint64_t done = 0;
    while (done < totalInstrs) {
        if (ffInstrs > 0) {
            // Functional fast-forward: warming only, clock still
            // ticking (timer interrupts and scheduling continue).
            const std::uint64_t n =
                std::min(ffInstrs, totalInstrs - done);
            pipe.setFidelity(Fidelity::Functional);
            sys.run(n);
            pipe.setFidelity(Fidelity::Detailed);
            done += n;
            if (done >= totalInstrs)
                break;
        }
        if (p.warmInstrs > 0) {
            // Detailed warm-up: refills the timing structures the
            // functional engine leaves cold; metrics discarded.
            const std::uint64_t n =
                std::min(p.warmInstrs, totalInstrs - done);
            sys.run(n);
            done += n;
            if (done >= totalInstrs)
                break;
        }
        const std::uint64_t n =
            std::min(p.intervalInstrs, totalInstrs - done);
        const MetricsSnapshot before = MetricsSnapshot::capture(sys);
        sys.run(n);
        done += n;
        const MetricsSnapshot d =
            MetricsSnapshot::capture(sys).delta(before);
        const double retired =
            static_cast<double>(d.core.totalRetired());
        const double cycles = static_cast<double>(d.core.cycles);
        if (retired <= 0.0 || cycles <= 0.0)
            continue;
        const ModeShares m = modeShares(d);
        cpi.push_back(cycles / retired);
        ipc.push_back(retired / cycles);
        user.push_back(m.userPct);
        kernel.push_back(m.kernelPct);
        pal.push_back(m.palPct);
        idle.push_back(m.idlePct);
    }

    const double z = confidenceZ(p.confidence);
    rep.intervals = static_cast<int>(cpi.size());
    rep.cpi = estimate(cpi, z);
    rep.ipc = estimate(ipc, z);
    rep.userPct = estimate(user, z);
    rep.kernelPct = estimate(kernel, z);
    rep.palPct = estimate(pal, z);
    rep.idlePct = estimate(idle, z);
    rep.intervalCpi = std::move(cpi);
    rep.functionalInstrs = pipe.funcInstrs() - func0;
    rep.functionalCycles = pipe.funcCycles() - fcyc0;
    const std::uint64_t allInstrs = pipe.stats().totalRetired() - ret0;
    const Cycle allCycles = pipe.now() - cyc0;
    rep.detailedInstrs = allInstrs - rep.functionalInstrs;
    rep.detailedCycles = allCycles - rep.functionalCycles;
    return rep;
}

} // namespace smtos
