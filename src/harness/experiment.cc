#include "harness/experiment.h"

#include <algorithm>
#include <memory>

#include "common/logging.h"
#include "common/trace.h"
#include "fault/auditor.h"
#include "fault/diag.h"
#include "obs/session.h"
#include "sim/config.h"

namespace smtos {

RunResult
runExperiment(const RunSpec &spec)
{
    Trace::applyEnv();

    // Observability: an explicit session wins; otherwise honor the
    // SMTOS_* environment so any example/bench can be instrumented
    // without code changes.
    std::unique_ptr<ObsSession> envObs;
    ObsSession *obs = spec.obs;
    if (!obs) {
        ObsConfig oc = ObsSession::configFromEnv();
        if (oc.any()) {
            envObs = std::make_unique<ObsSession>(oc);
            obs = envObs.get();
        }
    }

    SystemConfig cfg =
        spec.smt ? smtConfig() : superscalarConfig();
    cfg.kernel.seed = spec.seed;
    cfg.kernel.appOnly = !spec.withOs;
    cfg.kernel.enableNetwork =
        (spec.workload == RunSpec::Workload::Apache);
    cfg.mem.filterPrivileged = spec.filterKernelRefs;
    if (spec.numContexts > 0) {
        cfg.core.numContexts = spec.numContexts;
        cfg.core.fetchContexts = std::min(2, spec.numContexts);
    }
    if (spec.fetchContexts > 0)
        cfg.core.fetchContexts = spec.fetchContexts;
    if (spec.roundRobinFetch)
        cfg.core.fetchPolicy = FetchPolicy::RoundRobin;
    cfg.kernel.sharedTlbIpr = spec.sharedTlbIpr;
    if (spec.affinitySched)
        cfg.kernel.schedPolicy =
            Kernel::SchedPolicy::Affinity;

    System sys(cfg);
    sys.pipeline().setFastForward(spec.fastForward);
    if (spec.filterKernelRefs)
        sys.pipeline().setFilterPrivilegedBranches(true);
    if (obs)
        obs->attach(sys);

    // Fault injection: an explicit plan wins, then the spec's params,
    // then the SMTOS_FAULTS environment. Attach before start() so the
    // connection-table override takes effect.
    std::unique_ptr<FaultPlan> ownedPlan;
    FaultPlan *plan = spec.faultPlan;
    if (!plan) {
        FaultParams fp = spec.faults.any() ? spec.faults
                                           : FaultParams::fromEnv();
        if (fp.any()) {
            ownedPlan = std::make_unique<FaultPlan>(fp);
            plan = ownedPlan.get();
        }
    }
    std::unique_ptr<InvariantAuditor> auditor;
    if (plan) {
        sys.attachFaults(plan);
        if (plan->params().auditEvery > 0) {
            auditor = std::make_unique<InvariantAuditor>(
                sys, plan->params().auditEvery);
            sys.kernel().setAuditor(auditor.get());
        }
    }
    diagArm(&sys, plan);

    // Workload objects must outlive the run.
    SpecIntWorkload spec_w;
    ApacheWorkload apache_w;
    if (spec.workload == RunSpec::Workload::SpecInt) {
        SpecIntParams p = spec.spec;
        p.seed ^= spec.seed;
        spec_w = buildSpecInt(p);
        installSpecInt(sys.kernel(), spec_w);
    } else {
        ApacheParams p = spec.apache;
        p.seed ^= spec.seed;
        apache_w = buildApache(p);
        installApache(sys.kernel(), apache_w);
    }
    sys.start();

    RunResult res;
    MetricsSnapshot s0 = MetricsSnapshot::capture(sys);

    // Start-up phase.
    if (spec.startupInstrs > 0) {
        sys.run(spec.startupInstrs);
    } else if (spec.workload == RunSpec::Workload::SpecInt) {
        const std::uint64_t chunk = 200'000;
        std::uint64_t guard = 0;
        while (!sys.kernel().startupComplete() && guard < 400) {
            sys.run(chunk);
            ++guard;
        }
        if (guard >= 400)
            smtos_warn("start-up did not complete within guard");
    }
    MetricsSnapshot s1 = MetricsSnapshot::capture(sys);
    res.startup = s1.delta(s0);

    // Measurement phase.
    if (obs && obs->wantsIntervals()) {
        // Cycle-driven interval sampling: advance in fixed steps and
        // emit one time-series row per step until the instruction
        // budget is retired. Deterministic for a given seed/config.
        const Cycle iv = obs->intervalCycles();
        const std::uint64_t target =
            s1.core.totalRetired() + spec.measureInstrs;
        MetricsSnapshot prev = s1;
        int idx = 0;
        int stuck = 0;
        while (prev.core.totalRetired() < target) {
            const Cycle c0 = sys.pipeline().now();
            sys.runCycles(iv);
            MetricsSnapshot cur = MetricsSnapshot::capture(sys);
            obs->interval(idx++, c0, sys.pipeline().now(),
                          cur.delta(prev));
            if (cur.core.totalRetired() == prev.core.totalRetired()) {
                if (++stuck >= 1000)
                    smtos_panic("interval sampling made no progress "
                                "for %d intervals",
                                stuck);
            } else {
                stuck = 0;
            }
            prev = cur;
        }
        res.steady = MetricsSnapshot::capture(sys).delta(s1);
    } else if (spec.windowInstrs > 0) {
        MetricsSnapshot prev = s1;
        std::uint64_t done = 0;
        while (done < spec.measureInstrs) {
            const std::uint64_t step =
                std::min(spec.windowInstrs,
                         spec.measureInstrs - done);
            sys.run(step);
            done += step;
            MetricsSnapshot cur = MetricsSnapshot::capture(sys);
            res.windows.push_back(cur.delta(prev));
            prev = cur;
        }
        res.steady = MetricsSnapshot::capture(sys).delta(s1);
    } else {
        sys.run(spec.measureInstrs);
        res.steady = MetricsSnapshot::capture(sys).delta(s1);
    }

    res.requestsServed = sys.kernel().requestsServed();
    res.cycles = sys.pipeline().now();
    if (obs)
        obs->finish();
    diagArm(nullptr, nullptr);
    return res;
}

} // namespace smtos
