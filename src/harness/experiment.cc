#include "harness/experiment.h"

#include <algorithm>

#include "common/logging.h"
#include "sim/config.h"

namespace smtos {

RunResult
runExperiment(const RunSpec &spec)
{
    SystemConfig cfg =
        spec.smt ? smtConfig() : superscalarConfig();
    cfg.kernel.seed = spec.seed;
    cfg.kernel.appOnly = !spec.withOs;
    cfg.kernel.enableNetwork =
        (spec.workload == RunSpec::Workload::Apache);
    cfg.mem.filterPrivileged = spec.filterKernelRefs;
    if (spec.numContexts > 0) {
        cfg.core.numContexts = spec.numContexts;
        cfg.core.fetchContexts = std::min(2, spec.numContexts);
    }
    if (spec.fetchContexts > 0)
        cfg.core.fetchContexts = spec.fetchContexts;
    if (spec.roundRobinFetch)
        cfg.core.fetchPolicy = FetchPolicy::RoundRobin;
    cfg.kernel.sharedTlbIpr = spec.sharedTlbIpr;
    if (spec.affinitySched)
        cfg.kernel.schedPolicy =
            Kernel::SchedPolicy::Affinity;

    System sys(cfg);
    if (spec.filterKernelRefs)
        sys.pipeline().setFilterPrivilegedBranches(true);

    // Workload objects must outlive the run.
    SpecIntWorkload spec_w;
    ApacheWorkload apache_w;
    if (spec.workload == RunSpec::Workload::SpecInt) {
        SpecIntParams p = spec.spec;
        p.seed ^= spec.seed;
        spec_w = buildSpecInt(p);
        installSpecInt(sys.kernel(), spec_w);
    } else {
        ApacheParams p = spec.apache;
        p.seed ^= spec.seed;
        apache_w = buildApache(p);
        installApache(sys.kernel(), apache_w);
    }
    sys.start();

    RunResult res;
    MetricsSnapshot s0 = MetricsSnapshot::capture(sys);

    // Start-up phase.
    if (spec.startupInstrs > 0) {
        sys.run(spec.startupInstrs);
    } else if (spec.workload == RunSpec::Workload::SpecInt) {
        const std::uint64_t chunk = 200'000;
        std::uint64_t guard = 0;
        while (!sys.kernel().startupComplete() && guard < 400) {
            sys.run(chunk);
            ++guard;
        }
        if (guard >= 400)
            smtos_warn("start-up did not complete within guard");
    }
    MetricsSnapshot s1 = MetricsSnapshot::capture(sys);
    res.startup = s1.delta(s0);

    // Measurement phase.
    if (spec.windowInstrs > 0) {
        MetricsSnapshot prev = s1;
        std::uint64_t done = 0;
        while (done < spec.measureInstrs) {
            const std::uint64_t step =
                std::min(spec.windowInstrs,
                         spec.measureInstrs - done);
            sys.run(step);
            done += step;
            MetricsSnapshot cur = MetricsSnapshot::capture(sys);
            res.windows.push_back(cur.delta(prev));
            prev = cur;
        }
        res.steady = MetricsSnapshot::capture(sys).delta(s1);
    } else {
        sys.run(spec.measureInstrs);
        res.steady = MetricsSnapshot::capture(sys).delta(s1);
    }

    res.requestsServed = sys.kernel().requestsServed();
    res.cycles = sys.pipeline().now();
    return res;
}

} // namespace smtos
