#include "harness/experiment.h"

namespace smtos {

Session::Config
RunSpec::toSessionConfig() const
{
    Session::Config cfg;
    cfg.system.smt = smt;
    cfg.system.withOs = withOs;
    cfg.system.filterKernelRefs = filterKernelRefs;
    cfg.system.numContexts = numContexts;
    cfg.system.fetchContexts = fetchContexts;
    cfg.system.roundRobinFetch = roundRobinFetch;
    cfg.system.affinitySched = affinitySched;
    cfg.system.sharedTlbIpr = sharedTlbIpr;
    cfg.system.fastForward = fastForward;
    cfg.workload.kind = workload == Workload::SpecInt
                            ? WorkloadConfig::Kind::SpecInt
                            : WorkloadConfig::Kind::Apache;
    cfg.workload.spec = spec;
    cfg.workload.apache = apache;
    cfg.workload.seed = seed;
    cfg.phases.startupInstrs = startupInstrs;
    cfg.phases.measureInstrs = measureInstrs;
    cfg.phases.windowInstrs = windowInstrs;
    cfg.faults = faults;
    cfg.faultPlan = faultPlan;
    cfg.obs = obs;
    return cfg;
}

RunResult
runExperiment(const RunSpec &spec)
{
    Session session(spec.toSessionConfig());
    return session.run();
}

} // namespace smtos
