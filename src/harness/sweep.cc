#include "harness/sweep.h"

#include "common/logging.h"
#include "harness/parallel.h"

namespace smtos {

std::vector<RunResult>
runSweep(const SweepGroup &group, unsigned jobs)
{
    std::vector<std::uint8_t> artifact;
    {
        // The base session exists only to produce the shared
        // snapshot; destroy it (and release its machine) before the
        // fan-out so the peak footprint is points, not points + 1.
        Session base(group.base);
        base.runStartup();
        artifact = base.snapshot();
    }

    std::vector<RunResult> results(group.points.size());
    parallelFor(
        group.points.size(),
        [&](std::size_t i) {
            std::string err;
            auto s =
                Session::resume(artifact, group.points[i].opts, &err);
            if (!s)
                smtos_fatal("sweep point '%s': %s",
                            group.points[i].label.c_str(),
                            err.c_str());
            results[i] = s->runMeasurement();
        },
        jobs);
    return results;
}

std::vector<std::vector<RunResult>>
runSweepGroups(const std::vector<SweepGroup> &groups, unsigned jobs)
{
    std::vector<std::vector<RunResult>> results;
    results.reserve(groups.size());
    for (const SweepGroup &g : groups)
        results.push_back(runSweep(g, jobs));
    return results;
}

} // namespace smtos
