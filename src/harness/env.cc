#include "harness/env.h"

#include <cstdlib>
#include <cstring>

#include "common/logging.h"
#include "common/trace.h"
#include "fault/diag.h"
#include "harness/parallel.h"

namespace smtos {

namespace {

EnvOverrides &
ambientSlot()
{
    static EnvOverrides ambient;
    return ambient;
}

bool
truthy(const char *v)
{
    return v && *v && std::strcmp(v, "0") != 0 &&
           std::strcmp(v, "false") != 0 && std::strcmp(v, "no") != 0;
}

} // namespace

EnvOverrides
EnvOverrides::fromLookup(const Lookup &get)
{
    EnvOverrides ov;
    if (const char *v = get("SMTOS_TRACE")) {
        ov.traceMask = Trace::parseCats(v);
        ov.hasTraceMask = true;
    }
    if (const char *v = get("SMTOS_TRACE_FILE"))
        ov.traceFile = v;
    if (const char *v = get("SMTOS_DIAG_DIR")) {
        ov.diagDir = v;
        ov.hasDiagDir = true;
    }
    if (const char *v = get("SMTOS_JOBS")) {
        const long n = std::strtol(v, nullptr, 10);
        ov.jobs = n >= 1 ? static_cast<unsigned>(n) : 1;
    }
    if (const char *v = get("SMTOS_FAULTS")) {
        ov.faults = FaultParams::fromString(v);
        ov.hasFaults = true;
    }
    if (const char *v = get("SMTOS_OPENLOOP")) {
        ov.openLoop = OpenLoopParams::fromString(v);
        ov.hasOpenLoop = true;
    }
    if (const char *v = get("SMTOS_ADMIT")) {
        ov.admit = AdmitParams::fromString(v);
        ov.hasAdmit = true;
    }
    if (const char *v = get("SMTOS_FIDELITY")) {
        if (std::strcmp(v, "functional") == 0)
            ov.fidelity = Fidelity::Functional;
        else if (std::strcmp(v, "detailed") == 0)
            ov.fidelity = Fidelity::Detailed;
        else
            smtos_fatal("SMTOS_FIDELITY: expected 'detailed' or "
                        "'functional', got '%s'", v);
        ov.hasFidelity = true;
    }
    if (const char *v = get("SMTOS_SAMPLE")) {
        ov.sample = SampleParams::fromString(v);
        ov.hasSample = true;
    }
    if (const char *v = get("SMTOS_CORES")) {
        const long n = std::strtol(v, nullptr, 10);
        if (n < 1 || n > 16)
            smtos_fatal("SMTOS_CORES: expected 1..16, got '%s'", v);
        ov.cores = static_cast<int>(n);
        ov.hasCores = true;
    }
    if (const char *v = get("SMTOS_PROFILE"); truthy(v)) {
        ov.obs.profile = true;
        // Any value other than a plain switch is the report path.
        const std::string s(v);
        if (s != "1" && s != "true" && s != "yes")
            ov.obs.reportPath = s;
    }
    if (const char *v = get("SMTOS_INTERVAL"))
        ov.obs.intervalCycles =
            static_cast<Cycle>(std::strtoull(v, nullptr, 10));
    if (const char *v = get("SMTOS_INTERVAL_JSONL"))
        ov.obs.intervalJsonlPath = v;
    if (const char *v = get("SMTOS_INTERVAL_CSV"))
        ov.obs.intervalCsvPath = v;
    if (const char *v = get("SMTOS_TIMELINE"))
        ov.obs.timelinePath = v;
    ov.obs.timelineDetail = truthy(get("SMTOS_TIMELINE_DETAIL"));
    if (truthy(get("SMTOS_REQTRACE")))
        ov.obs.reqtrace = true;
    if (const char *v = get("SMTOS_REQTRACE_FILE")) {
        ov.obs.reqtrace = true;
        ov.obs.reqtraceFilePath = v;
    }
    return ov;
}

EnvOverrides
EnvOverrides::fromEnvironment()
{
    return fromLookup(
        [](const char *name) { return std::getenv(name); });
}

void
EnvOverrides::install() const
{
    if (hasTraceMask)
        Trace::setMask(traceMask);
    if (!traceFile.empty())
        Trace::setFileSink(traceFile);
    if (hasDiagDir)
        diagSetDir(diagDir);
    if (jobs > 0)
        setDefaultJobs(jobs);
    ambientSlot() = *this;
}

const EnvOverrides &
EnvOverrides::ambient()
{
    return ambientSlot();
}

} // namespace smtos
