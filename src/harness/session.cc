#include "harness/session.h"

#include <algorithm>

#include "common/logging.h"
#include "fault/auditor.h"
#include "fault/diag.h"
#include "harness/cosim.h"
#include "harness/env.h"
#include "obs/reqtrace.h"
#include "obs/session.h"
#include "sim/config.h"
#include "sim/system.h"
#include "snap/snapshot.h"
#include "snap/sysstate.h"

namespace smtos {

namespace {

/** Config-section layout version (independent of the machine
 *  sections' per-class versions). Version 2 is the single-core layout
 *  (unchanged bytes — the bit-identity contract for cores = 1
 *  artifacts); version 3 appends the CMP width for cores > 1. */
constexpr std::uint32_t configSectionVersion = 2;
constexpr std::uint32_t configSectionVersionCmp = 3;

/** Cosim-oracle section layout version. */
constexpr std::uint32_t cosimSectionVersion = 1;

/** Optional trailing request-tracer section. */
constexpr std::uint32_t reqtraceSectionVersion = 1;

/** Optional trailing overload (open-loop + admission) section. */
constexpr std::uint32_t overloadSectionVersion = 1;

/** Optional trailing fidelity/sampling section. */
constexpr std::uint32_t fidelitySectionVersion = 1;

/**
 * OVLD section prologue: the overload params. They cannot ride the
 * CFG section (its byte layout is the bit-identity contract for
 * default artifacts), so the optional section carries its own config
 * ahead of the mutable state.
 */
void
overloadParamsOut(Snapshotter &sp, const OpenLoopParams &ol,
                  const AdmitParams &ap)
{
    sp.b(ol.enabled);
    sp.u8(static_cast<std::uint8_t>(ol.kind));
    sp.f64(ol.ratePerMcycle);
    sp.f64(ol.burstFactor);
    sp.f64(ol.burstDuty);
    sp.u64(ol.burstPeriod);
    sp.f64(ol.rampStartFactor);
    sp.u64(ol.rampCycles);
    sp.f64(ol.slowPct);
    sp.u64(ol.slowDrainPerKb);
    sp.f64(ol.keepAlivePct);
    sp.u64(ol.retryTimeout);
    sp.i32(ol.maxRetries);
    sp.u64(ol.seed);

    sp.u8(static_cast<std::uint8_t>(ap.policy));
    sp.i32(ap.queueCap);
    sp.i32(ap.redMinDepth);
    sp.f64(ap.redMaxProb);
    sp.u64(ap.shedDeadline);
    sp.u64(ap.seed);
    sp.b(ap.mbufAccounting);
}

void
overloadParamsIn(Restorer &rs, OpenLoopParams &ol, AdmitParams &ap)
{
    ol.enabled = rs.b();
    ol.kind = static_cast<ArrivalKind>(rs.u8());
    ol.ratePerMcycle = rs.f64();
    ol.burstFactor = rs.f64();
    ol.burstDuty = rs.f64();
    ol.burstPeriod = rs.u64();
    ol.rampStartFactor = rs.f64();
    ol.rampCycles = rs.u64();
    ol.slowPct = rs.f64();
    ol.slowDrainPerKb = rs.u64();
    ol.keepAlivePct = rs.f64();
    ol.retryTimeout = rs.u64();
    ol.maxRetries = rs.i32();
    ol.seed = rs.u64();

    ap.policy = static_cast<AdmitPolicy>(rs.u8());
    ap.queueCap = rs.i32();
    ap.redMinDepth = rs.i32();
    ap.redMaxProb = rs.f64();
    ap.shedDeadline = rs.u64();
    ap.seed = rs.u64();
    ap.mbufAccounting = rs.b();
}

/**
 * FIDL section prologue: fidelity/sampling params. Same contract as
 * OVLD — they cannot ride the CFG section (its byte layout is the
 * bit-identity contract for default artifacts), so the optional
 * section carries its own config ahead of the live counters.
 */
void
fidelityParamsOut(Snapshotter &sp, Fidelity f, const SampleParams &p)
{
    sp.u8(static_cast<std::uint8_t>(f));
    sp.b(p.enabled);
    sp.u64(p.periodInstrs);
    sp.u64(p.warmInstrs);
    sp.u64(p.intervalInstrs);
    sp.f64(p.confidence);
}

void
fidelityParamsIn(Restorer &rs, Fidelity &f, SampleParams &p)
{
    f = static_cast<Fidelity>(rs.u8());
    p.enabled = rs.b();
    p.periodInstrs = rs.u64();
    p.warmInstrs = rs.u64();
    p.intervalInstrs = rs.u64();
    p.confidence = rs.f64();
}

MachineConfig
machineConfigOf(const SystemConfig &sc, const WorkloadConfig &wc)
{
    MachineConfig cfg = sc.smt ? smtConfig() : superscalarConfig();
    cfg.kernel.seed = wc.seed;
    cfg.kernel.appOnly = !sc.withOs;
    cfg.kernel.enableNetwork =
        (wc.kind == WorkloadConfig::Kind::Apache);
    cfg.kernel.openLoop = wc.openLoop;
    cfg.kernel.admit = sc.admit;
    cfg.mem.filterPrivileged = sc.filterKernelRefs;
    cfg.mem.dramLatency = sc.memLatency;
    cfg.mem.dram = sc.dram;
    cfg.cores = sc.topology.cores;
    if (sc.topology.contextsPerCore > 0) {
        cfg.core.numContexts = sc.topology.contextsPerCore;
        cfg.core.fetchContexts =
            std::min(2, sc.topology.contextsPerCore);
    }
    // A CMP wants one netisr per core so protocol processing can be
    // delivered core-locally (the kernel pins netisr i to core i%N).
    if (sc.topology.cores > 1)
        cfg.kernel.numNetisr =
            std::max(cfg.kernel.numNetisr, sc.topology.cores);
    if (sc.fetchContexts > 0)
        cfg.core.fetchContexts = sc.fetchContexts;
    if (sc.roundRobinFetch)
        cfg.core.fetchPolicy = FetchPolicy::RoundRobin;
    cfg.kernel.sharedTlbIpr = sc.sharedTlbIpr;
    if (sc.affinitySched)
        cfg.kernel.schedPolicy = Kernel::SchedPolicy::Affinity;
    return cfg;
}

} // namespace

Session::Session(const Config &cfg) : Session(cfg, true, false) {}

Session::Session(const Config &cfg, bool consultAmbient, bool forcePlan)
    : cfg_(cfg)
{
    // CMP width: the SMTOS_CORES ambient applies only to fresh
    // sessions whose config left topology at the single-core default,
    // and before validate() so the override faces the same checks.
    if (consultAmbient && cfg_.system.topology.cores == 1 &&
        EnvOverrides::ambient().hasCores)
        cfg_.system.topology.cores = EnvOverrides::ambient().cores;
    validate();

    // Fault injection: an explicit plan wins, then the config's
    // params, then (for fresh sessions only — resumed sessions take
    // everything from the artifact) the installed environment.
    if (cfg_.faultPlan) {
        plan_ = cfg_.faultPlan;
        cfg_.faults = plan_->params();
    } else {
        if (!cfg_.faults.any() && consultAmbient &&
            EnvOverrides::ambient().hasFaults)
            cfg_.faults = EnvOverrides::ambient().faults;
        if (cfg_.faults.any() || forcePlan) {
            ownedPlan_ = std::make_unique<FaultPlan>(cfg_.faults);
            plan_ = ownedPlan_.get();
        }
    }

    // Overload knobs follow the same precedence: explicit config
    // wins, then (fresh sessions only) the installed environment.
    // Applied before the System is built so machineConfigOf() sees
    // them.
    if (consultAmbient) {
        if (!cfg_.workload.openLoop.enabled &&
            EnvOverrides::ambient().hasOpenLoop)
            cfg_.workload.openLoop = EnvOverrides::ambient().openLoop;
        if (!cfg_.system.admit.enabled() &&
            EnvOverrides::ambient().hasAdmit)
            cfg_.system.admit = EnvOverrides::ambient().admit;
        if (cfg_.fidelity == Fidelity::Detailed &&
            EnvOverrides::ambient().hasFidelity)
            cfg_.fidelity = EnvOverrides::ambient().fidelity;
        if (!cfg_.sample.enabled && EnvOverrides::ambient().hasSample)
            cfg_.sample = EnvOverrides::ambient().sample;
    }

    sys_ = std::make_unique<System>(
        machineConfigOf(cfg_.system, cfg_.workload));
    for (int c = 0; c < sys_->numCores(); ++c) {
        sys_->pipeline(c).setFastForward(cfg_.system.fastForward);
        if (cfg_.fidelity == Fidelity::Functional)
            sys_->pipeline(c).setFidelity(Fidelity::Functional);
        if (cfg_.system.filterKernelRefs)
            sys_->pipeline(c).setFilterPrivilegedBranches(true);
    }

    // Observability: an explicit session wins; otherwise honor the
    // installed environment so any tool can be instrumented without
    // code changes.
    obs_ = cfg_.obs;
    if (!obs_ && consultAmbient &&
        EnvOverrides::ambient().obs.any()) {
        ownedObs_ =
            std::make_unique<ObsSession>(EnvOverrides::ambient().obs);
        obs_ = ownedObs_.get();
    }
    if (obs_)
        obs_->attach(*sys_);

    // Attach before start() so the connection-table override takes
    // effect and the netisr/idle boot is covered.
    if (plan_) {
        sys_->attachFaults(plan_);
        if (plan_->params().auditEvery > 0) {
            auditor_ = std::make_unique<InvariantAuditor>(
                *sys_, plan_->params().auditEvery);
            sys_->kernel().setAuditor(auditor_.get());
        }
    }
    diagArm(sys_.get(), plan_);

    if (cfg_.workload.kind == WorkloadConfig::Kind::SpecInt) {
        SpecIntParams p = cfg_.workload.spec;
        p.seed ^= cfg_.workload.seed;
        specW_ = buildSpecInt(p);
        installSpecInt(sys_->kernel(), specW_);
    } else {
        ApacheParams p = cfg_.workload.apache;
        p.seed ^= cfg_.workload.seed;
        apacheW_ = buildApache(p);
        installApache(sys_->kernel(), apacheW_);
    }

    // The oracle must observe the initial thread binds in start().
    // One oracle covers every core: checkers are per thread, and the
    // chip-shared seq counter keeps per-thread seqs monotone across
    // cross-core migration.
    if (cfg_.cosim) {
        cosim_ = std::make_unique<Cosim>(sys_->pipeline());
        for (int c = 1; c < sys_->numCores(); ++c)
            cosim_->observe(sys_->pipeline(c));
    }

    sys_->start();
    atBuild_ = MetricsSnapshot::capture(*sys_);
}

Session::~Session()
{
    if (obs_)
        obs_->finish();
    diagArm(nullptr, nullptr);
}

void
Session::validate() const
{
    const SystemConfig &sc = cfg_.system;
    const TopologyConfig &tp = sc.topology;
    if (tp.contextsPerCore < 0 || tp.contextsPerCore > 64)
        smtos_fatal("Session: contextsPerCore %d out of range",
                    tp.contextsPerCore);
    if (tp.cores < 1 || tp.cores > 16)
        smtos_fatal("Session: cores %d out of range (1..16)",
                    tp.cores);
    if (tp.cores > 1 && !sc.smt)
        smtos_fatal("Session: the CMP is built from SMT cores; the "
                    "superscalar baseline is single-core");
    if (tp.cores > 1 && !sc.withOs)
        smtos_fatal("Session: cores > 1 needs the OS model (the SMP "
                    "kernel owns cross-core scheduling)");
    if (tp.cores > 1 && cfg_.fidelity != Fidelity::Detailed)
        smtos_fatal("Session: cores > 1 runs detailed only (the "
                    "functional engine models one core)");
    if (tp.cores > 1 && cfg_.sample.enabled)
        smtos_fatal("Session: sampled measurement is single-core");
    if (sc.fetchContexts < 0)
        smtos_fatal("Session: negative fetchContexts");
    if (tp.contextsPerCore > 0 &&
        sc.fetchContexts > tp.contextsPerCore)
        smtos_fatal("Session: fetchContexts %d exceeds "
                    "contextsPerCore %d",
                    sc.fetchContexts, tp.contextsPerCore);
    if (!sc.smt && tp.contextsPerCore > 1)
        smtos_fatal("Session: the superscalar baseline has exactly "
                    "one context");
    if (cfg_.phases.measureInstrs == 0)
        smtos_fatal("Session: measureInstrs must be nonzero");
    if (sc.memLatency == 0)
        smtos_fatal("Session: memLatency must be nonzero");
    const DramParams &dp = sc.dram;
    auto pow2 = [](int v) { return v > 0 && (v & (v - 1)) == 0; };
    if (dp.channels <= 0 || dp.ranks <= 0 || dp.banksPerRank <= 0)
        smtos_fatal("Session: DRAM geometry must be nonzero "
                    "(channels %d, ranks %d, banksPerRank %d)",
                    dp.channels, dp.ranks, dp.banksPerRank);
    if (!pow2(dp.channels) || !pow2(dp.ranks) ||
        !pow2(dp.banksPerRank) || !pow2(dp.rowBytes) ||
        !pow2(dp.burstBytes))
        smtos_fatal("Session: DRAM geometry must be powers of two "
                    "(channels %d, ranks %d, banksPerRank %d, "
                    "rowBytes %d, burstBytes %d)",
                    dp.channels, dp.ranks, dp.banksPerRank,
                    dp.rowBytes, dp.burstBytes);
    if (dp.rowBytes < dp.burstBytes)
        smtos_fatal("Session: DRAM rowBytes %d smaller than "
                    "burstBytes %d",
                    dp.rowBytes, dp.burstBytes);
    if (dp.queueDepth <= 0)
        smtos_fatal("Session: DRAM queueDepth must be nonzero");
    if (cfg_.workload.openLoop.enabled &&
        cfg_.workload.kind != WorkloadConfig::Kind::Apache)
        smtos_fatal("Session: open-loop arrivals need the Apache "
                    "workload (there are no clients otherwise)");
    if (cfg_.workload.openLoop.enabled &&
        cfg_.workload.openLoop.ratePerMcycle <= 0.0)
        smtos_fatal("Session: open-loop rate must be positive");
    const AdmitParams &ap = sc.admit;
    if (ap.policy != AdmitPolicy::None && ap.queueCap <= 0)
        smtos_fatal("Session: admission policy needs queueCap > 0");
    if (ap.redMaxProb < 0.0 || ap.redMaxProb > 1.0)
        smtos_fatal("Session: redMaxProb must be within [0,1]");
    if (ap.policy == AdmitPolicy::RandomEarlyDrop &&
        ap.redMinDepth >= ap.queueCap)
        smtos_fatal("Session: RED needs redMinDepth < queueCap");
    if (ap.policy == AdmitPolicy::OldestFirst && ap.shedDeadline == 0)
        smtos_fatal("Session: oldest-first shedding needs a nonzero "
                    "shedDeadline");
    const SampleParams &smp = cfg_.sample;
    if (smp.enabled) {
        if (smp.intervalInstrs == 0)
            smtos_fatal("Session: sampling needs intervalInstrs > 0");
        if (smp.periodInstrs < smp.warmInstrs + smp.intervalInstrs)
            smtos_fatal("Session: sampling period must cover "
                        "warm + interval");
        if (smp.confidence < 0.5 || smp.confidence >= 1.0)
            smtos_fatal("Session: sampling confidence must be in "
                        "[0.5, 1)");
        if (cfg_.phases.windowInstrs > 0)
            smtos_fatal("Session: sampled measurement and windowed "
                        "measurement are mutually exclusive");
        if (cfg_.fidelity == Fidelity::Functional)
            smtos_fatal("Session: sampled measurement drives fidelity "
                        "itself; configure Detailed");
    }
}

void
Session::attachObs(ObsSession &obs)
{
    smtos_assert(!obs_);
    obs_ = &obs;
    obs_->attach(*sys_);
}

MetricsSnapshot
Session::capture() const
{
    return MetricsSnapshot::capture(*sys_);
}

void
Session::runStartup()
{
    if (startupDone_)
        return;
    startupDone_ = true;
    const MetricsSnapshot s0 = capture();
    if (cfg_.phases.startupInstrs > 0) {
        sys_->run(cfg_.phases.startupInstrs);
    } else if (cfg_.workload.kind == WorkloadConfig::Kind::SpecInt) {
        const std::uint64_t chunk = 200'000;
        std::uint64_t guard = 0;
        while (!sys_->kernel().startupComplete() && guard < 400) {
            sys_->run(chunk);
            ++guard;
        }
        if (guard >= 400)
            smtos_warn("start-up did not complete within guard");
    }
    startupDelta_ = capture().delta(s0);
}

RunResult
Session::runMeasurement()
{
    RunResult res;
    res.startup = startupDelta_;
    const MetricsSnapshot s1 = capture();

    if (cfg_.sample.enabled) {
        // SMARTS sampled measurement: the driver alternates fidelity
        // itself; steady still covers the whole sampled phase so
        // architectural counts (instructions, mode mix) stay exact.
        res.sample = runSampledMeasurement(*sys_, cfg_.sample,
                                           cfg_.phases.measureInstrs);
        res.steady = capture().delta(s1);
    } else if (obs_ && obs_->wantsIntervals()) {
        // Cycle-driven interval sampling: advance in fixed steps and
        // emit one time-series row per step until the instruction
        // budget is retired. Deterministic for a given seed/config.
        const Cycle iv = obs_->intervalCycles();
        const std::uint64_t target =
            s1.core.totalRetired() + cfg_.phases.measureInstrs;
        MetricsSnapshot prev = s1;
        int idx = 0;
        int stuck = 0;
        while (prev.core.totalRetired() < target) {
            const Cycle c0 = sys_->pipeline().now();
            sys_->runCycles(iv);
            MetricsSnapshot cur = capture();
            obs_->interval(idx++, c0, sys_->pipeline().now(),
                           cur.delta(prev));
            if (cur.core.totalRetired() == prev.core.totalRetired()) {
                if (++stuck >= 1000)
                    smtos_panic("interval sampling made no progress "
                                "for %d intervals",
                                stuck);
            } else {
                stuck = 0;
            }
            prev = cur;
        }
        res.steady = capture().delta(s1);
    } else if (cfg_.phases.windowInstrs > 0) {
        MetricsSnapshot prev = s1;
        std::uint64_t done = 0;
        while (done < cfg_.phases.measureInstrs) {
            const std::uint64_t step =
                std::min(cfg_.phases.windowInstrs,
                         cfg_.phases.measureInstrs - done);
            sys_->run(step);
            done += step;
            MetricsSnapshot cur = capture();
            res.windows.push_back(cur.delta(prev));
            prev = cur;
        }
        res.steady = capture().delta(s1);
    } else {
        sys_->run(cfg_.phases.measureInstrs);
        res.steady = capture().delta(s1);
    }

    res.requestsServed = sys_->kernel().requestsServed();
    res.cycles = sys_->pipeline().now();
    if (cosim_ && cosim_->diverged())
        smtos_panic("cosim divergence:\n%s",
                    cosim_->report().c_str());
    if (obs_)
        obs_->finish();
    return res;
}

RunResult
Session::run()
{
    runStartup();
    return runMeasurement();
}

// --- snapshot/restore ---

void
Session::writeConfig(Snapshotter &sp) const
{
    const SystemConfig &sc = cfg_.system;
    sp.b(sc.smt);
    sp.b(sc.withOs);
    sp.b(sc.filterKernelRefs);
    sp.i32(sc.topology.contextsPerCore);
    sp.i32(sc.fetchContexts);
    sp.b(sc.roundRobinFetch);
    sp.b(sc.affinitySched);
    sp.b(sc.sharedTlbIpr);
    sp.b(sc.fastForward);
    sp.u64(sc.memLatency);
    sp.b(sc.dram.banked);
    sp.i32(sc.dram.channels);
    sp.i32(sc.dram.ranks);
    sp.i32(sc.dram.banksPerRank);
    sp.i32(sc.dram.rowBytes);
    sp.i32(sc.dram.burstBytes);
    sp.i32(sc.dram.queueDepth);
    sp.b(sc.dram.closedPage);
    sp.u64(sc.dram.tRcd);
    sp.u64(sc.dram.tRp);
    sp.u64(sc.dram.tCas);
    sp.u64(sc.dram.tBurst);
    sp.u64(sc.dram.tFaw);

    const WorkloadConfig &wc = cfg_.workload;
    sp.u8(static_cast<std::uint8_t>(wc.kind));
    sp.i32(wc.spec.numApps);
    sp.u32(wc.spec.inputChunks);
    sp.u64(wc.spec.heapBase);
    sp.u64(wc.spec.heapStep);
    sp.u64(wc.spec.seed);
    sp.i32(wc.apache.numServers);
    sp.u64(wc.apache.heapBytes);
    sp.u64(wc.apache.seed);
    sp.u64(wc.seed);

    const FaultParams &fp = cfg_.faults;
    sp.u64(fp.seed);
    sp.f64(fp.lossPct);
    sp.f64(fp.reorderPct);
    sp.u64(fp.delayMin);
    sp.u64(fp.delayMax);
    sp.f64(fp.nicDropPct);
    sp.u64(fp.mcePeriod);
    sp.i32(fp.mceRetryLimit);
    sp.b(fp.mceBreakRecovery);
    sp.i32(fp.connTableSize);
    sp.i32(fp.listenBacklog);
    sp.u64(fp.auditEvery);

    sp.b(plan_ != nullptr);
    sp.b(cosim_ != nullptr);

    // Version-3 tail: the CMP width. Version-2 (cores = 1) artifacts
    // end above, byte-identical to the pre-CMP format.
    if (sc.topology.cores > 1)
        sp.i32(sc.topology.cores);
}

Session::Config
Session::readConfig(Restorer &rs, bool &hadPlan, bool &hadCosim)
{
    Config cfg;
    SystemConfig &sc = cfg.system;
    sc.smt = rs.b();
    sc.withOs = rs.b();
    sc.filterKernelRefs = rs.b();
    sc.topology.contextsPerCore = rs.i32();
    sc.fetchContexts = rs.i32();
    sc.roundRobinFetch = rs.b();
    sc.affinitySched = rs.b();
    sc.sharedTlbIpr = rs.b();
    sc.fastForward = rs.b();
    sc.memLatency = rs.u64();
    sc.dram.banked = rs.b();
    sc.dram.channels = rs.i32();
    sc.dram.ranks = rs.i32();
    sc.dram.banksPerRank = rs.i32();
    sc.dram.rowBytes = rs.i32();
    sc.dram.burstBytes = rs.i32();
    sc.dram.queueDepth = rs.i32();
    sc.dram.closedPage = rs.b();
    sc.dram.tRcd = rs.u64();
    sc.dram.tRp = rs.u64();
    sc.dram.tCas = rs.u64();
    sc.dram.tBurst = rs.u64();
    sc.dram.tFaw = rs.u64();

    WorkloadConfig &wc = cfg.workload;
    wc.kind = static_cast<WorkloadConfig::Kind>(rs.u8());
    wc.spec.numApps = rs.i32();
    wc.spec.inputChunks = rs.u32();
    wc.spec.heapBase = rs.u64();
    wc.spec.heapStep = rs.u64();
    wc.spec.seed = rs.u64();
    wc.apache.numServers = rs.i32();
    wc.apache.heapBytes = rs.u64();
    wc.apache.seed = rs.u64();
    wc.seed = rs.u64();

    FaultParams &fp = cfg.faults;
    fp.seed = rs.u64();
    fp.lossPct = rs.f64();
    fp.reorderPct = rs.f64();
    fp.delayMin = rs.u64();
    fp.delayMax = rs.u64();
    fp.nicDropPct = rs.f64();
    fp.mcePeriod = rs.u64();
    fp.mceRetryLimit = rs.i32();
    fp.mceBreakRecovery = rs.b();
    fp.connTableSize = rs.i32();
    fp.listenBacklog = rs.i32();
    fp.auditEvery = rs.u64();

    hadPlan = rs.b();
    hadCosim = rs.b();
    return cfg;
}

std::vector<std::uint8_t>
Session::snapshot()
{
    Snapshotter sp;
    sp.beginSection("CFG ", cfg_.system.topology.cores > 1
                                ? configSectionVersionCmp
                                : configSectionVersion);
    writeConfig(sp);
    sp.endSection();
    saveMachineSections(sp, *sys_, plan_);
    // The oracle rides behind the machine sections: its reference
    // cores sit at the retire point, which no machine section holds.
    sp.beginSection("COSM", cosimSectionVersion);
    if (cosim_) {
        const SnapImages images = collectImages(*sys_);
        cosim_->save(sp, images);
    }
    sp.endSection();
    // Tracer state is a trailing OPTIONAL section: untraced sessions
    // write nothing here, so their artifacts stay byte-identical to
    // the pre-tracer format.
    if (obs_ && obs_->reqtrace()) {
        sp.beginSection("RQTR", reqtraceSectionVersion);
        obs_->reqtrace()->save(sp);
        sp.endSection();
    }
    // Same contract for overload state: only sessions with the
    // open-loop generator or an admission policy engaged write it, so
    // default closed-loop artifacts keep their pre-overload bytes.
    if (cfg_.workload.openLoop.enabled || cfg_.system.admit.enabled()) {
        sp.beginSection("OVLD", overloadSectionVersion);
        overloadParamsOut(sp, cfg_.workload.openLoop,
                          cfg_.system.admit);
        sys_->kernel().saveOverload(sp);
        sp.endSection();
    }
    // Same contract for fidelity state: only sessions that configured
    // functional/sampled execution or actually ran functional cycles
    // write it, so pure-detailed artifacts keep their prior bytes.
    const Pipeline &pipe = sys_->pipeline();
    if (cfg_.fidelity != Fidelity::Detailed || cfg_.sample.enabled ||
        pipe.funcInstrs() > 0) {
        sp.beginSection("FIDL", fidelitySectionVersion);
        fidelityParamsOut(sp, cfg_.fidelity, cfg_.sample);
        sp.u8(static_cast<std::uint8_t>(pipe.fidelity()));
        sp.u64(pipe.funcInstrs());
        sp.u64(pipe.funcCycles());
        sp.u64(pipe.fidelitySwitches());
        sp.endSection();
    }
    return sp.finish();
}

std::unique_ptr<Session>
Session::resume(const std::vector<std::uint8_t> &artifact,
                const ResumeOptions &opts, std::string *error)
{
    Restorer rs(artifact);
    if (!rs.ok()) {
        if (error)
            *error = rs.error();
        return nullptr;
    }
    const std::uint32_t cv = rs.enterSection("CFG ");
    if (cv != configSectionVersion && cv != configSectionVersionCmp) {
        if (error)
            *error = "snapshot rejected: config section version " +
                     std::to_string(cv) + " (supported " +
                     std::to_string(configSectionVersion) + ", " +
                     std::to_string(configSectionVersionCmp) + ")";
        return nullptr;
    }
    bool hadPlan = false;
    bool hadCosim = false;
    Config cfg = readConfig(rs, hadPlan, hadCosim);
    if (cv == configSectionVersionCmp)
        cfg.system.topology.cores = rs.i32();
    rs.leaveSection();

    // The oracle's retire-point state only exists in the artifact if
    // the originating session ran under co-simulation; a fresh oracle
    // cannot be synthesized mid-flight (in-flight instructions would
    // retire against state it never saw).
    if (opts.cosim && !hadCosim) {
        if (error)
            *error = "snapshot rejected: resume requested "
                     "co-simulation but the artifact was captured "
                     "without an oracle";
        return nullptr;
    }

    // Apply the policy-only overrides (they never change structure,
    // so the artifact's state still fits the rebuilt machine).
    cfg.phases = opts.phases;
    cfg.obs = nullptr;
    cfg.cosim = opts.cosim;
    if (opts.roundRobinFetch)
        cfg.system.roundRobinFetch = *opts.roundRobinFetch;
    if (opts.affinitySched)
        cfg.system.affinitySched = *opts.affinitySched;
    if (opts.sharedTlbIpr)
        cfg.system.sharedTlbIpr = *opts.sharedTlbIpr;
    if (opts.fastForward)
        cfg.system.fastForward = *opts.fastForward;
    if (opts.dramClosedPage)
        cfg.system.dram.closedPage = *opts.dramClosedPage;

    // Rebuild from the artifact's own config (never the ambient
    // environment), then overlay the saved machine state.
    std::unique_ptr<Session> s(new Session(cfg, false, hadPlan));
    loadMachineSections(rs, *s->sys_, s->plan_);
    // Load the oracle last: it wholesale-replaces the sync noise the
    // machine restore just fed it (resyncThreads targets the fetch
    // point; the oracle must resume from the retire point).
    const std::uint32_t cosv = rs.enterSection("COSM");
    smtos_assert(cosv == cosimSectionVersion);
    if (s->cosim_) {
        const SnapImages images = collectImages(*s->sys_);
        s->cosim_->load(rs, images);
    } else {
        rs.skipRest();
    }
    rs.leaveSection();
    // Optional trailing tracer state (present only when the saving
    // session traced). Restored into the resuming session's tracer
    // when it has one, so in-flight spans complete across the
    // boundary; skipped (but still consumed) otherwise.
    if (!rs.atEnd() && rs.nextSectionIs("RQTR")) {
        const std::uint32_t rqv = rs.enterSection("RQTR");
        smtos_assert(rqv == reqtraceSectionVersion);
        if (opts.obs && opts.obs->reqtrace())
            opts.obs->reqtrace()->load(rs);
        else
            rs.skipRest();
        rs.leaveSection();
    }
    // Optional trailing overload state. The section carries its own
    // params (they are not part of the CFG bytes); the kernel is put
    // into the saved configuration first, then the mutable state is
    // overlaid so arrivals and shed clocks continue bit-identically.
    if (!rs.atEnd() && rs.nextSectionIs("OVLD")) {
        const std::uint32_t ov = rs.enterSection("OVLD");
        smtos_assert(ov == overloadSectionVersion);
        OpenLoopParams ol;
        AdmitParams ap;
        overloadParamsIn(rs, ol, ap);
        s->cfg_.workload.openLoop = ol;
        s->cfg_.system.admit = ap;
        s->sys_->kernel().setOpenLoop(ol);
        s->sys_->kernel().setAdmission(ap);
        s->sys_->kernel().loadOverload(rs);
        rs.leaveSection();
    }
    // Overload overrides land after the artifact's own state: the
    // fig_overload_knee pattern resumes one closed-loop start-up
    // snapshot into many open-loop/admission operating points.
    if (opts.openLoop) {
        s->cfg_.workload.openLoop = *opts.openLoop;
        s->sys_->kernel().setOpenLoop(*opts.openLoop);
    }
    if (opts.admit) {
        s->cfg_.system.admit = *opts.admit;
        s->sys_->kernel().setAdmission(*opts.admit);
    }
    // Optional trailing fidelity state: restore the configured mode,
    // the live pipeline fidelity, and the functional counters so a
    // resumed run's metrics continue bit-identically.
    if (!rs.atEnd() && rs.nextSectionIs("FIDL")) {
        const std::uint32_t fv = rs.enterSection("FIDL");
        smtos_assert(fv == fidelitySectionVersion);
        Fidelity cfgF = Fidelity::Detailed;
        SampleParams smp;
        fidelityParamsIn(rs, cfgF, smp);
        s->cfg_.fidelity = cfgF;
        s->cfg_.sample = smp;
        const Fidelity live = static_cast<Fidelity>(rs.u8());
        const std::uint64_t fi = rs.u64();
        const Cycle fc = rs.u64();
        const std::uint64_t sw = rs.u64();
        s->sys_->pipeline().restoreFidelity(live, fi, fc, sw);
        rs.leaveSection();
    }
    // Fidelity overrides land after the artifact's own state: resume
    // one detailed start-up snapshot into functional fast-forward or
    // sampled measurement (or force functional back to detailed).
    if (opts.fidelity) {
        s->cfg_.fidelity = *opts.fidelity;
        s->sys_->pipeline().setFidelity(*opts.fidelity);
    }
    if (opts.sample)
        s->cfg_.sample = *opts.sample;
    s->startupDone_ = true; // the artifact is past its start-up
    if (opts.obs)
        s->attachObs(*opts.obs);
    return s;
}

} // namespace smtos
