/**
 * @file
 * Legacy single-struct experiment entry point.
 *
 * RunSpec predates the Session API (harness/session.h), which splits
 * it into SystemConfig / WorkloadConfig / RunPhases and adds
 * snapshot()/resume(). runExperiment() is kept as a thin shim that
 * forwards to a Session so out-of-tree callers keep working; in-tree
 * code uses Session directly.
 */

#ifndef SMTOS_HARNESS_EXPERIMENT_H
#define SMTOS_HARNESS_EXPERIMENT_H

#include <cstdint>

#include "harness/session.h"

namespace smtos {

class ObsSession;

/** What to simulate and how long (legacy; see Session::Config). */
struct RunSpec
{
    enum class Workload { SpecInt, Apache };
    Workload workload = Workload::SpecInt;
    bool smt = true;          ///< false: superscalar baseline
    bool withOs = true;       ///< false: application-only (Table 4)
    bool filterKernelRefs = false; ///< Table 9 reference filter

    std::uint64_t startupInstrs = 0;
    std::uint64_t measureInstrs = 2'000'000;
    std::uint64_t windowInstrs = 0;

    SpecIntParams spec;
    ApacheParams apache;
    std::uint64_t seed = 99;
    int numContexts = 0;
    int fetchContexts = 0;
    bool roundRobinFetch = false;
    bool affinitySched = false;
    bool sharedTlbIpr = false;

    ObsSession *obs = nullptr;
    FaultParams faults{};
    FaultPlan *faultPlan = nullptr; ///< not owned; overrides @c faults
    bool fastForward = true;

    /** The equivalent Session configuration. */
    Session::Config toSessionConfig() const;
};

/** Build, run, and measure one configuration (forwards to Session). */
RunResult runExperiment(const RunSpec &spec);

} // namespace smtos

#endif // SMTOS_HARNESS_EXPERIMENT_H
