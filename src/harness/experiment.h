/**
 * @file
 * Experiment harness shared by the benchmark binaries and examples:
 * builds a configured system + workload, runs warm-up/start-up and
 * measurement phases, and returns metric deltas per phase and per
 * window.
 */

#ifndef SMTOS_HARNESS_EXPERIMENT_H
#define SMTOS_HARNESS_EXPERIMENT_H

#include <cstdint>
#include <vector>

#include "fault/fault.h"
#include "sim/metrics.h"
#include "workload/apache.h"
#include "workload/specint.h"

namespace smtos {

class ObsSession;

/** What to simulate and how long. */
struct RunSpec
{
    enum class Workload { SpecInt, Apache };
    Workload workload = Workload::SpecInt;
    bool smt = true;          ///< false: superscalar baseline
    bool withOs = true;       ///< false: application-only (Table 4)
    bool filterKernelRefs = false; ///< Table 9 reference filter

    /**
     * Start-up phase length in retired instructions. 0 for SPECInt
     * means "run until every app finished its input reads".
     */
    std::uint64_t startupInstrs = 0;
    std::uint64_t measureInstrs = 2'000'000;
    /** When nonzero, split measurement into windows of this size. */
    std::uint64_t windowInstrs = 0;

    SpecIntParams spec;
    ApacheParams apache;
    std::uint64_t seed = 99;
    /** Optional overrides (0 = keep the preset's value). */
    int numContexts = 0;
    int fetchContexts = 0;
    bool roundRobinFetch = false;
    bool affinitySched = false;
    bool sharedTlbIpr = false;

    /**
     * Observability session to wire into the run (not owned; covers
     * exactly one run). When null, runExperiment builds one from the
     * SMTOS_* environment variables if any are set. When the session
     * enables interval sampling, the measurement phase advances in
     * intervalCycles() steps and emits one sample row per step.
     */
    ObsSession *obs = nullptr;

    /**
     * Fault injection for the run. An explicit plan wins; otherwise a
     * plan is built from @c faults when it configures anything, or
     * from the SMTOS_FAULTS environment. When nothing is configured no
     * plan is attached and the run is bit-identical to a fault-free
     * build.
     */
    FaultParams faults{};
    FaultPlan *faultPlan = nullptr; ///< not owned; overrides @c faults

    /**
     * Host fast path: skip quiescent cycles in one jump (see DESIGN.md
     * §10). Results are bit-identical either way; the perf suite runs
     * both settings to prove it.
     */
    bool fastForward = true;
};

/** Phase deltas of one run. */
struct RunResult
{
    MetricsSnapshot startup;  ///< the start-up interval
    MetricsSnapshot steady;   ///< the measurement interval
    std::vector<MetricsSnapshot> windows;
    std::uint64_t requestsServed = 0;
    Cycle cycles = 0;
};

/** Build, run, and measure one configuration. */
RunResult runExperiment(const RunSpec &spec);

} // namespace smtos

#endif // SMTOS_HARNESS_EXPERIMENT_H
