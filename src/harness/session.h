/**
 * @file
 * The experiment Session API.
 *
 * A Session composes three orthogonal config structs — SystemConfig
 * (the machine), WorkloadConfig (what runs on it, with its seed), and
 * RunPhases (how long each phase runs) — validates them, builds the
 * System, installs the workload, wires observability / fault
 * injection / co-simulation, and owns everything for the run's
 * lifetime.
 *
 * Snapshot/restore: snapshot() serializes the complete simulated
 * state (see snap/sysstate.h) plus a config section, into a single
 * versioned artifact. resume() rebuilds a Session from the artifact's
 * own config — so structural mismatch is impossible — overlays the
 * saved state, and continues bit-identically: running N instructions
 * after restore produces byte-identical metrics, timeline, and fault
 * log to running them straight through. ResumeOptions supplies the
 * new phases/sinks and may flip policy-only knobs (fetch policy,
 * scheduler affinity, TLB-IPR sharing, host fast path).
 */

#ifndef SMTOS_HARNESS_SESSION_H
#define SMTOS_HARNESS_SESSION_H

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "fault/fault.h"
#include "harness/sample.h"
#include "kernel/admission.h"
#include "mem/memctrl.h"
#include "net/clients.h"
#include "sim/metrics.h"
#include "snap/fwd.h"
#include "workload/apache.h"
#include "workload/specint.h"

namespace smtos {

class Cosim;
class InvariantAuditor;
class ObsSession;
class System;

/**
 * Chip topology: how many SMT cores the machine instantiates, and how
 * many hardware contexts each core carries. cores = 1 is the classic
 * single-core machine and is bit-identical to the pre-CMP simulator;
 * cores > 1 builds a CMP with private L1s/TLBs per core, a shared L2,
 * MESI coherence, and an SMP kernel (per-core run queues, TLB
 * shootdown IPIs). The SMTOS_CORES environment variable overrides
 * cores for fresh sessions that left it at the default.
 */
struct TopologyConfig
{
    int cores = 1;           ///< CMP width (1..16)
    int contextsPerCore = 0; ///< 0 = keep the preset's value
};

/** The simulated machine, independent of what runs on it. */
struct SystemConfig
{
    bool smt = true;          ///< false: superscalar baseline
    bool withOs = true;       ///< false: application-only (Table 4)
    bool filterKernelRefs = false; ///< Table 9 reference filter
    /** Cores x contexts-per-core (the redesigned knob; the old
     *  numContexts field is topology.contextsPerCore). */
    TopologyConfig topology;
    /** Optional overrides (0 = keep the preset's value). */
    int fetchContexts = 0;
    bool roundRobinFetch = false;
    bool affinitySched = false;
    bool sharedTlbIpr = false;
    /** Host fast path (DESIGN.md §10); bit-identical either way. */
    bool fastForward = true;
    /** Flat DRAM latency (the Table-1 90 cycles, named once). */
    Cycle memLatency = defaultMemLatency;
    /** Banked-DRAM geometry/policy; dram.banked=false keeps the flat
     *  model and is bit-identical to the pre-banked machine. */
    DramParams dram;
    /** Accept-queue admission control + accounted mbuf pool; the
     *  default (policy None, accounting off) is bit-identical to the
     *  pre-overload machine. */
    AdmitParams admit;
};

/** What runs on the machine, with the run's seed. */
struct WorkloadConfig
{
    enum class Kind { SpecInt, Apache };
    Kind kind = Kind::SpecInt;
    SpecIntParams spec;
    ApacheParams apache;
    /** Open-loop client arrivals (Apache only; default off keeps the
     *  closed-loop SPECWeb model bit-identical). */
    OpenLoopParams openLoop;
    std::uint64_t seed = 99;
};

/** Phase lengths in retired instructions. */
struct RunPhases
{
    /**
     * Start-up phase length. 0 for SPECInt means "run until every app
     * finished its input reads".
     */
    std::uint64_t startupInstrs = 0;
    std::uint64_t measureInstrs = 2'000'000;
    /** When nonzero, split measurement into windows of this size. */
    std::uint64_t windowInstrs = 0;
};

/** Phase deltas of one run. */
struct RunResult
{
    MetricsSnapshot startup;  ///< the start-up interval
    MetricsSnapshot steady;   ///< the measurement interval
    std::vector<MetricsSnapshot> windows;
    std::uint64_t requestsServed = 0;
    Cycle cycles = 0;
    /** Sampled-measurement estimates (sample.enabled when the SMARTS
     *  driver ran; steady then covers the whole sampled phase). */
    SampleReport sample;
};

/** One built-and-started experiment. */
class Session
{
  public:
    struct Config
    {
        SystemConfig system;
        WorkloadConfig workload;
        RunPhases phases;

        /**
         * Fault injection. An explicit plan (not owned) wins;
         * otherwise a plan is built from @c faults when it configures
         * anything, or from the installed EnvOverrides ambient.
         */
        FaultParams faults{};
        FaultPlan *faultPlan = nullptr;

        /**
         * Observability session (not owned; covers exactly one run).
         * When null, the installed EnvOverrides ambient is consulted.
         * Also attachable later via attachObs() — e.g. at the
         * measurement boundary, so a restored run's sinks see the
         * same event stream as a straight-through run's.
         */
        ObsSession *obs = nullptr;

        /**
         * Execution fidelity of the whole run (DESIGN.md §15).
         * Functional executes with warming only: instruction counts
         * and mode breakdowns keep architectural meaning, cycle
         * counts do not. Sampled runs leave this Detailed and set
         * @c sample instead.
         */
        Fidelity fidelity = Fidelity::Detailed;

        /**
         * SMARTS sampled measurement: fast-forward functionally,
         * warm, measure a detailed interval, repeat. Replaces the
         * plain measurement loop; mutually exclusive with
         * phases.windowInstrs.
         */
        SampleParams sample{};

        /**
         * Attach a co-simulation oracle before the system starts.
         * Retired instructions are checked against the functional
         * reference model; divergence is fatal at run() end. Also
         * keeps per-thread committed registers live, so snapshots
         * taken from a cosim session restore into cosim sessions.
         */
        bool cosim = false;
    };

    /** What a resumed run does (the artifact supplies the rest). */
    struct ResumeOptions
    {
        RunPhases phases;
        ObsSession *obs = nullptr;
        bool cosim = false;
        /** Policy-only overrides; unset keeps the artifact's value. */
        std::optional<bool> roundRobinFetch;
        std::optional<bool> affinitySched;
        std::optional<bool> sharedTlbIpr;
        std::optional<bool> fastForward;
        /** Row-buffer policy is timing-only: bank/queue state in the
         *  artifact fits either setting. */
        std::optional<bool> dramClosedPage;
        /**
         * Overload overrides: resume a (typically closed-loop)
         * start-up snapshot into open-loop load and/or under an
         * admission policy — the fig_overload_knee pattern. Applied
         * after any OVLD section in the artifact.
         */
        std::optional<OpenLoopParams> openLoop;
        std::optional<AdmitParams> admit;
        /**
         * Fidelity/sampling overrides, applied after any FIDL section
         * in the artifact: resume a detailed start-up snapshot into a
         * functional fast-forward or a sampled measurement (or force
         * a functional-mode artifact back to detailed).
         */
        std::optional<Fidelity> fidelity;
        std::optional<SampleParams> sample;
    };

    /** Validate, build, install the workload, and start. */
    explicit Session(const Config &cfg);
    ~Session();

    Session(const Session &) = delete;
    Session &operator=(const Session &) = delete;

    /** Run the start-up phase (idempotent; at most once). */
    void runStartup();

    /**
     * Run the measurement phase and return the deltas: steady (and
     * windows / interval rows when configured), plus this session's
     * start-up delta when runStartup() ran.
     */
    RunResult runMeasurement();

    /** runStartup() + runMeasurement(). */
    RunResult run();

    /**
     * Serialize the complete simulated state into one artifact.
     * Deterministic: equal states produce equal bytes.
     */
    std::vector<std::uint8_t> snapshot();

    /**
     * Rebuild a Session from @p artifact and continue bit-identically.
     * Returns nullptr (with @p error set when non-null) on a corrupt,
     * truncated, or format-version-mismatched artifact.
     */
    static std::unique_ptr<Session>
    resume(const std::vector<std::uint8_t> &artifact,
           const ResumeOptions &opts, std::string *error = nullptr);

    /** Attach observability after construction (once, not owned). */
    void attachObs(ObsSession &obs);

    System &system() { return *sys_; }
    const Config &config() const { return cfg_; }
    FaultPlan *faultPlan() { return plan_; }
    Cosim *cosim() { return cosim_.get(); }

    /** Capture the current absolute metrics. */
    MetricsSnapshot capture() const;

  private:
    Session(const Config &cfg, bool consultAmbient, bool forcePlan);

    void validate() const;
    void writeConfig(Snapshotter &sp) const;
    static Config readConfig(Restorer &rs, bool &hadPlan,
                             bool &hadCosim);

    Config cfg_;
    std::unique_ptr<System> sys_;
    std::unique_ptr<FaultPlan> ownedPlan_;
    FaultPlan *plan_ = nullptr;
    std::unique_ptr<ObsSession> ownedObs_;
    ObsSession *obs_ = nullptr;
    std::unique_ptr<InvariantAuditor> auditor_;
    std::unique_ptr<Cosim> cosim_;
    SpecIntWorkload specW_;
    ApacheWorkload apacheW_;
    MetricsSnapshot atBuild_;
    MetricsSnapshot startupDelta_;
    bool startupDone_ = false;
};

} // namespace smtos

#endif // SMTOS_HARNESS_SESSION_H
