#include "harness/cosim.h"

#include <sstream>

#include "common/logging.h"
#include "isa/disasm.h"

namespace smtos {

namespace {

constexpr size_t recentWindow = 8;

void
printEvent(std::ostream &os, const RetireEvent &e)
{
    os << "  cycle " << e.cycle << " ctx" << static_cast<int>(e.ctx)
       << " tid" << e.thread << " seq " << e.seq << " [" << modeName(e.mode)
       << "] pc 0x" << std::hex << e.pc << std::dec << "  "
       << (e.instr ? disasm(*e.instr) : std::string("<null>"));
    if (e.instr && e.instr->isMem())
        os << "  vaddr 0x" << std::hex << e.vaddr << std::dec;
    if (e.isCondBranch)
        os << (e.taken ? "  taken" : "  not-taken");
    os << "\n";
}

} // namespace

Cosim::Cosim(Pipeline &pipe)
    : pipe_(&pipe), kernelImage_(pipe.kernelImage())
{
    smtos_assert(pipe_->retireObserver() == nullptr);
    pipe_->setRetireObserver(this);
}

void
Cosim::observe(Pipeline &pipe)
{
    smtos_assert(pipe.retireObserver() == nullptr);
    pipe.setRetireObserver(this);
    extraPipes_.push_back(&pipe);
}

Cosim::~Cosim()
{
    if (pipe_->retireObserver() == this)
        pipe_->setRetireObserver(nullptr);
    for (Pipeline *pl : extraPipes_)
        if (pl->retireObserver() == this)
            pl->setRetireObserver(nullptr);
}

void
Cosim::onThreadStateSync(const ThreadState &t, std::uint64_t firstSeq)
{
    if (diverged_)
        return;
    ++syncs_;
    ThreadChecker &tc = threads_[t.id];
    tc.pending.push_back({firstSeq, RefSyncState::capture(t)});
}

void
Cosim::onRetire(const RetireEvent &e)
{
    if (diverged_)
        return;
    ThreadChecker &tc = threads_[e.thread];

    // Adopt every OS intervention the retired stream has reached.
    // Per-thread seqs are monotone (in-order commit, drained-context
    // migration), so FIFO order is retirement order; when several
    // snapshots apply at once the newest wins by replacement.
    while (!tc.pending.empty() && e.seq >= tc.pending.front().firstSeq) {
        tc.ref.apply(tc.pending.front().state, kernelImage_);
        tc.pending.pop_front();
    }

    if (!tc.ref.live()) {
        diverge(e, nullptr,
                "instruction retired before any state sync for its "
                "thread (observer attached after threads were bound?)");
        return;
    }
    if (tc.ref.waitingForOs()) {
        diverge(e, nullptr,
                "instruction retired past a serializing instruction "
                "with no OS intervention in between");
        return;
    }

    const RefRetire r = tc.ref.step();
    std::ostringstream why;
    if (e.pc != r.pc)
        why << "pc: got 0x" << std::hex << e.pc << " want 0x" << r.pc
            << std::dec << "; ";
    if (e.instr != r.instr)
        why << "instr: got [" << (e.instr ? disasm(*e.instr) : "<null>")
            << "] want [" << (r.instr ? disasm(*r.instr) : "<null>")
            << "]; ";
    if (e.mode != r.mode)
        why << "mode: got " << modeName(e.mode) << " want "
            << modeName(r.mode) << "; ";
    if (e.tag != r.tag)
        why << "tag: got " << e.tag << " want " << r.tag << "; ";
    if (r.instr && r.instr->isMem() && e.vaddr != r.vaddr)
        why << "vaddr: got 0x" << std::hex << e.vaddr << " want 0x"
            << r.vaddr << std::dec << "; ";
    if (e.isCondBranch && e.taken != r.taken)
        why << "direction: got " << (e.taken ? "taken" : "not-taken")
            << " want " << (r.taken ? "taken" : "not-taken") << "; ";
    if (e.destValue != r.destValue)
        why << "destValue: got 0x" << std::hex << e.destValue
            << " want 0x" << r.destValue << std::dec << "; ";

    const std::string w = why.str();
    if (!w.empty()) {
        diverge(e, &r, w);
        return;
    }

    ++checked_;
    tc.recent.push_back(e);
    if (tc.recent.size() > recentWindow)
        tc.recent.pop_front();
}

void
Cosim::diverge(const RetireEvent &e, const RefRetire *expect,
               const std::string &what)
{
    diverged_ = true;
    std::ostringstream os;
    os << "cosim divergence at cycle " << e.cycle << ", ctx"
       << static_cast<int>(e.ctx) << ", tid " << e.thread << ", seq "
       << e.seq << ", after " << checked_ << " verified retirements\n"
       << "  " << what << "\n"
       << "retired: pc 0x" << std::hex << e.pc << std::dec << " ["
       << modeName(e.mode) << "] "
       << (e.instr ? disasm(*e.instr) : std::string("<null>")) << "\n";
    if (expect && expect->instr) {
        os << "expected: pc 0x" << std::hex << expect->pc << std::dec
           << " [" << modeName(expect->mode) << "] "
           << disasm(*expect->instr) << "\n";
    }
    const ThreadChecker &tc = threads_[e.thread];
    if (!tc.recent.empty()) {
        os << "last " << tc.recent.size()
           << " retirements of this thread:\n";
        for (const RetireEvent &p : tc.recent)
            printEvent(os, p);
    }
    os << "diverging retirement:\n";
    printEvent(os, e);
    report_ = os.str();
}

} // namespace smtos
