/**
 * @file
 * The single place SMTOS_* environment variables are read.
 *
 * Library code never calls getenv: a tool's main() (or the test
 * driver's main) parses the environment once with fromEnvironment()
 * and calls install(), which applies the process-wide settings (trace
 * mask/sink, crash-diagnostics directory, parallel-runner job count)
 * and publishes the ambient observability/fault defaults that Session
 * falls back to when a run configures neither explicitly.
 *
 * Variables:
 *   SMTOS_TRACE / SMTOS_TRACE_FILE   trace categories and sink path
 *   SMTOS_DIAG_DIR                   crash-bundle directory
 *   SMTOS_JOBS                       parallel runner worker count
 *   SMTOS_FAULTS                     fault plan (FaultParams syntax)
 *   SMTOS_OPENLOOP                   open-loop client arrivals
 *                                    (OpenLoopParams syntax)
 *   SMTOS_ADMIT                      accept-queue admission control
 *                                    (AdmitParams syntax)
 *   SMTOS_FIDELITY                   execution fidelity
 *                                    ("detailed" | "functional")
 *   SMTOS_SAMPLE                     SMARTS sampled measurement
 *                                    (SampleParams syntax)
 *   SMTOS_CORES                      CMP width (TopologyConfig.cores;
 *                                    applies when the config left it
 *                                    at the single-core default)
 *   SMTOS_PROFILE, SMTOS_INTERVAL, SMTOS_INTERVAL_JSONL,
 *   SMTOS_INTERVAL_CSV, SMTOS_TIMELINE, SMTOS_TIMELINE_DETAIL,
 *   SMTOS_REQTRACE, SMTOS_REQTRACE_FILE
 *                                    observability sinks (ObsConfig)
 */

#ifndef SMTOS_HARNESS_ENV_H
#define SMTOS_HARNESS_ENV_H

#include <cstdint>
#include <functional>
#include <string>

#include "fault/fault.h"
#include "harness/sample.h"
#include "kernel/admission.h"
#include "net/clients.h"
#include "obs/session.h"

namespace smtos {

/** Everything the SMTOS_* environment can override. */
struct EnvOverrides
{
    ObsConfig obs;            ///< obs.any() == false when unset
    FaultParams faults{};
    bool hasFaults = false;   ///< SMTOS_FAULTS was present
    OpenLoopParams openLoop{};
    bool hasOpenLoop = false; ///< SMTOS_OPENLOOP was present
    AdmitParams admit{};
    bool hasAdmit = false;    ///< SMTOS_ADMIT was present
    Fidelity fidelity = Fidelity::Detailed;
    bool hasFidelity = false; ///< SMTOS_FIDELITY was present
    SampleParams sample{};
    bool hasSample = false;   ///< SMTOS_SAMPLE was present
    int cores = 0;            ///< CMP width override
    bool hasCores = false;    ///< SMTOS_CORES was present
    unsigned jobs = 0;        ///< 0: unset
    std::string diagDir;
    bool hasDiagDir = false;
    std::uint32_t traceMask = 0;
    bool hasTraceMask = false;
    std::string traceFile;

    /** Variable lookup: returns the value or nullptr (like getenv). */
    using Lookup = std::function<const char *(const char *)>;

    /** Parse from an arbitrary lookup (unit-testable, no getenv). */
    static EnvOverrides fromLookup(const Lookup &get);

    /** Parse from the real process environment. */
    static EnvOverrides fromEnvironment();

    /**
     * Apply process-wide settings (trace, diag dir, default jobs) and
     * publish this object as the ambient defaults (see ambient()).
     */
    void install() const;

    /**
     * The last installed overrides. Defaults to an empty object when
     * nothing was installed, so library behavior without a main()
     * calling install() is "no environment".
     */
    static const EnvOverrides &ambient();
};

} // namespace smtos

#endif // SMTOS_HARNESS_ENV_H
