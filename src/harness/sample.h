/**
 * @file
 * SMARTS-style sampled simulation driver (DESIGN.md §15).
 *
 * Systematic interval sampling over the switchable-fidelity core:
 * fast-forward functionally (warming caches, TLBs and the branch
 * predictor), run a detailed warm-up whose metrics are discarded
 * (timing structures refill), then measure one detailed interval;
 * repeat until the instruction budget is spent. Per-metric confidence
 * intervals come from the variance across intervals, so every sampled
 * estimate carries its own error bound.
 */

#ifndef SMTOS_HARNESS_SAMPLE_H
#define SMTOS_HARNESS_SAMPLE_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace smtos {

class System;

/** Sampling-regime knobs (SMTOS_SAMPLE syntax: comma-separated
 *  key=value out of period=, warm=, interval=, conf=). */
struct SampleParams
{
    bool enabled = false;
    /** Instructions per sampling period: functional fast-forward +
     *  detailed warm-up + detailed measured interval. */
    std::uint64_t periodInstrs = 50'000;
    /** Detailed warm-up instructions discarded before each interval
     *  (refills pipeline/MSHR/store-buffer timing state). */
    std::uint64_t warmInstrs = 3'000;
    /** Measured detailed instructions per interval. */
    std::uint64_t intervalInstrs = 2'000;
    /** Two-sided confidence level of the reported half-widths;
     *  quantized to the 0.90 / 0.95 / 0.99 z ladder. */
    double confidence = 0.95;

    /** Parse "period=50000,warm=3000,interval=2000,conf=0.95"; every
     *  key optional, enabled set true. Fatal on malformed input. */
    static SampleParams fromString(const std::string &s);
};

/** A sampled metric: mean over intervals ± CI half-width. */
struct SampleEstimate
{
    double mean = 0.0;
    double halfWidth = 0.0;
};

/** Result of one sampled measurement phase. */
struct SampleReport
{
    bool enabled = false;
    int intervals = 0;       ///< measured detailed intervals
    double confidence = 0.95;

    SampleEstimate cpi;      ///< cycles per instruction
    SampleEstimate ipc;      ///< instructions per cycle
    SampleEstimate userPct;  ///< retired-mode shares (percent)
    SampleEstimate kernelPct;
    SampleEstimate palPct;
    SampleEstimate idlePct;

    std::uint64_t functionalInstrs = 0; ///< fast-forwarded
    Cycle functionalCycles = 0;
    std::uint64_t detailedInstrs = 0;   ///< warm-up + measured
    Cycle detailedCycles = 0;

    std::vector<double> intervalCpi;    ///< raw per-interval CPI
};

/** z-score of a two-sided confidence level (0.90/0.95/0.99 ladder). */
double confidenceZ(double confidence);

/**
 * Run one sampled measurement of @p totalInstrs retired instructions
 * on @p sys (already started and past any startup phase). Leaves the
 * pipeline in Detailed fidelity. Functional fast-forward legs keep an
 * attached co-simulation oracle engaged — every retired instruction,
 * sampled or skipped, is still RefCore-checked.
 */
SampleReport runSampledMeasurement(System &sys, const SampleParams &p,
                                   std::uint64_t totalInstrs);

} // namespace smtos

#endif // SMTOS_HARNESS_SAMPLE_H
