#include "harness/parallel.h"

#include <atomic>
#include <cstdlib>
#include <thread>

namespace smtos {

namespace {
unsigned configuredJobs = 0;
} // namespace

void
setDefaultJobs(unsigned jobs)
{
    configuredJobs = jobs;
}

unsigned
defaultJobs()
{
    if (configuredJobs >= 1)
        return configuredJobs;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

void
parallelFor(std::size_t n, const std::function<void(std::size_t)> &body,
            unsigned jobs)
{
    if (jobs == 0)
        jobs = defaultJobs();
    if (n <= 1 || jobs <= 1) {
        for (std::size_t i = 0; i < n; ++i)
            body(i);
        return;
    }
    if (jobs > n)
        jobs = static_cast<unsigned>(n);

    std::atomic<std::size_t> next{0};
    auto worker = [&] {
        for (;;) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= n)
                return;
            body(i);
        }
    };
    std::vector<std::thread> pool;
    pool.reserve(jobs - 1);
    for (unsigned t = 1; t < jobs; ++t)
        pool.emplace_back(worker);
    worker(); // the calling thread is worker 0
    for (std::thread &t : pool)
        t.join();
}

std::vector<RunResult>
runSessions(const std::vector<Session::Config> &cfgs, unsigned jobs)
{
    std::vector<RunResult> results(cfgs.size());
    parallelFor(
        cfgs.size(),
        [&](std::size_t i) { results[i] = Session(cfgs[i]).run(); },
        jobs);
    return results;
}

} // namespace smtos
