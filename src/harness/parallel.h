/**
 * @file
 * Parallel experiment runner.
 *
 * Simulated systems are single-threaded by design, but a sweep (a
 * bench over context counts, a fault-rate grid, a fuzzer over seeds)
 * is embarrassingly parallel: every Session builds its own System,
 * PhysMem, and workload, so runs share no mutable state. This runner
 * executes a batch of configs on a small thread pool, one complete
 * experiment per task, and returns results in config order — output
 * ordering is deterministic regardless of which run finishes first.
 *
 * Per-run global state (the trace cycle clock, the crash hook, the
 * diagnostics arming) is thread-local, so concurrent runs neither
 * corrupt each other's trace prefixes nor dump the wrong system on a
 * panic. Each run's results are bit-identical to running it alone.
 */

#ifndef SMTOS_HARNESS_PARALLEL_H
#define SMTOS_HARNESS_PARALLEL_H

#include <cstddef>
#include <functional>
#include <vector>

#include "harness/session.h"

namespace smtos {

/**
 * Set the worker count used when a caller passes jobs = 0
 * (EnvOverrides::install applies SMTOS_JOBS here; 0 resets to the
 * hardware-concurrency default).
 */
void setDefaultJobs(unsigned jobs);

/**
 * Worker count used when a caller passes jobs = 0: the configured
 * default when set, else the host's hardware concurrency, else 1.
 */
unsigned defaultJobs();

/**
 * Invoke @p body(i) for every i in [0, n) on @p jobs worker threads
 * (0 = defaultJobs()). Indices are handed out atomically; with one
 * job (or n <= 1) everything runs on the calling thread. @p body must
 * be safe to call concurrently for distinct indices. Exceptions
 * escaping @p body are fatal (the simulator's error model is
 * panic/abort, not unwinding).
 */
void parallelFor(std::size_t n, const std::function<void(std::size_t)> &body,
                 unsigned jobs = 0);

/**
 * Run every configuration (each in its own Session) and return the
 * results in the same order. @p jobs as in parallelFor.
 */
std::vector<RunResult> runSessions(const std::vector<Session::Config> &cfgs,
                                   unsigned jobs = 0);

} // namespace smtos

#endif // SMTOS_HARNESS_PARALLEL_H
