/**
 * @file
 * Snapshot-once, sweep-many: the fork-based sweep engine.
 *
 * A sweep group runs the (expensive, config-independent) start-up
 * phase exactly once on a base Session, snapshots it, and fans the
 * measurement points out over the parallel runner — every point
 * resumes its own private machine from the shared artifact and runs
 * only its measurement phase. Points vary anything ResumeOptions can
 * express: phase lengths, observability sinks, co-simulation, and the
 * policy-only knobs (fetch policy, scheduler affinity, TLB-IPR
 * sharing, host fast path).
 *
 * Anything structural (topology — core count and contexts per core —
 * workload, fault plan, seed) needs its own group: group keys are
 * exactly "what start-up state can be shared". Results come back in point order, bit-identical to
 * running each point's start-up from scratch under the base config.
 */

#ifndef SMTOS_HARNESS_SWEEP_H
#define SMTOS_HARNESS_SWEEP_H

#include <string>
#include <vector>

#include "harness/session.h"

namespace smtos {

/** One measurement point resumed from the group's shared snapshot. */
struct SweepPoint
{
    std::string label;
    Session::ResumeOptions opts;
};

/** One start-up phase shared by many measurement points. */
struct SweepGroup
{
    Session::Config base;
    std::vector<SweepPoint> points;
};

/**
 * Run one group: startup once, snapshot, resume every point in
 * parallel (jobs as in parallelFor). Returns measurement results in
 * point order.
 */
std::vector<RunResult> runSweep(const SweepGroup &group,
                                unsigned jobs = 0);

/** Run several groups back to back; results in group, point order. */
std::vector<std::vector<RunResult>>
runSweepGroups(const std::vector<SweepGroup> &groups, unsigned jobs = 0);

} // namespace smtos

#endif // SMTOS_HARNESS_SWEEP_H
