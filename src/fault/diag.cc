#include "fault/diag.h"

#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "common/logging.h"
#include "common/trace.h"
#include "fault/fault.h"
#include "sim/system.h"

namespace smtos {

namespace {

// Thread-local so every parallel-runner worker can arm diagnostics
// for its own experiment; the crash hook is thread-local too.
thread_local System *armedSys = nullptr;
thread_local FaultPlan *armedPlan = nullptr;
thread_local bool writing = false;

void
crashHookTrampoline(const char *reason)
{
    diagWriteBundle(reason);
}

} // namespace

void
diagArm(System *sys, FaultPlan *plan)
{
    armedSys = sys;
    armedPlan = plan;
    setCrashHook(sys ? &crashHookTrampoline : nullptr);
}

namespace {
std::string configuredDiagDir = "smtos-diag";
} // namespace

void
diagSetDir(const std::string &dir)
{
    configuredDiagDir = dir.empty() ? "smtos-diag" : dir;
}

std::string
diagDir()
{
    return configuredDiagDir;
}

std::string
diagWriteBundle(const char *reason)
{
    if (!armedSys || writing)
        return {};
    writing = true;
    const std::string dir = diagDir();
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) {
        writing = false;
        return {};
    }
    {
        std::ofstream os(dir + "/crash.txt");
        os << (reason ? reason : "(no reason)") << "\n";
    }
    {
        std::ofstream os(dir + "/contexts.txt");
        armedSys->pipeline().dumpState(os);
        os << "\n";
        armedSys->kernel().dumpState(os);
    }
    if (armedPlan) {
        std::ofstream os(dir + "/faultlog.txt");
        armedPlan->writeLog(os);
    }
    {
        std::ofstream os(dir + "/ring.txt");
        Trace::dumpRing(os);
    }
    smtos_inform("diagnostics bundle written to %s/", dir.c_str());
    writing = false;
    return dir;
}

} // namespace smtos
