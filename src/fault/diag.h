/**
 * @file
 * Crash-diagnostics bundle.
 *
 * When a panic, failed SMTOS_CHECK, or invariant-audit violation fires
 * while a System is armed, the process writes a small directory of
 * post-mortem state before aborting instead of dying bare: the reason,
 * full per-context architectural state, kernel scheduler/connection
 * state, the fault-injection log, and the recent trace ring. The
 * directory comes from SMTOS_DIAG_DIR (default "smtos-diag").
 */

#ifndef SMTOS_FAULT_DIAG_H
#define SMTOS_FAULT_DIAG_H

#include <string>

namespace smtos {

class FaultPlan;
class System;

/**
 * Arm the bundle for @p sys (and optionally its fault @p plan) and
 * register the logging crash hook. Pass (nullptr, nullptr) to disarm
 * when the System is about to be destroyed.
 */
void diagArm(System *sys, FaultPlan *plan);

/**
 * Set the bundle directory (EnvOverrides::install applies the
 * SMTOS_DIAG_DIR value here; empty restores the default).
 */
void diagSetDir(const std::string &dir);

/** Directory the next bundle lands in (default "smtos-diag"). */
std::string diagDir();

/**
 * Write the bundle now. Returns the directory written, or an empty
 * string when disarmed, reentered, or the directory is not writable.
 */
std::string diagWriteBundle(const char *reason);

} // namespace smtos

#endif // SMTOS_FAULT_DIAG_H
