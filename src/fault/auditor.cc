#include "fault/auditor.h"

#include <sstream>

#include "common/logging.h"
#include "mem/hierarchy.h"
#include "sim/system.h"

namespace smtos {

InvariantAuditor::InvariantAuditor(System &sys, Cycle every)
    : sys_(sys), every_(every ? every : 1), nextAt_(every_)
{
}

void
InvariantAuditor::maybeCheck(Cycle now)
{
    if (now < nextAt_)
        return;
    nextAt_ = now + every_;
    ++checks_;
    const std::string report = checkNow();
    if (!report.empty())
        smtos_panic("invariant audit failed at cycle %llu:\n%s",
                    static_cast<unsigned long long>(now),
                    report.c_str());
}

std::string
InvariantAuditor::checkNow() const
{
    std::ostringstream os;
    os << sys_.pipeline().auditInvariants();
    os << sys_.kernel().auditInvariants();

    const Cycle now = sys_.pipeline().now();
    const Hierarchy &h = sys_.hierarchy();
    const int l1 = h.l1Mshr().outstanding(now);
    if (l1 < 0 || l1 > h.l1Mshr().size())
        os << "L1 MSHR outstanding " << l1 << " outside [0, "
           << h.l1Mshr().size() << "]\n";
    const int l2 = h.l2Mshr().outstanding(now);
    if (l2 < 0 || l2 > h.l2Mshr().size())
        os << "L2 MSHR outstanding " << l2 << " outside [0, "
           << h.l2Mshr().size() << "]\n";
    const int sb = h.storeBuffer().occupancy(now);
    if (sb < 0 || sb > h.storeBuffer().size())
        os << "store buffer occupancy " << sb << " outside [0, "
           << h.storeBuffer().size() << "]\n";
    return os.str();
}

} // namespace smtos
