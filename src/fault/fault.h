/**
 * @file
 * Deterministic, seeded fault injection.
 *
 * A FaultPlan is the single authority for every injected perturbation:
 * packet loss/latency/reordering and NIC-interrupt suppression on the
 * link, transient cache/TLB corruption surfaced as machine-check
 * traps, and connection-table/listen-queue exhaustion. The plan draws
 * from its own RNG streams (never the workload's), so for a given
 * FaultParams the fault schedule is bit-reproducible and independent
 * of workload randomness; the machine-check schedule is additionally
 * purely time-based, so it does not shift when the workload changes.
 *
 * When no plan is attached — or when a plan with every rate at zero is
 * attached — no fault RNG is ever drawn and no simulation behavior
 * changes: runs are bit-identical to a build without the subsystem.
 * Every injected event is appended to a bounded in-run fault log that
 * the crash-diagnostics bundle and the determinism tests consume.
 */

#ifndef SMTOS_FAULT_FAULT_H
#define SMTOS_FAULT_FAULT_H

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "snap/fwd.h"

namespace smtos {

/** Configuration of one run's fault injection (all off by default). */
struct FaultParams
{
    /** Seed of the plan's private RNG streams. */
    std::uint64_t seed = 0xfa171ull;

    // --- link faults (applied per packet, both directions) ---
    double lossPct = 0.0;     ///< drop probability in [0, 1]
    double reorderPct = 0.0;  ///< swap-with-predecessor probability
    Cycle delayMin = 0;       ///< extra link latency lower bound
    Cycle delayMax = 0;       ///< upper bound (0 = no delay faults)
    double nicDropPct = 0.0;  ///< NIC interrupt suppression probability

    // --- transient hardware corruption (machine checks) ---
    /** Mean cycles between machine-check injections (0 = off). */
    Cycle mcePeriod = 0;
    /** Consecutive machine checks a process survives before the
     *  kernel gives up retrying and kills it. */
    int mceRetryLimit = 3;
    /**
     * Test-only: corrupt architectural register state silently
     * instead of raising the machine-check trap, modeling a broken
     * recovery path. The co-simulation oracle must catch this.
     */
    bool mceBreakRecovery = false;

    // --- kernel resource exhaustion ---
    int connTableSize = 0;  ///< override the connection table (0 = default)
    int listenBacklog = 0;  ///< cap the accept queue depth (0 = unbounded)

    // --- structural auditing ---
    Cycle auditEvery = 0;   ///< invariant audit period (0 = off)

    /** True when any injection, override, or audit is configured. */
    bool any() const;

    /**
     * Parse "key=value,key=value" (the SMTOS_FAULTS syntax; the value
     * reaches this function through EnvOverrides, never getenv):
     *   seed, loss, reorder, delay (min:max or single value), nicdrop,
     *   mce, mceretry, breakrecovery, conntable, backlog, audit.
     * Unknown keys are a fatal configuration error.
     */
    static FaultParams fromString(const std::string &spec);
};

/** What one fault-log entry records. */
enum class FaultKind : std::uint8_t
{
    PktLoss = 0,  ///< a = direction (0 to-server), b = client
    PktDelay,     ///< a = direction, b = extra cycles
    PktReorder,   ///< a = direction, b = client
    NicIntrDrop,  ///< a = ring depth at the suppressed interrupt
    MceTlb,       ///< a = context, b = invalidated DTLB index
    MceCache,     ///< a = context, b = invalidated L1D line index
    MceSilent,    ///< broken-recovery corruption; a = context
    MceKill,      ///< a = pid killed after exceeding the retry limit
    SynDrop,      ///< connection table full; a = client
    BacklogDrop,  ///< accept queue full; a = client
};

constexpr int numFaultKinds = static_cast<int>(FaultKind::BacklogDrop) + 1;

/** Stable lower-case name ("pkt_loss", "mce_tlb", ...). */
const char *faultKindName(FaultKind k);

/** One injected fault. */
struct FaultEvent
{
    Cycle cycle = 0;
    FaultKind kind = FaultKind::PktLoss;
    std::uint64_t a = 0;
    std::uint64_t b = 0;
};

/**
 * Fault and robustness counters captured into MetricsSnapshot.
 * Injection counters come from the plan; the backpressure and
 * client-recovery counters come from the kernel and the client
 * population (they count reactions, not injections).
 */
struct FaultCounters
{
    std::uint64_t pktLost = 0;
    std::uint64_t pktDelayed = 0;
    std::uint64_t pktReordered = 0;
    std::uint64_t nicIntrDrops = 0;
    std::uint64_t mceRaised = 0;
    std::uint64_t mceKills = 0;
    std::uint64_t synDrops = 0;
    std::uint64_t backlogDrops = 0;
    std::uint64_t retransmits = 0;
    std::uint64_t clientAborts = 0;

    /** Counter-wise difference (this minus @p e). */
    FaultCounters delta(const FaultCounters &e) const;

    bool operator==(const FaultCounters &o) const;

    std::uint64_t
    total() const
    {
        return pktLost + pktDelayed + pktReordered + nicIntrDrops +
               mceRaised + mceKills + synDrops + backlogDrops +
               retransmits + clientAborts;
    }
};

/** One run's fault schedule, decision source, and event log. */
class FaultPlan
{
  public:
    explicit FaultPlan(const FaultParams &p);

    const FaultParams &params() const { return p_; }

    /** Any per-packet link fault configured. */
    bool
    linkFaultsOn() const
    {
        return p_.lossPct > 0.0 || p_.reorderPct > 0.0 ||
               p_.delayMax > 0;
    }

    /** Any fault the clients should run their recovery layer for. */
    bool
    recoveryNeeded() const
    {
        return linkFaultsOn() || p_.nicDropPct > 0.0 ||
               p_.connTableSize > 0 || p_.listenBacklog > 0;
    }

    // --- per-packet link draws (link RNG stream) ---
    bool
    drawLoss()
    {
        return p_.lossPct > 0.0 && rngLink_.chance(p_.lossPct);
    }

    Cycle
    drawDelay()
    {
        if (p_.delayMax == 0)
            return 0;
        return static_cast<Cycle>(rngLink_.range(
            static_cast<std::int64_t>(p_.delayMin),
            static_cast<std::int64_t>(p_.delayMax)));
    }

    bool
    drawReorder()
    {
        return p_.reorderPct > 0.0 && rngLink_.chance(p_.reorderPct);
    }

    bool
    drawNicDrop()
    {
        return p_.nicDropPct > 0.0 && rngLink_.chance(p_.nicDropPct);
    }

    // --- machine-check schedule (its own RNG stream, time-based) ---
    bool mceDue(Cycle now) const
    {
        return nextMceAt_ != 0 && now >= nextMceAt_;
    }

    /** Next scheduled machine check (0: none) — for the quiescence
     *  fast-forward event horizon. */
    Cycle nextMceAt() const { return nextMceAt_; }

    /** Consume the due injection: pick a victim selector and schedule
     *  the next machine check. Call exactly once per mceDue(). */
    std::uint64_t takeMce(Cycle now);

    /** Record one injected fault (log + counters). */
    void note(Cycle cycle, FaultKind k, std::uint64_t a = 0,
              std::uint64_t b = 0);

    const std::vector<FaultEvent> &log() const { return log_; }
    std::uint64_t logOverflow() const { return logOverflow_; }

    /** Render the full fault log as text (one line per event). */
    void writeLog(std::ostream &os) const;
    std::string logText() const;

    /** Injection counters only (the kernel merges in the rest). */
    const FaultCounters &injected() const { return c_; }

    static constexpr std::uint32_t snapVersion = 1;
    void save(Snapshotter &sp) const;
    void load(Restorer &rs);

  private:
    FaultParams p_;
    Rng rngLink_;
    Rng rngMce_;
    Cycle nextMceAt_ = 0;
    std::vector<FaultEvent> log_;
    std::uint64_t logOverflow_ = 0;
    FaultCounters c_;
};

} // namespace smtos

#endif // SMTOS_FAULT_FAULT_H
