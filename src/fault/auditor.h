/**
 * @file
 * Periodic structural invariant auditing.
 *
 * Fault injection is only trustworthy if the simulator can prove it
 * stayed structurally sane while being perturbed. The auditor walks
 * the whole machine every N cycles — pipeline window/conservation
 * accounting, MSHR and store-buffer occupancy bounds, kernel queue and
 * scheduler consistency — and on any violation writes the
 * crash-diagnostics bundle (via the panic crash hook) and aborts with
 * the full report instead of corrupting results silently.
 */

#ifndef SMTOS_FAULT_AUDITOR_H
#define SMTOS_FAULT_AUDITOR_H

#include <cstdint>
#include <string>

#include "common/types.h"

namespace smtos {

class System;

/** Every-N-cycles structural checker over one System. */
class InvariantAuditor
{
  public:
    /** Audit @p sys every @p every cycles (0 behaves as 1). */
    InvariantAuditor(System &sys, Cycle every);

    /** Kernel cycle-hook entry: audits when the period elapses and
     *  panics (after the diagnostics hook) on any violation. */
    void maybeCheck(Cycle now);

    /** Next cycle at which maybeCheck will audit (fast-forward
     *  event-horizon input — skips never jump past an audit). */
    Cycle nextCheckAt() const { return nextAt_; }

    /** Run every check immediately. Returns the violation report,
     *  empty when all invariants hold. */
    std::string checkNow() const;

    std::uint64_t checksRun() const { return checks_; }

  private:
    System &sys_;
    Cycle every_;
    Cycle nextAt_;
    std::uint64_t checks_ = 0;
};

} // namespace smtos

#endif // SMTOS_FAULT_AUDITOR_H
