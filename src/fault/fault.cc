#include "fault/fault.h"

#include <cstdlib>
#include <ostream>
#include <sstream>

#include "common/logging.h"

namespace smtos {

namespace {

/** Bound the in-memory fault log so long soaks stay cheap. */
constexpr std::size_t maxLogEvents = 1u << 16;

double
parseDouble(const std::string &key, const std::string &v)
{
    char *end = nullptr;
    const double d = std::strtod(v.c_str(), &end);
    if (end == v.c_str() || *end != '\0')
        smtos_fatal("SMTOS_FAULTS: bad value '%s' for %s", v.c_str(),
                    key.c_str());
    return d;
}

std::uint64_t
parseU64(const std::string &key, const std::string &v)
{
    char *end = nullptr;
    const std::uint64_t u = std::strtoull(v.c_str(), &end, 0);
    if (end == v.c_str() || *end != '\0')
        smtos_fatal("SMTOS_FAULTS: bad value '%s' for %s", v.c_str(),
                    key.c_str());
    return u;
}

} // namespace

bool
FaultParams::any() const
{
    return lossPct > 0.0 || reorderPct > 0.0 || delayMax > 0 ||
           nicDropPct > 0.0 || mcePeriod > 0 || mceBreakRecovery ||
           connTableSize > 0 || listenBacklog > 0 || auditEvery > 0;
}

FaultParams
FaultParams::fromString(const std::string &spec)
{
    FaultParams p;
    std::stringstream ss(spec);
    std::string item;
    while (std::getline(ss, item, ',')) {
        if (item.empty())
            continue;
        const auto eq = item.find('=');
        if (eq == std::string::npos)
            smtos_fatal("SMTOS_FAULTS: expected key=value, got '%s'",
                        item.c_str());
        const std::string key = item.substr(0, eq);
        const std::string val = item.substr(eq + 1);
        if (key == "seed") {
            p.seed = parseU64(key, val);
        } else if (key == "loss") {
            p.lossPct = parseDouble(key, val);
        } else if (key == "reorder") {
            p.reorderPct = parseDouble(key, val);
        } else if (key == "delay") {
            const auto colon = val.find(':');
            if (colon == std::string::npos) {
                p.delayMin = p.delayMax = parseU64(key, val);
            } else {
                p.delayMin = parseU64(key, val.substr(0, colon));
                p.delayMax = parseU64(key, val.substr(colon + 1));
            }
            if (p.delayMin > p.delayMax)
                smtos_fatal("SMTOS_FAULTS: delay min > max");
        } else if (key == "nicdrop") {
            p.nicDropPct = parseDouble(key, val);
        } else if (key == "mce") {
            p.mcePeriod = parseU64(key, val);
        } else if (key == "mceretry") {
            p.mceRetryLimit = static_cast<int>(parseU64(key, val));
        } else if (key == "breakrecovery") {
            p.mceBreakRecovery = parseU64(key, val) != 0;
        } else if (key == "conntable") {
            p.connTableSize = static_cast<int>(parseU64(key, val));
        } else if (key == "backlog") {
            p.listenBacklog = static_cast<int>(parseU64(key, val));
        } else if (key == "audit") {
            p.auditEvery = parseU64(key, val);
        } else {
            smtos_fatal("SMTOS_FAULTS: unknown key '%s'", key.c_str());
        }
    }
    return p;
}

const char *
faultKindName(FaultKind k)
{
    switch (k) {
      case FaultKind::PktLoss:     return "pkt_loss";
      case FaultKind::PktDelay:    return "pkt_delay";
      case FaultKind::PktReorder:  return "pkt_reorder";
      case FaultKind::NicIntrDrop: return "nic_intr_drop";
      case FaultKind::MceTlb:      return "mce_tlb";
      case FaultKind::MceCache:    return "mce_cache";
      case FaultKind::MceSilent:   return "mce_silent";
      case FaultKind::MceKill:     return "mce_kill";
      case FaultKind::SynDrop:     return "syn_drop";
      case FaultKind::BacklogDrop: return "backlog_drop";
    }
    return "?";
}

FaultCounters
FaultCounters::delta(const FaultCounters &e) const
{
    FaultCounters d;
    d.pktLost = pktLost - e.pktLost;
    d.pktDelayed = pktDelayed - e.pktDelayed;
    d.pktReordered = pktReordered - e.pktReordered;
    d.nicIntrDrops = nicIntrDrops - e.nicIntrDrops;
    d.mceRaised = mceRaised - e.mceRaised;
    d.mceKills = mceKills - e.mceKills;
    d.synDrops = synDrops - e.synDrops;
    d.backlogDrops = backlogDrops - e.backlogDrops;
    d.retransmits = retransmits - e.retransmits;
    d.clientAborts = clientAborts - e.clientAborts;
    return d;
}

bool
FaultCounters::operator==(const FaultCounters &o) const
{
    return pktLost == o.pktLost && pktDelayed == o.pktDelayed &&
           pktReordered == o.pktReordered &&
           nicIntrDrops == o.nicIntrDrops &&
           mceRaised == o.mceRaised && mceKills == o.mceKills &&
           synDrops == o.synDrops && backlogDrops == o.backlogDrops &&
           retransmits == o.retransmits &&
           clientAborts == o.clientAborts;
}

FaultPlan::FaultPlan(const FaultParams &p)
    : p_(p), rngLink_(mixHash(p.seed, 0x11aaull)),
      rngMce_(mixHash(p.seed, 0x22bbull))
{
    if (p_.mcePeriod > 0) {
        // First injection somewhere in [period/2, 3*period/2); the
        // schedule only ever consumes the dedicated MCE stream, so it
        // is a pure function of (seed, period) — independent of both
        // the workload and the link fault stream.
        nextMceAt_ = p_.mcePeriod / 2 + 1 +
                     static_cast<Cycle>(rngMce_.below(p_.mcePeriod));
    }
}

std::uint64_t
FaultPlan::takeMce(Cycle now)
{
    (void)now;
    const std::uint64_t pick = rngMce_.next();
    nextMceAt_ += p_.mcePeriod / 2 + 1 +
                  static_cast<Cycle>(rngMce_.below(p_.mcePeriod));
    return pick;
}

void
FaultPlan::note(Cycle cycle, FaultKind k, std::uint64_t a,
                std::uint64_t b)
{
    switch (k) {
      case FaultKind::PktLoss:     ++c_.pktLost; break;
      case FaultKind::PktDelay:    ++c_.pktDelayed; break;
      case FaultKind::PktReorder:  ++c_.pktReordered; break;
      case FaultKind::NicIntrDrop: ++c_.nicIntrDrops; break;
      case FaultKind::MceTlb:
      case FaultKind::MceCache:
      case FaultKind::MceSilent:   ++c_.mceRaised; break;
      case FaultKind::MceKill:     ++c_.mceKills; break;
      case FaultKind::SynDrop:     ++c_.synDrops; break;
      case FaultKind::BacklogDrop: ++c_.backlogDrops; break;
    }
    if (log_.size() >= maxLogEvents) {
        ++logOverflow_;
        return;
    }
    log_.push_back(FaultEvent{cycle, k, a, b});
}

void
FaultPlan::writeLog(std::ostream &os) const
{
    for (const FaultEvent &e : log_)
        os << e.cycle << " " << faultKindName(e.kind) << " " << e.a
           << " " << e.b << "\n";
    if (logOverflow_ > 0)
        os << "# " << logOverflow_ << " events beyond the "
           << maxLogEvents << "-entry log cap\n";
}

std::string
FaultPlan::logText() const
{
    std::ostringstream os;
    writeLog(os);
    return os.str();
}

} // namespace smtos
