/**
 * @file
 * The functional (warming-only) execution engine — Fidelity::Functional
 * half of the switchable-fidelity core (DESIGN.md §15).
 *
 * Executes the same architectural semantics as the detailed SMT
 * pipeline — cursor stepping, TLB traps, serializing hand-offs to the
 * OS, interrupt delivery — while updating caches, TLBs and the branch
 * predictor exactly as the detailed core's correct path would, but
 * composing no timing: no uops, no issue queues, no MSHR/bus/DRAM
 * latency arithmetic. One functional cycle retires up to a fetch-width
 * batch of instructions, so the clock keeps advancing (the kernel's
 * timer and scheduler stay live) at a fraction of the detailed cycle
 * count per instruction.
 *
 * The retired-instruction stream carries the full RetireEvent contract
 * (seq, pc, mode, tag, vaddr, destValue, thread-state syncs), so the
 * RefCore co-simulation oracle validates functional execution exactly
 * as it validates detailed execution, and a functional→detailed switch
 * hands over state the oracle has already checked.
 */

#include "core/pipeline.h"

#include "common/logging.h"
#include "common/trace.h"
#include "kernel/tags.h"
#include "ref/refvalue.h"

namespace smtos {

void
Pipeline::setFidelity(Fidelity f)
{
    if (f == fidelity_)
        return;
    if (f == Fidelity::Functional) {
        // Hand over from committed architectural state only: run the
        // detailed machine with fetch suppressed until every in-flight
        // uop has resolved (mispredicts squash, serializing heads
        // commit through the OS, traps vector). After the drain there
        // are no wrong-path cursors and no checkpoints to lose.
        drainForFidelitySwitch();
    }
    // Functional → Detailed needs no work: the functional engine
    // leaves nothing in flight, and the detailed fetch stage resets
    // its per-cycle line tracking itself.
    fidelity_ = f;
    ++fidelitySwitches_;
    smtos_trace(TraceCat::Fetch, "fidelity -> %s", fidelityName(f));
}

void
Pipeline::restoreFidelity(Fidelity f, std::uint64_t instrs, Cycle cycles,
                          std::uint64_t switches)
{
    if (f == Fidelity::Functional)
        for (const Context &c : ctxs_)
            smtos_assert(c.inflight == 0);
    fidelity_ = f;
    funcInstrs_ = instrs;
    funcCycles_ = cycles;
    fidelitySwitches_ = switches;
}

void
Pipeline::drainForFidelitySwitch()
{
    auto any_inflight = [this]() {
        for (const Context &c : ctxs_)
            if (c.inflight != 0)
                return true;
        return false;
    };
    if (!any_inflight())
        return;
    smtos_assert(!draining_);
    draining_ = true;
    const Cycle t0 = now_;
    while (any_inflight()) {
        cycle();
        if (now_ - t0 > 400000) {
            smtos_panic("fidelity switch: drain made no progress for "
                        "400k cycles (cycle %llu)",
                        static_cast<unsigned long long>(now_));
        }
    }
    draining_ = false;
}

void
Pipeline::funcCycle()
{
    ++now_;
    ++stats_.cycles;
    ++funcCycles_;
    if (probes_)
        probes_->onFunctionalCycle(now_);
    if (os_)
        os_->cycleHook(now_);

    // Deliver pending interrupts first — every context is drained by
    // construction, so delivery mirrors the detailed commit stage's
    // drained-context path. Also reset the per-cycle fetch-line
    // tracking, as the detailed fetch stage does each cycle, so the
    // L1I sees the same one-access-per-line-per-cycle warming rate.
    for (Context &c : ctxs_) {
        c.lastFetchLine = ~0ull;
        if (c.interruptPending && c.hasThread()) {
            c.interruptPending = false;
            stats_.kernelEntries.add("interrupt");
            ThreadState &t = *c.thread;
            os_->interrupt(c, t, c.interruptVector);
            if (obs_) {
                obs_->onThreadStateSync(t, *seqPtr_);
                if (c.thread && c.thread != &t)
                    obs_->onThreadStateSync(*c.thread, *seqPtr_);
            }
        }
    }

    // Execute up to a fetch-width batch, round-robined across
    // contexts from a clock-derived start (stateless rotation, so a
    // snapshot/restore cannot skew fairness).
    const int nc = static_cast<int>(ctxs_.size());
    const int start = static_cast<int>(now_ % static_cast<Cycle>(nc));
    int budget = params_.fetchWidth;
    for (int k = 0; k < nc && budget > 0; ++k) {
        Context &c = ctxs_[static_cast<size_t>((start + k) % nc)];
        if (!c.hasThread())
            continue;
        while (budget > 0) {
            const int r = funcStep(c);
            if (r == 0)
                break;
            --budget;
            if (r == 2)
                break;
        }
    }
}

int
Pipeline::funcStep(Context &c)
{
    ThreadState &t = *c.thread;
    const ImageSet is = imagesFor(t);
    Cursor &cur = t.cursor;
    if (!cur.valid() || cur.stuck())
        return 0;

    // Derive mode, PC and the instruction from ONE block lookup. This
    // is the engine's per-instruction critical path; the generic
    // cursor accessors would each redo the function/block indexing.
    const CallFrame &topf = cur.top();
    const CodeImage &img = topf.inKernel ? *is.kernel : *is.user;
    const Mode cursor_mode =
        !topf.inKernel ? Mode::User
                       : (img.palOf(topf.func) ? Mode::Pal
                                               : Mode::Kernel);
    const Mode stat_mode =
        (t.isIdleThread && cursor_mode != Mode::User) ? Mode::Idle
                                                      : cursor_mode;
    const BasicBlock &bb = img.block(topf.func, topf.block);
    const std::uint32_t flat =
        bb.firstInstr + static_cast<std::uint32_t>(topf.instrIdx);
    const Addr pc =
        img.textBase() + static_cast<Addr>(flat) * instrBytes;

    // ITLB translation + L1I warming, one access per line per cycle
    // (the detailed front end's discipline, minus the miss timing).
    const Addr line = hier_->l1i().blockOf(pc);
    if (line != c.lastFetchLine) {
        Addr paddr = 0;
        AccessInfo who{t.id, cursor_mode, c.id};
        if (cursor_mode == Mode::Pal ||
            (cursor_mode != Mode::User && pc >= kernelBase)) {
            // KSEG: physical fetch, no ITLB involvement.
            paddr = pc - kernelBase;
        } else {
            const Addr vpn = pageOf(pc);
            const Asn asn = t.space->asn();
            const std::int64_t frame = itlb_.lookup(vpn, asn, who);
            if (frame >= 0) {
                paddr = PhysMem::frameAddr(static_cast<Frame>(frame)) +
                        pageOffset(pc);
            } else if (appOnlyTlb_) {
                paddr = os_->magicTranslate(t, pc, true);
                itlb_.insert(vpn, asn, paddr >> pageShift, who,
                             pc >= kernelBase);
            } else {
                // Software-managed refill, same trap path as the
                // detailed core; the handler's instructions execute
                // on this context's next step.
                stats_.kernelEntries.add("itlb_miss");
                os_->itlbMiss(t, pc);
                if (obs_)
                    obs_->onThreadStateSync(t, *seqPtr_);
                return 2;
            }
        }
        hier_->warmFetch(paddr, who);
        c.lastFetchLine = line;
    }

    const Instr &in = img.instrAtFlat(flat);
    const std::int16_t tag =
        topf.inKernel ? kernelImage_->tagOf(topf.func)
                      : std::int16_t{-1};

    Addr vaddr = 0;
    Addr paddr = 0;
    bool is_cond = false;
    bool actual_taken = false;
    const bool serializing = in.isSerializing();

    if (serializing) {
        // Retire accounting below, then hand to the OS (which steps
        // the cursor past this instruction itself).
    } else if (in.isBranch()) {
        // Warm predictor/BTB/RAS exactly as the detailed correct path
        // does. mcf_.predict() is skipped: it reads tables without
        // updating them, so it has no warming effect.
        AccessInfo who{t.id, cursor_mode, c.id};
        const bool filtered = filterPrivBr_ && cursor_mode != Mode::User;
        BranchPreview bp = cur.previewBranch(is, t.iprs);
        switch (bp.kind) {
          case BranchPreview::Kind::Cond:
            is_cond = true;
            actual_taken = bp.taken;
            if (!filtered) {
                btb_.lookup(pc, who);
                mcf_.train(pc, bp.taken);
                if (bp.taken)
                    btb_.update(pc, bp.targetPc, who);
            }
            cur.followBranch(is, bp, bp.taken);
            break;
          case BranchPreview::Kind::Jump:
            if (!filtered) {
                btb_.lookup(pc, who);
                btb_.update(pc, bp.targetPc, who);
            }
            cur.followBranch(is, bp, true);
            break;
          case BranchPreview::Kind::Indirect: {
            actual_taken = true;
            if (!filtered) {
                BtbResult br = btb_.lookup(pc, who);
                if (br.hit && br.target != bp.targetPc)
                    btb_.noteWrongTarget();
                btb_.update(pc, bp.targetPc, who);
            }
            cur.followBranch(is, bp, true);
            break;
          }
          case BranchPreview::Kind::Call:
            if (!filtered) {
                btb_.lookup(pc, who);
                btb_.update(pc, bp.targetPc, who);
            }
            cur.followBranch(is, bp, true);
            if (!cur.stuck())
                c.ras.push(cur.parentPc(is));
            break;
          case BranchPreview::Kind::Ret:
          case BranchPreview::Kind::PalRet:
            c.ras.pop();
            cur.followBranch(is, bp, true);
            break;
        }
    } else {
        if (in.isMem()) {
            if (!cur.takeRetryVaddr(vaddr))
                vaddr = cur.memAddress(in, t.regions, t.iprs);
            AccessInfo who{t.id,
                           stat_mode == Mode::Idle ? Mode::Kernel
                                                   : stat_mode,
                           c.id};
            if (in.isPhysMem()) {
                paddr = vaddr;
            } else {
                const std::int64_t fr =
                    dtlb_.lookup(pageOf(vaddr), t.space->asn(), who);
                if (fr >= 0) {
                    paddr = PhysMem::frameAddr(static_cast<Frame>(fr)) +
                            pageOffset(vaddr);
                } else if (appOnlyTlb_) {
                    paddr = os_->magicTranslate(t, vaddr, false);
                    dtlb_.insert(pageOf(vaddr), t.space->asn(),
                                 paddr >> pageShift, who,
                                 vaddr >= kernelBase);
                } else {
                    // Precise trap with replay: the cursor has drawn
                    // the address, so arm it to retry the same one —
                    // the functional twin of the detailed core's
                    // post-draw checkpoint restore (same RNG state,
                    // same replayed address).
                    cur.setRetryVaddr(vaddr);
                    stats_.kernelEntries.add("dtlb_miss");
                    smtos_trace(TraceCat::Tlb,
                                "ctx%d dtlb miss vaddr=0x%llx", c.id,
                                (unsigned long long)vaddr);
                    os_->dtlbMiss(t, vaddr);
                    if (obs_)
                        obs_->onThreadStateSync(t, *seqPtr_);
                    return 2;
                }
            }
            hier_->warmData(paddr, who, in.isStore());
        }
        cur.stepSequential(is);
    }

    // Retire accounting, mirroring commitUop minus the timing
    // structures (no rename registers, store buffer, or probes slot
    // attribution). fetched/issued advance with retired so the
    // conservation invariant (fetched = squashed + retired + in
    // flight) holds across fidelity switches.
    ++stats_.fetched;
    ++stats_.issued;
    ++stats_.retired[static_cast<int>(stat_mode)];
    if (tag >= 0 && tag < 64)
        ++stats_.retiredByTag[tag];
    const int cls = stat_mode == Mode::User ? 0 : 1;
    ++stats_.mix[cls][static_cast<int>(in.mixClass())];
    if (in.isPhysMem())
        ++stats_.physMem[cls][in.isStore() ? 1 : 0];
    if (is_cond) {
        ++stats_.condRetired[cls];
        if (actual_taken)
            ++stats_.condTaken[cls];
    }
    cur.retired++;
    ++funcInstrs_;
    const std::uint64_t seq = (*seqPtr_)++;

    if (obs_) {
        RetireEvent e;
        e.cycle = now_;
        e.ctx = c.id;
        e.thread = t.id;
        e.seq = seq;
        e.pc = pc;
        e.instr = &in;
        e.mode = stat_mode;
        e.tag = tag;
        e.vaddr = vaddr;
        e.paddr = paddr;
        e.isCondBranch = is_cond;
        e.taken = actual_taken;
        e.destValue = archWriteValue(t.archRegs, in, pc);
        if (faultAtRetire_ != 0 &&
            stats_.totalRetired() == faultAtRetire_) {
            // Test-only: misreport this retirement so the cosim
            // oracle has a wrong result to catch.
            e.pc += instrBytes;
            faultAtRetire_ = 0;
        }
        obs_->onRetire(e);
    }
    if (probes_)
        probes_->retire(c.id, t.id, stat_mode);

    if (serializing) {
        os_->serializing(c, t, in);
        if (obs_) {
            obs_->onThreadStateSync(t, *seqPtr_);
            if (c.thread && c.thread != &t)
                obs_->onThreadStateSync(*c.thread, *seqPtr_);
        }
        return 2;
    }
    return 1;
}

} // namespace smtos
