/**
 * @file
 * The SMT out-of-order pipeline (Table 1).
 *
 * A cycle-driven model with ICOUNT-2.8 fetch from up to two contexts,
 * wrong-path fetching down mispredicted conditional branches, shared
 * issue queues / renaming registers / functional units, per-context
 * precise squash, software-managed TLB traps, and commit-time
 * serializing instructions that hand control to the OS model. The
 * superscalar baseline is the same pipeline with one context and two
 * fewer stages.
 */

#ifndef SMTOS_CORE_PIPELINE_H
#define SMTOS_CORE_PIPELINE_H

#include <array>
#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "bp/btb.h"
#include "bp/mcfarling.h"
#include "core/context.h"
#include "mem/hierarchy.h"
#include "vm/tlb.h"

namespace smtos {

/** An in-flight instruction. */
struct Uop
{
    const Instr *instr = nullptr;
    Addr pc = 0;
    Addr vaddr = 0;   ///< data address (mem ops)
    Addr paddr = 0;   ///< translated data address when known
    Mode mode = Mode::User;
    std::int16_t tag = -1; ///< kernel service tag of enclosing function
    ThreadId thread = invalidThread;
    std::uint64_t seq = 0;

    enum class Stage : std::uint8_t { Fetched, Issued, Done, };
    Stage stage = Stage::Fetched;

    bool wrongPath = false;
    bool serializing = false;
    bool mispredicted = false; ///< direction mispredict: wrong-path fetch
    bool redirectOnly = false; ///< target mispredict: fetch held, no squash
    bool hasCheckpoint = false;
    bool isCondBranch = false;
    bool predTaken = false;
    bool actualTaken = false;
    bool trapDtlb = false;     ///< correct-path DTLB miss: trap at resolve
    std::uint8_t destType = 0; ///< 0 none, 1 int, 2 fp

    Cycle eligibleAt = 0;
    Cycle doneAt = 0;
    Cycle drainAt = 0;         ///< store-buffer drain completion (stores)

    /** Producer uop seqs bound at rename (0 = no dependence). */
    std::uint64_t depA = 0;
    std::uint64_t depB = 0;

    // Recovery state (valid when hasCheckpoint).
    Cursor cp;
    Ras::Checkpoint rasCp{0, 0};
    std::uint64_t ghrCp = 0;
};

/** The SMT/superscalar core. */
class Pipeline
{
  public:
    Pipeline(const CoreParams &params, Hierarchy &hier,
             const CodeImage *kernel_image);

    /** The OS model must be attached before the first cycle. */
    void setOs(OsCallbacks *os) { os_ = os; }

    /** Bind a software thread to a hardware context. The context must
     *  be drained (no in-flight uops) unless it never ran. */
    void bindThread(CtxId ctx, ThreadState *t);

    /** Advance one cycle. */
    void cycle();

    /** Run until @p retired instructions have committed in total. */
    void runInstrs(std::uint64_t retired);

    /** Run for @p n cycles. */
    void runCycles(Cycle n);

    Cycle now() const { return now_; }

    Context &ctx(CtxId id) { return ctxs_[static_cast<size_t>(id)]; }
    int numContexts() const { return static_cast<int>(ctxs_.size()); }

    /** Raise a device interrupt on a context (delivered after drain). */
    void raiseInterrupt(CtxId id, std::uint16_t vector);

    CoreStats &stats() { return stats_; }
    const CoreStats &stats() const { return stats_; }

    McFarling &predictor() { return mcf_; }
    Btb &btb() { return btb_; }
    Tlb &itlb() { return itlb_; }
    Tlb &dtlb() { return dtlb_; }
    const Tlb &itlb() const { return itlb_; }
    const Tlb &dtlb() const { return dtlb_; }
    Hierarchy &hierarchy() { return *hier_; }

    const CoreParams &params() const { return params_; }

    /** Table 9 mode: privileged branches bypass predictor and BTB. */
    void setFilterPrivilegedBranches(bool on) { filterPrivBr_ = on; }

    /** Table 4 application-only mode: TLB misses refill instantly
     *  (no handler code, no trap), via OsCallbacks::magicTranslate. */
    void setAppOnlyTlb(bool on) { appOnlyTlb_ = on; }

  private:
    ImageSet imagesFor(const ThreadState &t) const
    {
        return ImageSet{t.userImage, kernelImage_};
    }

    bool canFetch(const Context &c) const;
    void fetchStage();
    int fetchFrom(Context &c, int budget);
    void issueStage();
    void executeStage();
    void commitStage();

    /** Translate a fetch PC; returns false on ITLB miss (trap raised). */
    bool translateFetch(Context &c, ThreadState &t, Mode m, Addr pc,
                        Addr &paddr);

    /** Squash all uops of @p c with seq >= @p from_seq. */
    void squashTail(Context &c, std::uint64_t from_seq);

    void releaseUop(const Uop &u);
    void commitUop(Context &c, Uop &u);

    CoreParams params_;
    Hierarchy *hier_;
    const CodeImage *kernelImage_;
    OsCallbacks *os_ = nullptr;

    std::vector<Context> ctxs_;
    std::vector<std::deque<Uop>> q_;
    /** Per-context wait-for-branch-resolve fetch hold (0 = none). */
    std::vector<std::uint64_t> waitBranch_;
    /**
     * Rename state per context: last writer seq of each architectural
     * register, and completion times of in-flight producers. Binding
     * readers to producer seqs at fetch models register renaming
     * (no false WAW/WAR dependences through architectural names).
     */
    std::vector<std::array<std::uint64_t, numIntRegs + numFpRegs>>
        writerSeq_;
    std::vector<std::unordered_map<std::uint64_t, Cycle>> pendingDone_;

    McFarling mcf_;
    Btb btb_;
    Tlb itlb_;
    Tlb dtlb_;

    Cycle now_ = 0;
    std::uint64_t nextSeq_ = 1;
    int intRegsUsed_ = 0;
    int fpRegsUsed_ = 0;
    int unissuedInt_ = 0;
    int unissuedFp_ = 0;
    bool filterPrivBr_ = false;
    bool appOnlyTlb_ = false;

    CoreStats stats_;
};

} // namespace smtos

#endif // SMTOS_CORE_PIPELINE_H
