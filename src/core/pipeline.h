/**
 * @file
 * The SMT out-of-order pipeline (Table 1).
 *
 * A cycle-driven model with ICOUNT-2.8 fetch from up to two contexts,
 * wrong-path fetching down mispredicted conditional branches, shared
 * issue queues / renaming registers / functional units, per-context
 * precise squash, software-managed TLB traps, and commit-time
 * serializing instructions that hand control to the OS model. The
 * superscalar baseline is the same pipeline with one context and two
 * fewer stages.
 */

#ifndef SMTOS_CORE_PIPELINE_H
#define SMTOS_CORE_PIPELINE_H

#include <array>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "bp/btb.h"
#include "bp/mcfarling.h"
#include "common/ring.h"
#include "core/context.h"
#include "mem/hierarchy.h"
#include "obs/probes.h"
#include "snap/fwd.h"
#include "vm/tlb.h"

namespace smtos {

/** An in-flight instruction. */
struct Uop
{
    const Instr *instr = nullptr;
    Addr pc = 0;
    Addr vaddr = 0;   ///< data address (mem ops)
    Addr paddr = 0;   ///< translated data address when known
    Mode mode = Mode::User;
    std::int16_t tag = -1; ///< kernel service tag of enclosing function
    ThreadId thread = invalidThread;
    std::uint64_t seq = 0;

    enum class Stage : std::uint8_t { Fetched, Issued, Done, };
    Stage stage = Stage::Fetched;

    bool wrongPath = false;
    bool serializing = false;
    bool mispredicted = false; ///< direction mispredict: wrong-path fetch
    bool redirectOnly = false; ///< target mispredict: fetch held, no squash
    bool hasCheckpoint = false;
    bool isCondBranch = false;
    bool predTaken = false;
    bool actualTaken = false;
    bool trapDtlb = false;     ///< correct-path DTLB miss: trap at resolve
    std::uint8_t destType = 0; ///< 0 none, 1 int, 2 fp

    Cycle eligibleAt = 0;
    Cycle doneAt = 0;
    Cycle drainAt = 0;         ///< store-buffer drain completion (stores)

    /** Producer uop seqs bound at rename (0 = no dependence). */
    std::uint64_t depA = 0;
    std::uint64_t depB = 0;
    /**
     * Ring positions of the producers at bind time. Positions are
     * revalidated against the occupant's seq before use, so a slot
     * reused after a squash (or long since committed) reads as "no
     * longer pending" — exactly the semantics a per-context
     * pendingDone map would give, without the hash lookup.
     */
    std::uint64_t depAPos = 0;
    std::uint64_t depBPos = 0;

    // Recovery state (valid when hasCheckpoint).
    Cursor cp;
    Ras::Checkpoint rasCp{0, 0};
    std::uint64_t ghrCp = 0;
};

/**
 * One architecturally committed instruction, as reported to a
 * RetireObserver. This is the record the co-simulation oracle diffs
 * against the functional reference model.
 */
struct RetireEvent
{
    Cycle cycle = 0;
    CtxId ctx = invalidCtx;
    ThreadId thread = invalidThread;
    std::uint64_t seq = 0;
    Addr pc = 0;
    const Instr *instr = nullptr;
    Mode mode = Mode::User;
    std::int16_t tag = -1;       ///< kernel service tag, -1 for user
    Addr vaddr = 0;              ///< memory ops only
    Addr paddr = 0;              ///< translated address when known
    bool isCondBranch = false;
    bool taken = false;          ///< resolved direction (cond branches)
    std::uint64_t destValue = 0; ///< refvalue.h value model (0: none)
};

/**
 * Observer of the architectural (retired) instruction stream.
 *
 * onRetire fires for every committed instruction, in commit order.
 * onThreadStateSync fires whenever software outside the pipeline (the
 * OS model, or the pipeline's own trap vectoring) rewrote a thread's
 * functional state: every retirement of that thread with
 * seq >= firstSeq executes from the state captured at the call, while
 * retirements with smaller seq (instructions already in flight) still
 * belong to the previous state.
 */
class RetireObserver
{
  public:
    virtual ~RetireObserver() = default;
    virtual void onRetire(const RetireEvent &e) = 0;
    virtual void onThreadStateSync(const ThreadState &t,
                                   std::uint64_t firstSeq) = 0;
};

/** The SMT/superscalar core. */
class Pipeline
{
  public:
    Pipeline(const CoreParams &params, Hierarchy &hier,
             const CodeImage *kernel_image);
    ~Pipeline();

    /** The OS model must be attached before the first cycle. */
    void setOs(OsCallbacks *os) { os_ = os; }

    /**
     * Attach (or detach, with nullptr) the observability hub. When
     * null (the default), every probe site is one not-taken branch;
     * attaching never changes simulated behavior or metrics.
     */
    void setProbes(Probes *p) { probes_ = p; }
    Probes *probes() const { return probes_; }

    /** Bind a software thread to a hardware context. The context must
     *  be drained (no in-flight uops) unless it never ran. */
    void bindThread(CtxId ctx, ThreadState *t);

    /** Advance one cycle. */
    void cycle();

    /**
     * Switch execution fidelity (DESIGN.md §15). Switching to
     * Functional first drains all in-flight work (detailed cycles
     * with fetch suppressed), so the functional engine starts from
     * committed architectural state; switching back to Detailed is
     * immediate — the functional engine leaves nothing in flight.
     * Both directions preserve the retired-stream contract, so an
     * attached co-simulation oracle stays clean across switches.
     */
    void setFidelity(Fidelity f);
    Fidelity fidelity() const { return fidelity_; }
    /** Instructions retired by the functional engine (lifetime). */
    std::uint64_t funcInstrs() const { return funcInstrs_; }
    /** Cycles ticked by the functional engine (lifetime). */
    Cycle funcCycles() const { return funcCycles_; }
    /** Fidelity switches performed (both directions). */
    std::uint64_t fidelitySwitches() const { return fidelitySwitches_; }
    /** Snapshot-restore path: reinstate fidelity state without
     *  draining (the restored machine is already consistent). */
    void restoreFidelity(Fidelity f, std::uint64_t instrs, Cycle cycles,
                         std::uint64_t switches);

    /** Run until @p retired instructions have committed in total. */
    void runInstrs(std::uint64_t retired);

    /** Run for @p n cycles. */
    void runCycles(Cycle n);

    /**
     * Enable/disable quiescence fast-forward (default on). When every
     * context is stalled and no pipeline event can fire before the
     * next wakeup, runInstrs/runCycles jump the clock to the event
     * horizon instead of ticking idle cycles, with every counter
     * (cycles, zero-fetch/issue, samplers, profiler slot attribution)
     * accounted exactly as the ticked loop would have.
     */
    void setFastForward(bool on) { fastForward_ = on; }
    bool fastForward() const { return fastForward_; }
    /** Idle cycles skipped by quiescence fast-forward (host metric). */
    std::uint64_t fastForwardedCycles() const { return ffCycles_; }

    Cycle now() const { return now_; }

    Context &ctx(CtxId id) { return ctxs_[static_cast<size_t>(id)]; }
    int numContexts() const { return static_cast<int>(ctxs_.size()); }

    /**
     * CMP identity: place this core at @p core with its contexts
     * occupying global ids [gid_base, gid_base + numContexts). The
     * single-core default (core 0, base 0) makes gid == id.
     */
    void
    setCoreId(int core, CtxId gid_base)
    {
        coreId_ = core;
        for (std::size_t i = 0; i < ctxs_.size(); ++i) {
            ctxs_[i].core = core;
            ctxs_[i].gid = gid_base + static_cast<CtxId>(i);
        }
    }
    int coreId() const { return coreId_; }

    /**
     * Share one chip-wide uop sequence counter across cores so the
     * retired-stream contract (per-thread seq monotonicity) survives
     * cross-core migration. Single-core pipelines keep their own
     * counter; behavior and artifacts are identical either way.
     */
    void setSharedSeq(std::uint64_t *counter) { seqPtr_ = counter; }
    bool fastForwardEnabled() const
    {
        return fastForward_ && fidelity_ == Fidelity::Detailed;
    }

    // --- chip-lockstep stepping (System drives these for cores > 1;
    // --- thin public wrappers over the private fast-forward core) ---
    /** True when no stage can do work until an external event. */
    bool quiescentNow() const { return quiescent(); }
    /** Earliest future cycle at which anything can happen here. */
    Cycle eventHorizon() const { return nextEventHorizon(); }
    /** Batch-account @p k skipped idle cycles (chip fast-forward). */
    void skipIdle(Cycle k) { skipIdleCycles(k); }

    /** Raise a device interrupt on a context (delivered after drain). */
    void raiseInterrupt(CtxId id, std::uint16_t vector);

    CoreStats &stats() { return stats_; }
    const CoreStats &stats() const { return stats_; }

    McFarling &predictor() { return mcf_; }
    Btb &btb() { return btb_; }
    Tlb &itlb() { return itlb_; }
    Tlb &dtlb() { return dtlb_; }
    const Tlb &itlb() const { return itlb_; }
    const Tlb &dtlb() const { return dtlb_; }
    Hierarchy &hierarchy() { return *hier_; }

    const CoreParams &params() const { return params_; }
    const CodeImage *kernelImage() const { return kernelImage_; }

    /** Table 9 mode: privileged branches bypass predictor and BTB. */
    void setFilterPrivilegedBranches(bool on) { filterPrivBr_ = on; }

    /** Table 4 application-only mode: TLB misses refill instantly
     *  (no handler code, no trap), via OsCallbacks::magicTranslate. */
    void setAppOnlyTlb(bool on) { appOnlyTlb_ = on; }

    /**
     * Attach (or detach, with nullptr) the retired-stream observer.
     * Attach before the first thread binds so the observer sees every
     * state sync from the start of time.
     */
    void setRetireObserver(RetireObserver *o) { obs_ = o; }
    RetireObserver *retireObserver() const { return obs_; }

    /**
     * The OS model rewrote @p t's functional state outside a pipeline
     * callback (e.g. the context-switch frame push in switchTo).
     * Forwards a state sync to the observer; cheap no-op otherwise.
     */
    void
    noteOsStateSync(ThreadState &t)
    {
        if (obs_)
            obs_->onThreadStateSync(t, *seqPtr_);
    }

    /**
     * Test-only fault injection: corrupt the PC of the @p nth retired
     * instruction as reported to the observer (the simulation itself
     * is untouched). The co-simulation suite uses this to prove the
     * oracle actually catches wrong results. 0 disarms.
     */
    void injectRetireFault(std::uint64_t nth) { faultAtRetire_ = nth; }

    /**
     * Check core structural invariants: per-context window/inflight
     * accounting, instruction conservation (fetched = squashed +
     * retired + in flight), issue-queue occupancy, and rename-register
     * accounting. Returns an empty string when everything holds, else
     * a description of every violation found.
     */
    std::string auditInvariants() const;

    /** Dump per-context architectural state for the crash bundle. */
    void dumpState(std::ostream &os) const;

    // --- snapshot/restore (src/snap) ---
    static constexpr std::uint32_t snapVersion = 1;
    void save(Snapshotter &sp, const SnapImages &images) const;
    /**
     * Overwrite all mutable pipeline state from a snapshot.
     * @p threadById resolves serialized thread ids to the rebuilt
     * ThreadStates (the kernel section restores before this one).
     */
    void load(Restorer &rs, const SnapImages &images,
              const std::function<ThreadState *(ThreadId)> &threadById);
    /**
     * Re-emit an onThreadStateSync(t, 0) for every bound context after
     * a restore: the restored architectural state is the committed
     * state, and restored in-flight uops (seq < nextSeq_) retire
     * sequentially on top of it.
     */
    void resyncThreads();

  private:
    /**
     * Why the most recent fetchFrom() call stopped taking
     * instructions; consumed by the cycle-attribution profiler to
     * charge the cycle's unused fetch slots.
     */
    enum class FetchStop : std::uint8_t
    {
        None = 0,    ///< budget exhausted mid-run
        Stuck,       ///< cursor stuck (serialize drain or wrong path)
        IcacheMiss,
        TlbTrap,
        IqFull,
        RenameFull,
        WindowFull,
        Serialize,
        TakenBranch, ///< fetch run ended at a taken branch
    };

    ImageSet imagesFor(const ThreadState &t) const
    {
        return ImageSet{t.userImage, kernelImage_};
    }

    bool canFetch(const Context &c) const;
    void fetchStage();
    int fetchFrom(Context &c, int budget);
    void issueStage();
    void executeStage();
    void commitStage();

    /** Translate a fetch PC; returns false on ITLB miss (trap raised). */
    bool translateFetch(Context &c, ThreadState &t, Mode m, Addr pc,
                        Addr &paddr);

    /** Squash all uops of @p c with seq >= @p from_seq. */
    void squashTail(Context &c, std::uint64_t from_seq);

    /**
     * True when no stage can do work this coming cycle or any cycle
     * until an external event (uop completion, fetch wakeup, OS
     * event): no unissued uops, no completed-but-uncommitted uops, no
     * deliverable interrupts, and no context able to fetch.
     */
    bool quiescent() const;
    /**
     * Earliest future cycle at which anything can happen: the minimum
     * over in-flight completion times, fetch wakeups, and the OS
     * model's next scheduled event.
     */
    Cycle nextEventHorizon() const;
    /**
     * When quiescent, jump the clock forward so the next cycle() lands
     * on min(horizon, @p limit), batch-accounting the skipped idle
     * cycles bit-identically to the ticked loop.
     */
    void maybeFastForward(Cycle limit);
    /** Account @p k skipped idle cycles exactly as k ticks would. */
    void skipIdleCycles(Cycle k);

    /** Charge this cycle's unused fetch slots to one (cause,ctx,tag). */
    void profileFetchSlots(
        const std::vector<std::pair<int, CtxId>> &cands, int picked,
        int lost);
    /** Why a context that produced no fetch candidate is blocked. */
    SlotCause fetchBlockCause(const Context &c) const;
    /** Window-full refinement: stalled behind an in-flight load? */
    SlotCause windowCause(const Context &c) const;
    /** Kernel service tag at the context's cursor (-1: user code). */
    int currentServiceTag(const Context &c) const;

    void releaseUop(const Uop &u);
    void commitUop(Context &c, Uop &u);

    // --- functional (warming-only) engine: core/funccore.cc ---
    /** One functional cycle: interrupt delivery + a fetch-width batch
     *  of architectural steps round-robined across contexts. */
    void funcCycle();
    /** Execute one instruction of @p c architecturally. Returns 1
     *  (retired, may continue), 2 (retired-or-trapped into the OS,
     *  end this context's turn), or 0 (cannot execute). */
    int funcStep(Context &c);
    /** Run detailed cycles with fetch suppressed until nothing is in
     *  flight (the functional-switch handover point). */
    void drainForFidelitySwitch();

    CoreParams params_;
    Hierarchy *hier_;
    const CodeImage *kernelImage_;
    OsCallbacks *os_ = nullptr;
    RetireObserver *obs_ = nullptr;
    Probes *probes_ = nullptr;
    FetchStop fetchStop_ = FetchStop::None;
    std::uint64_t faultAtRetire_ = 0;

    std::vector<Context> ctxs_;
    /** Per-context instruction windows (program order, front=oldest). */
    std::vector<FixedRing<Uop>> q_;
    /** Per-context wait-for-branch-resolve fetch hold (0 = none). */
    std::vector<std::uint64_t> waitBranch_;
    /**
     * Rename state per context: last writer seq of each architectural
     * register plus the ring position that writer occupies. Binding
     * readers to producer (seq, pos) pairs at fetch models register
     * renaming (no false WAW/WAR dependences through architectural
     * names); readiness is read straight off the producer's ring slot.
     */
    std::vector<std::array<std::uint64_t, numIntRegs + numFpRegs>>
        writerSeq_;
    std::vector<std::array<std::uint64_t, numIntRegs + numFpRegs>>
        writerPos_;

    /** Scratch candidate lists, members so steady state never mallocs. */
    std::vector<std::pair<int, CtxId>> fetchCands_;
    struct IssueCand
    {
        std::uint64_t seq;
        CtxId ctx;
        std::uint32_t idx;
    };
    std::vector<IssueCand> issueCands_;

    McFarling mcf_;
    Btb btb_;
    Tlb itlb_;
    Tlb dtlb_;

    Cycle now_ = 0;
    std::uint64_t nextSeq_ = 1;
    /** Points at nextSeq_ (single core) or the chip-wide counter. */
    std::uint64_t *seqPtr_ = &nextSeq_;
    int coreId_ = 0;
    int intRegsUsed_ = 0;
    int fpRegsUsed_ = 0;
    int unissuedInt_ = 0;
    int unissuedFp_ = 0;
    bool filterPrivBr_ = false;
    bool appOnlyTlb_ = false;
    bool fastForward_ = true;
    std::uint64_t ffCycles_ = 0;

    Fidelity fidelity_ = Fidelity::Detailed;
    /** Fetch suppressed while draining for a fidelity switch. */
    bool draining_ = false;
    std::uint64_t funcInstrs_ = 0;
    Cycle funcCycles_ = 0;
    std::uint64_t fidelitySwitches_ = 0;

    CoreStats stats_;
};

} // namespace smtos

#endif // SMTOS_CORE_PIPELINE_H
