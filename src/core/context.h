/**
 * @file
 * Hardware contexts, software thread state, core parameters, and the
 * pipeline <-> operating-system-model callback interface.
 */

#ifndef SMTOS_CORE_CONTEXT_H
#define SMTOS_CORE_CONTEXT_H

#include <cstdint>
#include <vector>

#include "bp/ras.h"
#include "common/stats.h"
#include "common/types.h"
#include "isa/cursor.h"
#include "ref/refvalue.h"
#include "vm/addrspace.h"

namespace smtos {

/**
 * Architected state of one software thread (process or kernel thread)
 * as the pipeline sees it. Scheduling metadata lives in the kernel.
 */
struct ThreadState
{
    ThreadId id = invalidThread;
    AddrSpace *space = nullptr;      ///< owning address space
    const CodeImage *userImage = nullptr; ///< null for kernel threads
    Cursor cursor;
    ThreadIprs iprs;
    MemRegion regions[maxRegions];
    bool isIdleThread = false;
    /** Seed base for this thread's stochastic behavior. */
    std::uint64_t seed = 1;
    /**
     * Committed register values under the refvalue.h value model.
     * Maintained by the pipeline's commit stage only while a
     * RetireObserver is attached (co-simulation).
     */
    ArchRegs archRegs{};
};

/** Fetch-stall reasons, sampled for the fetchable-contexts metric. */
enum class FetchStall : std::uint8_t
{
    None = 0,
    IcacheMiss,
    Serialize,   ///< waiting for a serializing instruction to commit
    Redirect,    ///< refilling the front end after squash/branch
    TrapDrain,   ///< draining before trap/interrupt delivery
    NoThread,
};

/** One SMT hardware context. */
struct Context
{
    CtxId id = invalidCtx;
    /** Owning core in a CMP (0 on a single-core machine). */
    int core = 0;
    /** Global context id across the chip: core * contextsPerCore + id.
     *  Equals @c id on a single-core machine. The kernel schedules by
     *  gid; the pipeline indexes its own structures by @c id. */
    CtxId gid = invalidCtx;
    ThreadState *thread = nullptr;
    Ras ras{16};

    /** Cycle fetch may resume after a stall. */
    Cycle fetchResumeAt = 0;
    FetchStall stallReason = FetchStall::None;

    /** Interrupt pending delivery (waiting for drain). */
    bool interruptPending = false;
    std::uint16_t interruptVector = 0;

    /** In-flight (fetched, not yet committed/squashed) uops. */
    int inflight = 0;
    /** In-flight and not yet issued (the ICOUNT metric). */
    int unissued = 0;

    /** Cache line of the last fetch (to count line accesses once). */
    Addr lastFetchLine = ~0ull;

    bool hasThread() const { return thread != nullptr; }
};

/** Core configuration (Table 1 defaults; superscalar = 1 context). */
/** Fetch-selection policies (the ablation of [41]'s ICOUNT). */
enum class FetchPolicy { Icount, RoundRobin };

struct CoreParams
{
    int numContexts = 8;
    int fetchWidth = 8;
    int fetchContexts = 2;        ///< the 2.8 ICOUNT scheme
    FetchPolicy fetchPolicy = FetchPolicy::Icount;
    int pipelineStages = 9;       ///< 7 for the superscalar
    int intUnits = 6;
    int memUnits = 4;             ///< of the int units, can issue mem
    int fpUnits = 4;
    int intQueue = 32;
    int fpQueue = 32;
    int intRenameRegs = 100;
    int fpRenameRegs = 100;
    int retireWidth = 12;
    int dcachePorts = 2;
    int itlbEntries = 128;
    int dtlbEntries = 128;
    int rasDepth = 16;
    int maxInflightPerCtx = 128;
    Cycle intMulLatency = 8;
    Cycle fpLatency = 4;
    Cycle btbMissPenalty = 2;     ///< decode-redirect bubble

    /** Issue eligibility delay after fetch (front-end depth). */
    Cycle issueDelay() const
    {
        return static_cast<Cycle>(pipelineStages - 5);
    }
    /** Post-squash fetch redirect penalty. */
    Cycle redirectPenalty() const { return issueDelay() + 1; }
};

/** Aggregate pipeline statistics (inputs to the paper's tables). */
struct CoreStats
{
    Cycle cycles = 0;
    std::uint64_t fetched = 0;
    std::uint64_t fetchedWrongPath = 0;
    std::uint64_t squashed = 0;
    std::uint64_t issued = 0;

    /** Retired instructions by privilege mode. */
    std::uint64_t retired[numModes] = {0, 0, 0, 0};
    /** Retired kernel/PAL instructions by service tag (tag < 64). */
    std::uint64_t retiredByTag[64] = {0};

    /** Retired instruction mix [user=0/kernelish=1][MixClass]. */
    std::uint64_t mix[2][numMixClasses] = {{0}, {0}};
    /** Memory ops bypassing the TLB, by class [user/kernel][ld/st]. */
    std::uint64_t physMem[2][2] = {{0, 0}, {0, 0}};
    /** Conditional branches retired / taken [user/kernel]. */
    std::uint64_t condRetired[2] = {0, 0};
    std::uint64_t condTaken[2] = {0, 0};
    /** Conditional mispredicts at resolve [user/kernel]. */
    std::uint64_t condMispred[2] = {0, 0};
    /** Indirect/return target mispredictions [user/kernel]. */
    std::uint64_t targetMispred[2] = {0, 0};

    std::uint64_t zeroFetchCycles = 0;
    std::uint64_t zeroIssueCycles = 0;
    std::uint64_t maxIssueCycles = 0;
    Sampler fetchableContexts;

    /** Kernel entries by reason (counter names set by the kernel). */
    CounterMap kernelEntries;

    std::uint64_t totalRetired() const
    {
        return retired[0] + retired[1] + retired[2] + retired[3];
    }

    double ipc() const
    {
        return cycles ? static_cast<double>(totalRetired()) /
                            static_cast<double>(cycles)
                      : 0.0;
    }
};

class Pipeline;

/**
 * Interface the pipeline uses to hand control to the OS model at the
 * points where software takes over: TLB refills, syscalls and other
 * serializing operations, interrupt delivery, and idle decisions.
 */
class OsCallbacks
{
  public:
    virtual ~OsCallbacks() = default;

    /**
     * A correct-path data reference missed the DTLB. The pipeline has
     * already squashed and rewound the thread's cursor to re-execute
     * the faulting op; the OS must push the PAL handler (and set the
     * thread's IPRs) so the refill code executes next.
     */
    virtual void dtlbMiss(ThreadState &t, Addr vaddr) = 0;

    /** Instruction fetch missed the ITLB (no squash needed). */
    virtual void itlbMiss(ThreadState &t, Addr pc) = 0;

    /**
     * A serializing instruction (Syscall, Magic, TlbWrite, Halt)
     * reached the head of its context and committed. The OS performs
     * its effect and advances/redirects the thread's cursor. May
     * rebind the context's thread (context switch).
     */
    virtual void serializing(Context &ctx, ThreadState &t,
                             const Instr &in) = 0;

    /** An interrupt was delivered to a drained context. */
    virtual void interrupt(Context &ctx, ThreadState &t,
                           std::uint16_t vector) = 0;

    /** Called once per cycle before the pipeline stages. */
    virtual void cycleHook(Cycle now) = 0;

    /**
     * Earliest future cycle at which cycleHook must observe the clock
     * (device interrupt, timer, scheduled fault, audit, ...), or
     * ~Cycle{0} when nothing is scheduled. Quiescence fast-forward
     * never skips past this. The default of 0 means "call me every
     * cycle", which disables fast-forward for OS models that don't
     * implement event scheduling.
     */
    virtual Cycle nextEventAt() const { return 0; }

    /**
     * Application-only mode: return the physical address for @p vaddr
     * as if the TLB refill completed instantly (mapping on demand).
     */
    virtual Addr magicTranslate(ThreadState &t, Addr vaddr,
                                bool itlb) = 0;
};

} // namespace smtos

#endif // SMTOS_CORE_CONTEXT_H
