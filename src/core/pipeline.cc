#include "core/pipeline.h"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "common/logging.h"
#include "common/trace.h"
#include "kernel/tags.h"
#include "obs/profiler.h"
#include "ref/refvalue.h"

namespace smtos {

Pipeline::Pipeline(const CoreParams &params, Hierarchy &hier,
                   const CodeImage *kernel_image)
    : params_(params), hier_(&hier), kernelImage_(kernel_image),
      itlb_("ITLB", params.itlbEntries),
      dtlb_("DTLB", params.dtlbEntries)
{
    smtos_assert(params_.numContexts >= 1);
    ctxs_.resize(static_cast<size_t>(params_.numContexts));
    q_.resize(ctxs_.size());
    waitBranch_.assign(ctxs_.size(), 0);
    writerSeq_.resize(ctxs_.size());
    writerPos_.resize(ctxs_.size());
    for (size_t i = 0; i < ctxs_.size(); ++i) {
        ctxs_[i].id = static_cast<CtxId>(i);
        ctxs_[i].gid = static_cast<CtxId>(i);
        ctxs_[i].ras = Ras(params_.rasDepth);
        writerSeq_[i].fill(0);
        writerPos_[i].fill(0);
        q_[i].init(static_cast<size_t>(params_.maxInflightPerCtx));
    }
    fetchCands_.reserve(ctxs_.size());
    issueCands_.reserve(
        static_cast<size_t>(params_.intQueue + params_.fpQueue));
    // Trace lines read the cycle straight from this counter, so
    // emissions between ticks (OS hooks, tests) carry the live cycle
    // rather than a stale per-tick copy.
    Trace::setClock(&now_);
}

Pipeline::~Pipeline()
{
    if (Trace::clock() == &now_)
        Trace::setClock(nullptr);
}

void
Pipeline::bindThread(CtxId id, ThreadState *t)
{
    Context &c = ctx(id);
    smtos_assert(c.inflight == 0);
    c.thread = t;
    c.lastFetchLine = ~0ull;
    writerSeq_[static_cast<size_t>(id)].fill(0);
    writerPos_[static_cast<size_t>(id)].fill(0);
    if (obs_ && t)
        obs_->onThreadStateSync(*t, *seqPtr_);
}

void
Pipeline::raiseInterrupt(CtxId id, std::uint16_t vector)
{
    Context &c = ctx(id);
    c.interruptPending = true;
    c.interruptVector = vector;
}

bool
Pipeline::canFetch(const Context &c) const
{
    if (draining_)
        return false;
    if (!c.hasThread() || c.interruptPending)
        return false;
    if (now_ < c.fetchResumeAt)
        return false;
    if (waitBranch_[static_cast<size_t>(c.id)] != 0)
        return false;
    if (c.thread->cursor.stuck())
        return false;
    if (c.inflight >= params_.maxInflightPerCtx)
        return false;
    return true;
}

bool
Pipeline::translateFetch(Context &c, ThreadState &t, Mode m, Addr pc,
                         Addr &paddr)
{
    if (m == Mode::Pal || (m != Mode::User && pc >= kernelBase)) {
        // PAL code and kernel text execute from the unmapped KSEG
        // region on Alpha: physical fetch, no ITLB involvement.
        paddr = pc - kernelBase;
        return true;
    }
    const Addr vpn = pageOf(pc);
    const Asn asn = t.space->asn();
    AccessInfo who{t.id, m, c.id};
    const std::int64_t frame = itlb_.lookup(vpn, asn, who);
    if (frame >= 0) {
        paddr = PhysMem::frameAddr(static_cast<Frame>(frame)) +
                pageOffset(pc);
        return true;
    }
    if (appOnlyTlb_) {
        paddr = os_->magicTranslate(t, pc, true);
        itlb_.insert(vpn, asn, paddr >> pageShift, who,
                     pc >= kernelBase);
        return true;
    }
    if (t.cursor.wrongPath()) {
        // Speculative fetch down a wrong path hit an unmapped page:
        // stall until the mispredicted branch squashes us.
        t.cursor.setStuck(true);
        fetchStop_ = FetchStop::Stuck;
        return false;
    }
    fetchStop_ = FetchStop::TlbTrap;
    stats_.kernelEntries.add("itlb_miss");
    os_->itlbMiss(t, pc);
    if (obs_)
        obs_->onThreadStateSync(t, *seqPtr_);
    c.fetchResumeAt = now_ + 1;
    c.stallReason = FetchStall::TrapDrain;
    return false;
}

int
Pipeline::fetchFrom(Context &c, int budget)
{
    ThreadState &t = *c.thread;
    const ImageSet is = imagesFor(t);
    Cursor &cur = t.cursor;
    int n = 0;
    fetchStop_ = FetchStop::None;

    while (n < budget) {
        if (cur.stuck()) {
            if (n == 0)
                stats_.kernelEntries.add("fs_stuck");
            fetchStop_ = FetchStop::Stuck;
            break;
        }
        const Mode cursor_mode = cur.mode(is);
        const Mode stat_mode =
            (t.isIdleThread && cursor_mode != Mode::User)
                ? Mode::Idle
                : cursor_mode;
        const Addr pc = cur.currentPc(is);

        // Instruction cache, one access per line touched.
        const Addr line =
            pc / static_cast<Addr>(hier_->l1i().params().lineBytes);
        if (line != c.lastFetchLine) {
            Addr paddr = 0;
            if (!translateFetch(c, t, cursor_mode, pc, paddr))
                break;
            AccessInfo who{t.id, cursor_mode, c.id};
            MemResult r = hier_->fetch(paddr, who, now_);
            if (!r.l1Hit) {
                c.fetchResumeAt = r.readyAt;
                c.stallReason = FetchStall::IcacheMiss;
                if (n == 0)
                    stats_.kernelEntries.add("fs_imiss");
                fetchStop_ = FetchStop::IcacheMiss;
                break;
            }
            c.lastFetchLine = line;
        }

        // Shared resources: issue queues and renaming registers.
        if (unissuedInt_ >= params_.intQueue ||
            unissuedFp_ >= params_.fpQueue) {
            if (n == 0)
                stats_.kernelEntries.add("fs_iq");
            fetchStop_ = FetchStop::IqFull;
            break;
        }
        if (intRegsUsed_ >= params_.intRenameRegs ||
            fpRegsUsed_ >= params_.fpRenameRegs) {
            if (n == 0)
                stats_.kernelEntries.add("fs_rename");
            fetchStop_ = FetchStop::RenameFull;
            break;
        }
        if (c.inflight >= params_.maxInflightPerCtx) {
            if (n == 0)
                stats_.kernelEntries.add("fs_inflight");
            fetchStop_ = FetchStop::WindowFull;
            break;
        }

        const Instr &in = cur.currentInstr(is);
        Uop u;
        u.instr = &in;
        u.pc = pc;
        u.mode = stat_mode;
        u.thread = t.id;
        u.seq = (*seqPtr_)++;
        u.wrongPath = cur.wrongPath();
        u.eligibleAt = now_ + params_.issueDelay();
        {
            const CallFrame &f = cur.top();
            if (f.inKernel)
                u.tag = kernelImage_->tagOf(f.func);
        }
        if (in.dest != regNone)
            u.destType = isFpReg(in.dest) ? 2 : 1;

        // Rename: bind sources to their producing uops (seq for
        // identity, ring position for O(1) readiness checks).
        {
            auto &ws = writerSeq_[static_cast<size_t>(c.id)];
            auto &wp = writerPos_[static_cast<size_t>(c.id)];
            if (in.srcA != regNone) {
                u.depA = ws[in.srcA];
                u.depAPos = wp[in.srcA];
            }
            if (in.srcB != regNone) {
                u.depB = ws[in.srcB];
                u.depBPos = wp[in.srcB];
            }
            if (in.dest != regNone) {
                ws[in.dest] = u.seq;
                wp[in.dest] = q_[static_cast<size_t>(c.id)].tailPos();
            }
        }

        bool ends_run = false;

        if (in.isSerializing()) {
            u.serializing = true;
            cur.setStuck(true);
            ends_run = true;
        } else if (in.isBranch()) {
            const bool was_wrong = cur.wrongPath();
            AccessInfo who{t.id, cursor_mode, c.id};
            const bool filtered =
                filterPrivBr_ && cursor_mode != Mode::User;
            BranchPreview bp = cur.previewBranch(is, t.iprs);

            switch (bp.kind) {
              case BranchPreview::Kind::Cond: {
                u.isCondBranch = true;
                u.actualTaken = bp.taken;
                bool pred_taken;
                if (filtered) {
                    pred_taken = bp.taken;
                } else {
                    pred_taken = mcf_.predict(pc);
                    BtbResult br = btb_.lookup(pc, who);
                    if (!was_wrong) {
                        mcf_.train(pc, bp.taken);
                        if (bp.taken)
                            btb_.update(pc, bp.targetPc, who);
                    } else {
                        mcf_.pushHistory(pred_taken);
                    }
                    if (pred_taken && !br.hit) {
                        // Predicted taken with no target: decode-time
                        // redirect bubble.
                        c.fetchResumeAt = now_ + params_.btbMissPenalty;
                        ends_run = true;
                    }
                }
                u.predTaken = pred_taken;
                if (!was_wrong && pred_taken != bp.taken) {
                    // Direction mispredict: checkpoint the correct
                    // successor, then fetch down the wrong path.
                    u.mispredicted = true;
                    u.hasCheckpoint = true;
                    u.cp = cur;
                    u.cp.followBranch(is, bp, bp.taken);
                    u.rasCp = c.ras.save();
                    u.ghrCp = mcf_.ghr();
                    cur.setWrongPath(true);
                    cur.followBranch(is, bp, pred_taken);
                } else {
                    cur.followBranch(is, bp,
                                     was_wrong ? pred_taken : bp.taken);
                }
                if (pred_taken)
                    ends_run = true;
                break;
              }
              case BranchPreview::Kind::Jump: {
                if (!filtered) {
                    BtbResult br = btb_.lookup(pc, who);
                    if (!was_wrong)
                        btb_.update(pc, bp.targetPc, who);
                    if (!br.hit) {
                        c.fetchResumeAt = now_ + params_.btbMissPenalty;
                    }
                }
                cur.followBranch(is, bp, true);
                ends_run = true;
                break;
              }
              case BranchPreview::Kind::Indirect: {
                u.actualTaken = true;
                bool target_ok = true;
                if (!filtered) {
                    BtbResult br = btb_.lookup(pc, who);
                    target_ok = br.hit && br.target == bp.targetPc;
                    if (!was_wrong) {
                        if (br.hit && !target_ok)
                            btb_.noteWrongTarget();
                        btb_.update(pc, bp.targetPc, who);
                    }
                }
                cur.followBranch(is, bp, true);
                if (!target_ok && !was_wrong) {
                    // Target mispredict: hold fetch until resolve; we
                    // already steered the cursor down the true path,
                    // so no squash will be needed.
                    u.redirectOnly = true;
                    waitBranch_[static_cast<size_t>(c.id)] = u.seq;
                }
                ends_run = true;
                break;
              }
              case BranchPreview::Kind::Call: {
                if (!filtered) {
                    BtbResult br = btb_.lookup(pc, who);
                    if (!was_wrong)
                        btb_.update(pc, bp.targetPc, who);
                    if (!br.hit)
                        c.fetchResumeAt = now_ + params_.btbMissPenalty;
                }
                cur.followBranch(is, bp, true);
                if (!cur.stuck())
                    c.ras.push(cur.parentPc(is));
                ends_run = true;
                break;
              }
              case BranchPreview::Kind::Ret:
              case BranchPreview::Kind::PalRet: {
                const Addr pred_target = c.ras.pop();
                cur.followBranch(is, bp, true);
                if (!was_wrong && pred_target != bp.targetPc &&
                    !filtered) {
                    u.redirectOnly = true;
                    waitBranch_[static_cast<size_t>(c.id)] = u.seq;
                }
                ends_run = true;
                break;
              }
            }
        } else {
            // Straight-line instruction.
            if (in.isMem()) {
                if (!cur.takeRetryVaddr(u.vaddr))
                    u.vaddr = cur.memAddress(in, t.regions, t.iprs);
                if (!u.wrongPath && !in.isPhysMem()) {
                    // Checkpoint post-draw, armed to replay the same
                    // address, so a DTLB trap retries this access
                    // rather than generating a fresh one.
                    u.hasCheckpoint = true;
                    u.cp = cur;
                    u.cp.setRetryVaddr(u.vaddr);
                    u.rasCp = c.ras.save();
                    u.ghrCp = mcf_.ghr();
                }
            }
            cur.stepSequential(is);
        }

        q_[static_cast<size_t>(c.id)].push_back(u);
        ++c.inflight;
        ++c.unissued;
        if (u.destType == 2 || in.op == Op::FpAdd || in.op == Op::FpMul)
            ++unissuedFp_;
        else
            ++unissuedInt_;
        if (u.destType == 1)
            ++intRegsUsed_;
        else if (u.destType == 2)
            ++fpRegsUsed_;
        ++stats_.fetched;
        if (u.wrongPath)
            ++stats_.fetchedWrongPath;
        ++n;
        if (ends_run) {
            fetchStop_ = u.serializing ? FetchStop::Serialize
                                       : FetchStop::TakenBranch;
            break;
        }
    }
    return n;
}

void
Pipeline::fetchStage()
{
    // Reset per-cycle line tracking so each cycle re-touches the cache.
    for (Context &c : ctxs_)
        c.lastFetchLine = ~0ull;

    int fetchable = 0;
    std::vector<std::pair<int, CtxId>> &cands = fetchCands_;
    cands.clear();
    for (Context &c : ctxs_) {
        if (canFetch(c)) {
            ++fetchable;
            cands.emplace_back(c.unissued, c.id);
        }
    }
    stats_.fetchableContexts.sample(fetchable);

    if (params_.fetchPolicy == FetchPolicy::Icount) {
        std::sort(cands.begin(), cands.end());
    } else {
        // Round-robin: rotate the candidate order each cycle.
        if (!cands.empty())
            std::rotate(cands.begin(),
                        cands.begin() +
                            static_cast<long>(now_ % cands.size()),
                        cands.end());
    }
    int budget = params_.fetchWidth;
    int total = 0;
    int picked = 0;
    for (const auto &[unissued, id] : cands) {
        if (picked >= params_.fetchContexts || budget <= 0)
            break;
        ++picked;
        const int n = fetchFrom(ctx(id), budget);
        budget -= n;
        total += n;
    }
    if (total == 0)
        ++stats_.zeroFetchCycles;

    if (probes_ && probes_->profiler())
        profileFetchSlots(cands, picked, budget);
}

namespace {

/**
 * When several blocked contexts could be charged for a zero-fetch
 * cycle, prefer the most specific cause over the catch-alls.
 */
int
causePriority(SlotCause c)
{
    switch (c) {
      case SlotCause::IcacheMiss: return 14;
      case SlotCause::TlbRefill: return 13;
      case SlotCause::DcacheStall: return 12;
      case SlotCause::SquashRecovery: return 11;
      case SlotCause::Serialize: return 10;
      case SlotCause::IntrDrain: return 9;
      case SlotCause::KernelSync: return 8;
      case SlotCause::BranchHold: return 7;
      case SlotCause::WindowFull: return 6;
      case SlotCause::IqFull: return 5;
      case SlotCause::RenameFull: return 4;
      case SlotCause::FetchPortLimit: return 3;
      case SlotCause::Fragmentation: return 2;
      case SlotCause::Idle: return 1;
      case SlotCause::NoThread: return 0;
    }
    return 0;
}

} // namespace

SlotCause
Pipeline::windowCause(const Context &c) const
{
    const auto &rq = q_[static_cast<size_t>(c.id)];
    for (std::size_t i = 0; i < rq.size(); ++i) {
        const Uop &u = rq[i];
        if (u.stage == Uop::Stage::Issued && u.instr->isLoad() &&
            u.doneAt > now_)
            return SlotCause::DcacheStall;
    }
    return SlotCause::WindowFull;
}

SlotCause
Pipeline::fetchBlockCause(const Context &c) const
{
    if (!c.hasThread())
        return SlotCause::NoThread;
    if (c.thread->isIdleThread)
        return SlotCause::Idle;
    if (c.interruptPending)
        return SlotCause::IntrDrain;
    if (now_ < c.fetchResumeAt) {
        switch (c.stallReason) {
          case FetchStall::IcacheMiss: return SlotCause::IcacheMiss;
          case FetchStall::TrapDrain: return SlotCause::TlbRefill;
          case FetchStall::Redirect: return SlotCause::SquashRecovery;
          case FetchStall::Serialize: return SlotCause::Serialize;
          default:
            // BTB-miss redirect bubbles set fetchResumeAt without a
            // dedicated reason: the front end waits on a target.
            return SlotCause::BranchHold;
        }
    }
    if (waitBranch_[static_cast<size_t>(c.id)] != 0)
        return SlotCause::BranchHold;
    if (c.thread->cursor.stuck())
        return c.thread->cursor.wrongPath() ? SlotCause::SquashRecovery
                                            : SlotCause::Serialize;
    if (c.inflight >= params_.maxInflightPerCtx)
        return windowCause(c);
    return SlotCause::Fragmentation;
}

int
Pipeline::currentServiceTag(const Context &c) const
{
    if (!c.hasThread())
        return -1;
    const Cursor &cur = c.thread->cursor;
    if (!cur.valid())
        return -1;
    const CallFrame &f = cur.top();
    if (!f.inKernel)
        return -1;
    return kernelImage_->tagOf(f.func);
}

void
Pipeline::profileFetchSlots(
    const std::vector<std::pair<int, CtxId>> &cands, int picked,
    int lost)
{
    CycleProfiler *prof = probes_->profiler();
    prof->fetchUsed(params_.fetchWidth - lost);
    if (lost <= 0)
        return;

    SlotCause cause = SlotCause::Fragmentation;
    CtxId charged = invalidCtx;

    if (picked > 0) {
        // Some context got fetch slots; the last one picked is the one
        // that stopped short, so charge the remainder to its stop.
        charged = cands[static_cast<size_t>(picked - 1)].second;
        const Context &c = ctxs_[static_cast<size_t>(charged)];
        switch (fetchStop_) {
          case FetchStop::Stuck:
            cause = (c.hasThread() && c.thread->cursor.wrongPath())
                        ? SlotCause::SquashRecovery
                        : SlotCause::Serialize;
            break;
          case FetchStop::IcacheMiss:
            cause = SlotCause::IcacheMiss;
            break;
          case FetchStop::TlbTrap:
            cause = SlotCause::TlbRefill;
            break;
          case FetchStop::IqFull:
            cause = SlotCause::IqFull;
            break;
          case FetchStop::RenameFull:
            cause = SlotCause::RenameFull;
            break;
          case FetchStop::WindowFull:
            cause = windowCause(c);
            break;
          case FetchStop::Serialize:
            cause = SlotCause::Serialize;
            break;
          case FetchStop::TakenBranch:
          case FetchStop::None:
            // The run ended (or the port budget ran out) with fetch
            // still healthy: more waiting candidates means the 2-port
            // limit bound us, otherwise it is run fragmentation.
            cause = (static_cast<int>(cands.size()) > picked)
                        ? SlotCause::FetchPortLimit
                        : SlotCause::Fragmentation;
            break;
        }
    } else {
        // Zero-fetch cycle: every context is blocked; charge the
        // highest-priority blocked cause.
        int best = -1;
        for (const Context &c : ctxs_) {
            const SlotCause bc = fetchBlockCause(c);
            const int pr = causePriority(bc);
            if (pr > best) {
                best = pr;
                cause = bc;
                charged = c.id;
            }
        }
    }

    int tag = -1;
    if (charged != invalidCtx) {
        tag = currentServiceTag(ctxs_[static_cast<size_t>(charged)]);
        if (tag == TagSpin)
            cause = SlotCause::KernelSync;
    }
    prof->fetchLost(cause, lost, charged, tag);
}

void
Pipeline::issueStage()
{
    int int_left = params_.intUnits;
    int mem_left = params_.memUnits;
    int fp_left = params_.fpUnits;
    int ports_left = params_.dcachePorts;

    CycleProfiler *prof = probes_ ? probes_->profiler() : nullptr;
    bool sawFuBlocked = false;
    bool sawMemWait = false;
    bool sawDepWait = false;

    // Gather ready candidates oldest-first across contexts.
    std::vector<IssueCand> &cands = issueCands_;
    cands.clear();
    for (Context &c : ctxs_) {
        auto &rq = q_[static_cast<size_t>(c.id)];
        if (c.unissued == 0)
            continue;
        int examined = 0;
        const std::uint32_t qsize =
            static_cast<std::uint32_t>(rq.size());
        for (std::uint32_t i = 0; i < qsize && examined < 24; ++i) {
            Uop &u = rq[i];
            if (u.stage != Uop::Stage::Fetched || u.serializing)
                continue;
            ++examined;
            if (u.eligibleAt > now_)
                continue;
            // Operand readiness straight off the producer's ring
            // slot. A dead position (committed, squashed, or reused
            // by a later uop) means the producer is no longer
            // pending: committed producers are ready, and a
            // squashed producer's consumer is doomed anyway.
            auto op_ready = [&](std::uint64_t dep,
                                std::uint64_t pos) {
                if (dep == 0)
                    return true;
                if (!rq.livePos(pos))
                    return true;
                const Uop &p = rq.atPos(pos);
                if (p.seq != dep)
                    return true;
                if (p.stage == Uop::Stage::Fetched)
                    return false;
                return p.doneAt <= now_;
            };
            if (!op_ready(u.depA, u.depAPos) ||
                !op_ready(u.depB, u.depBPos)) {
                if (prof) {
                    // Attribution only: is the uop waiting on a
                    // long-latency (memory-like) producer or a
                    // short one still in flight?
                    auto classify = [&](std::uint64_t dep,
                                        std::uint64_t pos) {
                        if (dep == 0 || !rq.livePos(pos))
                            return;
                        const Uop &p = rq.atPos(pos);
                        if (p.seq != dep)
                            return;
                        if (p.stage == Uop::Stage::Fetched) {
                            sawDepWait = true;
                            return;
                        }
                        if (p.doneAt <= now_)
                            return;
                        if (p.doneAt - now_ <= 2)
                            sawDepWait = true;
                        else
                            sawMemWait = true;
                    };
                    classify(u.depA, u.depAPos);
                    classify(u.depB, u.depBPos);
                }
                continue;
            }
            cands.push_back(IssueCand{u.seq, c.id, i});
        }
    }
    std::sort(cands.begin(), cands.end(),
              [](const IssueCand &a, const IssueCand &b) {
                  return a.seq < b.seq;
              });

    int issued = 0;
    for (const IssueCand &cd : cands) {
        Context &c = ctx(cd.ctx);
        Uop &u = q_[static_cast<size_t>(cd.ctx)][cd.idx];
        const Instr &in = *u.instr;
        const bool is_fp = (in.op == Op::FpAdd || in.op == Op::FpMul);
        const bool is_mem = in.isMem();

        if (is_fp) {
            if (fp_left <= 0) {
                sawFuBlocked = true;
                continue;
            }
        } else if (is_mem) {
            if (int_left <= 0 || mem_left <= 0) {
                sawFuBlocked = true;
                continue;
            }
            if (in.isLoad() && ports_left <= 0) {
                sawFuBlocked = true;
                continue;
            }
        } else {
            if (int_left <= 0) {
                sawFuBlocked = true;
                continue;
            }
        }

        // Compute completion time.
        Cycle done = now_ + 1;
        if (is_mem) {
            ThreadState &t = *c.thread;
            AccessInfo who{u.thread,
                           u.mode == Mode::Idle ? Mode::Kernel : u.mode,
                           c.id};
            Addr paddr = 0;
            bool translated = true;
            if (in.isPhysMem()) {
                paddr = u.vaddr;
            } else {
                const std::int64_t fr = dtlb_.lookup(
                    pageOf(u.vaddr), t.space->asn(), who);
                if (fr >= 0) {
                    paddr = PhysMem::frameAddr(static_cast<Frame>(fr)) +
                            pageOffset(u.vaddr);
                } else if (appOnlyTlb_) {
                    paddr = os_->magicTranslate(t, u.vaddr, false);
                    dtlb_.insert(pageOf(u.vaddr), t.space->asn(),
                                 paddr >> pageShift, who,
                                 u.vaddr >= kernelBase);
                } else if (u.wrongPath) {
                    translated = false;
                    done = now_ + 20;
                } else {
                    // Correct-path miss: precise trap at resolve.
                    u.trapDtlb = true;
                    translated = false;
                    done = now_ + 1;
                }
            }
            if (translated) {
                u.paddr = paddr;
                MemResult r =
                    hier_->data(paddr, who, in.isStore(), now_);
                if (in.isLoad()) {
                    done = r.readyAt;
                    if (prof)
                        prof->loadLatency(done > now_ ? done - now_
                                                      : 0);
                } else {
                    done = now_ + 1;
                    u.drainAt = r.readyAt;
                }
            }
            if (in.isLoad())
                --ports_left;
            --mem_left;
            --int_left;
        } else if (is_fp) {
            done = now_ + params_.fpLatency;
            --fp_left;
        } else {
            done = now_ + (in.op == Op::IntMul ? params_.intMulLatency
                                               : 1);
            --int_left;
        }

        u.stage = Uop::Stage::Issued;
        u.doneAt = done;
        --c.unissued;
        if (is_fp)
            --unissuedFp_;
        else
            --unissuedInt_;
        ++issued;
        ++stats_.issued;
    }

    if (issued == 0)
        ++stats_.zeroIssueCycles;
    if (issued >= params_.intUnits)
        ++stats_.maxIssueCycles;

    if (prof) {
        prof->issueUsed(issued);
        const int lost = params_.intUnits + params_.fpUnits - issued;
        if (lost > 0) {
            const IssueLoss cause = sawFuBlocked ? IssueLoss::FuBusy
                                    : sawMemWait ? IssueLoss::MemStall
                                    : sawDepWait ? IssueLoss::DepWait
                                                 : IssueLoss::FrontEnd;
            prof->issueLost(cause, lost);
        }
    }
}

void
Pipeline::releaseUop(const Uop &u)
{
    if (u.destType == 1)
        --intRegsUsed_;
    else if (u.destType == 2)
        --fpRegsUsed_;
}

void
Pipeline::squashTail(Context &c, std::uint64_t from_seq)
{
    auto &dq = q_[static_cast<size_t>(c.id)];
    auto &ws = writerSeq_[static_cast<size_t>(c.id)];
    while (!dq.empty() && dq.back().seq >= from_seq) {
        const Uop &u = dq.back();
        releaseUop(u);
        ++stats_.squashed;
        --c.inflight;
        if (u.stage == Uop::Stage::Fetched) {
            --c.unissued;
            const bool is_fp = (u.instr->op == Op::FpAdd ||
                                u.instr->op == Op::FpMul ||
                                u.destType == 2);
            if (is_fp)
                --unissuedFp_;
            else
                --unissuedInt_;
        }
        if (u.instr->dest != regNone) {
            if (ws[u.instr->dest] == u.seq)
                ws[u.instr->dest] = 0; // re-bound as refetch proceeds
        }
        dq.pop_back();
    }
    if (waitBranch_[static_cast<size_t>(c.id)] >= from_seq)
        waitBranch_[static_cast<size_t>(c.id)] = 0;
}

void
Pipeline::executeStage()
{
    for (Context &c : ctxs_) {
        auto &dq = q_[static_cast<size_t>(c.id)];
        for (std::uint32_t i = 0; i < dq.size(); ++i) {
            Uop &u = dq[i];
            if (u.stage != Uop::Stage::Issued || u.doneAt > now_)
                continue;
            u.stage = Uop::Stage::Done;

            if (u.trapDtlb && !u.wrongPath) {
                // Precise DTLB trap: rewind to re-execute this op,
                // then enter the PAL refill path.
                ThreadState &t = *c.thread;
                const int cls = u.mode == Mode::User ? 0 : 1;
                (void)cls;
                smtos_assert(u.hasCheckpoint);
                const Addr fault_vaddr = u.vaddr;
                t.cursor = u.cp;
                c.ras.restore(u.rasCp);
                mcf_.setGhr(u.ghrCp);
                squashTail(c, u.seq);
                c.fetchResumeAt = now_ + params_.redirectPenalty();
                c.stallReason = FetchStall::TrapDrain;
                stats_.kernelEntries.add("dtlb_miss");
                smtos_trace(TraceCat::Tlb,
                            "ctx%d dtlb miss vaddr=0x%llx", c.id,
                            (unsigned long long)fault_vaddr);
                if (probes_)
                    probes_->squash(c.gid, u.thread, u.pc,
                                    "dtlb-trap");
                os_->dtlbMiss(t, fault_vaddr);
                if (obs_)
                    obs_->onThreadStateSync(t, *seqPtr_);
                break; // queue shape changed; next context
            }

            if (u.instr->isBranch() && !u.wrongPath) {
                const int cls = u.mode == Mode::User ? 0 : 1;
                if (u.mispredicted) {
                    ++stats_.condMispred[cls];
                    smtos_trace(TraceCat::Squash,
                                "ctx%d mispredict pc=0x%llx seq=%llu",
                                c.id,
                                (unsigned long long)u.pc,
                                (unsigned long long)u.seq);
                    if (probes_)
                        probes_->squash(c.gid, u.thread, u.pc,
                                        "mispredict");
                    ThreadState &t = *c.thread;
                    t.cursor = u.cp;
                    c.ras.restore(u.rasCp);
                    mcf_.setGhr(u.ghrCp);
                    squashTail(c, u.seq + 1);
                    c.fetchResumeAt =
                        now_ + params_.redirectPenalty();
                    c.stallReason = FetchStall::Redirect;
                    break;
                }
                if (u.redirectOnly) {
                    ++stats_.targetMispred[cls];
                    waitBranch_[static_cast<size_t>(c.id)] = 0;
                    c.fetchResumeAt = std::max(c.fetchResumeAt,
                                               now_ + 1);
                }
            }
        }
    }
}

void
Pipeline::commitStage()
{
    int budget = params_.retireWidth;
    // Rotate the starting context for fairness.
    const int nc = static_cast<int>(ctxs_.size());
    const int start = static_cast<int>(now_ % static_cast<Cycle>(nc));
    for (int k = 0; k < nc && budget > 0; ++k) {
        Context &c = ctxs_[static_cast<size_t>((start + k) % nc)];
        auto &dq = q_[static_cast<size_t>(c.id)];
        while (budget > 0 && !dq.empty()) {
            Uop &u = dq.front();
            if (u.stage == Uop::Stage::Done) {
                commitUop(c, u);
                --c.inflight;
                --budget;
                dq.pop_front();
                continue;
            }
            if (u.serializing && u.stage == Uop::Stage::Fetched &&
                u.eligibleAt <= now_) {
                smtos_assert(!u.wrongPath);
                ThreadState &t = *c.thread;
                // Retire accounting first; the OS hook may rebind the
                // context's thread.
                commitUop(c, u);
                --c.inflight;
                --c.unissued;
                --unissuedInt_;
                --budget;
                const Instr in = *u.instr;
                dq.pop_front();
                os_->serializing(c, t, in);
                if (obs_) {
                    // The OS advanced t past the serializing op (and
                    // may have context-switched); both threads'
                    // functional state is authoritative again.
                    obs_->onThreadStateSync(t, *seqPtr_);
                    if (c.thread && c.thread != &t)
                        obs_->onThreadStateSync(*c.thread, *seqPtr_);
                }
                continue;
            }
            break;
        }
    }

    // Deliver pending interrupts to drained contexts.
    for (Context &c : ctxs_) {
        if (c.interruptPending && c.inflight == 0 && c.hasThread()) {
            c.interruptPending = false;
            stats_.kernelEntries.add("interrupt");
            ThreadState &t = *c.thread;
            os_->interrupt(c, t, c.interruptVector);
            if (obs_) {
                obs_->onThreadStateSync(t, *seqPtr_);
                if (c.thread && c.thread != &t)
                    obs_->onThreadStateSync(*c.thread, *seqPtr_);
            }
        }
    }
}

void
Pipeline::commitUop(Context &c, Uop &u)
{
    releaseUop(u);
    const Instr &in = *u.instr;
    ++stats_.retired[static_cast<int>(u.mode)];
    if (u.tag >= 0 && u.tag < 64)
        ++stats_.retiredByTag[u.tag];

    const int cls = u.mode == Mode::User ? 0 : 1;
    ++stats_.mix[cls][static_cast<int>(in.mixClass())];
    if (in.isPhysMem())
        ++stats_.physMem[cls][in.isStore() ? 1 : 0];
    if (u.isCondBranch) {
        ++stats_.condRetired[cls];
        if (u.actualTaken)
            ++stats_.condTaken[cls];
    }
    if (in.isStore() && u.drainAt > 0)
        hier_->storeBuffer().push(now_, u.drainAt);
    c.thread->cursor.retired++;

    if (obs_) {
        RetireEvent e;
        e.cycle = now_;
        e.ctx = c.id;
        e.thread = u.thread;
        e.seq = u.seq;
        e.pc = u.pc;
        e.instr = u.instr;
        e.mode = u.mode;
        e.tag = u.tag;
        e.vaddr = u.vaddr;
        e.paddr = u.paddr;
        e.isCondBranch = u.isCondBranch;
        e.taken = u.actualTaken;
        e.destValue =
            archWriteValue(c.thread->archRegs, in, u.pc);
        if (faultAtRetire_ != 0 &&
            stats_.totalRetired() == faultAtRetire_) {
            // Test-only: misreport this retirement so the cosim
            // oracle has a wrong result to catch.
            e.pc += instrBytes;
            faultAtRetire_ = 0;
        }
        obs_->onRetire(e);
    }
    if (probes_)
        probes_->retire(c.gid, u.thread, u.mode);
}

void
Pipeline::cycle()
{
    if (fidelity_ == Fidelity::Functional) {
        funcCycle();
        return;
    }
    ++now_;
    ++stats_.cycles;
    if (probes_)
        probes_->onCycle(now_);
    if (os_)
        os_->cycleHook(now_);
    commitStage();
    executeStage();
    issueStage();
    fetchStage();
}

bool
Pipeline::quiescent() const
{
    for (const Context &c : ctxs_) {
        // Any unissued uop can issue (or, serializing, commit) soon.
        if (c.unissued != 0)
            return false;
        // A drained context with a pending interrupt takes it at the
        // next commit stage.
        if (c.interruptPending && c.inflight == 0 && c.hasThread())
            return false;
        if (canFetch(c))
            return false;
        const auto &rq = q_[static_cast<size_t>(c.id)];
        // A completed uop at the head commits next cycle. (Completed
        // uops behind a still-executing head wait, contributing no
        // events, so they don't block the skip.)
        if (!rq.empty() && rq.front().stage == Uop::Stage::Done)
            return false;
    }
    return true;
}

Cycle
Pipeline::nextEventHorizon() const
{
    Cycle h = ~Cycle{0};
    for (const Context &c : ctxs_) {
        // Fetch wakeups. Clamping on every pending fetchResumeAt
        // (even for contexts also blocked for other reasons) keeps
        // fetchBlockCause() constant across the skipped window, so
        // the batched profiler attribution is exact.
        if (c.fetchResumeAt > now_ && c.fetchResumeAt < h)
            h = c.fetchResumeAt;
        const auto &rq = q_[static_cast<size_t>(c.id)];
        for (std::size_t i = 0; i < rq.size(); ++i) {
            const Uop &u = rq[i];
            if (u.stage == Uop::Stage::Issued && u.doneAt < h)
                h = u.doneAt;
        }
    }
    if (os_) {
        const Cycle osAt = os_->nextEventAt();
        if (osAt < h)
            h = osAt;
    }
    return h;
}

void
Pipeline::skipIdleCycles(Cycle k)
{
    // Batch-account k idle cycles exactly as k cycle() calls would:
    // each would tick the clock and probes, find nothing to commit,
    // execute, issue, or fetch, and charge a full width of lost
    // fetch/issue slots to the same (cause, context, tag).
    ffCycles_ += k;
    now_ += k;
    stats_.cycles += k;
    stats_.zeroFetchCycles += k;
    stats_.zeroIssueCycles += k;
    stats_.fetchableContexts.sampleN(0.0, k);
    if (probes_)
        probes_->onIdleCycles(now_, k);
    CycleProfiler *prof = probes_ ? probes_->profiler() : nullptr;
    if (!prof)
        return;
    // Replicate profileFetchSlots' zero-fetch path. Every input
    // (stall reasons, in-flight load completion times, cursor
    // positions) is constant until the horizon, so the per-cycle
    // charge is the same for all k cycles.
    SlotCause cause = SlotCause::Fragmentation;
    CtxId charged = invalidCtx;
    int best = -1;
    for (const Context &c : ctxs_) {
        const SlotCause bc = fetchBlockCause(c);
        const int pr = causePriority(bc);
        if (pr > best) {
            best = pr;
            cause = bc;
            charged = c.id;
        }
    }
    int tag = -1;
    if (charged != invalidCtx) {
        tag = currentServiceTag(ctxs_[static_cast<size_t>(charged)]);
        if (tag == TagSpin)
            cause = SlotCause::KernelSync;
    }
    prof->fetchLost(cause,
                    k * static_cast<Cycle>(params_.fetchWidth),
                    charged, tag);
    prof->issueLost(IssueLoss::FrontEnd,
                    k * static_cast<Cycle>(params_.intUnits +
                                           params_.fpUnits));
}

void
Pipeline::maybeFastForward(Cycle limit)
{
    if (!quiescent())
        return;
    Cycle h = nextEventHorizon();
    if (h > limit)
        h = limit;
    // Skip so the next cycle() lands exactly on the horizon. A
    // horizon at now_+1 (or earlier) means the next tick may do real
    // work — nothing to skip.
    if (h <= now_ + 1)
        return;
    skipIdleCycles(h - now_ - 1);
}

void
Pipeline::runInstrs(std::uint64_t retired)
{
    const std::uint64_t target = stats_.totalRetired() + retired;
    std::uint64_t last = stats_.totalRetired();
    Cycle last_progress = now_;
    while (stats_.totalRetired() < target) {
        if (fastForward_ && fidelity_ == Fidelity::Detailed) {
            // Clamp at the no-progress panic boundary so a wedged
            // machine aborts at the same cycle as the ticked loop.
            // (Functional cycles always make progress or hit the
            // panic below; quiescence is a detailed-timing notion.)
            maybeFastForward(last_progress + 200001);
        }
        cycle();
        if (stats_.totalRetired() != last) {
            last = stats_.totalRetired();
            last_progress = now_;
        } else if (now_ - last_progress > 200000) {
            smtos_panic("pipeline made no progress for 200k cycles "
                        "(cycle %llu)",
                        static_cast<unsigned long long>(now_));
        }
    }
}

void
Pipeline::runCycles(Cycle n)
{
    const Cycle end = now_ + n;
    while (now_ < end) {
        if (fastForward_ && fidelity_ == Fidelity::Detailed)
            maybeFastForward(end);
        cycle();
    }
}

std::string
Pipeline::auditInvariants() const
{
    std::ostringstream os;
    std::uint64_t inflight_total = 0;
    int unissued_total = 0;
    for (const Context &c : ctxs_) {
        const auto &q = q_[static_cast<size_t>(c.id)];
        if (c.inflight != static_cast<int>(q.size()))
            os << "ctx" << c.id << ": inflight counter " << c.inflight
               << " != window size " << q.size() << "\n";
        if (c.inflight < 0 || c.inflight > params_.maxInflightPerCtx)
            os << "ctx" << c.id << ": inflight " << c.inflight
               << " outside [0, " << params_.maxInflightPerCtx
               << "]\n";
        int fetched = 0;
        for (std::size_t i = 0; i < q.size(); ++i)
            if (q[i].stage == Uop::Stage::Fetched)
                ++fetched;
        if (c.unissued != fetched)
            os << "ctx" << c.id << ": unissued counter " << c.unissued
               << " != unissued uops in window " << fetched << "\n";
        inflight_total += q.size();
        unissued_total += c.unissued;
    }
    const std::uint64_t accounted =
        stats_.squashed + stats_.totalRetired() + inflight_total;
    if (stats_.fetched != accounted)
        os << "instruction conservation violated: fetched "
           << stats_.fetched << " != squashed " << stats_.squashed
           << " + retired " << stats_.totalRetired()
           << " + in flight " << inflight_total << "\n";
    if (unissuedInt_ + unissuedFp_ != unissued_total)
        os << "issue-queue occupancy " << unissuedInt_ << "+"
           << unissuedFp_ << " != per-context total "
           << unissued_total << "\n";
    if (unissuedInt_ < 0 || unissuedInt_ > params_.intQueue)
        os << "int issue queue occupancy " << unissuedInt_
           << " outside [0, " << params_.intQueue << "]\n";
    if (unissuedFp_ < 0 || unissuedFp_ > params_.fpQueue)
        os << "fp issue queue occupancy " << unissuedFp_
           << " outside [0, " << params_.fpQueue << "]\n";
    if (intRegsUsed_ < 0 || intRegsUsed_ > params_.intRenameRegs)
        os << "int rename registers in use " << intRegsUsed_
           << " outside [0, " << params_.intRenameRegs << "]\n";
    if (fpRegsUsed_ < 0 || fpRegsUsed_ > params_.fpRenameRegs)
        os << "fp rename registers in use " << fpRegsUsed_
           << " outside [0, " << params_.fpRenameRegs << "]\n";
    return os.str();
}

void
Pipeline::dumpState(std::ostream &os) const
{
    os << "cycle " << now_ << ", fetched " << stats_.fetched
       << ", squashed " << stats_.squashed << ", retired "
       << stats_.totalRetired() << ", ipc " << stats_.ipc() << "\n";
    for (const Context &c : ctxs_) {
        os << "ctx" << c.id << ": thread "
           << (c.thread ? c.thread->id : invalidThread)
           << ", inflight " << c.inflight << ", unissued "
           << c.unissued << ", stall "
           << static_cast<int>(c.stallReason) << ", intr "
           << (c.interruptPending ? "pending" : "none") << " vec "
           << c.interruptVector << "\n";
        if (!c.thread)
            continue;
        const ThreadState &t = *c.thread;
        os << "  idle " << t.isIdleThread << ", user image "
           << (t.userImage != nullptr) << ", space "
           << (t.space ? t.space->asn() : -1) << "\n";
        os << std::hex;
        for (size_t r = 0; r < t.archRegs.size(); ++r) {
            os << (r % 8 == 0 ? "  " : " ") << "r" << std::dec << r
               << std::hex << "=" << t.archRegs[r];
            if (r % 8 == 7)
                os << "\n";
        }
        os << std::dec;
    }
}

} // namespace smtos
