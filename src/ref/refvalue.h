/**
 * @file
 * The architectural register-value model shared by the pipeline's
 * commit stage and the functional reference interpreter.
 *
 * The synthetic ISA carries register *names* (dependences) but no
 * concrete datapath semantics, so we define one: every retired
 * instruction that writes a register produces a value that is a hash
 * of its PC, its operation, and the current values of its source
 * registers. Both the pipeline (over its committed stream) and the
 * RefCore (over its functional stream) evaluate this chain
 * independently; because the chain threads every prior write of every
 * source register, a single skipped, duplicated, or reordered
 * retirement poisons all downstream values, so divergences are sticky
 * and cannot cancel out by accident.
 */

#ifndef SMTOS_REF_REFVALUE_H
#define SMTOS_REF_REFVALUE_H

#include <array>
#include <cstdint>

#include "common/rng.h"
#include "isa/instr.h"

namespace smtos {

/** One architectural register file (0-31 int, 32-63 fp). */
using ArchRegs = std::array<std::uint64_t, numIntRegs + numFpRegs>;

/**
 * Evaluate the value model for one retired instruction: read the
 * sources, compute the defined value, and write the destination.
 * Returns the written value (0 when the instruction has no dest).
 */
inline std::uint64_t
archWriteValue(ArchRegs &regs, const Instr &in, Addr pc)
{
    if (in.dest == regNone)
        return 0;
    const std::uint64_t a = in.srcA != regNone ? regs[in.srcA] : 0;
    const std::uint64_t b = in.srcB != regNone ? regs[in.srcB] : 0;
    const std::uint64_t v =
        mixHash(pc ^ (static_cast<std::uint64_t>(in.op) << 56),
                mixHash(a, b));
    regs[in.dest] = v;
    return v;
}

} // namespace smtos

#endif // SMTOS_REF_REFVALUE_H
