/**
 * @file
 * Seeded random-program generation for co-simulation fuzzing.
 *
 * Each seed produces a structurally valid but randomly shaped user
 * program: randomized instruction mix, memory-region weights, control
 * flow (loops, diamonds, indirect jumps, calls), and random
 * non-blocking system calls. Programs end in an infinite steady loop
 * (like the SPECInt workload) so a run of any length stays on defined
 * code; blocking syscalls (accept/select) and Halt are never emitted.
 */

#ifndef SMTOS_REF_PROGFUZZ_H
#define SMTOS_REF_PROGFUZZ_H

#include <cstdint>
#include <memory>

#include "isa/program.h"

namespace smtos {

class Kernel;

/** One fuzzed user program. */
struct FuzzedProgram
{
    std::unique_ptr<CodeImage> image;
    int entryFunc = 0;
    std::uint64_t seed = 0;
};

/** Generate a random program from @p seed (deterministic per seed). */
FuzzedProgram fuzzProgram(std::uint64_t seed);

/** Install @p fp as a user process; @p index diversifies pid-local
 *  parameters (seed, heap size, input file). */
void installFuzzedProc(Kernel &k, const FuzzedProgram &fp, int index);

} // namespace smtos

#endif // SMTOS_REF_PROGFUZZ_H
