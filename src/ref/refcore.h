/**
 * @file
 * The functional reference interpreter.
 *
 * RefCore executes the same Program/KernelCode ISA as smtos::Pipeline
 * but with architecturally-visible state only: an execution cursor
 * (PC, call frames, loop counters, stochastic state), the thread's
 * magic registers, the register-value model of refvalue.h, and a
 * sparse map of memory effects. It is strictly in-order and has no
 * notion of time, speculation, caches, TLBs, or branch prediction —
 * which is exactly why it works as an oracle: the pipeline's *retired*
 * stream must equal the reference's functional stream instruction for
 * instruction, no matter what the out-of-order, wrong-path-fetching,
 * squash-happy core did to produce it. This is the same validation
 * pattern gem5 uses between its O3 CPU and the simple functional CPUs.
 *
 * The kernel model is the one part of the machine the reference cannot
 * re-execute independently (its decisions read timing-dependent state:
 * run queues, TLB contents, device queues). At every OS intervention —
 * trap vectoring, serializing-instruction semantics, interrupt
 * delivery, context-switch push — the harness captures the thread's
 * functional state and the reference adopts it, then verifies the
 * pipeline against it until the next intervention. Between
 * interventions the reference is fully independent.
 */

#ifndef SMTOS_REF_REFCORE_H
#define SMTOS_REF_REFCORE_H

#include <cstdint>

#include "isa/cursor.h"
#include "ref/refvalue.h"
#include "snap/fwd.h"

namespace smtos {

struct ThreadState;

/**
 * A captured functional thread state: everything the reference needs
 * to resume lockstep execution from an OS intervention point.
 */
struct RefSyncState
{
    Cursor cursor;
    ThreadIprs iprs;
    MemRegion regions[maxRegions];
    const CodeImage *userImage = nullptr;
    bool isIdleThread = false;

    static RefSyncState capture(const ThreadState &t);
};

/** What the reference expects the next retired instruction to be. */
struct RefRetire
{
    Addr pc = 0;
    const Instr *instr = nullptr;
    Mode mode = Mode::User;
    std::int16_t tag = -1;      ///< kernel service tag, -1 for user
    Addr vaddr = 0;             ///< memory ops only
    bool taken = false;         ///< conditional branches only
    std::uint64_t destValue = 0; ///< value model result (0: no dest)
};

/** The in-order functional core for one software thread. */
class RefCore
{
  public:
    RefCore() = default;

    /** Adopt a captured thread state (OS intervention). Register
     *  values persist: they evolve only through the value model. */
    void apply(const RefSyncState &s, const CodeImage *kernel_image);

    /** True once the first sync arrived. */
    bool live() const { return live_; }

    /**
     * True when the reference executed a serializing instruction and
     * is waiting for the OS intervention that must follow it before
     * any further instruction of this thread may retire.
     */
    bool waitingForOs() const { return waitingOs_; }

    /**
     * Execute one instruction: compute the expected retirement record
     * and advance the functional state past it. A serializing
     * instruction is reported but not stepped over (the OS owns that
     * transition); waitingForOs() becomes true.
     */
    RefRetire step();

    /** Instructions executed since the first sync. */
    std::uint64_t executed() const { return executed_; }

    const Cursor &cursor() const { return cur_; }
    const ImageSet &images() const { return is_; }
    const ArchRegs &regs() const { return regs_; }

    /** Serialize the full functional state (cosim snapshot). */
    void save(Snapshotter &sp, const SnapImages &images) const;

    /** Mirror of save(); @p kernel_image rebinds the image set. */
    void load(Restorer &rs, const SnapImages &images,
              const CodeImage *kernel_image);

  private:
    Cursor cur_;
    ThreadIprs iprs_;
    MemRegion regions_[maxRegions];
    ImageSet is_;
    bool isIdle_ = false;
    bool live_ = false;
    bool waitingOs_ = false;
    std::uint64_t executed_ = 0;
    ArchRegs regs_{};
};

} // namespace smtos

#endif // SMTOS_REF_REFCORE_H
