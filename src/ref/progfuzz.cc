#include "ref/progfuzz.h"

#include <string>
#include <vector>

#include "isa/codegen.h"
#include "kernel/kernel.h"
#include "kernel/layout.h"

namespace smtos {

namespace {

/** Syscalls that never block a SpecInt-kind process. */
constexpr std::uint16_t safeSyscalls[] = {
    SysRead,  SysWrite,  SysWritev, SysStat,   SysOpen,
    SysClose, SysMmap,   SysMunmap, SysBrk,    SysGetPid,
};
constexpr int numSafeSyscalls =
    static_cast<int>(sizeof(safeSyscalls) / sizeof(safeSyscalls[0]));

/** Randomize the generator profile inside a structurally safe box. */
CodeProfile
fuzzProfile(Rng &r)
{
    CodeProfile p;
    p.loadFrac = 0.08 + r.uniform() * 0.25;
    p.storeFrac = 0.04 + r.uniform() * 0.16;
    p.fpFrac = r.uniform() * 0.12;
    p.mulFrac = r.uniform() * 0.15;
    p.physMemFrac = 0.0; // user code never bypasses the TLB
    p.seqFrac = r.uniform() * 0.6;
    p.stackFrac = r.uniform() * 0.4;
    p.virtRegions = {{regUserGlobals, 0.5 + r.uniform() * 3.0},
                     {regUserHeap, 0.5 + r.uniform() * 3.0},
                     {regUserAux, r.uniform()}};
    p.physRegions = {};
    p.stackRegion = regUserStack;
    p.strideMin = 4 << r.below(3);
    p.strideMax = p.strideMin * static_cast<int>(2 + r.below(7));
    p.loopFrac = 0.1 + r.uniform() * 0.35;
    p.diamondFrac = 0.2 + r.uniform() * 0.4;
    p.indirectFrac = r.uniform() * 0.08;
    p.takenBias = 0.25 + r.uniform() * 0.6;
    p.loopTripMin = static_cast<int>(2 + r.below(4));
    p.loopTripMax = p.loopTripMin + static_cast<int>(2 + r.below(28));
    p.indirectFanMin = 2;
    p.indirectFanMax = static_cast<int>(3 + r.below(5));
    p.midBranchFrac = r.uniform() * 0.2;
    p.instrsPerBlockMin = static_cast<int>(3 + r.below(4));
    p.instrsPerBlockMax =
        p.instrsPerBlockMin + static_cast<int>(2 + r.below(9));
    return p;
}

} // namespace

FuzzedProgram
fuzzProgram(std::uint64_t seed)
{
    Rng r(mixHash(seed, 0xf022aull));

    FuzzedProgram fp;
    fp.seed = seed;
    fp.image = std::make_unique<CodeImage>(
        "fuzz" + std::to_string(seed), userTextBase);
    CodeImage &img = *fp.image;
    CodeGen g(img, fuzzProfile(r), mixHash(seed, 0xc0dellu));

    // A random call graph: leaves, then mid-level functions over them.
    auto pad = [&] {
        if (r.chance(0.7))
            g.genPadding(static_cast<int>(80 + r.below(700)));
    };
    std::vector<int> leaves;
    const int num_leaves = static_cast<int>(2 + r.below(6));
    for (int i = 0; i < num_leaves; ++i) {
        pad();
        leaves.push_back(g.genFunction(
            "leaf" + std::to_string(i),
            static_cast<int>(3 + r.below(10)), {}));
    }
    std::vector<int> mids;
    const int num_mids = static_cast<int>(1 + r.below(4));
    for (int i = 0; i < num_mids; ++i) {
        pad();
        mids.push_back(g.genFunction(
            "mid" + std::to_string(i),
            static_cast<int>(4 + r.below(10)), leaves));
    }
    std::vector<int> callees = mids;
    callees.insert(callees.end(), leaves.begin(), leaves.end());
    pad();

    // Main: setup, then body segments in an infinite steady loop.
    // Segment i is three blocks (3i+1 .. 3i+3): a work block ending
    // in an optional call, a diamond head that usually skips over the
    // tail, and a tail holding a random non-blocking system call; the
    // final block jumps back to the first segment.
    fp.entryFunc = img.beginFunction("main", -1);
    const int num_segs = static_cast<int>(3 + r.below(6));
    img.beginBlock(); // b0: setup
    g.emitWork(static_cast<int>(2 + r.below(8)));
    if (r.chance(0.5))
        img.emit(g.makeSyscall(SysOpen));
    for (int i = 0; i < num_segs; ++i) {
        img.beginBlock(); // 3i+1: work, maybe call
        g.emitWork(static_cast<int>(3 + r.below(10)));
        if (!callees.empty() && r.chance(0.75))
            img.emit(g.makeCall(callees[r.below(callees.size())]));
        img.beginBlock(); // 3i+2: diamond head
        g.emitWork(static_cast<int>(1 + r.below(5)));
        // Usually skip the syscall tail; sometimes fall into it.
        img.emit(g.makeCond(3 * i + 4, 0.85 + r.uniform() * 0.14));
        img.beginBlock(); // 3i+3: syscall tail
        img.emit(g.makeSyscall(
            safeSyscalls[r.below(numSafeSyscalls)]));
        g.emitWork(static_cast<int>(1 + r.below(5)));
    }
    img.beginBlock(); // closing block: 3*num_segs+1
    g.emitWork(static_cast<int>(2 + r.below(6)));
    img.emit(g.makeJump(1));

    img.finalize();
    return fp;
}

void
installFuzzedProc(Kernel &k, const FuzzedProgram &fp, int index)
{
    ProcParams cfg;
    cfg.kind = ProcKind::SpecIntApp;
    cfg.image = fp.image.get();
    cfg.entryFunc = fp.entryFunc;
    cfg.seed = mixHash(fp.seed, 0x9117ull * (index + 1));
    cfg.heapBytes = (1ull + (mixHash(fp.seed, index) & 7)) << 20;
    cfg.inputChunks = 16;
    cfg.inputFileId = 2000 + index;
    cfg.shareText = false;
    k.createProcess(cfg);
}

} // namespace smtos
