#include "ref/refcore.h"

#include <cstring>

#include "common/logging.h"
#include "core/context.h"

namespace smtos {

RefSyncState
RefSyncState::capture(const ThreadState &t)
{
    RefSyncState s;
    s.cursor = t.cursor;
    s.iprs = t.iprs;
    for (int i = 0; i < maxRegions; ++i)
        s.regions[i] = t.regions[i];
    s.userImage = t.userImage;
    s.isIdleThread = t.isIdleThread;
    return s;
}

void
RefCore::apply(const RefSyncState &s, const CodeImage *kernel_image)
{
    cur_ = s.cursor;
    // The live cursor is never mid-speculation at an OS intervention;
    // a stale wrong-path/stuck flag would wedge the reference.
    cur_.setWrongPath(false);
    cur_.setStuck(false);
    iprs_ = s.iprs;
    for (int i = 0; i < maxRegions; ++i)
        regions_[i] = s.regions[i];
    is_ = ImageSet{s.userImage, kernel_image};
    isIdle_ = s.isIdleThread;
    live_ = true;
    waitingOs_ = false;
}

RefRetire
RefCore::step()
{
    smtos_assert(live_ && !waitingOs_);
    smtos_assert(cur_.valid());

    RefRetire r;
    const Instr &in = cur_.currentInstr(is_);
    r.pc = cur_.currentPc(is_);
    r.instr = &in;
    const Mode m = cur_.mode(is_);
    r.mode = (isIdle_ && m != Mode::User) ? Mode::Idle : m;
    if (cur_.top().inKernel)
        r.tag = is_.kernel->func(cur_.top().func).tag;

    if (in.isSerializing()) {
        // The OS model performs this instruction's semantics and
        // advances the thread; stop here until that sync arrives.
        waitingOs_ = true;
    } else if (in.isBranch()) {
        const BranchPreview bp = cur_.previewBranch(is_, iprs_);
        r.taken = in.op == Op::CondBranch ? bp.taken : true;
        cur_.followBranch(is_, bp, bp.taken);
    } else {
        if (in.isMem()) {
            if (!cur_.takeRetryVaddr(r.vaddr))
                r.vaddr = cur_.memAddress(in, regions_, iprs_);
        }
        cur_.stepSequential(is_);
    }

    r.destValue = archWriteValue(regs_, in, r.pc);
    ++executed_;
    return r;
}

} // namespace smtos
