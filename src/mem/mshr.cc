#include "mem/mshr.h"

#include <algorithm>

#include "common/logging.h"

namespace smtos {

MshrFile::MshrFile(std::string name, int entries) : name_(std::move(name))
{
    smtos_assert(entries > 0);
    entries_.assign(static_cast<size_t>(entries), Entry{});
}

void
MshrFile::releaseExpired(Cycle now)
{
    for (Entry &e : entries_)
        if (e.valid && e.readyAt <= now)
            e.valid = false;
}

MshrGrant
MshrFile::request(Addr blockAddr, Cycle now)
{
    releaseExpired(now);

    MshrGrant grant;
    grant.startAt = now;

    // Merge into an in-flight fill of the same block.
    for (Entry &e : entries_) {
        if (e.valid && e.blockAddr == blockAddr) {
            ++merges_;
            grant.merged = true;
            grant.mergedReadyAt = e.readyAt;
            return grant;
        }
    }

    // Find a free entry, or wait for the earliest completion.
    for (Entry &e : entries_) {
        if (!e.valid)
            return grant;
    }

    ++fullStalls_;
    Cycle earliest = entries_[0].readyAt;
    for (const Entry &e : entries_)
        earliest = std::min(earliest, e.readyAt);
    grant.startAt = std::max(now, earliest);
    releaseExpired(grant.startAt);
    return grant;
}

void
MshrFile::complete(Addr blockAddr, Cycle startAt, Cycle readyAt)
{
    smtos_assert(readyAt >= startAt);
    for (Entry &e : entries_) {
        if (!e.valid) {
            e.valid = true;
            e.blockAddr = blockAddr;
            e.readyAt = readyAt;
            ++fills_;
            occupancyIntegral_ +=
                static_cast<double>(readyAt - startAt);
            return;
        }
    }
    smtos_panic("MSHR %s: complete() with no free entry", name_.c_str());
}

Cycle
MshrFile::hitUnderFill(Addr blockAddr, Cycle now)
{
    for (const Entry &e : entries_) {
        if (e.valid && e.blockAddr == blockAddr && e.readyAt > now) {
            ++merges_;
            return e.readyAt;
        }
    }
    return 0;
}

int
MshrFile::outstanding(Cycle now) const
{
    int n = 0;
    for (const Entry &e : entries_)
        if (e.valid && e.readyAt > now)
            ++n;
    return n;
}

} // namespace smtos
