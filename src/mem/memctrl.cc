#include "mem/memctrl.h"

#include <algorithm>

#include "common/logging.h"
#include "obs/probes.h"

namespace smtos {

DramStats
DramStats::delta(const DramStats &e) const
{
    DramStats d = *this;
    d.accesses = accesses - e.accesses;
    d.rowHits = rowHits - e.rowHits;
    d.rowEmpties = rowEmpties - e.rowEmpties;
    d.rowConflicts = rowConflicts - e.rowConflicts;
    d.latencyCycles = latencyCycles - e.latencyCycles;
    d.queueStallCycles = queueStallCycles - e.queueStallCycles;
    d.queueFullStalls = queueFullStalls - e.queueFullStalls;
    d.queueOccupancy = queueOccupancy - e.queueOccupancy;
    auto sub = [](std::vector<std::uint64_t> &a,
                  const std::vector<std::uint64_t> &b) {
        if (b.empty())
            return; // earlier snapshot predates the counters
        smtos_assert(a.size() == b.size());
        for (std::size_t i = 0; i < a.size(); ++i)
            a[i] -= b[i];
    };
    sub(d.chAccesses, e.chAccesses);
    sub(d.chBusyCycles, e.chBusyCycles);
    sub(d.bankRowHits, e.bankRowHits);
    sub(d.bankRowConflicts, e.bankRowConflicts);
    return d;
}

MemCtrl::MemCtrl(Cycle flat_latency, const DramParams &params)
    : params_(params), flat_(flat_latency)
{
    if (!params_.banked)
        return;
    banks_.resize(static_cast<std::size_t>(params_.totalBanks()));
    rankWin_.resize(
        static_cast<std::size_t>(params_.channels * params_.ranks));
    channels_.resize(static_cast<std::size_t>(params_.channels));
    chAccesses_.assign(static_cast<std::size_t>(params_.channels), 0);
    chBusyCycles_.assign(static_cast<std::size_t>(params_.channels), 0);
    bankRowHits_.assign(static_cast<std::size_t>(params_.totalBanks()),
                        0);
    bankRowConflicts_.assign(
        static_cast<std::size_t>(params_.totalBanks()), 0);
}

int
MemCtrl::channelOf(Addr paddr) const
{
    const Addr blk = paddr / static_cast<Addr>(params_.burstBytes);
    return static_cast<int>(blk %
                            static_cast<Addr>(params_.channels));
}

int
MemCtrl::bankOf(Addr paddr) const
{
    const Addr blk = paddr / static_cast<Addr>(params_.burstBytes);
    const int ch = static_cast<int>(
        blk % static_cast<Addr>(params_.channels));
    const Addr rest = blk / static_cast<Addr>(params_.channels);
    const int perCh = params_.ranks * params_.banksPerRank;
    const int inCh =
        static_cast<int>(rest % static_cast<Addr>(perCh));
    return ch * perCh + inCh;
}

std::int64_t
MemCtrl::rowOf(Addr paddr) const
{
    const Addr blk = paddr / static_cast<Addr>(params_.burstBytes);
    const Addr rest = blk / static_cast<Addr>(params_.channels);
    const Addr colBlk =
        rest / static_cast<Addr>(params_.ranks * params_.banksPerRank);
    const Addr blocksPerRow = static_cast<Addr>(
        params_.rowBytes / params_.burstBytes);
    return static_cast<std::int64_t>(colBlk / blocksPerRow);
}

int
MemCtrl::rankIdOf(Addr paddr) const
{
    const int bank = bankOf(paddr);
    const int perCh = params_.ranks * params_.banksPerRank;
    const int ch = bank / perCh;
    const int inCh = bank % perCh;
    return ch * params_.ranks + inCh / params_.banksPerRank;
}

void
MemCtrl::purge(Channel &c, Cycle now)
{
    c.inflight.erase(
        std::remove_if(c.inflight.begin(), c.inflight.end(),
                       [now](Cycle f) { return f <= now; }),
        c.inflight.end());
    // Bus reservations that ended at or before `now` can never
    // overlap a later placement (arrivals are monotone).
    c.busy.erase(std::remove_if(c.busy.begin(), c.busy.end(),
                                [now](const Interval &iv) {
                                    return iv.end <= now;
                                }),
                 c.busy.end());
}

Cycle
MemCtrl::claimBus(Channel &c, Cycle from)
{
    Cycle start = from;
    const Cycle len = params_.tBurst;
    std::size_t at = 0;
    for (std::size_t i = 0; i < c.busy.size(); ++i) {
        const Interval &iv = c.busy[i];
        if (iv.end <= start) {
            at = i + 1;
            continue;
        }
        if (iv.start >= start + len)
            break; // a gap before this reservation fits
        start = iv.end; // collide: slide past and keep looking
        at = i + 1;
    }
    c.busy.insert(c.busy.begin() + static_cast<std::ptrdiff_t>(at),
                  Interval{start, start + len});
    return start;
}

Cycle
MemCtrl::access(Addr paddr, const AccessInfo &who, Cycle now)
{
    if (!params_.banked)
        return flat_.access(now);

    const int ch = channelOf(paddr);
    Channel &c = channels_[static_cast<std::size_t>(ch)];

    // Bounded queue: a full channel backpressures the arrival until
    // the oldest in-flight request completes.
    Cycle arrival = now;
    purge(c, arrival);
    if (static_cast<int>(c.inflight.size()) >= params_.queueDepth) {
        ++queueFullStalls_;
        while (static_cast<int>(c.inflight.size()) >=
               params_.queueDepth) {
            arrival = *std::min_element(c.inflight.begin(),
                                        c.inflight.end());
            purge(c, arrival);
        }
        queueStallCycles_ += arrival - now;
    }

    const int bank = bankOf(paddr);
    Bank &b = banks_[static_cast<std::size_t>(bank)];
    const std::int64_t row = rowOf(paddr);

    DramRowOutcome out;
    Cycle dataReady;
    if (b.openRow == row) {
        out = DramRowOutcome::Hit;
        dataReady = std::max(arrival, b.nextColAt) + params_.tCas;
    } else {
        Cycle act = std::max(arrival, b.readyAt);
        if (b.openRow < 0) {
            out = DramRowOutcome::Empty;
        } else {
            out = DramRowOutcome::Conflict;
            act += params_.tRp;
        }
        // tFAW: the fourth-last activate on this rank gates this one.
        RankWindow &r =
            rankWin_[static_cast<std::size_t>(rankIdOf(paddr))];
        if (r.count >= 4)
            act = std::max(act, r.act[r.pos] + params_.tFaw);
        else
            ++r.count;
        r.act[r.pos] = act;
        r.pos = (r.pos + 1) % 4;
        dataReady = act + params_.tRcd + params_.tCas;
    }

    // FR-FCFS: the burst takes the earliest bus gap its bank timing
    // allows, so early-ready row hits overtake queued conflicts.
    const Cycle start = claimBus(c, dataReady);
    const Cycle finish = start + params_.tBurst;

    if (params_.closedPage) {
        b.openRow = -1;
        b.nextColAt = finish;
        b.readyAt = finish + params_.tRp; // auto-precharge
    } else {
        b.openRow = row;
        b.nextColAt = start;
        b.readyAt = finish;
    }

    c.inflight.push_back(finish);

    ++accesses_;
    ++chAccesses_[static_cast<std::size_t>(ch)];
    chBusyCycles_[static_cast<std::size_t>(ch)] += params_.tBurst;
    switch (out) {
      case DramRowOutcome::Hit:
        ++rowHits_;
        ++bankRowHits_[static_cast<std::size_t>(bank)];
        break;
      case DramRowOutcome::Empty:
        ++rowEmpties_;
        break;
      case DramRowOutcome::Conflict:
        ++rowConflicts_;
        ++bankRowConflicts_[static_cast<std::size_t>(bank)];
        break;
    }
    latencyCycles_ += finish - now;
    queueOccupancy_ += c.inflight.size();

    if (probes_)
        probes_->dramAccess(who.thread, paddr, ch, bank,
                            static_cast<int>(out),
                            static_cast<int>(c.inflight.size()));
    return finish;
}

DramStats
MemCtrl::stats() const
{
    DramStats s;
    s.banked = params_.banked;
    if (!params_.banked) {
        s.accesses = flat_.accesses();
        return s;
    }
    s.accesses = accesses_;
    s.rowHits = rowHits_;
    s.rowEmpties = rowEmpties_;
    s.rowConflicts = rowConflicts_;
    s.latencyCycles = latencyCycles_;
    s.queueStallCycles = queueStallCycles_;
    s.queueFullStalls = queueFullStalls_;
    s.queueOccupancy = queueOccupancy_;
    s.chAccesses = chAccesses_;
    s.chBusyCycles = chBusyCycles_;
    s.bankRowHits = bankRowHits_;
    s.bankRowConflicts = bankRowConflicts_;
    return s;
}

} // namespace smtos
