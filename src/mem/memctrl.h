/**
 * @file
 * Banked DRAM behind an FR-FCFS memory controller.
 *
 * The controller sits where the flat Dram used to: Hierarchy calls
 * access() once per line fill leaving the L2 MSHRs, and receives the
 * completion cycle. When DramParams::banked is false every access
 * forwards to the flat fixed-latency Dram, bit-identically to the
 * pre-banked model. When banked, the controller models:
 *
 *  - channels x ranks x banksPerRank banks, each with a row buffer
 *    (rowBytes wide). Addresses interleave line-granular across
 *    channels first, then banks, so streams spread over the machine.
 *  - open- vs closed-page policy: open keeps the row latched (hits
 *    pay tCAS only, conflicts pay tRP+tRCD+tCAS), closed auto-
 *    precharges after every column (every access pays tRCD+tCAS but
 *    never a conflict).
 *  - FR-FCFS scheduling in latency-composition form: each channel
 *    keeps its reserved data-bus intervals, and a newly arriving
 *    request claims the earliest gap its bank timing allows. Row hits
 *    become data-ready early and therefore overtake queued row
 *    misses/conflicts — first-ready, first-come-first-served —
 *    without an event queue, in the same style as mem::Bus.
 *  - a bounded per-channel request queue: when queueDepth requests
 *    are in flight the arrival stalls until the oldest completes
 *    (backpressure into the L2 miss path).
 *  - tFAW-style activate throttling: at most four row activates per
 *    rank per tFAW window.
 *
 * All state advances only inside access(), so the model is
 * deterministic, identical under the host fast path, and snapshots
 * as plain data (save/load in snap/state.cc).
 */

#ifndef SMTOS_MEM_MEMCTRL_H
#define SMTOS_MEM_MEMCTRL_H

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "mem/dram.h"
#include "mem/missclass.h"
#include "snap/fwd.h"

namespace smtos {

class Probes;

/** Geometry, policy, and timing of the banked DRAM model. */
struct DramParams
{
    /** false: flat fixed-latency DRAM (the Table-1 default). */
    bool banked = false;

    int channels = 2;
    int ranks = 2;
    int banksPerRank = 8;
    /** Row-buffer width per bank. */
    int rowBytes = 2048;
    /** Transfer granule; one L2 line per request. */
    int burstBytes = 64;
    /** Bounded in-flight requests per channel (backpressure). */
    int queueDepth = 16;
    /** true: auto-precharge after every column (closed-page). */
    bool closedPage = false;

    /**
     * Timing minimums in CPU cycles, sized so a row conflict
     * (tRP+tRCD+tCAS) lands at the flat model's 90 cycles: hits pay
     * 30, empty-bank activates 60, conflicts 90 (plus the burst).
     */
    Cycle tRcd = 30; ///< activate -> column command
    Cycle tRp = 30;  ///< precharge
    Cycle tCas = 26; ///< column command -> data
    Cycle tBurst = 4; ///< data-bus occupancy per burst
    Cycle tFaw = 60; ///< four-activate window per rank

    int totalBanks() const { return channels * ranks * banksPerRank; }
};

/** Row-buffer outcome of one banked access. */
enum class DramRowOutcome : std::uint8_t
{
    Hit = 0,   ///< open row matched: tCAS only
    Empty,     ///< bank precharged: tRCD+tCAS
    Conflict,  ///< wrong row open: tRP+tRCD+tCAS
};

/** Counters exported into MetricsSnapshot (all monotone). */
struct DramStats
{
    bool banked = false;
    std::uint64_t accesses = 0;
    std::uint64_t rowHits = 0;
    std::uint64_t rowEmpties = 0;
    std::uint64_t rowConflicts = 0;
    /** Sum of (completion - arrival) over all accesses. */
    std::uint64_t latencyCycles = 0;
    /** Cycles arrivals waited for a queue slot, and how often. */
    std::uint64_t queueStallCycles = 0;
    std::uint64_t queueFullStalls = 0;
    /** Queue occupancy summed per access (avg = /accesses). */
    std::uint64_t queueOccupancy = 0;
    std::vector<std::uint64_t> chAccesses;
    std::vector<std::uint64_t> chBusyCycles;
    std::vector<std::uint64_t> bankRowHits;
    std::vector<std::uint64_t> bankRowConflicts;

    double
    avgLatency() const
    {
        return accesses == 0 ? 0.0
                             : static_cast<double>(latencyCycles) /
                                   static_cast<double>(accesses);
    }

    /** Counter-wise difference (this minus @p earlier). */
    DramStats delta(const DramStats &earlier) const;
};

/** The memory controller: flat Dram or the banked model. */
class MemCtrl
{
  public:
    MemCtrl(Cycle flat_latency, const DramParams &params);

    /**
     * One line fill leaving the L2 MSHRs at cycle @p now.
     * @return completion cycle of the data burst.
     */
    Cycle access(Addr paddr, const AccessInfo &who, Cycle now);

    bool banked() const { return params_.banked; }
    const DramParams &params() const { return params_; }

    /** The flat model (live counter in flat mode). */
    Dram &flat() { return flat_; }
    const Dram &flat() const { return flat_; }

    /** Attach (or detach, with nullptr) the observability hub. */
    void setProbes(Probes *p) { probes_ = p; }

    /** Snapshot of the counters (banked flag included). */
    DramStats stats() const;

    // Address decomposition, exposed for tests and benches.
    int channelOf(Addr paddr) const;
    /** Global bank id in [0, totalBanks). */
    int bankOf(Addr paddr) const;
    std::int64_t rowOf(Addr paddr) const;

    static constexpr std::uint32_t snapVersion = 1;
    void save(Snapshotter &sp) const;
    void load(Restorer &rs);

  private:
    struct Bank
    {
        std::int64_t openRow = -1; ///< -1: precharged
        /** Earliest cycle a precharge/activate may start. */
        Cycle readyAt = 0;
        /** Earliest cycle the next column command may issue. */
        Cycle nextColAt = 0;
    };

    struct RankWindow
    {
        Cycle act[4] = {0, 0, 0, 0}; ///< last four activate times
        std::int32_t pos = 0;        ///< oldest slot
        std::int32_t count = 0;      ///< valid entries (gate at 4)
    };

    struct Interval
    {
        Cycle start = 0;
        Cycle end = 0;
    };

    struct Channel
    {
        /** Reserved data-bus bursts, sorted by start, disjoint. */
        std::vector<Interval> busy;
        /** Completion times of in-flight requests (queue model). */
        std::vector<Cycle> inflight;
    };

    /** Drop retired work; every entry with finish <= @p now. */
    static void purge(Channel &c, Cycle now);

    /** Earliest burst start >= @p from on @p c's data bus. */
    Cycle claimBus(Channel &c, Cycle from);

    int rankIdOf(Addr paddr) const;

    DramParams params_;
    Dram flat_;
    Probes *probes_ = nullptr;

    std::vector<Bank> banks_;
    std::vector<RankWindow> rankWin_;
    std::vector<Channel> channels_;

    // Counters (see DramStats).
    std::uint64_t accesses_ = 0;
    std::uint64_t rowHits_ = 0;
    std::uint64_t rowEmpties_ = 0;
    std::uint64_t rowConflicts_ = 0;
    std::uint64_t latencyCycles_ = 0;
    std::uint64_t queueStallCycles_ = 0;
    std::uint64_t queueFullStalls_ = 0;
    std::uint64_t queueOccupancy_ = 0;
    std::vector<std::uint64_t> chAccesses_;
    std::vector<std::uint64_t> chBusyCycles_;
    std::vector<std::uint64_t> bankRowHits_;
    std::vector<std::uint64_t> bankRowConflicts_;
};

} // namespace smtos

#endif // SMTOS_MEM_MEMCTRL_H
