#include "mem/cache.h"

#include <algorithm>

#include "common/logging.h"
#include "common/stats.h"
#include "obs/probes.h"

namespace smtos {

namespace {

std::uint64_t
threadBit(ThreadId t)
{
    return 1ull << (static_cast<std::uint64_t>(t) & 63);
}

} // namespace

Cache::Cache(const CacheParams &params) : params_(params)
{
    SMTOS_CHECK(params_.assoc >= 1);
    SMTOS_CHECK(params_.lineBytes > 0);
    const std::uint64_t num_lines = params_.sizeBytes / params_.lineBytes;
    SMTOS_CHECK(num_lines % params_.assoc == 0);
    numSets_ = static_cast<int>(num_lines / params_.assoc);
    SMTOS_CHECK(numSets_ >= 1);
    lines_.assign(num_lines, Line{});
    tags_.assign(num_lines, noTag);

    auto pow2 = [](std::uint64_t v) { return (v & (v - 1)) == 0; };
    fastGeom_ = pow2(static_cast<std::uint64_t>(params_.lineBytes)) &&
                pow2(static_cast<std::uint64_t>(numSets_));
    if (fastGeom_) {
        while ((1 << lineShift_) < params_.lineBytes)
            ++lineShift_;
        setMask_ = static_cast<Addr>(numSets_) - 1;
    }
}

CacheOutcome
Cache::access(Addr addr, const AccessInfo &who, bool is_write)
{
    CacheOutcome out;
    const Addr block = blockOf(addr);
    const int set = setOf(block);
    const size_t setBase = static_cast<size_t>(set) *
                           static_cast<size_t>(params_.assoc);
    Line *base = &lines_[setBase];
    const Addr *tagBase = &tags_[setBase];
    ++tick_;

    const int cls = who.isKernel() ? 1 : 0;
    ++stats_.accesses[cls];

    // Search the set (tags_ mirrors lines_ validity: noTag never
    // matches a real block).
    for (int w = 0; w < params_.assoc; ++w) {
        if (tagBase[w] == block) {
            Line &ln = base[w];
            // Hit. Detect constructive sharing: first touch by this
            // thread on a block another thread filled.
            if (ln.fillerThread != who.thread &&
                !(ln.touchedMask & threadBit(who.thread))) {
                out.sharedAvoidance = true;
                out.fillerKernel = ln.fillerKernel;
                stats_.avoided[cls][ln.fillerKernel ? 1 : 0]++;
            }
            ln.touchedMask |= threadBit(who.thread);
            ln.lruStamp = tick_;
            ln.dirty = ln.dirty || is_write;
            out.hit = true;
            return out;
        }
    }

    // Miss: pick the victim (first invalid way, else true LRU).
    Line *victim = &base[0];
    for (int w = 0; w < params_.assoc; ++w) {
        if (!base[w].valid) {
            victim = &base[w];
            break;
        }
        if (base[w].lruStamp < victim->lruStamp)
            victim = &base[w];
    }

    // Classify, then fill over the victim.
    ++stats_.misses[cls];
    out.cause = classifier_.classify(block, who);
    stats_.cause[cls][static_cast<int>(out.cause)]++;
    if (probes_)
        probes_->cacheMiss(params_.name.c_str(), who.thread, addr);

    SMTOS_CHECK(victim != nullptr);
    if (victim->valid) {
        classifier_.recordEviction(victim->blockAddr, who);
        out.dirtyEviction = victim->dirty;
    }
    tags_[static_cast<size_t>(victim - lines_.data())] = block;
    victim->valid = true;
    victim->dirty = is_write;
    victim->blockAddr = block;
    victim->lruStamp = tick_;
    victim->fillerThread = who.thread;
    victim->fillerKernel = who.isKernel();
    victim->touchedMask = threadBit(who.thread);
    return out;
}

bool
Cache::probe(Addr addr) const
{
    const Addr block = blockOf(addr);
    const int set = setOf(block);
    const Addr *tagBase = &tags_[static_cast<size_t>(set) *
                                 static_cast<size_t>(params_.assoc)];
    for (int w = 0; w < params_.assoc; ++w)
        if (tagBase[w] == block)
            return true;
    return false;
}

void
Cache::invalidateAll()
{
    for (Line &ln : lines_) {
        if (ln.valid) {
            classifier_.recordInvalidation(ln.blockAddr);
            ln.valid = false;
            ln.dirty = false;
        }
    }
    std::fill(tags_.begin(), tags_.end(), noTag);
}

void
Cache::invalidateBlock(Addr addr)
{
    const Addr block = blockOf(addr);
    const int set = setOf(block);
    const size_t setBase = static_cast<size_t>(set) *
                           static_cast<size_t>(params_.assoc);
    Line *base = &lines_[setBase];
    for (int w = 0; w < params_.assoc; ++w) {
        if (base[w].valid && base[w].blockAddr == block) {
            classifier_.recordInvalidation(block);
            base[w].valid = false;
            base[w].dirty = false;
            tags_[setBase + static_cast<size_t>(w)] = noTag;
        }
    }
}

bool
Cache::snoopInvalidate(Addr addr)
{
    const Addr block = blockOf(addr);
    const int set = setOf(block);
    const size_t setBase = static_cast<size_t>(set) *
                           static_cast<size_t>(params_.assoc);
    Line *base = &lines_[setBase];
    bool was_dirty = false;
    for (int w = 0; w < params_.assoc; ++w) {
        if (base[w].valid && base[w].blockAddr == block) {
            was_dirty = was_dirty || base[w].dirty;
            classifier_.recordInvalidation(block);
            base[w].valid = false;
            base[w].dirty = false;
            tags_[setBase + static_cast<size_t>(w)] = noTag;
        }
    }
    return was_dirty;
}

bool
Cache::snoopDowngrade(Addr addr)
{
    const Addr block = blockOf(addr);
    const int set = setOf(block);
    const size_t setBase = static_cast<size_t>(set) *
                           static_cast<size_t>(params_.assoc);
    Line *base = &lines_[setBase];
    bool was_dirty = false;
    for (int w = 0; w < params_.assoc; ++w) {
        if (base[w].valid && base[w].blockAddr == block &&
            base[w].dirty) {
            base[w].dirty = false;
            was_dirty = true;
        }
    }
    return was_dirty;
}

bool
Cache::probeDirty(Addr addr) const
{
    const Addr block = blockOf(addr);
    const int set = setOf(block);
    const size_t setBase = static_cast<size_t>(set) *
                           static_cast<size_t>(params_.assoc);
    const Line *base = &lines_[setBase];
    for (int w = 0; w < params_.assoc; ++w)
        if (base[w].valid && base[w].blockAddr == block &&
            base[w].dirty)
            return true;
    return false;
}

std::uint64_t
Cache::invalidateIndex(std::uint64_t idx)
{
    idx %= lines_.size();
    Line &ln = lines_[idx];
    if (ln.valid) {
        classifier_.recordInvalidation(ln.blockAddr);
        ln.valid = false;
        ln.dirty = false;
        tags_[idx] = noTag;
    }
    return idx;
}

double
Cache::missRatePct() const
{
    return pct(static_cast<double>(stats_.totalMisses()),
               static_cast<double>(stats_.totalAccesses()));
}

double
Cache::missRatePct(bool kernel) const
{
    const int cls = kernel ? 1 : 0;
    return pct(static_cast<double>(stats_.misses[cls]),
               static_cast<double>(stats_.accesses[cls]));
}

} // namespace smtos
