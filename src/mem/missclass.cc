#include "mem/missclass.h"

namespace smtos {

const char *
missCauseName(MissCause c)
{
    switch (c) {
      case MissCause::Compulsory: return "compulsory";
      case MissCause::Intrathread: return "intrathread";
      case MissCause::Interthread: return "interthread";
      case MissCause::UserKernel: return "user-kernel";
      case MissCause::OsInvalidation: return "os-invalidation";
    }
    return "?";
}

MissCause
MissClassifier::classify(Addr blockAddr, const AccessInfo &who) const
{
    auto it = evictors_.find(blockAddr);
    if (it == evictors_.end())
        return MissCause::Compulsory;
    const Evictor &ev = it->second;
    if (ev.byInvalidation)
        return MissCause::OsInvalidation;
    if (ev.kernel != who.isKernel())
        return MissCause::UserKernel;
    if (ev.thread == who.thread)
        return MissCause::Intrathread;
    return MissCause::Interthread;
}

void
MissClassifier::recordEviction(Addr blockAddr, const AccessInfo &who)
{
    evictors_[blockAddr] = Evictor{who.thread, who.isKernel(), false};
}

void
MissClassifier::recordInvalidation(Addr blockAddr)
{
    auto it = evictors_.find(blockAddr);
    if (it == evictors_.end()) {
        evictors_[blockAddr] = Evictor{invalidThread, true, true};
    } else {
        it->second.byInvalidation = true;
    }
}

} // namespace smtos
