#include "mem/missclass.h"

namespace smtos {

const char *
missCauseName(MissCause c)
{
    switch (c) {
      case MissCause::Compulsory: return "compulsory";
      case MissCause::Intrathread: return "intrathread";
      case MissCause::Interthread: return "interthread";
      case MissCause::UserKernel: return "user-kernel";
      case MissCause::OsInvalidation: return "os-invalidation";
    }
    return "?";
}

} // namespace smtos
