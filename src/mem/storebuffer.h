/**
 * @file
 * Store buffer model (Table 1: 32 entries).
 *
 * Retired stores enter the buffer and drain to the data cache in the
 * background; the pipeline only stalls when the buffer is full.
 */

#ifndef SMTOS_MEM_STOREBUFFER_H
#define SMTOS_MEM_STOREBUFFER_H

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "snap/fwd.h"

namespace smtos {

/** A bounded buffer of in-flight stores, each with a drain time. */
class StoreBuffer
{
  public:
    explicit StoreBuffer(int entries);

    /**
     * Insert a store observed at @p now whose cache write completes at
     * @p drain_done. If the buffer is full, the insertion is delayed
     * until the earliest drain completes.
     *
     * @return the cycle at which the store actually entered the buffer
     *         (== now unless a full-buffer stall occurred).
     */
    Cycle push(Cycle now, Cycle drain_done);

    /** Entries occupied at @p now. */
    int occupancy(Cycle now) const;

    bool full(Cycle now) const;

    std::uint64_t stores() const { return stores_; }
    std::uint64_t fullStalls() const { return fullStalls_; }
    int size() const { return static_cast<int>(drains_.size()); }

    static constexpr std::uint32_t snapVersion = 1;
    void save(Snapshotter &sp) const;
    void load(Restorer &rs);

  private:
    void releaseExpired(Cycle now);

    std::vector<Cycle> drains_; // 0 == free slot sentinel handled by valid_
    std::vector<bool> valid_;
    std::uint64_t stores_ = 0;
    std::uint64_t fullStalls_ = 0;
};

} // namespace smtos

#endif // SMTOS_MEM_STOREBUFFER_H
