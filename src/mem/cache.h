/**
 * @file
 * Set-associative cache tag model with interference classification.
 *
 * The cache is a tag-array-only (functional) model: data movement is
 * represented by timing in the Hierarchy, while this class answers
 * hit/miss, performs LRU replacement, and attributes every miss and
 * every constructively-shared hit per the paper's methodology.
 */

#ifndef SMTOS_MEM_CACHE_H
#define SMTOS_MEM_CACHE_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "mem/missclass.h"
#include "snap/fwd.h"

namespace smtos {

class Probes;

/** Geometry and identity of a cache. */
struct CacheParams
{
    std::string name = "cache";
    std::uint64_t sizeBytes = 128 * 1024;
    int assoc = 2;
    int lineBytes = 64;
};

/** Result of a single cache access. */
struct CacheOutcome
{
    bool hit = false;
    /** Valid only when !hit. */
    MissCause cause = MissCause::Compulsory;
    /** Hit that would have been a miss without another thread's fill. */
    bool sharedAvoidance = false;
    /** Privilege class of the filler, valid when sharedAvoidance. */
    bool fillerKernel = false;
    /** Dirty block displaced by the fill (writeback traffic). */
    bool dirtyEviction = false;
};

/**
 * A write-back, write-allocate set-associative cache with true-LRU
 * replacement and per-line filler metadata.
 */
class Cache
{
  public:
    explicit Cache(const CacheParams &params);

    /** Attach (or detach, with nullptr) the observability hub. */
    void setProbes(Probes *p) { probes_ = p; }

    /**
     * Perform one access. On a miss the block is filled (allocated) and
     * the victim's eviction is recorded for future classification.
     *
     * @param addr byte address (any address within the block)
     * @param who accessing thread/mode identity
     * @param is_write true for stores
     */
    CacheOutcome access(Addr addr, const AccessInfo &who, bool is_write);

    /** Probe without side effects (tests, snoop checks). */
    bool probe(Addr addr) const;

    /**
     * Invalidate the entire cache as an explicit OS operation (e.g. the
     * Alpha I-cache flush on instruction page remapping). All resident
     * blocks are recorded as OS-invalidated for later classification.
     */
    void invalidateAll();

    /** Invalidate a single block as an explicit OS operation. */
    void invalidateBlock(Addr addr);

    // --- CMP snoop interface (coherence hub; see mem/coherence.h).
    // --- Snoops never touch statistics: coherence traffic is counted
    // --- at the hub, so single-core artifacts stay byte-identical. ---
    /** Snoop-invalidate a block (remote store). @return true when the
     *  invalidated copy was dirty (intervention writeback). */
    bool snoopInvalidate(Addr addr);
    /** Snoop-downgrade a block M->S (remote load): the copy stays
     *  resident but loses dirty ownership. @return true when it was
     *  dirty (a writeback to the shared level happened). */
    bool snoopDowngrade(Addr addr);
    /** True when the block is resident and dirty (modified state). */
    bool probeDirty(Addr addr) const;

    /**
     * Invalidate the line at @p idx (mod the number of lines) — fault
     * injection's model of a transient tag/data parity error. Returns
     * the normalized index; the line may already have been invalid.
     */
    std::uint64_t invalidateIndex(std::uint64_t idx);

    const CacheParams &params() const { return params_; }
    const InterferenceStats &stats() const { return stats_; }
    InterferenceStats &stats() { return stats_; }

    /** Total/user/kernel miss rates in percent. */
    double missRatePct() const;
    double missRatePct(bool kernel) const;

    int numSets() const { return numSets_; }

    /** Block (line) index of a byte address — public so callers that
     *  track per-line access discipline (the fetch stages) share the
     *  cache's own geometry arithmetic. */
    Addr blockOf(Addr addr) const
    {
        return fastGeom_ ? addr >> lineShift_
                         : addr / static_cast<Addr>(params_.lineBytes);
    }

    /** Reset statistics (not contents). */
    void resetStats() { stats_.reset(); }

    static constexpr std::uint32_t snapVersion = 1;
    void save(Snapshotter &sp) const;
    void load(Restorer &rs);

  private:
    struct Line
    {
        bool valid = false;
        bool dirty = false;
        Addr blockAddr = 0;
        std::uint64_t lruStamp = 0;
        ThreadId fillerThread = invalidThread;
        bool fillerKernel = false;
        /** Threads (id mod 64) that touched the block since fill. */
        std::uint64_t touchedMask = 0;
    };

    int setOf(Addr blockAddr) const
    {
        return static_cast<int>(
            fastGeom_ ? blockAddr & setMask_
                      : blockAddr % static_cast<Addr>(numSets_));
    }

    /** Sentinel in tags_ marking an invalid way (block addresses are
     *  byte addresses >> line shift, so ~0 is unreachable). */
    static constexpr Addr noTag = ~0ull;

    /** Rebuild tags_ from lines_ after a snapshot load. */
    void
    rebuildTags()
    {
        tags_.assign(lines_.size(), noTag);
        for (std::size_t i = 0; i < lines_.size(); ++i)
            if (lines_[i].valid)
                tags_[i] = lines_[i].blockAddr;
    }

    CacheParams params_;
    Probes *probes_ = nullptr;
    int numSets_;
    /** Power-of-two geometry runs on shift/mask instead of the
     *  div/mod fallback (two hardware divides per access otherwise —
     *  measurable on the warming-only fast path). */
    bool fastGeom_ = false;
    int lineShift_ = 0;
    Addr setMask_ = 0;
    std::vector<Line> lines_; // numSets_ * assoc, set-major
    /** tags_[i] mirrors lines_[i].blockAddr while valid, noTag when
     *  not: the way scan compares a dense 8-byte array instead of
     *  pulling each Line's 40-byte metadata through the host cache. */
    std::vector<Addr> tags_;
    std::uint64_t tick_ = 0;
    MissClassifier classifier_;
    InterferenceStats stats_;
};

} // namespace smtos

#endif // SMTOS_MEM_CACHE_H
