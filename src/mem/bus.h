/**
 * @file
 * Bandwidth-limited split-transaction bus model (L1-L2 bus and memory
 * bus in Table 1).
 */

#ifndef SMTOS_MEM_BUS_H
#define SMTOS_MEM_BUS_H

#include <cstdint>
#include <string>

#include "common/types.h"
#include "snap/fwd.h"

namespace smtos {

/** A pipelined bus with fixed latency and per-cycle byte bandwidth. */
class Bus
{
  public:
    /**
     * @param name display name
     * @param bytes_per_cycle data width in bytes transferred per cycle
     * @param latency cycles of fixed transfer latency
     */
    Bus(std::string name, int bytes_per_cycle, Cycle latency);

    /**
     * Schedule a transfer of @p bytes arriving at @p now.
     * @return cycle at which the transfer completes at the far side.
     */
    Cycle transfer(Cycle now, int bytes);

    /** Number of transactions carried. */
    std::uint64_t transactions() const { return transactions_; }

    /** Total cycles transactions waited for the bus to free up. */
    std::uint64_t queueingDelay() const { return queueingDelay_; }

    /** Average queueing delay per transaction in cycles. */
    double avgDelay() const;

    const std::string &name() const { return name_; }

    static constexpr std::uint32_t snapVersion = 1;
    void save(Snapshotter &sp) const;
    void load(Restorer &rs);

  private:
    std::string name_;
    int bytesPerCycle_;
    Cycle latency_;
    Cycle nextFree_ = 0;
    std::uint64_t transactions_ = 0;
    std::uint64_t queueingDelay_ = 0;
};

} // namespace smtos

#endif // SMTOS_MEM_BUS_H
