#include "mem/bus.h"

#include <algorithm>

#include "common/logging.h"

namespace smtos {

Bus::Bus(std::string name, int bytes_per_cycle, Cycle latency)
    : name_(std::move(name)), bytesPerCycle_(bytes_per_cycle),
      latency_(latency)
{
    smtos_assert(bytes_per_cycle > 0);
}

Cycle
Bus::transfer(Cycle now, int bytes)
{
    const Cycle occupancy = static_cast<Cycle>(
        (bytes + bytesPerCycle_ - 1) / bytesPerCycle_);
    const Cycle start = std::max(now, nextFree_);
    queueingDelay_ += start - now;
    ++transactions_;
    nextFree_ = start + occupancy;
    return start + occupancy + latency_;
}

double
Bus::avgDelay() const
{
    return transactions_ == 0
        ? 0.0
        : static_cast<double>(queueingDelay_) /
              static_cast<double>(transactions_);
}

} // namespace smtos
